// Package wavm3 is the public API of the WAVM3 reproduction: a
// workload-aware energy model for virtual machine migration after
// De Maio, Kecskemeti and Prodan (IEEE CLUSTER 2015).
//
// The package exposes three layers:
//
//   - Simulate / SimulateRepeated run single migration experiments on the
//     simulated two-host Xen testbed and return measured traces and
//     energies.
//   - TrainEstimator runs a measurement campaign, fits the WAVM3 model
//     (and optionally the HUANG/LIU/STRUNK baselines) and returns an
//     Estimator.
//   - Estimator.Estimate answers the question the paper's model exists
//     for: "how much energy will this migration cost on the source and
//     target hosts?" — for a planned migration described by workload
//     features, before running it.
//
// All estimates are joules at the AC side of the two hosts, covering the
// initiation, transfer and activation phases of the migration.
//
// # Concurrency
//
// Training campaigns fan their experimental points and repeated runs out
// across CPUs (TrainingConfig.Workers; 0 = runtime.NumCPU(), 1 =
// sequential). Parallelism never changes results: per-point and per-run
// seeds derive from indices alone and results are collected in order, so
// every worker count produces bit-identical datasets and coefficients.
// A trained Estimator is safe for concurrent use — any number of
// goroutines may call Estimate at once, including while Calibrate
// transports the model to another machine pair.
//
// # Run cache
//
// Simulated runs are pure functions of their physical scenario and seed,
// so training memoizes them in a bounded, concurrency-safe run cache
// (disable with TrainingConfig.DisableRunCache). The campaign families
// overlap — every family revisits the zero-load baseline point — and each
// distinct (scenario, seed) block is simulated exactly once per training
// call. Determinism guarantee: a cache hit returns a result bit-identical
// to what a fresh simulation would have produced (results are immutable
// and the cache key excludes only the display label), so caching, like
// parallelism, never changes datasets, coefficients or estimates.
package wavm3

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// Kind selects the migration mechanism.
type Kind = migration.Kind

// Migration kinds.
const (
	NonLive = migration.NonLive
	Live    = migration.Live
)

// Machine pairs of the reproduced testbed.
const (
	PairOpteron = hw.PairM // m01–m02: 32-thread Opteron 8356 pair
	PairXeon    = hw.PairO // o1–o2: 40-thread Xeon E5-2690 pair
)

// Joules re-exports the energy unit.
type Joules = units.Joules

// Watts re-exports the power unit.
type Watts = units.Watts

// Estimate is the per-host energy prediction for one migration.
type Estimate struct {
	// Source and Target are the predicted migration energies per host.
	Source, Target Joules
	// Duration is the predicted migration span (ms → me).
	Duration time.Duration
	// TransferBytes is the predicted amount of state data moved.
	TransferBytes int64
}

// Total returns the data-centre-level energy of the migration.
func (e Estimate) Total() Joules { return e.Source + e.Target }

// Plan describes a migration whose energy is to be estimated, in the
// model's feature terms.
type Plan struct {
	// Kind is the migration mechanism.
	Kind Kind
	// VMMemoryBytes is the migrating VM's memory size.
	VMMemoryBytes int64
	// VMBusyVCPUs is CPU(v,t): how many vCPUs the guest keeps busy.
	VMBusyVCPUs float64
	// DirtyRatio is the guest's steady-state dirty ratio (0 for non-live
	// or idle-memory guests).
	DirtyRatio float64
	// SourceBusyThreads / TargetBusyThreads are CPU(h,t) of the two hosts
	// *excluding* the migrating VM and the migration process itself.
	SourceBusyThreads, TargetBusyThreads float64
	// BandwidthBitsPerSec is the expected migration bandwidth; 0 selects
	// the trained pair's hardware rate degraded by CPU contention.
	BandwidthBitsPerSec float64
}

// Validate rejects unusable plans.
func (p Plan) Validate() error {
	switch {
	case p.VMMemoryBytes <= 0:
		return errors.New("wavm3: plan needs a VM memory size")
	case p.VMBusyVCPUs < 0 || p.DirtyRatio < 0 || p.DirtyRatio > 1:
		return errors.New("wavm3: plan has out-of-range workload features")
	case p.SourceBusyThreads < 0 || p.TargetBusyThreads < 0:
		return errors.New("wavm3: negative host load")
	case p.BandwidthBitsPerSec < 0:
		return errors.New("wavm3: negative bandwidth")
	}
	return nil
}

// Estimator is a trained WAVM3 model pair (live + non-live) bound to the
// machine pair it was trained on.
//
// An Estimator is safe for concurrent use: any number of goroutines may
// call Estimate (and the other read methods) at once, including while
// another goroutine Calibrates the estimator onto a different machine
// pair. Estimate snapshots the fitted state once on entry, so a
// concurrent Calibrate never tears a prediction — every call answers
// entirely from one consistent model.
type Estimator struct {
	mu       sync.RWMutex
	pair     string
	src, dst hw.MachineSpec
	live     *core.Model
	nonlive  *core.Model

	// Training-time state, immutable after construction: Calibrate always
	// derives the current models from these so repeated calibrations
	// compose (and calibrating back to the training pair is exact).
	trainSrc              hw.MachineSpec
	baseLive, baseNonlive *core.Model

	suite *experiments.Suite
}

// fitted is the immutable snapshot Estimate computes from: the fields an
// Estimate call reads, captured under one lock acquisition.
type fitted struct {
	pair     string
	src, dst hw.MachineSpec
	live     *core.Model
	nonlive  *core.Model
}

// snapshot captures the current fitted state. The models themselves are
// never mutated after training (Calibrate swaps in bias-shifted copies),
// so sharing the pointers is safe.
func (e *Estimator) snapshot() fitted {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return fitted{pair: e.pair, src: e.src, dst: e.dst, live: e.live, nonlive: e.nonlive}
}

// TrainingConfig controls the campaign the estimator is trained on.
type TrainingConfig struct {
	// Pair selects the machine pair (PairOpteron by default).
	Pair string
	// RunsPerPoint is the repeat count per experimental point (the paper
	// used ≥ 10; smaller values train faster at some accuracy cost).
	RunsPerPoint int
	// Quick trims the sweeps to their extreme points. Training drops from
	// minutes to seconds; coefficient quality degrades gracefully.
	Quick bool
	// Seed pins the campaign's randomness.
	Seed int64
	// Workers bounds the training campaign's concurrency (0 means
	// runtime.NumCPU(), 1 forces the sequential runner). The fitted
	// coefficients are bit-identical for every value; workers only changes
	// training wall-clock.
	Workers int
	// DisableRunCache turns off the cross-family run cache. The campaign's
	// families overlap (every family revisits the zero-load baseline
	// point), so training memoizes each distinct (scenario, seed) run by
	// default; caching never changes the fitted coefficients — cached
	// results are bit-identical — and this knob exists for memory-
	// constrained callers and for regression tests of that guarantee.
	DisableRunCache bool
}

// TrainEstimator runs a CPULOAD+MEMLOAD campaign on the simulated testbed
// and fits the WAVM3 models.
func TrainEstimator(cfg TrainingConfig) (*Estimator, error) {
	if cfg.Pair == "" {
		cfg.Pair = hw.PairM
	}
	if cfg.RunsPerPoint <= 0 {
		cfg.RunsPerPoint = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ecfg := experiments.Config{
		Pair:        cfg.Pair,
		MinRuns:     cfg.RunsPerPoint,
		VarianceTol: 0.5,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
	}
	if !cfg.DisableRunCache {
		ecfg.Cache = sim.NewCache(0)
	}
	if cfg.Quick {
		ecfg.LoadLevels = []int{0, 5, 8}
		ecfg.DirtyLevels = []units.Fraction{0.05, 0.55, 0.95}
	}
	camp, err := experiments.RunCampaign(ecfg,
		experiments.CPULoadSource, experiments.CPULoadTarget, experiments.MemLoadVM)
	if err != nil {
		return nil, err
	}
	suite, err := experiments.BuildSuite(camp, nil)
	if err != nil {
		return nil, err
	}
	src, dst, err := hw.Pair(cfg.Pair)
	if err != nil {
		return nil, err
	}
	return &Estimator{
		pair: cfg.Pair, src: src, dst: dst,
		live: suite.WAVM3Live, nonlive: suite.WAVM3NonLive,
		trainSrc: src,
		baseLive: suite.WAVM3Live, baseNonlive: suite.WAVM3NonLive,
		suite: suite,
	}, nil
}

// Pair returns the machine pair the estimator currently predicts for.
func (e *Estimator) Pair() string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.pair
}

// Calibrate transports the estimator onto another machine pair using the
// paper's C1→C2 idle-power bias correction: the phase constants are
// shifted by the idle-power difference between the new pair and the
// training pair, while the slopes stay as fitted. Calibrating back to the
// training pair restores the original constants exactly. The swap is
// atomic with respect to concurrent Estimate calls — each in-flight
// Estimate finishes against the model set it started with.
func (e *Estimator) Calibrate(pair string) error {
	src, dst, err := hw.Pair(pair)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	delta := src.IdlePower() - e.trainSrc.IdlePower()
	// Copy-on-calibrate: the fitted base models are never mutated, so
	// snapshots taken by concurrent Estimate calls stay valid.
	e.live = e.baseLive.WithBiasShift(delta)
	e.nonlive = e.baseNonlive.WithBiasShift(delta)
	e.pair, e.src, e.dst = pair, src, dst
	return nil
}

// Estimate predicts the migration energy of a plan by synthesising the
// phase timeline the plan implies — initiation, a transfer whose length
// follows from the data volume and achievable bandwidth, activation — and
// integrating the per-phase power models over it (Eqs. 3–7).
func (e *Estimator) Estimate(p Plan) (Estimate, error) {
	var out Estimate
	if err := p.Validate(); err != nil {
		return out, err
	}
	f := e.snapshot()
	model := f.nonlive
	if p.Kind == Live {
		model = f.live
	}

	// Transfer volume: non-live moves the image once; live pre-copy
	// retransmits dirtied pages, approaching Xen's 3× safety valve as the
	// dirty ratio grows (the engine's measured expansion is ≈ 1+2·DR).
	mem := float64(p.VMMemoryBytes)
	expansion := 1.0
	if p.Kind == Live {
		expansion = 1 + 2*p.DirtyRatio
		if expansion > migration.DefaultMaxDataFactor {
			expansion = migration.DefaultMaxDataFactor
		}
	}
	bytes := mem * expansion

	// Achievable bandwidth: the hardware migration rate degraded by CPU
	// contention on either endpoint, unless the caller pinned one.
	bw := p.BandwidthBitsPerSec
	if bw == 0 {
		srcShare := helperShare(p.SourceBusyThreads+p.VMBusyVCPUs, float64(f.src.Threads))
		dstShare := helperShare(p.TargetBusyThreads, float64(f.dst.Threads))
		share := srcShare
		if dstShare < share {
			share = dstShare
		}
		bw = float64(f.src.MigrationRate) * share
	}
	transfer := time.Duration(bytes * 8 / bw * float64(time.Second))
	init := migration.DefaultInitiationTime
	activ := migration.DefaultActivationTime
	out.Duration = init + transfer + activ
	out.TransferBytes = int64(bytes)

	// Synthesise the observation timeline at the meter cadence and
	// integrate per host.
	for _, role := range core.Roles() {
		obs := f.synthObs(p, role, init, transfer, activ, bw)
		rec := &core.RunRecord{
			Pair: f.pair, Kind: p.Kind, Role: role, RunID: "estimate",
			Obs:            obs,
			MeasuredEnergy: 1, // unused by prediction; Validate needs > 0
			VMMem:          units.Bytes(p.VMMemoryBytes),
		}
		pred, err := model.PredictEnergy(rec)
		if err != nil {
			return Estimate{}, err
		}
		if role == core.Source {
			out.Source = pred
		} else {
			out.Target = pred
		}
	}
	return out, nil
}

// helperShare approximates the CPU share the dom-0 migration helper gets
// on a host with the given busy threads.
func helperShare(busy, capacity float64) float64 {
	demand := busy + float64(migrationHelperDemand)
	if demand <= capacity {
		return 1
	}
	return capacity / demand
}

const migrationHelperDemand = float64(1.35) // xen.MigrationCPUDemand

// synthObs builds the plan's feature timeline for one role.
func (f fitted) synthObs(p Plan, role core.Role, init, transfer, activ time.Duration, bw float64) []trace.Observation {
	const step = 500 * time.Millisecond
	var obs []trace.Observation
	hostBusy := p.SourceBusyThreads
	if role == core.Target {
		hostBusy = p.TargetBusyThreads
	}
	add := func(at time.Duration, ph trace.Phase) {
		o := trace.Observation{At: at, Phase: ph}
		o.FeatureSample.At = at

		vmOnHost := role == core.Source // pre-activation placement
		guestActive := p.Kind == Live && !(ph == trace.PhaseActivation)
		switch ph {
		case trace.PhaseInitiation, trace.PhaseTransfer:
			hcpu := hostBusy + vmmOverhead(hostBusy) + migrationHelperDemand
			if vmOnHost && guestActive {
				hcpu += p.VMBusyVCPUs
				o.VMCPU = units.Utilisation(p.VMBusyVCPUs)
				o.DirtyRatio = units.Fraction(p.DirtyRatio)
			}
			o.HostCPU = units.Utilisation(hcpu)
			if ph == trace.PhaseTransfer {
				o.Bandwidth = units.BitsPerSecond(bw)
			}
		case trace.PhaseActivation:
			hcpu := hostBusy + vmmOverhead(hostBusy)
			if role == core.Target {
				// The guest starts on the target during activation.
				hcpu += p.VMBusyVCPUs
				o.VMCPU = units.Utilisation(p.VMBusyVCPUs)
			}
			o.HostCPU = units.Utilisation(hcpu)
		}
		// Clamp to physical capacity (multiplexing).
		cap := units.Utilisation(f.src.Threads)
		if role == core.Target {
			cap = units.Utilisation(f.dst.Threads)
		}
		o.HostCPU = o.HostCPU.Clamp(cap)
		obs = append(obs, o)
	}
	at := time.Duration(0)
	for ; at < init; at += step {
		add(at, trace.PhaseInitiation)
	}
	end := init + transfer
	for ; at < end; at += step {
		add(at, trace.PhaseTransfer)
	}
	end += activ
	for ; at <= end; at += step {
		add(at, trace.PhaseActivation)
	}
	return obs
}

// vmmOverhead approximates CPUVMM for a host running roughly busy/4
// load VMs of 4 vCPUs each.
func vmmOverhead(busyThreads float64) float64 {
	return 0.25 + 0.08*(busyThreads/4+1)
}

// Suite exposes the underlying evaluation suite for advanced use (tables,
// baselines, datasets).
func (e *Estimator) Suite() *experiments.Suite { return e.suite }

// CompareBaselines evaluates WAVM3 against HUANG, LIU and STRUNK on the
// estimator's held-out test runs, returning NRMSE per model for the given
// kind and role name ("Source"/"Target").
func (e *Estimator) CompareBaselines(kind Kind) (map[string]map[string]float64, error) {
	rows, err := e.suite.Table7()
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string]float64)
	for _, r := range rows {
		if out[r.Model] == nil {
			out[r.Model] = make(map[string]float64)
		}
		if kind == Live {
			out[r.Model][r.Host] = r.Live.NRMSE
		} else {
			out[r.Model][r.Host] = r.NonLive.NRMSE
		}
	}
	return out, nil
}

// Simulate runs one migration experiment on the simulated testbed.
type SimulationResult = sim.RunResult

// Scenario re-exports the simulation scenario description.
type Scenario = sim.Scenario

// Simulate executes one scenario (a thin wrapper over the internal
// simulator for example programs and exploratory use).
func Simulate(sc Scenario) (*SimulationResult, error) { return sim.Run(sc) }

// SimulateRepeated repeats a scenario until the paper's variance rule
// holds (≥ minRuns runs, variance change < tol). Repeats fan out across
// all CPUs; the returned run sequence is bit-identical to a sequential
// execution because run seeds derive from the run index alone and the
// variance rule is applied to run prefixes in index order.
func SimulateRepeated(sc Scenario, minRuns int, tol float64) ([]*SimulationResult, error) {
	return sim.RunRepeated(sc, minRuns, tol)
}

// SimulateRepeatedWorkers is SimulateRepeated with an explicit worker
// budget (<= 0 means runtime.NumCPU(), 1 forces sequential execution).
func SimulateRepeatedWorkers(sc Scenario, minRuns int, tol float64, workers int) ([]*SimulationResult, error) {
	return sim.RunRepeatedWorkers(sc, minRuns, tol, workers)
}

// TrainBaselines gives example programs access to baseline models trained
// on the estimator's training split.
func (e *Estimator) TrainBaselines() (core.EnergyModel, core.EnergyModel, core.EnergyModel, error) {
	h, err := baseline.TrainHuang(e.suite.TrainM)
	if err != nil {
		return nil, nil, nil, err
	}
	l, err := baseline.TrainLiu(e.suite.TrainM)
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := baseline.TrainStrunk(e.suite.TrainM)
	if err != nil {
		return nil, nil, nil, err
	}
	return h, l, s, nil
}

// String describes the estimator.
func (e *Estimator) String() string {
	return fmt.Sprintf("wavm3.Estimator(pair=%s)", e.Pair())
}
