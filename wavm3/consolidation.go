package wavm3

import (
	"repro/internal/consolidation"
	"repro/internal/units"
)

// Consolidation re-exports the consolidation-manager types so downstream
// users can plan energy-aware consolidation rounds with a trained
// estimator (the paper's motivating application).
type (
	// HostState describes a physical host for consolidation planning.
	HostState = consolidation.HostState
	// VMState describes a running VM for consolidation planning.
	VMState = consolidation.VMState
	// ConsolidationPlan is the outcome of one planning round.
	ConsolidationPlan = consolidation.Plan
	// ConsolidationConfig bounds one planning round.
	ConsolidationConfig = consolidation.Config
)

// CostAdapter makes an Estimator usable as the consolidation manager's
// migration-cost model.
type CostAdapter struct {
	Est *Estimator
	// Kind is the migration mechanism the manager would use (Live by
	// default; zero value is NonLive, so set it explicitly).
	Kind Kind
}

// Cost implements consolidation.CostModel: the data-centre-level energy of
// moving vm between hosts with the given residual loads.
func (c CostAdapter) Cost(vm VMState, srcBusy, dstBusy float64) (consolidation.MigrationCost, error) {
	e, err := c.Est.Estimate(Plan{
		Kind:              c.Kind,
		VMMemoryBytes:     int64(vm.MemBytes),
		VMBusyVCPUs:       vm.BusyVCPUs,
		DirtyRatio:        float64(vm.DirtyRatio),
		SourceBusyThreads: srcBusy,
		TargetBusyThreads: dstBusy,
	})
	if err != nil {
		return consolidation.MigrationCost{}, err
	}
	return consolidation.MigrationCost{Energy: e.Total(), Duration: e.Duration}, nil
}

// PlanConsolidation runs the energy-aware consolidation policy over the
// given data-centre state using this estimator for migration costs.
func (e *Estimator) PlanConsolidation(hosts []HostState, cfg ConsolidationConfig) (*ConsolidationPlan, error) {
	policy := consolidation.EnergyAware{Model: CostAdapter{Est: e, Kind: Live}}
	return policy.Plan(hosts, cfg)
}

// PlanConsolidationFFD runs the energy-blind first-fit-decreasing baseline
// (moves are still priced with the estimator for comparison).
func (e *Estimator) PlanConsolidationFFD(hosts []HostState, cfg ConsolidationConfig) (*ConsolidationPlan, error) {
	policy := consolidation.FirstFitDecreasing{Model: CostAdapter{Est: e, Kind: Live}}
	return policy.Plan(hosts, cfg)
}

// GiB converts a GiB count into the byte type host/VM states use.
func GiB(n int) units.Bytes { return units.Bytes(n) * units.GiB }
