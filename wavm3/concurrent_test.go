package wavm3

import (
	"sync"
	"testing"
)

// concurrencyPlans is a spread of plans exercising both kinds and several
// load shapes, so the hammering goroutines don't all hit one code path.
func concurrencyPlans() []Plan {
	return []Plan{
		{Kind: Live, VMMemoryBytes: 4 << 30, VMBusyVCPUs: 1, DirtyRatio: 0.05},
		{Kind: Live, VMMemoryBytes: 4 << 30, VMBusyVCPUs: 4, DirtyRatio: 0.95},
		{Kind: Live, VMMemoryBytes: 2 << 30, VMBusyVCPUs: 2, DirtyRatio: 0.55, SourceBusyThreads: 12},
		{Kind: NonLive, VMMemoryBytes: 4 << 30, VMBusyVCPUs: 4},
		{Kind: NonLive, VMMemoryBytes: 8 << 30, TargetBusyThreads: 20},
	}
}

// TestEstimateConcurrent hammers a trained estimator from many goroutines
// and checks every answer against the serial result for the same plan:
// concurrent Estimate calls must neither race (caught by -race) nor
// perturb each other's predictions.
func TestEstimateConcurrent(t *testing.T) {
	e := quickEstimator(t)
	plans := concurrencyPlans()

	serial := make([]Estimate, len(plans))
	for i, p := range plans {
		var err error
		if serial[i], err = e.Estimate(p); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 16
	const iterations = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				i := (g + it) % len(plans)
				got, err := e.Estimate(plans[i])
				if err != nil {
					errs <- err
					return
				}
				if got != serial[i] {
					t.Errorf("goroutine %d: plan %d estimate %+v != serial %+v", g, i, got, serial[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCalibrateDuringEstimates swaps the estimator between machine pairs
// while readers hammer Estimate. Every answer must match one of the two
// pairs' serial results exactly — a torn read mixing the pairs' models
// would produce a third value (and -race would flag the access).
func TestCalibrateDuringEstimates(t *testing.T) {
	e := quickEstimator(t)
	plan := Plan{Kind: Live, VMMemoryBytes: 4 << 30, VMBusyVCPUs: 2, DirtyRatio: 0.5}

	onTrainPair, err := e.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Calibrate(PairXeon); err != nil {
		t.Fatal(err)
	}
	onXeon, err := e.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Calibrate(PairOpteron); err != nil {
		t.Fatal(err)
	}
	back, err := e.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if back != onTrainPair {
		t.Fatalf("calibrating away and back changed the estimate: %+v vs %+v", back, onTrainPair)
	}
	if onXeon == onTrainPair {
		t.Fatal("calibration to the Xeon pair changed nothing; the test cannot detect tearing")
	}

	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := e.Estimate(plan)
				if err != nil {
					t.Errorf("concurrent estimate: %v", err)
					return
				}
				if got != onTrainPair && got != onXeon {
					t.Errorf("torn estimate %+v matches neither pair's serial result", got)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		pair := PairXeon
		if i%2 == 1 {
			pair = PairOpteron
		}
		if err := e.Calibrate(pair); err != nil {
			t.Errorf("calibrate: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()

	// Leave the shared estimator as trained for the other tests.
	if err := e.Calibrate(PairOpteron); err != nil {
		t.Fatal(err)
	}
	if e.Pair() != PairOpteron {
		t.Errorf("pair after recalibration = %s", e.Pair())
	}
}
