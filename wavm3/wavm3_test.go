package wavm3

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/vm"
)

// sharedEstimator trains one quick estimator for the whole test file; the
// campaign behind it costs a few seconds.
var (
	estOnce sync.Once
	est     *Estimator
	estErr  error
)

func quickEstimator(t *testing.T) *Estimator {
	t.Helper()
	if testing.Short() {
		t.Skip("estimator training is a campaign-scale test")
	}
	estOnce.Do(func() {
		est, estErr = TrainEstimator(TrainingConfig{Quick: true, RunsPerPoint: 2, Seed: 7})
	})
	if estErr != nil {
		t.Fatal(estErr)
	}
	return est
}

func TestPlanValidate(t *testing.T) {
	good := Plan{Kind: Live, VMMemoryBytes: 4 << 30, VMBusyVCPUs: 1, DirtyRatio: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := []Plan{
		{},
		{VMMemoryBytes: -1},
		{VMMemoryBytes: 1, DirtyRatio: 2},
		{VMMemoryBytes: 1, VMBusyVCPUs: -1},
		{VMMemoryBytes: 1, SourceBusyThreads: -1},
		{VMMemoryBytes: 1, BandwidthBitsPerSec: -5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestEstimateBasics(t *testing.T) {
	e := quickEstimator(t)
	plan := Plan{
		Kind:          Live,
		VMMemoryBytes: 4 << 30,
		VMBusyVCPUs:   1,
		DirtyRatio:    0.05,
	}
	est, err := e.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if est.Source <= 0 || est.Target <= 0 {
		t.Fatalf("non-positive energies: %+v", est)
	}
	if est.Total() != est.Source+est.Target {
		t.Error("total mismatch")
	}
	// A 4 GiB transfer at several hundred Mbit/s takes tens of seconds.
	if est.Duration.Seconds() < 20 || est.Duration.Seconds() > 600 {
		t.Errorf("duration = %v, implausible", est.Duration)
	}
	if est.TransferBytes < 4<<30 {
		t.Errorf("transfer bytes = %d, must cover the image", est.TransferBytes)
	}
	if _, err := e.Estimate(Plan{}); err == nil {
		t.Error("invalid plan must fail")
	}
}

func TestEstimateMonotoneInDirtyRatio(t *testing.T) {
	e := quickEstimator(t)
	base := Plan{Kind: Live, VMMemoryBytes: 4 << 30, VMBusyVCPUs: 1}
	lo := base
	lo.DirtyRatio = 0.05
	hi := base
	hi.DirtyRatio = 0.95
	elo, err := e.Estimate(lo)
	if err != nil {
		t.Fatal(err)
	}
	ehi, err := e.Estimate(hi)
	if err != nil {
		t.Fatal(err)
	}
	// Higher dirty ratio → more retransmission → longer, costlier migration.
	if ehi.TransferBytes <= elo.TransferBytes {
		t.Errorf("bytes: hi %d !> lo %d", ehi.TransferBytes, elo.TransferBytes)
	}
	if ehi.Duration <= elo.Duration {
		t.Errorf("duration: hi %v !> lo %v", ehi.Duration, elo.Duration)
	}
	if ehi.Total() <= elo.Total() {
		t.Errorf("energy: hi %v !> lo %v", ehi.Total(), elo.Total())
	}
}

func TestEstimateMonotoneInHostLoad(t *testing.T) {
	e := quickEstimator(t)
	idle := Plan{Kind: NonLive, VMMemoryBytes: 4 << 30}
	loaded := idle
	loaded.SourceBusyThreads = 32 // saturated source throttles the helper
	ei, err := e.Estimate(idle)
	if err != nil {
		t.Fatal(err)
	}
	el, err := e.Estimate(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if el.Duration <= ei.Duration {
		t.Errorf("loaded-source duration %v !> idle %v", el.Duration, ei.Duration)
	}
	if el.Total() <= ei.Total() {
		t.Errorf("loaded-source energy %v !> idle %v", el.Total(), ei.Total())
	}
}

func TestEstimateNonLiveIgnoresDirtyExpansion(t *testing.T) {
	e := quickEstimator(t)
	p := Plan{Kind: NonLive, VMMemoryBytes: 4 << 30, DirtyRatio: 0.95}
	est, err := e.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if est.TransferBytes != 4<<30 {
		t.Errorf("non-live transfer = %d bytes, want exactly the image", est.TransferBytes)
	}
}

func TestCompareBaselinesOrdering(t *testing.T) {
	e := quickEstimator(t)
	res, err := e.CompareBaselines(Live)
	if err != nil {
		t.Fatal(err)
	}
	for _, host := range []string{"Source", "Target"} {
		w := res["WAVM3"][host]
		if w <= 0 {
			t.Fatalf("missing WAVM3 NRMSE for %s", host)
		}
		for _, other := range []string{"LIU", "STRUNK"} {
			if res[other][host] <= w {
				t.Errorf("%s live: %s NRMSE %.3f should exceed WAVM3 %.3f", host, other, res[other][host], w)
			}
		}
	}
}

func TestTrainBaselines(t *testing.T) {
	e := quickEstimator(t)
	h, l, s, err := e.TrainBaselines()
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "HUANG" || l.Name() != "LIU" || s.Name() != "STRUNK" {
		t.Error("baseline identities wrong")
	}
}

func TestEstimatorMeta(t *testing.T) {
	e := quickEstimator(t)
	if e.Pair() != PairOpteron {
		t.Errorf("pair = %s", e.Pair())
	}
	if !strings.Contains(e.String(), "m01-m02") {
		t.Errorf("String = %q", e.String())
	}
	if e.Suite() == nil {
		t.Error("suite must be accessible")
	}
}

func TestSimulateFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	run, err := Simulate(Scenario{
		Kind:          NonLive,
		MigratingType: vm.TypeMigratingCPU,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.SourceEnergy.Total() <= 0 {
		t.Error("simulation produced no energy")
	}
	runs, err := SimulateRepeated(Scenario{
		Kind:          NonLive,
		MigratingType: vm.TypeMigratingCPU,
		Seed:          4,
	}, 2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) < 2 {
		t.Errorf("repeated runs = %d, want ≥ 2", len(runs))
	}
}

func TestPlanConsolidation(t *testing.T) {
	e := quickEstimator(t)
	hosts := []HostState{
		{Name: "a", Threads: 32, MemBytes: GiB(32), IdlePower: 440, VMs: []VMState{
			{Name: "db", MemBytes: GiB(4), BusyVCPUs: 8, DirtyRatio: 0.6},
		}},
		{Name: "b", Threads: 32, MemBytes: GiB(32), IdlePower: 440, VMs: []VMState{
			{Name: "batch", MemBytes: GiB(4), BusyVCPUs: 6, DirtyRatio: 0.05},
		}},
		{Name: "c", Threads: 32, MemBytes: GiB(32), IdlePower: 440, VMs: []VMState{
			{Name: "cache", MemBytes: GiB(4), BusyVCPUs: 2, DirtyRatio: 0.9},
		}},
	}
	plan, err := e.PlanConsolidation(hosts, ConsolidationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.FreedHosts) == 0 {
		t.Fatal("energy-aware plan freed no hosts")
	}
	if plan.MigrationEnergy <= 0 {
		t.Error("plan has no migration cost")
	}
	pb, err := plan.Payback()
	if err != nil {
		t.Fatal(err)
	}
	if pb <= 0 || pb > time.Hour {
		t.Errorf("payback = %v, implausible", pb)
	}
	// The FFD baseline also runs and prices its moves.
	ffd, err := e.PlanConsolidationFFD(hosts, ConsolidationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ffd.Moves {
		if m.Cost.Energy <= 0 {
			t.Errorf("FFD move %v has no price", m)
		}
	}
}

// TestEstimateMatchesSimulation closes the loop: the estimator's synthetic
// phase-timeline prediction must land near what the full simulator
// actually measures for an equivalent scenario. This is the end-to-end
// check that the trained model plus the duration heuristics are usable for
// real decisions, not just for fitting their own training data.
func TestEstimateMatchesSimulation(t *testing.T) {
	e := quickEstimator(t)
	cases := []struct {
		name string
		plan Plan
		sc   Scenario
	}{
		{
			name: "non-live idle hosts",
			plan: Plan{Kind: NonLive, VMMemoryBytes: 4 << 30, VMBusyVCPUs: 4},
			sc: Scenario{
				Kind:          NonLive,
				MigratingType: vm.TypeMigratingCPU,
				Seed:          51,
			},
		},
		{
			name: "non-live loaded source",
			plan: Plan{Kind: NonLive, VMMemoryBytes: 4 << 30, VMBusyVCPUs: 4, SourceBusyThreads: 20},
			sc: Scenario{
				Kind:          NonLive,
				MigratingType: vm.TypeMigratingCPU,
				SourceLoadVMs: 5, // 5 × 4 vCPUs = 20 busy threads
				Seed:          52,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			est, err := e.Estimate(tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			run, err := Simulate(tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			measured := float64(run.SourceEnergy.Total() + run.TargetEnergy.Total())
			predicted := float64(est.Total())
			rel := (predicted - measured) / measured
			if rel < -0.3 || rel > 0.3 {
				t.Errorf("prediction %0.f J vs measured %0.f J: off by %.0f%%, want within ±30%%",
					predicted, measured, rel*100)
			}
			// Duration should be the right order of magnitude too.
			simDur := (run.Bounds.ME - run.Bounds.MS).Seconds()
			if d := est.Duration.Seconds(); d < simDur*0.6 || d > simDur*1.6 {
				t.Errorf("predicted duration %.0fs vs simulated %.0fs", d, simDur)
			}
		})
	}
}
