// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation section. One benchmark per artefact:
//
//	Fig. 2   BenchmarkFig2Phases
//	Fig. 3   BenchmarkFig3CPULoadSource
//	Fig. 4   BenchmarkFig4CPULoadTarget
//	Fig. 5   BenchmarkFig5MemLoadVM
//	Fig. 6   BenchmarkFig6MemLoadSource
//	Fig. 7   BenchmarkFig7MemLoadTarget
//	Tab. III BenchmarkTable3CoefficientsNonLive
//	Tab. IV  BenchmarkTable4CoefficientsLive
//	Tab. V   BenchmarkTable5NRMSE
//	Tab. VI  BenchmarkTable6BaselineCoefficients
//	Tab. VII BenchmarkTable7Comparison
//	—        BenchmarkAblationLiveFeatures (design-choice ablation)
//	—        BenchmarkCampaign{Sequential,Parallel} and
//	         BenchmarkRepeatedRuns{Sequential,Parallel}: the parallel
//	         engine's speedup on identical workloads (outputs are
//	         bit-identical; only wall-clock differs)
//
// Each benchmark prints its artefact once (the rows/series the paper
// reports) and then measures the cost of regenerating it. The sweeps use
// the paper's load levels with a reduced repeat count so the whole harness
// completes in minutes; `cmd/wavm3bench` (without -quick) runs the
// paper-faithful ≥10-repeat protocol.
package repro

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/vm"
)

// benchConfig uses the paper's full sweep levels with two repeats.
func benchConfig(pair string, seed int64) experiments.Config {
	cfg := experiments.DefaultConfig(pair)
	cfg.MinRuns = 2
	cfg.VarianceTol = 0.9
	cfg.Seed = seed
	return cfg
}

// printOnce gates artefact output so repeated benchmark iterations do not
// spam the log.
var printed sync.Map

func emitOnce(key string, f func()) {
	if _, dup := printed.LoadOrStore(key, true); !dup {
		f()
	}
}

// benchFamilyFigure is the shared body of the figure benchmarks.
func benchFamilyFigure(b *testing.B, fam experiments.Family, seed int64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		prs, err := experiments.RunFamily(benchConfig(hw.PairM, seed), fam)
		if err != nil {
			b.Fatal(err)
		}
		fig, err := experiments.FamilyFigure(fam, prs)
		if err != nil {
			b.Fatal(err)
		}
		emitOnce(fig.ID, func() {
			if err := report.WriteFigure(os.Stdout, fig, 20); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkFig2Phases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure2(benchConfig(hw.PairM, 2))
		if err != nil {
			b.Fatal(err)
		}
		emitOnce(fig.ID, func() {
			if err := report.WriteFigure(os.Stdout, fig, 20); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkFig3CPULoadSource(b *testing.B) {
	benchFamilyFigure(b, experiments.CPULoadSource, 3)
}

func BenchmarkFig4CPULoadTarget(b *testing.B) {
	benchFamilyFigure(b, experiments.CPULoadTarget, 4)
}

func BenchmarkFig5MemLoadVM(b *testing.B) {
	benchFamilyFigure(b, experiments.MemLoadVM, 5)
}

func BenchmarkFig6MemLoadSource(b *testing.B) {
	benchFamilyFigure(b, experiments.MemLoadSource, 6)
}

func BenchmarkFig7MemLoadTarget(b *testing.B) {
	benchFamilyFigure(b, experiments.MemLoadTarget, 7)
}

// suiteOnce builds the shared model-evaluation suite (m- and o-pair
// campaigns plus training) once; the table benchmarks measure artefact
// generation on top of it.
var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		m, err := experiments.RunCampaign(benchConfig(hw.PairM, 11),
			experiments.CPULoadSource, experiments.CPULoadTarget, experiments.MemLoadVM)
		if err != nil {
			suiteErr = err
			return
		}
		o, err := experiments.RunCampaign(benchConfig(hw.PairO, 12),
			experiments.CPULoadSource, experiments.CPULoadTarget, experiments.MemLoadVM)
		if err != nil {
			suiteErr = err
			return
		}
		suite, suiteErr = experiments.BuildSuite(m, o)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

func benchCoeffTable(b *testing.B, kind migration.Kind) {
	b.Helper()
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, err := s.CoefficientTable(kind)
		if err != nil {
			b.Fatal(err)
		}
		emitOnce(ct.ID, func() {
			if err := report.CoeffTable(ct).Write(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkTable3CoefficientsNonLive(b *testing.B) {
	benchCoeffTable(b, migration.NonLive)
}

func BenchmarkTable4CoefficientsLive(b *testing.B) {
	benchCoeffTable(b, migration.Live)
}

func BenchmarkTable5NRMSE(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t5, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		emitOnce(t5.ID, func() {
			if err := report.NRMSETable(t5).Write(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkTable6BaselineCoefficients(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t6, err := s.Table6()
		if err != nil {
			b.Fatal(err)
		}
		emitOnce("table6", func() {
			if err := report.BaselineTable(t6).Write(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkTable7Comparison(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t7, err := s.Table7()
		if err != nil {
			b.Fatal(err)
		}
		emitOnce("table7", func() {
			if err := report.ComparisonTable(t7).Write(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkCrossValidationLive(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv, err := s.CrossValidateLive(4)
		if err != nil {
			b.Fatal(err)
		}
		emitOnce("xval", func() {
			if err := report.CrossValTable(cv).Write(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// benchCampaignWorkers measures the model-training campaign (the three
// families TrainEstimator runs) at a fixed worker count. Comparing the
// Sequential and Parallel variants measures the parallel engine's
// wall-clock speedup; their outputs are bit-identical by construction
// (see TestCampaignDeterministicAcrossWorkers), so only the time differs.
//
//	go test -run='^$' -bench='BenchmarkCampaign' -benchtime=3x .
func benchCampaignWorkers(b *testing.B, workers int) {
	b.Helper()
	cfg := benchConfig(hw.PairM, 31)
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunCampaign(cfg,
			experiments.CPULoadSource, experiments.CPULoadTarget, experiments.MemLoadVM)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignSequential is the pre-parallel-engine baseline: one
// experimental point at a time, one run at a time.
func BenchmarkCampaignSequential(b *testing.B) { benchCampaignWorkers(b, 1) }

// BenchmarkCampaignParallel fans points and repeated runs across all CPUs.
func BenchmarkCampaignParallel(b *testing.B) { benchCampaignWorkers(b, 0) }

// BenchmarkCampaignParallelCached is BenchmarkCampaignParallel with a
// fresh run cache per iteration: it adds the within-campaign overlap
// (families share their zero-load baseline points) on top of the kernel
// speed, without letting iterations feed each other.
func BenchmarkCampaignParallelCached(b *testing.B) {
	cfg := benchConfig(hw.PairM, 31)
	cfg.Workers = 0
	for i := 0; i < b.N; i++ {
		cfg.Cache = sim.NewCache(0)
		_, err := experiments.RunCampaign(cfg,
			experiments.CPULoadSource, experiments.CPULoadTarget, experiments.MemLoadVM)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionWarmCache measures the wavm3bench session shape: the
// figure family campaigns followed by the table campaign over the same
// three families, all sharing one cache — the second pass answers
// entirely from memory, which is the cross-campaign win the run cache
// exists for.
func BenchmarkSessionWarmCache(b *testing.B) {
	families := []experiments.Family{
		experiments.CPULoadSource, experiments.CPULoadTarget, experiments.MemLoadVM}
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(hw.PairM, 31)
		cfg.Cache = sim.NewCache(0)
		for _, fam := range families { // the figure pass
			if _, err := experiments.RunFamily(cfg, fam); err != nil {
				b.Fatal(err)
			}
		}
		// The table pass re-runs the same families through RunCampaign.
		if _, err := experiments.RunCampaign(cfg, families...); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRepeatedWorkers isolates the repeated-run driver: one scenario run
// to the paper's ≥10-repeat rule, sequentially vs across all CPUs.
func benchRepeatedWorkers(b *testing.B, workers int) {
	b.Helper()
	sc := sim.Scenario{
		Kind:          migration.Live,
		MigratingType: vm.TypeMigratingMem,
		Seed:          37,
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunRepeatedWorkers(sc, 10, 0.10, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepeatedRunsSequential(b *testing.B) { benchRepeatedWorkers(b, 1) }

func BenchmarkRepeatedRunsParallel(b *testing.B) { benchRepeatedWorkers(b, 0) }

func BenchmarkAblationLiveFeatures(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		abs, err := experiments.AblateLive(s)
		if err != nil {
			b.Fatal(err)
		}
		emitOnce("ablation", func() {
			fmt.Println("Feature ablation (live migration, NRMSE on test split):")
			fmt.Printf("%-12s %10s %10s\n", "variant", "Source", "Target")
			for _, a := range abs {
				fmt.Printf("%-12s %9.2f%% %9.2f%%\n", a.Variant,
					a.NRMSE[core.Source]*100, a.NRMSE[core.Target]*100)
			}
		})
	}
}
