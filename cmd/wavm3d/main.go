// Command wavm3d serves the simulated testbed as a long-lived HTTP
// daemon: POST a scenario spec (or name a library entry) and get back
// exactly the bytes wavm3scen would print for it — the rendering code
// is shared, so golden outputs hold over HTTP too.
//
// Endpoints:
//
//	POST /v1/runs           execute the scenario spec in the body
//	POST /v1/runs?name=X    execute library scenario X (needs -dir)
//	GET  /v1/scenarios      list the loaded library
//	GET  /healthz           liveness (200 while the process is up)
//	GET  /readyz            readiness (503 once draining begins)
//
// Robustness: admission is bounded (-max-concurrent running plus
// -queue waiting; beyond that, 429 with Retry-After), each run is
// bounded by -run-timeout and cancelled the moment its client
// disconnects, and SIGTERM/SIGINT drain gracefully — stop admitting,
// let in-flight runs finish up to -drain, cancel the stragglers, exit 0.
//
// With -cache-dir the run cache gains a persistent tier: completed
// simulations are published as checksummed artefacts in that directory
// and answered from disk on later runs — by this daemon, other
// replicas sharing the directory, or the CLIs. The tier sits behind a
// resilience policy (per-op timeouts, retries, a circuit breaker that
// degrades the daemon to memory-only while the store is sick — see the
// -cache-op-timeout/-cache-retries/-cache-breaker flags), publishes
// asynchronously, and flushes queued publishes during the SIGTERM
// drain. /healthz reports the cache counters (kernel_runs, disk_hits,
// quarantined, breaker_state, …), so a warm replica can be observed
// serving without executing a single kernel, and a replica riding out
// a store outage can be observed doing so without a failed request.
//
// Usage:
//
//	wavm3d -addr :8080 -dir scenarios/ -cache-dir /var/cache/wavm3
//	curl -s --data-binary @scenarios/c1-cpuload-live.json localhost:8080/v1/runs
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dir     = flag.String("dir", "", "scenario library to serve (enables /v1/scenarios and ?name= runs)")
		maxConc = flag.Int("max-concurrent", 4, "runs executing at once")
		queue   = flag.Int("queue", 8, "runs waiting for a slot; beyond max-concurrent+queue, 429")
		runTO   = flag.Duration("run-timeout", 2*time.Minute, "per-run wall-clock bound (queue wait included)")
		drain   = flag.Duration("drain", 30*time.Second, "SIGTERM grace: how long in-flight runs may finish before being cancelled")
	)
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "wavm3d: unexpected argument %q (the daemon takes only flags)\n", flag.Arg(0))
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "wavm3d: ", log.LstdFlags)
	cache, err := common.Cache()
	if err != nil {
		logger.Fatal(err)
	}
	stopProf, err := common.StartProfiles()
	if err != nil {
		logger.Fatal(err)
	}
	srv, err := service.New(service.Config{
		Addr:           *addr,
		ScenarioDir:    *dir,
		MaxConcurrent:  *maxConc,
		QueueDepth:     *queue,
		RequestTimeout: *runTO,
		Workers:        common.Workers,
		Cache:          cache,
		Logger:         logger,
	})
	if err != nil {
		logger.Fatal(err)
	}

	// SIGTERM/SIGINT start the drain; a second signal during the drain
	// is not special-cased — the drain deadline already bounds exit.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() {
		sig := <-sigs
		logger.Printf("received %v, draining (grace %v)", sig, *drain)
		done <- srv.Shutdown(*drain)
	}()

	logger.Printf("serving on %s (library: %q, %d slots + %d queued)", *addr, *dir, *maxConc, *queue)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	if err := <-done; err != nil {
		logger.Fatal(err)
	}
	if err := stopProf(); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("drained, exiting")
}
