// Command wavm3sim runs one experiment family (or a single scenario) on
// the simulated testbed and prints the power traces and per-phase
// energies, optionally dumping per-series CSV files compatible with the
// paper's figure data.
//
// Usage:
//
//	wavm3sim -family CPULOAD-SOURCE -pair m01-m02 -runs 3 -csv out/
//	wavm3sim -family MEMLOAD-VM -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	var (
		family = flag.String("family", "CPULOAD-SOURCE", "experiment family: CPULOAD-SOURCE, CPULOAD-TARGET, MEMLOAD-VM, MEMLOAD-SOURCE, MEMLOAD-TARGET")
		pair   = flag.String("pair", hw.PairM, "machine pair: m01-m02 or o1-o2")
		runs   = flag.Int("runs", 3, "minimum repeats per experimental point")
		quick  = flag.Bool("quick", false, "sweep only the extreme load/dirty levels")
		csvDir = flag.String("csv", "", "directory to write per-series CSV trace files (optional)")
		seed   = flag.Int64("seed", 1, "campaign seed")
	)
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	cache, err := common.Cache()
	if err != nil {
		fatal(err)
	}
	stopProf, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	cfg := experiments.Config{Pair: *pair, MinRuns: *runs, VarianceTol: 0.5, Seed: *seed, Workers: common.Workers, Cache: cache}
	if *quick {
		cfg.LoadLevels = []int{0, 8}
		cfg.DirtyLevels = []units.Fraction{0.05, 0.95}
	}
	perf := common.NewBenchReport("wavm3sim")
	perf.Quick = *quick
	perf.Seed = *seed
	started := time.Now()

	f := experiments.Family(*family)
	t0 := time.Now()
	prs, err := experiments.RunFamily(cfg, f)
	if err != nil {
		fatal(err)
	}
	perf.Add(string(f), time.Since(t0))
	fig, err := experiments.FamilyFigure(f, prs)
	if err != nil {
		fatal(err)
	}
	if err := report.WriteFigure(os.Stdout, fig, 30); err != nil {
		fatal(err)
	}

	fmt.Println()
	for _, pr := range prs {
		label := fmt.Sprintf("%s %s %s", f, pr.Point.Kind, pr.Point.Label())
		run := pr.Runs[0]
		if err := report.PhaseSummary(os.Stdout, label, run.SourceEnergy, run.TargetEnergy); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if err := common.Finish(os.Stderr, perf, cache, started); err != nil {
		fatal(err)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		for _, p := range fig.Panels {
			for _, s := range p.Series {
				name := fmt.Sprintf("%s_%s_%s.csv", sanitize(string(f)), sanitize(p.Name), sanitize(s.Label))
				path := filepath.Join(*csvDir, name)
				fh, err := os.Create(path)
				if err != nil {
					fatal(err)
				}
				if err := s.Trace.WriteCSV(fh); err != nil {
					fh.Close()
					fatal(err)
				}
				if err := fh.Close(); err != nil {
					fatal(err)
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
}

func sanitize(s string) string {
	s = strings.ToLower(s)
	s = strings.NewReplacer(" ", "-", "%", "pct", "/", "-").Replace(s)
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wavm3sim:", err)
	os.Exit(1)
}
