// Command wavm3fit runs a measurement campaign on the simulated m01–m02
// testbed, fits the WAVM3 model and the three baselines, and prints the
// coefficient tables (Tables III, IV and VI of the paper).
//
// Usage:
//
//	wavm3fit            # full sweeps, 10 runs per point (minutes)
//	wavm3fit -quick     # extreme sweep points, 2 runs (seconds)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "trim sweeps and repeats for a fast demonstration")
		runs  = flag.Int("runs", 0, "override repeats per point (0 = 10, or 2 with -quick)")
		seed  = flag.Int64("seed", 1, "campaign seed")
	)
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	cache, err := common.Cache()
	if err != nil {
		fatal(err)
	}
	stopProf, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	cfg := experiments.DefaultConfig(hw.PairM)
	cfg.Seed = *seed
	cfg.Workers = common.Workers
	cfg.Cache = cache
	if *quick {
		cfg.MinRuns = 2
		cfg.VarianceTol = 0.9
		cfg.LoadLevels = []int{0, 5, 8}
		cfg.DirtyLevels = []units.Fraction{0.05, 0.55, 0.95}
	}
	if *runs > 0 {
		cfg.MinRuns = *runs
	}
	perf := common.NewBenchReport("wavm3fit")
	perf.Quick = *quick
	perf.Seed = *seed
	started := time.Now()

	fmt.Fprintln(os.Stderr, "wavm3fit: running campaign (CPULOAD-SOURCE, CPULOAD-TARGET, MEMLOAD-VM)...")
	t0 := time.Now()
	camp, err := experiments.RunCampaign(cfg,
		experiments.CPULoadSource, experiments.CPULoadTarget, experiments.MemLoadVM)
	if err != nil {
		fatal(err)
	}
	perf.Add("campaign", time.Since(t0))
	t0 = time.Now()
	suite, err := experiments.BuildSuite(camp, nil)
	if err != nil {
		fatal(err)
	}
	perf.Add("training", time.Since(t0))

	t0 = time.Now()
	for _, kind := range []migration.Kind{migration.NonLive, migration.Live} {
		ct, err := suite.CoefficientTable(kind)
		if err != nil {
			fatal(err)
		}
		if err := report.CoeffTable(ct).Write(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	t6, err := suite.Table6()
	if err != nil {
		fatal(err)
	}
	if err := report.BaselineTable(t6).Write(os.Stdout); err != nil {
		fatal(err)
	}
	perf.Add("tables", time.Since(t0))

	if err := common.Finish(os.Stderr, perf, cache, started); err != nil {
		fatal(err)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wavm3fit:", err)
	os.Exit(1)
}
