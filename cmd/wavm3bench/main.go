// Command wavm3bench regenerates every table and figure of the paper's
// evaluation section in one run: Figures 2–7 (power traces per experiment
// family) and Tables III–VII (coefficients, NRMSE and the four-model
// comparison).
//
// All campaigns share one run cache: the table campaigns re-run the same
// families as Figures 3–5, and every family revisits the zero-load
// baseline, so each distinct (scenario, seed) block simulates exactly
// once per session. Cached results are bit-identical to fresh runs.
//
// Usage:
//
//	wavm3bench                      # everything, paper-scale sweeps (minutes)
//	wavm3bench -quick               # everything, reduced sweeps (tens of seconds)
//	wavm3bench -only table7         # one artefact: fig2..fig7, table3..table7
//	wavm3bench -benchjson perf.json # also write machine-readable timings
//	wavm3bench -quick -timeout 5m   # bounded session
//
// Exit codes: 0 success, 1 failure, 2 usage, 3 -timeout expired before
// the artefacts finished.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/report"
	"repro/internal/units"
)

// artefacts in paper order.
var artefactOrder = []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table3", "table4", "table5", "table6", "table7", "ablation", "xval"}

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced sweeps and repeats")
		only  = flag.String("only", "", "comma-separated artefacts (fig2..fig7, table3..table7); empty = all")
		seed  = flag.Int64("seed", 1, "campaign seed")
	)
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	want := map[string]bool{}
	if *only == "" {
		for _, a := range artefactOrder {
			want[a] = true
		}
	} else {
		for _, a := range strings.Split(*only, ",") {
			a = strings.TrimSpace(strings.ToLower(a))
			want[a] = true
		}
	}

	ctx, cancel := common.Context()
	defer cancel()
	cache, err := common.Cache()
	if err != nil {
		fatal(err)
	}
	stopProf, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	mcfg := experiments.DefaultConfig(hw.PairM)
	mcfg.Seed = *seed
	mcfg.Workers = common.Workers
	mcfg.Cache = cache
	mcfg.Ctx = ctx
	ocfg := experiments.DefaultConfig(hw.PairO)
	ocfg.Seed = *seed + 1000
	ocfg.Workers = common.Workers
	ocfg.Cache = cache
	ocfg.Ctx = ctx
	if *quick {
		for _, c := range []*experiments.Config{&mcfg, &ocfg} {
			c.MinRuns = 2
			c.VarianceTol = 0.9
			c.LoadLevels = []int{0, 5, 8}
			c.DirtyLevels = []units.Fraction{0.05, 0.55, 0.95}
		}
	}

	perf := common.NewBenchReport("wavm3bench")
	perf.Quick = *quick
	perf.Seed = *seed
	started := time.Now()
	timed := func(id string, f func()) {
		t0 := time.Now()
		f()
		perf.Add(id, time.Since(t0))
	}

	// Figures come straight from family campaigns; the shared cache lets
	// the table suite reuse the m-pair family runs below.
	famFor := map[string]experiments.Family{
		"fig3": experiments.CPULoadSource,
		"fig4": experiments.CPULoadTarget,
		"fig5": experiments.MemLoadVM,
		"fig6": experiments.MemLoadSource,
		"fig7": experiments.MemLoadTarget,
	}

	if want["fig2"] {
		timed("fig2", func() {
			fig, err := experiments.Figure2(mcfg)
			if err != nil {
				fatal(err)
			}
			emit(fig)
		})
	}
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7"} {
		if !want[id] {
			continue
		}
		timed(id, func() {
			prs, err := experiments.RunFamily(mcfg, famFor[id])
			if err != nil {
				fatal(err)
			}
			fig, err := experiments.FamilyFigure(famFor[id], prs)
			if err != nil {
				fatal(err)
			}
			emit(fig)
		})
	}

	needTables := want["table3"] || want["table4"] || want["table5"] || want["table6"] ||
		want["table7"] || want["ablation"] || want["xval"]
	if needTables {
		fmt.Fprintln(os.Stderr, "wavm3bench: running model campaigns on both machine pairs...")
		var (
			mCamp, oCamp *experiments.Campaign
			suite        *experiments.Suite
			err          error
		)
		timed("campaign-m", func() {
			mCamp, err = experiments.RunCampaign(mcfg,
				experiments.CPULoadSource, experiments.CPULoadTarget, experiments.MemLoadVM)
			if err != nil {
				fatal(err)
			}
		})
		if want["table5"] {
			timed("campaign-o", func() {
				oCamp, err = experiments.RunCampaign(ocfg,
					experiments.CPULoadSource, experiments.CPULoadTarget, experiments.MemLoadVM)
				if err != nil {
					fatal(err)
				}
			})
		}
		timed("training", func() {
			suite, err = experiments.BuildSuite(mCamp, oCamp)
			if err != nil {
				fatal(err)
			}
		})
		if want["table3"] {
			timed("table3", func() {
				ct, err := suite.CoefficientTable(migration.NonLive)
				if err != nil {
					fatal(err)
				}
				writeTable(report.CoeffTable(ct))
			})
		}
		if want["table4"] {
			timed("table4", func() {
				ct, err := suite.CoefficientTable(migration.Live)
				if err != nil {
					fatal(err)
				}
				writeTable(report.CoeffTable(ct))
			})
		}
		if want["table5"] {
			timed("table5", func() {
				t5, err := suite.Table5()
				if err != nil {
					fatal(err)
				}
				writeTable(report.NRMSETable(t5))
			})
		}
		if want["table6"] {
			timed("table6", func() {
				t6, err := suite.Table6()
				if err != nil {
					fatal(err)
				}
				writeTable(report.BaselineTable(t6))
			})
		}
		if want["table7"] {
			timed("table7", func() {
				t7, err := suite.Table7()
				if err != nil {
					fatal(err)
				}
				writeTable(report.ComparisonTable(t7))
			})
		}
		if want["ablation"] {
			timed("ablation", func() {
				abs, err := experiments.AblateLive(suite)
				if err != nil {
					fatal(err)
				}
				fmt.Println("Feature ablation (live migration, NRMSE on test split):")
				for _, a := range abs {
					fmt.Printf("  %-12s source %6.2f%%  target %6.2f%%\n", a.Variant,
						a.NRMSE[core.Source]*100, a.NRMSE[core.Target]*100)
				}
				fmt.Println()
			})
		}
		if want["xval"] {
			timed("xval", func() {
				cv, err := suite.CrossValidateLive(4)
				if err != nil {
					fatal(err)
				}
				writeTable(report.CrossValTable(cv))
			})
		}
	}

	if err := common.Finish(os.Stderr, perf, cache, started); err != nil {
		fatal(err)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wavm3bench: done in %v\n", time.Since(started).Round(time.Second))
}

func emit(fig *experiments.Figure) {
	if err := report.WriteFigure(os.Stdout, fig, 25); err != nil {
		fatal(err)
	}
	fmt.Println()
}

func writeTable(t *report.Table) {
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()
}

// fatal reports err and exits: code 3 when -timeout expired, 1 for
// every other failure.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wavm3bench:", err)
	if cliflags.IsDeadline(err) {
		os.Exit(cliflags.ExitDeadline)
	}
	os.Exit(1)
}
