// Command wavm3bench regenerates every table and figure of the paper's
// evaluation section in one run: Figures 2–7 (power traces per experiment
// family) and Tables III–VII (coefficients, NRMSE and the four-model
// comparison).
//
// Usage:
//
//	wavm3bench                 # everything, paper-scale sweeps (minutes)
//	wavm3bench -quick          # everything, reduced sweeps (tens of seconds)
//	wavm3bench -only table7    # one artefact: fig2..fig7, table3..table7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/report"
	"repro/internal/units"
)

// artefacts in paper order.
var artefactOrder = []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table3", "table4", "table5", "table6", "table7", "ablation", "xval"}

func main() {
	var (
		quick   = flag.Bool("quick", false, "reduced sweeps and repeats")
		only    = flag.String("only", "", "comma-separated artefacts (fig2..fig7, table3..table7); empty = all")
		seed    = flag.Int64("seed", 1, "campaign seed")
		workers = flag.Int("workers", 0, "concurrent experimental points (0 = all CPUs, 1 = sequential; results identical)")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only == "" {
		for _, a := range artefactOrder {
			want[a] = true
		}
	} else {
		for _, a := range strings.Split(*only, ",") {
			a = strings.TrimSpace(strings.ToLower(a))
			want[a] = true
		}
	}

	mcfg := experiments.DefaultConfig(hw.PairM)
	mcfg.Seed = *seed
	mcfg.Workers = *workers
	ocfg := experiments.DefaultConfig(hw.PairO)
	ocfg.Seed = *seed + 1000
	ocfg.Workers = *workers
	if *quick {
		for _, c := range []*experiments.Config{&mcfg, &ocfg} {
			c.MinRuns = 2
			c.VarianceTol = 0.9
			c.LoadLevels = []int{0, 5, 8}
			c.DirtyLevels = []units.Fraction{0.05, 0.55, 0.95}
		}
	}

	started := time.Now()

	// Figures come straight from family campaigns; remember the results so
	// the table suite can reuse the m-pair data.
	famFor := map[string]experiments.Family{
		"fig3": experiments.CPULoadSource,
		"fig4": experiments.CPULoadTarget,
		"fig5": experiments.MemLoadVM,
		"fig6": experiments.MemLoadSource,
		"fig7": experiments.MemLoadTarget,
	}

	if want["fig2"] {
		fig, err := experiments.Figure2(mcfg)
		if err != nil {
			fatal(err)
		}
		emit(fig)
	}
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7"} {
		if !want[id] {
			continue
		}
		prs, err := experiments.RunFamily(mcfg, famFor[id])
		if err != nil {
			fatal(err)
		}
		fig, err := experiments.FamilyFigure(famFor[id], prs)
		if err != nil {
			fatal(err)
		}
		emit(fig)
	}

	needTables := want["table3"] || want["table4"] || want["table5"] || want["table6"] ||
		want["table7"] || want["ablation"] || want["xval"]
	if needTables {
		fmt.Fprintln(os.Stderr, "wavm3bench: running model campaigns on both machine pairs...")
		mCamp, err := experiments.RunCampaign(mcfg,
			experiments.CPULoadSource, experiments.CPULoadTarget, experiments.MemLoadVM)
		if err != nil {
			fatal(err)
		}
		var oCamp *experiments.Campaign
		if want["table5"] {
			oCamp, err = experiments.RunCampaign(ocfg,
				experiments.CPULoadSource, experiments.CPULoadTarget, experiments.MemLoadVM)
			if err != nil {
				fatal(err)
			}
		}
		suite, err := experiments.BuildSuite(mCamp, oCamp)
		if err != nil {
			fatal(err)
		}
		if want["table3"] {
			ct, err := suite.CoefficientTable(migration.NonLive)
			if err != nil {
				fatal(err)
			}
			writeTable(report.CoeffTable(ct))
		}
		if want["table4"] {
			ct, err := suite.CoefficientTable(migration.Live)
			if err != nil {
				fatal(err)
			}
			writeTable(report.CoeffTable(ct))
		}
		if want["table5"] {
			t5, err := suite.Table5()
			if err != nil {
				fatal(err)
			}
			writeTable(report.NRMSETable(t5))
		}
		if want["table6"] {
			t6, err := suite.Table6()
			if err != nil {
				fatal(err)
			}
			writeTable(report.BaselineTable(t6))
		}
		if want["table7"] {
			t7, err := suite.Table7()
			if err != nil {
				fatal(err)
			}
			writeTable(report.ComparisonTable(t7))
		}
		if want["ablation"] {
			abs, err := experiments.AblateLive(suite)
			if err != nil {
				fatal(err)
			}
			fmt.Println("Feature ablation (live migration, NRMSE on test split):")
			for _, a := range abs {
				fmt.Printf("  %-12s source %6.2f%%  target %6.2f%%\n", a.Variant,
					a.NRMSE[core.Source]*100, a.NRMSE[core.Target]*100)
			}
			fmt.Println()
		}
		if want["xval"] {
			cv, err := suite.CrossValidateLive(4)
			if err != nil {
				fatal(err)
			}
			writeTable(report.CrossValTable(cv))
		}
	}

	fmt.Fprintf(os.Stderr, "wavm3bench: done in %v\n", time.Since(started).Round(time.Second))
}

func emit(fig *experiments.Figure) {
	if err := report.WriteFigure(os.Stdout, fig, 25); err != nil {
		fatal(err)
	}
	fmt.Println()
}

func writeTable(t *report.Table) {
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wavm3bench:", err)
	os.Exit(1)
}
