// Command matrixmult runs the paper's CPU-intensive benchmark kernel for
// real: a goroutine-parallel dense matrix multiplication (the Go analogue
// of the paper's OpenMP C implementation). Useful for loading actual CPUs
// when validating the simulator's load model against a physical machine.
//
// Usage:
//
//	matrixmult -n 512 -workers 8 -duration 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 512, "matrix dimension")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		duration = flag.Duration("duration", 10*time.Second, "how long to run")
	)
	flag.Parse()

	m, err := workload.NewMatrixMult(*n, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "matrixmult:", err)
		os.Exit(1)
	}
	fmt.Printf("running %s for %v...\n", m, *duration)

	deadline := time.Now().Add(*duration)
	runs := 0
	started := time.Now()
	for time.Now().Before(deadline) {
		m.Run()
		runs++
	}
	elapsed := time.Since(started)
	flops := float64(m.FlopCount()) * float64(runs)
	fmt.Printf("completed %d multiplications in %v\n", runs, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.2f GFLOP/s (checksum %.4g)\n", flops/elapsed.Seconds()/1e9, m.Checksum())
}
