// Command wavm3scen runs declarative scenarios from the scenario library
// (scenarios/*.json) on the simulated testbed: single migrations, phased
// workload timelines (each phase an independently runnable block),
// data-centre plans executed move by move as measured migrations, and
// N-host cluster timelines evolved through policy ticks, contended
// links and workload phase transitions.
//
// Output on stdout is deterministic: the same scenario files produce
// bit-identical results across runs, worker counts and cache settings
// (seeds live in the scenario specs; timing chatter goes to stderr).
//
// Usage:
//
//	wavm3scen -dir scenarios/             # run every committed scenario
//	wavm3scen scenarios/memstorm-live.json            # run one file
//	wavm3scen 'scenarios/c1-*.json'       # run a glob
//	wavm3scen -check -dir scenarios/      # load+validate+compile only (CI)
//	wavm3scen -list -dir scenarios/       # print the library catalog
//	wavm3scen -dir scenarios/ -benchjson perf.json    # timing metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/units"
)

func main() {
	var (
		dir   = flag.String("dir", "", "run every *.json scenario in this directory")
		check = flag.Bool("check", false, "load, validate and compile the scenarios, run nothing (CI round-trip gate)")
		list  = flag.Bool("list", false, "print the scenario catalog and exit")
	)
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	if *dir == "" && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "wavm3scen: nothing to run; pass -dir <scenarios/> or scenario files (see -h)")
		os.Exit(2)
	}

	if *list {
		if *dir == "" {
			fatal(fmt.Errorf("-list needs -dir"))
		}
		infos, err := scenario.List(*dir)
		if err != nil {
			fatal(err)
		}
		for _, in := range infos {
			form := "migration"
			switch {
			case in.Datacenter:
				form = "datacenter"
			case in.Cluster > 0:
				form = fmt.Sprintf("cluster, %d hosts", in.Cluster)
			case in.Phases > 0:
				form = fmt.Sprintf("migration, %d phases", in.Phases)
			}
			fmt.Printf("%-24s (%s)\n    %s\n", in.Name, form, in.Description)
		}
		return
	}

	specs := loadSpecs(*dir, flag.Args())
	compiled := make([]*scenario.Compiled, len(specs))
	for i, s := range specs {
		c, err := s.Compile()
		if err != nil {
			fatal(err)
		}
		compiled[i] = c
	}
	if *check {
		for i, c := range compiled {
			switch {
			case c.Cluster != nil:
				fmt.Printf("ok %-24s cluster: %d host(s)\n", specs[i].Name, len(c.Cluster.Config.Hosts))
			case c.Plan != nil:
				fmt.Printf("ok %-24s %d block(s)\n", specs[i].Name, len(c.Plan.Plan.Moves))
			default:
				fmt.Printf("ok %-24s %d block(s)\n", specs[i].Name, len(c.Runs))
			}
		}
		return
	}

	cache := common.Cache()
	perf := common.NewBenchReport("wavm3scen")
	started := time.Now()

	for i, c := range compiled {
		t0 := time.Now()
		hits0, misses0 := cache.Stats()
		var rep *cluster.Report
		switch {
		case c.Cluster != nil:
			rep = execCluster(specs[i], c.Cluster, common.Workers, cache)
		case c.Plan != nil:
			execPlan(specs[i], c.Plan, common.Workers, cache)
		default:
			execRuns(specs[i], c.Runs, common.Workers, cache)
		}
		// Per-artefact cache effectiveness: this scenario's share of the
		// session cache traffic (a nil cache reads as zero lookups).
		hits1, misses1 := cache.Stats()
		perf.AddWithCache(specs[i].Name, time.Since(t0), hits1-hits0, misses1-misses0)
		// Chaos scenarios also record their SLO outcome in the artefact.
		if rep != nil && len(c.Cluster.Config.Failures) > 0 {
			perf.AnnotateSLO(report.SLO{
				AbortedFlights: rep.AbortedFlights,
				OrphanedVMs:    rep.OrphanedVMs,
				EvacuatedVMs:   rep.EvacuatedVMs,
				DeadlineMet:    rep.EvacuationDeadlineMet,
				FleetEnergyJ:   float64(rep.FleetEnergy),
			})
		}
	}

	if err := common.Finish(os.Stderr, perf, cache, started); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wavm3scen: %d scenario(s) in %v\n", len(specs), time.Since(started).Round(time.Millisecond))
}

// loadSpecs resolves -dir and positional file/glob arguments in order.
// The combined set is held to the same invariant a single directory is:
// unique names and unique effective seeds, so `-dir scenarios/ a.json`
// cannot run a scenario twice or smuggle in a seed collision.
func loadSpecs(dir string, args []string) []*scenario.Spec {
	var specs []*scenario.Spec
	if dir != "" {
		ds, err := scenario.LoadDir(dir)
		if err != nil {
			fatal(err)
		}
		specs = append(specs, ds...)
	}
	for _, a := range args {
		// Go's flag package stops at the first positional argument, so a
		// flag placed after a file would arrive here; refuse it instead of
		// trying to open a file called "-benchjson".
		if strings.HasPrefix(a, "-") {
			fatal(fmt.Errorf("flag %q after positional arguments; flags must come before scenario files", a))
		}
		if strings.ContainsAny(a, "*?[") {
			gs, err := scenario.LoadGlob(a)
			if err != nil {
				fatal(err)
			}
			specs = append(specs, gs...)
			continue
		}
		s, err := scenario.Load(a)
		if err != nil {
			fatal(err)
		}
		specs = append(specs, s)
	}
	if err := scenario.CheckUnique(specs); err != nil {
		fatal(err)
	}
	return specs
}

// execRuns executes the migration blocks of one spec and prints one
// result line per block.
func execRuns(s *scenario.Spec, runs []scenario.Run, workers int, cache *sim.Cache) {
	fmt.Printf("== %s\n", s.Name)
	scs := make([]sim.Scenario, len(runs))
	for i, r := range runs {
		scs[i] = r.Scenario
	}
	cfg := experiments.Config{
		Pair:        runs[0].Scenario.Pair,
		MinRuns:     runs[0].MinRuns,
		VarianceTol: runs[0].VarianceTol,
		Workers:     workers,
		Cache:       cache,
		Seed:        1, // unused: every compiled scenario carries its own seed
	}
	results, err := experiments.RunScenarios(cfg, scs...)
	if err != nil {
		fatal(err)
	}
	for i, res := range results {
		printRunLine(runs[i].Label, res.Runs)
	}
}

// printRunLine renders the mean measurements of one block's repeats —
// the same BlockSummary the golden-output regression test pins.
func printRunLine(label string, runs []*sim.RunResult) {
	b := scenario.Summarize(runs)
	fmt.Printf("   %-32s runs=%d  src %8.3f kJ  dst %8.3f kJ  total %8.3f kJ  moved %6.2f GiB  rounds %4.1f  down %6.2fs  dur %6.1fs\n",
		label, b.Runs, b.SourceJ/1e3, b.TargetJ/1e3, b.TotalJ()/1e3, b.MovedGiB(), b.Rounds, b.DowntimeS, b.DurationS)
}

// execPlan executes a data-centre scenario's move plan.
func execPlan(s *scenario.Spec, pr *scenario.PlanRun, workers int, cache *sim.Cache) {
	fmt.Printf("== %s (plan: %s)\n", s.Name, pr.Policy)
	ex := pr.Executor
	ex.Workers = workers
	ex.Cache = cache
	rep, err := ex.ExecutePlan(pr.Policy, pr.Plan, pr.Hosts)
	if err != nil {
		fatal(err)
	}
	for _, mv := range rep.Moves {
		fmt.Printf("   move %-14s %-12s -> %-12s  %8.3f kJ  %6.1fs  %6.2f GiB\n",
			mv.Move.VM, mv.Move.From, mv.Move.To,
			mv.MeasuredEnergy.KiloJoules(), mv.Duration.Seconds(), float64(mv.BytesSent)/float64(units.GiB))
	}
	fmt.Printf("   total %d move(s)  %8.3f kJ  %6.1fs\n",
		len(rep.Moves), rep.Total.KiloJoules(), rep.Elapsed.Seconds())
}

// execCluster executes an N-host cluster timeline: ticks, phase shifts,
// migrations — and, under failure injection, aborts and the SLO scores —
// are printed as deterministic sections, every energy
// contention-adjusted. The report is returned so the caller can record
// the SLO outcome in benchmark artefacts.
func execCluster(s *scenario.Spec, cr *scenario.ClusterRun, workers int, cache *sim.Cache) *cluster.Report {
	fmt.Printf("== %s (cluster: %d hosts, %s)\n", s.Name, len(cr.Config.Hosts), cr.Policy)
	rep, err := experiments.RunCluster(experiments.Config{Workers: workers, Cache: cache}, cr.Config)
	if err != nil {
		fatal(err)
	}
	for _, tick := range rep.Ticks {
		fmt.Printf("   tick  t=%9.1fs  planned %2d move(s)  %d pinned\n",
			tick.At.Seconds(), tick.Moves, tick.Pinned)
	}
	for _, sh := range rep.Shifts {
		next := sh.Phase
		if next == "" {
			next = "(hold)"
		}
		fmt.Printf("   shift t=%9.1fs  %s enters %s\n", sh.At.Seconds(), sh.VM, next)
	}
	for _, mv := range rep.Timeline {
		fmt.Printf("   move  %-12s %-10s -> %-10s [%-9s] t=%9.1fs ..%9.1fs  x%4.2f  %9.3f kJ  %6.2f GiB\n",
			mv.VM, mv.From, mv.To, mv.Pair,
			mv.Start.Seconds(), mv.End.Seconds(), mv.Stretch,
			mv.Energy.KiloJoules(), float64(mv.BytesSent)/float64(units.GiB))
	}
	for _, a := range rep.Aborted {
		fmt.Printf("   abort %-12s %-10s -> %-10s [%-8s] t=%9.1fs ..%9.1fs  %9.3f kJ charged  (%s)\n",
			a.VM, a.From, a.To, a.Phase,
			a.Start.Seconds(), a.End.Seconds(), a.Energy.KiloJoules(), a.Reason)
	}
	if len(rep.FreedHosts) > 0 {
		fmt.Printf("   freed %s  (%.0f W idle reclaimed)\n",
			strings.Join(rep.FreedHosts, ", "), float64(rep.IdleSavings))
	}
	if len(cr.Config.Failures) > 0 {
		deadline := "met"
		if !rep.EvacuationDeadlineMet {
			deadline = "MISSED"
		}
		fmt.Printf("   slo   %d aborted  %d orphaned  %d evacuated  deadline %s  fleet %9.3f kJ\n",
			rep.AbortedFlights, rep.OrphanedVMs, rep.EvacuatedVMs, deadline, rep.FleetEnergy.KiloJoules())
	}
	fmt.Printf("   total %d move(s)  %9.3f kJ  makespan %9.1fs\n",
		len(rep.Timeline), rep.TotalEnergy.KiloJoules(), rep.Makespan.Seconds())
	return rep
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wavm3scen:", err)
	os.Exit(1)
}
