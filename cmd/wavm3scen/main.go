// Command wavm3scen runs declarative scenarios from the scenario library
// (scenarios/*.json) on the simulated testbed: single migrations, phased
// workload timelines (each phase an independently runnable block),
// data-centre plans executed move by move as measured migrations, and
// N-host cluster timelines evolved through policy ticks, contended
// links and workload phase transitions.
//
// Output on stdout is deterministic: the same scenario files produce
// bit-identical results across runs, worker counts and cache settings
// (seeds live in the scenario specs; timing chatter goes to stderr).
// The rendering is shared with the wavm3d daemon (internal/service), so
// an HTTP run of the same scenario returns these exact bytes.
//
// Exit codes: 0 success, 1 failure, 2 usage, 3 -timeout expired before
// the session finished.
//
// Usage:
//
//	wavm3scen -dir scenarios/             # run every committed scenario
//	wavm3scen scenarios/memstorm-live.json            # run one file
//	wavm3scen 'scenarios/c1-*.json'       # run a glob
//	wavm3scen -check -dir scenarios/      # load+validate+compile only (CI)
//	wavm3scen -list -dir scenarios/       # print the library catalog
//	wavm3scen -dir scenarios/ -benchjson perf.json    # timing metrics
//	wavm3scen -timeout 90s -dir scenarios/            # bounded session
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/service"
)

func main() {
	var (
		dir   = flag.String("dir", "", "run every *.json scenario in this directory")
		check = flag.Bool("check", false, "load, validate and compile the scenarios, run nothing (CI round-trip gate)")
		list  = flag.Bool("list", false, "print the scenario catalog and exit")
	)
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	if *dir == "" && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "wavm3scen: nothing to run; pass -dir <scenarios/> or scenario files (see -h)")
		os.Exit(2)
	}

	if *list {
		if *dir == "" {
			fatal(fmt.Errorf("-list needs -dir"))
		}
		infos, err := scenario.List(*dir)
		if err != nil {
			fatal(err)
		}
		for _, in := range infos {
			form := "migration"
			switch {
			case in.Datacenter:
				form = "datacenter"
			case in.Cluster > 0:
				form = fmt.Sprintf("cluster, %d hosts", in.Cluster)
			case in.Phases > 0:
				form = fmt.Sprintf("migration, %d phases", in.Phases)
			}
			fmt.Printf("%-24s (%s)\n    %s\n", in.Name, form, in.Description)
		}
		return
	}

	specs := loadSpecs(*dir, flag.Args())
	compiled := make([]*scenario.Compiled, len(specs))
	for i, s := range specs {
		c, err := s.Compile()
		if err != nil {
			fatal(err)
		}
		compiled[i] = c
	}
	if *check {
		for i, c := range compiled {
			switch {
			case c.Cluster != nil:
				fmt.Printf("ok %-24s cluster: %d host(s)\n", specs[i].Name, len(c.Cluster.Config.Hosts))
			case c.Plan != nil:
				fmt.Printf("ok %-24s %d block(s)\n", specs[i].Name, len(c.Plan.Plan.Moves))
			default:
				fmt.Printf("ok %-24s %d block(s)\n", specs[i].Name, len(c.Runs))
			}
		}
		return
	}

	ctx, cancel := common.Context()
	defer cancel()
	cache, err := common.Cache()
	if err != nil {
		fatal(err)
	}
	stopProf, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	perf := common.NewBenchReport("wavm3scen")
	started := time.Now()

	for i, c := range compiled {
		t0 := time.Now()
		before := cache.Snapshot()
		res, err := service.Exec(ctx, os.Stdout, c, common.Workers, cache)
		if err != nil {
			fatal(err)
		}
		// Per-artefact cache effectiveness: this scenario's share of the
		// session cache traffic across both tiers (a nil cache reads as
		// zero lookups).
		d := cache.Snapshot().Delta(before)
		perf.AddWithCache(specs[i].Name, time.Since(t0), report.CacheDelta{
			Hits: d.Hits, Misses: d.Misses, DiskHits: d.DiskHits, DiskMisses: d.DiskMisses,
		})
		// Chaos scenarios also record their SLO outcome in the artefact.
		if res.Cluster != nil && len(c.Cluster.Config.Failures) > 0 {
			perf.AnnotateSLO(report.SLO{
				AbortedFlights: res.Cluster.AbortedFlights,
				OrphanedVMs:    res.Cluster.OrphanedVMs,
				EvacuatedVMs:   res.Cluster.EvacuatedVMs,
				DeadlineMet:    res.Cluster.EvacuationDeadlineMet,
				FleetEnergyJ:   float64(res.Cluster.FleetEnergy),
			})
		}
	}

	if err := common.Finish(os.Stderr, perf, cache, started); err != nil {
		fatal(err)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wavm3scen: %d scenario(s) in %v\n", len(specs), time.Since(started).Round(time.Millisecond))
}

// loadSpecs resolves -dir and positional file/glob arguments in order.
// The combined set is held to the same invariant a single directory is:
// unique names and unique effective seeds, so `-dir scenarios/ a.json`
// cannot run a scenario twice or smuggle in a seed collision.
func loadSpecs(dir string, args []string) []*scenario.Spec {
	var specs []*scenario.Spec
	if dir != "" {
		ds, err := scenario.LoadDir(dir)
		if err != nil {
			fatal(err)
		}
		specs = append(specs, ds...)
	}
	for _, a := range args {
		// Go's flag package stops at the first positional argument, so a
		// flag placed after a file would arrive here; refuse it instead of
		// trying to open a file called "-benchjson".
		if strings.HasPrefix(a, "-") {
			fatal(fmt.Errorf("flag %q after positional arguments; flags must come before scenario files", a))
		}
		if strings.ContainsAny(a, "*?[") {
			gs, err := scenario.LoadGlob(a)
			if err != nil {
				fatal(err)
			}
			specs = append(specs, gs...)
			continue
		}
		s, err := scenario.Load(a)
		if err != nil {
			fatal(err)
		}
		specs = append(specs, s)
	}
	if err := scenario.CheckUnique(specs); err != nil {
		fatal(err)
	}
	return specs
}

// fatal reports err and exits: code 3 when -timeout expired, 1 for
// every other failure.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wavm3scen:", err)
	if cliflags.IsDeadline(err) {
		os.Exit(cliflags.ExitDeadline)
	}
	os.Exit(1)
}
