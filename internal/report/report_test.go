package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/migration"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

func TestTableWrite(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"A", "LongHeader"}}
	tb.AddRow("x", "1")
	tb.AddRow("yyyy", "2")
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T\n", "A", "LongHeader", "yyyy", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: the second column starts at the same offset in each row.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	h := strings.Index(lines[1], "LongHeader")
	r1 := strings.Index(lines[3], "1")
	if h != r1 {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", h, r1, out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.52e-7: "1.52e-07",
		2.4:     "2.4",
		708.3:   "708.3",
	}
	for in, want := range cases {
		if got := f(in); got != want {
			t.Errorf("f(%v) = %q, want %q", in, got, want)
		}
	}
	if pct(0.118) != "11.8%" {
		t.Errorf("pct = %q", pct(0.118))
	}
}

func TestCoeffTableBothKinds(t *testing.T) {
	mk := func(kind migration.Kind, id string) *experiments.CoeffTable {
		return &experiments.CoeffTable{
			ID: id, Kind: kind,
			Rows: []experiments.CoeffRow{{
				Host:       "Source",
				Initiation: core.PhaseCoeffs{Alpha: 1.71, Beta: 1.41, C: 708.3},
				Transfer:   core.PhaseCoeffs{Alpha: 2.4, Beta: 1.52e-7, Gamma: 1.41, Delta: 0.4, C: 421.74},
				Activation: core.PhaseCoeffs{Alpha: 2.37, C: 662.5},
			}},
		}
	}
	live := CoeffTable(mk(migration.Live, "Table IV"))
	if len(live.Headers) != 12 {
		t.Errorf("live table has %d columns, want 12 (with γ and δ)", len(live.Headers))
	}
	nonlive := CoeffTable(mk(migration.NonLive, "Table III"))
	if len(nonlive.Headers) != 10 {
		t.Errorf("non-live table has %d columns, want 10", len(nonlive.Headers))
	}
	var buf bytes.Buffer
	if err := live.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "708.3") {
		t.Error("coefficient missing from render")
	}
}

func TestNRMSETableRender(t *testing.T) {
	tbl := NRMSETable(&experiments.NRMSETable{
		ID: "Table V",
		Cells: []experiments.NRMSECell{
			{Pair: "m01-m02", Kind: migration.NonLive, Role: core.Source, NRMSE: 0.118},
		},
	})
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "11.8%") {
		t.Errorf("NRMSE not rendered as percent:\n%s", buf.String())
	}
}

func TestBaselineTableBetaColumn(t *testing.T) {
	tbl := BaselineTable([]experiments.BaselineCoeffRow{
		{Model: "HUANG", Host: "Source", Alpha: 2.27, C: 671.92},
		{Model: "STRUNK", Host: "Source", Alpha: 3.35, Beta: -3.47, C: 201.1},
	})
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "-") {
		t.Error("HUANG must show '-' for its unused β")
	}
	if !strings.Contains(out, "-3.47") {
		t.Error("STRUNK β missing")
	}
}

func TestComparisonTableUnits(t *testing.T) {
	rows := []experiments.ComparisonRow{{
		Model: "WAVM3", Host: "Source",
		NonLive: stats.ErrorReport{MAE: 1800, RMSE: 2558, NRMSE: 0.118},
		Live:    stats.ErrorReport{MAE: 6300, RMSE: 8432, NRMSE: 0.118},
	}}
	tbl := ComparisonTable(rows)
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// MAE/RMSE render in kJ.
	if !strings.Contains(out, "1.8") || !strings.Contains(out, "2.558") {
		t.Errorf("kJ conversion missing:\n%s", out)
	}
}

func TestWriteFigure(t *testing.T) {
	tr := &trace.PowerTrace{Host: "m01"}
	for i := 0; i < 100; i++ {
		_ = tr.Append(time.Duration(i)*500*time.Millisecond, units.Watts(500+float64(i)))
	}
	fig := &experiments.Figure{
		ID: "Fig. X", Title: "test",
		Panels: []experiments.Panel{{
			Name: "panel-a",
			Series: []experiments.Series{{
				Label: "0 VM", Trace: tr,
				Bounds: trace.Boundaries{MS: time.Second, TS: 2 * time.Second, TE: 3 * time.Second, ME: 4 * time.Second},
			}},
		}},
	}
	var buf bytes.Buffer
	if err := WriteFigure(&buf, fig, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. X", "panel-a", `series "0 VM"`, "ms=1.0s"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q", want)
		}
	}
	// Down-sampling honoured: at most ~11 data rows for maxRows=10.
	dataRows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, " ") && strings.Contains(line, ".") {
			dataRows++
		}
	}
	if dataRows > 12 {
		t.Errorf("%d data rows, want ≤ 12 after down-sampling", dataRows)
	}
}

func TestPhaseSummary(t *testing.T) {
	var buf bytes.Buffer
	src := trace.PhaseEnergy{Initiation: 3000, Transfer: 18000, Activation: 3000}
	dst := trace.PhaseEnergy{Initiation: 2000, Transfer: 15000, Activation: 4000}
	if err := PhaseSummary(&buf, "live 0 VM", src, dst); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "24") { // total source kJ
		t.Errorf("totals missing:\n%s", out)
	}
	if !strings.Contains(out, "live 0 VM") {
		t.Error("label missing")
	}
}

func TestCrossValTable(t *testing.T) {
	cv := &core.CVResult{
		Kind:  migration.Live,
		Folds: 4,
		PerRole: map[core.Role][]float64{
			core.Source: {0.010, 0.012, 0.015, 0.011},
			core.Target: {0.005, 0.006, 0.007, 0.006},
		},
	}
	tbl := CrossValTable(cv)
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"4 folds", "Source", "Target", "1.2%"} {
		if !strings.Contains(out, want) {
			t.Errorf("cross-val table missing %q:\n%s", want, out)
		}
	}
}
