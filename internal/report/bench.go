package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// BenchArtefact is the machine-readable timing of one generated artefact
// (a figure, a table, a scenario, or a shared campaign stage).
type BenchArtefact struct {
	// ID names the artefact ("fig3", "table7", "campaign-m", a scenario
	// name, ...).
	ID string `json:"id"`
	// Seconds is the wall-clock time to produce it.
	Seconds float64 `json:"seconds"`
	// CacheHits/CacheMisses are the run-cache lookups this artefact
	// made (deltas over the session cache, so per-artefact cache
	// effectiveness is visible in committed BENCH snapshots). Omitted
	// for artefacts recorded without cache attribution.
	CacheHits   uint64 `json:"cache_hits,omitempty"`
	CacheMisses uint64 `json:"cache_misses,omitempty"`
	// DiskHits/DiskMisses are the persistent-tier probes this artefact's
	// memory misses made when a cache dir was in use: DiskHits answered
	// from committed artefacts on disk, DiskMisses ran the kernel and
	// published a new artefact. Omitted for memory-only sessions.
	DiskHits   uint64 `json:"disk_hits,omitempty"`
	DiskMisses uint64 `json:"disk_misses,omitempty"`
	// SLO scoring of chaos (failure-injecting) cluster scenarios; all
	// omitted for artefacts without failure injection, so historical
	// snapshots compare cleanly.
	AbortedFlights int `json:"aborted_flights,omitempty"`
	OrphanedVMs    int `json:"orphaned_vms,omitempty"`
	EvacuatedVMs   int `json:"evacuated_vms,omitempty"`
	// EvacuationDeadlineMet is a pointer so "not a chaos scenario"
	// (absent) and "deadline missed" (false) stay distinguishable.
	EvacuationDeadlineMet *bool `json:"evacuation_deadline_met,omitempty"`
	// FleetEnergyJ integrates the fleet power trace — idle floors plus
	// migration spans — over the scenario's span.
	FleetEnergyJ float64 `json:"fleet_energy_j,omitempty"`
}

// SLO describes the failure-injection outcome of a chaos scenario for
// AnnotateSLO.
type SLO struct {
	AbortedFlights int
	OrphanedVMs    int
	EvacuatedVMs   int
	DeadlineMet    bool
	FleetEnergyJ   float64
}

// AnnotateSLO attaches chaos-scenario SLO scores to the most recently
// added artefact (a no-op when nothing has been added).
func (r *BenchReport) AnnotateSLO(s SLO) {
	if len(r.Artefacts) == 0 {
		return
	}
	a := &r.Artefacts[len(r.Artefacts)-1]
	a.AbortedFlights = s.AbortedFlights
	a.OrphanedVMs = s.OrphanedVMs
	a.EvacuatedVMs = s.EvacuatedVMs
	met := s.DeadlineMet
	a.EvacuationDeadlineMet = &met
	a.FleetEnergyJ = s.FleetEnergyJ
}

// BenchReport is the machine-readable outcome of one wavm3bench session:
// per-artefact wall-clock timings plus the run-cache's effectiveness.
// Committed snapshots (BENCH_<pr>.json) give later changes a perf
// trajectory to compare against.
type BenchReport struct {
	// Tool identifies the producer ("wavm3bench").
	Tool string `json:"tool"`
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"go_version"`
	// GOOS/GOARCH locate the numbers on an execution platform.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// NumCPU is the machine's logical CPU count.
	NumCPU int `json:"num_cpu"`
	// Quick records whether the reduced sweeps were used.
	Quick bool `json:"quick"`
	// Seed and Workers reproduce the session's configuration.
	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"`
	// Artefacts are the per-artefact timings in generation order.
	Artefacts []BenchArtefact `json:"artefacts"`
	// CacheHits/CacheMisses/CacheEntries describe the shared run cache at
	// session end (zero when caching is disabled).
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`
	// DiskHits/DiskMisses describe the persistent tier at session end
	// (omitted for memory-only sessions); KernelRuns counts simulations
	// actually executed — zero for a fully warm persistent cache, which
	// is exactly what the CI warm-phase gate asserts.
	DiskHits    uint64 `json:"disk_hits,omitempty"`
	DiskMisses  uint64 `json:"disk_misses,omitempty"`
	KernelRuns  uint64 `json:"kernel_runs"`
	Quarantined uint64 `json:"quarantined_artefacts,omitempty"`
	// Store resilience counters (omitted for memory-only sessions):
	// store ops that failed and were survived, re-attempts, per-op bound
	// hits, circuit-breaker trips with the breaker's end-of-session
	// state, and async publishes shed past the budget. The CI
	// hostile-store smoke jq-gates these.
	StoreErrors   uint64 `json:"store_errors,omitempty"`
	StoreRetries  uint64 `json:"store_retries,omitempty"`
	StoreTimeouts uint64 `json:"store_timeouts,omitempty"`
	BreakerOpens  uint64 `json:"breaker_opens,omitempty"`
	BreakerState  string `json:"breaker_state,omitempty"`
	PublishDrops  uint64 `json:"publish_drops,omitempty"`
	// TotalSeconds is the whole session's wall-clock time.
	TotalSeconds float64 `json:"total_seconds"`
}

// NewBenchReport builds a report stamped with the execution platform.
func NewBenchReport(tool string) *BenchReport {
	return &BenchReport{
		Tool:      tool,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Add appends one artefact timing.
func (r *BenchReport) Add(id string, d time.Duration) {
	r.Artefacts = append(r.Artefacts, BenchArtefact{ID: id, Seconds: d.Seconds()})
}

// CacheDelta is the run-cache traffic attributable to one artefact:
// memory-tier lookups plus (for cache-dir sessions) persistent-tier
// probes.
type CacheDelta struct {
	Hits, Misses         uint64
	DiskHits, DiskMisses uint64
}

// AddWithCache appends one artefact timing with its run-cache lookup
// deltas (traffic generated while producing this artefact).
func (r *BenchReport) AddWithCache(id string, d time.Duration, delta CacheDelta) {
	r.Artefacts = append(r.Artefacts, BenchArtefact{
		ID: id, Seconds: d.Seconds(),
		CacheHits: delta.Hits, CacheMisses: delta.Misses,
		DiskHits: delta.DiskHits, DiskMisses: delta.DiskMisses,
	})
}

// WriteJSON renders the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteJSONFile writes the report to path, creating or truncating it.
func (r *BenchReport) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBenchReport parses a committed benchmark snapshot, the counterpart
// of WriteJSONFile for trajectory comparisons.
func ReadBenchReport(path string) (*BenchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	var r BenchReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("report: parsing %s: %w", path, err)
	}
	return &r, nil
}
