package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestBenchReportRoundTrip(t *testing.T) {
	r := NewBenchReport("wavm3bench")
	r.Quick = true
	r.Seed = 7
	r.Workers = 2
	r.Add("fig2", 1500*time.Millisecond)
	r.AddWithCache("table7", 250*time.Millisecond, CacheDelta{Hits: 12, Misses: 3, DiskHits: 2, DiskMisses: 1})
	r.CacheHits, r.CacheMisses, r.CacheEntries = 10, 4, 4
	r.DiskHits, r.DiskMisses, r.KernelRuns = 2, 1, 1
	r.TotalSeconds = 2.5

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "wavm3bench" || !back.Quick || back.Seed != 7 || back.Workers != 2 {
		t.Errorf("configuration fields lost: %+v", back)
	}
	if len(back.Artefacts) != 2 || back.Artefacts[0].ID != "fig2" || back.Artefacts[0].Seconds != 1.5 {
		t.Errorf("artefact timings lost: %+v", back.Artefacts)
	}
	if back.Artefacts[1].CacheHits != 12 || back.Artefacts[1].CacheMisses != 3 {
		t.Errorf("per-artefact cache stats lost: %+v", back.Artefacts[1])
	}
	if back.Artefacts[1].DiskHits != 2 || back.Artefacts[1].DiskMisses != 1 {
		t.Errorf("per-artefact disk stats lost: %+v", back.Artefacts[1])
	}
	if back.DiskHits != 2 || back.DiskMisses != 1 || back.KernelRuns != 1 {
		t.Errorf("session disk stats lost: %+v", back)
	}
	if back.Artefacts[0].CacheHits != 0 || back.Artefacts[0].CacheMisses != 0 {
		t.Errorf("cache-less artefact gained stats: %+v", back.Artefacts[0])
	}
	if back.CacheHits != 10 || back.CacheMisses != 4 || back.CacheEntries != 4 {
		t.Errorf("cache stats lost: %+v", back)
	}
	if back.GoVersion == "" || back.NumCPU <= 0 {
		t.Errorf("platform stamp missing: %+v", back)
	}
}

func TestBenchReportJSONShape(t *testing.T) {
	r := NewBenchReport("wavm3bench")
	r.Add("fig3", time.Second)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"tool"`, `"go_version"`, `"artefacts"`, `"cache_hits"`, `"total_seconds"`} {
		if !strings.Contains(b.String(), key) {
			t.Errorf("JSON lacks %s:\n%s", key, b.String())
		}
	}
}

func TestReadBenchReportErrors(t *testing.T) {
	if _, err := ReadBenchReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchReport(bad); err == nil {
		t.Error("malformed JSON did not error")
	}
}
