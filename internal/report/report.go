// Package report renders the reproduction's tables and figure data as
// plain text, in the same row/column arrangement as the paper, for the
// cmd tools and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/migration"
	"repro/internal/trace"
)

// Table renders rows of cells with padded columns and a header rule.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// f formats a float compactly (coefficients span 1e-7 … 1e3).
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 0.001 && v > -0.001:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// pct renders a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// CoeffTable renders Table III or IV.
func CoeffTable(t *experiments.CoeffTable) *Table {
	out := &Table{
		Title: fmt.Sprintf("%s: WAVM3 coefficients (%s migration)", t.ID, t.Kind),
	}
	if t.Kind == migration.Live {
		out.Headers = []string{"Host", "α(i)", "β(i)", "C(i)", "α(t)", "β(t)", "γ(t)", "δ(t)", "C(t)", "α(a)", "β(a)", "C(a)"}
		for _, r := range t.Rows {
			out.AddRow(r.Host,
				f(r.Initiation.Alpha), f(r.Initiation.Beta), f(r.Initiation.C),
				f(r.Transfer.Alpha), f(r.Transfer.Beta), f(r.Transfer.Gamma), f(r.Transfer.Delta), f(r.Transfer.C),
				f(r.Activation.Alpha), f(r.Activation.Beta), f(r.Activation.C))
		}
	} else {
		out.Headers = []string{"Host", "α(i)", "β(i)", "C(i)", "α(t)", "β(t)", "C(t)", "α(a)", "β(a)", "C(a)"}
		for _, r := range t.Rows {
			out.AddRow(r.Host,
				f(r.Initiation.Alpha), f(r.Initiation.Beta), f(r.Initiation.C),
				f(r.Transfer.Alpha), f(r.Transfer.Beta), f(r.Transfer.C),
				f(r.Activation.Alpha), f(r.Activation.Beta), f(r.Activation.C))
		}
	}
	return out
}

// NRMSETable renders Table V.
func NRMSETable(t *experiments.NRMSETable) *Table {
	out := &Table{
		Title:   fmt.Sprintf("%s: WAVM3 normalised root mean square error", t.ID),
		Headers: []string{"Pair", "Migration", "Host", "NRMSE"},
	}
	for _, c := range t.Cells {
		out.AddRow(c.Pair, c.Kind.String(), c.Role.String(), pct(c.NRMSE))
	}
	return out
}

// BaselineTable renders Table VI.
func BaselineTable(rows []experiments.BaselineCoeffRow) *Table {
	out := &Table{
		Title:   "Table VI: training coefficients for HUANG, LIU and STRUNK",
		Headers: []string{"Model", "Host", "α", "β", "C"},
	}
	for _, r := range rows {
		beta := "-"
		if r.Model == "STRUNK" {
			beta = f(r.Beta)
		}
		out.AddRow(r.Model, r.Host, f(r.Alpha), beta, f(r.C))
	}
	return out
}

// ComparisonTable renders Table VII.
func ComparisonTable(rows []experiments.ComparisonRow) *Table {
	out := &Table{
		Title: "Table VII: model comparison on dataset m01-m02",
		Headers: []string{"Model", "Host",
			"MAE(non-live) [kJ]", "RMSE(non-live) [kJ]", "NRMSE(non-live)",
			"MAE(live) [kJ]", "RMSE(live) [kJ]", "NRMSE(live)"},
	}
	for _, r := range rows {
		out.AddRow(r.Model, r.Host,
			f(r.NonLive.MAE/1e3), f(r.NonLive.RMSE/1e3), pct(r.NonLive.NRMSE),
			f(r.Live.MAE/1e3), f(r.Live.RMSE/1e3), pct(r.Live.NRMSE))
	}
	return out
}

// CrossValTable renders the k-fold cross-validation extension.
func CrossValTable(cv *core.CVResult) *Table {
	out := &Table{
		Title:   fmt.Sprintf("Cross-validation: WAVM3 %s, %d folds (extension)", cv.Kind, cv.Folds),
		Headers: []string{"Host", "mean NRMSE", "std NRMSE", "folds"},
	}
	for _, role := range core.Roles() {
		out.AddRow(role.String(), pct(cv.MeanNRMSE(role)), pct(cv.StdNRMSE(role)),
			fmt.Sprintf("%d", len(cv.PerRole[role])))
	}
	return out
}

// WriteFigure renders a figure's series as labelled columns of
// (seconds, watts) pairs — the gnuplot-style data behind Figures 2–7 —
// down-sampled to at most maxRows rows per series.
func WriteFigure(w io.Writer, fig *experiments.Figure, maxRows int) error {
	if maxRows <= 0 {
		maxRows = 40
	}
	if _, err := fmt.Fprintf(w, "%s: %s\n", fig.ID, fig.Title); err != nil {
		return err
	}
	for _, p := range fig.Panels {
		if _, err := fmt.Fprintf(w, "\n# panel: %s\n", p.Name); err != nil {
			return err
		}
		for _, s := range p.Series {
			if _, err := fmt.Fprintf(w, "## series %q (%d samples; ms=%.1fs ts=%.1fs te=%.1fs me=%.1fs)\n",
				s.Label, s.Trace.Len(),
				s.Bounds.MS.Seconds(), s.Bounds.TS.Seconds(), s.Bounds.TE.Seconds(), s.Bounds.ME.Seconds()); err != nil {
				return err
			}
			stride := 1
			if s.Trace.Len() > maxRows {
				stride = s.Trace.Len() / maxRows
			}
			for i := 0; i < s.Trace.Len(); i += stride {
				smp := s.Trace.Samples[i]
				if _, err := fmt.Fprintf(w, "%8.1f %8.1f\n", smp.At.Seconds(), float64(smp.Power)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// PhaseSummary renders the per-phase energy of a run pair of traces — the
// textual counterpart of Figure 2's annotations.
func PhaseSummary(w io.Writer, label string, src, dst trace.PhaseEnergy) error {
	t := &Table{
		Title:   fmt.Sprintf("Per-phase migration energy: %s", label),
		Headers: []string{"Host", "Initiation [kJ]", "Transfer [kJ]", "Activation [kJ]", "Total [kJ]"},
	}
	t.AddRow("Source", f(src.Initiation.KiloJoules()), f(src.Transfer.KiloJoules()),
		f(src.Activation.KiloJoules()), f(src.Total().KiloJoules()))
	t.AddRow("Target", f(dst.Initiation.KiloJoules()), f(dst.Transfer.KiloJoules()),
		f(dst.Activation.KiloJoules()), f(dst.Total().KiloJoules()))
	return t.Write(w)
}
