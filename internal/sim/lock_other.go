//go:build !unix

package sim

import "os"

// Without flock the cross-process singleflight degrades to owner-wins
// Put: every process that misses runs the kernel and the last atomic
// rename stands. Results are bit-identical either way — only duplicate
// work is possible, never a wrong artefact.
func flockTry(f *os.File) (bool, error) { return true, nil }

func flockDrop(f *os.File) {}
