package sim

import (
	"math"
	"testing"
	"time"

	"repro/internal/migration"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
)

// TestNetIntensiveWorkloadNegligibleImpact verifies the observation that
// scoped the paper ("our experiments showed negligible energy impacts
// caused by network-intensive workloads during migration"): migrating a
// guest running a network-heavy service costs about the same as migrating
// one with the same CPU footprint and no network activity.
func TestNetIntensiveWorkloadNegligibleImpact(t *testing.T) {
	net := Scenario{
		Name:             "net-intensive",
		Kind:             migration.Live,
		MigratingType:    vm.TypeMigratingMem,
		MigratingProfile: workload.NetIntensiveProfile(),
		Seed:             31,
	}
	// A reference profile with identical CPU demand and dirtying but no
	// network component (the simulator carries guest network load only
	// through its CPU and memory shadows, matching the paper's finding).
	ref := net
	ref.Name = "reference"
	ref.MigratingProfile = workload.Profile{
		Name:                "reference",
		CPUPerVCPU:          workload.NetIntensiveProfile().CPUPerVCPU,
		DirtyPagesPerSecond: workload.NetIntensiveProfile().DirtyPagesPerSecond,
		WorkingSet:          workload.NetIntensiveProfile().WorkingSet,
	}
	rn, err := Run(net)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	en, er := float64(rn.SourceEnergy.Total()), float64(rr.SourceEnergy.Total())
	if rel := math.Abs(en-er) / er; rel > 0.05 {
		t.Errorf("net-intensive migration energy differs by %.1f%%, want < 5%%", rel*100)
	}
}

func TestRunPostCopyScenario(t *testing.T) {
	pc := Scenario{
		Name:             "postcopy",
		Kind:             migration.PostCopy,
		MigratingType:    vm.TypeMigratingMem,
		MigratingProfile: workload.PagedirtierProfile(0.95),
		Seed:             32,
	}
	r, err := Run(pc)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bounds.Validate(); err != nil {
		t.Fatal(err)
	}
	// One image, tiny downtime — even at 95% dirty ratio.
	img := vmImageBytes(t)
	if r.BytesSent != img {
		t.Errorf("post-copy sent %v, want %v", r.BytesSent, img)
	}
	if r.Downtime > time.Second {
		t.Errorf("post-copy downtime = %v, want sub-second", r.Downtime)
	}
	// Compare with pre-copy on the same workload: pre-copy must cost more
	// source energy at this dirty ratio (it retransmits for minutes).
	live := pc
	live.Kind = migration.Live
	rl, err := Run(live)
	if err != nil {
		t.Fatal(err)
	}
	if rl.SourceEnergy.Total() <= r.SourceEnergy.Total() {
		t.Errorf("pre-copy source energy %v should exceed post-copy %v at 95%% DR",
			rl.SourceEnergy.Total(), r.SourceEnergy.Total())
	}
}

func vmImageBytes(t *testing.T) units.Bytes {
	t.Helper()
	typ, err := vm.Lookup(vm.TypeMigratingMem)
	if err != nil {
		t.Fatal(err)
	}
	return units.PagesOf(typ.RAM).Bytes()
}

// TestMultiplexedSourcePowerStaysFlat reproduces the observation of
// Figure 3a: with eight 4-vCPU load VMs the source CPU is oversubscribed,
// so suspending the migrating VM at non-live initiation does not drop the
// host's power — the freed threads are immediately reabsorbed by the load
// VMs and "the power consumption trend follows a constant function".
func TestMultiplexedSourcePowerStaysFlat(t *testing.T) {
	flat, err := Run(cpuScenario(migration.NonLive, 8, 0, 33))
	if err != nil {
		t.Fatal(err)
	}
	before := flat.Source.Slice(0, flat.Bounds.MS-time.Nanosecond).MeanPower()
	during := flat.Source.Slice(flat.Bounds.MS, flat.Bounds.TS).MeanPower()
	relDrop := (float64(before) - float64(during)) / float64(before)
	if relDrop > 0.03 {
		t.Errorf("multiplexed source dropped %.1f%% at initiation, want ≈0 (flat trend)", relDrop*100)
	}
	// Contrast: without multiplexing the same suspension produces a clear
	// drop (tested in TestRunNonLiveSourceDropsAtInitiation).
	unloaded, err := Run(cpuScenario(migration.NonLive, 0, 0, 33))
	if err != nil {
		t.Fatal(err)
	}
	ub := unloaded.Source.Slice(0, unloaded.Bounds.MS-time.Nanosecond).MeanPower()
	ud := unloaded.Source.Slice(unloaded.Bounds.MS, unloaded.Bounds.TS).MeanPower()
	unloadedDrop := (float64(ub) - float64(ud)) / float64(ub)
	if unloadedDrop <= relDrop {
		t.Errorf("unloaded drop %.1f%% must exceed multiplexed drop %.1f%%",
			unloadedDrop*100, relDrop*100)
	}
}

// TestReducedBandwidthUnderSaturation reproduces the mechanism behind the
// paper's CPULOAD conclusions: at full source CPU load the recorded
// transfer bandwidth is measurably below the unloaded bandwidth.
func TestReducedBandwidthUnderSaturation(t *testing.T) {
	idle, err := Run(cpuScenario(migration.NonLive, 0, 0, 34))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Run(cpuScenario(migration.NonLive, 8, 0, 34))
	if err != nil {
		t.Fatal(err)
	}
	avgBW := func(r *RunResult) float64 {
		var sum float64
		var n int
		for _, fs := range r.SourceFeatures.Samples {
			if fs.At >= r.Bounds.TS && fs.At < r.Bounds.TE && fs.Bandwidth > 0 {
				sum += float64(fs.Bandwidth)
				n++
			}
		}
		if n == 0 {
			t.Fatal("no transfer bandwidth recorded")
		}
		return sum / float64(n)
	}
	bi, bl := avgBW(idle), avgBW(loaded)
	if bl >= bi {
		t.Errorf("saturated-source bandwidth %.0f must be below idle %.0f", bl, bi)
	}
}

// TestHotColdDirtierEasesLiveMigration verifies the extension family's
// premise: at the same write rate, a skewed (hot/cold) working set re-sends
// far less data than the uniform pagedirtier because most writes land on
// already-dirty pages within a round.
func TestHotColdDirtierEasesLiveMigration(t *testing.T) {
	uniform := Scenario{
		Name:             "uniform",
		Kind:             migration.Live,
		MigratingType:    vm.TypeMigratingMem,
		MigratingProfile: workload.PagedirtierProfile(0.75),
		Seed:             61,
	}
	skewed := uniform
	skewed.Name = "hotcold"
	skewed.MigratingProfile = workload.HotColdMemProfile(0.75)

	ru, err := Run(uniform)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(skewed)
	if err != nil {
		t.Fatal(err)
	}
	if rs.BytesSent >= ru.BytesSent {
		t.Errorf("hot/cold sent %v, uniform sent %v — skew must reduce retransmission",
			rs.BytesSent, ru.BytesSent)
	}
	if rs.SourceEnergy.Total() >= ru.SourceEnergy.Total() {
		t.Errorf("hot/cold source energy %v should undercut uniform %v",
			rs.SourceEnergy.Total(), ru.SourceEnergy.Total())
	}
}
