package sim

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/migration"
	"repro/internal/vm"
)

func cacheScenario(seed int64) Scenario {
	return Scenario{
		Name:          "cache-a",
		Kind:          migration.NonLive,
		MigratingType: vm.TypeMigratingCPU,
		Seed:          seed,
	}
}

// TestCacheHitIsBitIdentical is the cache's core guarantee: a hit returns
// exactly what an uncached Run would have produced, label included.
func TestCacheHitIsBitIdentical(t *testing.T) {
	sc := cacheScenario(7)
	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	c := NewCache(0)
	first, err := c.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	relabelled := sc
	relabelled.Name = "cache-b"
	hit, err := c.Run(relabelled)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1 (label must not split the key)", hits, misses)
	}

	if !reflect.DeepEqual(plain, first) {
		t.Error("cache miss result differs from a plain Run")
	}
	if hit.Scenario.Name != "cache-b" {
		t.Errorf("hit kept the memoized label %q", hit.Scenario.Name)
	}
	want := *plain
	want.Scenario.Name = "cache-b"
	if !reflect.DeepEqual(&want, hit) {
		t.Error("cache hit is not bit-identical to an uncached run")
	}
}

// TestCacheKeySeparatesPhysics ensures scenarios that differ physically
// never share an entry.
func TestCacheKeySeparatesPhysics(t *testing.T) {
	c := NewCache(0)
	if _, err := c.Run(cacheScenario(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(cacheScenario(8)); err != nil { // different seed
		t.Fatal(err)
	}
	live := cacheScenario(7)
	live.Kind = migration.Live
	if _, err := c.Run(live); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 3 {
		t.Fatalf("stats = %d hits / %d misses, want 0/3", hits, misses)
	}
}

// TestCacheSingleflight hammers one key from many goroutines; every
// caller must get the same values and the scenario must simulate once.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(0)
	sc := cacheScenario(3)
	const callers = 8
	results := make([]*RunResult, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Run(sc)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	if _, misses := c.Stats(); misses != 1 {
		t.Fatalf("%d misses, want 1 (singleflight)", misses)
	}
	for i := 1; i < callers; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
}

// TestCacheBoundAndClear exercises LRU eviction and Clear.
func TestCacheBoundAndClear(t *testing.T) {
	c := NewCache(2)
	for seed := int64(1); seed <= 3; seed++ {
		if _, err := c.Run(cacheScenario(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("cache holds %d entries, want bound 2", n)
	}
	// Seed 1 was evicted (least recent); seed 3 must still hit.
	if _, err := c.Run(cacheScenario(3)); err != nil {
		t.Fatal(err)
	}
	if hits, _ := c.Stats(); hits != 1 {
		t.Fatalf("expected the most recent entry to survive eviction (hits = %d)", hits)
	}
	c.Clear()
	if n := c.Len(); n != 0 {
		t.Fatalf("Clear left %d entries", n)
	}
}

// TestCacheErrorNotMemoized verifies failed runs are retried, not served
// from memory.
func TestCacheErrorNotMemoized(t *testing.T) {
	c := NewCache(0)
	bad := cacheScenario(1)
	bad.SourceLoadVMs = -1
	for i := 0; i < 2; i++ {
		if _, err := c.Run(bad); err == nil {
			t.Fatal("invalid scenario did not error")
		}
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("failed run left %d cache entries", n)
	}
}

// TestNilCacheRuns proves the nil receiver degrades to plain execution.
func TestNilCacheRuns(t *testing.T) {
	var c *Cache
	r, err := c.Run(cacheScenario(5))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(cacheScenario(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, r) {
		t.Error("nil cache result differs from plain Run")
	}
	if c.Len() != 0 {
		t.Error("nil cache reported entries")
	}
	c.Clear() // must not panic
}
