package sim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ObjStore is the lockless object-store CacheStore: a flat blob
// namespace with S3 semantics — no CacheLocker, so the cache runs its
// degraded cross-process singleflight (owner-wins publishing, which may
// duplicate a kernel run across processes but never corrupts a result),
// and Put is a conditional write (If-None-Match: the first complete
// write of a name wins, later writers are silent no-ops; correct
// because concurrent writers of one artefact name produce bit-identical
// bytes by construction).
//
// The implementation is directory-backed so a real object store is a
// configuration change, not a code change: every operation maps to one
// S3 call (Get → GetObject, Put → PutObject with If-None-Match,
// Quarantine → CopyObject + DeleteObject) and nothing relies on
// rename atomicity within the namespace — the conditional publish is a
// hard link of a fully synced temp file, the object-store analogue of a
// conditional PUT.
type ObjStore struct {
	dir string
}

// NewObjStore opens (creating if necessary) an object-store directory.
func NewObjStore(dir string) (*ObjStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sim: opening object store: %w", err)
	}
	return &ObjStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *ObjStore) Dir() string { return s.dir }

// Get reads one blob.
func (s *ObjStore) Get(name string) ([]byte, error) {
	if err := checkArtefactName(name); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrArtefactNotFound
	}
	return data, err
}

// Put publishes one blob conditionally: stage a fully synced temp file,
// then hard-link it to the final name. The link fails with EEXIST when
// another writer already published the name — that writer owns the
// blob, our bytes were identical, and the Put reports success. Readers
// only ever observe absent or complete blobs.
func (s *ObjStore) Put(name string, data []byte) error {
	if err := checkArtefactName(name); err != nil {
		return err
	}
	tmp, err := s.stage(data)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	if err := os.Link(tmp, filepath.Join(s.dir, name)); err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil // the first writer won; identical bytes, nothing to do
		}
		return fmt.Errorf("sim: publishing blob: %w", err)
	}
	syncDir(s.dir)
	return nil
}

// stage writes data to a synced temp file in the store directory and
// returns its path. The caller removes it (the hard link in Put keeps
// the inode alive under the final name).
func (s *ObjStore) stage(data []byte) (string, error) {
	f, err := os.CreateTemp(s.dir, ".blob.tmp-*")
	if err != nil {
		return "", fmt.Errorf("sim: staging blob: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) (string, error) {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(fmt.Errorf("sim: writing blob: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("sim: syncing blob: %w", err))
	}
	if err := f.Chmod(0o644); err != nil {
		return cleanup(fmt.Errorf("sim: publishing blob: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("sim: closing blob: %w", err)
	}
	return tmp, nil
}

// Quarantine moves a corrupt blob out of the lookup path the way an
// object store has to: copy to the quarantine key, then delete the
// original (there is no rename). A missing source is success — a
// concurrent process already quarantined it.
func (s *ObjStore) Quarantine(name, reason string) error {
	if err := checkArtefactName(name); err != nil {
		return err
	}
	src := filepath.Join(s.dir, name)
	data, err := os.ReadFile(src)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sim: reading blob for quarantine: %w", err)
	}
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("sim: creating quarantine prefix: %w", err)
	}
	if err := os.WriteFile(filepath.Join(qdir, name+"."+reason), data, 0o644); err != nil {
		return fmt.Errorf("sim: writing quarantined blob: %w", err)
	}
	if err := os.Remove(src); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("sim: deleting quarantined blob: %w", err)
	}
	return nil
}

var _ CacheStore = (*ObjStore)(nil)
