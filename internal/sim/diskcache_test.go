package sim

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/migration"
	"repro/internal/workload"
)

// diskScenario is a fast, fully cacheable scenario for the persistent
// cache tests; seed varies the cache key.
func diskScenario(seed int64) Scenario {
	return Scenario{
		Name:             "disk-cache-test",
		Kind:             migration.NonLive,
		MigratingProfile: workload.IdleProfile(),
		Seed:             seed,
	}
}

// newDiskCache builds a store-backed cache over dir, failing the test on
// store trouble.
func newDiskCache(t *testing.T, dir string) *Cache {
	t.Helper()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return NewCacheWithStore(0, store)
}

// artefactFiles lists the artefact files (not locks, not quarantine) in
// a cache dir.
func artefactFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.run"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestDiskCacheColdWarmBitIdentical(t *testing.T) {
	dir := t.TempDir()
	sc := diskScenario(41)

	want, err := Run(sc) // the uncached reference: what a cold run must equal
	if err != nil {
		t.Fatal(err)
	}

	cold := newDiskCache(t, dir)
	got, err := cold.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("cold store-backed run differs from the uncached reference")
	}
	if st := cold.Snapshot(); st.DiskHits != 0 || st.DiskMisses != 1 || st.KernelRuns != 1 {
		t.Errorf("cold stats = %+v, want 1 disk miss, 1 kernel run", st)
	}
	if files := artefactFiles(t, dir); len(files) != 1 {
		t.Fatalf("cold run left %d artefacts, want 1", len(files))
	}

	// A fresh cache in a fresh process position: disk answers, the
	// kernel never runs, and the result is bit-identical.
	warm := newDiskCache(t, dir)
	got2, err := warm.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Error("warm run differs from the uncached reference")
	}
	if st := warm.Snapshot(); st.DiskHits != 1 || st.DiskMisses != 0 || st.KernelRuns != 0 {
		t.Errorf("warm stats = %+v, want 1 disk hit, 0 kernel runs", st)
	}

	// Clearing the memory tier re-warms from disk, not from the kernel.
	warm.Clear()
	if _, err := warm.Run(sc); err != nil {
		t.Fatal(err)
	}
	if st := warm.Snapshot(); st.KernelRuns != 0 || st.DiskHits != 2 {
		t.Errorf("post-Clear stats = %+v, want 2 disk hits, 0 kernel runs", st)
	}
}

func TestDiskCacheDistinctKeysDistinctArtefacts(t *testing.T) {
	dir := t.TempDir()
	c := newDiskCache(t, dir)
	a, err := c.Run(diskScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Run(diskScenario(2))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Source.Samples, b.Source.Samples) {
		t.Error("distinct seeds produced identical traces; keys degenerate")
	}
	if files := artefactFiles(t, dir); len(files) != 2 {
		t.Errorf("%d artefacts for 2 keys", len(files))
	}
	// The label is excluded from the key: a renamed scenario shares the
	// artefact.
	renamed := diskScenario(1)
	renamed.Name = "other-label"
	if _, err := newDiskCache(t, dir).Run(renamed); err != nil {
		t.Fatal(err)
	}
	if files := artefactFiles(t, dir); len(files) != 2 {
		t.Errorf("relabelled scenario minted a new artefact (%d files)", len(files))
	}
}

func TestArtefactRoundTrip(t *testing.T) {
	sc := diskScenario(7)
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	key := cacheKey(sc)
	keyBytes := encodeCacheKey(key)
	hash := sha256.Sum256(keyBytes)
	data := encodeArtefact(keyBytes, hash, res)

	back, err := decodeArtefact(data, keyBytes, hash)
	if err != nil {
		t.Fatal(err)
	}
	// The artefact carries everything but the label; restore it the way
	// the cache does and demand bit-identity.
	back.Scenario = res.Scenario
	if !reflect.DeepEqual(back, res) {
		t.Error("decode(encode(res)) is not bit-identical")
	}
	// Determinism: encoding is canonical.
	if !bytes.Equal(data, encodeArtefact(keyBytes, hash, back)) {
		t.Error("re-encoding a decoded artefact changed bytes")
	}
}

func TestDirStoreBasics(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get("absent.v1.run"); !errors.Is(err, ErrArtefactNotFound) {
		t.Errorf("absent Get = %v, want ErrArtefactNotFound", err)
	}
	if err := store.Put("a.v1.run", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get("a.v1.run")
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// No temp litter after a completed Put.
	if tmp, _ := filepath.Glob(filepath.Join(store.Dir(), ".*.tmp-*")); len(tmp) != 0 {
		t.Errorf("temp files left behind: %v", tmp)
	}
	if err := store.Quarantine("a.v1.run", "checksum"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get("a.v1.run"); !errors.Is(err, ErrArtefactNotFound) {
		t.Errorf("quarantined artefact still readable: %v", err)
	}
	if _, err := os.Stat(filepath.Join(store.Dir(), quarantineDir, "a.v1.run.checksum")); err != nil {
		t.Errorf("quarantined file not preserved: %v", err)
	}
	// Quarantining an already-moved file is success (another process won).
	if err := store.Quarantine("a.v1.run", "checksum"); err != nil {
		t.Errorf("double quarantine: %v", err)
	}
	for _, bad := range []string{"", "../escape", "a/b", ".hidden", quarantineDir} {
		if err := store.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a malformed name", bad)
		}
		if _, err := store.Get(bad); err == nil || errors.Is(err, ErrArtefactNotFound) {
			t.Errorf("Get(%q) did not refuse the name", bad)
		}
	}
}

// TestDiskCachePutFailureDegrades: a store that cannot persist must not
// fail runs — the session degrades to memory-only caching with the
// failure counted.
func TestDiskCachePutFailureDegrades(t *testing.T) {
	c := NewCacheWithStore(0, failingStore{})
	sc := diskScenario(3)
	want, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(sc)
	if err != nil {
		t.Fatalf("run failed on a broken store: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("broken-store result differs from uncached reference")
	}
	st := c.Snapshot()
	if st.KernelRuns != 1 || st.StoreErrors == 0 {
		t.Errorf("stats = %+v, want 1 kernel run and counted store errors", st)
	}
}

// failingStore errors on everything except a clean miss.
type failingStore struct{}

func (failingStore) Get(string) ([]byte, error)      { return nil, ErrArtefactNotFound }
func (failingStore) Put(string, []byte) error        { return errors.New("disk full") }
func (failingStore) Quarantine(string, string) error { return errors.New("disk full") }

// TestDirStoreQuarantineRecreatesDir asserts quarantine/ removed at
// runtime (an operator cleanup, a tmp reaper) is recreated on demand —
// without that, every future corruption would fail its quarantine and
// re-read the same bad file forever.
func TestDirStoreQuarantineRecreatesDir(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("a.v1.run", []byte("rotten")); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(store.Dir(), quarantineDir)); err != nil {
		t.Fatal(err)
	}
	if err := store.Quarantine("a.v1.run", "checksum"); err != nil {
		t.Fatalf("quarantine with a missing quarantine/ dir: %v", err)
	}
	if _, err := store.Get("a.v1.run"); !errors.Is(err, ErrArtefactNotFound) {
		t.Errorf("quarantined artefact still readable: %v", err)
	}
	q, err := os.ReadFile(filepath.Join(store.Dir(), quarantineDir, "a.v1.run.checksum"))
	if err != nil || string(q) != "rotten" {
		t.Errorf("quarantined file = %q, %v; want the original preserved", q, err)
	}
}

// TestDirStoreLockDeadlineFallsBackToOwnerWins wedges an artefact's lock
// file from a second file descriptor (modelling a leaked flock / dead
// NFS handle) and asserts (a) Lock gives up at its deadline with an
// error distinct from the caller's context, and (b) a cache over that
// store still completes the run — owner-wins, with the lock trouble
// counted as a store error.
func TestDirStoreLockDeadlineFallsBackToOwnerWins(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.LockDeadline = 40 * time.Millisecond

	sc := diskScenario(9)
	keyBytes := encodeCacheKey(cacheKey(sc))
	hash := sha256.Sum256(keyBytes)
	name := artefactName(hash)

	// Wedge: hold the flock on this artefact's lock file via a separate
	// descriptor for the whole test (flock is per open file description,
	// so the same process can contend with itself).
	wedge, err := os.OpenFile(filepath.Join(dir, name+".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer wedge.Close()
	if held, err := flockTry(wedge); err != nil || !held {
		t.Fatalf("wedging flock = %v, %v; want held", held, err)
	}

	start := time.Now()
	_, lerr := store.Lock(context.Background(), name)
	elapsed := time.Since(start)
	if !errors.Is(lerr, errLockWedged) {
		t.Fatalf("wedged Lock error = %v, want errLockWedged", lerr)
	}
	if elapsed < store.LockDeadline || elapsed > 100*store.LockDeadline {
		t.Errorf("wedged Lock took %v, want about the %v deadline", elapsed, store.LockDeadline)
	}

	// The cache-level story: the wedged lock degrades to owner-wins and
	// the run completes bit-identically.
	want, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCacheWithStore(0, store)
	got, err := c.Run(sc)
	if err != nil {
		t.Fatalf("run with a wedged lock: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("wedged-lock result differs from the uncached reference")
	}
	if st := c.Snapshot(); st.KernelRuns != 1 || st.StoreErrors == 0 {
		t.Errorf("stats = %+v, want 1 kernel run with the lock failure counted", st)
	}
	// The artefact still published despite the wedged lock.
	if files := artefactFiles(t, dir); len(files) != 1 {
		t.Errorf("%d artefacts after owner-wins publish, want 1", len(files))
	}
}
