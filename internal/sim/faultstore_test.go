package sim

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestParseFaultSpec covers the CLI syntax round trip and its rejects.
func TestParseFaultSpec(t *testing.T) {
	cfg, err := ParseFaultSpec("seed=7,err=0.3,torn=0.1,hang=0.05,lockfail=0.2,latency=1ms,hangfor=50ms,ops=400,for=2s")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultConfig{
		Seed: 7, ErrRate: 0.3, TornRate: 0.1, HangRate: 0.05, LockFailRate: 0.2,
		Latency: time.Millisecond, HangFor: 50 * time.Millisecond,
		FaultyOps: 400, FaultFor: 2 * time.Second,
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("parsed %+v, want %+v", cfg, want)
	}
	if _, err := ParseFaultSpec(""); err != nil {
		t.Errorf("empty spec rejected: %v", err)
	}
	for _, bad := range []string{"err", "err=2", "err=x", "bogus=1", "latency=fast"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q accepted, want error", bad)
		}
	}
}

// TestFaultStoreDeterministic asserts two FaultStores with the same
// seed inject the identical fault sequence over the identical op
// sequence — the property that makes chaos runs reproducible.
func TestFaultStoreDeterministic(t *testing.T) {
	run := func() []string {
		inner := newScriptStore()
		inner.data["a"] = bytes.Repeat([]byte("x"), 64)
		fs := NewFaultStore(inner, FaultConfig{Seed: 42, ErrRate: 0.5, TornRate: 0.5})
		var outcomes []string
		for i := 0; i < 64; i++ {
			data, err := fs.Get("a")
			switch {
			case err != nil:
				outcomes = append(outcomes, "err")
			case len(data) < 64:
				outcomes = append(outcomes, "torn")
			default:
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	counts := map[string]int{}
	for _, o := range a {
		counts[o]++
	}
	for _, o := range []string{"err", "torn", "ok"} {
		if counts[o] == 0 {
			t.Errorf("outcome %q never occurred in 64 ops at 50%% rates: %v", o, counts)
		}
	}
}

// TestFaultStoreScheduleHeals asserts the scripted op-count window: the
// store is hostile for the first FaultyOps operations and a clean
// passthrough afterwards.
func TestFaultStoreScheduleHeals(t *testing.T) {
	inner := newScriptStore()
	inner.data["a"] = []byte("payload")
	fs := NewFaultStore(inner, FaultConfig{Seed: 1, ErrRate: 1.0, FaultyOps: 5})
	for i := 0; i < 5; i++ {
		if _, err := fs.Get("a"); err == nil {
			t.Fatalf("op %d inside the fault window succeeded", i)
		}
	}
	for i := 0; i < 5; i++ {
		if data, err := fs.Get("a"); err != nil || string(data) != "payload" {
			t.Fatalf("op %d after the window = %q, %v; want clean payload", 5+i, data, err)
		}
	}
}

// TestFaultStorePreservesLockerShape mirrors the resilient wrapper's
// shape test: chaos must not change the store's locking capability.
func TestFaultStorePreservesLockerShape(t *testing.T) {
	dir, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := NewFaultStore(dir, FaultConfig{}).(CacheLocker); !ok {
		t.Error("faulty DirStore lost its locker")
	}
	obj, err := NewObjStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := NewFaultStore(obj, FaultConfig{}).(CacheLocker); ok {
		t.Error("faulty ObjStore invented a locker")
	}
}

// hostileStack builds the full production chain over a real DirStore —
// chaos beneath, policy on top, tuned tight so the test runs fast.
func hostileStack(t *testing.T, dir string, fault FaultConfig) *Cache {
	t.Helper()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.LockDeadline = 250 * time.Millisecond
	chain := NewResilientStore(NewFaultStore(store, fault), ResilienceConfig{
		OpTimeout:        100 * time.Millisecond,
		LockTimeout:      500 * time.Millisecond,
		Retries:          2,
		RetryBase:        time.Millisecond,
		RetryCap:         5 * time.Millisecond,
		BreakerThreshold: 8,
		BreakerCooldown:  20 * time.Millisecond,
		AsyncPublish:     true,
		DrainTimeout:     2 * time.Second,
		Seed:             fault.Seed,
	})
	return NewCacheWithStore(0, chain)
}

// TestFaultyStoreTortureBitIdentical is the acceptance torture: a 30%
// fault rate (errors + torn reads + hangs + latency + lock failures)
// over a shared artefact directory, hammered by fresh caches across
// rounds. Every result must be bit-identical to the clean reference,
// every error nil, and kernel re-runs bounded — at worst one run per
// key per round (as if the store did not exist), at best one per key
// total.
func TestFaultyStoreTortureBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test")
	}
	dir := t.TempDir()
	seeds := []int64{1, 2, 3, 4, 5, 6}
	want := map[int64]string{}
	for _, s := range seeds {
		res, err := Run(diskScenario(s))
		if err != nil {
			t.Fatal(err)
		}
		want[s] = fingerprint(diskScenario(s), res)
	}

	const rounds = 4
	var totalKernelRuns uint64
	for round := 0; round < rounds; round++ {
		c := hostileStack(t, dir, FaultConfig{
			Seed:    int64(1000 + round),
			ErrRate: 0.3, TornRate: 0.3, LockFailRate: 0.3,
			HangRate: 0.02, HangFor: 300 * time.Millisecond,
			Latency: 200 * time.Microsecond,
		})
		hammer(t, c, seeds, want, 4, 2)
		if err := c.Close(); err != nil {
			t.Errorf("round %d close: %v", round, err)
		}
		st := c.Snapshot()
		totalKernelRuns += st.KernelRuns
		if st.KernelRuns > uint64(len(seeds)) {
			t.Errorf("round %d ran %d kernels for %d keys: in-process singleflight broke", round, st.KernelRuns, len(seeds))
		}
	}
	if totalKernelRuns < uint64(len(seeds)) {
		t.Errorf("total kernel runs %d < %d keys: results came from nowhere", totalKernelRuns, len(seeds))
	}
	// The store itself must stay intact: a clean cache over the same dir
	// reads everything back bit-identical.
	clean := newDiskCache(t, dir)
	for _, s := range seeds {
		res, err := clean.Run(diskScenario(s))
		if err != nil {
			t.Fatal(err)
		}
		if fp := fingerprint(diskScenario(s), res); fp != want[s] {
			t.Errorf("seed %d: artefact surviving the torture decodes to a different result", s)
		}
	}
	if st := clean.Snapshot(); st.Quarantined != 0 {
		t.Errorf("clean re-read quarantined %d artefacts: the torture published bad bytes", st.Quarantined)
	}
}

// TestFaultWindowBreakerRecloses is the end-to-end heal story: a store
// that is hostile for a fixed time window trips the breaker, and once
// the window closes the breaker re-closes and disk service resumes —
// with every result correct throughout.
func TestFaultWindowBreakerRecloses(t *testing.T) {
	dir := t.TempDir()
	sc := diskScenario(11)
	want, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	const window = 400 * time.Millisecond
	c := hostileStack(t, dir, FaultConfig{Seed: 3, ErrRate: 1.0, FaultFor: window})

	// Inside the window: every store op fails, the run still answers.
	got, err := c.Run(sc)
	if err != nil {
		t.Fatalf("run during the fault window: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fault-window result differs from the uncached reference")
	}
	mid := c.Snapshot()
	if mid.StoreErrors == 0 {
		t.Errorf("mid-window stats = %+v, want counted store errors", mid)
	}

	// Drive distinct keys through the dead store until the breaker
	// trips; ErrBreakerOpen never surfaces to a caller. (Fresh keys each
	// time: a memory hit makes no store op, so repeats prove nothing.)
	for s := int64(100); mid.BreakerOpens == 0 && s < 140; s++ {
		if _, err := c.Run(diskScenario(s)); err != nil {
			t.Fatalf("seed %d during fault window: %v", s, err)
		}
		mid = c.Snapshot()
	}
	if mid.BreakerOpens == 0 {
		t.Fatal("breaker never opened against a 100% faulty store")
	}

	// After the window, probes find the store healed: the breaker
	// re-closes. Again fresh keys — only store ops advance the breaker.
	time.Sleep(window + 50*time.Millisecond)
	deadline := time.Now().Add(10 * time.Second)
	probe := int64(200)
	for {
		if _, err := c.Run(diskScenario(probe)); err != nil {
			t.Fatal(err)
		}
		if st := c.Snapshot(); st.BreakerState == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker still %q long after the fault window closed", c.Snapshot().BreakerState)
		}
		probe++
		time.Sleep(10 * time.Millisecond)
	}

	// One more fresh key through the healed, closed-breaker store, then
	// drain: its artefact must land on disk and answer a fresh cache
	// from disk without a kernel run — warm hits have resumed.
	healed := diskScenario(999)
	if _, err := c.Run(healed); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("drain after heal: %v", err)
	}
	c2 := newDiskCache(t, dir)
	if _, err := c2.Run(healed); err != nil {
		t.Fatal(err)
	}
	if st := c2.Snapshot(); st.DiskHits != 1 || st.KernelRuns != 0 {
		t.Errorf("healed-store warm read stats = %+v, want 1 disk hit, 0 kernel runs", st)
	}
}

// TestTornReadReprobe asserts the cache's single re-probe distinguishes
// a transiently torn read (second read decodes; no quarantine) from
// persistent corruption (still quarantined exactly once).
func TestTornReadReprobe(t *testing.T) {
	dir := t.TempDir()
	sc := diskScenario(5)
	seed := newDiskCache(t, dir)
	if _, err := seed.Run(sc); err != nil {
		t.Fatal(err)
	}

	// tearOnce truncates the first Get's bytes and serves the rest clean.
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCacheWithStore(0, &tearOnceStore{CacheStore: store})
	got, err := c.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, _ := seed.Run(sc)
	if !reflect.DeepEqual(got, wantRes) {
		t.Fatal("re-probed result differs")
	}
	if st := c.Snapshot(); st.Quarantined != 0 || st.KernelRuns != 0 || st.DiskHits != 1 {
		t.Errorf("stats after transient tear = %+v, want a plain disk hit", st)
	}
	if files := artefactFiles(t, dir); len(files) != 1 {
		t.Errorf("transient tear left %d artefacts, want the original 1", len(files))
	}
}

// tearOnceStore truncates the first Get it serves.
type tearOnceStore struct {
	CacheStore
	torn bool
}

func (s *tearOnceStore) Get(name string) ([]byte, error) {
	data, err := s.CacheStore.Get(name)
	if err == nil && !s.torn && len(data) > 8 {
		s.torn = true
		return data[:len(data)/2], nil
	}
	return data, err
}

// TestFaultStoreCloseReleasesHangs asserts Close unblocks an in-flight
// injected hang, so a daemon shutting down mid-outage does not wait out
// HangFor.
func TestFaultStoreCloseReleasesHangs(t *testing.T) {
	inner := newScriptStore()
	fs := NewFaultStore(inner, FaultConfig{Seed: 1, HangRate: 1.0, HangFor: time.Minute})
	done := make(chan error, 1)
	go func() {
		_, err := fs.Get("a")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := fs.(interface{ Close() error }).Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrArtefactNotFound) {
			t.Fatalf("released Get = %v, want the clean miss beneath", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release the injected hang")
	}
}
