package sim

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// Environment contract between TestCacheConcurrentTorture and the child
// processes it re-executes (the standard re-exec pattern: the test
// binary runs itself with -test.run pinned to the helper).
const (
	tortureDirEnv   = "WAVM3_TORTURE_DIR"
	tortureSeedsEnv = "WAVM3_TORTURE_SEEDS"
)

// fingerprint condenses a result to a comparable identity: the SHA-256
// of its canonical artefact encoding. Two results fingerprint equal iff
// they are bit-identical.
func fingerprint(sc Scenario, res *RunResult) string {
	keyBytes := encodeCacheKey(cacheKey(sc))
	sum := sha256.Sum256(encodeArtefact(keyBytes, sha256.Sum256(keyBytes), res))
	return hex.EncodeToString(sum[:])
}

// hammer runs every seed repeatedly from workers goroutines against one
// cache, checking each result against the expected fingerprints.
func hammer(t *testing.T, c *Cache, seeds []int64, want map[int64]string, workers, reps int) {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < reps; rep++ {
				for i := range seeds {
					s := seeds[(i+g+rep)%len(seeds)] // varied order: same-key and cross-key contention
					res, err := c.Run(diskScenario(s))
					if err != nil {
						t.Errorf("seed %d: %v", s, err)
						return
					}
					if fp := fingerprint(diskScenario(s), res); fp != want[s] {
						t.Errorf("seed %d: fingerprint %s, want %s", s, fp, want[s])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCacheTortureHelper is the body of a torture child process; it
// skips unless re-executed by TestCacheConcurrentTorture with the
// environment contract set. It hammers the shared cache dir from
// several goroutines and reports its kernel-run count and per-seed
// result fingerprints on stdout.
func TestCacheTortureHelper(t *testing.T) {
	dir := os.Getenv(tortureDirEnv)
	if dir == "" {
		t.Skip("torture child process only")
	}
	var seeds []int64
	for _, f := range strings.Split(os.Getenv(tortureSeedsEnv), ",") {
		s, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, s)
	}
	c := newDiskCache(t, dir)
	fps := make(map[int64]string)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 2; rep++ {
				for i := range seeds {
					s := seeds[(i+g+rep)%len(seeds)]
					if _, err := c.Run(diskScenario(s)); err != nil {
						t.Errorf("seed %d: %v", s, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, s := range seeds {
		res, err := c.Run(diskScenario(s)) // memory hit; no extra kernel run
		if err != nil {
			t.Fatal(err)
		}
		fps[s] = fingerprint(diskScenario(s), res)
	}
	for _, s := range seeds {
		fmt.Printf("torture-fp seed=%d %s\n", s, fps[s])
	}
	st := c.Snapshot()
	fmt.Printf("torture-kernelruns=%d storeerrors=%d\n", st.KernelRuns, st.StoreErrors)
}

// TestCacheConcurrentTorture hammers one cache dir from every direction
// at once — two in-process caches × several goroutines each, plus two
// real child processes running TestCacheTortureHelper — over a key set
// mixing same-key and distinct-key contention. It asserts the global
// no-duplicate-work invariant (total kernel runs across all four
// participants equals the number of distinct keys: the flock
// singleflight elected exactly one owner per key), bit-identical
// results everywhere, and no leaked goroutines.
func TestCacheConcurrentTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process torture skipped in -short")
	}
	dir := t.TempDir()
	seeds := []int64{201, 202, 203}
	var seedList []string
	want := make(map[int64]string)
	for _, s := range seeds {
		res, err := Run(diskScenario(s)) // uncached references, no cache dir traffic
		if err != nil {
			t.Fatal(err)
		}
		want[s] = fingerprint(diskScenario(s), res)
		seedList = append(seedList, strconv.FormatInt(s, 10))
	}

	goroutinesBefore := runtime.NumGoroutine()

	// Two real processes racing the same dir.
	type childResult struct {
		out []byte
		err error
	}
	childc := make(chan childResult, 2)
	for i := 0; i < 2; i++ {
		go func() {
			cmd := exec.Command(os.Args[0], "-test.run=^TestCacheTortureHelper$")
			cmd.Env = append(os.Environ(),
				tortureDirEnv+"="+dir,
				tortureSeedsEnv+"="+strings.Join(seedList, ","))
			out, err := cmd.CombinedOutput()
			childc <- childResult{out, err}
		}()
	}

	// Two in-process caches (separate memory tiers, shared disk tier).
	caches := []*Cache{newDiskCache(t, dir), newDiskCache(t, dir)}
	var wg sync.WaitGroup
	for _, c := range caches {
		wg.Add(1)
		go func(c *Cache) {
			defer wg.Done()
			hammer(t, c, seeds, want, 4, 3)
		}(c)
	}
	wg.Wait()

	totalKernelRuns := caches[0].Snapshot().KernelRuns + caches[1].Snapshot().KernelRuns
	for i := 0; i < 2; i++ {
		r := <-childc
		if r.err != nil {
			t.Fatalf("torture child failed: %v\n%s", r.err, r.out)
		}
		k, fps := parseTortureOutput(t, r.out)
		totalKernelRuns += k
		for s, fp := range fps {
			if fp != want[s] {
				t.Errorf("child seed %d: fingerprint %s, want %s", s, fp, want[s])
			}
		}
		if len(fps) != len(seeds) {
			t.Errorf("child reported %d fingerprints, want %d:\n%s", len(fps), len(seeds), r.out)
		}
	}

	if totalKernelRuns != uint64(len(seeds)) {
		t.Errorf("total kernel runs across 4 participants = %d, want %d (one per distinct key)",
			totalKernelRuns, len(seeds))
	}
	for i, c := range caches {
		if st := c.Snapshot(); st.StoreErrors != 0 || st.Quarantined != 0 {
			t.Errorf("cache %d saw store trouble under contention: %+v", i, st)
		}
	}

	// Goroutine-leak check: everything the torture spawned must unwind.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutinesBefore {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines leaked: %d before, %d after\n%s",
			goroutinesBefore, n, buf[:runtime.Stack(buf, true)])
	}
}

// parseTortureOutput extracts a child's kernel-run count and per-seed
// fingerprints from its stdout.
func parseTortureOutput(t *testing.T, out []byte) (kernelRuns uint64, fps map[int64]string) {
	t.Helper()
	fps = make(map[int64]string)
	found := false
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "torture-kernelruns="):
			var storeErrors uint64
			if _, err := fmt.Sscanf(line, "torture-kernelruns=%d storeerrors=%d", &kernelRuns, &storeErrors); err != nil {
				t.Fatalf("malformed torture line %q: %v", line, err)
			}
			if storeErrors != 0 {
				t.Errorf("child saw %d store errors under contention", storeErrors)
			}
			found = true
		case strings.HasPrefix(line, "torture-fp "):
			var seed int64
			var fp string
			if _, err := fmt.Sscanf(line, "torture-fp seed=%d %s", &seed, &fp); err != nil {
				t.Fatalf("malformed torture line %q: %v", line, err)
			}
			fps[seed] = fp
		}
	}
	if !found {
		t.Fatalf("child reported no kernel-run count:\n%s", out)
	}
	return kernelRuns, fps
}
