package sim

import (
	"reflect"
	"testing"

	"repro/internal/migration"
	"repro/internal/vm"
	"repro/internal/workload"
)

// repeatedScenario is a small, fast scenario for repeated-run tests.
func repeatedScenario(seed int64) Scenario {
	return Scenario{
		Kind:             migration.NonLive,
		MigratingType:    vm.TypeMigratingCPU,
		MigratingProfile: workload.MatrixMultProfile(),
		Seed:             seed,
	}
}

// TestRunRepeatedWorkersDeterministic checks the repeated-run driver's
// contract: every worker count returns the same number of runs, with the
// same derived seeds and the same measured energies, as the sequential
// driver — the speculative batches must truncate identically.
func TestRunRepeatedWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	ref, err := RunRepeatedWorkers(repeatedScenario(21), 3, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) < 3 {
		t.Fatalf("reference produced %d runs, want ≥ 3", len(ref))
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := RunRepeatedWorkers(repeatedScenario(21), 3, 0.5, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d runs, sequential %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Scenario.Seed != ref[i].Scenario.Seed {
				t.Fatalf("workers=%d run %d: seed %d, want %d",
					workers, i, got[i].Scenario.Seed, ref[i].Scenario.Seed)
			}
			if got[i].SourceEnergy != ref[i].SourceEnergy || got[i].TargetEnergy != ref[i].TargetEnergy {
				t.Fatalf("workers=%d run %d: energies differ from sequential", workers, i)
			}
			if !reflect.DeepEqual(got[i].Bounds, ref[i].Bounds) {
				t.Fatalf("workers=%d run %d: phase boundaries differ", workers, i)
			}
		}
	}
}

// TestRunRepeatedSeedDerivation pins the per-run seed rule: run i always
// gets sc.Seed + i*1009, independent of the worker count.
func TestRunRepeatedSeedDerivation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	runs, err := RunRepeatedWorkers(repeatedScenario(5), 2, 0.9, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range runs {
		want := int64(5 + i*1009)
		if r.Scenario.Seed != want {
			t.Errorf("run %d seed = %d, want %d", i, r.Scenario.Seed, want)
		}
	}
}
