//go:build unix

package sim

import (
	"errors"
	"os"
	"syscall"
)

// flockTry attempts a non-blocking exclusive flock on f, reporting
// whether the lock was acquired. EINTR is a retryable non-acquisition,
// not an error.
func flockTry(f *os.File) (bool, error) {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, syscall.EWOULDBLOCK), errors.Is(err, syscall.EAGAIN), errors.Is(err, syscall.EINTR):
		return false, nil
	default:
		return false, err
	}
}

// flockDrop releases the flock. The subsequent Close would release it
// anyway; the explicit unlock just makes the handoff immediate.
func flockDrop(f *os.File) {
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
