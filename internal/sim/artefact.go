package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"time"

	"repro/internal/migration"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// The persistent run cache stores one completed RunResult per file as a
// versioned, self-describing, checksummed artefact. The format is a
// hand-rolled little-endian binary encoding rather than JSON or gob for
// two reasons: floats are stored as their exact IEEE-754 bit patterns, so
// a decoded result is bit-identical to the run that produced it (the
// property the whole cache stack is built on), and the decoder's failure
// surface is small enough to exhaust — every malformed input must come
// back as an *artefactError naming what broke, never a panic and never a
// silently wrong result (FuzzCacheArtefactDecode pins this).
//
// Layout (all integers little-endian):
//
//	offset 0   magic "wavm3run" (8 bytes)
//	offset 8   encoding version (uint32, artefactVersion)
//	offset 12  payload length (uint64)
//	offset 20  payload (see encodeArtefact)
//	tail       SHA-256 of every preceding byte (32 bytes)
//
// The payload opens with the artefact's own cache identity — the SHA-256
// key hash and the canonical key encoding it was computed from — so a
// file renamed onto the wrong key, or a hash collision, is detected by
// content, not trusted by name.

// artefactVersion is the on-disk encoding version. Bump it whenever the
// payload layout or the canonical key encoding changes; old artefacts
// then read as version mismatches (a miss), never as wrong results.
const artefactVersion = 1

// artefactMagic opens every artefact file.
const artefactMagic = "wavm3run"

const (
	artefactHeaderLen = 8 + 4 + 8 // magic + version + payload length
	artefactSumLen    = sha256.Size
)

// Quarantine reasons, embedded in quarantined file names so a corrupt
// cache dir is diagnosable at a glance.
const (
	reasonTruncated = "truncated"
	reasonMagic     = "badmagic"
	reasonVersion   = "version"
	reasonChecksum  = "checksum"
	reasonKey       = "keymismatch"
	reasonMalformed = "malformed"
)

// artefactError is a decode failure: reason selects the quarantine
// label, msg carries the specifics.
type artefactError struct {
	reason string
	msg    string
}

func (e *artefactError) Error() string { return "sim: artefact " + e.reason + ": " + e.msg }

func artefactErrf(reason, format string, args ...any) *artefactError {
	return &artefactError{reason: reason, msg: fmt.Sprintf(format, args...)}
}

// encodeCacheKey renders a cache-key scenario (withDefaults applied, Name
// stripped — see cacheKey) into its canonical bytes. Every field that
// influences the physics is included in a fixed order; the SHA-256 of
// these bytes is the artefact's identity on disk. Changing this encoding
// is a format change: bump artefactVersion.
func encodeCacheKey(key Scenario) []byte {
	var w artefactWriter
	w.str(key.Pair)
	w.i64(int64(key.Kind))
	w.str(key.MigratingType)
	w.profile(key.MigratingProfile)
	w.i64(int64(key.SourceLoadVMs))
	w.i64(int64(key.TargetLoadVMs))
	w.profile(key.LoadProfile)
	w.i64(int64(key.PreMigration))
	w.i64(int64(key.PostMigration))
	w.i64(int64(key.Migration.Kind))
	w.i64(int64(key.Migration.InitiationTime))
	w.i64(int64(key.Migration.ActivationTime))
	w.i64(int64(key.Migration.MaxRounds))
	w.i64(int64(key.Migration.StopThreshold))
	w.f64(key.Migration.MaxDataFactor)
	w.i64(int64(key.Meter.Period))
	w.f64(key.Meter.Accuracy)
	w.f64(key.Meter.NoiseSigma)
	w.i64(key.Seed)
	return w.b
}

// artefactName is the store-facing file name of a key: the hex key hash
// plus the encoding version, so a format bump cannot even collide with
// old files, and an ls of the cache dir reads as a content-addressed
// index.
func artefactName(hash [sha256.Size]byte) string {
	return fmt.Sprintf("%s.v%d.run", hex.EncodeToString(hash[:]), artefactVersion)
}

// encodeArtefact renders one completed run as a self-contained artefact
// file: header, identity, result payload, checksum.
func encodeArtefact(keyBytes []byte, hash [sha256.Size]byte, res *RunResult) []byte {
	var p artefactWriter
	p.bytes(hash[:])
	p.str(string(keyBytes))
	p.i64(int64(res.Bounds.MS))
	p.i64(int64(res.Bounds.TS))
	p.i64(int64(res.Bounds.TE))
	p.i64(int64(res.Bounds.ME))
	p.energy(res.SourceEnergy)
	p.energy(res.TargetEnergy)
	p.i64(int64(res.BytesSent))
	p.i64(int64(res.Rounds))
	p.i64(int64(res.Downtime))
	p.power(res.Source)
	p.power(res.Target)
	p.features(res.SourceFeatures)
	p.features(res.TargetFeatures)

	out := make([]byte, 0, artefactHeaderLen+len(p.b)+artefactSumLen)
	out = append(out, artefactMagic...)
	out = binary.LittleEndian.AppendUint32(out, artefactVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(p.b)))
	out = append(out, p.b...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// decodeArtefact parses and verifies one artefact against the cache key
// the caller is looking up. Any deviation — truncation, bit-rot, a stale
// encoding version, a file that answers a different key — is an
// *artefactError; the caller treats every error as a miss and
// quarantines the file. A nil error guarantees the checksum held and the
// artefact's identity matches (keyBytes, hash) exactly.
func decodeArtefact(data []byte, keyBytes []byte, hash [sha256.Size]byte) (*RunResult, error) {
	if len(data) < artefactHeaderLen+artefactSumLen {
		return nil, artefactErrf(reasonTruncated, "%d bytes, need at least %d", len(data), artefactHeaderLen+artefactSumLen)
	}
	if string(data[:8]) != artefactMagic {
		return nil, artefactErrf(reasonMagic, "leading bytes %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != artefactVersion {
		return nil, artefactErrf(reasonVersion, "encoding version %d, want %d", v, artefactVersion)
	}
	plen := binary.LittleEndian.Uint64(data[12:20])
	if plen != uint64(len(data)-artefactHeaderLen-artefactSumLen) {
		return nil, artefactErrf(reasonTruncated, "payload length %d, file holds %d", plen, len(data)-artefactHeaderLen-artefactSumLen)
	}
	body, sum := data[:len(data)-artefactSumLen], data[len(data)-artefactSumLen:]
	if got := sha256.Sum256(body); string(got[:]) != string(sum) {
		return nil, artefactErrf(reasonChecksum, "stored checksum does not match content")
	}

	r := artefactReader{b: body[artefactHeaderLen:]}
	storedHash, err := r.take(artefactSumLen)
	if err != nil {
		return nil, err
	}
	if string(storedHash) != string(hash[:]) {
		return nil, artefactErrf(reasonKey, "artefact answers key %x, lookup wants %x", storedHash, hash[:])
	}
	storedKey, err := r.str()
	if err != nil {
		return nil, err
	}
	if storedKey != string(keyBytes) {
		return nil, artefactErrf(reasonKey, "embedded scenario differs from the lookup's canonical encoding")
	}

	res := &RunResult{}
	for _, dst := range []*time.Duration{&res.Bounds.MS, &res.Bounds.TS, &res.Bounds.TE, &res.Bounds.ME} {
		v, err := r.i64()
		if err != nil {
			return nil, err
		}
		*dst = time.Duration(v)
	}
	if res.SourceEnergy, err = r.energy(); err != nil {
		return nil, err
	}
	if res.TargetEnergy, err = r.energy(); err != nil {
		return nil, err
	}
	sent, err := r.i64()
	if err != nil {
		return nil, err
	}
	res.BytesSent = units.Bytes(sent)
	rounds, err := r.i64()
	if err != nil {
		return nil, err
	}
	res.Rounds = int(rounds)
	down, err := r.i64()
	if err != nil {
		return nil, err
	}
	res.Downtime = time.Duration(down)
	if res.Source, err = r.power(); err != nil {
		return nil, err
	}
	if res.Target, err = r.power(); err != nil {
		return nil, err
	}
	if res.SourceFeatures, err = r.features(); err != nil {
		return nil, err
	}
	if res.TargetFeatures, err = r.features(); err != nil {
		return nil, err
	}
	if r.off != len(r.b) {
		return nil, artefactErrf(reasonMalformed, "%d trailing payload bytes", len(r.b)-r.off)
	}
	return res, nil
}

// artefactWriter accumulates the little-endian encoding.
type artefactWriter struct{ b []byte }

func (w *artefactWriter) u64(v uint64)   { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *artefactWriter) i64(v int64)    { w.u64(uint64(v)) }
func (w *artefactWriter) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *artefactWriter) bytes(p []byte) { w.b = append(w.b, p...) }
func (w *artefactWriter) str(s string)   { w.u64(uint64(len(s))); w.b = append(w.b, s...) }

func (w *artefactWriter) profile(p workload.Profile) {
	w.str(p.Name)
	w.f64(float64(p.CPUPerVCPU))
	w.f64(p.DirtyPagesPerSecond)
	w.f64(float64(p.WorkingSet))
	w.f64(float64(p.HotFrac))
	w.f64(p.HotProb)
}

func (w *artefactWriter) energy(e trace.PhaseEnergy) {
	w.f64(float64(e.Initiation))
	w.f64(float64(e.Transfer))
	w.f64(float64(e.Activation))
}

func (w *artefactWriter) power(p *trace.PowerTrace) {
	w.str(p.Host)
	w.u64(uint64(len(p.Samples)))
	for _, s := range p.Samples {
		w.i64(int64(s.At))
		w.f64(float64(s.Power))
	}
}

func (w *artefactWriter) features(f *trace.FeatureTrace) {
	w.str(f.Host)
	w.u64(uint64(len(f.Samples)))
	for _, s := range f.Samples {
		w.i64(int64(s.At))
		w.f64(float64(s.HostCPU))
		w.f64(float64(s.VMCPU))
		w.f64(float64(s.Bandwidth))
		w.f64(float64(s.DirtyRatio))
	}
}

// artefactReader walks the payload with explicit bounds checks: every
// read that would cross the end of the buffer is a truncation error, and
// every declared element count is capped by the bytes actually present
// before anything is allocated, so a corrupt length field cannot demand
// gigabytes.
type artefactReader struct {
	b   []byte
	off int
}

func (r *artefactReader) take(n int) ([]byte, error) {
	if n < 0 || len(r.b)-r.off < n {
		return nil, artefactErrf(reasonTruncated, "payload ends %d bytes early", n-(len(r.b)-r.off))
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p, nil
}

func (r *artefactReader) u64() (uint64, error) {
	p, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(p), nil
}

func (r *artefactReader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

func (r *artefactReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *artefactReader) str() (string, error) {
	n, err := r.u64()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)-r.off) {
		return "", artefactErrf(reasonMalformed, "string length %d exceeds remaining payload", n)
	}
	p, err := r.take(int(n))
	return string(p), err
}

// count reads an element count and bounds it by the bytes remaining for
// elements of the given size.
func (r *artefactReader) count(itemSize int) (int, error) {
	n, err := r.u64()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(r.b)-r.off)/uint64(itemSize) {
		return 0, artefactErrf(reasonMalformed, "element count %d exceeds remaining payload", n)
	}
	return int(n), nil
}

func (r *artefactReader) energy() (trace.PhaseEnergy, error) {
	var e trace.PhaseEnergy
	for _, dst := range []*units.Joules{&e.Initiation, &e.Transfer, &e.Activation} {
		v, err := r.f64()
		if err != nil {
			return e, err
		}
		*dst = units.Joules(v)
	}
	return e, nil
}

func (r *artefactReader) power() (*trace.PowerTrace, error) {
	host, err := r.str()
	if err != nil {
		return nil, err
	}
	n, err := r.count(16)
	if err != nil {
		return nil, err
	}
	p := &trace.PowerTrace{Host: host, Samples: make([]trace.Sample, n)}
	for i := range p.Samples {
		at, err := r.i64()
		if err != nil {
			return nil, err
		}
		w, err := r.f64()
		if err != nil {
			return nil, err
		}
		p.Samples[i] = trace.Sample{At: time.Duration(at), Power: units.Watts(w)}
	}
	return p, nil
}

func (r *artefactReader) features() (*trace.FeatureTrace, error) {
	host, err := r.str()
	if err != nil {
		return nil, err
	}
	n, err := r.count(40)
	if err != nil {
		return nil, err
	}
	f := &trace.FeatureTrace{Host: host, Samples: make([]trace.FeatureSample, n)}
	for i := range f.Samples {
		at, err := r.i64()
		if err != nil {
			return nil, err
		}
		hostCPU, err := r.f64()
		if err != nil {
			return nil, err
		}
		vmCPU, err := r.f64()
		if err != nil {
			return nil, err
		}
		bw, err := r.f64()
		if err != nil {
			return nil, err
		}
		dr, err := r.f64()
		if err != nil {
			return nil, err
		}
		f.Samples[i] = trace.FeatureSample{
			At:         time.Duration(at),
			HostCPU:    units.Utilisation(hostCPU),
			VMCPU:      units.Utilisation(vmCPU),
			Bandwidth:  units.BitsPerSecond(bw),
			DirtyRatio: units.Fraction(dr),
		}
	}
	return f, nil
}

// migrationKindGuard pins the assumption that migration.Kind stays an
// integer enum: a change to a non-integer representation would silently
// alter the canonical key encoding.
var _ = int64(migration.Kind(0))
