package sim

import (
	"testing"

	"repro/internal/migration"
)

// maxRunAllocs is the committed allocation ceiling for one sim.Run of a
// representative CPULOAD scenario. The allocation-free kernel needs ~60
// allocations per run (all setup: hosts, guests, images, traces); the
// ceiling leaves headroom for incidental growth but fails CI long before
// a per-step allocation regression (each step used to cost two maps,
// ~3000 allocations per run).
const maxRunAllocs = 200

// TestSimRunAllocCeiling is the allocation-regression smoke: a per-step
// allocation anywhere in the kernel multiplies the count by the step
// total and trips the ceiling.
func TestSimRunAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	sc := benchScenario(migration.Live)
	avg := testing.AllocsPerRun(3, func() {
		if _, err := Run(sc); err != nil {
			t.Fatal(err)
		}
	})
	if avg > maxRunAllocs {
		t.Fatalf("sim.Run allocates %.0f times, ceiling %d — a per-step allocation crept back into the kernel", avg, maxRunAllocs)
	}
}
