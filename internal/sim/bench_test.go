package sim

import (
	"testing"

	"repro/internal/migration"
	"repro/internal/vm"
	"repro/internal/workload"
)

// benchScenario is a representative experimental point: the CPULOAD
// matrixmult guest with one co-located load VM per host.
func benchScenario(kind migration.Kind) Scenario {
	return Scenario{
		Name:          "bench",
		Kind:          kind,
		MigratingType: vm.TypeMigratingCPU,
		SourceLoadVMs: 1,
		TargetLoadVMs: 1,
		Seed:          42,
	}
}

func benchRun(b *testing.B, sc Scenario) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRunNonLive measures one suspend-resume migration run.
func BenchmarkSimRunNonLive(b *testing.B) {
	benchRun(b, benchScenario(migration.NonLive))
}

// BenchmarkSimRunLive measures one pre-copy live migration run.
func BenchmarkSimRunLive(b *testing.B) {
	benchRun(b, benchScenario(migration.Live))
}

// BenchmarkSimRunLiveMem measures the memory-heavy MEMLOAD point: a
// pagedirtier guest at a 95% target dirty ratio, the most expensive run
// class of the campaigns.
func BenchmarkSimRunLiveMem(b *testing.B) {
	sc := Scenario{
		Name:             "bench-mem",
		Kind:             migration.Live,
		MigratingType:    vm.TypeMigratingMem,
		MigratingProfile: workload.PagedirtierProfile(0.95),
		Seed:             42,
	}
	benchRun(b, sc)
}
