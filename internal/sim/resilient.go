package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrStoreTimeout reports a store operation that exceeded its per-op
// bound. The cache layer treats it like any other store failure —
// degrade to a miss or a skip — but it is counted separately
// (CacheStats.Timeouts) because a timing-out store needs different
// operator attention than an erroring one.
var ErrStoreTimeout = errors.New("sim: store operation timed out")

// ErrBreakerOpen reports an operation rejected without touching the
// store because the circuit breaker is open: the persistent tier has
// failed enough consecutive times that the cache runs memory-only until
// a half-open probe succeeds.
var ErrBreakerOpen = errors.New("sim: store circuit breaker open")

// ResilienceConfig tunes a ResilientStore. Zero values select the
// defaults noted per field; negative values disable the mechanism where
// that is meaningful (OpTimeout, LockTimeout, Retries, BreakerThreshold).
type ResilienceConfig struct {
	// OpTimeout bounds one Get/Put/Quarantine attempt (default 2s; the
	// hot-path guarantee that no kernel run or HTTP request waits on a
	// hung store past this). Negative disables.
	OpTimeout time.Duration
	// LockTimeout bounds one Lock acquisition (default 30s — locks
	// legitimately wait for another process's kernel run, so this is much
	// looser than OpTimeout). Negative disables.
	LockTimeout time.Duration
	// Retries is the number of re-attempts after a transient failure
	// (default 2, so up to 3 attempts). Negative disables retrying.
	Retries int
	// RetryBase and RetryCap shape the decorrelated-jitter backoff
	// between attempts: sleep = min(cap, base + U*(3*prev - base)).
	// Defaults 25ms and 250ms.
	RetryBase time.Duration
	RetryCap  time.Duration
	// BreakerThreshold opens the breaker after this many consecutive
	// failed operations (default 5). Negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before allowing
	// one half-open probe (default 1s).
	BreakerCooldown time.Duration
	// AsyncPublish moves Puts off the caller's path onto a bounded-budget
	// background worker. A publish that doesn't fit the budget falls
	// back to the caller's synchronous path (backpressure, bounded by
	// the op timeout and retry budget — a completed kernel run's
	// artefact is never dropped under load); publishes arriving after
	// Close are dropped and counted. Close drains the queue.
	AsyncPublish bool
	// PublishBudget is the async publish queue depth (default 64).
	PublishBudget int
	// DrainTimeout bounds Close's wait for queued publishes (default 5s).
	DrainTimeout time.Duration
	// Seed keys the retry jitter; 0 seeds from the clock (jitter does not
	// need determinism, but tests appreciate it).
	Seed int64
}

func (c ResilienceConfig) withDefaults() ResilienceConfig {
	def := func(v *time.Duration, d time.Duration) {
		if *v == 0 {
			*v = d
		} else if *v < 0 {
			*v = 0
		}
	}
	def(&c.OpTimeout, 2*time.Second)
	def(&c.LockTimeout, 30*time.Second)
	def(&c.RetryBase, 25*time.Millisecond)
	def(&c.RetryCap, 250*time.Millisecond)
	def(&c.BreakerCooldown, time.Second)
	def(&c.DrainTimeout, 5*time.Second)
	if c.Retries == 0 {
		c.Retries = 2
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	} else if c.BreakerThreshold < 0 {
		c.BreakerThreshold = 0
	}
	if c.PublishBudget <= 0 {
		c.PublishBudget = 64
	}
	return c
}

// ResilienceStats is the policy layer's contribution to CacheStats,
// merged into Cache.Snapshot via an interface assertion on the store.
type ResilienceStats struct {
	Retries      uint64
	Timeouts     uint64
	BreakerOpens uint64
	PublishDrops uint64
	BreakerState string
}

// Breaker state names as surfaced in stats, benchjson and /healthz.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// circuitBreaker is the classic three-state machine guarding the
// persistent tier: closed (counting consecutive failures), open
// (rejecting everything until a cooldown elapses), half-open (one probe
// in flight; its outcome re-closes or re-opens). A nil breaker is valid
// and always allows — the "disabled" configuration.
type circuitBreaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    string
	failures int       // consecutive, while closed
	openedAt time.Time // while open
	probe    bool      // a half-open probe is in flight
	opens    uint64
}

func newCircuitBreaker(threshold int, cooldown time.Duration) *circuitBreaker {
	if threshold <= 0 {
		return nil
	}
	return &circuitBreaker{threshold: threshold, cooldown: cooldown, state: breakerClosed}
}

// allow reports whether an operation may touch the store right now.
// In the open state it flips to half-open once the cooldown has elapsed
// and admits exactly one probe; everything else is rejected fast.
func (b *circuitBreaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probe = true
		return true
	default: // half-open
		if b.probe {
			return false
		}
		b.probe = true
		return true
	}
}

// success records an operation that reached the store and came back
// healthy (ErrArtefactNotFound counts: the store answered).
func (b *circuitBreaker) success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probe = false
}

// failure records an operation the store failed. The threshold'th
// consecutive failure — or any failed half-open probe — opens the
// breaker.
func (b *circuitBreaker) failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.reopen()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.reopen()
		}
	}
}

// reopen transitions to open; callers hold b.mu.
func (b *circuitBreaker) reopen() {
	b.state = breakerOpen
	b.failures = 0
	b.probe = false
	b.openedAt = time.Now()
	b.opens++
}

func (b *circuitBreaker) snapshot() (state string, opens uint64) {
	if b == nil {
		return breakerClosed, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}

// publisher is the bounded-budget async publish queue: one worker
// drains it, tryEnqueue never blocks the caller (a full queue signals
// the caller to publish synchronously instead; a closed one drops the
// publish, counted), close waits for the drain.
type publisher struct {
	put func(name string, data []byte)

	mu     sync.Mutex
	closed bool
	queue  chan publishJob
	done   chan struct{}
	drops  atomic.Uint64
}

type publishJob struct {
	name string
	data []byte
}

func newPublisher(budget int, put func(name string, data []byte)) *publisher {
	p := &publisher{put: put, queue: make(chan publishJob, budget), done: make(chan struct{})}
	go func() {
		defer close(p.done)
		for job := range p.queue {
			p.put(job.name, job.data)
		}
	}()
	return p
}

// tryEnqueue hands one publish to the worker, reporting false when the
// budget is exhausted — the caller then publishes synchronously, so a
// full queue means backpressure, not loss. A publish after close is
// dropped (counted) and reported true: the store is going away and the
// artefact is merely a future cache miss.
func (p *publisher) tryEnqueue(name string, data []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.drops.Add(1)
		return true
	}
	select {
	case p.queue <- publishJob{name, data}:
		return true
	default:
		return false
	}
}

// close stops intake and waits up to timeout for queued publishes to
// land. Publishes still queued at expiry are counted as drops.
func (p *publisher) close(timeout time.Duration) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return nil
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-p.done:
		return nil
	case <-t.C:
		return fmt.Errorf("sim: publish drain exceeded %v", timeout)
	}
}

// ResilientStore wraps a CacheStore with the survival policy the
// persistent tier needs against a hostile store: per-op timeouts,
// bounded retries with decorrelated-jitter backoff, a circuit breaker
// that degrades the cache to memory-only while the store is sick, and
// (optionally) asynchronous bounded-budget publishes. Every mechanism
// converts a store failure into a clean miss or a skipped publish —
// callers above see the same CacheStore contract, just slower-or-missing
// rather than wrong or wedged.
//
// Construct with NewResilientStore, which preserves the inner store's
// CacheLocker-ness. Close drains async publishes and closes the inner
// store; Cache.Close forwards to it.
type ResilientStore struct {
	inner   CacheStore
	cfg     ResilienceConfig
	breaker *circuitBreaker
	pub     *publisher

	retries  atomic.Uint64
	timeouts atomic.Uint64

	jitterMu sync.Mutex
	jitter   *rand.Rand

	closeOnce sync.Once
	closeErr  error
}

// resilientLockedStore adds Lock when the inner store offers it.
type resilientLockedStore struct {
	*ResilientStore
}

// NewResilientStore wraps inner with the policy of cfg. The return
// implements CacheLocker exactly when inner does.
func NewResilientStore(inner CacheStore, cfg ResilienceConfig) CacheStore {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s := &ResilientStore{
		inner:   inner,
		cfg:     cfg,
		breaker: newCircuitBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		jitter:  rand.New(rand.NewSource(seed)),
	}
	if cfg.AsyncPublish {
		s.pub = newPublisher(cfg.PublishBudget, s.publishSync)
	}
	if _, ok := inner.(CacheLocker); ok {
		return &resilientLockedStore{s}
	}
	return s
}

// ResilienceStats reports the policy layer's counters; Cache.Snapshot
// merges them into CacheStats.
func (s *ResilientStore) ResilienceStats() ResilienceStats {
	state, opens := s.breaker.snapshot()
	var drops uint64
	if s.pub != nil {
		drops = s.pub.drops.Load()
	}
	return ResilienceStats{
		Retries:      s.retries.Load(),
		Timeouts:     s.timeouts.Load(),
		BreakerOpens: opens,
		PublishDrops: drops,
		BreakerState: state,
	}
}

// Close drains pending async publishes (bounded by DrainTimeout) and
// closes the inner store when it supports closing. Idempotent.
func (s *ResilientStore) Close() error {
	s.closeOnce.Do(func() {
		if s.pub != nil {
			s.closeErr = s.pub.close(s.cfg.DrainTimeout)
		}
		if cl, ok := s.inner.(interface{ Close() error }); ok {
			if err := cl.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// timedCall runs op, bounding it by timeout when positive. The result
// travels through a buffered channel: when the bound expires the
// abandoned goroutine completes into the buffer and is collected, never
// racing a caller that has moved on.
func timedCall[T any](timeout time.Duration, op func() (T, error)) (T, error) {
	if timeout <= 0 {
		return op()
	}
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := op()
		ch <- result{v, err}
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-t.C:
		var zero T
		return zero, ErrStoreTimeout
	}
}

// backoff computes the next decorrelated-jitter sleep from the previous
// one: min(cap, base + U*(3*prev - base)).
func (s *ResilientStore) backoff(prev time.Duration) time.Duration {
	base, cap := s.cfg.RetryBase, s.cfg.RetryCap
	s.jitterMu.Lock()
	u := s.jitter.Float64()
	s.jitterMu.Unlock()
	d := base + time.Duration(u*float64(3*prev-base))
	if d < base {
		d = base
	}
	if d > cap {
		d = cap
	}
	return d
}

// callRetry is the shared policy path for synchronous store ops: breaker
// gate, timed attempts, retries with backoff for transient errors, and
// breaker bookkeeping. ErrArtefactNotFound is a successful answer (the
// store responded; the artefact is absent) — never retried, never a
// breaker failure.
func callRetry[T any](s *ResilientStore, op func() (T, error)) (T, error) {
	var zero T
	if !s.breaker.allow() {
		return zero, ErrBreakerOpen
	}
	sleep := s.cfg.RetryBase
	for attempt := 0; ; attempt++ {
		v, err := timedCall(s.cfg.OpTimeout, op)
		if err == nil || errors.Is(err, ErrArtefactNotFound) {
			s.breaker.success()
			return v, err
		}
		if errors.Is(err, ErrStoreTimeout) {
			s.timeouts.Add(1)
		}
		s.breaker.failure()
		if attempt >= s.cfg.Retries {
			return zero, err
		}
		if !s.breaker.allow() {
			return zero, ErrBreakerOpen
		}
		s.retries.Add(1)
		sleep = s.backoff(sleep)
		time.Sleep(sleep)
	}
}

// Get reads through the policy: breaker-gated, timed, retried.
func (s *ResilientStore) Get(name string) ([]byte, error) {
	return callRetry(s, func() ([]byte, error) { return s.inner.Get(name) })
}

// publishSync is the worker-side (or synchronous) Put path.
func (s *ResilientStore) publishSync(name string, data []byte) {
	_, _ = callRetry(s, func() (struct{}, error) {
		return struct{}{}, s.inner.Put(name, data)
	})
}

// Put publishes through the policy. With AsyncPublish the call usually
// returns immediately and the artefact lands in the background; when
// the budget is exhausted the caller publishes synchronously
// (backpressure), and after Close the publish is dropped and counted.
// Either way the caller never sees a store failure — a lost publish is
// a future cache miss, not an error.
func (s *ResilientStore) Put(name string, data []byte) error {
	if s.pub != nil {
		if !s.pub.tryEnqueue(name, data) {
			s.publishSync(name, data)
		}
		return nil
	}
	_, err := callRetry(s, func() (struct{}, error) {
		return struct{}{}, s.inner.Put(name, data)
	})
	return err
}

// Quarantine moves a bad artefact aside through the policy.
func (s *ResilientStore) Quarantine(name, reason string) error {
	_, err := callRetry(s, func() (struct{}, error) {
		return struct{}{}, s.inner.Quarantine(name, reason)
	})
	return err
}

// Lock acquires through the policy: breaker-gated and bounded by
// LockTimeout (not OpTimeout — locks legitimately wait for another
// process's kernel run, and are never retried: on failure the cache
// falls straight back to owner-wins). Caller cancellation propagates
// as ctx's error; a policy timeout surfaces as ErrStoreTimeout so the
// cache's owner-wins degradation (not its cancellation path) handles it.
func (s *resilientLockedStore) Lock(ctx context.Context, name string) (func(), error) {
	if !s.breaker.allow() {
		return nil, ErrBreakerOpen
	}
	lctx := ctx
	if s.cfg.LockTimeout > 0 {
		var cancel context.CancelFunc
		lctx, cancel = context.WithTimeout(ctx, s.cfg.LockTimeout)
		defer cancel()
	}
	unlock, err := s.inner.(CacheLocker).Lock(lctx, name)
	if err == nil {
		s.breaker.success()
		return unlock, nil
	}
	if ctx.Err() != nil {
		// The caller's own context ended; not the store's fault.
		return nil, err
	}
	if errors.Is(err, context.DeadlineExceeded) {
		s.timeouts.Add(1)
		s.breaker.failure()
		return nil, fmt.Errorf("%w: lock %s", ErrStoreTimeout, name)
	}
	s.breaker.failure()
	return nil, err
}

var (
	_ CacheStore  = (*ResilientStore)(nil)
	_ CacheStore  = (*resilientLockedStore)(nil)
	_ CacheLocker = (*resilientLockedStore)(nil)
)
