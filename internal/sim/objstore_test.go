package sim

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func newObjStore(t *testing.T) *ObjStore {
	t.Helper()
	s, err := NewObjStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestObjStoreBasics(t *testing.T) {
	s := newObjStore(t)
	if _, err := s.Get("aaaa.v1.run"); !errors.Is(err, ErrArtefactNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrArtefactNotFound", err)
	}
	if err := s.Put("aaaa.v1.run", []byte("blob")); err != nil {
		t.Fatal(err)
	}
	data, err := s.Get("aaaa.v1.run")
	if err != nil || string(data) != "blob" {
		t.Fatalf("Get = %q, %v; want blob", data, err)
	}
	// No staging litter.
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store dir holds %d entries after one Put, want 1", len(entries))
	}
	for _, bad := range []string{"", "quarantine", "../escape", "a/b", ".hidden"} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted, want invalid-name error", bad)
		}
		if _, err := s.Get(bad); err == nil || errors.Is(err, ErrArtefactNotFound) {
			t.Errorf("Get(%q) = %v, want invalid-name error", bad, err)
		}
	}
}

// TestObjStorePutFirstWriterWins asserts the conditional-put semantics:
// a second Put of an existing name is a silent no-op (its bytes are
// identical by construction) and the first writer's blob survives.
func TestObjStorePutFirstWriterWins(t *testing.T) {
	s := newObjStore(t)
	if err := s.Put("aaaa.v1.run", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("aaaa.v1.run", []byte("second")); err != nil {
		t.Fatalf("second Put = %v, want silent no-op", err)
	}
	data, err := s.Get("aaaa.v1.run")
	if err != nil || string(data) != "first" {
		t.Fatalf("Get after racing Puts = %q, %v; want the first writer's bytes", data, err)
	}
}

func TestObjStoreQuarantine(t *testing.T) {
	s := newObjStore(t)
	if err := s.Put("aaaa.v1.run", []byte("rotten")); err != nil {
		t.Fatal(err)
	}
	if err := s.Quarantine("aaaa.v1.run", "checksum"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("aaaa.v1.run"); !errors.Is(err, ErrArtefactNotFound) {
		t.Fatalf("Get after quarantine = %v, want ErrArtefactNotFound", err)
	}
	q, err := os.ReadFile(filepath.Join(s.Dir(), quarantineDir, "aaaa.v1.run.checksum"))
	if err != nil || string(q) != "rotten" {
		t.Fatalf("quarantined blob = %q, %v; want the original bytes preserved", q, err)
	}
	// Quarantining an absent name is success: someone else got there.
	if err := s.Quarantine("aaaa.v1.run", "checksum"); err != nil {
		t.Fatalf("second quarantine = %v, want nil", err)
	}
}

// TestObjStoreIsLockless pins the defining property: no CacheLocker, so
// the cache must take its degraded owner-wins path.
func TestObjStoreIsLockless(t *testing.T) {
	var s CacheStore = newObjStore(t)
	if _, ok := s.(CacheLocker); ok {
		t.Fatal("ObjStore implements CacheLocker; it must not (it models S3)")
	}
}

// TestObjStoreDegradedSingleflight is the end-to-end proof of the
// lockless path: two caches (two "processes") over one object store,
// racing the same key from many goroutines. Without cross-process
// locking the kernel may run once per cache — but never more, results
// are bit-identical everywhere, and exactly one artefact exists after
// the dust settles.
func TestObjStoreDegradedSingleflight(t *testing.T) {
	dir := t.TempDir()
	sc := diskScenario(21)
	want, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	newObjCache := func() *Cache {
		store, err := NewObjStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return NewCacheWithStore(0, store)
	}
	c1, c2 := newObjCache(), newObjCache()
	var wg sync.WaitGroup
	for _, c := range []*Cache{c1, c2} {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(c *Cache) {
				defer wg.Done()
				got, err := c.Run(sc)
				if err != nil {
					t.Errorf("racing run: %v", err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Error("racing run differs from the uncached reference")
				}
			}(c)
		}
	}
	wg.Wait()

	runs := c1.Snapshot().KernelRuns + c2.Snapshot().KernelRuns
	if runs < 1 || runs > 2 {
		t.Errorf("kernel runs = %d, want 1..2 (once per cache at worst, never per request)", runs)
	}
	blobs, err := filepath.Glob(filepath.Join(dir, "*.run"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 1 {
		t.Errorf("store holds %d artefacts, want exactly 1 (owner-wins collapsed the race)", len(blobs))
	}

	// A third, cold cache warms entirely from the blob.
	c3 := newObjCache()
	got, err := c3.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("warm object-store read differs from the uncached reference")
	}
	if st := c3.Snapshot(); st.DiskHits != 1 || st.KernelRuns != 0 {
		t.Errorf("warm stats = %+v, want 1 disk hit, 0 kernel runs", st)
	}
}
