package sim

import (
	"container/list"
	"context"
	"sync"
)

// Cache memoizes completed runs across a whole campaign stack. Runs are
// perfectly independent blocks keyed by their physical scenario and seed
// (the Name label is excluded: two families asking for the same physics
// under different labels share one simulation), so identical blocks are
// computed exactly once and every later request is answered from memory.
//
// Lookups are singleflight: concurrent requests for the same key block on
// the one in-flight simulation instead of duplicating it. Hits return a
// shallow copy of the memoized RunResult with the caller's scenario label
// restored — bit-identical to what an uncached Run would have produced —
// sharing the underlying traces, which are treated as immutable by every
// consumer. The cache is bounded (least-recently-used eviction) and
// clearable so long benchmark sessions do not grow without limit.
//
// The zero value is not usable; construct with NewCache. A nil *Cache is
// valid everywhere and degrades to uncached execution.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[Scenario]*cacheEntry
	lru     *list.List // of Scenario keys, front = most recent
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	done chan struct{} // closed when res/err are set
	res  *RunResult
	err  error
	elem *list.Element
}

// DefaultCacheSize bounds a cache built with NewCache(0): generous enough
// for the full two-pair evaluation suite (hundreds of distinct points ×
// repeats) while keeping worst-case retention in the low gigabytes.
const DefaultCacheSize = 1024

// NewCache builds a run cache holding at most maxEntries completed runs
// (<= 0 selects DefaultCacheSize).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheSize
	}
	return &Cache{
		max:     maxEntries,
		entries: make(map[Scenario]*cacheEntry),
		lru:     list.New(),
	}
}

// key canonicalises a scenario into its cache identity: defaults applied,
// label stripped. Everything that influences the physics — pair, kind,
// profiles, load counts, timing, migration config, seed — remains.
func cacheKey(sc Scenario) Scenario {
	k := sc.withDefaults()
	k.Name = ""
	return k
}

// Run answers a scenario from the cache, simulating it at most once per
// key. A nil receiver runs uncached.
func (c *Cache) Run(sc Scenario) (*RunResult, error) {
	return c.RunCtx(context.Background(), sc)
}

// RunCtx is Run with cancellation semantics engineered for shared,
// long-lived caches (a daemon serving many clients):
//
//   - A waiter whose own ctx expires stops waiting and returns its ctx
//     error; the in-flight leader is unaffected.
//   - A leader that fails — including failing because its *own* ctx was
//     cancelled — never poisons the key: the entry is dropped before the
//     waiters wake, and every waiter re-dispatches (one becomes the new
//     leader, the rest wait on it). Simulations are deterministic, so a
//     re-dispatched waiter receives the bit-identical result it would
//     have received from the original leader; a caller only ever sees
//     its own error, never an innocent propagation of someone else's
//     context.Canceled.
//
// Failures are not memoized, so a deterministic error (an invalid
// scenario) terminates: the retrying waiter becomes the leader, computes
// the same error itself and returns it as its own.
func (c *Cache) RunCtx(ctx context.Context, sc Scenario) (*RunResult, error) {
	if c == nil {
		return RunCtx(ctx, sc)
	}
	key := cacheKey(sc)

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.hits++
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if e.err != nil {
				// The leader failed or was cancelled; its entry is already
				// gone. Re-dispatch instead of propagating its error.
				continue
			}
			return e.result(sc), nil
		}
		c.misses++
		e := &cacheEntry{done: make(chan struct{})}
		e.elem = c.lru.PushFront(key)
		c.entries[key] = e
		c.evictLocked()
		c.mu.Unlock()

		res, err := RunCtx(ctx, sc)
		e.res, e.err = res, err
		if err != nil {
			// Failures are not memoized: drop the entry *before* releasing
			// the waiters, so their retry finds a clean slot.
			c.mu.Lock()
			c.removeLocked(key, e)
			c.mu.Unlock()
		}
		close(e.done)
		if err != nil {
			return nil, err
		}
		return e.result(sc), nil
	}
}

// result adapts the memoized run to the requesting scenario: a shallow
// copy sharing the immutable traces, with the caller's labelling restored
// so cached and uncached call sites see bit-identical values.
func (e *cacheEntry) result(sc Scenario) *RunResult {
	out := *e.res
	out.Scenario = sc.withDefaults()
	return &out
}

// evictLocked drops least-recently-used completed entries until the cache
// fits its bound. In-flight entries are skipped: their waiters hold the
// entry regardless, so evicting them would only duplicate work.
func (c *Cache) evictLocked() {
	for back := c.lru.Back(); len(c.entries) > c.max && back != nil; {
		key := back.Value.(Scenario)
		prev := back.Prev()
		e := c.entries[key]
		select {
		case <-e.done:
			c.removeLocked(key, e)
		default: // still simulating
		}
		back = prev
	}
}

func (c *Cache) removeLocked(key Scenario, e *cacheEntry) {
	if cur, ok := c.entries[key]; ok && cur == e {
		delete(c.entries, key)
		c.lru.Remove(e.elem)
	}
}

// Len reports the number of cached (or in-flight) runs.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports cumulative lookup hits and misses.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Clear empties the cache, keeping its bound and statistics.
func (c *Cache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Scenario]*cacheEntry)
	c.lru.Init()
}
