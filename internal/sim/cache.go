package sim

import (
	"container/list"
	"context"
	"crypto/sha256"
	"errors"
	"sync"
	"sync/atomic"
)

// Cache memoizes completed runs across a whole campaign stack. Runs are
// perfectly independent blocks keyed by their physical scenario and seed
// (the Name label is excluded: two families asking for the same physics
// under different labels share one simulation), so identical blocks are
// computed exactly once and every later request is answered from memory.
//
// Lookups are singleflight: concurrent requests for the same key block on
// the one in-flight simulation instead of duplicating it. Hits return a
// shallow copy of the memoized RunResult with the caller's scenario label
// restored — bit-identical to what an uncached Run would have produced —
// sharing the underlying traces, which are treated as immutable by every
// consumer. The cache is bounded (least-recently-used eviction) and
// clearable so long benchmark sessions do not grow without limit.
//
// A Cache optionally fronts a persistent CacheStore (NewCacheWithStore):
// the memory tier stays the fast path and the singleflight authority,
// and the store adds a second, cross-process tier consulted only by the
// in-flight leader of each key — a disk hit fills the memory entry
// without running the kernel, a disk miss runs the kernel and publishes
// the artefact for every later process. Decoded artefacts are verified
// end to end (checksum, version, key identity), and any decode failure
// degrades to a miss that quarantines the bad file and re-runs the
// kernel — never an error, never a wrong result.
//
// The zero value is not usable; construct with NewCache. A nil *Cache is
// valid everywhere and degrades to uncached execution.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[Scenario]*cacheEntry
	lru     *list.List // of Scenario keys, front = most recent
	hits    uint64
	misses  uint64

	// store is the optional persistent tier; nil means memory-only.
	store CacheStore
	// Persistent-tier counters, updated outside mu on the leader path.
	diskHits    atomic.Uint64
	diskMisses  atomic.Uint64
	kernelRuns  atomic.Uint64
	quarantined atomic.Uint64
	storeErrors atomic.Uint64
}

// CacheStats is a point-in-time snapshot of a cache's counters across
// both tiers. Hits/Misses count memory-tier lookups (every RunCtx does
// exactly one); DiskHits/DiskMisses count persistent-tier probes by
// leaders of memory misses; KernelRuns counts simulations actually
// executed — the number a warm, intact cache drives to zero; Quarantined
// counts corrupt artefacts moved aside; StoreErrors counts store I/O
// failures survived by degrading to uncached behaviour.
//
// When the store is wrapped in a ResilientStore the policy counters are
// merged in: Retries/Timeouts count re-attempted and bound-exceeded
// store ops, BreakerOpens counts circuit-breaker trips, PublishDrops
// counts async publishes shed past the budget, and BreakerState is the
// breaker's current state ("closed" when no breaker is configured).
type CacheStats struct {
	Hits, Misses         uint64
	DiskHits, DiskMisses uint64
	KernelRuns           uint64
	Quarantined          uint64
	StoreErrors          uint64
	Retries              uint64
	Timeouts             uint64
	BreakerOpens         uint64
	PublishDrops         uint64
	BreakerState         string
	Entries              int
}

// Delta returns the counter movement from prev to s (Entries and
// BreakerState are carried from s unchanged) — the per-artefact
// attribution wavm3scen records.
func (s CacheStats) Delta(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:         s.Hits - prev.Hits,
		Misses:       s.Misses - prev.Misses,
		DiskHits:     s.DiskHits - prev.DiskHits,
		DiskMisses:   s.DiskMisses - prev.DiskMisses,
		KernelRuns:   s.KernelRuns - prev.KernelRuns,
		Quarantined:  s.Quarantined - prev.Quarantined,
		StoreErrors:  s.StoreErrors - prev.StoreErrors,
		Retries:      s.Retries - prev.Retries,
		Timeouts:     s.Timeouts - prev.Timeouts,
		BreakerOpens: s.BreakerOpens - prev.BreakerOpens,
		PublishDrops: s.PublishDrops - prev.PublishDrops,
		BreakerState: s.BreakerState,
		Entries:      s.Entries,
	}
}

type cacheEntry struct {
	done chan struct{} // closed when res/err are set
	res  *RunResult
	err  error
	elem *list.Element
}

// DefaultCacheSize bounds a cache built with NewCache(0): generous enough
// for the full two-pair evaluation suite (hundreds of distinct points ×
// repeats) while keeping worst-case retention in the low gigabytes.
const DefaultCacheSize = 1024

// NewCache builds a run cache holding at most maxEntries completed runs
// (<= 0 selects DefaultCacheSize).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheSize
	}
	return &Cache{
		max:     maxEntries,
		entries: make(map[Scenario]*cacheEntry),
		lru:     list.New(),
	}
}

// NewCacheWithStore builds a run cache backed by a persistent store.
// Memory eviction never touches the store, and Clear drops only the
// memory tier, so artefacts outlive both the entry bound and the
// process.
func NewCacheWithStore(maxEntries int, store CacheStore) *Cache {
	c := NewCache(maxEntries)
	c.store = store
	return c
}

// Persistent reports whether the cache has a persistent tier.
func (c *Cache) Persistent() bool { return c != nil && c.store != nil }

// key canonicalises a scenario into its cache identity: defaults applied,
// label stripped. Everything that influences the physics — pair, kind,
// profiles, load counts, timing, migration config, seed — remains.
func cacheKey(sc Scenario) Scenario {
	k := sc.withDefaults()
	k.Name = ""
	return k
}

// Run answers a scenario from the cache, simulating it at most once per
// key. A nil receiver runs uncached.
func (c *Cache) Run(sc Scenario) (*RunResult, error) {
	return c.RunCtx(context.Background(), sc)
}

// RunCtx is Run with cancellation semantics engineered for shared,
// long-lived caches (a daemon serving many clients):
//
//   - A waiter whose own ctx expires stops waiting and returns its ctx
//     error; the in-flight leader is unaffected.
//   - A leader that fails — including failing because its *own* ctx was
//     cancelled — never poisons the key: the entry is dropped before the
//     waiters wake, and every waiter re-dispatches (one becomes the new
//     leader, the rest wait on it). Simulations are deterministic, so a
//     re-dispatched waiter receives the bit-identical result it would
//     have received from the original leader; a caller only ever sees
//     its own error, never an innocent propagation of someone else's
//     context.Canceled.
//
// Failures are not memoized, so a deterministic error (an invalid
// scenario) terminates: the retrying waiter becomes the leader, computes
// the same error itself and returns it as its own.
func (c *Cache) RunCtx(ctx context.Context, sc Scenario) (*RunResult, error) {
	if c == nil {
		return RunCtx(ctx, sc)
	}
	key := cacheKey(sc)

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.hits++
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if e.err != nil {
				// The leader failed or was cancelled; its entry is already
				// gone. Re-dispatch instead of propagating its error.
				continue
			}
			return e.result(sc), nil
		}
		c.misses++
		e := &cacheEntry{done: make(chan struct{})}
		e.elem = c.lru.PushFront(key)
		c.entries[key] = e
		c.evictLocked()
		c.mu.Unlock()

		res, err := c.compute(ctx, sc, key)
		e.res, e.err = res, err
		if err != nil {
			// Failures are not memoized: drop the entry *before* releasing
			// the waiters, so their retry finds a clean slot.
			c.mu.Lock()
			c.removeLocked(key, e)
			c.mu.Unlock()
		}
		close(e.done)
		if err != nil {
			return nil, err
		}
		return e.result(sc), nil
	}
}

// compute answers a memory-tier miss as the key's in-flight leader:
// probe the persistent tier, elect a cross-process owner, and only then
// run the kernel and publish the artefact. Store failures of every kind
// (I/O errors, lock trouble, corrupt artefacts) degrade to uncached
// behaviour; corruption additionally quarantines the file so the rerun's
// Put republishes a good artefact under the same name.
func (c *Cache) compute(ctx context.Context, sc, key Scenario) (*RunResult, error) {
	if c.store == nil {
		c.kernelRuns.Add(1)
		return RunCtx(ctx, sc)
	}
	keyBytes := encodeCacheKey(key)
	hash := sha256.Sum256(keyBytes)
	name := artefactName(hash)

	// Fast path: a complete, verified artefact answers without locking.
	if res := c.loadArtefact(name, keyBytes, hash); res != nil {
		c.diskHits.Add(1)
		return res, nil
	}
	// Cross-process singleflight: elect one kernel-run owner per key.
	// Losers block here and re-read the owner's artefact on wake-up.
	if locker, ok := c.store.(CacheLocker); ok {
		unlock, err := locker.Lock(ctx, name)
		switch {
		case err == nil:
			defer unlock()
			if res := c.loadArtefact(name, keyBytes, hash); res != nil {
				c.diskHits.Add(1)
				return res, nil
			}
		case ctx.Err() != nil:
			return nil, ctx.Err()
		default:
			// Lock machinery failed (exotic filesystem): degrade to
			// owner-wins Put, which may duplicate work across processes
			// but stays correct.
			c.storeErrors.Add(1)
		}
	}
	c.diskMisses.Add(1)
	c.kernelRuns.Add(1)
	res, err := RunCtx(ctx, sc)
	if err != nil {
		return nil, err
	}
	if perr := c.store.Put(name, encodeArtefact(keyBytes, hash, res)); perr != nil {
		// A failed publish costs later processes a re-run, nothing else.
		c.storeErrors.Add(1)
	}
	return res, nil
}

// loadArtefact reads and fully verifies one artefact, returning nil on
// any miss. A decode failure is re-probed once — a hostile or non-atomic
// store can tear a single read, and re-reading distinguishes a transient
// tear from a genuinely rotten file. Persistent decode failures —
// truncation, bit-rot, stale version, wrong key — quarantine the file so
// the subsequent kernel rerun can publish a good artefact under the same
// name.
func (c *Cache) loadArtefact(name string, keyBytes []byte, hash [sha256.Size]byte) *RunResult {
	data, err := c.store.Get(name)
	if err != nil {
		if !errors.Is(err, ErrArtefactNotFound) {
			c.storeErrors.Add(1)
		}
		return nil
	}
	res, err := decodeArtefact(data, keyBytes, hash)
	if err != nil {
		if data2, gerr := c.store.Get(name); gerr == nil {
			if res2, derr := decodeArtefact(data2, keyBytes, hash); derr == nil {
				return res2
			}
		}
		c.quarantined.Add(1)
		reason := reasonMalformed
		var aerr *artefactError
		if errors.As(err, &aerr) {
			reason = aerr.reason
		}
		if qerr := c.store.Quarantine(name, reason); qerr != nil {
			c.storeErrors.Add(1)
		}
		return nil
	}
	return res
}

// result adapts the memoized run to the requesting scenario: a shallow
// copy sharing the immutable traces, with the caller's labelling restored
// so cached and uncached call sites see bit-identical values.
func (e *cacheEntry) result(sc Scenario) *RunResult {
	out := *e.res
	out.Scenario = sc.withDefaults()
	return &out
}

// evictLocked drops least-recently-used completed entries until the cache
// fits its bound. In-flight entries are skipped: their waiters hold the
// entry regardless, so evicting them would only duplicate work.
func (c *Cache) evictLocked() {
	for back := c.lru.Back(); len(c.entries) > c.max && back != nil; {
		key := back.Value.(Scenario)
		prev := back.Prev()
		e := c.entries[key]
		select {
		case <-e.done:
			c.removeLocked(key, e)
		default: // still simulating
		}
		back = prev
	}
}

func (c *Cache) removeLocked(key Scenario, e *cacheEntry) {
	if cur, ok := c.entries[key]; ok && cur == e {
		delete(c.entries, key)
		c.lru.Remove(e.elem)
	}
}

// Len reports the number of cached (or in-flight) runs.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports cumulative memory-tier lookup hits and misses. Snapshot
// returns the full two-tier picture.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Snapshot returns the cache's counters across both tiers. A nil cache
// snapshots as all zeros.
func (c *Cache) Snapshot() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	s := CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
	c.mu.Unlock()
	s.DiskHits = c.diskHits.Load()
	s.DiskMisses = c.diskMisses.Load()
	s.KernelRuns = c.kernelRuns.Load()
	s.Quarantined = c.quarantined.Load()
	s.StoreErrors = c.storeErrors.Load()
	if rep, ok := c.store.(interface{ ResilienceStats() ResilienceStats }); ok {
		r := rep.ResilienceStats()
		s.Retries = r.Retries
		s.Timeouts = r.Timeouts
		s.BreakerOpens = r.BreakerOpens
		s.PublishDrops = r.PublishDrops
		s.BreakerState = r.BreakerState
	}
	return s
}

// Close flushes and closes the persistent tier when it supports closing
// (a ResilientStore drains its async publishes here). Nil-safe and
// idempotent; memory-only caches close as a no-op. Callers that publish
// asynchronously must Close before trusting the store's contents.
func (c *Cache) Close() error {
	if c == nil || c.store == nil {
		return nil
	}
	if cl, ok := c.store.(interface{ Close() error }); ok {
		return cl.Close()
	}
	return nil
}

// Clear empties the memory tier, keeping the bound, the statistics and
// every persisted artefact (a cleared store-backed cache re-warms from
// disk instead of re-running kernels).
func (c *Cache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Scenario]*cacheEntry)
	c.lru.Init()
}
