package sim

import (
	"math"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/meter"
	"repro/internal/migration"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
)

func cpuScenario(kind migration.Kind, srcLoad, dstLoad int, seed int64) Scenario {
	return Scenario{
		Name:          "test-cpu",
		Kind:          kind,
		MigratingType: vm.TypeMigratingCPU,
		SourceLoadVMs: srcLoad,
		TargetLoadVMs: dstLoad,
		Seed:          seed,
	}
}

func memScenario(dirty units.Fraction, srcLoad, dstLoad int, seed int64) Scenario {
	return Scenario{
		Name:             "test-mem",
		Kind:             migration.Live,
		MigratingType:    vm.TypeMigratingMem,
		MigratingProfile: workload.PagedirtierProfile(dirty),
		SourceLoadVMs:    srcLoad,
		TargetLoadVMs:    dstLoad,
		Seed:             seed,
	}
}

func TestRunNonLiveBasics(t *testing.T) {
	r, err := Run(cpuScenario(migration.NonLive, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bounds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Power traces cover warm-up, migration and tail at 2 Hz.
	wantSpan := r.Bounds.ME + r.Scenario.PostMigration - time.Second
	if r.Source.Duration() < wantSpan || r.Target.Duration() < wantSpan {
		t.Errorf("trace spans %v/%v, want ≥ %v", r.Source.Duration(), r.Target.Duration(), wantSpan)
	}
	// MS lands after the configured warm-up.
	if r.Bounds.MS != r.Scenario.PreMigration {
		t.Errorf("MS = %v, want %v", r.Bounds.MS, r.Scenario.PreMigration)
	}
	// Exactly one image crossed the wire.
	img := units.PagesOf(4 * units.GiB).Bytes()
	if r.BytesSent != img {
		t.Errorf("bytes sent = %v, want %v", r.BytesSent, img)
	}
	// Per-phase energies are positive and sum to the window integral.
	if r.SourceEnergy.Initiation <= 0 || r.SourceEnergy.Transfer <= 0 || r.SourceEnergy.Activation <= 0 {
		t.Errorf("source phase energies %+v must be positive", r.SourceEnergy)
	}
	whole := r.Source.EnergyBetween(r.Bounds.MS, r.Bounds.ME)
	if math.Abs(float64(r.SourceEnergy.Total()-whole)) > 1e-6*float64(whole) {
		t.Errorf("phase sum %v != window energy %v", r.SourceEnergy.Total(), whole)
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	a, err := Run(cpuScenario(migration.Live, 1, 0, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cpuScenario(migration.Live, 1, 0, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Source.Len() != b.Source.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", a.Source.Len(), b.Source.Len())
	}
	for i := range a.Source.Samples {
		if a.Source.Samples[i] != b.Source.Samples[i] {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
	}
	if a.BytesSent != b.BytesSent || a.Rounds != b.Rounds {
		t.Error("migration outcome differs across identical seeds")
	}
}

func TestRunSeedChangesNoise(t *testing.T) {
	a, _ := Run(cpuScenario(migration.NonLive, 0, 0, 1))
	b, _ := Run(cpuScenario(migration.NonLive, 0, 0, 2))
	same := true
	n := a.Source.Len()
	if b.Source.Len() < n {
		n = b.Source.Len()
	}
	for i := 0; i < n; i++ {
		if a.Source.Samples[i].Power != b.Source.Samples[i].Power {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestRunPreMigrationStabilises(t *testing.T) {
	// The warm-up window must satisfy the paper's stabilisation rule
	// before the migration starts.
	r, err := Run(cpuScenario(migration.NonLive, 0, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	pre := r.Source.Slice(0, r.Bounds.MS-time.Nanosecond)
	at, err := meter.StabilisationPoint(pre)
	if err != nil {
		t.Fatalf("source never stabilised before migration: %v", err)
	}
	if at >= r.Bounds.MS {
		t.Errorf("stabilised only at %v, after MS %v", at, r.Bounds.MS)
	}
}

func TestRunTargetPowerRisesAfterActivation(t *testing.T) {
	// Fig. 4b / 5b: after activation the target runs the VM, so its
	// post-migration power exceeds its pre-migration idle power.
	r, err := Run(cpuScenario(migration.NonLive, 0, 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	before := r.Target.Slice(0, r.Bounds.MS-time.Nanosecond).MeanPower()
	after := r.Target.Slice(r.Bounds.ME+time.Second, r.Bounds.ME+r.Scenario.PostMigration).MeanPower()
	if after <= before+20 {
		t.Errorf("target power: before %v, after %v — want a clear rise from running the VM", before, after)
	}
	// And the source drops back: it lost the 4-vCPU guest.
	sBefore := r.Source.Slice(0, r.Bounds.MS-time.Nanosecond).MeanPower()
	sAfter := r.Source.Slice(r.Bounds.ME+time.Second, r.Bounds.ME+r.Scenario.PostMigration).MeanPower()
	if sAfter >= sBefore-20 {
		t.Errorf("source power: before %v, after %v — want a clear drop", sBefore, sAfter)
	}
}

func TestRunNonLiveSourceDropsAtInitiation(t *testing.T) {
	// The paper: suspending the guest at non-live initiation causes "a
	// strong decrease in power consumption" on the source.
	r, err := Run(cpuScenario(migration.NonLive, 0, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	before := r.Source.Slice(0, r.Bounds.MS-time.Nanosecond).MeanPower()
	during := r.Source.Slice(r.Bounds.MS, r.Bounds.TS).MeanPower()
	if during >= before {
		t.Errorf("source power during initiation %v must drop below normal %v", during, before)
	}
}

func TestRunLoadedSourceLengthensTransfer(t *testing.T) {
	idle, err := Run(cpuScenario(migration.NonLive, 0, 0, 6))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Run(cpuScenario(migration.NonLive, 8, 0, 6))
	if err != nil {
		t.Fatal(err)
	}
	ti := idle.Bounds.TE - idle.Bounds.TS
	tl := loaded.Bounds.TE - loaded.Bounds.TS
	if tl <= ti {
		t.Errorf("transfer with 8 load VMs (%v) must exceed idle transfer (%v)", tl, ti)
	}
}

func TestRunHighDirtyRatioLengthensLive(t *testing.T) {
	lo, err := Run(memScenario(0.05, 0, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(memScenario(0.95, 0, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if hi.BytesSent <= lo.BytesSent {
		t.Errorf("95%% dirty sent %v, 5%% sent %v — want more data at high DR", hi.BytesSent, lo.BytesSent)
	}
	if hi.Downtime <= lo.Downtime {
		t.Errorf("95%% dirty downtime %v must exceed 5%% downtime %v", hi.Downtime, lo.Downtime)
	}
}

func TestRunFeatureTracesAligned(t *testing.T) {
	r, err := Run(memScenario(0.55, 0, 0, 9))
	if err != nil {
		t.Fatal(err)
	}
	obs, err := trace.Align(r.Source, r.SourceFeatures, r.Bounds)
	if err != nil {
		t.Fatal(err)
	}
	// During live transfer the source must report nonzero bandwidth and a
	// nonzero dirty ratio for the migrating VM.
	sawBW, sawDR := false, false
	for _, o := range obs {
		if o.Phase == trace.PhaseTransfer {
			if o.Bandwidth > 0 {
				sawBW = true
			}
			if o.DirtyRatio > 0 {
				sawDR = true
			}
		}
	}
	if !sawBW {
		t.Error("no transfer-phase bandwidth recorded on source")
	}
	if !sawDR {
		t.Error("no transfer-phase dirty ratio recorded on source")
	}
	// Target features: the VM is not there until activation, so VMCPU
	// stays zero until after TE.
	for _, fs := range r.TargetFeatures.Samples {
		if fs.At < r.Bounds.TE && fs.VMCPU != 0 {
			t.Fatalf("target reports VM CPU %v at %v, before activation", fs.VMCPU, fs.At)
		}
	}
}

func TestRunScenarioValidation(t *testing.T) {
	bad := cpuScenario(migration.Live, -1, 0, 1)
	if _, err := Run(bad); err == nil {
		t.Error("negative load VMs must fail")
	}
	badType := Scenario{MigratingType: "bogus"}
	if _, err := Run(badType); err == nil {
		t.Error("unknown migrating type must fail")
	}
	badPair := cpuScenario(migration.Live, 0, 0, 1)
	badPair.Pair = "x-y"
	if _, err := Run(badPair); err == nil {
		t.Error("unknown pair must fail")
	}
}

func TestRunOnXeonPair(t *testing.T) {
	sc := cpuScenario(migration.NonLive, 0, 0, 10)
	sc.Pair = hw.PairO
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// The o-pair idles lower; its baseline must sit below the m-pair's.
	m, err := Run(cpuScenario(migration.NonLive, 0, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	oBase := r.Source.Slice(0, r.Bounds.MS-time.Nanosecond).MeanPower()
	mBase := m.Source.Slice(0, m.Bounds.MS-time.Nanosecond).MeanPower()
	if oBase >= mBase {
		t.Errorf("o-pair baseline %v must be below m-pair %v", oBase, mBase)
	}
	// And its slower migration path lengthens the transfer.
	if (r.Bounds.TE - r.Bounds.TS) <= (m.Bounds.TE - m.Bounds.TS) {
		t.Errorf("o-pair transfer %v should exceed m-pair %v", r.Bounds.TE-r.Bounds.TS, m.Bounds.TE-m.Bounds.TS)
	}
}

func TestRunRepeatedConverges(t *testing.T) {
	runs, err := RunRepeated(cpuScenario(migration.NonLive, 0, 0, 11), 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) < 3 {
		t.Errorf("got %d runs, want ≥ 3", len(runs))
	}
	// All runs share the scenario but differ in seed.
	if runs[0].Scenario.Seed == runs[1].Scenario.Seed {
		t.Error("derived seeds must differ per run")
	}
	if _, err := RunRepeated(cpuScenario(migration.NonLive, 0, 0, 1), 1, 0.5); err == nil {
		t.Error("minRuns < 2 must fail")
	}
}
