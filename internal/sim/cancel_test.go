package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// slowScenario simulates ~5 virtual hours (~300ms wall) of
// post-migration tail — the one phase the migration hard cap does not
// bound — so a cancellation issued after dispatch reliably lands
// mid-run: the window is hundreds of milliseconds against microsecond
// signalling.
func slowScenario() Scenario {
	sc := cacheScenario(11)
	sc.PostMigration = 5 * time.Hour
	return sc
}

// TestRunCtxPreCancelled: a dead context aborts before any simulation
// work, with the context's own error.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, cacheScenario(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCtxCancelMidRun: cancellation lands between simulation steps
// and the run unwinds promptly instead of finishing its virtual hours.
func TestRunCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := RunCtx(ctx, slowScenario())
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // well inside the ~300ms run
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not unwind")
	}
}

// TestRunCtxBitIdentical: threading a live context changes nothing
// about the physics — RunCtx with a background context reproduces Run
// bit for bit.
func TestRunCtxBitIdentical(t *testing.T) {
	plain, err := Run(cacheScenario(9))
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := RunCtx(context.Background(), cacheScenario(9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ctxed) {
		t.Error("RunCtx result differs from Run")
	}
}

// TestCacheCancelledLeaderDoesNotPoisonWaiters is the singleflight
// regression test: a waiter joined to an in-flight computation whose
// leader gets cancelled must never receive the leader's
// context.Canceled — it re-dispatches and returns the bit-identical
// result an uncached Run produces.
func TestCacheCancelledLeaderDoesNotPoisonWaiters(t *testing.T) {
	c := NewCache(0)
	sc := slowScenario()

	leaderCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.RunCtx(leaderCtx, sc)
		leaderErr <- err
	}()
	// The leader has registered its entry once the miss is counted.
	waitStats(t, c, func(hits, misses uint64) bool { return misses >= 1 })

	type res struct {
		r   *RunResult
		err error
	}
	waiter := make(chan res, 1)
	go func() {
		r, err := c.RunCtx(context.Background(), sc)
		waiter <- res{r, err}
	}()
	// The waiter has joined the in-flight entry once the hit is counted.
	waitStats(t, c, func(hits, misses uint64) bool { return hits >= 1 })

	cancel()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	got := <-waiter
	if got.err != nil {
		t.Fatalf("waiter inherited the leader's fate: %v", got.err)
	}

	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got.r) {
		t.Error("waiter's re-dispatched result is not bit-identical to an uncached run")
	}
	// The cancelled leader's entry must be gone; the waiter's
	// re-dispatch is a second miss that leaves a clean cached entry.
	if _, misses := c.Stats(); misses != 2 {
		t.Errorf("misses = %d, want 2 (leader + waiter re-dispatch)", misses)
	}
	if n := c.Len(); n != 1 {
		t.Errorf("cache holds %d entries, want 1 (the waiter's)", n)
	}
}

// TestCacheCancelledWaiterLeavesLeader: a waiter whose own context dies
// while parked on an in-flight entry returns its context error without
// disturbing the leader or the entry.
func TestCacheCancelledWaiterLeavesLeader(t *testing.T) {
	c := NewCache(0)
	sc := slowScenario()

	type res struct {
		r   *RunResult
		err error
	}
	leader := make(chan res, 1)
	go func() {
		r, err := c.RunCtx(context.Background(), sc)
		leader <- res{r, err}
	}()
	waitStats(t, c, func(hits, misses uint64) bool { return misses >= 1 })

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiter := make(chan error, 1)
	go func() {
		_, err := c.RunCtx(waiterCtx, sc)
		waiter <- err
	}()
	waitStats(t, c, func(hits, misses uint64) bool { return hits >= 1 })

	cancelWaiter()
	if err := <-waiter; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	got := <-leader
	if got.err != nil {
		t.Fatalf("leader failed after its waiter left: %v", got.err)
	}
	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got.r) {
		t.Error("leader result is not bit-identical to an uncached run")
	}
}

// waitStats polls the cache counters until cond holds (the counters are
// the only externally visible ordering signal the cache exposes).
func waitStats(t *testing.T, c *Cache, cond func(hits, misses uint64) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cond(c.Stats()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cache counters never reached the expected state")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
