package sim

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig scripts a FaultStore's hostility. All probabilities are
// in [0, 1] and evaluated deterministically per operation from Seed and
// the operation's global index, so a given (config, op sequence) always
// injects the same faults. FaultyOps and FaultFor form the scripted
// schedule: when either is set, the store is hostile only while inside
// the window and behaves as a clean passthrough afterwards — the E2E
// shape for "store breaks, breaker opens, store heals, breaker
// re-closes".
type FaultConfig struct {
	// Seed keys the per-op fault decisions.
	Seed int64
	// ErrRate is the probability a Get/Put/Quarantine fails with an
	// injected I/O error before reaching the inner store.
	ErrRate float64
	// TornRate is the probability a successful Get returns a strict
	// prefix of the artefact — the torn read a non-atomic store can
	// produce. The cache survives it by re-probing once and, failing
	// that, quarantining and re-running the kernel.
	TornRate float64
	// HangRate is the probability an operation blocks for HangFor (or
	// until the store is closed, or — for Lock — the caller's ctx ends)
	// before proceeding: the "store stopped answering" failure the per-op
	// timeout exists for.
	HangRate float64
	// LockFailRate is the probability a Lock acquisition fails with an
	// injected error, forcing the cache onto its owner-wins path.
	LockFailRate float64
	// Latency is added to every operation while the store is hostile.
	Latency time.Duration
	// HangFor bounds one injected hang (default 30s — far beyond any
	// sane op timeout, close enough that tests unwind).
	HangFor time.Duration
	// FaultyOps, when positive, limits hostility to the first N
	// operations.
	FaultyOps int64
	// FaultFor, when positive, limits hostility to this span after
	// construction.
	FaultFor time.Duration
}

// ParseFaultSpec parses the CLI's compact fault syntax into a
// FaultConfig: comma-separated key=value pairs, e.g.
// "seed=7,err=0.3,torn=0.1,hang=0.05,hangfor=50ms,lockfail=0.2,latency=1ms,ops=400,for=2s".
func ParseFaultSpec(spec string) (FaultConfig, error) {
	var cfg FaultConfig
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("sim: fault spec %q: %q is not key=value", spec, kv)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "ops":
			cfg.FaultyOps, err = strconv.ParseInt(v, 10, 64)
		case "err":
			cfg.ErrRate, err = parseRate(v)
		case "torn":
			cfg.TornRate, err = parseRate(v)
		case "hang":
			cfg.HangRate, err = parseRate(v)
		case "lockfail":
			cfg.LockFailRate, err = parseRate(v)
		case "latency":
			cfg.Latency, err = time.ParseDuration(v)
		case "hangfor":
			cfg.HangFor, err = time.ParseDuration(v)
		case "for":
			cfg.FaultFor, err = time.ParseDuration(v)
		default:
			return cfg, fmt.Errorf("sim: fault spec %q: unknown key %q", spec, k)
		}
		if err != nil {
			return cfg, fmt.Errorf("sim: fault spec %q: %s: %w", spec, k, err)
		}
	}
	return cfg, nil
}

func parseRate(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("rate %v outside [0, 1]", f)
	}
	return f, nil
}

// FaultStore wraps any CacheStore with deterministic, seeded chaos:
// injected errors, latency, hangs, torn reads and lock-acquisition
// failures, optionally confined to a scripted window (FaultConfig).
// It exists to prove the resilience stack's invariant — any store
// misbehaviour degrades to a miss or a skip, never an error, never a
// wrong byte — under test and in CI, against the real store layouts.
//
// Construct with NewFaultStore, which preserves the inner store's
// CacheLocker-ness (a FaultStore over a DirStore still offers Lock, a
// FaultStore over an ObjStore does not). Close releases any injected
// hangs still in flight and closes the inner store if it is closeable.
type FaultStore struct {
	inner CacheStore
	cfg   FaultConfig
	start time.Time
	ops   atomic.Int64

	closeOnce sync.Once
	closed    chan struct{}
}

// faultLockedStore adds Lock when the inner store offers it, so the
// cache sees the same locking capability with or without chaos.
type faultLockedStore struct {
	*FaultStore
}

// NewFaultStore wraps inner with the scripted chaos of cfg. The return
// implements CacheLocker exactly when inner does.
func NewFaultStore(inner CacheStore, cfg FaultConfig) CacheStore {
	if cfg.HangFor <= 0 {
		cfg.HangFor = 30 * time.Second
	}
	s := &FaultStore{inner: inner, cfg: cfg, start: time.Now(), closed: make(chan struct{})}
	if _, ok := inner.(CacheLocker); ok {
		return &faultLockedStore{s}
	}
	return s
}

// Close releases every injected hang and closes the inner store when it
// supports closing. Safe to call more than once.
func (s *FaultStore) Close() error {
	s.closeOnce.Do(func() { close(s.closed) })
	if cl, ok := s.inner.(interface{ Close() error }); ok {
		return cl.Close()
	}
	return nil
}

// Per-decision salts: one stream per fault class so the rates are
// independent draws.
const (
	saltHang = 1 + iota
	saltErr
	saltTorn
	saltCut
	saltLock
)

// op claims the next global operation index and reports whether the
// scripted schedule makes it hostile.
func (s *FaultStore) op() (int64, bool) {
	n := s.ops.Add(1) - 1
	if s.cfg.FaultyOps > 0 && n >= s.cfg.FaultyOps {
		return n, false
	}
	if s.cfg.FaultFor > 0 && time.Since(s.start) >= s.cfg.FaultFor {
		return n, false
	}
	return n, true
}

// u01 draws the op's decision value for one fault class in [0, 1):
// splitmix64 finalisation over (seed, op, salt), so the whole fault
// pattern replays from the seed.
func (s *FaultStore) u01(op int64, salt uint64) float64 {
	x := mix64(mix64(uint64(s.cfg.Seed)^uint64(op)*0x9e3779b97f4a7c15) + salt)
	return float64(x>>11) / (1 << 53)
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// misbehave applies the common hostile prelude — latency, maybe a hang,
// maybe an injected error — returning a non-nil error when the op fails.
// done, when non-nil, additionally releases a hang (Lock passes its
// ctx.Done so a cancelled waiter unblocks).
func (s *FaultStore) misbehave(op int64, kind string, done <-chan struct{}) error {
	if s.cfg.Latency > 0 {
		time.Sleep(s.cfg.Latency)
	}
	if s.cfg.HangRate > 0 && s.u01(op, saltHang) < s.cfg.HangRate {
		t := time.NewTimer(s.cfg.HangFor)
		select {
		case <-t.C:
		case <-s.closed:
			t.Stop()
		case <-done:
			t.Stop()
		}
	}
	if s.cfg.ErrRate > 0 && s.u01(op, saltErr) < s.cfg.ErrRate {
		return fmt.Errorf("sim: injected store fault (%s op %d)", kind, op)
	}
	return nil
}

// Get reads through the chaos: injected latency/hang/error first, then
// the inner read, then — maybe — a torn prefix of the real bytes.
func (s *FaultStore) Get(name string) ([]byte, error) {
	n, hostile := s.op()
	if !hostile {
		return s.inner.Get(name)
	}
	if err := s.misbehave(n, "get", nil); err != nil {
		return nil, err
	}
	data, err := s.inner.Get(name)
	if err != nil {
		return nil, err
	}
	if s.cfg.TornRate > 0 && len(data) > 1 && s.u01(n, saltTorn) < s.cfg.TornRate {
		cut := 1 + int(s.u01(n, saltCut)*float64(len(data)-1))
		return data[:cut:cut], nil
	}
	return data, nil
}

// Put publishes through the chaos; an injected fault withholds the
// artefact (a later process re-runs the kernel — degraded, correct).
func (s *FaultStore) Put(name string, data []byte) error {
	n, hostile := s.op()
	if !hostile {
		return s.inner.Put(name, data)
	}
	if err := s.misbehave(n, "put", nil); err != nil {
		return err
	}
	return s.inner.Put(name, data)
}

// Quarantine moves a bad artefact aside through the chaos.
func (s *FaultStore) Quarantine(name, reason string) error {
	n, hostile := s.op()
	if !hostile {
		return s.inner.Quarantine(name, reason)
	}
	if err := s.misbehave(n, "quarantine", nil); err != nil {
		return err
	}
	return s.inner.Quarantine(name, reason)
}

// Lock acquires through the chaos: latency and hangs apply (released by
// ctx as well as Close), then an injected acquisition failure, then the
// inner lock.
func (s *faultLockedStore) Lock(ctx context.Context, name string) (func(), error) {
	n, hostile := s.op()
	if !hostile {
		return s.inner.(CacheLocker).Lock(ctx, name)
	}
	if err := s.misbehave(n, "lock", ctx.Done()); err != nil {
		return nil, err
	}
	if s.cfg.LockFailRate > 0 && s.u01(n, saltLock) < s.cfg.LockFailRate {
		return nil, fmt.Errorf("sim: injected lock fault (op %d)", n)
	}
	return s.inner.(CacheLocker).Lock(ctx, name)
}

var (
	_ CacheStore  = (*FaultStore)(nil)
	_ CacheStore  = (*faultLockedStore)(nil)
	_ CacheLocker = (*faultLockedStore)(nil)
)
