package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// ErrArtefactNotFound is a CacheStore's "no such artefact" answer; the
// cache treats it as a clean miss (anything else a Get returns is an I/O
// failure, counted but equally survived).
var ErrArtefactNotFound = errors.New("sim: artefact not found")

// CacheStore is the persistence tier behind a Cache: a content-addressed
// blob store keyed by artefact name (hash + encoding version, see
// artefactName). The dir-tree DirStore is the only backend today; an
// object-store backend slots in behind the same three calls. Stores hold
// opaque bytes — all encoding, verification and corruption handling
// lives in the cache layer above, so a store never has to distinguish a
// good artefact from a rotten one.
//
// Contract: Get returns ErrArtefactNotFound for absent names; Put is
// atomic and owner-wins (concurrent writers of the same name are
// bit-identical by construction, so any complete write is correct);
// Quarantine moves a name out of the lookup path so the next Get misses.
// All methods must be safe for concurrent use by multiple goroutines and
// multiple processes.
type CacheStore interface {
	Get(name string) ([]byte, error)
	Put(name string, data []byte) error
	Quarantine(name, reason string) error
}

// CacheLocker is the optional cross-process singleflight a CacheStore
// may offer: Lock blocks (honouring ctx) until the caller exclusively
// owns the named artefact's compute slot, and the returned func releases
// it. Stores without locking (an eventual object-store backend) simply
// don't implement it — the cache then degrades to owner-wins Put, which
// duplicates work across processes but never corrupts results.
type CacheLocker interface {
	Lock(ctx context.Context, name string) (unlock func(), err error)
}

// quarantineDir is DirStore's subdirectory for artefacts that failed to
// decode; moving them aside (rather than deleting) keeps the evidence
// for diagnosis while guaranteeing the next lookup misses.
const quarantineDir = "quarantine"

// DirStore is the directory-tree CacheStore: one file per artefact in a
// single flat directory, shareable between concurrent processes (CLI
// invocations, CI jobs, wavm3d replicas) on one filesystem.
//
//   - Put writes a temp file in the same directory, fsyncs, renames over
//     the final name, then fsyncs the directory — readers only ever
//     observe absent or complete files, and a published artefact survives
//     power loss immediately after Put returns.
//   - Lock (the CacheLocker interface) takes an advisory flock on a
//     sidecar <name>.lock file, so concurrent processes sharing the
//     directory elect one kernel-run owner per key and the losers re-read
//     the owner's artefact. Locks die with their process: a crashed owner
//     never wedges the directory, and a wedged lock *file* (a stale NFS
//     handle, a filesystem that silently drops flocks) is bounded by a
//     per-acquisition deadline after which the caller degrades to
//     owner-wins instead of polling forever.
//   - Quarantine renames a corrupt artefact into quarantine/ with the
//     failure reason in the file name, recreating quarantine/ if it was
//     removed at runtime.
type DirStore struct {
	dir string

	// LockDeadline bounds one Lock acquisition: on expiry Lock returns an
	// error (not the caller's ctx error), which the cache layer degrades
	// to owner-wins publishing. 0 selects DefaultLockDeadline; negative
	// waits without bound.
	LockDeadline time.Duration
}

// NewDirStore opens (creating if necessary) a cache directory.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("sim: opening cache dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DirStore) Dir() string { return s.dir }

// checkArtefactName refuses names that could escape a store directory or
// collide with its internals. Cache-layer names are hex hashes plus a
// version suffix, so anything else indicates a bug. Shared by every
// dir-backed store (DirStore, ObjStore).
func checkArtefactName(name string) error {
	if name == "" || name == quarantineDir || strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("sim: invalid artefact name %q", name)
	}
	return nil
}

func (s *DirStore) checkName(name string) error { return checkArtefactName(name) }

// syncDir flushes a directory's entry table so a just-renamed file
// survives power loss. Best-effort: a filesystem that cannot fsync a
// directory still gave us the rename's atomicity, which is the
// correctness half of the contract.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Get reads an artefact's bytes.
func (s *DirStore) Get(name string) ([]byte, error) {
	if err := s.checkName(name); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrArtefactNotFound
	}
	return data, err
}

// Put atomically publishes an artefact: temp file in the same directory,
// fsync, rename. A concurrent Put of the same name is owner-wins — both
// writers produced bit-identical bytes, so whichever rename lands last
// changes nothing observable.
func (s *DirStore) Put(name string, data []byte) error {
	if err := s.checkName(name); err != nil {
		return err
	}
	f, err := os.CreateTemp(s.dir, "."+name+".tmp-*")
	if err != nil {
		return fmt.Errorf("sim: staging artefact: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(fmt.Errorf("sim: writing artefact: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("sim: syncing artefact: %w", err))
	}
	// Readable by other users sharing the cache dir (CreateTemp defaults
	// to 0600).
	if err := f.Chmod(0o644); err != nil {
		return cleanup(fmt.Errorf("sim: publishing artefact: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sim: closing artefact: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sim: publishing artefact: %w", err)
	}
	// The rename made the artefact visible; the directory fsync makes it
	// durable (without it, a power cut can roll the publish back).
	syncDir(s.dir)
	return nil
}

// Quarantine moves a corrupt artefact into quarantine/<name>.<reason>.
// A missing source is success — a concurrent process already moved it.
// A missing quarantine/ directory (removed at runtime by an operator or
// a cleanup job) is recreated on demand; without that, every future
// corruption would fail its quarantine and re-read the same bad file
// forever.
func (s *DirStore) Quarantine(name, reason string) error {
	if err := s.checkName(name); err != nil {
		return err
	}
	src := filepath.Join(s.dir, name)
	dst := filepath.Join(s.dir, quarantineDir, name+"."+reason)
	err := os.Rename(src, dst)
	if errors.Is(err, os.ErrNotExist) {
		// ENOENT is ambiguous: source already moved (success), or the
		// quarantine directory is gone (recreate and retry once).
		if _, serr := os.Stat(src); errors.Is(serr, os.ErrNotExist) {
			return nil
		}
		if merr := os.MkdirAll(filepath.Join(s.dir, quarantineDir), 0o755); merr != nil {
			return fmt.Errorf("sim: recreating quarantine dir: %w", merr)
		}
		err = os.Rename(src, dst)
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
	}
	return err
}

// lockPollInterval paces the non-blocking flock retry loop: short enough
// that a loser resumes promptly after the owner's sub-second kernel run,
// long enough not to spin.
const lockPollInterval = 5 * time.Millisecond

// DefaultLockDeadline is the per-acquisition bound Lock applies when
// DirStore.LockDeadline is zero: long enough for any realistic owner's
// kernel run, short enough that a wedged lock file cannot stall a
// process forever.
const DefaultLockDeadline = 30 * time.Second

// errLockWedged reports a Lock acquisition that hit its deadline while
// the caller's own context was still live — the signature of a wedged
// lock file (a dead NFS handle, a leaked flock). The cache layer treats
// it like any other store failure: degrade to owner-wins publishing.
var errLockWedged = errors.New("sim: artefact lock acquisition deadline exceeded; degrading to owner-wins")

// Lock implements CacheLocker with an advisory flock on <name>.lock,
// acquired non-blocking in a poll loop so ctx cancellation is honoured
// while waiting. The poll timer is allocated once and reused across
// iterations (the loop runs at 200 Hz while waiting). Acquisition is
// bounded by LockDeadline so a wedged lock file degrades to owner-wins
// instead of polling forever. The lock file itself is left in place —
// removing it would race a third process onto a different inode and
// break the exclusion.
func (s *DirStore) Lock(ctx context.Context, name string) (func(), error) {
	if err := s.checkName(name); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(s.dir, name+".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sim: opening artefact lock: %w", err)
	}
	deadline := s.LockDeadline
	if deadline == 0 {
		deadline = DefaultLockDeadline
	}
	var expire <-chan time.Time
	if deadline > 0 {
		expireTimer := time.NewTimer(deadline)
		defer expireTimer.Stop()
		expire = expireTimer.C
	}
	poll := time.NewTimer(lockPollInterval)
	defer poll.Stop()
	for {
		held, err := flockTry(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("sim: locking artefact: %w", err)
		}
		if held {
			return func() {
				flockDrop(f)
				f.Close()
			}, nil
		}
		select {
		case <-ctx.Done():
			f.Close()
			return nil, ctx.Err()
		case <-expire:
			f.Close()
			return nil, errLockWedged
		case <-poll.C:
			poll.Reset(lockPollInterval)
		}
	}
}

var (
	_ CacheStore  = (*DirStore)(nil)
	_ CacheLocker = (*DirStore)(nil)
)
