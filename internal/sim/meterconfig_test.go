package sim

import (
	"testing"
	"time"
)

func TestMeterConfigValidate(t *testing.T) {
	if err := (MeterConfig{}).Validate(); err != nil {
		t.Fatalf("zero meter config rejected: %v", err)
	}
	good := MeterConfig{Period: time.Second, Accuracy: 0.01, NoiseSigma: 0.001}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid meter config rejected: %v", err)
	}
	bad := []MeterConfig{
		{Period: 250 * time.Millisecond}, // not a multiple of Step
		{Period: -time.Second},
		{Accuracy: 1.5},
		{NoiseSigma: -0.1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("meter config %+v accepted, want error", c)
		}
	}
}

func TestMeterConfigChangesSamplingCadence(t *testing.T) {
	base := Scenario{Name: "meter-default", Seed: 42,
		PreMigration: 11 * time.Second, PostMigration: 6 * time.Second}
	slow := base
	slow.Name = "meter-1hz"
	slow.Meter = MeterConfig{Period: time.Second}

	rb, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	// Halving the cadence roughly halves the sample count over the same
	// physical run.
	nb, ns := len(rb.Source.Samples), len(rs.Source.Samples)
	if ns >= nb {
		t.Fatalf("1 Hz meter took %d samples, default 2 Hz took %d: cadence override had no effect", ns, nb)
	}
	if ns < nb/2-2 || ns > nb/2+2 {
		t.Errorf("1 Hz sample count %d not about half of %d", ns, nb)
	}
	// The physics underneath is untouched: the migration timeline is
	// identical under either instrument.
	if rb.Bounds != rs.Bounds || rb.BytesSent != rs.BytesSent || rb.Rounds != rs.Rounds {
		t.Errorf("meter cadence changed migration physics: %+v vs %+v", rb.Bounds, rs.Bounds)
	}
}
