package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCacheCorruptionMatrix injects every corruption class the decoder
// distinguishes — flipped bytes, truncation, zero-length files, stale
// encoding versions, an artefact renamed onto the wrong key — and
// demands the same recovery from each: the read is a miss, the bad file
// is quarantined under its reason, the kernel re-runs, a good artefact
// is republished under the same name, and the final result is
// bit-identical to a cold run.
func TestCacheCorruptionMatrix(t *testing.T) {
	sc := diskScenario(99)
	want, err := Run(sc) // uncached reference = what a cold run must produce
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		reason  string
		corrupt func(t *testing.T, good []byte) []byte
	}{
		{"flip-payload-byte", reasonChecksum, func(t *testing.T, good []byte) []byte {
			bad := append([]byte(nil), good...)
			bad[len(bad)/2] ^= 0x01
			return bad
		}},
		{"flip-checksum-byte", reasonChecksum, func(t *testing.T, good []byte) []byte {
			bad := append([]byte(nil), good...)
			bad[len(bad)-1] ^= 0x80
			return bad
		}},
		{"truncate", reasonTruncated, func(t *testing.T, good []byte) []byte {
			return good[:len(good)-10]
		}},
		{"zero-length", reasonTruncated, func(t *testing.T, good []byte) []byte {
			return nil
		}},
		{"stale-version", reasonVersion, func(t *testing.T, good []byte) []byte {
			bad := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(bad[8:12], artefactVersion+7)
			return bad
		}},
		{"bad-magic", reasonMagic, func(t *testing.T, good []byte) []byte {
			bad := append([]byte(nil), good...)
			copy(bad, "notarun!")
			return bad
		}},
		{"wrong-key", reasonKey, func(t *testing.T, good []byte) []byte {
			// A structurally valid artefact that answers a different key:
			// checksum holds, identity does not.
			other := diskScenario(100)
			res, err := Run(other)
			if err != nil {
				t.Fatal(err)
			}
			kb := encodeCacheKey(cacheKey(other))
			return encodeArtefact(kb, sha256.Sum256(kb), res)
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			// Publish a good artefact, then corrupt it in place.
			if _, err := newDiskCache(t, dir).Run(sc); err != nil {
				t.Fatal(err)
			}
			files := artefactFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("seed run left %d artefacts", len(files))
			}
			path := files[0]
			good, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(t, good), 0o644); err != nil {
				t.Fatal(err)
			}

			// A fresh cache must recover: miss, quarantine, re-run, same bits.
			c := newDiskCache(t, dir)
			got, err := c.Run(sc)
			if err != nil {
				t.Fatalf("corrupt artefact surfaced as an error: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Error("recovered result differs from the cold reference")
			}
			st := c.Snapshot()
			if st.Quarantined != 1 || st.KernelRuns != 1 || st.DiskHits != 0 {
				t.Errorf("recovery stats = %+v, want 1 quarantine + 1 kernel run + 0 disk hits", st)
			}

			// The bad file is preserved under its reason for diagnosis...
			qpath := filepath.Join(dir, quarantineDir, filepath.Base(path)+"."+tc.reason)
			if _, err := os.Stat(qpath); err != nil {
				t.Errorf("quarantined file not at %s: %v", qpath, err)
			}
			// ...and a byte-identical good artefact is back under the name.
			republished, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("artefact not republished: %v", err)
			}
			if !bytes.Equal(republished, good) {
				t.Error("republished artefact is not byte-identical to the original")
			}

			// The dir is fully healed: the next process is pure disk hits.
			warm := newDiskCache(t, dir)
			got2, err := warm.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got2, want) {
				t.Error("post-heal warm run differs from the cold reference")
			}
			if st := warm.Snapshot(); st.KernelRuns != 0 || st.DiskHits != 1 {
				t.Errorf("post-heal stats = %+v, want a pure disk hit", st)
			}
		})
	}
}
