package sim

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// scriptStore is a programmable in-memory CacheStore for policy tests:
// fail the next N ops, block ops until released, count calls.
type scriptStore struct {
	mu    sync.Mutex
	fails int // fail this many upcoming ops
	calls int
	data  map[string][]byte

	block   chan struct{} // when non-nil, ops block here first
	entered chan struct{} // signalled once per op that starts blocking
}

func newScriptStore() *scriptStore {
	return &scriptStore{data: map[string][]byte{}}
}

// step applies the common scripted prelude; the returned error is the
// injected failure, if any.
func (s *scriptStore) step() error {
	s.mu.Lock()
	s.calls++
	block := s.block
	entered := s.entered
	fail := s.fails > 0
	if fail {
		s.fails--
	}
	s.mu.Unlock()
	if block != nil {
		if entered != nil {
			entered <- struct{}{}
		}
		<-block
	}
	if fail {
		return errors.New("scripted store failure")
	}
	return nil
}

func (s *scriptStore) failNext(n int) {
	s.mu.Lock()
	s.fails = n
	s.mu.Unlock()
}

func (s *scriptStore) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *scriptStore) Get(name string) ([]byte, error) {
	if err := s.step(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.data[name]
	if !ok {
		return nil, ErrArtefactNotFound
	}
	return data, nil
}

func (s *scriptStore) Put(name string, data []byte) error {
	if err := s.step(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[name] = data
	return nil
}

func (s *scriptStore) Quarantine(name, reason string) error {
	if err := s.step(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, name)
	return nil
}

// policyStats reads the resilience counters off a wrapped store.
func policyStats(t *testing.T, s CacheStore) ResilienceStats {
	t.Helper()
	rep, ok := s.(interface{ ResilienceStats() ResilienceStats })
	if !ok {
		t.Fatal("store does not report resilience stats")
	}
	return rep.ResilienceStats()
}

// TestBreakerLifecycle walks the circuit breaker through its full state
// machine — closed → open on K consecutive faults, fast-fail while
// open, half-open probe after the cooldown, re-close on success, and
// re-open on a failed probe — asserting the stats at each transition.
func TestBreakerLifecycle(t *testing.T) {
	inner := newScriptStore()
	inner.data["a"] = []byte("payload")
	const cooldown = 40 * time.Millisecond
	rs := NewResilientStore(inner, ResilienceConfig{
		Retries:          -1, // one attempt per op: op failures map 1:1 to breaker failures
		BreakerThreshold: 3,
		BreakerCooldown:  cooldown,
		Seed:             1,
	})

	if st := policyStats(t, rs); st.BreakerState != "closed" || st.BreakerOpens != 0 {
		t.Fatalf("initial stats = %+v, want closed breaker with 0 opens", st)
	}

	// Three consecutive failures open the breaker.
	inner.failNext(3)
	for i := 0; i < 3; i++ {
		if _, err := rs.Get("a"); err == nil {
			t.Fatalf("fault %d: Get succeeded, want injected failure", i)
		}
	}
	if st := policyStats(t, rs); st.BreakerState != "open" || st.BreakerOpens != 1 {
		t.Fatalf("after 3 faults: stats = %+v, want open breaker with 1 open", st)
	}

	// Open breaker fast-fails without touching the store.
	calls := inner.callCount()
	if _, err := rs.Get("a"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker Get error = %v, want ErrBreakerOpen", err)
	}
	if inner.callCount() != calls {
		t.Fatal("open breaker let an operation through to the store")
	}

	// After the cooldown the half-open probe reaches the healed store
	// and re-closes the breaker.
	time.Sleep(cooldown + 10*time.Millisecond)
	data, err := rs.Get("a")
	if err != nil || string(data) != "payload" {
		t.Fatalf("half-open probe Get = %q, %v; want payload, nil", data, err)
	}
	if st := policyStats(t, rs); st.BreakerState != "closed" || st.BreakerOpens != 1 {
		t.Fatalf("after probe success: stats = %+v, want re-closed breaker", st)
	}

	// A failed probe re-opens immediately.
	inner.failNext(4) // 3 to open + 1 for the probe
	for i := 0; i < 3; i++ {
		rs.Get("a")
	}
	time.Sleep(cooldown + 10*time.Millisecond)
	if _, err := rs.Get("a"); err == nil {
		t.Fatal("failing half-open probe succeeded")
	}
	if st := policyStats(t, rs); st.BreakerState != "open" || st.BreakerOpens != 3 {
		t.Fatalf("after failed probe: stats = %+v, want re-opened breaker (opens: trip, probe-fail)", st)
	}
}

// TestRetryRecoversTransientFaults asserts a transient fault burst
// shorter than the retry budget is absorbed: the caller sees success,
// the retries are counted, and a clean miss is never retried.
func TestRetryRecoversTransientFaults(t *testing.T) {
	inner := newScriptStore()
	inner.data["a"] = []byte("payload")
	rs := NewResilientStore(inner, ResilienceConfig{
		Retries:          2,
		RetryBase:        time.Millisecond,
		RetryCap:         4 * time.Millisecond,
		BreakerThreshold: -1,
		Seed:             1,
	})

	inner.failNext(2)
	data, err := rs.Get("a")
	if err != nil || string(data) != "payload" {
		t.Fatalf("Get after 2 transient faults = %q, %v; want payload, nil", data, err)
	}
	if st := policyStats(t, rs); st.Retries != 2 {
		t.Fatalf("stats = %+v, want 2 retries", st)
	}

	// A miss is the store answering, not failing: no retry.
	if _, err := rs.Get("absent"); !errors.Is(err, ErrArtefactNotFound) {
		t.Fatalf("Get(absent) error = %v, want ErrArtefactNotFound", err)
	}
	if st := policyStats(t, rs); st.Retries != 2 {
		t.Fatalf("stats = %+v: a clean miss was retried", st)
	}

	// A burst longer than the budget surfaces the store's error.
	inner.failNext(5)
	if _, err := rs.Get("a"); err == nil {
		t.Fatal("Get succeeded through a fault burst longer than the retry budget")
	}
}

// TestOpTimeoutBounds asserts a hung store operation returns
// ErrStoreTimeout within the configured bound instead of blocking the
// caller until the store recovers.
func TestOpTimeoutBounds(t *testing.T) {
	inner := newScriptStore()
	inner.block = make(chan struct{})
	inner.entered = make(chan struct{}, 4)
	defer close(inner.block) // release the abandoned goroutine

	const bound = 30 * time.Millisecond
	rs := NewResilientStore(inner, ResilienceConfig{
		OpTimeout:        bound,
		Retries:          -1,
		BreakerThreshold: -1,
		Seed:             1,
	})

	start := time.Now()
	_, err := rs.Get("a")
	elapsed := time.Since(start)
	if !errors.Is(err, ErrStoreTimeout) {
		t.Fatalf("hung Get error = %v, want ErrStoreTimeout", err)
	}
	if elapsed > 10*bound {
		t.Fatalf("hung Get took %v, want ~%v", elapsed, bound)
	}
	if st := policyStats(t, rs); st.Timeouts != 1 {
		t.Fatalf("stats = %+v, want 1 timeout", st)
	}
}

// TestAsyncPublishDrainAndBackpressure exercises the bounded-budget
// publisher: queued publishes land after Close's drain, an over-budget
// publish backpressures onto the caller's synchronous path (never
// dropped), and only publishes after Close are dropped — counted, not
// lost in a panic.
func TestAsyncPublishDrainAndBackpressure(t *testing.T) {
	inner := newScriptStore()
	inner.block = make(chan struct{})
	inner.entered = make(chan struct{}, 4)
	rs := NewResilientStore(inner, ResilienceConfig{
		Retries:          -1,
		BreakerThreshold: -1,
		AsyncPublish:     true,
		PublishBudget:    1,
		Seed:             1,
	})

	// First publish: the worker picks it up and blocks inside the store.
	if err := rs.Put("a", []byte("A")); err != nil {
		t.Fatalf("async Put returned %v", err)
	}
	<-inner.entered // worker is inside inner.Put("a")
	// Second fills the 1-deep queue; third is over budget — it must
	// backpressure onto the caller's own goroutine, not drop.
	rs.Put("b", []byte("B"))
	overBudget := make(chan struct{})
	go func() {
		defer close(overBudget)
		rs.Put("c", []byte("C"))
	}()
	<-inner.entered // the backpressured Put is inside inner.Put("c")
	if st := policyStats(t, rs); st.PublishDrops != 0 {
		t.Fatalf("stats = %+v: backpressure dropped a publish", st)
	}

	close(inner.block)
	<-overBudget
	closer := rs.(interface{ Close() error })
	if err := closer.Close(); err != nil {
		t.Fatalf("Close = %v, want clean drain", err)
	}
	inner.mu.Lock()
	gotA, gotB, gotC := inner.data["a"], inner.data["b"], inner.data["c"]
	inner.mu.Unlock()
	if string(gotA) != "A" || string(gotB) != "B" || string(gotC) != "C" {
		t.Fatalf("drained store holds a=%q b=%q c=%q, want all three", gotA, gotB, gotC)
	}

	// Publishing after Close drops silently.
	if err := rs.Put("d", []byte("D")); err != nil {
		t.Fatalf("post-close Put returned %v", err)
	}
	if st := policyStats(t, rs); st.PublishDrops != 1 {
		t.Fatalf("stats = %+v, want 1 publish drop from the post-close Put", st)
	}
	if err := closer.Close(); err != nil {
		t.Fatalf("second Close = %v, want idempotent nil", err)
	}
}

// TestBreakerDegradesCacheToMemoryOnly runs a cache over a persistently
// failing store: every run still answers correctly (kernel re-runs, the
// memory tier serves repeats), the breaker opens and the stats surface
// through Cache.Snapshot.
func TestBreakerDegradesCacheToMemoryOnly(t *testing.T) {
	inner := newScriptStore()
	inner.failNext(1 << 30) // fail everything, forever
	rs := NewResilientStore(inner, ResilienceConfig{
		Retries:          -1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute, // stays open for the whole test
		Seed:             1,
	})
	c := NewCacheWithStore(0, rs)
	defer c.Close()

	sc := diskScenario(7)
	want, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := c.Run(sc)
		if err != nil {
			t.Fatalf("run %d against a dead store: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d differs from the uncached reference", i)
		}
	}
	st := c.Snapshot()
	if st.KernelRuns != 1 {
		t.Errorf("kernel runs = %d, want 1 (memory tier still serves repeats)", st.KernelRuns)
	}
	if st.Hits != 2 {
		t.Errorf("memory hits = %d, want 2", st.Hits)
	}
	if st.BreakerOpens == 0 || st.BreakerState != "open" {
		t.Errorf("stats = %+v, want an open breaker", st)
	}
	if st.StoreErrors == 0 {
		t.Errorf("stats = %+v, want counted store errors", st)
	}
}

// blockingLocker is a CacheStore+CacheLocker whose Lock never acquires
// until the context ends.
type blockingLocker struct {
	*scriptStore
}

func (b *blockingLocker) Lock(ctx context.Context, name string) (func(), error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestLockTimeoutSurfacesAsStoreTimeout asserts the policy layer's
// LockTimeout converts a wedged lock acquisition into ErrStoreTimeout
// (the signal the cache degrades on) while genuine caller cancellation
// passes through untouched.
func TestLockTimeoutSurfacesAsStoreTimeout(t *testing.T) {
	inner := &blockingLocker{newScriptStore()}
	rs := NewResilientStore(inner, ResilienceConfig{
		LockTimeout:      20 * time.Millisecond,
		Retries:          -1,
		BreakerThreshold: -1,
		Seed:             1,
	})
	locker, ok := rs.(CacheLocker)
	if !ok {
		t.Fatal("resilient wrapper over a locking store lost CacheLocker")
	}

	if _, err := locker.Lock(context.Background(), "a"); !errors.Is(err, ErrStoreTimeout) {
		t.Fatalf("wedged Lock error = %v, want ErrStoreTimeout", err)
	}
	if st := policyStats(t, rs); st.Timeouts != 1 {
		t.Fatalf("stats = %+v, want 1 timeout", st)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	if _, err := locker.Lock(ctx, "a"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Lock error = %v, want context.Canceled", err)
	}
	if st := policyStats(t, rs); st.Timeouts != 1 {
		t.Fatalf("stats = %+v: caller cancellation was miscounted as a store timeout", st)
	}
}

// TestResilientStorePreservesLockerShape asserts the wrapper implements
// CacheLocker exactly when the wrapped store does — the property the
// cache's singleflight dispatch relies on.
func TestResilientStorePreservesLockerShape(t *testing.T) {
	dir, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := NewResilientStore(dir, ResilienceConfig{}).(CacheLocker); !ok {
		t.Error("resilient DirStore lost its locker")
	}
	obj, err := NewObjStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := NewResilientStore(obj, ResilienceConfig{}).(CacheLocker); ok {
		t.Error("resilient ObjStore invented a locker")
	}
}
