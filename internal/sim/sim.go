// Package sim is the discrete-time simulation kernel that plays the role
// of the paper's physical testbed campaign. One Run wires two Xen hosts, a
// migrating guest, optional co-located load VMs, the network link and two
// power meters together, advances everything on a fixed 100 ms step, and
// returns what the paper's instruments returned: a 2 Hz power trace per
// host, an aligned dstat-style feature trace, the phase boundaries of the
// migration and the per-phase energies.
package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/meter"
	"repro/internal/migration"
	"repro/internal/netsim"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
	"repro/internal/xen"
)

// Step is the simulation time step. It divides the meter period evenly so
// samples land exactly on the 2 Hz grid.
const Step = 100 * time.Millisecond

// Scenario describes one experimental point: which machine pair, migration
// type, migrating workload, and how much CPU load runs beside it.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Pair selects the machine pair (hw.PairM or hw.PairO).
	Pair string
	// Kind is the migration mechanism.
	Kind migration.Kind
	// MigratingType is the instance type of the VM being migrated
	// (vm.TypeMigratingCPU or vm.TypeMigratingMem).
	MigratingType string
	// MigratingProfile is the workload inside the migrating VM.
	MigratingProfile workload.Profile
	// SourceLoadVMs and TargetLoadVMs are the co-located load-cpu VM
	// counts (the paper's 0,1,3,5,7,8 staircase).
	SourceLoadVMs, TargetLoadVMs int
	// LoadProfile is the workload of the load VMs (matrixmult by default).
	LoadProfile workload.Profile
	// PreMigration is the normal-execution span before ms.
	PreMigration time.Duration
	// PostMigration is the observed tail after me.
	PostMigration time.Duration
	// Migration overrides engine timing/termination defaults when non-zero.
	Migration migration.Config
	// Meter overrides the simulated power analysers when non-zero.
	Meter MeterConfig
	// Seed pins all stochastic behaviour of the run.
	Seed int64
}

// MeterConfig overrides the simulated power analysers' behaviour. The
// zero value keeps the paper's instruments (2 Hz sampling, 0.3% accuracy
// band, 0.05% reading jitter), so existing scenarios — and their run-cache
// identities — are unchanged.
type MeterConfig struct {
	// Period is the sampling interval; 0 selects meter.DefaultPeriod.
	// It must be a positive multiple of the simulation Step.
	Period time.Duration
	// Accuracy overrides the instrument's relative accuracy band when > 0.
	Accuracy float64
	// NoiseSigma overrides the relative 1σ reading jitter when > 0.
	NoiseSigma float64
}

// period returns the effective sampling interval.
func (m MeterConfig) period() time.Duration {
	if m.Period <= 0 {
		return meter.DefaultPeriod
	}
	return m.Period
}

// apply configures a meter with the overrides.
func (m MeterConfig) apply(mt *meter.Meter) {
	mt.Period = m.period()
	if m.Accuracy > 0 {
		mt.Accuracy = m.Accuracy
	}
	if m.NoiseSigma > 0 {
		mt.NoiseSigma = m.NoiseSigma
	}
}

// Validate rejects unusable meter overrides.
func (m MeterConfig) Validate() error {
	if m.Period < 0 || (m.Period > 0 && m.Period%Step != 0) {
		return fmt.Errorf("sim: meter period %v must be a positive multiple of %v", m.Period, Step)
	}
	if m.Accuracy < 0 || m.Accuracy >= 1 {
		return fmt.Errorf("sim: meter accuracy %v outside [0, 1)", m.Accuracy)
	}
	if m.NoiseSigma < 0 || m.NoiseSigma >= 1 {
		return fmt.Errorf("sim: meter noise sigma %v outside [0, 1)", m.NoiseSigma)
	}
	return nil
}

// withDefaults fills unset scenario fields.
func (s Scenario) withDefaults() Scenario {
	if s.Pair == "" {
		s.Pair = hw.PairM
	}
	if s.MigratingType == "" {
		s.MigratingType = vm.TypeMigratingCPU
	}
	if s.MigratingProfile.Name == "" {
		s.MigratingProfile = workload.MatrixMultProfile()
	}
	if s.LoadProfile.Name == "" {
		s.LoadProfile = workload.MatrixMultProfile()
	}
	if s.PreMigration <= 0 {
		s.PreMigration = 12 * time.Second
	}
	if s.PostMigration <= 0 {
		s.PostMigration = 10 * time.Second
	}
	s.Migration.Kind = s.Kind
	return s
}

// Validate rejects impossible scenarios.
func (s Scenario) Validate() error {
	if s.SourceLoadVMs < 0 || s.TargetLoadVMs < 0 {
		return fmt.Errorf("sim: negative load VM count")
	}
	if _, err := vm.Lookup(s.withDefaults().MigratingType); err != nil {
		return err
	}
	if err := s.withDefaults().MigratingProfile.Validate(); err != nil {
		return err
	}
	if err := s.withDefaults().LoadProfile.Validate(); err != nil {
		return err
	}
	return s.Meter.Validate()
}

// RunResult is everything one testbed run yields.
type RunResult struct {
	Scenario Scenario
	// Source and Target are the 2 Hz power traces of the two hosts.
	Source, Target *trace.PowerTrace
	// SourceFeatures and TargetFeatures are the aligned feature traces.
	SourceFeatures, TargetFeatures *trace.FeatureTrace
	// Bounds are the measured phase boundaries (ms, ts, te, me).
	Bounds trace.Boundaries
	// SourceEnergy and TargetEnergy are the per-phase energies (the
	// paper's four metrics per host).
	SourceEnergy, TargetEnergy trace.PhaseEnergy
	// BytesSent is the state data moved.
	BytesSent units.Bytes
	// Rounds is the pre-copy round count (live only).
	Rounds int
	// Downtime is the guest suspension span.
	Downtime time.Duration
}

// Run executes one scenario to completion.
func Run(sc Scenario) (*RunResult, error) {
	return RunCtx(context.Background(), sc)
}

// RunCtx is Run with a cancellation boundary at every simulation step: a
// done ctx abandons the run and returns ctx's error, so a disconnected
// or deadline-expired caller stops burning CPU within one 100 ms step of
// simulated time. Cancellation never changes results — a run that
// completes under any ctx is bit-identical to an uncancellable one.
func RunCtx(ctx context.Context, sc Scenario) (*RunResult, error) {
	done := ctx.Done() // nil for background contexts: checks vanish
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	srcSpec, dstSpec, err := hw.Pair(sc.Pair)
	if err != nil {
		return nil, err
	}
	src, err := xen.NewHost(srcSpec)
	if err != nil {
		return nil, err
	}
	dst, err := xen.NewHost(dstSpec)
	if err != nil {
		return nil, err
	}
	link, err := netsim.NewLink(srcSpec, dstSpec)
	if err != nil {
		return nil, err
	}
	srcTS, err := xen.NewToolstack("xl", src)
	if err != nil {
		return nil, err
	}
	dstTS, err := xen.NewToolstack("xl", dst)
	if err != nil {
		return nil, err
	}

	// Populate the hosts: migrating guest on the source, load VMs on both.
	guest, err := srcTS.Create(sc.MigratingType, sc.MigratingProfile, sc.Seed*31+1)
	if err != nil {
		return nil, err
	}
	for i := 0; i < sc.SourceLoadVMs; i++ {
		if _, err := srcTS.Create(vm.TypeLoadCPU, sc.LoadProfile, sc.Seed*31+int64(i)+2); err != nil {
			return nil, err
		}
	}
	for i := 0; i < sc.TargetLoadVMs; i++ {
		if _, err := dstTS.Create(vm.TypeLoadCPU, sc.LoadProfile, sc.Seed*31+int64(i)+100); err != nil {
			return nil, err
		}
	}

	engine, err := migration.New(sc.Migration, src, dst, guest.Name, link)
	if err != nil {
		return nil, err
	}

	srcMeter := meter.New(srcSpec.Name, sc.Seed*7+11)
	dstMeter := meter.New(dstSpec.Name, sc.Seed*7+13)
	sc.Meter.apply(srcMeter)
	sc.Meter.apply(dstMeter)
	srcFeat := &trace.FeatureTrace{Host: srcSpec.Name}
	dstFeat := &trace.FeatureTrace{Host: dstSpec.Name}

	// Pre-size the traces from the scenario's span: the pre/post windows
	// are known exactly and the transfer length is bounded by the data
	// valve over the migration rate, so Append never regrows mid-run.
	expected := expectedSteps(sc, srcSpec)
	srcFeat.Reserve(expected)
	dstFeat.Reserve(expected)
	meterSamples := expected/int(sc.Meter.period()/Step) + 2
	srcMeter.Reserve(meterSamples)
	dstMeter.Reserve(meterSamples)

	res := &RunResult{
		Scenario:       sc,
		SourceFeatures: srcFeat, TargetFeatures: dstFeat,
	}

	// The migrating guest's slot on the source is fixed for the whole run;
	// its target-side slot exists only once the engine has moved it (the
	// activation handover), so it resolves lazily below.
	guestSrcSlot, _ := src.GuestIndex(guest.Name)
	guestDstSlot := -1

	now := time.Duration(0)
	started := false
	var endAt time.Duration // set when the migration finishes

	// stepOnce advances the whole world by one Step.
	stepOnce := func() error {
		// 0. Cancellation boundary: one non-blocking channel poll per step
		// (skipped entirely for background contexts, whose Done is nil).
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		// 1. Schedule CPU on both hosts.
		sa := src.Schedule()
		da := dst.Schedule()

		// 2. Advance the migration.
		var rep migration.StepReport
		if started && !engine.Done() {
			rep, err = engine.Step(now, Step, sa.MigrationShare(), da.MigrationShare())
			if err != nil {
				return err
			}
		}

		// 3. Advance guest memory behaviour (page dirtying).
		srcEvents := src.Step(sa, Step.Seconds())
		dstEvents := dst.Step(da, Step.Seconds())

		// 4. Assemble component loads. State copying moves pages through
		// both hosts' memory subsystems at the transfer rate.
		copyPagesPerSec := 0.0
		if rep.BytesMoved > 0 {
			copyPagesPerSec = float64(rep.BytesMoved) / float64(units.PageSize) / Step.Seconds()
		}
		netFrac := link.LineFraction(rep.Bandwidth)

		// 5. Meters sample the ground truth. A meter only records at its
		// sampling period (2 Hz by default against the 100 ms step), so the
		// load assembly and the TruePower evaluation are skipped between
		// due times.
		if now >= srcMeter.NextDue() {
			srcLoad := src.Load(sa, float64(srcEvents)/Step.Seconds()+copyPagesPerSec, netFrac)
			srcMeter.Observe(now, srcSpec.TruePower(srcLoad))
		}
		if now >= dstMeter.NextDue() {
			dstLoad := dst.Load(da, float64(dstEvents)/Step.Seconds()+copyPagesPerSec, netFrac)
			dstMeter.Observe(now, dstSpec.TruePower(dstLoad))
		}

		// 6. Feature traces record what dstat + the hypervisor would see,
		// at the same instants the meters sample.
		guestHost := src
		vmCPU := sa.Guest(guestSrcSlot)
		if guestDstSlot < 0 {
			if slot, onDst := dst.GuestIndex(guest.Name); onDst {
				guestDstSlot = slot
			}
		}
		if guestDstSlot >= 0 {
			guestHost = dst
			vmCPU = da.Guest(guestDstSlot)
		}
		dr := guest.DirtyRatio()
		fsrc := trace.FeatureSample{
			At: now, HostCPU: sa.HostCPU(), Bandwidth: rep.Bandwidth,
		}
		fdst := trace.FeatureSample{
			At: now, HostCPU: da.HostCPU(), Bandwidth: rep.Bandwidth,
		}
		if guestHost == src {
			fsrc.VMCPU = vmCPU
			fsrc.DirtyRatio = dr
		} else {
			fdst.VMCPU = vmCPU
			fdst.DirtyRatio = dr
		}
		if err := srcFeat.Append(fsrc); err != nil {
			return err
		}
		return dstFeat.Append(fdst)
	}

	// Phase A: normal execution until the consolidation manager fires.
	for now < sc.PreMigration {
		if err := stepOnce(); err != nil {
			return nil, err
		}
		now += Step
	}
	if err := engine.Start(now); err != nil {
		return nil, err
	}
	started = true

	// Phase B: the migration itself.
	const hardCap = 2 * time.Hour
	for !engine.Done() {
		if err := stepOnce(); err != nil {
			return nil, err
		}
		now += Step
		if now > hardCap {
			return nil, errors.New("sim: migration exceeded the simulation cap")
		}
	}
	endAt = now

	// Phase C: post-migration tail.
	for now < endAt+sc.PostMigration {
		if err := stepOnce(); err != nil {
			return nil, err
		}
		now += Step
	}

	res.Source = srcMeter.Trace()
	res.Target = dstMeter.Trace()
	res.Bounds = engine.Boundaries()
	res.BytesSent = engine.BytesSent()
	res.Rounds = engine.Rounds()
	res.Downtime = engine.Downtime()
	if res.SourceEnergy, err = trace.EnergyByPhase(res.Source, res.Bounds); err != nil {
		return nil, err
	}
	if res.TargetEnergy, err = trace.EnergyByPhase(res.Target, res.Bounds); err != nil {
		return nil, err
	}
	return res, nil
}

// expectedSteps bounds the number of 100 ms steps a scenario can take:
// the exact pre/post windows plus a transfer span derived from the data
// valve (MaxDataFactor × VM memory) over the pair's migration rate, with
// slack for initiation, activation and scheduling-induced slowdown. Used
// to pre-size trace capacity; underestimates only cost a regrow.
func expectedSteps(sc Scenario, spec hw.MachineSpec) int {
	span := sc.PreMigration + sc.PostMigration
	typ, err := vm.Lookup(sc.MigratingType)
	if err == nil && spec.MigrationRate > 0 {
		factor := sc.Migration.MaxDataFactor
		if factor <= 0 {
			factor = migration.DefaultMaxDataFactor
		}
		bits := float64(typ.RAM) * 8 * factor
		transfer := time.Duration(bits / float64(spec.MigrationRate) * float64(time.Second))
		span += 2*transfer + 30*time.Second
	}
	return int(span/Step) + 2
}

// RunRepeated executes a scenario until the paper's variance-convergence
// rule holds on the total source-side migration energy: at least minRuns
// runs, and the variance change from adding the latest run below tol.
// Each run gets a distinct derived seed. Runs fan out across all CPUs;
// use RunRepeatedWorkers to bound or disable the parallelism.
func RunRepeated(sc Scenario, minRuns int, tol float64) ([]*RunResult, error) {
	return RunRepeatedWorkers(sc, minRuns, tol, 0)
}

// RunRepeatedWorkers is RunRepeated with an explicit worker budget
// (<= 0 means runtime.NumCPU()). Run i always gets seed sc.Seed + i*1009
// and the convergence rule is applied to run prefixes in index order, so
// every worker count returns the bit-identical run sequence; workers only
// changes how many speculative runs execute concurrently.
func RunRepeatedWorkers(sc Scenario, minRuns int, tol float64, workers int) ([]*RunResult, error) {
	return runRepeated(context.Background(), nil, sc, minRuns, tol, workers)
}

// RunRepeatedWorkers is the cache-aware variant of the package function:
// identical semantics, with each run answered through the cache. A nil
// receiver degrades to uncached execution.
func (c *Cache) RunRepeatedWorkers(sc Scenario, minRuns int, tol float64, workers int) ([]*RunResult, error) {
	return runRepeated(context.Background(), c, sc, minRuns, tol, workers)
}

// RunRepeatedCtx is RunRepeatedWorkers with a cancellation boundary
// between speculative batches and inside every run: a done ctx abandons
// the repeat sequence and returns ctx's error. Prefixes returned before
// cancellation are bit-identical to the uncancellable variant's.
func (c *Cache) RunRepeatedCtx(ctx context.Context, sc Scenario, minRuns int, tol float64, workers int) ([]*RunResult, error) {
	return runRepeated(ctx, c, sc, minRuns, tol, workers)
}

func runRepeated(ctx context.Context, c *Cache, sc Scenario, minRuns int, tol float64, workers int) ([]*RunResult, error) {
	if minRuns < 2 {
		return nil, errors.New("sim: need at least two runs")
	}
	const maxRuns = 50
	// The convergence rule inspects growing prefixes in index order
	// (parallel.Until's contract), so the per-run energies accumulate
	// incrementally instead of being rebuilt from the whole prefix on
	// every check — the check stays O(new runs), not O(prefix²).
	energies := make([]float64, 0, maxRuns)
	// minRuns is the first-batch hint: convergence cannot fire earlier, so
	// speculating past it before the first variance check is pure waste.
	return parallel.UntilCtx(ctx, workers, maxRuns, minRuns,
		func(i int) (*RunResult, error) {
			run := sc
			run.Seed = sc.Seed + int64(i)*1009
			return c.RunCtx(ctx, run)
		},
		func(prefix []*RunResult) bool {
			for i := len(energies); i < len(prefix); i++ {
				energies = append(energies, float64(prefix[i].SourceEnergy.Total()))
			}
			return stats.VarianceConverged(energies, minRuns, tol)
		})
}
