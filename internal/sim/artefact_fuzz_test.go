package sim

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
)

// FuzzCacheArtefactDecode pins the decoder's two safety properties
// against arbitrary input: it never panics, and whenever it accepts an
// input, re-encoding the decoded result reproduces that input byte for
// byte — so a wrong-checksum or otherwise mangled artefact can never be
// returned as a result. Seeds are a real artefact plus targeted
// mutations of its header, identity, payload and checksum regions.
func FuzzCacheArtefactDecode(f *testing.F) {
	sc := diskScenario(5)
	res, err := Run(sc)
	if err != nil {
		f.Fatal(err)
	}
	keyBytes := encodeCacheKey(cacheKey(sc))
	hash := sha256.Sum256(keyBytes)
	good := encodeArtefact(keyBytes, hash, res)

	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:artefactHeaderLen])                         // header only
	f.Add(good[:len(good)-artefactSumLen])                  // checksum sheared off
	f.Add(append([]byte(nil), good[artefactHeaderLen:]...)) // payload without header
	for _, i := range []int{0, 8, 12, 20, 20 + artefactSumLen, len(good) / 2, len(good) - 1} {
		m := append([]byte(nil), good...)
		m[i] ^= 0xff
		f.Add(m)
	}
	// A length field inflated far beyond the buffer: the bounded reader
	// must refuse, not allocate.
	huge := append([]byte(nil), good...)
	for i := 12; i < 20; i++ {
		huge[i] = 0xff
	}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeArtefact(data, keyBytes, hash) // must never panic
		if err != nil {
			var aerr *artefactError
			if !errors.As(err, &aerr) {
				t.Errorf("decode error is not an *artefactError: %v", err)
			}
			return
		}
		// Accepted ⇒ the checksum held and the identity matched, so the
		// canonical re-encoding must reproduce the input exactly.
		if !bytes.Equal(encodeArtefact(keyBytes, hash, got), data) {
			t.Error("accepted artefact does not re-encode to its own bytes")
		}
	})
}
