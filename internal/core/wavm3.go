package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/migration"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// ModelName is the paper's name for the contribution.
const ModelName = "WAVM3"

// PhaseCoeffs are the fitted coefficients of one phase's power model for
// one host role. Unused terms are zero:
//
//	initiation (Eq. 5):  P = α·CPU(h,t) + β·CPU(v,t) + C
//	transfer   (Eq. 6):  P = α·CPU(h,t) + β·BW(S,T,t) + γ·DR(v,t) + δ·CPU(v,t) + C
//	activation (Eq. 7):  P = α·CPU(h,t) + β·CPU(v,t) + C
type PhaseCoeffs struct {
	Alpha float64 // watts per busy host thread
	Beta  float64 // initiation/activation: watts per busy VM vCPU; transfer: watts per bit/s
	Gamma float64 // transfer only: watts per unit dirty ratio
	Delta float64 // transfer only: watts per busy VM vCPU
	C     float64 // bias, includes the training pair's idle power (the paper's C1)
}

// Model is a trained WAVM3 instance for one migration kind: a coefficient
// set per host role per phase.
type Model struct {
	Kind   migration.Kind
	Coeffs map[Role]map[trace.Phase]PhaseCoeffs
	// BiasShift is the C adjustment applied when transporting the model to
	// another machine pair (0 on the training pair; the paper's C2 = C1 −
	// idle-power difference).
	BiasShift float64
}

// Name implements EnergyModel.
func (m *Model) Name() string { return ModelName }

// modelPhases are the phases WAVM3 models.
func modelPhases() []trace.Phase {
	return []trace.Phase{trace.PhaseInitiation, trace.PhaseTransfer, trace.PhaseActivation}
}

// featureRow builds the design-matrix row for one observation of a phase.
// The transfer phase of a non-live migration omits the DR and CPU(v)
// regressors: the guest is suspended throughout, so the columns would be
// identically zero and the design rank deficient.
func featureRow(kind migration.Kind, ph trace.Phase, o trace.Observation) []float64 {
	switch ph {
	case trace.PhaseTransfer:
		if kind == migration.Live {
			return []float64{float64(o.HostCPU), float64(o.Bandwidth), float64(o.DirtyRatio), float64(o.VMCPU)}
		}
		return []float64{float64(o.HostCPU), float64(o.Bandwidth)}
	default:
		return []float64{float64(o.HostCPU), float64(o.VMCPU)}
	}
}

// coeffsFrom maps a fitted coefficient vector (intercept first) back onto
// the named coefficients.
func coeffsFrom(kind migration.Kind, ph trace.Phase, beta []float64) PhaseCoeffs {
	pc := PhaseCoeffs{C: beta[0], Alpha: beta[1]}
	switch ph {
	case trace.PhaseTransfer:
		pc.Beta = beta[2]
		if kind == migration.Live {
			pc.Gamma = beta[3]
			pc.Delta = beta[4]
		}
	default:
		pc.Beta = beta[2]
	}
	return pc
}

// fitPhase runs the constrained least-squares fit for one phase. Feature
// columns that are identically zero in the data (e.g. CPU(v,t) on the
// target during initiation, where the guest does not exist yet) are
// excluded from the design — they carry no information and would make it
// rank deficient — and their coefficients reported as exact zeros, which
// is how the paper's Tables III/IV show β(i)=0 for the target.
func fitPhase(rows [][]float64, y []float64) ([]float64, error) {
	nf := len(rows[0])
	// A column with (numerically) no variation carries no information
	// beyond the intercept: identically-zero regressors (CPU(v,t) on the
	// target before activation) and constants (HostCPU on an idle-only
	// training subset) both get a zero coefficient, their mean absorbed by
	// the bias.
	live := make([]int, 0, nf)
	for j := 0; j < nf; j++ {
		lo, hi := rows[0][j], rows[0][j]
		for _, r := range rows {
			if r[j] < lo {
				lo = r[j]
			}
			if r[j] > hi {
				hi = r[j]
			}
		}
		scale := math.Max(math.Abs(hi), 1)
		if hi-lo > 1e-9*scale {
			live = append(live, j)
		}
	}

	// Fit on the informative columns; if the design is still rank
	// deficient (e.g. two proportional regressors in a degenerate training
	// subset), drop trailing columns until it is solvable — a conservative
	// fallback that always terminates at the intercept-only model.
	for len(live) >= 0 {
		reduced := make([][]float64, len(rows))
		for i, r := range rows {
			rr := make([]float64, len(live))
			for jj, j := range live {
				rr[jj] = r[j]
			}
			reduced[i] = rr
		}
		var x *stats.Matrix
		var err error
		if len(live) == 0 {
			x = stats.NewMatrix(len(rows), 1)
			for i := 0; i < len(rows); i++ {
				x.Set(i, 0, 1)
			}
		} else if x, err = stats.DesignMatrix(reduced, true); err != nil {
			return nil, err
		}
		// Constrain every slope (all columns but the intercept) to be
		// non-negative; power cannot fall when load rises.
		constrained := make([]int, 0, x.Cols()-1)
		for j := 1; j < x.Cols(); j++ {
			constrained = append(constrained, j)
		}
		fit, err := stats.NonNegativeOLS(x, y, constrained)
		if errors.Is(err, stats.ErrRankDeficient) && len(live) > 0 {
			live = live[:len(live)-1]
			continue
		}
		if err != nil {
			return nil, err
		}
		out := make([]float64, nf+1)
		out[0] = fit.Coeffs[0]
		for jj, j := range live {
			out[j+1] = fit.Coeffs[jj+1]
		}
		return out, nil
	}
	return nil, stats.ErrRankDeficient
}

// Train fits WAVM3 for one migration kind from the training dataset,
// producing one coefficient set per role per phase. The fit is least
// squares with non-negativity on the physical slopes, which reproduces the
// exact zeros of the paper's Tables III/IV (e.g. β(i)=0 on the target,
// where CPU(v,t) is identically zero during initiation).
func Train(ds *Dataset, kind migration.Kind) (*Model, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("core: empty training dataset")
	}
	m := &Model{Kind: kind, Coeffs: make(map[Role]map[trace.Phase]PhaseCoeffs)}
	for _, role := range Roles() {
		recs := ds.Filter(kind, role)
		if len(recs) == 0 {
			return nil, fmt.Errorf("core: no %v/%v records to train on", kind, role)
		}
		m.Coeffs[role] = make(map[trace.Phase]PhaseCoeffs)
		for _, ph := range modelPhases() {
			var rows [][]float64
			var y []float64
			for _, rec := range recs {
				for _, o := range rec.Obs {
					if o.Phase != ph {
						continue
					}
					rows = append(rows, featureRow(kind, ph, o))
					y = append(y, float64(o.Power))
				}
			}
			if len(rows) < 4 {
				return nil, fmt.Errorf("core: only %d %v readings for %v/%v", len(rows), ph, kind, role)
			}
			beta, err := fitPhase(rows, y)
			if err != nil {
				return nil, fmt.Errorf("core: fitting %v/%v/%v: %w", kind, role, ph, err)
			}
			m.Coeffs[role][ph] = coeffsFrom(kind, ph, beta)
		}
	}
	return m, nil
}

// PredictPower evaluates the phase model for one observation (Eqs. 5–7).
func (m *Model) PredictPower(role Role, o trace.Observation) (units.Watts, error) {
	phases, ok := m.Coeffs[role]
	if !ok {
		return 0, fmt.Errorf("core: model has no coefficients for role %v", role)
	}
	pc, ok := phases[o.Phase]
	if !ok {
		return 0, fmt.Errorf("core: model has no coefficients for phase %v", o.Phase)
	}
	var p float64
	switch o.Phase {
	case trace.PhaseTransfer:
		p = pc.Alpha*float64(o.HostCPU) + pc.Beta*float64(o.Bandwidth) +
			pc.Gamma*float64(o.DirtyRatio) + pc.Delta*float64(o.VMCPU) + pc.C
	default:
		p = pc.Alpha*float64(o.HostCPU) + pc.Beta*float64(o.VMCPU) + pc.C
	}
	p += m.BiasShift
	if p < 0 {
		p = 0
	}
	return units.Watts(p), nil
}

// PredictEnergy implements EnergyModel: Eq. 3's integral of the predicted
// per-phase powers over the migration, evaluated with the trapezoidal rule
// on the observation timestamps (Eq. 4's per-phase sum falls out of the
// phase labels).
func (m *Model) PredictEnergy(r *RunRecord) (units.Joules, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if r.Kind != m.Kind {
		return 0, fmt.Errorf("core: %v model cannot predict a %v run", m.Kind, r.Kind)
	}
	pred := &trace.PowerTrace{Host: r.RunID}
	for _, o := range r.Obs {
		w, err := m.PredictPower(r.Role, o)
		if err != nil {
			return 0, err
		}
		if err := pred.Append(o.At, w); err != nil {
			return 0, err
		}
	}
	return pred.Energy(), nil
}

// PredictPhaseEnergy returns the per-phase split of the prediction, the
// E(i), E(t), E(a) decomposition of Eq. 4.
func (m *Model) PredictPhaseEnergy(r *RunRecord, b trace.Boundaries) (trace.PhaseEnergy, error) {
	var out trace.PhaseEnergy
	pred := &trace.PowerTrace{Host: r.RunID}
	for _, o := range r.Obs {
		w, err := m.PredictPower(r.Role, o)
		if err != nil {
			return out, err
		}
		if err := pred.Append(o.At, w); err != nil {
			return out, err
		}
	}
	return trace.EnergyByPhase(pred, b)
}

// WithBiasShift returns a copy of the model whose constants are shifted by
// delta watts — the paper's C1→C2 correction: when predicting for a pair
// whose idle power differs from the training pair's, subtract the idle
// difference from the bias. delta is (target pair idle − training pair
// idle), typically negative when moving to more efficient machines.
func (m *Model) WithBiasShift(delta units.Watts) *Model {
	out := &Model{Kind: m.Kind, BiasShift: m.BiasShift + float64(delta),
		Coeffs: make(map[Role]map[trace.Phase]PhaseCoeffs, len(m.Coeffs))}
	for role, phases := range m.Coeffs {
		out.Coeffs[role] = make(map[trace.Phase]PhaseCoeffs, len(phases))
		for ph, pc := range phases {
			out.Coeffs[role][ph] = pc
		}
	}
	return out
}

// EvaluateEnergy scores an energy model on a record set, returning the
// paper's three error metrics over per-run migration energies.
func EvaluateEnergy(m EnergyModel, recs []*RunRecord) (stats.ErrorReport, error) {
	if len(recs) == 0 {
		return stats.ErrorReport{}, errors.New("core: no records to evaluate")
	}
	pred := make([]float64, 0, len(recs))
	act := make([]float64, 0, len(recs))
	for _, r := range recs {
		e, err := m.PredictEnergy(r)
		if err != nil {
			return stats.ErrorReport{}, fmt.Errorf("core: predicting %s: %w", r.RunID, err)
		}
		pred = append(pred, float64(e))
		act = append(act, float64(r.MeasuredEnergy))
	}
	return stats.Errors(pred, act)
}
