package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/migration"
	"repro/internal/stats"
)

// CVResult is the outcome of a k-fold cross-validation of WAVM3 on one
// migration kind: per role, the NRMSE of each fold plus summary moments.
// Cross-validation is an extension over the paper's single 20/80 split —
// it answers whether the reported accuracy is split-luck or a property of
// the model.
type CVResult struct {
	Kind  migration.Kind
	Folds int
	// PerRole maps each role to its per-fold NRMSE values.
	PerRole map[Role][]float64
}

// MeanNRMSE returns the fold-average NRMSE for a role.
func (c *CVResult) MeanNRMSE(role Role) float64 { return stats.Mean(c.PerRole[role]) }

// StdNRMSE returns the fold standard deviation for a role.
func (c *CVResult) StdNRMSE(role Role) float64 { return stats.StdDev(c.PerRole[role]) }

// CrossValidate runs k-fold cross-validation over a campaign dataset for
// one migration kind. Folding is per (role, scenario) stratum so that each
// training fold keeps coverage of every experimental point, mirroring the
// stratified train/test split.
func CrossValidate(ds *Dataset, kind migration.Kind, k int, seed int64) (*CVResult, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("core: empty dataset for cross-validation")
	}
	if k < 2 {
		return nil, errors.New("core: cross-validation needs k ≥ 2")
	}
	out := &CVResult{Kind: kind, Folds: k, PerRole: make(map[Role][]float64)}

	// Stratified fold assignment: shuffle each (role, scenario) group and
	// deal its runs round-robin into folds. Groups are processed in sorted
	// key order and fold datasets assembled in dataset row order — fold
	// membership and training row order must derive from the seed and the
	// data alone, never from Go's randomised map iteration, or repeated
	// cross-validations of one dataset disagree in the last digits.
	foldOf := make(map[*RunRecord]int)
	groups := make(map[string][]*RunRecord)
	var keys []string
	var inKind []*RunRecord
	for _, r := range ds.Runs {
		if r.Kind != kind {
			continue
		}
		inKind = append(inKind, r)
		key := fmt.Sprintf("%v|%s", r.Role, r.Scenario)
		if _, seen := groups[key]; !seen {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], r)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: no %v records to cross-validate", kind)
	}
	sort.Strings(keys)
	for gi, key := range keys {
		recs := groups[key]
		folds, err := stats.KFold(len(recs), min(k, len(recs)), seed+int64(gi))
		if err != nil {
			// Groups smaller than k rotate through folds deterministically.
			for i, r := range recs {
				foldOf[r] = i % k
			}
			continue
		}
		for fi, fold := range folds {
			for _, idx := range fold {
				foldOf[recs[idx]] = fi
			}
		}
	}

	for fold := 0; fold < k; fold++ {
		train, test := &Dataset{}, &Dataset{}
		for _, r := range inKind {
			if foldOf[r] == fold {
				test.Runs = append(test.Runs, r)
			} else {
				train.Runs = append(train.Runs, r)
			}
		}
		if train.Len() == 0 || test.Len() == 0 {
			return nil, fmt.Errorf("core: fold %d is degenerate (%d train / %d test)", fold, train.Len(), test.Len())
		}
		model, err := Train(train, kind)
		if err != nil {
			return nil, fmt.Errorf("core: fold %d: %w", fold, err)
		}
		for _, role := range Roles() {
			recs := test.Filter(kind, role)
			if len(recs) < 2 {
				continue
			}
			rep, err := EvaluateEnergy(model, recs)
			if err != nil {
				return nil, fmt.Errorf("core: fold %d %v: %w", fold, role, err)
			}
			out.PerRole[role] = append(out.PerRole[role], rep.NRMSE)
		}
	}
	for _, role := range Roles() {
		if len(out.PerRole[role]) == 0 {
			return nil, fmt.Errorf("core: cross-validation produced no %v folds", role)
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
