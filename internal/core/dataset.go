package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/migration"
	"repro/internal/trace"
	"repro/internal/units"
)

// Role distinguishes the two modelled hosts of a migration.
type Role int

// Host roles.
const (
	Source Role = iota
	Target
)

// String names the role as the paper's tables do.
func (r Role) String() string {
	if r == Target {
		return "Target"
	}
	return "Source"
}

// Roles lists both roles in table order.
func Roles() []Role { return []Role{Source, Target} }

// RunRecord is the evaluation unit: one host's view of one migration run,
// carrying the aligned power/feature observations inside [ms, me], the
// measured migration energy, and the per-run aggregates the baseline
// models consume.
type RunRecord struct {
	// Pair is the machine pair (hw.PairM / hw.PairO).
	Pair string
	// Kind is the migration mechanism of the run.
	Kind migration.Kind
	// Role is which endpoint this record describes.
	Role Role
	// RunID identifies the run within its campaign.
	RunID string
	// Scenario labels the experimental point the run belongs to (family,
	// kind and load level). The train/test split stratifies on it so that
	// every point contributes training runs, mirroring the paper's 20%%
	// reading sample which by construction covers every experiment.
	Scenario string
	// Obs are the aligned observations (2 Hz power + features + phase).
	Obs []trace.Observation
	// MeasuredEnergy is the metered ∫P dt over [ms, me].
	MeasuredEnergy units.Joules
	// BytesSent is the state data moved (LIU's DATA input).
	BytesSent units.Bytes
	// VMMem is the migrating VM's memory size (STRUNK's MEM(v) input).
	VMMem units.Bytes
	// MeanBandwidth is the average transfer bandwidth (STRUNK's BW input).
	MeanBandwidth units.BitsPerSecond
}

// Validate rejects unusable records.
func (r *RunRecord) Validate() error {
	if len(r.Obs) < 2 {
		return fmt.Errorf("core: run %s has %d observations, need ≥ 2", r.RunID, len(r.Obs))
	}
	if r.MeasuredEnergy <= 0 {
		return fmt.Errorf("core: run %s has non-positive measured energy", r.RunID)
	}
	return nil
}

// Duration returns the observed span of the record.
func (r *RunRecord) Duration() time.Duration {
	if len(r.Obs) == 0 {
		return 0
	}
	return r.Obs[len(r.Obs)-1].At - r.Obs[0].At
}

// Dataset is a campaign's worth of run records.
type Dataset struct {
	Runs []*RunRecord
}

// Add appends a validated record.
func (d *Dataset) Add(r *RunRecord) error {
	if err := r.Validate(); err != nil {
		return err
	}
	d.Runs = append(d.Runs, r)
	return nil
}

// Len returns the record count.
func (d *Dataset) Len() int { return len(d.Runs) }

// Filter returns the records matching kind and role (any pair).
func (d *Dataset) Filter(kind migration.Kind, role Role) []*RunRecord {
	var out []*RunRecord
	for _, r := range d.Runs {
		if r.Kind == kind && r.Role == role {
			out = append(out, r)
		}
	}
	return out
}

// FilterPair returns the records for one machine pair, kind and role.
func (d *Dataset) FilterPair(pair string, kind migration.Kind, role Role) []*RunRecord {
	var out []*RunRecord
	for _, r := range d.Runs {
		if r.Pair == pair && r.Kind == kind && r.Role == role {
			out = append(out, r)
		}
	}
	return out
}

// SplitReadings partitions every record's observations into a training and
// a test view, taking trainFrac of the *readings* (not the runs) uniformly
// at random — the paper trains on "the 20% of the readings obtained by
// running our experiments". Records keep their identity; the split returns
// two datasets whose records share RunIDs but hold disjoint observations.
// Records too small to split contribute everything to training.
func (d *Dataset) SplitReadings(trainFrac float64, seed int64) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, errors.New("core: trainFrac must be in (0,1)")
	}
	rng := rand.New(rand.NewSource(seed))
	train, test = &Dataset{}, &Dataset{}
	for _, r := range d.Runs {
		n := len(r.Obs)
		idx := rng.Perm(n)
		k := int(float64(n) * trainFrac)
		if k < 2 {
			k = n // too few readings to split; keep whole run for training
		}
		pick := make(map[int]bool, k)
		for _, i := range idx[:k] {
			pick[i] = true
		}
		tr := cloneShallow(r)
		te := cloneShallow(r)
		for i, o := range r.Obs {
			if pick[i] {
				tr.Obs = append(tr.Obs, o)
			} else {
				te.Obs = append(te.Obs, o)
			}
		}
		sortObs(tr.Obs)
		sortObs(te.Obs)
		if len(tr.Obs) >= 2 {
			train.Runs = append(train.Runs, tr)
		}
		if len(te.Obs) >= 2 {
			test.Runs = append(test.Runs, te)
		}
	}
	if train.Len() == 0 {
		return nil, nil, errors.New("core: split produced an empty training set")
	}
	return train, test, nil
}

// SplitRuns partitions whole runs: trainFrac of the runs go to training.
// The split is stratified by (kind, role) so that every model the campaign
// trains — live and non-live, source and target — sees training examples,
// even on small campaigns. Used where the unit of observation is a run
// (the LIU and STRUNK baselines) and for the shared train/test partition
// of the comparison tables.
func (d *Dataset) SplitRuns(trainFrac float64, seed int64) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, errors.New("core: trainFrac must be in (0,1)")
	}
	if len(d.Runs) < 2 {
		return nil, nil, errors.New("core: need at least two runs to split")
	}
	type stratum struct {
		kind     migration.Kind
		role     Role
		scenario string
	}
	groups := make(map[stratum][]*RunRecord)
	var order []stratum
	for _, r := range d.Runs {
		s := stratum{r.Kind, r.Role, r.Scenario}
		if _, seen := groups[s]; !seen {
			order = append(order, s)
		}
		groups[s] = append(groups[s], r)
	}
	rng := rand.New(rand.NewSource(seed))
	train, test = &Dataset{}, &Dataset{}
	for _, s := range order {
		runs := groups[s]
		if len(runs) < 2 {
			// Too small to split: train on it, never test.
			train.Runs = append(train.Runs, runs...)
			continue
		}
		idx := rng.Perm(len(runs))
		k := int(float64(len(runs)) * trainFrac)
		if k < 1 {
			k = 1
		}
		if k >= len(runs) {
			k = len(runs) - 1
		}
		for i, j := range idx {
			if i < k {
				train.Runs = append(train.Runs, runs[j])
			} else {
				test.Runs = append(test.Runs, runs[j])
			}
		}
	}
	return train, test, nil
}

func cloneShallow(r *RunRecord) *RunRecord {
	c := *r
	c.Obs = nil
	return &c
}

func sortObs(obs []trace.Observation) {
	sort.Slice(obs, func(i, j int) bool { return obs[i].At < obs[j].At })
}

// EnergyModel is the common contract of WAVM3 and the baselines: predict
// the migration energy of one run-record.
type EnergyModel interface {
	// Name identifies the model in comparison tables.
	Name() string
	// PredictEnergy estimates Emigr(h, v) for the record.
	PredictEnergy(r *RunRecord) (units.Joules, error)
}
