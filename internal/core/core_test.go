package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/migration"
	"repro/internal/trace"
	"repro/internal/units"
)

// synthCoeffs is a known ground truth for recovery tests.
func synthCoeffs() map[Role]map[trace.Phase]PhaseCoeffs {
	return map[Role]map[trace.Phase]PhaseCoeffs{
		Source: {
			trace.PhaseInitiation: {Alpha: 1.7, Beta: 1.4, C: 700},
			trace.PhaseTransfer:   {Alpha: 2.4, Beta: 1.5e-7, Gamma: 40, Delta: 0.4, C: 420},
			trace.PhaseActivation: {Alpha: 2.4, Beta: 0, C: 660},
		},
		Target: {
			trace.PhaseInitiation: {Alpha: 3.2, Beta: 0, C: 590},
			trace.PhaseTransfer:   {Alpha: 2.6, Beta: 0.7e-7, Gamma: 0, Delta: 0.4, C: 520},
			trace.PhaseActivation: {Alpha: 1.9, Beta: 17, C: 500},
		},
	}
}

func evalTruth(pc PhaseCoeffs, ph trace.Phase, o trace.Observation) float64 {
	if ph == trace.PhaseTransfer {
		return pc.Alpha*float64(o.HostCPU) + pc.Beta*float64(o.Bandwidth) +
			pc.Gamma*float64(o.DirtyRatio) + pc.Delta*float64(o.VMCPU) + pc.C
	}
	return pc.Alpha*float64(o.HostCPU) + pc.Beta*float64(o.VMCPU) + pc.C
}

// synthRecord builds a run whose powers follow the synthetic ground truth
// exactly (up to noiseW of additive noise).
func synthRecord(kind migration.Kind, role Role, id string, seed int64, noiseW float64) *RunRecord {
	rng := rand.New(rand.NewSource(seed))
	coeffs := synthCoeffs()[role]
	rec := &RunRecord{
		Pair: "m01-m02", Kind: kind, Role: role, RunID: id,
		VMMem: 4 * units.GiB,
	}
	at := time.Duration(0)
	// Vary the transfer length per run so run energies span a real range
	// (the NRMSE denominator is the energy range across runs).
	nTransfer := 40 + int((seed*37)%97)
	phaseSpans := []struct {
		ph trace.Phase
		n  int
	}{
		{trace.PhaseInitiation, 8},
		{trace.PhaseTransfer, nTransfer},
		{trace.PhaseActivation, 10},
	}
	for _, span := range phaseSpans {
		for i := 0; i < span.n; i++ {
			o := trace.Observation{
				At:    at,
				Phase: span.ph,
				FeatureSample: trace.FeatureSample{
					At:      at,
					HostCPU: units.Utilisation(2 + rng.Float64()*30),
				},
			}
			if span.ph == trace.PhaseTransfer {
				o.Bandwidth = units.BitsPerSecond(4e8 + rng.Float64()*3e8)
				if kind == migration.Live {
					o.DirtyRatio = units.Fraction(rng.Float64())
					o.VMCPU = units.Utilisation(rng.Float64() * 4)
				}
			} else if role == Source || span.ph == trace.PhaseActivation {
				o.VMCPU = units.Utilisation(rng.Float64() * 4)
			}
			o.Power = units.Watts(evalTruth(coeffs[span.ph], span.ph, o) + rng.NormFloat64()*noiseW)
			rec.Obs = append(rec.Obs, o)
			at += 500 * time.Millisecond
		}
	}
	// Measured energy = trapezoidal integral of the generated powers.
	pt := &trace.PowerTrace{}
	for _, o := range rec.Obs {
		_ = pt.Append(o.At, o.Power)
	}
	rec.MeasuredEnergy = pt.Energy()
	rec.BytesSent = 4 * units.GiB
	rec.MeanBandwidth = 550e6
	return rec
}

func synthDataset(kind migration.Kind, runs int, noiseW float64) *Dataset {
	ds := &Dataset{}
	for i := 0; i < runs; i++ {
		for _, role := range Roles() {
			rec := synthRecord(kind, role, "run", int64(i*2+int(role))+1, noiseW)
			rec.RunID = rec.RunID + string(rune('0'+i)) + role.String()
			if err := ds.Add(rec); err != nil {
				panic(err)
			}
		}
	}
	return ds
}

func TestTrainRecoversKnownCoefficients(t *testing.T) {
	ds := synthDataset(migration.Live, 6, 0) // noiseless
	m, err := Train(ds, migration.Live)
	if err != nil {
		t.Fatal(err)
	}
	want := synthCoeffs()
	for _, role := range Roles() {
		for _, ph := range modelPhases() {
			got := m.Coeffs[role][ph]
			w := want[role][ph]
			check := func(name string, g, wv, tol float64) {
				if math.Abs(g-wv) > tol {
					t.Errorf("%v/%v %s = %v, want %v", role, ph, name, g, wv)
				}
			}
			check("alpha", got.Alpha, w.Alpha, 1e-6)
			check("C", got.C, w.C, 1e-3)
			if ph == trace.PhaseTransfer {
				check("beta", got.Beta, w.Beta, 1e-12)
				check("gamma", got.Gamma, w.Gamma, 1e-4)
				check("delta", got.Delta, w.Delta, 1e-4)
			} else {
				check("beta", got.Beta, w.Beta, 1e-6)
			}
		}
	}
}

func TestTrainReproducesExactZeros(t *testing.T) {
	// The target's initiation β and transfer γ are exactly zero in the
	// ground truth (as in the paper's tables); the non-negative fit must
	// return hard zeros, not small negatives.
	ds := synthDataset(migration.Live, 6, 1.5)
	m, err := Train(ds, migration.Live)
	if err != nil {
		t.Fatal(err)
	}
	// The target's initiation β multiplies an identically-zero regressor
	// (the guest is not on the target yet): the fit must report a hard 0.
	if b := m.Coeffs[Target][trace.PhaseInitiation].Beta; b != 0 {
		t.Errorf("target initiation beta = %v, want exactly 0", b)
	}
	// The target's transfer γ is 0 in the ground truth but DR varies, so
	// under noise the constrained fit may leave a small residue.
	if g := m.Coeffs[Target][trace.PhaseTransfer].Gamma; g < 0 || g > 1 {
		t.Errorf("target transfer gamma = %v, want ≈0 and never negative", g)
	}
}

func TestTrainNonLiveOmitsGuestTerms(t *testing.T) {
	ds := synthDataset(migration.NonLive, 4, 1)
	m, err := Train(ds, migration.NonLive)
	if err != nil {
		t.Fatal(err)
	}
	pc := m.Coeffs[Source][trace.PhaseTransfer]
	if pc.Gamma != 0 || pc.Delta != 0 {
		t.Errorf("non-live transfer must have no DR/VMCPU terms, got γ=%v δ=%v", pc.Gamma, pc.Delta)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, migration.Live); err == nil {
		t.Error("nil dataset must fail")
	}
	if _, err := Train(&Dataset{}, migration.Live); err == nil {
		t.Error("empty dataset must fail")
	}
	// A dataset with only source records cannot train the target model.
	ds := &Dataset{}
	_ = ds.Add(synthRecord(migration.Live, Source, "s", 1, 0))
	if _, err := Train(ds, migration.Live); err == nil {
		t.Error("missing role must fail")
	}
}

func TestPredictEnergyCloseToMeasured(t *testing.T) {
	ds := synthDataset(migration.Live, 8, 2)
	train, test, err := ds.SplitReadings(0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(train, migration.Live)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EvaluateEnergy(m, test.Filter(migration.Live, Source))
	if err != nil {
		t.Fatal(err)
	}
	if rep.NRMSE > 0.05 {
		t.Errorf("NRMSE on in-distribution data = %v, want < 5%%", rep.NRMSE)
	}
}

func TestPredictEnergyKindMismatch(t *testing.T) {
	ds := synthDataset(migration.Live, 4, 0)
	m, _ := Train(ds, migration.Live)
	rec := synthRecord(migration.NonLive, Source, "x", 9, 0)
	if _, err := m.PredictEnergy(rec); err == nil {
		t.Error("kind mismatch must fail")
	}
}

func TestPredictPowerUnknownPhase(t *testing.T) {
	ds := synthDataset(migration.Live, 4, 0)
	m, _ := Train(ds, migration.Live)
	o := trace.Observation{Phase: trace.PhaseNormal}
	if _, err := m.PredictPower(Source, o); err == nil {
		t.Error("normal phase has no model and must fail")
	}
	if _, err := m.PredictPower(Role(9), trace.Observation{Phase: trace.PhaseTransfer}); err == nil {
		t.Error("unknown role must fail")
	}
}

func TestWithBiasShift(t *testing.T) {
	ds := synthDataset(migration.Live, 4, 0)
	m, _ := Train(ds, migration.Live)
	o := synthRecord(migration.Live, Source, "x", 3, 0).Obs[0]
	base, err := m.PredictPower(Source, o)
	if err != nil {
		t.Fatal(err)
	}
	shifted := m.WithBiasShift(-100)
	got, err := shifted.PredictPower(Source, o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(base-got)-100) > 1e-9 {
		t.Errorf("bias shift moved prediction by %v, want 100", base-got)
	}
	// The original is untouched.
	again, _ := m.PredictPower(Source, o)
	if again != base {
		t.Error("WithBiasShift mutated the original model")
	}
	// Shifts compose.
	twice := shifted.WithBiasShift(-50)
	got2, _ := twice.PredictPower(Source, o)
	if math.Abs(float64(base-got2)-150) > 1e-9 {
		t.Errorf("composed shift = %v, want 150", base-got2)
	}
}

func TestPredictPowerNeverNegative(t *testing.T) {
	ds := synthDataset(migration.Live, 4, 0)
	m, _ := Train(ds, migration.Live)
	huge := m.WithBiasShift(-1e6)
	o := synthRecord(migration.Live, Source, "x", 3, 0).Obs[0]
	w, err := huge.PredictPower(Source, o)
	if err != nil {
		t.Fatal(err)
	}
	if w < 0 {
		t.Errorf("predicted power %v must clamp at zero", w)
	}
}

func TestPredictPhaseEnergy(t *testing.T) {
	rec := synthRecord(migration.Live, Source, "x", 5, 0)
	ds := synthDataset(migration.Live, 4, 0)
	m, _ := Train(ds, migration.Live)
	// Phase boundaries matching synthRecord's spans (8 initiation and 10
	// activation samples at 500 ms around the variable-length transfer).
	last := rec.Obs[len(rec.Obs)-1].At
	b := trace.Boundaries{
		MS: 0,
		TS: 4 * time.Second,
		TE: last - 5*time.Second + 500*time.Millisecond,
		ME: last + 500*time.Millisecond,
	}
	pe, err := m.PredictPhaseEnergy(rec, b)
	if err != nil {
		t.Fatal(err)
	}
	if pe.Initiation <= 0 || pe.Transfer <= 0 || pe.Activation <= 0 {
		t.Errorf("phase energies must be positive: %+v", pe)
	}
	total, err := m.PredictEnergy(rec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(pe.Total()-total)) > 1e-6*float64(total) {
		t.Errorf("phase sum %v != total %v", pe.Total(), total)
	}
}

func TestDatasetFilters(t *testing.T) {
	ds := synthDataset(migration.Live, 3, 0)
	nl := synthRecord(migration.NonLive, Source, "nl", 99, 0)
	_ = ds.Add(nl)
	if got := len(ds.Filter(migration.Live, Source)); got != 3 {
		t.Errorf("live/source = %d, want 3", got)
	}
	if got := len(ds.Filter(migration.NonLive, Source)); got != 1 {
		t.Errorf("non-live/source = %d, want 1", got)
	}
	if got := len(ds.FilterPair("m01-m02", migration.Live, Target)); got != 3 {
		t.Errorf("pair filter = %d, want 3", got)
	}
	if got := len(ds.FilterPair("o1-o2", migration.Live, Target)); got != 0 {
		t.Errorf("missing pair filter = %d, want 0", got)
	}
}

func TestSplitReadings(t *testing.T) {
	ds := synthDataset(migration.Live, 4, 0)
	train, test, err := ds.SplitReadings(0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() == 0 || test.Len() == 0 {
		t.Fatal("both splits must be non-empty")
	}
	// Reading counts per run: 20% train, 80% test, disjoint and complete.
	orig := ds.Runs[0]
	var tr, te *RunRecord
	for _, r := range train.Runs {
		if r.RunID == orig.RunID {
			tr = r
		}
	}
	for _, r := range test.Runs {
		if r.RunID == orig.RunID {
			te = r
		}
	}
	if tr == nil || te == nil {
		t.Fatal("run missing from a split")
	}
	if len(tr.Obs)+len(te.Obs) != len(orig.Obs) {
		t.Errorf("split lost readings: %d + %d != %d", len(tr.Obs), len(te.Obs), len(orig.Obs))
	}
	frac := float64(len(tr.Obs)) / float64(len(orig.Obs))
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("training fraction = %v, want ≈0.2", frac)
	}
	// Observations stay time-ordered after the split.
	for i := 1; i < len(tr.Obs); i++ {
		if tr.Obs[i].At < tr.Obs[i-1].At {
			t.Fatal("training observations out of order")
		}
	}
	if _, _, err := ds.SplitReadings(0, 1); err == nil {
		t.Error("frac 0 must fail")
	}
	if _, _, err := ds.SplitReadings(1, 1); err == nil {
		t.Error("frac 1 must fail")
	}
}

func TestSplitRuns(t *testing.T) {
	ds := synthDataset(migration.Live, 10, 0) // 20 records
	train, test, err := ds.SplitRuns(0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != ds.Len() {
		t.Errorf("split lost runs: %d + %d != %d", train.Len(), test.Len(), ds.Len())
	}
	if train.Len() != 6 {
		t.Errorf("train = %d runs, want 6 (30%% of 20)", train.Len())
	}
	small := &Dataset{}
	_ = small.Add(synthRecord(migration.Live, Source, "only", 1, 0))
	if _, _, err := small.SplitRuns(0.5, 1); err == nil {
		t.Error("single-run split must fail")
	}
}

func TestRunRecordValidate(t *testing.T) {
	r := &RunRecord{RunID: "x"}
	if err := r.Validate(); err == nil {
		t.Error("no observations must fail")
	}
	r = synthRecord(migration.Live, Source, "x", 1, 0)
	r.MeasuredEnergy = 0
	if err := r.Validate(); err == nil {
		t.Error("zero energy must fail")
	}
}

func TestRunRecordDuration(t *testing.T) {
	r := synthRecord(migration.Live, Source, "x", 1, 0)
	want := time.Duration(len(r.Obs)-1) * 500 * time.Millisecond
	if r.Duration() != want {
		t.Errorf("duration = %v, want %v", r.Duration(), want)
	}
	empty := &RunRecord{}
	if empty.Duration() != 0 {
		t.Error("empty record duration must be 0")
	}
}

func TestRoleString(t *testing.T) {
	if Source.String() != "Source" || Target.String() != "Target" {
		t.Error("role names wrong")
	}
}

func TestEvaluateEnergyErrors(t *testing.T) {
	ds := synthDataset(migration.Live, 4, 0)
	m, _ := Train(ds, migration.Live)
	if _, err := EvaluateEnergy(m, nil); err == nil {
		t.Error("empty evaluation must fail")
	}
}

func TestCrossValidate(t *testing.T) {
	ds := &Dataset{}
	// Two "scenarios" per role with six runs each, so folds stay stratified.
	for i := 0; i < 6; i++ {
		for _, role := range Roles() {
			for _, scen := range []string{"scenA", "scenB"} {
				rec := synthRecord(migration.Live, role, "cv", int64(i*7+int(role)*3+len(scen))+1, 2)
				rec.RunID = scen + rec.RunID + string(rune('0'+i)) + role.String()
				rec.Scenario = scen
				if err := ds.Add(rec); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	cv, err := CrossValidate(ds, migration.Live, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Folds != 3 {
		t.Errorf("folds = %d", cv.Folds)
	}
	for _, role := range Roles() {
		if len(cv.PerRole[role]) == 0 {
			t.Fatalf("no folds evaluated for %v", role)
		}
		m := cv.MeanNRMSE(role)
		if m <= 0 || m > 0.2 {
			t.Errorf("%v mean NRMSE = %v, want small on in-distribution data", role, m)
		}
		if cv.StdNRMSE(role) < 0 {
			t.Errorf("negative std")
		}
	}
}

func TestCrossValidateErrors(t *testing.T) {
	if _, err := CrossValidate(nil, migration.Live, 3, 1); err == nil {
		t.Error("nil dataset must fail")
	}
	ds := synthDataset(migration.Live, 4, 0)
	if _, err := CrossValidate(ds, migration.Live, 1, 1); err == nil {
		t.Error("k=1 must fail")
	}
	if _, err := CrossValidate(ds, migration.NonLive, 2, 1); err == nil {
		t.Error("kind with no records must fail")
	}
}
