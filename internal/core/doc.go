// Package core implements the paper's contribution: WAVM3, the
// workload-aware energy model for VM migration (Section IV). It defines
// the regression dataset shape shared with the baseline models, the
// per-phase per-host linear power models of Eqs. 5–7, their training
// pipeline (least squares on a reading subset, Section VI-F), energy
// prediction by integration (Eqs. 3–4), and the C1→C2 idle-power bias
// correction that transports coefficients across machine pairs.
//
// Position in the data flow (see ARCHITECTURE.md): internal/experiments
// converts simulated runs into RunRecord rows (one per host role) and
// assembles them into a Dataset; Train fits a Model per migration kind;
// Model.PredictEnergy integrates the fitted per-phase power over an
// observation timeline. CrossValidate and the ablation helpers serve the
// evaluation tables. Everything here is deterministic: fold seeds and row
// orders derive from the dataset contents, never from map iteration.
package core
