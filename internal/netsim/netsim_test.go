package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/hw"
	"repro/internal/units"
)

func mLink(t *testing.T) *Link {
	t.Helper()
	src, dst, err := hw.Pair(hw.PairM)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLink(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLinkValidation(t *testing.T) {
	cat := hw.Catalog()
	if _, err := NewLink(hw.MachineSpec{}, cat["m02"]); err == nil {
		t.Error("invalid source must fail")
	}
	if _, err := NewLink(cat["m01"], hw.MachineSpec{}); err == nil {
		t.Error("invalid target must fail")
	}
	// m01 and o1 sit on different switches.
	if _, err := NewLink(cat["m01"], cat["o1"]); err == nil {
		t.Error("cross-switch link must fail")
	}
}

func TestBaseRateIsMinOfEndpoints(t *testing.T) {
	cat := hw.Catalog()
	a := cat["m01"]
	b := cat["m02"]
	b.MigrationRate = 100 * units.Mbps
	l, err := NewLink(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if l.BaseRate() != 100*units.Mbps {
		t.Errorf("base = %v, want the slower endpoint's 100 Mbit/s", l.BaseRate())
	}
}

func TestAchievableSharesClamp(t *testing.T) {
	l := mLink(t)
	full := l.Achievable(1, 1)
	if full != l.BaseRate() {
		t.Errorf("unloaded achievable = %v, want base %v", full, l.BaseRate())
	}
	// Slower side clocks the stream.
	if got := l.Achievable(0.5, 1); math.Abs(float64(got)-0.5*float64(l.BaseRate())) > 1e-6 {
		t.Errorf("src-limited achievable = %v", got)
	}
	if got := l.Achievable(1, 0.5); math.Abs(float64(got)-0.5*float64(l.BaseRate())) > 1e-6 {
		t.Errorf("dst-limited achievable = %v", got)
	}
	// Floor: starving the helper never kills the stream.
	if got := l.Achievable(0, 0); float64(got) < 0.14*float64(l.BaseRate()) {
		t.Errorf("floored achievable = %v, too low", got)
	}
	// Over-unity shares clamp to base.
	if got := l.Achievable(2, 3); got != l.BaseRate() {
		t.Errorf("overshared achievable = %v", got)
	}
}

func TestAchievableMonotone(t *testing.T) {
	l := mLink(t)
	f := func(a, b uint8) bool {
		sa, sb := float64(a)/255, float64(b)/255
		if sa > sb {
			sa, sb = sb, sa
		}
		return l.Achievable(sa, 1) <= l.Achievable(sb, 1)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineFraction(t *testing.T) {
	l := mLink(t)
	if f := l.LineFraction(0); f != 0 {
		t.Errorf("zero bw fraction = %v", f)
	}
	if f := l.LineFraction(units.Gbps); f != 1 {
		t.Errorf("line-rate fraction = %v, want 1", f)
	}
	if f := l.LineFraction(500 * units.Mbps); math.Abs(float64(f)-0.5) > 1e-9 {
		t.Errorf("half-rate fraction = %v, want 0.5", f)
	}
	if f := l.LineFraction(10 * units.Gbps); f != 1 {
		t.Errorf("over-rate fraction = %v, want clamped to 1", f)
	}
}

func TestStreamLifecycle(t *testing.T) {
	s, err := NewStream(1000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Done() || s.Moved() != 0 || s.Remaining() != 1000 || s.Total() != 1000 {
		t.Fatal("fresh stream state wrong")
	}
	// 8 kbit/s moves 1000 bytes per second.
	moved := s.Advance(8000, 500*time.Millisecond)
	if moved != 500 {
		t.Errorf("moved %d in half a second at 1000 B/s, want 500", moved)
	}
	moved = s.Advance(8000, 10*time.Second) // would overshoot
	if moved != 500 {
		t.Errorf("final chunk = %d, want 500 (no overshoot)", moved)
	}
	if !s.Done() || s.Remaining() != 0 {
		t.Error("stream should be done")
	}
	if s.Advance(8000, time.Second) != 0 {
		t.Error("advancing a done stream must move nothing")
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewStream(0); err == nil {
		t.Error("zero-size stream must fail")
	}
	if _, err := NewStream(-1); err == nil {
		t.Error("negative stream must fail")
	}
	s, _ := NewStream(100)
	if s.Advance(0, time.Second) != 0 {
		t.Error("zero bandwidth moves nothing")
	}
	if s.Advance(1000, 0) != 0 {
		t.Error("zero dt moves nothing")
	}
	if s.Advance(1000, -time.Second) != 0 {
		t.Error("negative dt moves nothing")
	}
}

func TestStreamConservation(t *testing.T) {
	// Property: across arbitrary step sizes, total moved equals stream size
	// exactly when done, and Moved+Remaining == Total at every point.
	f := func(steps []uint8) bool {
		s, err := NewStream(100_000)
		if err != nil {
			return false
		}
		var acc units.Bytes
		for _, st := range steps {
			mv := s.Advance(units.BitsPerSecond(1+int(st))*units.Mbps, 50*time.Millisecond)
			acc += mv
			if s.Moved()+s.Remaining() != s.Total() {
				return false
			}
		}
		return acc == s.Moved() && acc <= s.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamETA(t *testing.T) {
	s, _ := NewStream(125_000_000) // 1 Gbit
	eta := s.ETA(units.Gbps)
	if math.Abs(eta.Seconds()-1) > 1e-9 {
		t.Errorf("ETA = %v, want 1s", eta)
	}
}
