// Package netsim models the gigabit path between migration endpoints. Its
// one load-bearing behaviour is the coupling the paper measures in the
// CPULOAD experiments: the Xen migration stream is pumped by a dom-0
// helper process, so when either endpoint's CPU is saturated the helper is
// descheduled part of the time and the achievable bandwidth falls below
// the hardware's migration rate — lengthening the transfer phase and
// changing its energy.
package netsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/units"
)

// Link is the unidirectional migration path from a source to a target
// machine through their shared switch.
type Link struct {
	src, dst hw.MachineSpec
	// base is the zero-contention migration bandwidth: the lower of the
	// two endpoints' achievable migration rates.
	base units.BitsPerSecond
}

// NewLink builds the migration path between two machines. Both ends must
// sit on the same switch (the testbed wires each pair through one switch).
func NewLink(src, dst hw.MachineSpec) (*Link, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	if err := dst.Validate(); err != nil {
		return nil, err
	}
	if src.Switch != dst.Switch {
		return nil, fmt.Errorf("netsim: %s (%s) and %s (%s) are on different switches",
			src.Name, src.Switch, dst.Name, dst.Switch)
	}
	base := src.MigrationRate
	if dst.MigrationRate < base {
		base = dst.MigrationRate
	}
	return &Link{src: src, dst: dst, base: base}, nil
}

// BaseRate returns the zero-contention migration bandwidth.
func (l *Link) BaseRate() units.BitsPerSecond { return l.base }

// Achievable returns BW(S,T,t) given the CPU shares the migration helper
// received on each endpoint (1 = fully scheduled). The stream is clocked
// by the slower side. A small floor keeps the DMA path alive even under
// total CPU starvation, matching the testbed where fully loaded hosts
// still migrated, only slower.
func (l *Link) Achievable(srcShare, dstShare float64) units.BitsPerSecond {
	share := srcShare
	if dstShare < share {
		share = dstShare
	}
	const floor = 0.15
	if share < floor {
		share = floor
	}
	if share > 1 {
		share = 1
	}
	return units.BitsPerSecond(float64(l.base) * share)
}

// LineFraction converts an in-use bandwidth into the fraction of NIC line
// rate for the ground-truth power model.
func (l *Link) LineFraction(bw units.BitsPerSecond) units.Fraction {
	if l.src.LinkRate <= 0 {
		return 0
	}
	return units.Fraction(float64(bw) / float64(l.src.LinkRate)).Clamp()
}

// Stream tracks one bulk transfer (a pre-copy round, a stop-and-copy, or a
// whole non-live state push) across simulation steps.
type Stream struct {
	total units.Bytes
	moved units.Bytes
}

// NewStream starts a transfer of the given size.
func NewStream(total units.Bytes) (*Stream, error) {
	if total <= 0 {
		return nil, errors.New("netsim: stream size must be positive")
	}
	return &Stream{total: total}, nil
}

// Advance moves data for dt at bandwidth bw. It returns the bytes moved in
// this step; the stream never overshoots its total.
func (s *Stream) Advance(bw units.BitsPerSecond, dt time.Duration) units.Bytes {
	if s.Done() || dt <= 0 || bw <= 0 {
		return 0
	}
	n := bw.BytesIn(dt)
	if s.moved+n > s.total {
		n = s.total - s.moved
	}
	s.moved += n
	return n
}

// Done reports whether the transfer completed.
func (s *Stream) Done() bool { return s.moved >= s.total }

// Moved returns the bytes transferred so far.
func (s *Stream) Moved() units.Bytes { return s.moved }

// Total returns the transfer size.
func (s *Stream) Total() units.Bytes { return s.total }

// Remaining returns the bytes still to move.
func (s *Stream) Remaining() units.Bytes { return s.total - s.moved }

// ETA estimates the remaining transfer time at the given bandwidth.
func (s *Stream) ETA(bw units.BitsPerSecond) time.Duration {
	return bw.TimeToSend(s.Remaining())
}
