// Package vm models the paravirtualised guests of the paper's testbed:
// the instance types of Table IIb, their runtime lifecycle (running,
// suspended, migrating) and their resource demand as seen by the
// hypervisor scheduler.
package vm

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/units"
)

// State is the lifecycle state of a VM.
type State int

// VM lifecycle states.
const (
	StateStopped State = iota
	StateRunning
	StateSuspended
	StateMigrating // running under log-dirty mode while being live-migrated
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateStopped:
		return "stopped"
	case StateRunning:
		return "running"
	case StateSuspended:
		return "suspended"
	case StateMigrating:
		return "migrating"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// InstanceType is a VM template from Table IIb.
type InstanceType struct {
	// ID is the table's identifier (load-cpu, migrating-cpu, …).
	ID string
	// VCPUs is the number of virtual CPUs.
	VCPUs int
	// Kernel is the guest Linux kernel version (informational).
	Kernel string
	// RAM is the allocated memory.
	RAM units.Bytes
	// Workload names the benchmark the instance runs.
	Workload string
	// Storage is the disk image size (shared NFS; not transferred during
	// migration, which is why only RAM state moves).
	Storage units.Bytes
}

// Instance type identifiers from Table IIb.
const (
	TypeLoadCPU      = "load-cpu"
	TypeMigratingCPU = "migrating-cpu"
	TypeMigratingMem = "migrating-mem"
	TypeDom0         = "dom-0"
)

// Types returns the instance catalog of Table IIb keyed by ID.
func Types() map[string]InstanceType {
	return map[string]InstanceType{
		TypeLoadCPU: {
			ID: TypeLoadCPU, VCPUs: 4, Kernel: "2.6.32",
			RAM: 512 * units.MiB, Workload: "matrixmult", Storage: 1 * units.GiB,
		},
		TypeMigratingCPU: {
			ID: TypeMigratingCPU, VCPUs: 4, Kernel: "2.6.32",
			RAM: 4 * units.GiB, Workload: "matrixmult", Storage: 6 * units.GiB,
		},
		TypeMigratingMem: {
			ID: TypeMigratingMem, VCPUs: 1, Kernel: "2.6.32",
			RAM: 4 * units.GiB, Workload: "pagedirtier", Storage: 6 * units.GiB,
		},
		TypeDom0: {
			ID: TypeDom0, VCPUs: 1, Kernel: "3.11.4",
			RAM: 512 * units.MiB, Workload: "VMM", Storage: 115 * units.GiB,
		},
	}
}

// Lookup returns the instance type with the given ID.
func Lookup(id string) (InstanceType, error) {
	t, ok := Types()[id]
	if !ok {
		return InstanceType{}, fmt.Errorf("vm: unknown instance type %q", id)
	}
	return t, nil
}

// VM is a live guest: an instance type plus runtime state.
type VM struct {
	// Name uniquely identifies the guest on its host.
	Name string
	// Type is the template the guest was created from.
	Type InstanceType
	// Memory is the page-granular memory image (nil until started).
	Memory *mem.Image

	state State
	// demand is the CPU the guest currently asks for, in busy-vCPU units;
	// it is capped by the vCPU count.
	demand units.Utilisation
	// dirtier drives page writes while the guest runs.
	dirtier mem.Dirtier
}

// New creates a stopped VM of the given type.
func New(name string, t InstanceType) (*VM, error) {
	if name == "" {
		return nil, fmt.Errorf("vm: empty name")
	}
	if t.VCPUs <= 0 || t.RAM <= 0 {
		return nil, fmt.Errorf("vm: instance type %q has no resources", t.ID)
	}
	return &VM{Name: name, Type: t, dirtier: mem.NoDirtier{}}, nil
}

// Start allocates the memory image and moves the VM to running.
func (v *VM) Start() error {
	if v.state != StateStopped {
		return fmt.Errorf("vm: %s cannot start from %v", v.Name, v.state)
	}
	im, err := mem.NewImage(v.Type.RAM)
	if err != nil {
		return err
	}
	v.Memory = im
	v.state = StateRunning
	return nil
}

// Suspend pauses the VM: its CPU demand and dirtying stop immediately,
// exactly the behaviour the paper exploits in non-live migration and in the
// final stop-and-copy round of live migration.
func (v *VM) Suspend() error {
	if v.state != StateRunning && v.state != StateMigrating {
		return fmt.Errorf("vm: %s cannot suspend from %v", v.Name, v.state)
	}
	v.state = StateSuspended
	return nil
}

// Resume returns a suspended VM to running.
func (v *VM) Resume() error {
	if v.state != StateSuspended {
		return fmt.Errorf("vm: %s cannot resume from %v", v.Name, v.state)
	}
	v.state = StateRunning
	return nil
}

// BeginMigration flips a running VM into log-dirty migrating mode.
func (v *VM) BeginMigration() error {
	if v.state != StateRunning {
		return fmt.Errorf("vm: %s cannot begin migration from %v", v.Name, v.state)
	}
	v.state = StateMigrating
	return nil
}

// EndMigration returns a migrating VM to plain running (e.g. after an
// aborted migration on the source, or activation on the target).
func (v *VM) EndMigration() error {
	if v.state != StateMigrating && v.state != StateSuspended {
		return fmt.Errorf("vm: %s cannot end migration from %v", v.Name, v.state)
	}
	v.state = StateRunning
	return nil
}

// Destroy stops the VM and releases its memory (the source-side cleanup of
// the activation phase).
func (v *VM) Destroy() {
	v.state = StateStopped
	v.Memory = nil
	v.demand = 0
}

// State returns the lifecycle state.
func (v *VM) State() State { return v.state }

// Active reports whether the guest is consuming CPU (running or in
// log-dirty migrating mode; suspended guests consume nothing — the paper's
// "if the VM is idle or suspended, then CPU(v,t)=0 and DR(v,t)=0").
func (v *VM) Active() bool { return v.state == StateRunning || v.state == StateMigrating }

// SetDemand sets the guest's CPU demand, clamped to its vCPU count.
func (v *VM) SetDemand(d units.Utilisation) {
	v.demand = d.Clamp(units.Utilisation(v.Type.VCPUs))
}

// Demand returns CPU demand as the scheduler sees it: the configured demand
// while active, zero otherwise.
func (v *VM) Demand() units.Utilisation {
	if !v.Active() {
		return 0
	}
	return v.demand
}

// SetDirtier installs the page-dirtying behaviour of the guest workload.
func (v *VM) SetDirtier(d mem.Dirtier) {
	if d == nil {
		d = mem.NoDirtier{}
	}
	v.dirtier = d
}

// StepMemory advances the guest's dirtying process by dt seconds, scaled by
// the CPU share it actually received (a starved guest dirties slower). It
// returns the number of page-write events issued.
func (v *VM) StepMemory(dtSeconds, cpuShare float64) int64 {
	if !v.Active() || v.Memory == nil || cpuShare <= 0 {
		return 0
	}
	if cpuShare > 1 {
		cpuShare = 1
	}
	return v.dirtier.Step(v.Memory, dtSeconds*cpuShare)
}

// DirtyRate returns the nominal page-write rate of the guest's workload
// while it is active.
func (v *VM) DirtyRate() float64 {
	if !v.Active() {
		return 0
	}
	return v.dirtier.Rate()
}

// DirtyRatio returns DR(v,t): zero when suspended/stopped per Section IV-B.
func (v *VM) DirtyRatio() units.Fraction {
	if !v.Active() || v.Memory == nil {
		return 0
	}
	return v.Memory.DirtyRatio()
}
