package vm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/units"
)

func TestTypesMatchTableIIb(t *testing.T) {
	types := Types()
	if len(types) != 4 {
		t.Fatalf("catalog has %d types, want 4", len(types))
	}
	cases := []struct {
		id      string
		vcpus   int
		ram     units.Bytes
		work    string
		storage units.Bytes
		kernel  string
	}{
		{TypeLoadCPU, 4, 512 * units.MiB, "matrixmult", 1 * units.GiB, "2.6.32"},
		{TypeMigratingCPU, 4, 4 * units.GiB, "matrixmult", 6 * units.GiB, "2.6.32"},
		{TypeMigratingMem, 1, 4 * units.GiB, "pagedirtier", 6 * units.GiB, "2.6.32"},
		{TypeDom0, 1, 512 * units.MiB, "VMM", 115 * units.GiB, "3.11.4"},
	}
	for _, c := range cases {
		tt, err := Lookup(c.id)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", c.id, err)
		}
		if tt.VCPUs != c.vcpus || tt.RAM != c.ram || tt.Workload != c.work ||
			tt.Storage != c.storage || tt.Kernel != c.kernel {
			t.Errorf("%s = %+v, want %+v", c.id, tt, c)
		}
	}
	if _, err := Lookup("no-such-type"); err == nil {
		t.Error("unknown type must fail")
	}
}

func newRunning(t *testing.T, typ string) *VM {
	t.Helper()
	tt, err := Lookup(typ)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New("test-vm", tt)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewValidation(t *testing.T) {
	tt, _ := Lookup(TypeLoadCPU)
	if _, err := New("", tt); err == nil {
		t.Error("empty name must fail")
	}
	if _, err := New("x", InstanceType{ID: "broken"}); err == nil {
		t.Error("resourceless type must fail")
	}
}

func TestLifecycle(t *testing.T) {
	v := newRunning(t, TypeMigratingCPU)
	if v.State() != StateRunning || !v.Active() {
		t.Fatalf("after Start state = %v", v.State())
	}
	if v.Memory == nil || v.Memory.TotalPages() != units.PagesOf(4*units.GiB) {
		t.Fatal("memory image not allocated to type size")
	}
	if err := v.Start(); err == nil {
		t.Error("double start must fail")
	}
	if err := v.BeginMigration(); err != nil {
		t.Fatal(err)
	}
	if v.State() != StateMigrating || !v.Active() {
		t.Errorf("migrating VM must stay active, state = %v", v.State())
	}
	if err := v.Suspend(); err != nil {
		t.Fatal(err)
	}
	if v.Active() {
		t.Error("suspended VM must be inactive")
	}
	if err := v.Resume(); err != nil {
		t.Fatal(err)
	}
	if v.State() != StateRunning {
		t.Errorf("after resume state = %v", v.State())
	}
	v.Destroy()
	if v.State() != StateStopped || v.Memory != nil {
		t.Error("destroy must stop and free")
	}
}

func TestIllegalTransitions(t *testing.T) {
	tt, _ := Lookup(TypeLoadCPU)
	v, _ := New("x", tt)
	if err := v.Suspend(); err == nil {
		t.Error("suspend from stopped must fail")
	}
	if err := v.Resume(); err == nil {
		t.Error("resume from stopped must fail")
	}
	if err := v.BeginMigration(); err == nil {
		t.Error("migrate from stopped must fail")
	}
	if err := v.EndMigration(); err == nil {
		t.Error("end migration from stopped must fail")
	}
	_ = v.Start()
	if err := v.Resume(); err == nil {
		t.Error("resume from running must fail")
	}
}

func TestDemandClampedToVCPUs(t *testing.T) {
	v := newRunning(t, TypeLoadCPU) // 4 vCPUs
	v.SetDemand(10)
	if v.Demand() != 4 {
		t.Errorf("demand = %v, want clamped to 4", v.Demand())
	}
	v.SetDemand(-3)
	if v.Demand() != 0 {
		t.Errorf("negative demand = %v, want 0", v.Demand())
	}
}

func TestSuspendedDemandsNothing(t *testing.T) {
	v := newRunning(t, TypeMigratingCPU)
	v.SetDemand(4)
	if v.Demand() != 4 {
		t.Fatalf("demand = %v", v.Demand())
	}
	_ = v.Suspend()
	if v.Demand() != 0 {
		t.Errorf("suspended demand = %v, want 0 (CPU(v,t)=0 when suspended)", v.Demand())
	}
	if v.DirtyRatio() != 0 {
		t.Errorf("suspended DR = %v, want 0 (DR(v,t)=0 when suspended)", v.DirtyRatio())
	}
	if v.DirtyRate() != 0 {
		t.Errorf("suspended dirty rate = %v, want 0", v.DirtyRate())
	}
}

func TestStepMemoryScalesWithCPUShare(t *testing.T) {
	v := newRunning(t, TypeMigratingMem)
	v.SetDirtier(mem.NewUniformDirtier(1000, 0.95, 1))
	full := v.StepMemory(1, 1)
	if full != 1000 {
		t.Errorf("full-share step issued %d, want 1000", full)
	}
	v2 := newRunning(t, TypeMigratingMem)
	v2.SetDirtier(mem.NewUniformDirtier(1000, 0.95, 1))
	half := v2.StepMemory(1, 0.5)
	if half != 500 {
		t.Errorf("half-share step issued %d, want 500", half)
	}
	// Over-unity share clamps.
	v3 := newRunning(t, TypeMigratingMem)
	v3.SetDirtier(mem.NewUniformDirtier(1000, 0.95, 1))
	over := v3.StepMemory(1, 2)
	if over != 1000 {
		t.Errorf("over-share step issued %d, want 1000", over)
	}
}

func TestStepMemoryInactive(t *testing.T) {
	v := newRunning(t, TypeMigratingMem)
	v.SetDirtier(mem.NewUniformDirtier(1000, 0.95, 1))
	_ = v.Suspend()
	if n := v.StepMemory(1, 1); n != 0 {
		t.Errorf("suspended StepMemory issued %d, want 0", n)
	}
	if n := newRunning(t, TypeMigratingMem).StepMemory(1, 0); n != 0 {
		t.Errorf("zero-share StepMemory issued %d, want 0", n)
	}
}

func TestSetDirtierNil(t *testing.T) {
	v := newRunning(t, TypeMigratingMem)
	v.SetDirtier(nil)
	if v.DirtyRate() != 0 {
		t.Error("nil dirtier must behave as NoDirtier")
	}
	if n := v.StepMemory(1, 1); n != 0 {
		t.Error("nil dirtier must issue nothing")
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateStopped:   "stopped",
		StateRunning:   "running",
		StateSuspended: "suspended",
		StateMigrating: "migrating",
		State(42):      "State(42)",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("State %d = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestEndMigrationFromSuspended(t *testing.T) {
	// Target-side activation: the VM arrives suspended and is resumed via
	// EndMigration.
	v := newRunning(t, TypeMigratingCPU)
	_ = v.BeginMigration()
	_ = v.Suspend()
	if err := v.EndMigration(); err != nil {
		t.Fatalf("EndMigration from suspended: %v", err)
	}
	if v.State() != StateRunning {
		t.Errorf("state = %v, want running", v.State())
	}
}
