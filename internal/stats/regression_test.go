package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOLSRecoversKnownCoefficients(t *testing.T) {
	// Property: with a noiseless linear target, OLS recovers the exact
	// coefficients (up to float tolerance) for any well-conditioned design.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		beta := []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 5, rng.NormFloat64() * 2}
		rows := make([][]float64, n)
		y := make([]float64, n)
		for i := range rows {
			rows[i] = []float64{1, rng.Float64() * 100, rng.Float64() * 10}
			y[i] = beta[0]*rows[i][0] + beta[1]*rows[i][1] + beta[2]*rows[i][2]
		}
		x, err := MatrixFromRows(rows)
		if err != nil {
			return false
		}
		fit, err := OLS(x, y)
		if err != nil {
			return false
		}
		for j := range beta {
			if !almostEq(fit.Coeffs[j], beta[j], 1e-6*(1+math.Abs(beta[j]))) {
				return false
			}
		}
		return fit.R2 > 0.999999 || fit.RSS < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOLSWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 2000
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		cpu := rng.Float64() * 32
		rows[i] = []float64{1, cpu}
		y[i] = 400 + 9.5*cpu + rng.NormFloat64()*3
	}
	x, _ := MatrixFromRows(rows)
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Coeffs[0], 400, 1.0) {
		t.Errorf("intercept = %v, want ≈400", fit.Coeffs[0])
	}
	if !almostEq(fit.Coeffs[1], 9.5, 0.1) {
		t.Errorf("slope = %v, want ≈9.5", fit.Coeffs[1])
	}
	if fit.R2 < 0.99 {
		t.Errorf("R² = %v, want > 0.99", fit.R2)
	}
}

func TestOLSErrors(t *testing.T) {
	x, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := OLS(x, []float64{1}); err == nil {
		t.Error("target length mismatch should fail")
	}
	narrow, _ := MatrixFromRows([][]float64{{1, 2, 3}})
	if _, err := OLS(narrow, []float64{1}); err == nil {
		t.Error("underdetermined system should fail")
	}
}

func TestNonNegativeOLSClampsNegatives(t *testing.T) {
	// Construct data where the unconstrained fit would give column 2 a
	// negative weight: y depends only on column 1, and column 2 is noisy
	// anti-correlated with the residual target.
	rng := rand.New(rand.NewSource(7))
	n := 300
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		a := rng.Float64() * 10
		b := rng.Float64() * 10
		rows[i] = []float64{1, a, b}
		y[i] = 100 + 2*a - 0.5*b + rng.NormFloat64()*0.01
	}
	x, _ := MatrixFromRows(rows)
	fit, err := NonNegativeOLS(x, y, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Coeffs[2] != 0 {
		t.Errorf("constrained coefficient = %v, want exactly 0", fit.Coeffs[2])
	}
	if !almostEq(fit.Coeffs[1], 2, 0.2) {
		t.Errorf("free coefficient = %v, want ≈2", fit.Coeffs[1])
	}
}

func TestNonNegativeOLSFeasibleUnchanged(t *testing.T) {
	// When the unconstrained solution is already non-negative it must match
	// plain OLS.
	rng := rand.New(rand.NewSource(9))
	n := 200
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		a := rng.Float64() * 10
		rows[i] = []float64{1, a}
		y[i] = 5 + 3*a
	}
	x, _ := MatrixFromRows(rows)
	plain, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := NonNegativeOLS(x, y, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	for j := range plain.Coeffs {
		if !almostEq(plain.Coeffs[j], constrained.Coeffs[j], 1e-9) {
			t.Errorf("coefficient %d: constrained %v != plain %v", j, constrained.Coeffs[j], plain.Coeffs[j])
		}
	}
}

func TestNonNegativeOLSBadColumn(t *testing.T) {
	x, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 7}})
	if _, err := NonNegativeOLS(x, []float64{1, 2, 3}, []int{5}); err == nil {
		t.Error("out-of-range constrained column should fail")
	}
}

func TestDesignMatrix(t *testing.T) {
	m, err := DesignMatrix([][]float64{{2, 3}, {4, 5}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cols() != 3 || m.At(0, 0) != 1 || m.At(1, 0) != 1 {
		t.Error("intercept column missing or wrong")
	}
	if m.At(0, 1) != 2 || m.At(1, 2) != 5 {
		t.Error("feature values misplaced")
	}
	m2, err := DesignMatrix([][]float64{{2, 3}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Cols() != 2 {
		t.Error("no-intercept design has wrong width")
	}
	if _, err := DesignMatrix(nil, true); err == nil {
		t.Error("empty features should fail")
	}
	if _, err := DesignMatrix([][]float64{{1}, {1, 2}}, true); err == nil {
		t.Error("ragged features should fail")
	}
}

func TestNLLSLinearMatchesOLS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 100
	xs := make([]float64, n)
	y := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 50
		y[i] = 700 + 2.4*xs[i] + rng.NormFloat64()
	}
	model := func(p []float64, i int) float64 { return p[0] + p[1]*xs[i] }
	res, err := NLLS(model, y, []float64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Params[0], 700, 2) || !almostEq(res.Params[1], 2.4, 0.1) {
		t.Errorf("NLLS params = %v, want ≈[700 2.4]", res.Params)
	}
}

func TestNLLSNonlinearExponent(t *testing.T) {
	// y = a · x^k, the shape of the ground-truth CPU power curve.
	rng := rand.New(rand.NewSource(11))
	n := 200
	xs := make([]float64, n)
	y := make([]float64, n)
	for i := range xs {
		xs[i] = 0.05 + rng.Float64()
		y[i] = 12.5 * math.Pow(xs[i], 1.12)
	}
	model := func(p []float64, i int) float64 { return p[0] * math.Pow(xs[i], p[1]) }
	res, err := NLLS(model, y, []float64{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Params[0], 12.5, 0.05) || !almostEq(res.Params[1], 1.12, 0.01) {
		t.Errorf("NLLS params = %v, want ≈[12.5 1.12]", res.Params)
	}
}

func TestNLLSValidation(t *testing.T) {
	model := func(p []float64, i int) float64 { return p[0] }
	if _, err := NLLS(model, nil, []float64{1}, nil); err == nil {
		t.Error("no observations should fail")
	}
	if _, err := NLLS(model, []float64{1}, nil, nil); err == nil {
		t.Error("no parameters should fail")
	}
}

func TestNLLSAlreadyConverged(t *testing.T) {
	// Starting at the exact optimum must terminate quickly and keep RSS ≈ 0.
	xs := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	model := func(p []float64, i int) float64 { return p[0] * xs[i] }
	res, err := NLLS(model, y, []float64{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RSS > 1e-18 {
		t.Errorf("RSS = %v, want ≈0", res.RSS)
	}
}
