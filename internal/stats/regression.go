package stats

import (
	"errors"
	"fmt"
	"math"
)

// LinearFit is the result of an ordinary least-squares regression.
type LinearFit struct {
	// Coeffs are the fitted coefficients, one per design-matrix column.
	Coeffs []float64
	// Residuals are y − X·coeffs on the training data.
	Residuals []float64
	// RSS is the residual sum of squares.
	RSS float64
	// R2 is the coefficient of determination on the training data.
	R2 float64
}

// OLS fits y ≈ X·β by ordinary least squares using a Householder QR
// decomposition (numerically stabler than the normal equations). X must
// already include an intercept column if one is wanted; see DesignMatrix.
func OLS(x *Matrix, y []float64) (*LinearFit, error) {
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("stats: OLS has %d rows but %d targets", x.Rows(), len(y))
	}
	if x.Rows() < x.Cols() {
		return nil, fmt.Errorf("stats: OLS needs at least %d observations, got %d", x.Cols(), x.Rows())
	}
	qr, err := DecomposeQR(x)
	if err != nil {
		return nil, err
	}
	beta, err := qr.Solve(y)
	if err != nil {
		return nil, err
	}
	pred, err := x.MulVec(beta)
	if err != nil {
		return nil, err
	}
	fit := &LinearFit{Coeffs: beta, Residuals: make([]float64, len(y))}
	mean := Mean(y)
	tss := 0.0
	for i, v := range y {
		r := v - pred[i]
		fit.Residuals[i] = r
		fit.RSS += r * r
		tss += (v - mean) * (v - mean)
	}
	if tss > 0 {
		fit.R2 = 1 - fit.RSS/tss
	}
	return fit, nil
}

// NonNegativeOLS fits y ≈ X·β subject to β ≥ 0 for the columns listed in
// constrained (indices into the design matrix). It uses an active-set
// strategy: fit unconstrained, clamp the most negative constrained
// coefficient to zero by removing its column, and repeat. The paper's
// physical coefficients (power per unit CPU, per unit bandwidth, …) are
// non-negative by construction, and Tables III/IV contain exact zeros
// (e.g. β(i) on the target, γ(t) on the target) that this reproduces.
func NonNegativeOLS(x *Matrix, y []float64, constrained []int) (*LinearFit, error) {
	active := make(map[int]bool) // columns forced to zero
	isConstrained := make(map[int]bool, len(constrained))
	for _, c := range constrained {
		if c < 0 || c >= x.Cols() {
			return nil, fmt.Errorf("stats: constrained column %d out of range", c)
		}
		isConstrained[c] = true
	}

	for iter := 0; iter <= x.Cols(); iter++ {
		// Build the reduced design without the zeroed columns.
		keep := make([]int, 0, x.Cols())
		for j := 0; j < x.Cols(); j++ {
			if !active[j] {
				keep = append(keep, j)
			}
		}
		if len(keep) == 0 {
			return nil, errors.New("stats: all columns constrained to zero")
		}
		red := NewMatrix(x.Rows(), len(keep))
		for i := 0; i < x.Rows(); i++ {
			for jj, j := range keep {
				red.Set(i, jj, x.At(i, j))
			}
		}
		fit, err := OLS(red, y)
		if err != nil {
			return nil, err
		}
		// Find the most negative constrained coefficient.
		worst, worstVal := -1, 0.0
		for jj, j := range keep {
			if isConstrained[j] && fit.Coeffs[jj] < worstVal {
				worst, worstVal = j, fit.Coeffs[jj]
			}
		}
		if worst < 0 {
			// Feasible: expand back to full coefficient vector.
			full := make([]float64, x.Cols())
			for jj, j := range keep {
				full[j] = fit.Coeffs[jj]
			}
			fit.Coeffs = full
			return fit, nil
		}
		active[worst] = true
	}
	return nil, errors.New("stats: non-negative OLS did not converge")
}

// DesignMatrix builds a design matrix from feature rows, optionally
// prepending an intercept column of ones (the paper's constants C).
func DesignMatrix(features [][]float64, intercept bool) (*Matrix, error) {
	if len(features) == 0 {
		return nil, errors.New("stats: no feature rows")
	}
	cols := len(features[0])
	off := 0
	if intercept {
		off = 1
	}
	m := NewMatrix(len(features), cols+off)
	for i, row := range features {
		if len(row) != cols {
			return nil, fmt.Errorf("stats: feature row %d has %d values, want %d", i, len(row), cols)
		}
		if intercept {
			m.Set(i, 0, 1)
		}
		for j, v := range row {
			m.Set(i, j+off, v)
		}
	}
	return m, nil
}

// Model is a residual function for non-linear least squares: given the
// parameter vector, it returns the model prediction for observation i.
type Model func(params []float64, i int) float64

// NLLSOptions tunes the Levenberg–Marquardt solver.
type NLLSOptions struct {
	MaxIter  int     // maximum outer iterations (default 200)
	Tol      float64 // relative RSS improvement to declare convergence (default 1e-10)
	Lambda0  float64 // initial damping (default 1e-3)
	FDelta   float64 // finite-difference step (default 1e-6)
	MaxBoost int     // damping increases allowed per iteration (default 30)
}

func (o *NLLSOptions) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Lambda0 <= 0 {
		o.Lambda0 = 1e-3
	}
	if o.FDelta <= 0 {
		o.FDelta = 1e-6
	}
	if o.MaxBoost <= 0 {
		o.MaxBoost = 30
	}
}

// NLLSResult is the outcome of a non-linear least-squares fit.
type NLLSResult struct {
	Params []float64
	RSS    float64
	Iters  int
}

// NLLS fits model parameters minimising Σᵢ (yᵢ − f(p, i))² with damped
// Gauss-Newton (Levenberg–Marquardt), using forward finite differences for
// the Jacobian. The paper fits its per-phase coefficients with "the Non
// Linear Least Square algorithm"; for the linear forms of Eqs. 5–7 this
// reduces to OLS but NLLS also covers the exponent-bearing ground-truth
// calibration used in tests.
func NLLS(model Model, y []float64, p0 []float64, opts *NLLSOptions) (*NLLSResult, error) {
	if len(y) == 0 {
		return nil, errors.New("stats: NLLS needs observations")
	}
	if len(p0) == 0 {
		return nil, errors.New("stats: NLLS needs at least one parameter")
	}
	var o NLLSOptions
	if opts != nil {
		o = *opts
	}
	o.defaults()

	n, m := len(y), len(p0)
	p := append([]float64(nil), p0...)

	residuals := func(params []float64) ([]float64, float64) {
		r := make([]float64, n)
		rss := 0.0
		for i := 0; i < n; i++ {
			r[i] = y[i] - model(params, i)
			rss += r[i] * r[i]
		}
		return r, rss
	}

	r, rss := residuals(p)
	lambda := o.Lambda0

	iter := 0
	for ; iter < o.MaxIter; iter++ {
		// Jacobian by forward differences: J[i][j] = ∂f(p,i)/∂p[j].
		jac := NewMatrix(n, m)
		for j := 0; j < m; j++ {
			h := o.FDelta * math.Max(1, math.Abs(p[j]))
			pj := p[j]
			p[j] = pj + h
			for i := 0; i < n; i++ {
				jac.Set(i, j, (model(p, i)-(y[i]-r[i]))/h)
			}
			p[j] = pj
		}

		// Solve the damped normal equations (JᵀJ + λ·diag(JᵀJ)) δ = Jᵀr
		// via an augmented least-squares system [J; √λ·D] δ = [r; 0],
		// which reuses the QR solver and stays numerically stable.
		improved := false
		for boost := 0; boost < o.MaxBoost; boost++ {
			aug := NewMatrix(n+m, m)
			rhs := make([]float64, n+m)
			for i := 0; i < n; i++ {
				for j := 0; j < m; j++ {
					aug.Set(i, j, jac.At(i, j))
				}
				rhs[i] = r[i]
			}
			for j := 0; j < m; j++ {
				colNorm := 0.0
				for i := 0; i < n; i++ {
					colNorm += jac.At(i, j) * jac.At(i, j)
				}
				d := math.Sqrt(lambda * math.Max(colNorm, 1e-12))
				aug.Set(n+j, j, d)
			}
			qr, err := DecomposeQR(aug)
			if err != nil {
				return nil, err
			}
			delta, err := qr.Solve(rhs)
			if err != nil {
				lambda *= 10
				continue
			}
			trial := make([]float64, m)
			for j := 0; j < m; j++ {
				trial[j] = p[j] + delta[j]
			}
			_, trialRSS := residuals(trial)
			if trialRSS < rss {
				rel := (rss - trialRSS) / math.Max(rss, 1e-300)
				p = trial
				r, rss = residuals(p)
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				if rel < o.Tol {
					return &NLLSResult{Params: p, RSS: rss, Iters: iter + 1}, nil
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			break // damping exhausted: local minimum
		}
	}
	return &NLLSResult{Params: p, RSS: rss, Iters: iter}, nil
}
