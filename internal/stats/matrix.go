package stats

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("stats: invalid matrix dimensions %d×%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices, which must all have the
// same length.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("stats: no rows")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("stats: index (%d,%d) out of bounds for %d×%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// MulVec returns m · x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("stats: MulVec dimension mismatch: %d×%d matrix, vector length %d", m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Mul returns m · b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("stats: Mul dimension mismatch: %d×%d by %d×%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*b.cols : (i+1)*b.cols]
			for j, v := range brow {
				orow[j] += a * v
			}
		}
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// vector helpers shared across the package

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }
