package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %d×%d, want 2×3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Errorf("Row(1) = %v, want [0 0 7]", row)
	}
	// Row returns a copy.
	row[0] = 99
	if m.At(1, 0) != 0 {
		t.Error("Row must return a copy, mutation leaked into the matrix")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := MatrixFromRows(nil); err == nil {
		t.Error("empty input should fail")
	}
}

func TestMatrixOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds access")
		}
	}()
	NewMatrix(2, 2).At(2, 0)
}

func TestMulVec(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got, err := m.MulVec([]float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestMul(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("(AB)[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 1)); err == nil {
		t.Error("inner-dimension mismatch should fail")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose dims = %d×%d, want 3×2", at.Rows(), at.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Errorf("Aᵀ[%d][%d] mismatch", j, i)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(6)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		tt := m.Transpose().Transpose()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if tt.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQRReconstruction(t *testing.T) {
	// Property: for random full-rank A, ‖A − Q·R‖_F is tiny and QᵀQ = I.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(8)
		n := 1 + rng.Intn(m)
		a := NewMatrix(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		qr, err := DecomposeQR(a)
		if err != nil {
			return false
		}
		q := qr.Q()
		r := qr.R()
		prod, err := q.Mul(r)
		if err != nil {
			return false
		}
		diff := 0.0
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				d := prod.At(i, j) - a.At(i, j)
				diff += d * d
			}
		}
		if math.Sqrt(diff) > 1e-9*(1+a.FrobeniusNorm()) {
			return false
		}
		// Orthonormality of the thin Q.
		qtq, err := q.Transpose().Mul(q)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(qtq.At(i, j), want, 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQRSolveExact(t *testing.T) {
	// 2x + 3y = 8, 4x + y = 6, overdetermined with a consistent third row.
	a, _ := MatrixFromRows([][]float64{{2, 3}, {4, 1}, {6, 4}})
	b := []float64{8, 6, 14}
	qr, err := DecomposeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := qr.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-9) || !almostEq(x[1], 2, 1e-9) {
		t.Errorf("solution = %v, want [1 2]", x)
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Second column is 2× the first.
	a, _ := MatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	qr, err := DecomposeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qr.Solve([]float64{1, 2, 3}); err != ErrRankDeficient {
		t.Errorf("Solve on rank-deficient matrix = %v, want ErrRankDeficient", err)
	}
}

func TestQRWideMatrixRejected(t *testing.T) {
	if _, err := DecomposeQR(NewMatrix(2, 3)); err == nil {
		t.Error("QR of a wide matrix should be rejected")
	}
}

func TestQRZeroColumn(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{0, 1}, {0, 2}, {0, 3}})
	qr, err := DecomposeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qr.Solve([]float64{1, 2, 3}); err != ErrRankDeficient {
		t.Errorf("zero column should be rank deficient, got %v", err)
	}
}
