package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest value in xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// ErrLengthMismatch reports paired slices of different lengths.
var ErrLengthMismatch = errors.New("stats: predicted and actual lengths differ")

// MAE returns the mean absolute error between predictions and actuals.
func MAE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, ErrLengthMismatch
	}
	if len(actual) == 0 {
		return 0, errors.New("stats: MAE of empty series")
	}
	s := 0.0
	for i := range actual {
		s += math.Abs(predicted[i] - actual[i])
	}
	return s / float64(len(actual)), nil
}

// RMSE returns the root mean square error between predictions and actuals.
func RMSE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, ErrLengthMismatch
	}
	if len(actual) == 0 {
		return 0, errors.New("stats: RMSE of empty series")
	}
	s := 0.0
	for i := range actual {
		d := predicted[i] - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(actual))), nil
}

// NRMSE returns the RMSE normalised by the range (max−min) of the actual
// values, the normalisation the paper uses for its headline accuracy
// numbers (Tables V and VII). The result is a fraction: 0.118 for the
// paper's "11.8%".
func NRMSE(predicted, actual []float64) (float64, error) {
	r, err := RMSE(predicted, actual)
	if err != nil {
		return 0, err
	}
	span := Max(actual) - Min(actual)
	if span == 0 {
		return 0, errors.New("stats: NRMSE undefined for constant actuals")
	}
	return r / span, nil
}

// ErrorReport bundles the three metrics the paper reports per model.
type ErrorReport struct {
	MAE   float64
	RMSE  float64
	NRMSE float64
}

// Errors computes MAE, RMSE and NRMSE in one pass over the pair of series.
func Errors(predicted, actual []float64) (ErrorReport, error) {
	var rep ErrorReport
	var err error
	if rep.MAE, err = MAE(predicted, actual); err != nil {
		return rep, err
	}
	if rep.RMSE, err = RMSE(predicted, actual); err != nil {
		return rep, err
	}
	if rep.NRMSE, err = NRMSE(predicted, actual); err != nil {
		return rep, err
	}
	return rep, nil
}

// VarianceConverged implements the paper's repeat-until-stable rule: an
// experiment is repeated until the variance of the collected runs changes
// by less than tol (the paper uses 10%) when the latest run is added, with
// a floor of minRuns (the paper observed "at least ten runs").
func VarianceConverged(runs []float64, minRuns int, tol float64) bool {
	if len(runs) < minRuns || len(runs) < 2 {
		return false
	}
	prev := Variance(runs[:len(runs)-1])
	cur := Variance(runs)
	if prev == 0 {
		return cur == 0
	}
	return math.Abs(cur-prev)/prev < tol
}
