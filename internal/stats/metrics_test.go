package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if s := StdDev(xs); !almostEq(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
	if Min(xs) != 2 || Max(xs) != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", Min(xs), Max(xs))
	}
	if med := Median(xs); med != 4.5 {
		t.Errorf("Median = %v, want 4.5", med)
	}
	if med := Median([]float64{3, 1, 2}); med != 2 {
		t.Errorf("odd Median = %v, want 2", med)
	}
}

func TestDescriptiveEdgeCases(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of one sample should be 0")
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) should be 0")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestMAEAndRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	act := []float64{2, 2, 5}
	mae, err := MAE(pred, act)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(mae, 1, 1e-12) {
		t.Errorf("MAE = %v, want 1", mae)
	}
	rmse, err := RMSE(pred, act)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rmse, math.Sqrt(5.0/3.0), 1e-12) {
		t.Errorf("RMSE = %v, want %v", rmse, math.Sqrt(5.0/3.0))
	}
}

func TestNRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	act := []float64{2, 2, 5} // range = 3
	n, err := NRMSE(pred, act)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(5.0/3.0) / 3
	if !almostEq(n, want, 1e-12) {
		t.Errorf("NRMSE = %v, want %v", n, want)
	}
	if _, err := NRMSE([]float64{1, 1}, []float64{2, 2}); err == nil {
		t.Error("constant actuals should make NRMSE undefined")
	}
}

func TestErrorMetricsValidation(t *testing.T) {
	if _, err := MAE([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("MAE mismatch error = %v", err)
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("empty RMSE should fail")
	}
	if _, err := MAE(nil, nil); err == nil {
		t.Error("empty MAE should fail")
	}
}

func TestErrorsBundle(t *testing.T) {
	rep, err := Errors([]float64{1, 2, 3}, []float64{2, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MAE != 1 {
		t.Errorf("bundle MAE = %v", rep.MAE)
	}
	if rep.RMSE <= 0 || rep.NRMSE <= 0 {
		t.Errorf("bundle RMSE/NRMSE = %v/%v, want > 0", rep.RMSE, rep.NRMSE)
	}
}

func TestRMSEAtLeastMAE(t *testing.T) {
	// Property: RMSE ≥ MAE always (power-mean inequality).
	f := func(a, b, c, d float64) bool {
		pred := []float64{a, b}
		act := []float64{c, d}
		for _, v := range append(pred, act...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip degenerate float inputs
			}
		}
		mae, err1 := MAE(pred, act)
		rmse, err2 := RMSE(pred, act)
		if err1 != nil || err2 != nil {
			return false
		}
		return rmse >= mae-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerfectPredictionZeroErrors(t *testing.T) {
	f := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		s := []float64{a, b, c}
		mae, _ := MAE(s, s)
		rmse, _ := RMSE(s, s)
		return mae == 0 && rmse == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarianceConverged(t *testing.T) {
	// Identical runs: variance is 0 before and after, considered converged
	// once minRuns reached.
	same := []float64{5, 5, 5, 5, 5, 5, 5, 5, 5, 5}
	if !VarianceConverged(same, 10, 0.1) {
		t.Error("constant runs should be converged at minRuns")
	}
	if VarianceConverged(same[:9], 10, 0.1) {
		t.Error("fewer than minRuns must not be converged")
	}
	// A wildly different new value should break convergence.
	jumpy := append(append([]float64{}, same...), 500)
	if VarianceConverged(jumpy, 10, 0.1) {
		t.Error("a large jump in variance must not be converged")
	}
	// Small jitter around a mean converges.
	stable := []float64{100, 101, 99, 100.5, 99.5, 100.2, 99.8, 100.1, 99.9, 100, 100.05}
	if !VarianceConverged(stable, 10, 0.1) {
		t.Error("stable runs should converge")
	}
	if VarianceConverged([]float64{1}, 1, 0.1) {
		t.Error("a single run can never be converged")
	}
}
