// Package stats implements the numerical estimation tools the paper's
// evaluation relies on and which have no Go standard-library equivalent:
// dense linear algebra (Householder QR), ordinary least squares, damped
// Gauss-Newton non-linear least squares, the error metrics used in
// Tables V and VII (MAE, RMSE, NRMSE), and the variance-convergence rule
// that decides how many experimental runs are enough.
//
// Position in the data flow (see ARCHITECTURE.md): stats is a leaf
// dependency with no knowledge of migrations or power — internal/core and
// internal/baseline fit their models through OLS/Gauss-Newton here, and
// sim.RunRepeated stops repeating when VarianceConverged says the paper's
// 10% rule holds. Entry points: NewMatrix, OLS, NLLS, MAE, RMSE, NRMSE,
// VarianceConverged.
package stats
