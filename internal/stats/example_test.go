package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

func ExampleOLS() {
	// Fit P = α·cpu + C from four observations.
	x, _ := stats.MatrixFromRows([][]float64{
		{1, 0}, {1, 8}, {1, 16}, {1, 32},
	})
	y := []float64{440, 551, 662, 884}
	fit, _ := stats.OLS(x, y)
	fmt.Printf("C=%.1f alpha=%.2f\n", fit.Coeffs[0], fit.Coeffs[1])
	// Output: C=440.0 alpha=13.88
}

func ExampleNRMSE() {
	predicted := []float64{25_000, 40_000, 50_000}
	actual := []float64{25_800, 39_900, 50_400}
	n, _ := stats.NRMSE(predicted, actual)
	fmt.Printf("%.1f%%\n", n*100)
	// Output: 2.1%
}

func ExampleVarianceConverged() {
	// Nine stable runs, then a tenth consistent with them: adding it
	// barely moves the sample variance.
	runs := []float64{25_800, 25_900, 25_750, 25_820, 25_810,
		25_790, 25_830, 25_780, 25_840, 25_760}
	fmt.Println(stats.VarianceConverged(runs, 10, 0.10))
	// Output: true
}
