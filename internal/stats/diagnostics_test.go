package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Errorf("perfectly correlated r = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(x, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("anti-correlated r = %v, want -1", r)
	}
}

func TestPearsonBounds(t *testing.T) {
	// Property: |r| ≤ 1 for any non-degenerate pair.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r, err := Pearson(x, y)
		if err != nil {
			return true // degenerate draw, fine
		}
		return r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Error("length mismatch not reported")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point must fail")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant series must fail")
	}
}

func TestResiduals(t *testing.T) {
	rs := []float64{-1, 1, -2, 2, 0}
	sum, err := Residuals(rs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mean != 0 {
		t.Errorf("mean = %v", sum.Mean)
	}
	if sum.MaxAbs != 2 {
		t.Errorf("maxabs = %v", sum.MaxAbs)
	}
	if math.Abs(sum.Skew) > 1e-12 {
		t.Errorf("symmetric residuals skew = %v, want 0", sum.Skew)
	}
	skewed := []float64{-0.1, -0.1, -0.1, -0.1, 10}
	sum, err = Residuals(skewed)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Skew <= 0 {
		t.Errorf("right-skewed residuals reported skew %v", sum.Skew)
	}
	if _, err := Residuals([]float64{1}); err == nil {
		t.Error("single residual must fail")
	}
}

func TestKFold(t *testing.T) {
	folds, err := KFold(10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("%d folds, want 3", len(folds))
	}
	seen := map[int]int{}
	for _, fold := range folds {
		for _, i := range fold {
			seen[i]++
		}
	}
	if len(seen) != 10 {
		t.Errorf("%d distinct indices, want 10", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("index %d appears %d times", i, c)
		}
	}
	// Balanced: sizes 4,3,3 in some order.
	sizes := []int{len(folds[0]), len(folds[1]), len(folds[2])}
	total := sizes[0] + sizes[1] + sizes[2]
	if total != 10 {
		t.Errorf("fold sizes %v", sizes)
	}
	for _, s := range sizes {
		if s < 3 || s > 4 {
			t.Errorf("unbalanced folds %v", sizes)
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	if _, err := KFold(5, 1, 1); err == nil {
		t.Error("k=1 must fail")
	}
	if _, err := KFold(2, 3, 1); err == nil {
		t.Error("more folds than items must fail")
	}
}

func TestKFoldDeterministic(t *testing.T) {
	a, _ := KFold(20, 4, 7)
	b, _ := KFold(20, 4, 7)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("non-deterministic folds")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("non-deterministic folds")
			}
		}
	}
}
