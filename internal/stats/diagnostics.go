package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Pearson returns the sample Pearson correlation coefficient of two
// equal-length series. It errors on length mismatch, fewer than two
// points, or a zero-variance series.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	if len(x) < 2 {
		return 0, errors.New("stats: Pearson needs at least two points")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: Pearson undefined for a constant series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ResidualSummary characterises a fit's residuals for diagnostics.
type ResidualSummary struct {
	Mean   float64
	StdDev float64
	MaxAbs float64
	// Skew is the sample skewness; a well-behaved linear fit has residuals
	// roughly symmetric around zero.
	Skew float64
}

// Residuals summarises residuals (predicted − actual would do equally; the
// summary is sign-symmetric except for Mean and Skew).
func Residuals(rs []float64) (ResidualSummary, error) {
	if len(rs) < 2 {
		return ResidualSummary{}, errors.New("stats: need at least two residuals")
	}
	var out ResidualSummary
	out.Mean = Mean(rs)
	out.StdDev = StdDev(rs)
	for _, r := range rs {
		if a := math.Abs(r); a > out.MaxAbs {
			out.MaxAbs = a
		}
	}
	if out.StdDev > 0 {
		var s3 float64
		for _, r := range rs {
			d := (r - out.Mean) / out.StdDev
			s3 += d * d * d
		}
		out.Skew = s3 / float64(len(rs))
	}
	return out, nil
}

// KFold produces k disjoint index folds over n items, shuffled with the
// seed. Every index appears in exactly one fold; fold sizes differ by at
// most one. It errors when k is out of range.
func KFold(n, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, errors.New("stats: k-fold needs k ≥ 2")
	}
	if k > n {
		return nil, fmt.Errorf("stats: cannot split %d items into %d folds", n, k)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, j := range idx {
		folds[i%k] = append(folds[i%k], j)
	}
	return folds, nil
}
