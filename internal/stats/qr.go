package stats

import (
	"errors"
	"math"
)

// QR holds a Householder QR decomposition of an m×n matrix A with m ≥ n:
// A = Q·R where Q is m×m orthogonal and R is m×n upper triangular. The
// factors are stored compactly; Q is only materialised on demand.
type QR struct {
	qr   *Matrix   // R in the upper triangle, Householder vectors below
	tau  []float64 // scaling factor of each reflector
	m, n int
}

// ErrRankDeficient is returned when the design matrix does not have full
// column rank, i.e. some regressor is (numerically) a linear combination of
// the others. Callers typically drop or regularise features on this error.
var ErrRankDeficient = errors.New("stats: matrix is rank deficient")

// DecomposeQR computes the Householder QR decomposition of a. It requires
// at least as many rows as columns.
func DecomposeQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, errors.New("stats: QR requires rows >= cols")
	}
	qr := a.Clone()
	tau := make([]float64, n)

	for k := 0; k < n; k++ {
		// Build the Householder reflector that zeroes column k below the
		// diagonal.
		normX := 0.0
		for i := k; i < m; i++ {
			v := qr.At(i, k)
			normX += v * v
		}
		normX = math.Sqrt(normX)
		if normX == 0 {
			tau[k] = 0
			continue
		}
		alpha := qr.At(k, k)
		if alpha > 0 {
			normX = -normX
		}
		// v = x - normX * e1, normalised so v[0] = 1.
		v0 := alpha - normX
		qr.Set(k, k, normX)
		for i := k + 1; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/v0)
		}
		tau[k] = -v0 / normX

		// Apply the reflector to the remaining columns:
		// A := (I - tau v vᵀ) A.
		for j := k + 1; j < n; j++ {
			s := qr.At(k, j)
			for i := k + 1; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s *= tau[k]
			qr.Set(k, j, qr.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)-s*qr.At(i, k))
			}
		}
	}
	return &QR{qr: qr, tau: tau, m: m, n: n}, nil
}

// R returns the n×n upper-triangular factor.
func (q *QR) R() *Matrix {
	r := NewMatrix(q.n, q.n)
	for i := 0; i < q.n; i++ {
		for j := i; j < q.n; j++ {
			r.Set(i, j, q.qr.At(i, j))
		}
	}
	return r
}

// Q returns the m×n "thin" orthonormal factor.
func (q *QR) Q() *Matrix {
	// Start from the first n columns of the identity and apply the
	// reflectors in reverse order.
	out := NewMatrix(q.m, q.n)
	for i := 0; i < q.n; i++ {
		out.Set(i, i, 1)
	}
	for k := q.n - 1; k >= 0; k-- {
		if q.tau[k] == 0 {
			continue
		}
		for j := 0; j < q.n; j++ {
			s := out.At(k, j)
			for i := k + 1; i < q.m; i++ {
				s += q.qr.At(i, k) * out.At(i, j)
			}
			s *= q.tau[k]
			out.Set(k, j, out.At(k, j)-s)
			for i := k + 1; i < q.m; i++ {
				out.Set(i, j, out.At(i, j)-s*q.qr.At(i, k))
			}
		}
	}
	return out
}

// applyQT overwrites b with Qᵀ·b.
func (q *QR) applyQT(b []float64) {
	for k := 0; k < q.n; k++ {
		if q.tau[k] == 0 {
			continue
		}
		s := b[k]
		for i := k + 1; i < q.m; i++ {
			s += q.qr.At(i, k) * b[i]
		}
		s *= q.tau[k]
		b[k] -= s
		for i := k + 1; i < q.m; i++ {
			b[i] -= s * q.qr.At(i, k)
		}
	}
}

// Solve returns the least-squares solution x minimising ‖Ax − b‖₂.
// It returns ErrRankDeficient when R has a (numerically) zero diagonal.
func (q *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != q.m {
		return nil, errors.New("stats: QR.Solve right-hand side has wrong length")
	}
	// Per-column relative tolerance: a diagonal entry is "zero" when it is
	// tiny against its own column's norm in R. A global tolerance would
	// miss collinear columns whose magnitude dwarfs the others (e.g. a
	// bandwidth regressor in bit/s next to a unit intercept).
	colNorm := make([]float64, q.n)
	anySignal := false
	for j := 0; j < q.n; j++ {
		s := 0.0
		for i := 0; i <= j; i++ {
			v := q.qr.At(i, j)
			s += v * v
		}
		colNorm[j] = math.Sqrt(s)
		if colNorm[j] > 0 {
			anySignal = true
		}
	}
	if !anySignal {
		return nil, ErrRankDeficient
	}

	work := make([]float64, q.m)
	copy(work, b)
	q.applyQT(work)

	x := make([]float64, q.n)
	for i := q.n - 1; i >= 0; i-- {
		d := q.qr.At(i, i)
		if math.Abs(d) <= 1e-10*colNorm[i] {
			return nil, ErrRankDeficient
		}
		s := work[i]
		for j := i + 1; j < q.n; j++ {
			s -= q.qr.At(i, j) * x[j]
		}
		x[i] = s / d
	}
	return x, nil
}
