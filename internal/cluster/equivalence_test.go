package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/consolidation"
	"repro/internal/migration"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// randomFleet builds a seeded random — but always valid — cluster
// timeline: single-switch machine mix, phased guests, and either an
// explicit concurrent move schedule or a periodic policy. Dirty ratios
// stay low so every lowered migration is a cheap CPU-type kernel run.
func randomFleet(r *rand.Rand) Config {
	machines := []string{"m01", "m02", "h1"} // all on one switch
	n := 4 + r.Intn(9)
	hosts := make([]Host, n)
	type placed struct{ vm, host string }
	var guests []placed
	for i := range hosts {
		name := fmt.Sprintf("rh%02d", i)
		hosts[i] = Host{Name: name, Machine: machines[r.Intn(len(machines))]}
		for v := 0; v < r.Intn(3); v++ {
			vm := VM{
				Name:       fmt.Sprintf("rv%02d-%d", i, v),
				MemBytes:   gib(2 + float64(r.Intn(3))),
				BusyVCPUs:  1 + float64(r.Intn(10)),
				DirtyRatio: units.Fraction(0.08 * r.Float64()),
			}
			for p := 0; p < r.Intn(3); p++ {
				kinds := workload.PhaseKinds()
				vm.Phases = append(vm.Phases, workload.Phase{
					Kind:     kinds[r.Intn(len(kinds))],
					Duration: time.Duration(30+r.Intn(270)) * time.Second,
					Level:    0.3 + r.Float64(),
					Peak:     0.5 + 1.5*r.Float64(),
				})
			}
			hosts[i].VMs = append(hosts[i].VMs, vm)
			guests = append(guests, placed{vm.Name, name})
		}
	}
	cfg := Config{
		Kind:  migration.Live,
		Hosts: hosts,
		Seed:  r.Int63n(1 << 32),
	}
	if len(guests) >= 2 && r.Intn(3) == 0 {
		// Policy variant: periodic re-planning over the random fleet.
		if r.Intn(2) == 0 {
			cfg.Policy = consolidation.EnergyAware{Model: consolidation.HeuristicCost{}}
		} else {
			cfg.Policy = consolidation.FirstFitDecreasing{Model: consolidation.HeuristicCost{}}
		}
		cfg.PolicyConfig = consolidation.Config{Horizon: 24 * time.Hour, MaxMoves: 1 + r.Intn(4)}
		cfg.Tick = time.Duration(30+r.Intn(60)) * time.Second
		cfg.Horizon = time.Duration(2+r.Intn(3)) * time.Minute
		return cfg
	}
	// Explicit variant: a random subset of guests each moves once, at a
	// random instant; same-instant moves contend on the shared switch.
	for _, g := range guests {
		if r.Intn(2) == 1 {
			continue
		}
		to := g.host
		for to == g.host {
			to = hosts[r.Intn(n)].Name
		}
		cfg.Moves = append(cfg.Moves, TimedMove{
			VM: g.vm, From: g.host, To: to,
			At: time.Duration(r.Intn(4800)) * 50 * time.Millisecond,
		})
	}
	if len(cfg.Moves) == 0 && len(guests) > 0 {
		g := guests[0]
		to := g.host
		for to == g.host {
			to = hosts[r.Intn(n)].Name
		}
		cfg.Moves = append(cfg.Moves, TimedMove{VM: g.vm, From: g.host, To: to})
	}
	return cfg
}

// injectFailures adds a random failure schedule to a generated fleet:
// 1–2 host crashes and up to 2 flight-aborts always, plus an outage
// window on explicit variants (policies plan moves during outages,
// which the engine refuses by design — outage fleets stay explicit).
// Explicit moves are repaired where the schedule statically dooms them:
// moves into a crashed host are dropped, moves inside an outage window
// slip to the restore instant.
func injectFailures(r *rand.Rand, cfg *Config) {
	horizon := cfg.Horizon
	if horizon == 0 {
		for _, m := range cfg.Moves {
			if m.At > horizon {
				horizon = m.At
			}
		}
		horizon += 4 * time.Minute
	}
	var vms []string
	for _, h := range cfg.Hosts {
		for _, v := range h.VMs {
			vms = append(vms, v.Name)
		}
	}
	perm := r.Perm(len(cfg.Hosts))
	for k := 0; k < 1+r.Intn(2) && k < len(perm); k++ {
		host := cfg.Hosts[perm[k]].Name
		at := time.Duration(r.Int63n(int64(horizon)))
		cfg.Failures = append(cfg.Failures, FailureEvent{At: at, Kind: FailHostCrash, Host: host})
		kept := cfg.Moves[:0]
		for _, m := range cfg.Moves {
			if m.To == host && m.At >= at {
				continue
			}
			kept = append(kept, m)
		}
		cfg.Moves = kept
	}
	for k := r.Intn(3); k > 0 && len(vms) > 0; k-- {
		cfg.Failures = append(cfg.Failures, FailureEvent{
			At:   time.Duration(r.Int63n(int64(horizon))),
			Kind: FailFlightAbort,
			VM:   vms[r.Intn(len(vms))],
		})
	}
	if cfg.Policy == nil && r.Intn(2) == 0 {
		// All generator machines share one switch domain.
		const sw = "Cisco Catalyst 3750"
		a := time.Duration(r.Int63n(int64(horizon)))
		b := a + time.Duration(10+r.Intn(50))*time.Second
		cfg.Failures = append(cfg.Failures,
			FailureEvent{At: a, Kind: FailSwitchOutage, Switch: sw},
			FailureEvent{At: b, Kind: FailSwitchRestore, Switch: sw},
		)
		for i := range cfg.Moves {
			if cfg.Moves[i].At >= a && cfg.Moves[i].At < b {
				cfg.Moves[i].At = b
			}
		}
	}
}

// TestSchedulerEquivalence is the tentpole's safety net: on randomized
// fleets, the heap scheduler with its incrementally maintained dirty-set
// policy view, the property-tested full-rebuild fallback (the same view
// planner, reconstructed from scratch every round), and the retained
// linear-scan reference (AoS snapshots through the classic Plan entry
// point) must produce bit-identical reports — the same MigrationRecord
// stream, tick records, shifts, stretches, energies, aborts and SLO
// scores. The second half of the fleets inject random failure schedules
// (crashes, flight-aborts, outage windows), so the equivalence covers
// the abort paths too — crash, abort and outage events must dirty
// exactly the hosts they touch, or the incremental view diverges from
// the rebuilt one here. A fleet where planning legitimately fails must
// fail identically on every path.
func TestSchedulerEquivalence(t *testing.T) {
	cache := sim.NewCache(0)
	r := rand.New(rand.NewSource(20260728))
	fleets, aborted := 0, 0
	for i := 0; i < 22; i++ {
		cfg := randomFleet(r)
		if i >= 10 {
			injectFailures(r, &cfg)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("fleet %d: generator produced an invalid config: %v", i, err)
		}
		fast := cfg
		fast.Cache = cache
		want, errFast := Run(fast)
		rebuild := cfg
		rebuild.Cache = cache
		rebuild.fullRebuild = true
		full, errFull := Run(rebuild)
		ref := cfg
		ref.Cache = cache
		ref.referenceScan = true
		got, errRef := Run(ref)
		if (errFast == nil) != (errRef == nil) || (errFast == nil) != (errFull == nil) ||
			(errFast != nil && (errFast.Error() != errRef.Error() || errFast.Error() != errFull.Error())) {
			t.Fatalf("fleet %d: schedulers disagree on failure:\ndirty-set: %v\nrebuild: %v\nscan: %v", i, errFast, errFull, errRef)
		}
		if errFast != nil {
			continue
		}
		if !reflect.DeepEqual(want, full) {
			t.Errorf("fleet %d (policy=%v, %d moves, %d failures): dirty-set and full-rebuild reports differ:\ndirty-set: %+v\nrebuild: %+v",
				i, cfg.Policy != nil, len(cfg.Moves), len(cfg.Failures), want, full)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("fleet %d (policy=%v, %d moves, %d failures): heap and linear-scan reports differ:\nheap: %+v\nscan: %+v",
				i, cfg.Policy != nil, len(cfg.Moves), len(cfg.Failures), want, got)
		}
		if len(want.Timeline) > 0 {
			fleets++
		}
		aborted += want.AbortedFlights
	}
	if fleets < 10 {
		t.Fatalf("only %d of 22 random fleets migrated anything; generator drift weakens the property", fleets)
	}
	if aborted == 0 {
		t.Fatal("no random failure schedule ever aborted a flight; the abort paths went unexercised")
	}
}

// TestFleetSummaryFields checks the report's fleet-scale aggregates on
// a timeline with known structure: two same-instant moves on one
// switch give peak 2 and a stretch near 2; the policy fixture reports
// its rounds.
func TestFleetSummaryFields(t *testing.T) {
	rep, err := Run(explicitPair(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakFlights != 2 {
		t.Errorf("PeakFlights = %d, want 2 (both moves dispatch at t=0)", rep.PeakFlights)
	}
	if rep.MaxStretch <= 1.5 {
		t.Errorf("MaxStretch = %v, want ≈2 under a shared link", rep.MaxStretch)
	}
	if rep.ReplanRounds != 0 {
		t.Errorf("ReplanRounds = %d on an explicit timeline, want 0", rep.ReplanRounds)
	}

	pol, err := Run(policyFleet())
	if err != nil {
		t.Fatal(err)
	}
	if pol.ReplanRounds != len(pol.Ticks) || pol.ReplanRounds == 0 {
		t.Errorf("ReplanRounds = %d, want len(Ticks) = %d (non-zero)", pol.ReplanRounds, len(pol.Ticks))
	}
	if pol.PeakFlights <= 0 {
		t.Errorf("PeakFlights = %d on a consolidating timeline, want > 0", pol.PeakFlights)
	}
	if pol.MaxStretch < 1 {
		t.Errorf("MaxStretch = %v, want >= 1", pol.MaxStretch)
	}

	// Serial timelines run one migration at a time by construction.
	serial := Config{
		Kind: migration.Live,
		Pair: "m01-m02",
		Hosts: fleet("m01",
			[]VM{vmSpec("va", 4, 0.1)},
			nil,
		),
		Moves:  []TimedMove{{VM: "va", From: "h00", To: "h01"}},
		Serial: true,
		Seed:   9,
	}
	srep, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	if srep.PeakFlights != 1 {
		t.Errorf("serial PeakFlights = %d, want 1", srep.PeakFlights)
	}
}

// TestClusterTickAllocCeiling is the tick-path allocation-regression
// gate: once the engine's scratch buffers are sized, rendering a policy
// snapshot — the per-round O(H) hot path — must not allocate, even with
// pinned in-flight guests and destination reservations in the picture.
func TestClusterTickAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race for the ceiling")
	}
	cfg := policyFleet()
	e, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Exercise the pinned paths: one guest in the air with its
	// destination reservation.
	mover := e.hosts[0].vms[0]
	mover.migrating = true
	dst := e.hosts[3]
	dst.incoming = append(dst.incoming, &flight{vm: mover, resName: mover.Name + "+incoming"})
	e.snapshot(0) // size the scratch buffers
	tick := time.Duration(0)
	const ceiling = 0
	allocs := testing.AllocsPerRun(50, func() {
		tick += 30 * time.Minute
		e.snapshot(tick)
	})
	if allocs > ceiling {
		t.Errorf("snapshot allocates %.0f times per policy round, ceiling is %d", allocs, ceiling)
	}
}

// TestClusterTickAllocCeiling8k scales the allocation gate to fleet
// size on the struct-of-arrays path: once the view arrays are sized, a
// steady-state incremental tick — refresh a few dirty hosts, repair the
// sorted order, rebuild the pinned lists — must allocate O(1),
// independent of the 8,192-host fleet. The small constant ceiling
// covers sort.Slice's closure boxing on the dirty set; anything that
// scales with the host count blows straight through it.
func TestClusterTickAllocCeiling8k(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race for the ceiling")
	}
	e, err := newEngine(sparseFleet(8192))
	if err != nil {
		t.Fatal(err)
	}
	if !e.viewOn {
		t.Fatal("sparse fixture did not enable the incremental view")
	}
	tick := time.Duration(0)
	touch := func() {
		tick += 15 * time.Minute
		for i := 1; i <= 8; i++ {
			e.markHostDirty(e.hosts[(i*997)%len(e.hosts)])
		}
		if !e.viewTick(tick) {
			t.Fatal("a dirty tick reported itself clean")
		}
		e.viewPinnedEvac()
	}
	touch() // size the scratch buffers
	const ceiling = 8
	allocs := testing.AllocsPerRun(50, touch)
	if allocs > ceiling {
		t.Errorf("steady-state view tick allocates %.0f times, ceiling is %d", allocs, ceiling)
	}
}
