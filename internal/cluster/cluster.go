// Package cluster generalises the two-host testbed into an N-host
// discrete-event data-centre simulator. A cluster is a population of
// hosts built from hw catalog machine models, each running VMs whose
// workload intensity may follow a phased timeline (steady, burst,
// diurnal, ramp). The engine advances a continuous timeline through
// three event kinds:
//
//   - policy ticks: a consolidation.Policy re-plans against the current
//     state, with in-flight migrations pinned and their destination
//     capacity reserved;
//   - migration start/finish: every started migration is lowered to a
//     full two-host simulation on the sim kernel (answered through the
//     run cache), which supplies its measured energy, byte volume and
//     phase spans;
//   - workload phase transitions: VM intensity changes that the next
//     snapshot — and therefore the next planning round and the next
//     lowered scenario — observe.
//
// Concurrent migrations whose endpoints hang off the same switch share
// the migration path: the transfer phase of each flight progresses at
// 1/n of its intrinsic rate while n transfers co-occupy the link
// (equal-share processor sharing), so a drain that fires ten moves at
// once measurably contends instead of executing as ten free lunches.
// The per-flight stretch is reported, and the transfer-phase energy is
// scaled by it (transfer power is sustained for stretch times longer).
//
// Topology enters the run-cache key naturally: a lowered scenario's
// Pair field is the source/target machine-model pair ("m01/h1"), which
// is part of sim.Scenario and therefore of the cache identity — two
// host pairs of identical models with identical loads share one
// simulation, two different model pairs never do.
//
// Everything is deterministic: hosts and VMs are iterated in sorted
// order, every migration's seed derives from its global dispatch index,
// and batches fan out through internal/parallel's ordered collection —
// the report is bit-identical for every worker count and cache setting.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/consolidation"
	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// VM is one guest of the cluster: its footprint plus an optional
// intensity timeline.
type VM struct {
	// Name uniquely identifies the VM across the whole cluster.
	Name string
	// MemBytes is the memory image a migration must move.
	MemBytes units.Bytes
	// BusyVCPUs is the baseline CPU demand in busy-vCPU units.
	BusyVCPUs float64
	// DirtyRatio is the baseline steady-state memory dirtying ratio.
	DirtyRatio units.Fraction
	// Phases optionally modulates the baseline over cluster time: the
	// VM's effective demand and dirtying scale with the phase factor at
	// each instant. After the timeline ends the final factor holds.
	Phases []workload.Phase
}

// Validate rejects malformed VM descriptors.
func (v VM) Validate() error {
	switch {
	case v.Name == "":
		return errors.New("cluster: VM has no name")
	case v.MemBytes <= 0:
		return fmt.Errorf("cluster: VM %s has no memory", v.Name)
	case v.BusyVCPUs < 0:
		return fmt.Errorf("cluster: VM %s has negative CPU demand", v.Name)
	case v.DirtyRatio < 0 || v.DirtyRatio > 1:
		return fmt.Errorf("cluster: VM %s dirty ratio %v outside [0,1]", v.Name, v.DirtyRatio)
	}
	for i, p := range v.Phases {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("cluster: VM %s phase %d: %w", v.Name, i, err)
		}
	}
	return nil
}

// factor evaluates the VM's intensity at cluster time t: the phase
// timeline is walked front to back, and the final factor holds once the
// timeline is exhausted. VMs without phases run at factor 1.
func (v VM) factor(t time.Duration) float64 {
	if len(v.Phases) == 0 {
		return 1
	}
	off := t
	for _, p := range v.Phases {
		if off < p.Duration {
			return p.Factor(float64(off) / float64(p.Duration))
		}
		off -= p.Duration
	}
	return v.Phases[len(v.Phases)-1].Factor(1)
}

// busyAt returns the VM's CPU demand at cluster time t.
func (v VM) busyAt(t time.Duration) float64 {
	return v.BusyVCPUs * v.factor(t)
}

// dirtyAt returns the VM's dirty ratio at cluster time t, clamped to a
// physical fraction.
func (v VM) dirtyAt(t time.Duration) units.Fraction {
	return units.Fraction(float64(v.DirtyRatio) * v.factor(t)).Clamp()
}

// Host is one physical machine of the cluster.
type Host struct {
	// Name identifies the host.
	Name string
	// Machine names the hw catalog model this host is an instance of; it
	// supplies capacity, idle power and the switch the host hangs off.
	// Required unless Config.Pair overrides lowering and the explicit
	// capacity fields below are set.
	Machine string
	// Threads, MemBytes and IdlePower override (or, without a Machine,
	// supply) the host capacity and the idle draw reclaimed by emptying
	// the host.
	Threads   int
	MemBytes  units.Bytes
	IdlePower units.Watts
	// Switch overrides the link domain; hosts on one switch share the
	// migration path and contend. Defaults to the machine's switch.
	Switch string
	// VMs are the initially resident guests.
	VMs []VM
}

// resolved is a host with its machine-derived fields filled in.
type resolved struct {
	Host
	sw string // effective link domain
}

// resolve fills the host's capacity fields from its machine model and
// validates the result. The catalog is passed in because fleet-scale
// configs resolve thousands of hosts per run and hw.Catalog builds a
// fresh map per call.
func (h Host) resolve(cat map[string]hw.MachineSpec) (resolved, error) {
	out := resolved{Host: h}
	if h.Name == "" {
		return out, errors.New("cluster: host has no name")
	}
	if h.Machine != "" {
		spec, ok := cat[h.Machine]
		if !ok {
			return out, fmt.Errorf("cluster: host %s: unknown machine model %q", h.Name, h.Machine)
		}
		if out.Threads == 0 {
			out.Threads = spec.Threads
		}
		if out.MemBytes == 0 {
			out.MemBytes = spec.RAM
		}
		if out.IdlePower == 0 {
			out.IdlePower = spec.IdlePower()
		}
		if out.Switch == "" {
			out.Switch = spec.Switch
		}
	}
	out.sw = out.Switch
	if out.sw == "" {
		out.sw = "switch0"
	}
	switch {
	case out.Threads <= 0:
		return out, fmt.Errorf("cluster: host %s has no CPU capacity (set Machine or Threads)", h.Name)
	case out.MemBytes <= 0:
		return out, fmt.Errorf("cluster: host %s has no memory (set Machine or MemBytes)", h.Name)
	case out.IdlePower <= 0:
		return out, fmt.Errorf("cluster: host %s has no idle power (set Machine or IdlePower)", h.Name)
	}
	seen := map[string]bool{}
	for _, v := range h.VMs {
		if err := v.Validate(); err != nil {
			return out, err
		}
		if seen[v.Name] {
			return out, fmt.Errorf("cluster: duplicate VM %q on host %s", v.Name, h.Name)
		}
		seen[v.Name] = true
	}
	return out, nil
}

// TimedMove is one explicit migration of a cluster timeline.
type TimedMove struct {
	VM, From, To string
	// At is the dispatch instant. Moves sharing an instant start
	// concurrently and contend on shared links.
	At time.Duration
}

// Config describes one cluster timeline.
type Config struct {
	// Hosts is the cluster population.
	Hosts []Host
	// Kind is the migration mechanism for every move (Live or NonLive).
	Kind migration.Kind
	// Pair optionally lowers every move onto one fixed testbed pair
	// instead of the per-host machine models — the two-host
	// approximation dcsim's compatibility wrapper uses. When empty, each
	// move's pair is "srcMachine/dstMachine".
	Pair string
	// Policy re-plans the cluster at every tick; nil disables planning
	// (the timeline then runs the explicit Moves).
	Policy consolidation.Policy
	// PolicyConfig bounds each planning round. The engine adds the
	// in-flight pins itself.
	PolicyConfig consolidation.Config
	// Tick is the re-planning period (required with a Policy).
	Tick time.Duration
	// Horizon bounds the observed timeline: ticks fire at 0, Tick,
	// 2·Tick, … strictly below it, and phase transitions are recorded up
	// to it. Migrations started before the horizon always run to
	// completion, even past it.
	Horizon time.Duration
	// Moves is the explicit migration timeline (mutually exclusive with
	// Policy).
	Moves []TimedMove
	// Failures injects timed failure events — host crashes, flight
	// aborts, switch outage windows — into the timeline (see
	// FailureEvent). Events apply after same-instant flight completions
	// and before same-instant dispatches, and are not bounded by
	// Horizon. Incompatible with Serial.
	Failures []FailureEvent
	// EvacuationDeadline scores host crashes: every orphaned VM must
	// land on a live host within this span of its crash for the
	// report's EvacuationDeadlineMet to hold. Zero means "eventually".
	EvacuationDeadline time.Duration
	// Serial chains the explicit moves back to back — each move starts
	// when the previous one lands, with the state evolved in between —
	// reproducing the two-host executor's one-at-a-time semantics. It
	// requires every move's At to be zero and no VM phases.
	Serial bool
	// Seed derives every migration's simulation seed (dispatch index i
	// uses Seed + i·607, the two-host executor's stride).
	Seed int64
	// Workers bounds how many migration simulations run concurrently
	// (0 = NumCPU, 1 = sequential). Results are bit-identical for every
	// value.
	Workers int
	// Cache optionally memoizes migration simulations (see sim.NewCache).
	Cache *sim.Cache
	// Ctx optionally bounds the timeline's execution: the event loop
	// checks it between events and the kernel fan-out at every dispatch,
	// so a cancelled or deadline-expired context abandons the run with
	// the context's error instead of completing it. nil means
	// context.Background(). Cancellation never changes results — a
	// timeline that completes under any context is bit-identical.
	Ctx context.Context

	// referenceScan selects the retained linear-scan scheduler (O(F²)
	// per event) instead of the heap scheduler. Test-only: the
	// equivalence property test runs every fleet through both and
	// demands bit-identical reports.
	referenceScan bool

	// fullRebuild disables the incremental dirty-set maintenance of the
	// policy view: every planning round rebuilds the whole view from
	// the runtime state. Test-only: the equivalence property test runs
	// fleets through the dirty-set path, this fallback and the linear
	// reference, and demands bit-identical reports.
	fullRebuild bool

	// simOverride replaces the cache/kernel execution of lowered
	// migration scenarios. Test-only: the dispatch-transaction tests
	// inject kernels that fail mid-batch.
	simOverride func(sim.Scenario) (*sim.RunResult, error)
}

// Validate rejects unusable configurations. It is called by Run; callers
// that assemble configs from external data (scenario files) call it
// directly for early, pathed errors.
func (c Config) Validate() error {
	if len(c.Hosts) == 0 {
		return errors.New("cluster: no hosts")
	}
	if c.Kind != migration.Live && c.Kind != migration.NonLive {
		return fmt.Errorf("cluster: unsupported migration kind %v (want live or non-live)", c.Kind)
	}
	if c.Pair != "" {
		src, dst, err := hw.Pair(c.Pair)
		if err != nil {
			return err
		}
		// Every move lowers onto this one pair, so it must be physically
		// linkable or no move can ever simulate.
		if src.Switch != dst.Switch {
			return fmt.Errorf("cluster: pair %q spans switches %q and %q and cannot migrate", c.Pair, src.Switch, dst.Switch)
		}
	}
	cat := hw.Catalog()
	names := make(map[string]bool, len(c.Hosts))
	switches := make(map[string]string, len(c.Hosts)) // declared link-contention domain
	physical := make(map[string]string, len(c.Hosts)) // the machine model's physical switch
	vms := map[string]bool{}
	for _, h := range c.Hosts {
		r, err := h.resolve(cat)
		if err != nil {
			return err
		}
		if c.Pair == "" && h.Machine == "" {
			return fmt.Errorf("cluster: host %s needs a machine model (or set Config.Pair to lower every move onto one testbed pair)", h.Name)
		}
		if names[r.Name] {
			return fmt.Errorf("cluster: duplicate host %q", r.Name)
		}
		names[r.Name] = true
		switches[r.Name] = r.sw
		// A Switch override changes the contention domain, not the
		// physics: without a Pair override, a move still simulates on the
		// machine models, whose catalog switches netsim enforces. Track
		// them separately so an override cannot smuggle an unlinkable
		// pair past the reachability guards below.
		physical[r.Name] = r.sw
		if c.Pair == "" {
			physical[r.Name] = cat[h.Machine].Switch
		}
		for _, v := range h.VMs {
			if vms[v.Name] {
				return fmt.Errorf("cluster: VM %q appears on two hosts", v.Name)
			}
			vms[v.Name] = true
			if c.Serial && len(v.Phases) > 0 {
				return fmt.Errorf("cluster: VM %q has phases; serial timelines are time-invariant", v.Name)
			}
			// Policy snapshots name in-flight destination reservations
			// "<vm>+incoming" in the same namespace as real VMs; a real VM
			// wearing that suffix would silently alias a reservation (and
			// its pin).
			if c.Policy != nil && strings.HasSuffix(v.Name, "+incoming") {
				return fmt.Errorf("cluster: VM name %q ends in \"+incoming\", which is reserved for in-flight reservations in policy timelines", v.Name)
			}
		}
	}
	if c.Policy != nil {
		switch {
		case len(c.Moves) > 0:
			return errors.New("cluster: a policy and explicit moves are mutually exclusive")
		case c.Serial:
			return errors.New("cluster: serial execution needs an explicit move list, not a policy")
		case c.Tick <= 0:
			return errors.New("cluster: a policy needs a positive tick period")
		case c.Horizon <= 0:
			return errors.New("cluster: a policy needs a positive horizon")
		case len(c.Hosts) < 2:
			return errors.New("cluster: planning needs at least two hosts")
		}
		// The built-in policies are topology-blind: on a mixed-switch
		// population they would eventually plan a cross-switch move and
		// abort the whole timeline mid-run. Refuse up front — for the
		// declared domains and the physical ones alike; cross-switch
		// routing is a planned extension (see ROADMAP).
		for _, domain := range []map[string]string{switches, physical} {
			first := domain[c.Hosts[0].Name]
			for _, h := range c.Hosts[1:] {
				if sw := domain[h.Name]; sw != first {
					return fmt.Errorf("cluster: policy-driven timelines need all hosts on one switch; %s is on %q, %s on %q",
						c.Hosts[0].Name, first, h.Name, sw)
				}
			}
		}
	}
	dispatched := map[string]map[time.Duration]bool{} // VM -> dispatch instants
	for i, m := range c.Moves {
		switch {
		case m.VM == "":
			return fmt.Errorf("cluster: move %d has no VM", i)
		case dispatched[m.VM][m.At]:
			return fmt.Errorf("cluster: move %d dispatches VM %q twice at %v", i, m.VM, m.At)
		case !vms[m.VM]:
			return fmt.Errorf("cluster: move %d references unknown VM %q", i, m.VM)
		case !names[m.From]:
			return fmt.Errorf("cluster: move %d references unknown host %q", i, m.From)
		case !names[m.To]:
			return fmt.Errorf("cluster: move %d references unknown host %q", i, m.To)
		case m.From == m.To:
			return fmt.Errorf("cluster: move %d does not change hosts (%q)", i, m.From)
		case m.At < 0:
			return fmt.Errorf("cluster: move %d starts before the timeline (%v)", i, m.At)
		case c.Serial && m.At != 0:
			return fmt.Errorf("cluster: move %d has a start time; serial timelines derive their own", i)
		case switches[m.From] != switches[m.To]:
			return fmt.Errorf("cluster: move %d has no migration path from %s (%s) to %s (%s): different switches",
				i, m.From, switches[m.From], m.To, switches[m.To])
		case physical[m.From] != physical[m.To]:
			return fmt.Errorf("cluster: move %d has no physical migration path from %s (machine switch %q) to %s (machine switch %q)",
				i, m.From, physical[m.From], m.To, physical[m.To])
		}
		if dispatched[m.VM] == nil {
			dispatched[m.VM] = map[time.Duration]bool{}
		}
		dispatched[m.VM][m.At] = true
	}
	return c.validateFailures(names, vms, switches)
}

// sortedHosts returns the resolved hosts in name order.
func (c Config) sortedHosts() ([]*resolved, error) {
	cat := hw.Catalog()
	out := make([]*resolved, 0, len(c.Hosts))
	for _, h := range c.Hosts {
		r, err := h.resolve(cat)
		if err != nil {
			return nil, err
		}
		r.VMs = append([]VM(nil), h.VMs...)
		sort.Slice(r.VMs, func(i, j int) bool { return r.VMs[i].Name < r.VMs[j].Name })
		rr := r
		out = append(out, &rr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
