package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/units"
)

// This file is the engine's failure-injection layer. A timeline may
// declare timed failure events — host crashes, flight aborts, switch
// outage windows — that the discrete-event loop applies between flight
// transitions and new dispatches at each instant. Both schedulers (the
// heap core and the retained linear-scan reference) share every method
// here, so failure handling is bit-identical across them by
// construction; only the removal of an aborted flight from the
// scheduler's own bookkeeping branches on cfg.referenceScan.
//
// Semantics at one instant t, in order:
//
//  1. flights completing exactly at t complete — a transfer is never
//     retroactively aborted by a same-instant failure;
//  2. failure events at t apply, in their (At, declaration) order;
//  3. phase shifts and new dispatches at t observe the post-failure
//     state, so a restore at t re-opens the switch for a dispatch at t
//     and an outage at t closes it (outage windows are [outage,
//     restore)).

// FailureKind enumerates the injectable failure events.
type FailureKind string

const (
	// FailHostCrash drops a host: its resident VMs orphan (they must be
	// evacuated to live hosts), every in-flight migration touching the
	// host aborts, and the host's idle floor leaves the power trace.
	FailHostCrash FailureKind = "host-crash"
	// FailFlightAbort kills the named VM's in-flight migration: the
	// energy spent so far is charged, the VM stays resident on its
	// source, and it is pinned for the next policy round (a one-round
	// cool-down). Naming a VM with no transfer in flight is a no-op.
	FailFlightAbort FailureKind = "flight-abort"
	// FailSwitchOutage takes a link domain down: in-transfer flights on
	// the switch stall (their virtual clock freezes) and no new
	// migration may be admitted onto the switch until it is restored.
	FailSwitchOutage FailureKind = "switch-outage"
	// FailSwitchRestore brings a downed link domain back; stalled
	// transfers resume with their remaining work intact.
	FailSwitchRestore FailureKind = "switch-restore"
)

// FailureEvent is one injected failure of a cluster timeline. Exactly
// one of Host, VM or Switch is set, matching the Kind.
type FailureEvent struct {
	// At is the injection instant. Events sharing an instant apply in
	// declaration order, after any flight completing exactly then.
	At time.Duration
	// Kind selects the event type.
	Kind FailureKind
	// Host names the crashing host (host-crash).
	Host string
	// VM names the transfer to kill (flight-abort).
	VM string
	// Switch names the link domain (switch-outage / switch-restore).
	Switch string
}

// failState is the engine's failure-injection runtime state.
type failState struct {
	events []FailureEvent // sorted stably by At
	fi     int            // cursor into events

	// airborne lists the in-flight migrations in dispatch order — the
	// lookup set for aborts and the stranded sweep at drain time.
	airborne     []*flight
	abortScratch []*flight

	// orphanedAt records when each VM was last stranded by a host
	// crash; evacuatedAt records when it next landed on a live host.
	// A re-crash of the refuge host re-orphans: the orphan instant is
	// overwritten and the evacuation erased.
	orphanedAt  map[string]time.Duration
	evacuatedAt map[string]time.Duration
	// repin holds VMs whose flight just aborted on a live source: they
	// stay pinned for exactly one policy round (cleared after the next
	// tick plans), so a policy cannot instantly re-dispatch a transfer
	// the injector just killed.
	repin map[string]bool

	crashes []crashRecord
}

// crashRecord remembers a crash for the power trace (the host's idle
// floor drops out at the crash instant).
type crashRecord struct {
	at   time.Duration
	host *hostRT
}

// initFailures installs the config's failure schedule into the engine.
func (e *engine) initFailures(events []FailureEvent) {
	if len(events) == 0 {
		return
	}
	e.fail.events = append([]FailureEvent(nil), events...)
	sort.SliceStable(e.fail.events, func(i, j int) bool { return e.fail.events[i].At < e.fail.events[j].At })
	e.fail.orphanedAt = map[string]time.Duration{}
	e.fail.evacuatedAt = map[string]time.Duration{}
	e.fail.repin = map[string]bool{}
}

// switchDown reports whether a link domain is inside an outage window.
func (e *engine) switchDown(name string) bool {
	s, ok := e.switches[name]
	return ok && s.down
}

// applyFailures applies every failure event due at instant t, in (At,
// declaration) order. Called by both schedulers after flight
// transitions and before phase shifts and dispatches.
func (e *engine) applyFailures(t time.Duration) {
	for e.fail.fi < len(e.fail.events) && e.fail.events[e.fail.fi].At <= t {
		ev := e.fail.events[e.fail.fi]
		e.fail.fi++
		switch ev.Kind {
		case FailHostCrash:
			e.crashHost(ev.Host, t)
		case FailFlightAbort:
			e.abortNamed(ev.VM, t)
		case FailSwitchOutage:
			e.switchState(ev.Switch).down = true
		case FailSwitchRestore:
			e.switchState(ev.Switch).down = false
		}
	}
}

// crashHost drops a host: every flight touching it aborts, every
// resident orphans, and the host leaves the idle-power floor.
func (e *engine) crashHost(name string, t time.Duration) {
	h := e.byName[name]
	h.down = true
	if e.viewOn {
		e.markHostDirty(h)
		e.downHosts = append(e.downHosts, h)
	}
	e.fail.crashes = append(e.fail.crashes, crashRecord{at: t, host: h})
	// Collect first, then abort: aborting mutates the airborne list.
	hit := e.fail.abortScratch[:0]
	for _, f := range e.fail.airborne {
		if f.from == h || f.to == h {
			hit = append(hit, f)
		}
	}
	e.fail.abortScratch = hit
	for _, f := range hit {
		e.abortFlight(f, t, "host-crash "+name)
	}
	// Everything resident — including movers the aborts just returned to
	// this source — is orphaned and must be evacuated to a live host.
	for _, v := range h.vms {
		e.fail.orphanedAt[v.Name] = t
		delete(e.fail.evacuatedAt, v.Name)
		delete(e.fail.repin, v.Name)
	}
}

// abortNamed kills the named VM's in-flight migration, if any.
func (e *engine) abortNamed(name string, t time.Duration) {
	for _, f := range e.fail.airborne {
		if f.vm.Name == name {
			e.abortFlight(f, t, "flight-abort")
			return
		}
	}
	// The injection schedule is static but the timeline it hits is not:
	// a VM that already landed (or never launched) is a documented no-op.
}

// abortFlight kills one in-flight migration at instant t: the flight
// leaves the scheduler, the energy spent so far is charged, and the VM
// stays resident on its source (re-pinned for one policy round when the
// source is still alive).
func (e *engine) abortFlight(f *flight, t time.Duration, reason string) {
	if e.cfg.referenceScan {
		for i, g := range e.flights {
			if g == f {
				e.flights = append(e.flights[:i], e.flights[i+1:]...)
				break
			}
		}
	} else if f.state == fTransfer {
		e.switchState(f.sw).heap.remove(f)
	} else {
		e.timed.remove(f)
	}
	energy, phase := e.abortCharge(f, t)
	f.vm.migrating = false
	if e.viewOn {
		// The destination loses its reservation. The source's slots are
		// unchanged (the mover never left), and the repin added below is
		// reflected through viewPinnedEvac at the next round.
		e.markHostDirty(f.to)
		if f.vm.phased {
			f.to.phasedInc--
		}
	}
	if !f.vm.host.down && e.fail.repin != nil {
		e.fail.repin[f.vm.Name] = true
	}
	for i, g := range f.to.incoming {
		if g == f {
			f.to.incoming = append(f.to.incoming[:i], f.to.incoming[i+1:]...)
			break
		}
	}
	e.removeAirborne(f)
	e.inFlight--
	e.rep.Aborted = append(e.rep.Aborted, AbortRecord{
		VM: f.vm.Name, From: f.from.Name, To: f.to.Name, Pair: f.pair,
		Start: f.start, End: t, Phase: phase, Reason: reason, Energy: energy,
	})
}

// abortCharge computes the energy already spent by a flight aborted at
// instant t, from the flight's own spans so both schedulers agree
// bit-for-bit. The kernel's non-transfer energy is spread uniformly
// over the head and tail wall spans; the transfer energy is charged at
// the intrinsic transfer power for every wall second spent in the
// transfer phase — contention stretch (and outage stall) sustain
// transfer power, the same convention record() applies to completed
// flights.
func (e *engine) abortCharge(f *flight, t time.Duration) (units.Joules, string) {
	intrinsicE := f.run.SourceEnergy.Total() + f.run.TargetEnergy.Total()
	transferE := f.run.SourceEnergy.Transfer + f.run.TargetEnergy.Transfer
	nonTransferE := intrinsicE - transferE
	headSpan := f.headEnd - f.start
	ntSpan := headSpan + f.tailSpan
	var ntElapsed, wallTransfer time.Duration
	var phase string
	switch f.state {
	case fHead:
		phase = "head"
		ntElapsed = t - f.start
	case fTransfer:
		phase = "transfer"
		ntElapsed = headSpan
		wallTransfer = t - f.headEnd
	default:
		phase = "tail"
		ntElapsed = headSpan + (t - f.transferEnd)
		wallTransfer = f.transferEnd - f.headEnd
	}
	var charged float64
	if ntSpan > 0 {
		charged += float64(nonTransferE) * (float64(ntElapsed) / float64(ntSpan))
	}
	if f.intrinsic > 0 {
		charged += float64(transferE) * (float64(wallTransfer) / float64(f.intrinsic))
	}
	return units.Joules(charged), phase
}

// removeAirborne drops a flight from the dispatch-ordered airborne
// list.
func (e *engine) removeAirborne(f *flight) {
	a := e.fail.airborne
	for i, g := range a {
		if g == f {
			copy(a[i:], a[i+1:])
			a[len(a)-1] = nil
			e.fail.airborne = a[:len(a)-1]
			return
		}
	}
}

// strandRemaining aborts every flight still airborne when the event
// loop drains — transfers stalled forever on a switch that was never
// restored. Charged like any abort, at the drain instant.
func (e *engine) strandRemaining() {
	for len(e.fail.airborne) > 0 {
		e.abortFlight(e.fail.airborne[0], e.now, "stranded")
	}
}

// scoreSLO fills the report's failure scoring: abort and orphan counts
// and the evacuation-deadline verdict. The verdict holds vacuously when
// nothing crashed; with crashes, every orphaned VM must have landed on
// a live host — within Config.EvacuationDeadline of its crash when a
// deadline is set, eventually otherwise.
func (e *engine) scoreSLO() {
	e.rep.AbortedFlights = len(e.rep.Aborted)
	e.rep.OrphanedVMs = len(e.fail.orphanedAt)
	e.rep.EvacuatedVMs = len(e.fail.evacuatedAt)
	met := true
	for name, at := range e.fail.orphanedAt {
		ev, ok := e.fail.evacuatedAt[name]
		if !ok || (e.cfg.EvacuationDeadline > 0 && ev-at > e.cfg.EvacuationDeadline) {
			met = false
		}
	}
	e.rep.EvacuationDeadlineMet = met
}

// buildPowerTrace assembles the fleet's piecewise-constant power
// timeline: the sum of live hosts' idle floors (a crash drops its
// host's floor at the crash instant) plus each migration's — and each
// aborted flight's — charged energy spread uniformly over its wall
// span. FleetEnergy integrates the trace over [0, max(Makespan,
// Horizon, last breakpoint)]. Every sum runs in a fixed, documented
// order (hosts by name, crashes in event order, migrations in dispatch
// order, aborts in abort order), so the floats are bit-identical across
// schedulers, workers and cache settings.
func (e *engine) buildPowerTrace() {
	type delta struct {
		at time.Duration
		dw float64
	}
	deltas := make([]delta, 0, 1+len(e.fail.crashes)+2*(len(e.rep.Timeline)+len(e.rep.Aborted)))
	base := 0.0
	for _, h := range e.hosts {
		base += float64(h.IdlePower)
	}
	deltas = append(deltas, delta{0, base})
	for _, c := range e.fail.crashes {
		deltas = append(deltas, delta{c.at, -float64(c.host.IdlePower)})
	}
	span := func(start, end time.Duration, energy units.Joules) {
		if d := end - start; d > 0 && energy != 0 {
			p := float64(energy) / d.Seconds()
			deltas = append(deltas, delta{start, p}, delta{end, -p})
		}
	}
	for _, rec := range e.rep.Timeline {
		span(rec.Start, rec.End, rec.Energy)
	}
	for _, a := range e.rep.Aborted {
		span(a.Start, a.End, a.Energy)
	}
	sort.SliceStable(deltas, func(i, j int) bool { return deltas[i].at < deltas[j].at })

	end := e.rep.Makespan
	if e.cfg.Horizon > end {
		end = e.cfg.Horizon
	}
	if n := len(deltas); n > 0 && deltas[n-1].at > end {
		end = deltas[n-1].at
	}
	watts := 0.0
	energy := 0.0
	var trace []PowerPoint
	for i := 0; i < len(deltas); {
		at := deltas[i].at
		if len(trace) > 0 {
			energy += watts * (at - trace[len(trace)-1].At).Seconds()
		}
		for i < len(deltas) && deltas[i].at == at {
			watts += deltas[i].dw
			i++
		}
		trace = append(trace, PowerPoint{At: at, Watts: units.Watts(watts)})
	}
	if len(trace) > 0 && end > trace[len(trace)-1].At {
		energy += watts * (end - trace[len(trace)-1].At).Seconds()
	}
	e.rep.PowerTrace = trace
	e.rep.FleetEnergy = units.Joules(energy)
}

// validateFailures rejects unusable failure schedules against the
// already-resolved host, VM and switch-domain sets. Beyond per-event
// shape checks it simulates the event order to refuse double crashes,
// unpaired outage windows, and explicit moves that statically must fail
// at dispatch (to a crashed host, or onto a downed switch).
func (c Config) validateFailures(hosts, vms map[string]bool, switches map[string]string) error {
	if c.EvacuationDeadline < 0 {
		return fmt.Errorf("cluster: negative evacuation deadline %v", c.EvacuationDeadline)
	}
	if len(c.Failures) == 0 {
		return nil
	}
	if c.Serial {
		return errors.New("cluster: serial timelines cannot inject failures (no concurrent flights to fail)")
	}
	domains := make(map[string]bool, len(switches))
	for _, sw := range switches {
		domains[sw] = true
	}
	for i, ev := range c.Failures {
		if ev.At < 0 {
			return fmt.Errorf("cluster: failure %d happens before the timeline (%v)", i, ev.At)
		}
		switch ev.Kind {
		case FailHostCrash:
			switch {
			case ev.Host == "" || ev.VM != "" || ev.Switch != "":
				return fmt.Errorf("cluster: failure %d (%s) must target exactly one host", i, ev.Kind)
			case !hosts[ev.Host]:
				return fmt.Errorf("cluster: failure %d crashes unknown host %q", i, ev.Host)
			}
		case FailFlightAbort:
			switch {
			case ev.VM == "" || ev.Host != "" || ev.Switch != "":
				return fmt.Errorf("cluster: failure %d (%s) must target exactly one VM", i, ev.Kind)
			case !vms[ev.VM]:
				return fmt.Errorf("cluster: failure %d aborts unknown VM %q", i, ev.VM)
			}
		case FailSwitchOutage, FailSwitchRestore:
			switch {
			case ev.Switch == "" || ev.Host != "" || ev.VM != "":
				return fmt.Errorf("cluster: failure %d (%s) must target exactly one switch", i, ev.Kind)
			case !domains[ev.Switch]:
				return fmt.Errorf("cluster: failure %d references unknown switch %q", i, ev.Switch)
			}
		default:
			return fmt.Errorf("cluster: failure %d has unknown kind %q", i, ev.Kind)
		}
	}
	// Replay the schedule in the engine's (At, declaration) order.
	order := make([]int, len(c.Failures))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return c.Failures[order[a]].At < c.Failures[order[b]].At })
	crashAt := map[string]time.Duration{}
	openAt := map[string]time.Duration{}
	swDown := map[string]bool{}
	outages := map[string][][2]time.Duration{}
	for _, i := range order {
		ev := c.Failures[i]
		switch ev.Kind {
		case FailHostCrash:
			if _, dup := crashAt[ev.Host]; dup {
				return fmt.Errorf("cluster: failure %d crashes host %q twice", i, ev.Host)
			}
			crashAt[ev.Host] = ev.At
		case FailSwitchOutage:
			if swDown[ev.Switch] {
				return fmt.Errorf("cluster: failure %d takes switch %q down twice without a restore", i, ev.Switch)
			}
			swDown[ev.Switch] = true
			openAt[ev.Switch] = ev.At
		case FailSwitchRestore:
			if !swDown[ev.Switch] {
				return fmt.Errorf("cluster: failure %d restores switch %q, which is not down", i, ev.Switch)
			}
			swDown[ev.Switch] = false
			outages[ev.Switch] = append(outages[ev.Switch], [2]time.Duration{openAt[ev.Switch], ev.At})
		}
	}
	for sw, down := range swDown {
		if down { // never restored: the window stays open forever
			outages[sw] = append(outages[sw], [2]time.Duration{openAt[sw], math.MaxInt64})
		}
	}
	for i, m := range c.Moves {
		if at, dead := crashAt[m.To]; dead && m.At >= at {
			return fmt.Errorf("cluster: move %d dispatches %q to host %q after it crashes at %v", i, m.VM, m.To, at)
		}
		for _, w := range outages[switches[m.To]] {
			if m.At >= w[0] && m.At < w[1] {
				return fmt.Errorf("cluster: move %d dispatches %q at %v, inside an outage of switch %q starting at %v",
					i, m.VM, m.At, switches[m.To], w[0])
			}
		}
	}
	return nil
}
