package cluster

import (
	"testing"

	"repro/internal/sim"
)

// The RefTimeline benchmarks run the identical fleets through the
// retained linear-scan scheduler (see reference.go), so the committed
// scaling curve carries its own baseline: compare
// BenchmarkClusterTimeline<N> against BenchmarkRefTimeline<N> to see
// what the heap scheduler buys at each fleet size. The gap grows with
// the concurrent-flight count — the linear loop pays O(F²) per event
// where the heap pays O(log F).
func benchTimelineRef(b *testing.B, n int) {
	cache := sim.NewCache(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchFleet(n)
		cfg.Cache = cache
		cfg.referenceScan = true
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefTimeline64(b *testing.B)   { benchTimelineRef(b, 64) }
func BenchmarkRefTimeline256(b *testing.B)  { benchTimelineRef(b, 256) }
func BenchmarkRefTimeline1024(b *testing.B) { benchTimelineRef(b, 1024) }
