package cluster

import "time"

// This file is the engine's O(log F) scheduling core. The discrete-event
// loop needs, per event, the earliest instant anything happens and the
// set of flights due at it. Head and tail phases have fixed transition
// instants, so they live in one indexed min-heap keyed by absolute time.
// Transfer phases share links: a flight's completion instant moves every
// time the occupancy of its switch changes, so transfers are kept per
// switch, ordered by *virtual* completion time, which never moves.
//
// Virtual time makes equal-share processor sharing heap-friendly while
// reproducing the linear engine's integer arithmetic exactly. Each
// switch accumulates virt += dt/occ at every clock advance (truncating
// integer division, occ = transfers on the switch — the same floor the
// linear engine applies to every flight's remaining work individually,
// so remaining work == virtDone − virt bit-for-bit). A transfer joining
// at virtual time v with intrinsic work w completes when virt reaches
// v+w; since every co-resident transfer drains at the same rate, the
// completion *order* on a switch is fixed at admission, and the
// per-switch heap keys (virtDone) never need re-projection. Only the
// switch's next completion *instant* — now + (minVirtDone−virt)·occ —
// moves when occupancy changes, and that is recomputed in O(1) per
// switch per event instead of O(F) per flight.
type swState struct {
	// virt is the cumulative equal-share virtual service time: how much
	// intrinsic transfer work one flight on this switch has received
	// since the switch first carried traffic.
	virt time.Duration
	// heap holds the in-transfer flights ordered by virtDone. Its length
	// is the switch occupancy — the O(1) counter the sharing arithmetic
	// divides by.
	heap flightHeap
	// active marks membership in the engine's active-switch list.
	active bool
	// down marks an injected outage window: advance() freezes the
	// switch's virtual clock (transfers stall with their remaining work
	// intact) and checkMove refuses new admissions until restore.
	down bool
}

// occ is the switch occupancy: how many transfers currently share the
// link.
func (s *swState) occ() time.Duration {
	return time.Duration(len(s.heap.fs))
}

// nextAt projects the switch's earliest transfer completion under the
// current occupancy. Valid only while the switch carries traffic.
func (s *swState) nextAt(now time.Duration) time.Duration {
	return now + (s.heap.fs[0].virtDone-s.virt)*s.occ()
}

// flightHeap is an indexed binary min-heap of flights. One
// implementation serves both keys — absolute due time (head/tail
// events) and virtual completion time (per-switch transfers) — because
// a flight sits in at most one heap at a time: `key` selects the field.
// Ties break on dispatch index, though nothing depends on it: fire
// collects every flight due at an instant and processes them in
// dispatch order regardless of pop order.
type flightHeap struct {
	fs  []*flight
	key func(*flight) time.Duration
}

func (h *flightHeap) less(a, b *flight) bool {
	ka, kb := h.key(a), h.key(b)
	if ka != kb {
		return ka < kb
	}
	return a.idx < b.idx
}

// push inserts a flight and records its position for O(log n) removal.
func (h *flightHeap) push(f *flight) {
	h.fs = append(h.fs, f)
	f.heapIdx = len(h.fs) - 1
	h.up(f.heapIdx)
}

// pop removes and returns the minimum flight.
func (h *flightHeap) pop() *flight {
	f := h.fs[0]
	last := len(h.fs) - 1
	h.fs[0] = h.fs[last]
	h.fs[0].heapIdx = 0
	h.fs[last] = nil
	h.fs = h.fs[:last]
	if last > 0 {
		h.down(0)
	}
	f.heapIdx = -1
	return f
}

// remove deletes a flight from any heap position in O(log n) via its
// tracked index — the abort path's counterpart to pop.
func (h *flightHeap) remove(f *flight) {
	i := f.heapIdx
	last := len(h.fs) - 1
	if i != last {
		h.fs[i] = h.fs[last]
		h.fs[i].heapIdx = i
	}
	h.fs[last] = nil
	h.fs = h.fs[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	f.heapIdx = -1
}

func (h *flightHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.fs[i], h.fs[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *flightHeap) down(i int) {
	n := len(h.fs)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(h.fs[l], h.fs[small]) {
			small = l
		}
		if r < n && h.less(h.fs[r], h.fs[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

func (h *flightHeap) swap(i, j int) {
	h.fs[i], h.fs[j] = h.fs[j], h.fs[i]
	h.fs[i].heapIdx = i
	h.fs[j].heapIdx = j
}

// dueKey reads the fixed-instant key of head/tail events.
func dueKey(f *flight) time.Duration { return f.due }

// virtKey reads the virtual-completion key of transfer events.
func virtKey(f *flight) time.Duration { return f.virtDone }

// switchState returns (creating on first use) the scheduling state of a
// link domain.
func (e *engine) switchState(name string) *swState {
	if s, ok := e.switches[name]; ok {
		return s
	}
	s := &swState{heap: flightHeap{key: virtKey}}
	e.switches[name] = s
	return s
}

// activate puts a switch on the engine's active list; advance() drains
// virtual time only for listed switches, so activation must accompany
// the first transfer admitted after an idle span.
func (e *engine) activate(s *swState) {
	if !s.active {
		s.active = true
		e.active = append(e.active, s)
	}
}

// compactActive drops switches whose last transfer completed. Called
// once per fire, after all transitions have settled.
func (e *engine) compactActive() {
	kept := e.active[:0]
	for _, s := range e.active {
		if len(s.heap.fs) > 0 {
			kept = append(kept, s)
		} else {
			s.active = false
		}
	}
	// Let dropped tails be collected.
	for i := len(kept); i < len(e.active); i++ {
		e.active[i] = nil
	}
	e.active = kept
}

// timedPush registers a flight's next fixed-instant event (head end or
// tail end).
func (e *engine) timedPush(f *flight, at time.Duration) {
	f.due = at
	e.timed.push(f)
}
