package cluster

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/consolidation"
	"repro/internal/migration"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func gib(n float64) units.Bytes { return units.Bytes(n * float64(units.GiB)) }

// fleet builds n hosts of one machine model, named h00, h01, …, each
// with the given VMs (vms[i] goes to host i; nil entries leave the host
// empty).
func fleet(machine string, vms ...[]VM) []Host {
	out := make([]Host, len(vms))
	for i := range vms {
		out[i] = Host{
			Name:    "h0" + string(rune('0'+i)),
			Machine: machine,
			VMs:     vms[i],
		}
	}
	return out
}

func vmSpec(name string, busy float64, dirty units.Fraction) VM {
	return VM{Name: name, MemBytes: gib(4), BusyVCPUs: busy, DirtyRatio: dirty}
}

func TestValidate(t *testing.T) {
	good := Config{
		Kind:  migration.Live,
		Hosts: fleet("m01", []VM{vmSpec("a", 4, 0.1)}, nil),
		Moves: []TimedMove{{VM: "a", From: "h00", To: "h01"}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"no hosts", func(c *Config) { c.Hosts = nil }, "no hosts"},
		{"post-copy", func(c *Config) { c.Kind = migration.PostCopy }, "unsupported migration kind"},
		{"bad pair", func(c *Config) { c.Pair = "m01-nope" }, "unknown machine pair"},
		{"unknown machine", func(c *Config) { c.Hosts[0].Machine = "z9" }, "unknown machine model"},
		{"no machine no pair", func(c *Config) {
			c.Hosts[0].Machine = ""
			c.Hosts[0].Threads = 8
			c.Hosts[0].MemBytes = gib(8)
			c.Hosts[0].IdlePower = 100
		}, "needs a machine model"},
		{"dup host", func(c *Config) { c.Hosts[1].Name = "h00" }, "duplicate host"},
		{"dup vm", func(c *Config) { c.Hosts[1].VMs = []VM{vmSpec("a", 1, 0)} }, "two hosts"},
		{"unknown move vm", func(c *Config) { c.Moves[0].VM = "ghost" }, "unknown VM"},
		{"unknown move host", func(c *Config) { c.Moves[0].To = "h99" }, "unknown host"},
		{"same host move", func(c *Config) { c.Moves[0].To = "h00" }, "does not change hosts"},
		{"negative at", func(c *Config) { c.Moves[0].At = -time.Second }, "before the timeline"},
		{"policy and moves", func(c *Config) {
			c.Policy = consolidation.EnergyAware{Model: consolidation.HeuristicCost{}}
			c.Tick = time.Hour
			c.Horizon = time.Hour
		}, "mutually exclusive"},
		{"policy no tick", func(c *Config) {
			c.Moves = nil
			c.Policy = consolidation.EnergyAware{Model: consolidation.HeuristicCost{}}
			c.Horizon = time.Hour
		}, "tick period"},
		{"policy no horizon", func(c *Config) {
			c.Moves = nil
			c.Policy = consolidation.EnergyAware{Model: consolidation.HeuristicCost{}}
			c.Tick = time.Hour
		}, "horizon"},
		{"serial with at", func(c *Config) { c.Serial = true; c.Moves[0].At = time.Second }, "serial"},
		{"serial with phases", func(c *Config) {
			c.Serial = true
			c.Hosts[0].VMs[0].Phases = []workload.Phase{{Kind: workload.PhaseSteady, Duration: time.Hour}}
		}, "serial"},
		{"policy with mixed switches", func(c *Config) {
			// Topology-blind policies would plan a cross-switch move and
			// abort mid-timeline; Validate must refuse the population.
			c.Moves = nil
			c.Policy = consolidation.EnergyAware{Model: consolidation.HeuristicCost{}}
			c.Tick = time.Hour
			c.Horizon = time.Hour
			c.Hosts[1].Machine = "o1"
		}, "one switch"},
		{"switch override cannot fake a physical path", func(c *Config) {
			// Declaring both hosts on one "lab" switch does not change the
			// machine models the move simulates on; netsim would refuse
			// m01→o1 mid-run, so Validate must refuse it up front.
			c.Hosts[0].Switch = "lab"
			c.Hosts[1].Machine = "o1"
			c.Hosts[1].Switch = "lab"
		}, "no physical migration path"},
		{"policy switch override over mixed models", func(c *Config) {
			c.Moves = nil
			c.Policy = consolidation.EnergyAware{Model: consolidation.HeuristicCost{}}
			c.Tick = time.Hour
			c.Horizon = time.Hour
			c.Hosts[0].Switch = "lab"
			c.Hosts[1].Machine = "o1"
			c.Hosts[1].Switch = "lab"
		}, "one switch"},
		{"cross-switch pair override", func(c *Config) { c.Pair = "m01/o1" }, "cannot migrate"},
		{"same vm dispatched twice at one instant", func(c *Config) {
			c.Moves = append(c.Moves, TimedMove{VM: "a", From: "h00", To: "h01"})
		}, "twice"},
		{"reserved vm name under policy", func(c *Config) {
			c.Moves = nil
			c.Policy = consolidation.EnergyAware{Model: consolidation.HeuristicCost{}}
			c.Tick = time.Hour
			c.Horizon = time.Hour
			c.Hosts[1].VMs = []VM{vmSpec("a+incoming", 1, 0)}
		}, "reserved"},
	}
	for _, tc := range cases {
		cfg := Config{
			Kind:  good.Kind,
			Hosts: fleet("m01", []VM{vmSpec("a", 4, 0.1)}, nil),
			Moves: []TimedMove{{VM: "a", From: "h00", To: "h01"}},
		}
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestVMPhaseFactor(t *testing.T) {
	v := VM{Name: "v", MemBytes: gib(4), BusyVCPUs: 8, DirtyRatio: 0.4,
		Phases: []workload.Phase{
			{Kind: workload.PhaseSteady, Duration: 100 * time.Second, Level: 0.5},
			{Kind: workload.PhaseBurst, Duration: 100 * time.Second, Level: 1, Peak: 2},
		}}
	if got := v.busyAt(50 * time.Second); got != 4 {
		t.Errorf("steady half level: busy = %v, want 4", got)
	}
	if got := v.busyAt(150 * time.Second); got != 16 {
		t.Errorf("burst peak: busy = %v, want 16", got)
	}
	// After the timeline the final factor holds (burst ends at level 1).
	if got := v.busyAt(300 * time.Second); got != 8 {
		t.Errorf("post-timeline: busy = %v, want 8", got)
	}
	// Dirty ratios scale with the factor but stay physical.
	if got := v.dirtyAt(150 * time.Second); got != 0.8 {
		t.Errorf("burst dirty = %v, want 0.8", got)
	}
	hot := VM{Name: "h", MemBytes: gib(4), DirtyRatio: 0.9,
		Phases: []workload.Phase{{Kind: workload.PhaseSteady, Duration: time.Second, Level: 3}}}
	if got := hot.dirtyAt(0); got != 1 {
		t.Errorf("overdriven dirty ratio = %v, want clamped to 1", got)
	}
}

// explicitPair is a 4-host single-switch cluster with two migrations.
func explicitPair(secondAt time.Duration) Config {
	return Config{
		Kind: migration.Live,
		Hosts: fleet("m01",
			[]VM{vmSpec("va", 4, 0.5)},
			nil,
			[]VM{vmSpec("vb", 4, 0.5)},
			nil,
		),
		Moves: []TimedMove{
			{VM: "va", From: "h00", To: "h01", At: 0},
			{VM: "vb", From: "h02", To: "h03", At: secondAt},
		},
		Seed: 42,
	}
}

// TestLinkContention is the tentpole's physical claim: two transfers
// sharing one switch each progress at half rate, so they finish later
// than the same transfers run far apart — and the stretched transfer
// costs more energy.
func TestLinkContention(t *testing.T) {
	contended, err := Run(explicitPair(0))
	if err != nil {
		t.Fatal(err)
	}
	// The second move starts long after the first has landed: private link.
	private, err := Run(explicitPair(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(contended.Timeline) != 2 || len(private.Timeline) != 2 {
		t.Fatalf("timelines: %d and %d moves", len(contended.Timeline), len(private.Timeline))
	}
	for i := range contended.Timeline {
		c, p := contended.Timeline[i], private.Timeline[i]
		// Identical physics underneath: same scenario, same seed.
		if c.IntrinsicEnergy != p.IntrinsicEnergy || c.BytesSent != p.BytesSent {
			t.Errorf("move %d intrinsic drifted between configs", i)
		}
		if c.Stretch <= 1.5 {
			t.Errorf("move %d stretch = %v, want ≈2 under a shared link", i, c.Stretch)
		}
		if p.Stretch != 1 {
			t.Errorf("private move %d stretch = %v, want exactly 1", i, p.Stretch)
		}
		if c.Duration <= p.Duration {
			t.Errorf("move %d contended duration %v not longer than private %v", i, c.Duration, p.Duration)
		}
		if c.Energy <= c.IntrinsicEnergy {
			t.Errorf("move %d contended energy %v not above intrinsic %v", i, c.Energy, c.IntrinsicEnergy)
		}
		if p.Energy != p.IntrinsicEnergy {
			t.Errorf("private move %d energy %v != intrinsic %v", i, p.Energy, p.IntrinsicEnergy)
		}
	}
	if contended.Makespan <= private.Timeline[0].Duration {
		t.Errorf("contended makespan %v not beyond one private transfer %v",
			contended.Makespan, private.Timeline[0].Duration)
	}
}

// TestDisjointSwitchesDoNotContend runs the same concurrent shape on
// two different switches: no stretching.
func TestDisjointSwitchesDoNotContend(t *testing.T) {
	cfg := Config{
		Kind: migration.Live,
		Hosts: []Host{
			{Name: "a1", Machine: "m01", VMs: []VM{vmSpec("va", 4, 0.5)}},
			{Name: "a2", Machine: "m01"},
			{Name: "b1", Machine: "o1", VMs: []VM{vmSpec("vb", 4, 0.5)}},
			{Name: "b2", Machine: "o1"},
		},
		Moves: []TimedMove{
			{VM: "va", From: "a1", To: "a2", At: 0},
			{VM: "vb", From: "b1", To: "b2", At: 0},
		},
		Seed: 42,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range rep.Timeline {
		if rec.Stretch != 1 {
			t.Errorf("move %d on a private switch stretched by %v", i, rec.Stretch)
		}
	}
	// Topology reached the cache key: one move ran on m01 hardware, the
	// other on o1 hardware.
	if rep.Timeline[0].Pair != "m01/m01" || rep.Timeline[1].Pair != "o1/o1" {
		t.Errorf("pairs = %q, %q; want m01/m01 and o1/o1",
			rep.Timeline[0].Pair, rep.Timeline[1].Pair)
	}
}

func TestCrossSwitchMoveRefused(t *testing.T) {
	cfg := Config{
		Kind: migration.Live,
		Hosts: []Host{
			{Name: "a1", Machine: "m01", VMs: []VM{vmSpec("va", 4, 0.5)}},
			{Name: "b1", Machine: "o1"},
		},
		Moves: []TimedMove{{VM: "va", From: "a1", To: "b1"}},
	}
	_, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "different switches") {
		t.Fatalf("cross-switch move: err = %v, want a different-switches refusal", err)
	}
}

// policyFleet is an 8-host diurnal cluster the energy-aware policy can
// consolidate: two nearly idle hosts worth draining, the rest with
// moderate load and headroom.
func policyFleet() Config {
	hosts := fleet("m01",
		[]VM{vmSpec("web1", 8, 0.1), vmSpec("web2", 6, 0.1)},
		[]VM{vmSpec("db1", 10, 0.3)},
		[]VM{vmSpec("an1", 12, 0.2)},
		[]VM{vmSpec("batch1", 9, 0.05)},
		[]VM{vmSpec("cache1", 2, 0.9)},
		[]VM{vmSpec("idle1", 1, 0.05)},
		[]VM{vmSpec("web3", 7, 0.1)},
		[]VM{vmSpec("db2", 8, 0.25)},
	)
	return Config{
		Kind:   migration.Live,
		Hosts:  hosts,
		Policy: consolidation.EnergyAware{Model: consolidation.HeuristicCost{}},
		PolicyConfig: consolidation.Config{
			Horizon: 24 * time.Hour,
		},
		Tick:    30 * time.Minute,
		Horizon: 2 * time.Hour,
		Seed:    7,
	}
}

func TestPolicyTimelineConsolidates(t *testing.T) {
	rep, err := Run(policyFleet())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ticks) != 4 {
		t.Fatalf("ticks = %d, want 4 (0, 30, 60, 90 min inside a 2 h horizon)", len(rep.Ticks))
	}
	if len(rep.Timeline) == 0 {
		t.Fatal("policy timeline planned no migrations")
	}
	if len(rep.FreedHosts) == 0 {
		t.Error("consolidation freed no hosts")
	}
	if rep.IdleSavings <= 0 {
		t.Error("freed hosts reclaim no idle power")
	}
	// Conservation: every VM still placed exactly once.
	n := 0
	for _, h := range rep.Final {
		n += len(h.VMs)
	}
	if n != 9 {
		t.Errorf("final state has %d VMs, want 9", n)
	}
	if rep.TotalEnergy <= 0 {
		t.Error("no energy measured")
	}
}

// TestDeterministicAcrossWorkersAndCache is the repo-wide guarantee
// applied to the cluster layer: the full report — timeline, ticks,
// energies, stretches — is bit-identical for every worker count and
// cache setting.
func TestDeterministicAcrossWorkersAndCache(t *testing.T) {
	base := policyFleet()
	base.Workers = 1
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, alt := range []struct {
		name    string
		workers int
		cache   *sim.Cache
	}{
		{"workers=8", 8, nil},
		{"workers=3+cache", 3, sim.NewCache(0)},
		{"cache", 1, sim.NewCache(0)},
	} {
		cfg := policyFleet()
		cfg.Workers = alt.workers
		cfg.Cache = alt.cache
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", alt.name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: report differs from the sequential uncached run", alt.name)
		}
	}
}

// TestRetickPinsInflight fires a re-planning tick while the previous
// plan's migration is still in flight: the policy must plan around the
// pinned VM and the engine must never double-dispatch it.
func TestRetickPinsInflight(t *testing.T) {
	// One drainable host with a very dirty VM: the transfer (3x data
	// valve over a ~95 MB/s link on 4 GiB) far outlives the 60 s tick.
	cfg := Config{
		Kind: migration.Live,
		Hosts: fleet("m01",
			[]VM{vmSpec("dirty", 2, 0.9)},
			[]VM{vmSpec("w1", 10, 0.1)},
			[]VM{vmSpec("w2", 12, 0.1)},
		),
		Policy:       consolidation.EnergyAware{Model: consolidation.HeuristicCost{}},
		PolicyConfig: consolidation.Config{Horizon: 24 * time.Hour},
		Tick:         60 * time.Second,
		Horizon:      3 * time.Minute,
		Seed:         3,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ticks) != 3 {
		t.Fatalf("ticks = %d, want 3", len(rep.Ticks))
	}
	if rep.Ticks[0].Moves == 0 {
		t.Fatal("first tick planned nothing; fixture drift")
	}
	if rep.Timeline[0].Duration <= cfg.Tick {
		t.Fatalf("fixture drift: migration (%v) no longer outlives the tick (%v)",
			rep.Timeline[0].Duration, cfg.Tick)
	}
	pinnedSeen := false
	for _, tick := range rep.Ticks[1:] {
		// Pinned reports the placement entries the round's snapshot
		// actually pinned: every in-flight migration contributes two —
		// the migrating VM on its source and its "+incoming"
		// destination reservation. Reconcile against the timeline:
		// flights spanning the tick instant (dispatched before, landed
		// after) are exactly the in-flight set the snapshot saw.
		inFlight := 0
		for _, rec := range rep.Timeline {
			if rec.Start < tick.At && rec.End > tick.At {
				inFlight++
			}
		}
		if tick.Pinned != 2*inFlight {
			t.Errorf("tick at %v pinned %d entries with %d migrations in flight, want %d",
				tick.At, tick.Pinned, inFlight, 2*inFlight)
		}
		if tick.Pinned > 0 {
			pinnedSeen = true
			if tick.Moves != 0 {
				t.Errorf("tick at %v planned %d moves while the drain was in flight", tick.At, tick.Moves)
			}
		}
	}
	if !pinnedSeen {
		t.Error("no re-planning tick observed the in-flight migration")
	}
	moved := map[string]int{}
	for _, rec := range rep.Timeline {
		moved[rec.VM]++
	}
	if moved["dirty"] != 1 {
		t.Errorf("dirty VM migrated %d times, want exactly 1", moved["dirty"])
	}
}

// TestPhaseShiftsDriveReplanning gives a VM a two-phase timeline whose
// boundary is recorded as an event and whose intensity change is
// visible to later snapshots.
func TestPhaseShiftsDriveReplanning(t *testing.T) {
	v := vmSpec("spiky", 4, 0.1)
	v.Phases = []workload.Phase{
		{Name: "calm", Kind: workload.PhaseSteady, Duration: 60 * time.Second, Level: 0.5},
		{Name: "rush", Kind: workload.PhaseSteady, Duration: 60 * time.Second, Level: 4},
	}
	cfg := Config{
		Kind:    migration.Live,
		Hosts:   fleet("m01", []VM{v}, []VM{vmSpec("w1", 8, 0.1)}),
		Horizon: 2 * time.Minute,
		Moves:   []TimedMove{{VM: "w1", From: "h01", To: "h00", At: 90 * time.Second}},
		Seed:    5,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shifts) != 1 || rep.Shifts[0].At != 60*time.Second ||
		rep.Shifts[0].VM != "spiky" || rep.Shifts[0].Phase != "rush" {
		t.Fatalf("shifts = %+v, want one shift of spiky into rush at 60 s", rep.Shifts)
	}
	// At the move's dispatch (90 s) spiky runs at 4x: 16 busy vCPUs on
	// the target → 4 load VMs in the lowered scenario. The engine records
	// only measured outcomes, so assert indirectly: rerun with the move
	// during the calm phase and compare intrinsic energies (loaded
	// targets cost more).
	calm := cfg
	calm.Moves = []TimedMove{{VM: "w1", From: "h01", To: "h00", At: 30 * time.Second}}
	calmRep, err := Run(calm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeline[0].IntrinsicEnergy <= calmRep.Timeline[0].IntrinsicEnergy {
		t.Errorf("migrating into the rush phase (%v) not dearer than into calm (%v)",
			rep.Timeline[0].IntrinsicEnergy, calmRep.Timeline[0].IntrinsicEnergy)
	}
}

// TestSerialMatchesEventLoop: with moves spaced far enough apart that
// nothing overlaps, the event loop and the serial path measure the same
// migrations (the serial path compresses the timeline, but each move's
// physics and energy agree).
func TestSerialMatchesEventLoop(t *testing.T) {
	mk := func(serial bool, secondAt time.Duration) Config {
		return Config{
			Kind: migration.Live,
			Pair: "m01-m02",
			Hosts: fleet("m01",
				[]VM{vmSpec("va", 4, 0.1)},
				nil,
				[]VM{vmSpec("vb", 8, 0.1)},
				nil,
			),
			Moves: []TimedMove{
				{VM: "va", From: "h00", To: "h01"},
				{VM: "vb", From: "h02", To: "h03", At: secondAt},
			},
			Serial: serial,
			Seed:   9,
		}
	}
	serial, err := Run(mk(true, 0))
	if err != nil {
		t.Fatal(err)
	}
	spaced, err := Run(mk(false, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Timeline {
		s, p := serial.Timeline[i], spaced.Timeline[i]
		if s.Energy != p.Energy || s.BytesSent != p.BytesSent || s.Duration != p.Duration {
			t.Errorf("move %d: serial and spaced event-loop measurements differ:\n  %+v\n  %+v", i, s, p)
		}
	}
}

// TestRunRefusesOverlappingMovesOfOneVM: a VM dispatched again while
// its first flight is still in the air must error, not double-migrate.
func TestRunRefusesOverlappingMovesOfOneVM(t *testing.T) {
	cfg := explicitPair(0)
	cfg.Moves = []TimedMove{
		{VM: "va", From: "h00", To: "h01", At: 0},
		{VM: "va", From: "h00", To: "h03", At: time.Second},
	}
	_, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "already migrating") {
		t.Fatalf("overlapping dispatch of one VM: err = %v, want already-migrating refusal", err)
	}
}

func TestRunErrorsOnVMNotAtSource(t *testing.T) {
	// Second move references the VM's pre-first-move host: by the time it
	// dispatches, the VM has landed elsewhere.
	cfg := explicitPair(0)
	cfg.Moves = []TimedMove{
		{VM: "va", From: "h00", To: "h01", At: 0},
		{VM: "va", From: "h00", To: "h03", At: time.Hour},
	}
	_, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "not") {
		t.Fatalf("stale move source: err = %v", err)
	}
}
