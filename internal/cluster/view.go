package cluster

import (
	"sort"
	"time"

	"repro/internal/consolidation"
	"repro/internal/units"
)

// This file maintains the engine's persistent consolidation.View — the
// struct-of-arrays policy snapshot — incrementally under an
// event-driven dirty set, so a planning round at fleet scale touches
// only the hosts events actually changed since the last tick.
//
// Invariants (property-tested against the full-rebuild fallback and the
// retained linear-scan reference):
//
//   - Every event that changes a host's slot membership or demand marks
//     it dirty: dispatch commit (destination gains a reservation), land
//     (source loses the guest, destination converts its reservation),
//     abort (destination loses the reservation), crash (Down flips).
//   - Hosts with phase-driven residents or reservations have
//     continuously varying demand; they are re-marked every tick, which
//     also covers every phase-transition event.
//   - A refreshed host re-sums its aggregates in slot order (never
//     incremental subtraction), so clean hosts' cached sums are
//     bit-identical to a full rebuild at the same instant.
//   - Order repair drops the refreshed hosts (a stable compaction of
//     entries whose keys did not change stays sorted), sorts them by
//     their new (busy, name) keys, and merges. Host names are unique,
//     so (busy, name) is a unique total order and the merge reproduces
//     a full sort exactly.

// viewEnabled reports whether this configuration plans through the
// incrementally maintained view: a ViewPolicy on the heap scheduler.
// The linear-scan reference and non-view policies keep the historical
// AoS snapshot path.
func (e *engine) viewEnabled() (consolidation.ViewPolicy, bool) {
	if e.cfg.Policy == nil || e.cfg.referenceScan {
		return nil, false
	}
	vp, ok := e.cfg.Policy.(consolidation.ViewPolicy)
	return vp, ok
}

// markHostDirty queues a host for refresh at the next planning tick.
func (e *engine) markHostDirty(h *hostRT) {
	if !h.dirtyMark {
		h.dirtyMark = true
		e.dirty = append(e.dirty, h.vi)
	}
}

// markHostVarying registers a host as holding phase-driven demand; it
// is refreshed every tick until its phased population drops to zero.
func (e *engine) markHostVarying(h *hostRT) {
	if !h.varyMark {
		h.varyMark = true
		e.varying = append(e.varying, h.vi)
	}
}

// flattenHostView appends host h's current state to the view arrays at
// time t. Build path only (rebuildView); the incremental path rewrites
// slots in place via refreshHostView.
func (e *engine) flattenHostView(h *hostRT, t time.Duration) {
	v := &e.pview
	v.HostName = append(v.HostName, h.Name)
	v.Threads = append(v.Threads, h.Threads)
	v.MemCap = append(v.MemCap, h.MemBytes)
	v.IdlePower = append(v.IdlePower, h.IdlePower)
	v.Down = append(v.Down, h.down)
	v.VMStart = append(v.VMStart, int32(len(v.VMName)))
	v.VMCount = append(v.VMCount, int32(len(h.vms)+len(h.incoming)))
	busy := 0.0
	var mem units.Bytes
	for _, g := range h.vms {
		b := g.busyAt(t)
		v.VMName = append(v.VMName, g.Name)
		v.VMMem = append(v.VMMem, g.MemBytes)
		v.VMBusy = append(v.VMBusy, b)
		v.VMDirty = append(v.VMDirty, g.dirtyAt(t))
		busy += b
		mem += g.MemBytes
	}
	for _, f := range h.incoming {
		b := f.vm.busyAt(t)
		v.VMName = append(v.VMName, f.resName)
		v.VMMem = append(v.VMMem, f.vm.MemBytes)
		v.VMBusy = append(v.VMBusy, b)
		v.VMDirty = append(v.VMDirty, f.vm.dirtyAt(t))
		busy += b
		mem += f.vm.MemBytes
	}
	v.Busy = append(v.Busy, busy)
	v.Mem = append(v.Mem, mem)
}

// rebuildView reconstructs the whole view from the runtime state at
// time t: the initial build, and every tick of the property-tested
// full-rebuild fallback (Config.fullRebuild).
func (e *engine) rebuildView(t time.Duration) {
	v := &e.pview
	v.HostName = v.HostName[:0]
	v.Threads = v.Threads[:0]
	v.MemCap = v.MemCap[:0]
	v.IdlePower = v.IdlePower[:0]
	v.Down = v.Down[:0]
	v.Busy = v.Busy[:0]
	v.Mem = v.Mem[:0]
	v.VMStart = v.VMStart[:0]
	v.VMCount = v.VMCount[:0]
	v.VMName = v.VMName[:0]
	v.VMMem = v.VMMem[:0]
	v.VMBusy = v.VMBusy[:0]
	v.VMDirty = v.VMDirty[:0]
	for _, h := range e.hosts {
		e.flattenHostView(h, t)
	}
	e.viewLive = len(v.VMName)
	// The engine's hosts are name-sorted (sortedHosts), so index order
	// is name order — the precondition for the policies' order-indexed
	// target scan.
	v.NameOrdered = true
	v.SortOrder()
	// The rebuild consumed every outstanding mark.
	for _, vi := range e.dirty {
		e.hosts[vi].dirtyMark = false
	}
	e.dirty = e.dirty[:0]
}

// refreshHostView rewrites one host's view slots and aggregates at
// time t. Slots are rewritten in place while the membership count fits
// the host's current arena range; a grown host relocates its range to
// the arena tail (compactArena reclaims the stale slots).
func (e *engine) refreshHostView(h *hostRT, t time.Duration) {
	v := &e.pview
	i := h.vi
	n := int32(len(h.vms) + len(h.incoming))
	old := v.VMCount[i]
	s := v.VMStart[i]
	if n > old {
		s = int32(len(v.VMName))
		v.VMStart[i] = s
		grow := int(n)
		v.VMName = append(v.VMName, make([]string, grow)...)
		v.VMMem = append(v.VMMem, make([]units.Bytes, grow)...)
		v.VMBusy = append(v.VMBusy, make([]float64, grow)...)
		v.VMDirty = append(v.VMDirty, make([]units.Fraction, grow)...)
	}
	v.VMCount[i] = n
	e.viewLive += int(n - old)
	k := s
	busy := 0.0
	var mem units.Bytes
	for _, g := range h.vms {
		b := g.busyAt(t)
		v.VMName[k], v.VMMem[k], v.VMBusy[k], v.VMDirty[k] = g.Name, g.MemBytes, b, g.dirtyAt(t)
		busy += b
		mem += g.MemBytes
		k++
	}
	for _, f := range h.incoming {
		b := f.vm.busyAt(t)
		v.VMName[k], v.VMMem[k], v.VMBusy[k], v.VMDirty[k] = f.resName, f.vm.MemBytes, b, f.vm.dirtyAt(t)
		busy += b
		mem += f.vm.MemBytes
		k++
	}
	v.Busy[i], v.Mem[i] = busy, mem
	v.Down[i] = h.down
}

// viewLess orders host indices by the policies' (busy, name) key.
func viewLess(v *consolidation.View, a, b int32) bool {
	if v.Busy[a] != v.Busy[b] {
		return v.Busy[a] < v.Busy[b]
	}
	return v.HostName[a] < v.HostName[b]
}

// viewTick folds the varying set into the dirty set, refreshes every
// dirty host at time t, and repairs Order by compact-sort-merge. It
// reports whether anything was refreshed — a clean tick's view (and
// therefore its plan) is identical to the last one.
func (e *engine) viewTick(t time.Duration) bool {
	// Varying hosts (phased residents or phased reservations) refresh
	// every tick; hosts whose phased population dropped to zero leave
	// the set here.
	keep := e.varying[:0]
	for _, vi := range e.varying {
		h := e.hosts[vi]
		if h.phasedRes+h.phasedInc == 0 {
			h.varyMark = false
			continue
		}
		keep = append(keep, vi)
		e.markHostDirty(h)
	}
	e.varying = keep
	if len(e.dirty) == 0 {
		return false
	}
	v := &e.pview
	for _, vi := range e.dirty {
		e.refreshHostView(e.hosts[vi], t)
	}
	sort.Slice(e.dirty, func(a, b int) bool { return viewLess(v, e.dirty[a], e.dirty[b]) })
	// Merge: clean entries keep their relative order (their keys did not
	// change, so they are still sorted); refreshed entries interleave by
	// their new keys. The result is the unique (busy, name) total order.
	out := e.orderScratch[:0]
	di := 0
	for _, hi := range v.Order {
		if e.hosts[hi].dirtyMark {
			continue
		}
		for di < len(e.dirty) && viewLess(v, e.dirty[di], hi) {
			out = append(out, e.dirty[di])
			di++
		}
		out = append(out, hi)
	}
	for ; di < len(e.dirty); di++ {
		out = append(out, e.dirty[di])
	}
	e.orderScratch = v.Order[:0]
	v.Order = out
	for _, vi := range e.dirty {
		e.hosts[vi].dirtyMark = false
	}
	e.dirty = e.dirty[:0]
	e.compactArena()
	return true
}

// compactArena rewrites the VM arena without the stale ranges left by
// relocated hosts, once garbage dominates. Host indices, counts and
// aggregates are untouched — only VMStart moves.
func (e *engine) compactArena() {
	v := &e.pview
	if len(v.VMName) <= 2*e.viewLive+1024 {
		return
	}
	names := make([]string, 0, e.viewLive)
	mems := make([]units.Bytes, 0, e.viewLive)
	busys := make([]float64, 0, e.viewLive)
	dirts := make([]units.Fraction, 0, e.viewLive)
	for i := range v.VMStart {
		s, n := v.VMStart[i], v.VMCount[i]
		v.VMStart[i] = int32(len(names))
		names = append(names, v.VMName[s:s+n]...)
		mems = append(mems, v.VMMem[s:s+n]...)
		busys = append(busys, v.VMBusy[s:s+n]...)
		dirts = append(dirts, v.VMDirty[s:s+n]...)
	}
	v.VMName, v.VMMem, v.VMBusy, v.VMDirty = names, mems, busys, dirts
}

// viewPinnedEvac derives the pinned and evacuation name lists from the
// flight and failure state: airborne movers and their reservations plus
// post-abort cool-downs are pinned; non-migrating residents of crashed
// hosts are evacuees. Produces exactly the sorted lists the AoS
// snapshot assembles per-host (abort cool-downs only ever name VMs on
// live hosts — crashHost clears its residents' repins).
func (e *engine) viewPinnedEvac() (pinned, evacuate []string) {
	e.snapPinned = e.snapPinned[:0]
	e.snapEvac = e.snapEvac[:0]
	for _, f := range e.fail.airborne {
		e.snapPinned = append(e.snapPinned, f.vm.Name, f.resName)
	}
	for name := range e.fail.repin {
		e.snapPinned = append(e.snapPinned, name)
	}
	for _, h := range e.downHosts {
		for _, g := range h.vms {
			if !g.migrating {
				e.snapEvac = append(e.snapEvac, g.Name)
			}
		}
	}
	sort.Strings(e.snapPinned)
	sort.Strings(e.snapEvac)
	return e.snapPinned, e.snapEvac
}
