package cluster

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestDeterministicWithDiskCache extends the repo-wide bit-identity
// guarantee to the persistent cache at the cluster layer: a cold
// store-backed run equals the sequential uncached reference, and a
// second run from a fresh cache over the same directory — a new
// process, as far as the cache can tell — reproduces it without
// executing a single migration kernel.
func TestDeterministicWithDiskCache(t *testing.T) {
	base := policyFleet()
	base.Workers = 1
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	newCache := func() *sim.Cache {
		store, err := sim.NewDirStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return sim.NewCacheWithStore(0, store)
	}

	cold := policyFleet()
	cold.Workers = 3
	cold.Cache = newCache()
	got, err := Run(cold)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("cold disk-cached report differs from the sequential uncached run")
	}
	if st := cold.Cache.Snapshot(); st.KernelRuns == 0 || st.DiskHits != 0 {
		t.Errorf("cold stats implausible: %+v", st)
	}

	warm := policyFleet()
	warm.Workers = 3
	warm.Cache = newCache()
	got2, err := Run(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got2) {
		t.Error("warm disk-cached report differs from the sequential uncached run")
	}
	if st := warm.Cache.Snapshot(); st.KernelRuns != 0 || st.DiskHits == 0 {
		t.Errorf("warm stats = %+v, want pure disk hits and zero kernel runs", st)
	}
}
