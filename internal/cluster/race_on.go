//go:build race

package cluster

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
