package cluster

import (
	"time"

	"repro/internal/consolidation"
	"repro/internal/units"
)

// MigrationRecord is one completed migration of the timeline.
type MigrationRecord struct {
	// VM, From and To identify the move.
	VM, From, To string
	// Pair is the testbed pair the move was lowered onto (the part of
	// the run-cache key that carries the topology).
	Pair string
	// Start and End bound the migration on the cluster timeline,
	// including contention-induced stretching.
	Start, End time.Duration
	// Duration is End − Start.
	Duration time.Duration
	// Stretch is the contention factor of the transfer phase: actual
	// transfer span over intrinsic. 1 means the link was private.
	Stretch float64
	// Energy is the contention-adjusted source+target migration energy:
	// the intrinsic measured energy with the transfer-phase share scaled
	// by Stretch.
	Energy units.Joules
	// IntrinsicEnergy is the unstretched measured energy of the
	// underlying kernel run.
	IntrinsicEnergy units.Joules
	// BytesSent is the state data moved.
	BytesSent units.Bytes
	// Rounds is the pre-copy round count (live only).
	Rounds int
	// Downtime is the guest suspension span.
	Downtime time.Duration
}

// TickRecord is one policy invocation of the timeline.
type TickRecord struct {
	// At is the tick instant.
	At time.Duration
	// Moves is how many migrations the round planned and dispatched.
	Moves int
	// Pinned is how many placement entries the round's snapshot pinned —
	// what the policy actually saw: every in-flight migration contributes
	// two (the migrating VM on its source and its "+incoming" destination
	// reservation), and a VM whose flight just aborted contributes one
	// for its one-round cool-down.
	Pinned int
}

// AbortRecord is one in-flight migration killed by a failure event.
type AbortRecord struct {
	// VM, From and To identify the killed move.
	VM, From, To string
	// Pair is the testbed pair the move was lowered onto.
	Pair string
	// Start is the dispatch instant; End is the abort instant.
	Start, End time.Duration
	// Phase is the lifecycle phase the abort hit: "head", "transfer" or
	// "tail".
	Phase string
	// Reason labels the killing event: "host-crash <host>",
	// "flight-abort", or "stranded" (the flight was still stalled on an
	// unrestored switch when the timeline drained).
	Reason string
	// Energy is the share of the kernel-measured migration energy spent
	// before the abort (charged to TotalEnergy; the migration bought
	// nothing with it).
	Energy units.Joules
}

// PowerPoint is one breakpoint of the fleet power trace: from At
// onward the fleet draws Watts, until the next point.
type PowerPoint struct {
	At    time.Duration
	Watts units.Watts
}

// PhaseShift is one workload phase transition of the timeline.
type PhaseShift struct {
	// At is the boundary instant.
	At time.Duration
	// VM is the guest whose workload changed.
	VM string
	// Phase labels the phase being entered ("" when the timeline ended
	// and the final level holds).
	Phase string
}

// Report is everything one cluster timeline yields.
type Report struct {
	// Timeline lists the completed migrations in dispatch order.
	Timeline []MigrationRecord
	// Ticks lists the policy invocations in order (empty without a
	// policy).
	Ticks []TickRecord
	// Shifts lists the workload phase transitions inside the horizon.
	Shifts []PhaseShift
	// TotalEnergy is the contention-adjusted migration energy of the
	// whole timeline.
	TotalEnergy units.Joules
	// Makespan is when the last migration landed (zero when none ran).
	Makespan time.Duration
	// FreedHosts are hosts left empty at the end, in name order.
	FreedHosts []string
	// IdleSavings is the idle power those hosts stop drawing once
	// switched off.
	IdleSavings units.Watts
	// Final is the end-of-timeline placement in host name order, with
	// VM demand evaluated at the makespan.
	Final []consolidation.HostState
	// PeakFlights is the most migrations ever simultaneously in the air
	// — the fleet's worst-case concurrent transfer pressure (1 on serial
	// timelines with moves, 0 when nothing migrated).
	PeakFlights int
	// MaxStretch is the worst per-flight contention stretch of the
	// timeline: how badly the most-contended transfer was slowed by
	// sharing its switch (0 when nothing migrated, 1 when every link
	// stayed private).
	MaxStretch float64
	// ReplanRounds is how many policy rounds executed (== len(Ticks);
	// 0 for explicit timelines).
	ReplanRounds int
	// Aborted lists the migrations killed by failure events, in abort
	// order (empty without failure injection).
	Aborted []AbortRecord
	// AbortedFlights is len(Aborted) — the timeline's SLO-visible
	// failure count.
	AbortedFlights int
	// OrphanedVMs counts the VMs stranded by host crashes;
	// EvacuatedVMs counts how many of them landed on a live host again.
	OrphanedVMs  int
	EvacuatedVMs int
	// EvacuationDeadlineMet reports the crash-recovery SLO: every
	// orphaned VM landed on a live host, within
	// Config.EvacuationDeadline of its crash when a deadline is set.
	// Vacuously true when nothing crashed.
	EvacuationDeadlineMet bool
	// PowerTrace is the fleet's piecewise-constant power timeline: the
	// idle floors of the live hosts (a crashed host's floor drops out at
	// the crash) plus each migration's — and each aborted flight's —
	// energy spread over its wall-clock span.
	PowerTrace []PowerPoint
	// FleetEnergy integrates PowerTrace over [0, max(Makespan, Horizon,
	// last breakpoint)]: the energy-over-time score chaos scenarios are
	// judged by, idle draw included.
	FleetEnergy units.Joules
}
