package cluster

import (
	"time"

	"repro/internal/consolidation"
	"repro/internal/units"
)

// MigrationRecord is one completed migration of the timeline.
type MigrationRecord struct {
	// VM, From and To identify the move.
	VM, From, To string
	// Pair is the testbed pair the move was lowered onto (the part of
	// the run-cache key that carries the topology).
	Pair string
	// Start and End bound the migration on the cluster timeline,
	// including contention-induced stretching.
	Start, End time.Duration
	// Duration is End − Start.
	Duration time.Duration
	// Stretch is the contention factor of the transfer phase: actual
	// transfer span over intrinsic. 1 means the link was private.
	Stretch float64
	// Energy is the contention-adjusted source+target migration energy:
	// the intrinsic measured energy with the transfer-phase share scaled
	// by Stretch.
	Energy units.Joules
	// IntrinsicEnergy is the unstretched measured energy of the
	// underlying kernel run.
	IntrinsicEnergy units.Joules
	// BytesSent is the state data moved.
	BytesSent units.Bytes
	// Rounds is the pre-copy round count (live only).
	Rounds int
	// Downtime is the guest suspension span.
	Downtime time.Duration
}

// TickRecord is one policy invocation of the timeline.
type TickRecord struct {
	// At is the tick instant.
	At time.Duration
	// Moves is how many migrations the round planned and dispatched.
	Moves int
	// Pinned is how many in-flight VMs the round had to plan around.
	Pinned int
}

// PhaseShift is one workload phase transition of the timeline.
type PhaseShift struct {
	// At is the boundary instant.
	At time.Duration
	// VM is the guest whose workload changed.
	VM string
	// Phase labels the phase being entered ("" when the timeline ended
	// and the final level holds).
	Phase string
}

// Report is everything one cluster timeline yields.
type Report struct {
	// Timeline lists the completed migrations in dispatch order.
	Timeline []MigrationRecord
	// Ticks lists the policy invocations in order (empty without a
	// policy).
	Ticks []TickRecord
	// Shifts lists the workload phase transitions inside the horizon.
	Shifts []PhaseShift
	// TotalEnergy is the contention-adjusted migration energy of the
	// whole timeline.
	TotalEnergy units.Joules
	// Makespan is when the last migration landed (zero when none ran).
	Makespan time.Duration
	// FreedHosts are hosts left empty at the end, in name order.
	FreedHosts []string
	// IdleSavings is the idle power those hosts stop drawing once
	// switched off.
	IdleSavings units.Watts
	// Final is the end-of-timeline placement in host name order, with
	// VM demand evaluated at the makespan.
	Final []consolidation.HostState
	// PeakFlights is the most migrations ever simultaneously in the air
	// — the fleet's worst-case concurrent transfer pressure (1 on serial
	// timelines with moves, 0 when nothing migrated).
	PeakFlights int
	// MaxStretch is the worst per-flight contention stretch of the
	// timeline: how badly the most-contended transfer was slowed by
	// sharing its switch (0 when nothing migrated, 1 when every link
	// stayed private).
	MaxStretch float64
	// ReplanRounds is how many policy rounds executed (== len(Ticks);
	// 0 for explicit timelines).
	ReplanRounds int
}
