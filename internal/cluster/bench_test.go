package cluster

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkClusterTimeline measures a full 8-host policy-driven
// timeline: four planning rounds, every planned migration lowered to
// the kernel and answered through a shared run cache. It is the
// cluster-layer companion to the campaign benchmarks in bench_test.go
// at the repo root and runs in the CI bench smoke.
func BenchmarkClusterTimeline(b *testing.B) {
	cache := sim.NewCache(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := policyFleet()
		cfg.Cache = cache
		rep, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Timeline) == 0 {
			b.Fatal("timeline ran no migrations")
		}
	}
}

// BenchmarkClusterTimelineUncached is the same timeline without the run
// cache: the cost of simulating every migration fresh.
func BenchmarkClusterTimelineUncached(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(policyFleet()); err != nil {
			b.Fatal(err)
		}
	}
}
