package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consolidation"
	"repro/internal/migration"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchmarkClusterTimeline measures a full 8-host policy-driven
// timeline: four planning rounds, every planned migration lowered to
// the kernel and answered through a shared run cache. It is the
// cluster-layer companion to the campaign benchmarks in bench_test.go
// at the repo root and runs in the CI bench smoke.
func BenchmarkClusterTimeline(b *testing.B) {
	cache := sim.NewCache(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := policyFleet()
		cfg.Cache = cache
		rep, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Timeline) == 0 {
			b.Fatal("timeline ran no migrations")
		}
	}
}

// BenchmarkClusterTimelineUncached is the same timeline without the run
// cache: the cost of simulating every migration fresh.
func BenchmarkClusterTimelineUncached(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(policyFleet()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFleet builds an n-host single-switch consolidation fixture that
// scales the scheduler's load with n: every fourth host runs a nearly
// idle straggler the energy-aware policy drains, the rest carry
// moderate phased load, so the first tick dispatches ~n/4 concurrent
// migrations that all contend on one switch — the worst case for the
// event loop (flight count, occupancy churn and snapshot size all grow
// with n).
func benchFleet(n int) Config {
	hosts := make([]Host, n)
	for i := range hosts {
		name := fmt.Sprintf("h%04d", i)
		if i%4 == 3 {
			hosts[i] = Host{Name: name, Machine: "m02", VMs: []VM{{
				Name: fmt.Sprintf("idle%04d", i), MemBytes: gib(4),
				BusyVCPUs: 1, DirtyRatio: 0.05,
			}}}
			continue
		}
		vm := VM{
			Name: fmt.Sprintf("app%04d", i), MemBytes: gib(4),
			BusyVCPUs: 6 + float64(i%3)*2, DirtyRatio: 0.1,
		}
		if i%8 == 0 {
			vm.Phases = []workload.Phase{{Kind: workload.PhaseDiurnal, Duration: 24 * time.Hour, Level: 0.4, Peak: 1}}
		}
		hosts[i] = Host{Name: name, Machine: "m01", VMs: []VM{vm}}
	}
	return Config{
		Kind:         migration.Live,
		Hosts:        hosts,
		Policy:       consolidation.EnergyAware{Model: consolidation.HeuristicCost{}},
		PolicyConfig: consolidation.Config{Horizon: 24 * time.Hour},
		Tick:         30 * time.Minute,
		Horizon:      2 * time.Hour,
		Seed:         7,
	}
}

// benchTimeline runs the n-host fixture with a cache shared across
// iterations (like BenchmarkClusterTimeline): the first iteration pays
// the kernel runs, later ones measure the scheduling core.
func benchTimeline(b *testing.B, n int) {
	cache := sim.NewCache(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchFleet(n)
		cfg.Cache = cache
		rep, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.PeakFlights < n/8 {
			b.Fatalf("peak flights %d at %d hosts; fixture drift, the link is not contended", rep.PeakFlights, n)
		}
	}
}

// BenchmarkClusterTimeline64/256/1024 prove the scaling curve of the
// heap scheduler: wall clock per timeline must grow near-linearly in
// fleet size (the linear-scan loop grew quadratically). 1024 hosts is
// the ISSUE 5 target: a full policy-driven timeline in single-digit
// seconds.
func BenchmarkClusterTimeline64(b *testing.B)   { benchTimeline(b, 64) }
func BenchmarkClusterTimeline256(b *testing.B)  { benchTimeline(b, 256) }
func BenchmarkClusterTimeline1024(b *testing.B) { benchTimeline(b, 1024) }

// sparseFleet builds an n-host fixture shaped like a real large
// datacenter, mirroring the drain-100k-rolling scenario: most hosts are
// powered-on empty spares (never migration sources or targets), a
// quarter carry app guests whose drain fails the tight payback budget
// after a single cost probe, and a 512-host under-utilised pocket is
// worth merging. Planning rounds therefore scan ~n/4 populated hosts
// out of n while the kernel count stays bounded by the pocket — the
// shape that makes a 24-hour 100k-host timeline finish in seconds.
func sparseFleet(n int) Config {
	const lows = 512
	apps := n / 4
	hosts := make([]Host, 0, n)
	for i := 0; i < apps; i++ {
		hosts = append(hosts, Host{Name: fmt.Sprintf("app%06d", i), Machine: "m01", VMs: []VM{{
			Name: fmt.Sprintf("svc%06d", i), MemBytes: gib(8),
			BusyVCPUs: 5, DirtyRatio: 0.12,
		}}})
	}
	for i := 0; i < lows; i++ {
		hosts = append(hosts, Host{Name: fmt.Sprintf("low%06d", i), Machine: "m02", VMs: []VM{{
			Name: fmt.Sprintf("util%06d", i), MemBytes: gib(4),
			BusyVCPUs: 1, DirtyRatio: 0.04,
		}}})
	}
	for i := apps + lows; i < n; i++ {
		hosts = append(hosts, Host{Name: fmt.Sprintf("sp%06d", i), Machine: "m02"})
	}
	return Config{
		Kind:         migration.Live,
		Hosts:        hosts,
		Policy:       consolidation.EnergyAware{Model: consolidation.HeuristicCost{}},
		PolicyConfig: consolidation.Config{Horizon: 250 * time.Second, MaxMoves: 8},
		Tick:         15 * time.Minute,
		Horizon:      24 * time.Hour,
		Seed:         8,
	}
}

// benchSparseTimeline runs the n-host sparse fixture over a simulated
// 24-hour maintenance day, cache shared across iterations.
func benchSparseTimeline(b *testing.B, n int) {
	cache := sim.NewCache(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sparseFleet(n)
		cfg.Cache = cache
		rep, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Timeline) == 0 || rep.ReplanRounds != 96 {
			b.Fatalf("fixture drift: %d moves over %d rounds, want a converging 96-round day", len(rep.Timeline), rep.ReplanRounds)
		}
	}
}

// BenchmarkClusterTimeline8k/100k are the fleet-scale targets of the
// SoA re-plan work: a full 24-hour policy-driven day — 96 planning
// rounds over a sparse datacenter — must close in single-digit seconds
// at 100,000 hosts. Unlike the dense fixtures above, the migration
// count is bounded by the drainable pocket, so these measure the
// planner's scan and the incremental view, not kernel throughput.
func BenchmarkClusterTimeline8k(b *testing.B)   { benchSparseTimeline(b, 8192) }
func BenchmarkClusterTimeline100k(b *testing.B) { benchSparseTimeline(b, 100000) }
