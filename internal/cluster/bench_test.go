package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consolidation"
	"repro/internal/migration"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchmarkClusterTimeline measures a full 8-host policy-driven
// timeline: four planning rounds, every planned migration lowered to
// the kernel and answered through a shared run cache. It is the
// cluster-layer companion to the campaign benchmarks in bench_test.go
// at the repo root and runs in the CI bench smoke.
func BenchmarkClusterTimeline(b *testing.B) {
	cache := sim.NewCache(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := policyFleet()
		cfg.Cache = cache
		rep, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Timeline) == 0 {
			b.Fatal("timeline ran no migrations")
		}
	}
}

// BenchmarkClusterTimelineUncached is the same timeline without the run
// cache: the cost of simulating every migration fresh.
func BenchmarkClusterTimelineUncached(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(policyFleet()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFleet builds an n-host single-switch consolidation fixture that
// scales the scheduler's load with n: every fourth host runs a nearly
// idle straggler the energy-aware policy drains, the rest carry
// moderate phased load, so the first tick dispatches ~n/4 concurrent
// migrations that all contend on one switch — the worst case for the
// event loop (flight count, occupancy churn and snapshot size all grow
// with n).
func benchFleet(n int) Config {
	hosts := make([]Host, n)
	for i := range hosts {
		name := fmt.Sprintf("h%04d", i)
		if i%4 == 3 {
			hosts[i] = Host{Name: name, Machine: "m02", VMs: []VM{{
				Name: fmt.Sprintf("idle%04d", i), MemBytes: gib(4),
				BusyVCPUs: 1, DirtyRatio: 0.05,
			}}}
			continue
		}
		vm := VM{
			Name: fmt.Sprintf("app%04d", i), MemBytes: gib(4),
			BusyVCPUs: 6 + float64(i%3)*2, DirtyRatio: 0.1,
		}
		if i%8 == 0 {
			vm.Phases = []workload.Phase{{Kind: workload.PhaseDiurnal, Duration: 24 * time.Hour, Level: 0.4, Peak: 1}}
		}
		hosts[i] = Host{Name: name, Machine: "m01", VMs: []VM{vm}}
	}
	return Config{
		Kind:         migration.Live,
		Hosts:        hosts,
		Policy:       consolidation.EnergyAware{Model: consolidation.HeuristicCost{}},
		PolicyConfig: consolidation.Config{Horizon: 24 * time.Hour},
		Tick:         30 * time.Minute,
		Horizon:      2 * time.Hour,
		Seed:         7,
	}
}

// benchTimeline runs the n-host fixture with a cache shared across
// iterations (like BenchmarkClusterTimeline): the first iteration pays
// the kernel runs, later ones measure the scheduling core.
func benchTimeline(b *testing.B, n int) {
	cache := sim.NewCache(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchFleet(n)
		cfg.Cache = cache
		rep, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.PeakFlights < n/8 {
			b.Fatalf("peak flights %d at %d hosts; fixture drift, the link is not contended", rep.PeakFlights, n)
		}
	}
}

// BenchmarkClusterTimeline64/256/1024 prove the scaling curve of the
// heap scheduler: wall clock per timeline must grow near-linearly in
// fleet size (the linear-scan loop grew quadratically). 1024 hosts is
// the ISSUE 5 target: a full policy-driven timeline in single-digit
// seconds.
func BenchmarkClusterTimeline64(b *testing.B)   { benchTimeline(b, 64) }
func BenchmarkClusterTimeline256(b *testing.B)  { benchTimeline(b, 256) }
func BenchmarkClusterTimeline1024(b *testing.B) { benchTimeline(b, 1024) }
