package cluster

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestPhaseCursorMatchesReference property-tests the engine's O(1)
// phase cursor (vmRT.factor) against the specification walk (VM.factor)
// over random phase timelines and query schedules — monotone advances,
// rewinds behind the cursor (the final report snapshot can query an
// earlier instant), repeated queries at one instant, and queries far
// past the exhausted timeline. The two must agree bit-for-bit: the
// cursor resumes mid-walk, but it performs the same integer offsets and
// the same float division as the front-to-back walk.
func TestPhaseCursorMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(20260808))
	kinds := workload.PhaseKinds()
	for trial := 0; trial < 200; trial++ {
		spec := VM{Name: "p", MemBytes: gib(2), BusyVCPUs: 4}
		var total time.Duration
		for p := 0; p < r.Intn(5); p++ {
			ph := workload.Phase{
				Kind:     kinds[r.Intn(len(kinds))],
				Duration: time.Duration(1+r.Intn(300)) * time.Second,
				Level:    0.2 + r.Float64(),
				Peak:     0.5 + 1.5*r.Float64(),
			}
			spec.Phases = append(spec.Phases, ph)
			total += ph.Duration
		}
		rt := &vmRT{VM: spec}
		// Query schedule: mostly monotone, with deliberate rewinds and
		// past-the-end probes. Sub-second offsets exercise mid-phase
		// fractions rather than boundaries only.
		at := time.Duration(0)
		for q := 0; q < 100; q++ {
			switch r.Intn(10) {
			case 0: // rewind, possibly all the way to 0
				at = time.Duration(r.Int63n(int64(at) + 1))
			case 1: // jump past the exhausted timeline
				at = total + time.Duration(r.Int63n(int64(time.Hour)))
			case 2: // repeat the previous instant
			default: // monotone advance
				at += time.Duration(r.Int63n(int64(20 * time.Second)))
			}
			want := spec.factor(at)
			got := rt.factor(at)
			if got != want {
				t.Fatalf("trial %d query %d: cursor factor(%v) = %v, reference = %v (phases %+v)",
					trial, q, at, got, want, spec.Phases)
			}
			// busyAt/dirtyAt ride on the same cursor; spot-check the
			// derived values too.
			if rt.busyAt(at) != spec.busyAt(at) || rt.dirtyAt(at) != spec.dirtyAt(at) {
				t.Fatalf("trial %d query %d: derived demand diverged at %v", trial, q, at)
			}
		}
	}
}
