//go:build !race

package cluster

// raceEnabled reports whether the race detector instruments this build;
// the allocation-ceiling regression test skips under instrumentation
// because the detector's own bookkeeping allocates.
const raceEnabled = false
