package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/consolidation"
	"repro/internal/migration"
	"repro/internal/sim"
)

// singleMove is a 2-host cluster with one explicit migration — the
// minimal timeline failure events can hit.
func singleMove() Config {
	return Config{
		Kind: migration.Live,
		Hosts: fleet("m01",
			[]VM{vmSpec("va", 4, 0.5), vmSpec("vb", 2, 0.1)},
			nil,
		),
		Moves: []TimedMove{{VM: "va", From: "h00", To: "h01"}},
		Seed:  42,
	}
}

// mustRun is the test-side Run that fails the test on error.
func mustRun(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestHostCrashAbortsFlightAndOrphans(t *testing.T) {
	base := mustRun(t, singleMove())
	if len(base.Timeline) != 1 {
		t.Fatalf("baseline moved %d times, want 1", len(base.Timeline))
	}
	mid := base.Timeline[0].End / 2

	cfg := singleMove()
	cfg.Failures = []FailureEvent{{At: mid, Kind: FailHostCrash, Host: "h00"}}
	rep := mustRun(t, cfg)

	if len(rep.Timeline) != 0 {
		t.Errorf("crashed timeline completed %d migrations, want 0", len(rep.Timeline))
	}
	if rep.AbortedFlights != 1 || len(rep.Aborted) != 1 {
		t.Fatalf("AbortedFlights = %d (%d records), want 1", rep.AbortedFlights, len(rep.Aborted))
	}
	a := rep.Aborted[0]
	if a.VM != "va" || a.Reason != "host-crash h00" || a.End != mid {
		t.Errorf("abort record = %+v, want va killed by host-crash h00 at %v", a, mid)
	}
	if a.Energy <= 0 || a.Energy >= base.Timeline[0].Energy {
		t.Errorf("abort energy %v not in (0, full migration %v)", a.Energy, base.Timeline[0].Energy)
	}
	if rep.TotalEnergy != a.Energy {
		t.Errorf("TotalEnergy = %v, want the aborted flight's charge %v", rep.TotalEnergy, a.Energy)
	}
	// Both residents of h00 — including va, which the abort returned to
	// its source — are orphaned, and nothing evacuated them.
	if rep.OrphanedVMs != 2 || rep.EvacuatedVMs != 0 || rep.EvacuationDeadlineMet {
		t.Errorf("SLO = %d orphaned / %d evacuated / met=%v, want 2/0/false",
			rep.OrphanedVMs, rep.EvacuatedVMs, rep.EvacuationDeadlineMet)
	}
	// The crashed host is not a "freed" host even though the fleet's
	// empty-host scan runs after it dropped out of the power floor.
	for _, h := range rep.FreedHosts {
		if h == "h00" {
			t.Error("crashed host h00 reported as freed")
		}
	}
	for _, h := range rep.Final {
		if h.Name == "h00" && !h.Down {
			t.Error("final placement does not mark h00 down")
		}
	}
}

func TestFlightAbortReturnsVMForRedispatch(t *testing.T) {
	base := mustRun(t, singleMove())
	end := base.Timeline[0].End

	cfg := singleMove()
	cfg.Failures = []FailureEvent{
		{At: end / 2, Kind: FailFlightAbort, VM: "va"},
		// vb never flies: aborting it is a documented no-op.
		{At: end / 2, Kind: FailFlightAbort, VM: "vb"},
	}
	// Retry the move after the abort; va is back on h00, so the same
	// route dispatches cleanly.
	cfg.Moves = append(cfg.Moves, TimedMove{VM: "va", From: "h00", To: "h01", At: end + time.Minute})
	rep := mustRun(t, cfg)

	if len(rep.Aborted) != 1 || rep.Aborted[0].Reason != "flight-abort" {
		t.Fatalf("aborts = %+v, want exactly va's flight-abort", rep.Aborted)
	}
	if len(rep.Timeline) != 1 || rep.Timeline[0].Start != end+time.Minute {
		t.Fatalf("timeline = %+v, want only the retry dispatched at %v", rep.Timeline, end+time.Minute)
	}
	// The retry runs on a private link from a clean start: its physics
	// match the baseline's (same scenario, next dispatch index → only
	// the seed differs, and energy is the same measured quantity class).
	final := hostNamed(t, rep, "h01")
	if len(final.VMs) != 1 || final.VMs[0].Name != "va" {
		t.Errorf("va did not land on h01 after the retry: %+v", final.VMs)
	}
	if rep.OrphanedVMs != 0 || !rep.EvacuationDeadlineMet {
		t.Errorf("flight-abort alone orphaned %d VMs (met=%v); crashes only do that",
			rep.OrphanedVMs, rep.EvacuationDeadlineMet)
	}
}

// hostNamed finds one host in the final placement.
func hostNamed(t *testing.T, rep *Report, name string) consolidation.HostState {
	t.Helper()
	for _, h := range rep.Final {
		if h.Name == name {
			return h
		}
	}
	t.Fatalf("host %q missing from final placement", name)
	return consolidation.HostState{}
}

func TestSwitchOutageStallsTransferExactly(t *testing.T) {
	base := mustRun(t, singleMove())
	end := base.Timeline[0].End
	const stall = 30 * time.Second

	cfg := singleMove()
	cfg.Failures = []FailureEvent{
		{At: end / 2, Kind: FailSwitchOutage, Switch: "Cisco Catalyst 3750"},
		{At: end/2 + stall, Kind: FailSwitchRestore, Switch: "Cisco Catalyst 3750"},
	}
	rep := mustRun(t, cfg)
	if len(rep.Timeline) != 1 {
		t.Fatalf("stalled timeline completed %d migrations, want 1", len(rep.Timeline))
	}
	got := rep.Timeline[0]
	// The outage freezes the transfer's virtual clock for exactly the
	// window span: completion slips by the stall, to the nanosecond.
	if got.End != end+stall {
		t.Errorf("stalled completion at %v, want %v + %v = %v", got.End, end, stall, end+stall)
	}
	if got.Stretch <= 1 {
		t.Errorf("stall did not register as stretch: %v", got.Stretch)
	}
	// The stretched transfer sustains transfer power through the stall,
	// so it costs more than the intrinsic run — same convention as link
	// contention.
	if got.Energy <= got.IntrinsicEnergy {
		t.Errorf("stalled energy %v not above intrinsic %v", got.Energy, got.IntrinsicEnergy)
	}
	if len(rep.Aborted) != 0 {
		t.Errorf("restored outage aborted flights: %+v", rep.Aborted)
	}
}

func TestUnrestoredOutageStrandsFlight(t *testing.T) {
	base := mustRun(t, singleMove())
	mid := base.Timeline[0].End / 2

	cfg := singleMove()
	cfg.Failures = []FailureEvent{{At: mid, Kind: FailSwitchOutage, Switch: "Cisco Catalyst 3750"}}
	rep := mustRun(t, cfg)
	if len(rep.Timeline) != 0 {
		t.Errorf("stranded timeline completed %d migrations, want 0", len(rep.Timeline))
	}
	if len(rep.Aborted) != 1 || rep.Aborted[0].Reason != "stranded" || rep.Aborted[0].End != mid {
		t.Fatalf("aborts = %+v, want va stranded at the drain instant %v", rep.Aborted, mid)
	}
	// The VM never left its source and the source is alive: no orphan.
	if rep.OrphanedVMs != 0 || !rep.EvacuationDeadlineMet {
		t.Errorf("stranding orphaned %d VMs (met=%v)", rep.OrphanedVMs, rep.EvacuationDeadlineMet)
	}
	src := hostNamed(t, rep, "h00")
	if len(src.VMs) != 2 {
		t.Errorf("source lost a VM to a stranded flight: %+v", src.VMs)
	}
}

// evacFleet is a 3-host policy cluster whose tick-0 plan drains the
// small host — giving a flight to crash and an orphan to evacuate.
func evacFleet() Config {
	return Config{
		Kind: migration.Live,
		Hosts: fleet("m01",
			[]VM{vmSpec("small", 2, 0.1)},
			[]VM{vmSpec("big1", 10, 0.1)},
			[]VM{vmSpec("big2", 12, 0.1)},
		),
		Policy:       consolidation.EnergyAware{Model: consolidation.HeuristicCost{}},
		PolicyConfig: consolidation.Config{Horizon: 24 * time.Hour},
		Tick:         time.Minute,
		Horizon:      10 * time.Minute,
		Seed:         3,
	}
}

func TestCrashEvacuationMeetsDeadline(t *testing.T) {
	base := mustRun(t, evacFleet())
	if len(base.Timeline) == 0 || base.Timeline[0].Start != 0 {
		t.Fatalf("fixture drift: tick 0 planned no drain (%+v)", base.Timeline)
	}
	crashAt := base.Timeline[0].End / 2

	cfg := evacFleet()
	cfg.Failures = []FailureEvent{{At: crashAt, Kind: FailHostCrash, Host: "h00"}}
	cfg.EvacuationDeadline = 9 * time.Minute
	rep := mustRun(t, cfg)

	if len(rep.Aborted) != 1 || !strings.HasPrefix(rep.Aborted[0].Reason, "host-crash") {
		t.Fatalf("aborts = %+v, want the in-flight drain killed by the crash", rep.Aborted)
	}
	if rep.OrphanedVMs != 1 || rep.EvacuatedVMs != 1 {
		t.Fatalf("SLO = %d orphaned / %d evacuated, want 1/1", rep.OrphanedVMs, rep.EvacuatedVMs)
	}
	if !rep.EvacuationDeadlineMet {
		t.Error("evacuation within 9 min not credited")
	}
	// The evacuation is a real migration off the dead host.
	evacs := 0
	for _, rec := range rep.Timeline {
		if rec.VM == "small" && rec.From == "h00" {
			evacs++
		}
	}
	if evacs != 1 {
		t.Errorf("timeline has %d evacuation moves of small off h00, want 1", evacs)
	}
	for _, h := range rep.FreedHosts {
		if h == "h00" {
			t.Error("dead host h00 counted as freed after evacuation emptied it")
		}
	}

	// The same timeline against an impossible deadline: the evacuation
	// happens, but too late.
	tight := evacFleet()
	tight.Failures = cfg.Failures
	tight.EvacuationDeadline = time.Second
	trep := mustRun(t, tight)
	if trep.EvacuatedVMs != 1 || trep.EvacuationDeadlineMet {
		t.Errorf("1 s deadline: evacuated=%d met=%v, want 1/false", trep.EvacuatedVMs, trep.EvacuationDeadlineMet)
	}
}

func TestAbortCooldownPinsOneRound(t *testing.T) {
	// One move per round: the aborted VM's cool-down pin must be the
	// only placement entry the next tick sees.
	fixture := evacFleet()
	fixture.PolicyConfig.MaxMoves = 1
	base := mustRun(t, fixture)
	abortAt := base.Timeline[0].End / 2
	if abortAt <= base.Timeline[0].Start {
		t.Fatal("fixture drift: no mid-flight instant to abort at")
	}

	cfg := fixture
	cfg.Failures = []FailureEvent{{At: abortAt, Kind: FailFlightAbort, VM: "small"}}
	rep := mustRun(t, cfg)

	if len(rep.Aborted) != 1 {
		t.Fatalf("aborts = %+v, want exactly the injected one", rep.Aborted)
	}
	// The next tick must see the cool-down pin — exactly 1 placement
	// entry, no reservation, the flight is gone — and cannot move the
	// VM; the pin lasts exactly one round.
	if len(rep.Ticks) < 3 {
		t.Fatalf("ticks = %d, want ≥ 3", len(rep.Ticks))
	}
	after := rep.Ticks[1]
	if after.Pinned != 1 {
		t.Errorf("tick after abort: pinned=%d, want the cool-down pin alone", after.Pinned)
	}
	for _, rec := range rep.Timeline {
		if rec.VM == "small" && rec.Start == after.At {
			t.Errorf("cool-down round re-dispatched the aborted VM: %+v", rec)
		}
	}
	if rep.Ticks[2].Pinned != 0 {
		t.Errorf("cool-down pin survived a second round: pinned=%d at %v",
			rep.Ticks[2].Pinned, rep.Ticks[2].At)
	}
}

func TestCheckMoveRefusesDownTargets(t *testing.T) {
	cfg := singleMove()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	move := TimedMove{VM: "va", From: "h00", To: "h01"}

	e.byName["h01"].down = true
	if _, _, err := e.checkMove(move); err == nil || !strings.Contains(err.Error(), "down") {
		t.Errorf("move to a crashed host: err = %v, want a down refusal", err)
	}
	e.byName["h01"].down = false

	e.switchState(e.byName["h01"].sw).down = true
	if _, _, err := e.checkMove(move); err == nil || !strings.Contains(err.Error(), "switch") {
		t.Errorf("move onto a downed switch: err = %v, want a switch refusal", err)
	}
	// Moving OFF a crashed host stays legal: that is an evacuation.
	e.switchState(e.byName["h01"].sw).down = false
	e.byName["h00"].down = true
	if _, _, err := e.checkMove(move); err != nil {
		t.Errorf("evacuation off a crashed host refused: %v", err)
	}
}

// TestDispatchTransactional injects a failing kernel under one move of
// a two-move batch: the dispatch must error out without committing any
// engine state — no migrating flags, no reservations, no scheduled
// flights, no consumed dispatch indices.
func TestDispatchTransactional(t *testing.T) {
	cfg := explicitPair(0)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	var cache *sim.Cache // nil-receiver-safe: runs uncached
	cfg.simOverride = func(sc sim.Scenario) (*sim.RunResult, error) {
		if strings.Contains(sc.Name, "vb") {
			return nil, errors.New("injected kernel failure")
		}
		return cache.Run(sc)
	}
	e, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.run()
	if err == nil || !strings.Contains(err.Error(), "injected kernel failure") {
		t.Fatalf("run with a failing kernel: err = %v", err)
	}
	for name, v := range e.vms {
		if v.migrating {
			t.Errorf("VM %s left marked migrating by the failed batch", name)
		}
	}
	for _, h := range e.hosts {
		if len(h.incoming) != 0 {
			t.Errorf("host %s left with %d incoming reservations", h.Name, len(h.incoming))
		}
	}
	if e.inFlight != 0 || e.nextIdx != 0 || len(e.fail.airborne) != 0 || len(e.timed.fs) != 0 {
		t.Errorf("engine state not rolled back: inFlight=%d nextIdx=%d airborne=%d timed=%d",
			e.inFlight, e.nextIdx, len(e.fail.airborne), len(e.timed.fs))
	}
	if e.vms["va"].host.Name != "h00" {
		t.Errorf("va moved to %s despite the failed batch", e.vms["va"].host.Name)
	}
}

// TestPowerTraceIntegral checks the fleet power trace on a known
// timeline: the trace opens on the fleet idle floor, closes back to it,
// drops by the crashed host's floor at a crash, and integrates to
// idle·span + migration energy.
func TestPowerTraceIntegral(t *testing.T) {
	rep := mustRun(t, explicitPair(0))
	var idle float64
	for _, h := range rep.Final {
		idle += float64(h.IdlePower)
	}
	if len(rep.PowerTrace) == 0 {
		t.Fatal("no power trace")
	}
	for i := 1; i < len(rep.PowerTrace); i++ {
		if rep.PowerTrace[i].At <= rep.PowerTrace[i-1].At {
			t.Fatalf("trace breakpoints not strictly increasing: %+v", rep.PowerTrace)
		}
	}
	last := rep.PowerTrace[len(rep.PowerTrace)-1]
	if float64(last.Watts) != idle {
		t.Errorf("trace ends at %v W, want the bare idle floor %v W", last.Watts, idle)
	}
	want := idle*rep.Makespan.Seconds() + float64(rep.TotalEnergy)
	got := float64(rep.FleetEnergy)
	if diff := got - want; diff > 1e-6*want || diff < -1e-6*want {
		t.Errorf("FleetEnergy = %v, want idle·makespan + migrations = %v", got, want)
	}

	// A crash after the makespan: the floor visibly drops by that
	// host's idle power at the crash instant.
	cfg := explicitPair(0)
	crashAt := rep.Makespan + time.Minute
	cfg.Failures = []FailureEvent{{At: crashAt, Kind: FailHostCrash, Host: "h01"}}
	crep := mustRun(t, cfg)
	var h01 float64
	for _, h := range crep.Final {
		if h.Name == "h01" {
			h01 = float64(h.IdlePower)
		}
	}
	clast := crep.PowerTrace[len(crep.PowerTrace)-1]
	if clast.At != crashAt || float64(clast.Watts) != idle-h01 {
		t.Errorf("post-crash floor = %v W at %v, want %v W at %v", clast.Watts, clast.At, idle-h01, crashAt)
	}
}

// TestValidateFailures covers the failure schedule's static checks.
func TestValidateFailures(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative at", func(c *Config) { c.Failures[0].At = -time.Second }, "before the timeline"},
		{"unknown crash host", func(c *Config) { c.Failures[0].Host = "h99" }, "unknown host"},
		{"two targets", func(c *Config) { c.Failures[0].VM = "va" }, "exactly one"},
		{"unknown kind", func(c *Config) { c.Failures[0].Kind = "meteor" }, "unknown kind"},
		{"unknown abort vm", func(c *Config) {
			c.Failures[0] = FailureEvent{Kind: FailFlightAbort, VM: "ghost"}
		}, "unknown VM"},
		{"unknown switch", func(c *Config) {
			c.Failures[0] = FailureEvent{Kind: FailSwitchOutage, Switch: "nope"}
		}, "unknown switch"},
		{"double crash", func(c *Config) {
			c.Failures = append(c.Failures, FailureEvent{At: time.Minute, Kind: FailHostCrash, Host: "h01"})
		}, "twice"},
		{"double outage", func(c *Config) {
			c.Failures = []FailureEvent{
				{Kind: FailSwitchOutage, Switch: "Cisco Catalyst 3750"},
				{At: time.Second, Kind: FailSwitchOutage, Switch: "Cisco Catalyst 3750"},
			}
		}, "twice"},
		{"unpaired restore", func(c *Config) {
			c.Failures = []FailureEvent{{Kind: FailSwitchRestore, Switch: "Cisco Catalyst 3750"}}
		}, "not down"},
		{"serial", func(c *Config) {
			c.Serial = true
			c.Moves[0].At = 0
			c.Failures[0].At = 0
		}, "serial"},
		{"negative deadline", func(c *Config) { c.EvacuationDeadline = -time.Second }, "deadline"},
		{"move to crashed host", func(c *Config) {
			c.Failures[0] = FailureEvent{At: time.Second, Kind: FailHostCrash, Host: "h01"}
			c.Moves[0].At = 2 * time.Second
		}, "after it crashes"},
		{"move inside outage", func(c *Config) {
			c.Failures = []FailureEvent{
				{At: time.Second, Kind: FailSwitchOutage, Switch: "Cisco Catalyst 3750"},
				{At: time.Minute, Kind: FailSwitchRestore, Switch: "Cisco Catalyst 3750"},
			}
			c.Moves[0].At = 30 * time.Second
		}, "outage"},
	}
	for _, tc := range cases {
		cfg := singleMove()
		cfg.Failures = []FailureEvent{{At: time.Minute, Kind: FailHostCrash, Host: "h01"}}
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// A move dispatched exactly at the restore instant is legal: outage
	// windows are [outage, restore).
	ok := singleMove()
	ok.Failures = []FailureEvent{
		{At: time.Second, Kind: FailSwitchOutage, Switch: "Cisco Catalyst 3750"},
		{At: time.Minute, Kind: FailSwitchRestore, Switch: "Cisco Catalyst 3750"},
	}
	ok.Moves[0].At = time.Minute
	if err := ok.Validate(); err != nil {
		t.Errorf("move at the restore instant refused: %v", err)
	}
}
