package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/consolidation"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
)

// seedStride separates the derived seeds of a timeline's migrations; it
// is the two-host executor's historical stride, which keeps the lowered
// scenarios — and therefore the run-cache keys and golden outputs — of
// wrapped two-host plans unchanged.
const seedStride = 607

// hostRT is a host's runtime state: its resolved spec plus the resident
// guests, kept in name order for deterministic iteration.
type hostRT struct {
	*resolved
	vms []*vmRT
	// down marks a crashed host: no dispatch may target it, its idle
	// floor leaves the power trace, and its residents are evacuation
	// candidates.
	down bool
	// incoming lists the flights bound for this host, in dispatch order
	// (append at dispatch, remove at land), so snapshots place their
	// destination reservations without rebuilding a map per tick.
	incoming []*flight
	// snap is the host's persistent snapshot scratch: the VMState slice
	// handed to the policy every tick, reused across rounds.
	snap []consolidation.VMState

	// Incremental-view bookkeeping (see view.go): the host's index in
	// the engine's SoA policy view, its dirty/varying marks, and the
	// counts of phase-driven residents and inbound reservations that
	// keep it in the varying set.
	vi        int32
	dirtyMark bool
	varyMark  bool
	phasedRes int
	phasedInc int
}

// vmRT is a guest's runtime state, including the phase cursor that makes
// repeated busyAt/dirtyAt evaluation O(1) for the engine's monotonically
// advancing clock instead of a front-to-back walk per call.
type vmRT struct {
	VM
	host      *hostRT
	migrating bool
	// phased marks a guest with a workload timeline: its demand varies
	// continuously, so its host refreshes in the view every tick.
	phased bool
	// Phase cursor: pi is the phase the last evaluation landed in,
	// pstart the cluster time that phase starts at. A query before
	// pstart (the final report snapshot can rewind) resets the cursor.
	pi     int
	pstart time.Duration
}

// factor evaluates the VM's intensity at cluster time t through the
// cursor. It computes exactly what VM.factor computes — same integer
// offsets, same float division — but resumes from the last phase
// instead of walking the timeline from the front on every call.
func (v *vmRT) factor(t time.Duration) float64 {
	if len(v.Phases) == 0 {
		return 1
	}
	if t < v.pstart {
		v.pi, v.pstart = 0, 0
	}
	for v.pi < len(v.Phases) {
		d := v.Phases[v.pi].Duration
		if off := t - v.pstart; off < d {
			return v.Phases[v.pi].Factor(float64(off) / float64(d))
		}
		v.pi++
		v.pstart += d
	}
	return v.Phases[len(v.Phases)-1].Factor(1)
}

// busyAt returns the VM's CPU demand at cluster time t.
func (v *vmRT) busyAt(t time.Duration) float64 {
	return v.BusyVCPUs * v.factor(t)
}

// dirtyAt returns the VM's dirty ratio at cluster time t, clamped to a
// physical fraction.
func (v *vmRT) dirtyAt(t time.Duration) units.Fraction {
	return units.Fraction(float64(v.DirtyRatio) * v.factor(t)).Clamp()
}

// busyAtExcluding sums the host's CPU demand at time t, leaving out one
// guest (the one about to migrate). Guests are summed in name order so
// the result is reproducible.
func (h *hostRT) busyAtExcluding(t time.Duration, skip *vmRT) float64 {
	s := 0.0
	for _, v := range h.vms {
		if v == skip {
			continue
		}
		s += v.busyAt(t)
	}
	return s
}

// Flight lifecycle: the fixed-span initiation head, the link-shared
// transfer, the fixed-span activation tail.
const (
	fHead = iota
	fTransfer
	fTail
)

// flight is one in-progress migration on the cluster timeline.
type flight struct {
	idx      int
	vm       *vmRT
	from, to *hostRT
	sw       string
	pair     string
	resName  string // vm.Name + "+incoming", precomputed for snapshots
	run      *sim.RunResult

	state            int
	start            time.Duration
	headEnd          time.Duration
	work             time.Duration // remaining intrinsic transfer time
	intrinsic        time.Duration // total intrinsic transfer time
	tailSpan         time.Duration
	transferEnd, end time.Duration

	// Scheduler bookkeeping: the fixed-instant key while in the timed
	// heap (head/tail), the virtual completion key while in a switch
	// heap (transfer), and the current heap position.
	due      time.Duration
	virtDone time.Duration
	heapIdx  int
}

// indexedRec pairs a finished migration record with its dispatch index
// so the report can list the timeline in dispatch order.
type indexedRec struct {
	idx int
	rec MigrationRecord
}

type engine struct {
	cfg     Config
	ctx     context.Context
	done    <-chan struct{} // ctx.Done(), captured once; nil when uncancellable
	hosts   []*hostRT
	byName  map[string]*hostRT
	vms     map[string]*vmRT
	now     time.Duration
	tick    time.Duration
	pending []TimedMove
	shifts  []PhaseShift
	si      int
	nextIdx int
	recs    []indexedRec
	rep     *Report

	// Scheduling state (see schedule.go): fixed-instant events in one
	// indexed min-heap, transfers per switch in virtual time.
	timed    flightHeap
	switches map[string]*swState
	active   []*swState
	due      []*flight // per-fire scratch, reused
	inFlight int
	peak     int

	// flights is the linear reference scheduler's state, maintained only
	// when cfg.referenceScan asks for the retained O(F²) loop.
	flights []*flight

	// fail is the failure-injection state (see failure.go). The airborne
	// list inside is maintained unconditionally; the event schedule and
	// orphan maps exist only when Config.Failures is non-empty.
	fail failState

	// Snapshot scratch, reused every policy round.
	snapHosts  []consolidation.HostState
	snapPinned []string
	snapEvac   []string

	// Incremental policy-view state (see view.go), active when the
	// policy implements consolidation.ViewPolicy on the heap scheduler.
	viewOn       bool
	vp           consolidation.ViewPolicy
	pview        consolidation.View
	viewLive     int     // live slot count in the view arena
	dirty        []int32 // hosts touched by events since the last refresh
	varying      []int32 // hosts with phase-driven demand, refreshed every tick
	orderScratch []int32
	// viewEvents flags plan-input changes that are not per-host state
	// (an abort cool-down expiring); havePlan/lastPlanMoves/lastPinned
	// let a clean tick reuse the previous round's (empty) plan.
	viewEvents    bool
	havePlan      bool
	lastPlanMoves int
	lastPinned    int
	downHosts     []*hostRT

	// pendJoin is the one in-flight dispatch batch whose kernel runs
	// were farmed to the worker pool; the event loop joins it before
	// selecting the next event (see joinPending).
	pendJoin *pendingDispatch
}

// pendingDispatch carries a staged dispatch batch from the event that
// admitted it to the join point: the flights (not yet engine state),
// the dispatch instant, and the channel its kernel results arrive on.
type pendingDispatch struct {
	t       time.Duration
	flights []*flight
	ch      chan dispatchResult
}

type dispatchResult struct {
	runs []*sim.RunResult
	err  error
}

// Run executes one cluster timeline to completion and returns its
// report. The result is bit-identical across runs, worker counts and
// cache settings.
func Run(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Serial {
		return e.runSerial()
	}
	return e.run()
}

func newEngine(cfg Config) (*engine, error) {
	hosts, err := cfg.sortedHosts()
	if err != nil {
		return nil, err
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	e := &engine{
		cfg:      cfg,
		ctx:      ctx,
		done:     ctx.Done(),
		byName:   make(map[string]*hostRT, len(hosts)),
		vms:      make(map[string]*vmRT),
		rep:      &Report{},
		timed:    flightHeap{key: dueKey},
		switches: make(map[string]*swState),
	}
	for _, r := range hosts {
		h := &hostRT{resolved: r, vi: int32(len(e.hosts))}
		for _, v := range r.VMs {
			vr := &vmRT{VM: v, host: h, phased: len(v.Phases) > 0}
			if vr.phased {
				h.phasedRes++
			}
			h.vms = append(h.vms, vr)
			e.vms[v.Name] = vr
		}
		e.hosts = append(e.hosts, h)
		e.byName[h.Name] = h
	}
	e.snapHosts = make([]consolidation.HostState, 0, len(e.hosts))
	e.initFailures(cfg.Failures)
	if vp, ok := e.viewEnabled(); ok && !cfg.Serial {
		e.viewOn, e.vp = true, vp
		e.rebuildView(0)
		for _, h := range e.hosts {
			if h.phasedRes > 0 {
				e.markHostVarying(h)
			}
		}
	}
	// Explicit moves dispatch in (At, spec order); the stable sort keeps
	// same-instant moves in the order the author wrote them.
	e.pending = append([]TimedMove(nil), cfg.Moves...)
	sort.SliceStable(e.pending, func(i, j int) bool { return e.pending[i].At < e.pending[j].At })
	// Phase transitions inside the horizon, as observable events.
	if cfg.Horizon > 0 {
		for _, h := range e.hosts {
			for _, v := range h.vms {
				cum := time.Duration(0)
				for i, p := range v.Phases {
					cum += p.Duration
					if cum >= cfg.Horizon {
						break
					}
					next := ""
					if i+1 < len(v.Phases) {
						next = phaseLabel(v.Phases[i+1], i+1)
					}
					e.shifts = append(e.shifts, PhaseShift{At: cum, VM: v.Name, Phase: next})
				}
			}
		}
		sort.SliceStable(e.shifts, func(i, j int) bool {
			if e.shifts[i].At != e.shifts[j].At {
				return e.shifts[i].At < e.shifts[j].At
			}
			return e.shifts[i].VM < e.shifts[j].VM
		})
	}
	return e, nil
}

// phaseLabel names a phase for the shift record.
func phaseLabel(p workload.Phase, i int) string {
	if p.Name != "" {
		return p.Name
	}
	return fmt.Sprintf("%s%d", p.Kind, i)
}

// run drives the discrete-event loop: find the next instant anything
// happens, advance the shared-link transfers to it, then fire what is
// due — completions first, then phase shifts, then new dispatches.
func (e *engine) run() (*Report, error) {
	next := e.nextEventTime
	advance := e.advance
	fire := e.fire
	if e.cfg.referenceScan {
		next = e.nextEventTimeScan
		advance = e.advanceScan
		fire = e.fireScan
	}
	for {
		// Cancellation boundary: one non-blocking poll per event (the
		// checks vanish for background contexts, whose Done is nil).
		// The context also bounds any kernel batch still in flight, so
		// returning here cannot leak the dispatch goroutine.
		if e.done != nil {
			select {
			case <-e.done:
				return nil, e.ctx.Err()
			default:
			}
		}
		// Join the off-loop kernel batch before selecting the next
		// event: a flight's first scheduler event (its head end) derives
		// from its kernel result, so no later event may be chosen — let
		// alone fired — until the batch has committed.
		if err := e.joinPending(); err != nil {
			return nil, err
		}
		t, ok := next()
		if !ok {
			break
		}
		advance(t)
		if err := fire(t); err != nil {
			return nil, err
		}
	}
	e.finish()
	return e.rep, nil
}

// nextEventTime returns the earliest instant with something due: the
// next policy tick, explicit dispatch or phase shift (each O(1)), the
// top of the fixed-instant event heap, and each traffic-carrying
// switch's projected next transfer completion (O(1) per switch).
func (e *engine) nextEventTime() (time.Duration, bool) {
	t, ok := time.Duration(math.MaxInt64), false
	consider := func(c time.Duration) {
		if c < t {
			t = c
		}
		ok = true
	}
	if e.cfg.Policy != nil && e.tick < e.cfg.Horizon {
		consider(e.tick)
	}
	if len(e.pending) > 0 {
		consider(e.pending[0].At)
	}
	if e.si < len(e.shifts) {
		consider(e.shifts[e.si].At)
	}
	if e.fail.fi < len(e.fail.events) {
		consider(e.fail.events[e.fail.fi].At)
	}
	if len(e.timed.fs) > 0 {
		consider(e.timed.fs[0].due)
	}
	for _, s := range e.active {
		if s.down {
			continue // stalled: the outage froze this link's clock
		}
		consider(s.nextAt(e.now))
	}
	return t, ok
}

// advance moves the clock to t, draining every traffic-carrying switch
// by its equal share of the elapsed span: virt += dt/occ, one integer
// division per switch instead of one per flight. Occupancy is constant
// between events, so the division is the exact floor the linear
// reference applies to each flight's remaining work; a due flight's
// remaining work (virtDone − virt) reaches exactly zero.
func (e *engine) advance(t time.Duration) {
	dt := t - e.now
	if dt > 0 {
		for _, s := range e.active {
			if s.down {
				continue // outage: virtual time freezes, work is preserved
			}
			s.virt += dt / s.occ()
		}
	}
	e.now = t
}

// transition advances one flight through every lifecycle phase due at
// instant t (a flight may cascade through zero-span phases within one
// instant), re-registering it with the scheduler wherever it comes to
// rest. Callers hand in flights already removed from their heap.
func (e *engine) transition(f *flight, t time.Duration) {
	for {
		switch f.state {
		case fHead:
			if f.headEnd > t {
				e.timedPush(f, f.headEnd)
				return
			}
			f.state = fTransfer
			if f.work > 0 {
				s := e.switchState(f.sw)
				f.virtDone = s.virt + f.work
				s.heap.push(f)
				e.activate(s)
				return
			}
			// Zero-length transfer: complete in the same instant, exactly
			// like the linear loop's cascade.
		case fTransfer:
			// Only reached when the transfer is complete at t: popped from
			// its switch heap by fire, or cascading with zero work.
			f.transferEnd = t
			f.state = fTail
			f.end = t + f.tailSpan
		default:
			if f.end > t {
				e.timedPush(f, f.end)
				return
			}
			e.land(f, t)
			return
		}
	}
}

// fire processes everything due at instant t.
func (e *engine) fire(t time.Duration) error {
	// 1. Flight transitions. Collect every due flight — fixed-instant
	// head/tail events from the timed heap, transfer completions from
	// each active switch's virtual-time heap — then process them in
	// dispatch order, matching the linear reference.
	e.due = e.due[:0]
	for len(e.timed.fs) > 0 && e.timed.fs[0].due <= t {
		e.due = append(e.due, e.timed.pop())
	}
	for _, s := range e.active {
		for len(s.heap.fs) > 0 && s.heap.fs[0].virtDone <= s.virt {
			e.due = append(e.due, s.heap.pop())
		}
	}
	if len(e.due) > 1 {
		sort.Slice(e.due, func(i, j int) bool { return e.due[i].idx < e.due[j].idx })
	}
	for _, f := range e.due {
		e.transition(f, t)
	}

	// 2. Failure events: same-instant completions above beat the
	// failure; shifts and dispatches below observe the post-failure
	// state. Aborts may empty switch heaps, so compaction follows.
	e.applyFailures(t)
	e.compactActive()

	// 3. Workload phase transitions.
	for e.si < len(e.shifts) && e.shifts[e.si].At <= t {
		e.rep.Shifts = append(e.rep.Shifts, e.shifts[e.si])
		e.si++
	}

	// 4. New dispatches: the policy tick's plan, then explicit moves.
	return e.dispatchDue(t)
}

// dispatchDue runs the policy round and explicit moves due at instant t
// and dispatches the resulting batch. Shared by both schedulers.
func (e *engine) dispatchDue(t time.Duration) error {
	var batch []TimedMove
	if e.cfg.Policy != nil && e.tick <= t && e.tick < e.cfg.Horizon {
		moves, pinnedLen, err := e.planRound(t)
		if err != nil {
			return err
		}
		for _, m := range moves {
			batch = append(batch, TimedMove{VM: m.VM, From: m.From, To: m.To, At: t})
		}
		e.rep.Ticks = append(e.rep.Ticks, TickRecord{At: t, Moves: len(moves), Pinned: pinnedLen})
		e.tick += e.cfg.Tick
		// Abort cool-downs last exactly one round: this tick planned
		// around them, the next is free to move the VM again. Dropping a
		// non-empty set changes the next round's pinned list without any
		// host event, so it must defeat clean-tick plan reuse.
		if len(e.fail.repin) > 0 {
			e.viewEvents = true
			for name := range e.fail.repin {
				delete(e.fail.repin, name)
			}
		}
	}
	for len(e.pending) > 0 && e.pending[0].At <= t {
		batch = append(batch, e.pending[0])
		e.pending = e.pending[1:]
	}
	if len(batch) > 0 {
		return e.dispatch(t, batch)
	}
	return nil
}

// planRound runs one policy round at instant t and returns its moves
// plus the pinned-list length for the tick record. The fast path plans
// against the incrementally maintained view; the linear-scan reference
// and non-view policies build the classic AoS snapshot. On a clean tick
// — no host refreshed, no pinned/evacuate input changed, and the
// previous round planned zero moves — the plan is a pure function of
// unchanged inputs, so the round reuses the previous (empty) result
// without calling the policy.
func (e *engine) planRound(t time.Duration) ([]consolidation.Move, int, error) {
	if !e.viewOn {
		snap, pinned, evac := e.snapshot(t)
		pc := e.cfg.PolicyConfig
		pc.Pinned = pinned
		pc.Evacuate = evac
		plan, err := e.cfg.Policy.Plan(snap, pc)
		if err != nil {
			return nil, 0, fmt.Errorf("cluster: policy %s at t=%v: %w", e.cfg.Policy.Name(), t, err)
		}
		return plan.Moves, len(pinned), nil
	}
	if e.cfg.fullRebuild {
		e.rebuildView(t)
	} else if !e.viewTick(t) && !e.viewEvents && e.havePlan && e.lastPlanMoves == 0 {
		return nil, e.lastPinned, nil
	}
	e.viewEvents = false
	pinned, evac := e.viewPinnedEvac()
	pc := e.cfg.PolicyConfig
	pc.Pinned = pinned
	pc.Evacuate = evac
	plan, err := e.vp.PlanView(&e.pview, pc)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: policy %s at t=%v: %w", e.cfg.Policy.Name(), t, err)
	}
	e.havePlan, e.lastPlanMoves, e.lastPinned = true, len(plan.Moves), len(pinned)
	return plan.Moves, len(pinned), nil
}

// snapshot renders the cluster as the consolidation layer sees it at
// time t: every resident guest with its phase-evaluated demand, with
// in-flight guests pinned on their source and their destination
// capacity held by a pinned reservation entry. Crashed hosts are
// marked Down and their non-migrating residents listed as evacuees; a
// VM in its post-abort cool-down is pinned like a mover. The returned
// slices are the engine's persistent scratch buffers, valid until the
// next snapshot; policies deep-copy before planning.
func (e *engine) snapshot(t time.Duration) (hosts []consolidation.HostState, pinned, evacuate []string) {
	e.snapPinned = e.snapPinned[:0]
	e.snapEvac = e.snapEvac[:0]
	out := e.snapHosts[:0]
	for _, h := range e.hosts {
		vms := h.snap[:0]
		for _, v := range h.vms {
			vms = append(vms, consolidation.VMState{
				Name:       v.Name,
				MemBytes:   v.MemBytes,
				BusyVCPUs:  v.busyAt(t),
				DirtyRatio: v.dirtyAt(t),
			})
			switch {
			case v.migrating:
				e.snapPinned = append(e.snapPinned, v.Name)
			case h.down:
				e.snapEvac = append(e.snapEvac, v.Name)
			case e.fail.repin[v.Name]:
				e.snapPinned = append(e.snapPinned, v.Name)
			}
		}
		for _, f := range h.incoming {
			vms = append(vms, consolidation.VMState{
				Name:       f.resName,
				MemBytes:   f.vm.MemBytes,
				BusyVCPUs:  f.vm.busyAt(t),
				DirtyRatio: f.vm.dirtyAt(t),
			})
			e.snapPinned = append(e.snapPinned, f.resName)
		}
		h.snap = vms
		out = append(out, consolidation.HostState{
			Name:      h.Name,
			Threads:   h.Threads,
			MemBytes:  h.MemBytes,
			IdlePower: h.IdlePower,
			Down:      h.down,
			VMs:       vms,
		})
	}
	e.snapHosts = out
	sort.Strings(e.snapPinned)
	sort.Strings(e.snapEvac)
	return out, e.snapPinned, e.snapEvac
}

// lower translates one move into a two-host testbed scenario, exactly
// as the two-host executor does: residual busy threads approximate the
// co-located load in 4-vCPU load-VM units, and the guest's dirty ratio
// selects the migrating workload. The pair — the topology — is part of
// the scenario and therefore of the run-cache key.
func (e *engine) lower(v *vmRT, src, dst *hostRT, t time.Duration, idx int) sim.Scenario {
	srcBusy := src.busyAtExcluding(t, v)
	dstBusy := dst.busyAtExcluding(t, nil)
	pair := e.cfg.Pair
	if pair == "" {
		pair = src.Machine + "/" + dst.Machine
	}
	sc := sim.Scenario{
		Name:          fmt.Sprintf("cluster/%s->%s/%s", src.Name, dst.Name, v.Name),
		Pair:          pair,
		Kind:          e.cfg.Kind,
		SourceLoadVMs: int(math.Round(srcBusy / 4)),
		TargetLoadVMs: int(math.Round(dstBusy / 4)),
		Seed:          e.cfg.Seed + int64(idx)*seedStride,
	}
	if dirty := v.dirtyAt(t); dirty > 0.2 {
		sc.MigratingType = vm.TypeMigratingMem
		sc.MigratingProfile = workload.PagedirtierProfile(dirty)
	} else {
		sc.MigratingType = vm.TypeMigratingCPU
		sc.MigratingProfile = workload.MatrixMultProfile()
	}
	return sc
}

// checkMove resolves and sanity-checks one dispatching move.
func (e *engine) checkMove(m TimedMove) (*vmRT, *hostRT, error) {
	v, ok := e.vms[m.VM]
	if !ok {
		return nil, nil, fmt.Errorf("cluster: move references unknown VM %q", m.VM)
	}
	if v.migrating {
		return nil, nil, fmt.Errorf("cluster: VM %q is already migrating", m.VM)
	}
	if v.host.Name != m.From {
		return nil, nil, fmt.Errorf("cluster: VM %q is on host %q, not %q", m.VM, v.host.Name, m.From)
	}
	dst, ok := e.byName[m.To]
	if !ok {
		return nil, nil, fmt.Errorf("cluster: move references unknown host %q", m.To)
	}
	if dst == v.host {
		return nil, nil, fmt.Errorf("cluster: move of %q does not change hosts", m.VM)
	}
	if v.host.sw != dst.sw {
		return nil, nil, fmt.Errorf("cluster: no migration path from %s (%s) to %s (%s): different switches",
			v.host.Name, v.host.sw, dst.Name, dst.sw)
	}
	// Failure-aware admission: a crashed host takes no guests, a downed
	// switch carries no new transfers. Moving *off* a crashed host is
	// allowed — that is what an evacuation is.
	if dst.down {
		return nil, nil, fmt.Errorf("cluster: destination host %q is down", m.To)
	}
	if e.switchDown(dst.sw) {
		return nil, nil, fmt.Errorf("cluster: switch %q is down, refusing to admit %q", dst.sw, m.VM)
	}
	return v, dst, nil
}

// dispatch admits a batch of concurrent migrations at instant t: every
// move is checked and lowered against the pre-batch state, then the
// kernel runs are farmed to the worker pool off the event loop (each
// seeded by its dispatch index). The staged flights become engine state
// only when joinPending receives the batch's results — the event loop
// joins before selecting any later event, because a flight's first
// scheduler event derives from its kernel result.
//
// The batch is transactional: checks and lowering stage into the
// pending batch, and nothing — not the migrating flags, the incoming
// reservations, the dispatch counter, nor the scheduler heaps — mutates
// until every kernel run has succeeded. A simulate failure therefore
// leaves the engine exactly as it was, so abort/retry layers above
// never observe a half-dispatched batch.
func (e *engine) dispatch(t time.Duration, batch []TimedMove) error {
	flights := make([]*flight, 0, len(batch))
	scs := make([]sim.Scenario, 0, len(batch))
	staged := make(map[string]bool, len(batch))
	for _, m := range batch {
		v, dst, err := e.checkMove(m)
		if err != nil {
			return err
		}
		// A duplicate move of the same VM later in the batch must trip
		// the same guard a committed flight would. Lowering is
		// unaffected: it reads demands, so every scenario in the batch
		// sees the dispatch-instant state.
		if staged[m.VM] {
			return fmt.Errorf("cluster: VM %q is already migrating", m.VM)
		}
		staged[m.VM] = true
		idx := e.nextIdx + len(flights)
		sc := e.lower(v, v.host, dst, t, idx)
		f := &flight{
			idx: idx, vm: v, from: v.host, to: dst,
			sw: dst.sw, pair: sc.Pair, start: t,
			resName: v.Name + "+incoming", heapIdx: -1,
		}
		flights = append(flights, f)
		scs = append(scs, sc)
	}
	pd := &pendingDispatch{t: t, flights: flights, ch: make(chan dispatchResult, 1)}
	go func() {
		runs, err := e.simulate(scs, func(i int) int { return flights[i].idx })
		pd.ch <- dispatchResult{runs: runs, err: err}
	}()
	e.pendJoin = pd
	return nil
}

// joinPending blocks on the in-flight dispatch batch, if any, and
// commits it. On a kernel failure nothing has been committed — the
// engine state is untouched and the error surfaces exactly as an
// inline dispatch failure would have. The buffered result channel lets
// the goroutine finish even if the run is abandoned by cancellation
// first.
func (e *engine) joinPending() error {
	pd := e.pendJoin
	if pd == nil {
		return nil
	}
	e.pendJoin = nil
	res := <-pd.ch
	if res.err != nil {
		return res.err // nothing committed: the engine state is untouched
	}
	t, flights := pd.t, pd.flights
	for i, run := range res.runs {
		f := flights[i]
		f.run = run
		f.headEnd = t + (run.Bounds.TS - run.Bounds.MS)
		f.work = run.Bounds.TE - run.Bounds.TS
		f.intrinsic = f.work
		f.tailSpan = run.Bounds.ME - run.Bounds.TE
	}
	// Commit: the batch becomes engine state only from here on.
	e.nextIdx += len(flights)
	for _, f := range flights {
		f.vm.migrating = true
		f.to.incoming = append(f.to.incoming, f)
		e.fail.airborne = append(e.fail.airborne, f)
		if e.viewOn {
			e.markHostDirty(f.to)
			if f.vm.phased {
				f.to.phasedInc++
				e.markHostVarying(f.to)
			}
		}
	}
	if e.cfg.referenceScan {
		e.flights = append(e.flights, flights...)
	} else {
		for _, f := range flights {
			e.timedPush(f, f.headEnd)
		}
	}
	e.inFlight += len(flights)
	if e.inFlight > e.peak {
		e.peak = e.inFlight
	}
	return nil
}

// simulate answers a batch of lowered scenarios through the cache in
// parallel, wrapping any failure with the identity of its move (idx
// maps a batch position to the move's dispatch index). The engine's
// context bounds the whole fan-out: once it is done, no further kernel
// run dispatches and running ones abandon at their next step.
func (e *engine) simulate(scs []sim.Scenario, idx func(i int) int) ([]*sim.RunResult, error) {
	run := func(sc sim.Scenario) (*sim.RunResult, error) {
		return e.cfg.Cache.RunCtx(e.ctx, sc)
	}
	if e.cfg.simOverride != nil {
		run = e.cfg.simOverride
	}
	return parallel.MapCtx(e.ctx, e.cfg.Workers, len(scs), func(i int) (*sim.RunResult, error) {
		res, err := run(scs[i])
		if err != nil {
			return nil, fmt.Errorf("cluster: executing move %d (%s): %w", idx(i), scs[i].Name, err)
		}
		return res, nil
	})
}

// apply lands a guest on its destination host.
func (e *engine) apply(v *vmRT, dst *hostRT) {
	src := v.host
	for i, g := range src.vms {
		if g == v {
			src.vms = append(src.vms[:i], src.vms[i+1:]...)
			break
		}
	}
	at := sort.Search(len(dst.vms), func(i int) bool { return dst.vms[i].Name >= v.Name })
	dst.vms = append(dst.vms, nil)
	copy(dst.vms[at+1:], dst.vms[at:])
	dst.vms[at] = v
	v.host = dst
}

// land completes a flight at instant t and records its outcome.
func (e *engine) land(f *flight, t time.Duration) {
	if e.viewOn {
		// The source loses the guest, the destination converts its
		// reservation into a resident.
		e.markHostDirty(f.vm.host)
		e.markHostDirty(f.to)
		if f.vm.phased {
			f.vm.host.phasedRes--
			f.to.phasedRes++
			f.to.phasedInc--
			e.markHostVarying(f.to)
		}
	}
	e.apply(f.vm, f.to)
	f.vm.migrating = false
	for i, g := range f.to.incoming {
		if g == f {
			f.to.incoming = append(f.to.incoming[:i], f.to.incoming[i+1:]...)
			break
		}
	}
	e.removeAirborne(f)
	// A flight leaving a crashed host carries an orphan to safety; later
	// consolidation moves of the same VM (from a live host) must not
	// touch its recorded evacuation instant.
	if f.from.down && e.fail.orphanedAt != nil {
		if _, orphan := e.fail.orphanedAt[f.vm.Name]; orphan {
			e.fail.evacuatedAt[f.vm.Name] = t
		}
	}
	e.inFlight--
	e.recs = append(e.recs, indexedRec{idx: f.idx, rec: e.record(f, t)})
}

// record builds the migration record of a finished flight: the
// intrinsic kernel measurements, with the transfer-phase energy scaled
// by the contention stretch.
func (e *engine) record(f *flight, end time.Duration) MigrationRecord {
	intrinsicE := f.run.SourceEnergy.Total() + f.run.TargetEnergy.Total()
	stretch := 1.0
	adjusted := intrinsicE
	if f.intrinsic > 0 {
		stretch = float64(f.transferEnd-f.headEnd) / float64(f.intrinsic)
		transferE := f.run.SourceEnergy.Transfer + f.run.TargetEnergy.Transfer
		adjusted += units.Joules((stretch - 1) * float64(transferE))
	}
	return MigrationRecord{
		VM: f.vm.Name, From: f.from.Name, To: f.to.Name, Pair: f.pair,
		Start: f.start, End: end, Duration: end - f.start,
		Stretch: stretch, Energy: adjusted, IntrinsicEnergy: intrinsicE,
		BytesSent: f.run.BytesSent, Rounds: f.run.Rounds, Downtime: f.run.Downtime,
	}
}

// finish assembles the report once the timeline has drained.
func (e *engine) finish() {
	// Flights still stalled on an unrestored switch never complete; the
	// timeline has drained, so abort them as stranded before scoring.
	e.strandRemaining()
	sort.Slice(e.recs, func(i, j int) bool { return e.recs[i].idx < e.recs[j].idx })
	for _, ir := range e.recs {
		e.rep.Timeline = append(e.rep.Timeline, ir.rec)
		e.rep.TotalEnergy += ir.rec.Energy
		if ir.rec.End > e.rep.Makespan {
			e.rep.Makespan = ir.rec.End
		}
		if ir.rec.Stretch > e.rep.MaxStretch {
			e.rep.MaxStretch = ir.rec.Stretch
		}
	}
	e.rep.PeakFlights = e.peak
	e.rep.ReplanRounds = len(e.rep.Ticks)
	for _, h := range e.hosts {
		if len(h.vms) == 0 && !h.down {
			e.rep.FreedHosts = append(e.rep.FreedHosts, h.Name)
			e.rep.IdleSavings += h.IdlePower
		}
	}
	// Aborted flights spent real energy buying nothing; it still counts.
	for _, a := range e.rep.Aborted {
		e.rep.TotalEnergy += a.Energy
	}
	e.scoreSLO()
	e.buildPowerTrace()
	// The report escapes the engine; deep-copy the final placement out of
	// the reusable snapshot scratch. Ticked timelines run to the horizon
	// even when the last migration lands earlier, so the final demand is
	// evaluated at the instant the timeline actually ended.
	at := e.rep.Makespan
	if e.cfg.Policy != nil && e.cfg.Horizon > at {
		at = e.cfg.Horizon
	}
	snap, _, _ := e.snapshot(at)
	e.rep.Final = make([]consolidation.HostState, len(snap))
	for i, h := range snap {
		h.VMs = append([]consolidation.VMState(nil), h.VMs...)
		e.rep.Final[i] = h
	}
}

// runSerial executes the explicit moves one at a time in spec order —
// the two-host executor's semantics. The state evolves between moves
// (each scenario sees all earlier moves landed), there is never link
// contention, and the whole batch of kernel runs fans out in parallel
// because every scenario is derivable up front.
func (e *engine) runSerial() (*Report, error) {
	scs := make([]sim.Scenario, 0, len(e.cfg.Moves))
	type planned struct {
		vm       string
		from, to string
		pair     string
	}
	moves := make([]planned, 0, len(e.cfg.Moves))
	for i, m := range e.cfg.Moves {
		v, dst, err := e.checkMove(m)
		if err != nil {
			return nil, fmt.Errorf("cluster: move %d: %w", i, err)
		}
		sc := e.lower(v, v.host, dst, 0, i)
		scs = append(scs, sc)
		moves = append(moves, planned{vm: v.Name, from: v.host.Name, to: dst.Name, pair: sc.Pair})
		e.apply(v, dst)
	}
	runs, err := e.simulate(scs, func(i int) int { return i })
	if err != nil {
		return nil, err
	}
	at := time.Duration(0)
	for i, run := range runs {
		d := run.Bounds.ME - run.Bounds.MS
		energy := run.SourceEnergy.Total() + run.TargetEnergy.Total()
		e.recs = append(e.recs, indexedRec{idx: i, rec: MigrationRecord{
			VM: moves[i].vm, From: moves[i].from, To: moves[i].to, Pair: moves[i].pair,
			Start: at, End: at + d, Duration: d,
			Stretch: 1, Energy: energy, IntrinsicEnergy: energy,
			BytesSent: run.BytesSent, Rounds: run.Rounds, Downtime: run.Downtime,
		}})
		at += d
	}
	if len(moves) > 0 {
		// Serial semantics: exactly one migration in the air at a time.
		e.peak = 1
	}
	e.finish()
	return e.rep, nil
}
