package cluster

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/consolidation"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
)

// seedStride separates the derived seeds of a timeline's migrations; it
// is the two-host executor's historical stride, which keeps the lowered
// scenarios — and therefore the run-cache keys and golden outputs — of
// wrapped two-host plans unchanged.
const seedStride = 607

// hostRT is a host's runtime state: its resolved spec plus the resident
// guests, kept in name order for deterministic iteration.
type hostRT struct {
	*resolved
	vms []*vmRT
}

// vmRT is a guest's runtime state.
type vmRT struct {
	VM
	host      *hostRT
	migrating bool
}

// busyAtExcluding sums the host's CPU demand at time t, leaving out one
// guest (the one about to migrate). Guests are summed in name order so
// the result is reproducible.
func (h *hostRT) busyAtExcluding(t time.Duration, skip *vmRT) float64 {
	s := 0.0
	for _, v := range h.vms {
		if v == skip {
			continue
		}
		s += v.busyAt(t)
	}
	return s
}

// Flight lifecycle: the fixed-span initiation head, the link-shared
// transfer, the fixed-span activation tail.
const (
	fHead = iota
	fTransfer
	fTail
)

// flight is one in-progress migration on the cluster timeline.
type flight struct {
	idx      int
	vm       *vmRT
	from, to *hostRT
	sw       string
	pair     string
	run      *sim.RunResult

	state            int
	start            time.Duration
	headEnd          time.Duration
	work             time.Duration // remaining intrinsic transfer time
	intrinsic        time.Duration // total intrinsic transfer time
	tailSpan         time.Duration
	transferEnd, end time.Duration
}

// indexedRec pairs a finished migration record with its dispatch index
// so the report can list the timeline in dispatch order.
type indexedRec struct {
	idx int
	rec MigrationRecord
}

type engine struct {
	cfg     Config
	hosts   []*hostRT
	byName  map[string]*hostRT
	vms     map[string]*vmRT
	now     time.Duration
	tick    time.Duration
	pending []TimedMove
	shifts  []PhaseShift
	si      int
	flights []*flight
	nextIdx int
	recs    []indexedRec
	rep     *Report
}

// Run executes one cluster timeline to completion and returns its
// report. The result is bit-identical across runs, worker counts and
// cache settings.
func Run(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Serial {
		return e.runSerial()
	}
	return e.run()
}

func newEngine(cfg Config) (*engine, error) {
	hosts, err := cfg.sortedHosts()
	if err != nil {
		return nil, err
	}
	e := &engine{
		cfg:    cfg,
		byName: make(map[string]*hostRT, len(hosts)),
		vms:    make(map[string]*vmRT),
		rep:    &Report{},
	}
	for _, r := range hosts {
		h := &hostRT{resolved: r}
		for _, v := range r.VMs {
			vr := &vmRT{VM: v, host: h}
			h.vms = append(h.vms, vr)
			e.vms[v.Name] = vr
		}
		e.hosts = append(e.hosts, h)
		e.byName[h.Name] = h
	}
	// Explicit moves dispatch in (At, spec order); the stable sort keeps
	// same-instant moves in the order the author wrote them.
	e.pending = append([]TimedMove(nil), cfg.Moves...)
	sort.SliceStable(e.pending, func(i, j int) bool { return e.pending[i].At < e.pending[j].At })
	// Phase transitions inside the horizon, as observable events.
	if cfg.Horizon > 0 {
		for _, h := range e.hosts {
			for _, v := range h.vms {
				cum := time.Duration(0)
				for i, p := range v.Phases {
					cum += p.Duration
					if cum >= cfg.Horizon {
						break
					}
					next := ""
					if i+1 < len(v.Phases) {
						next = phaseLabel(v.Phases[i+1], i+1)
					}
					e.shifts = append(e.shifts, PhaseShift{At: cum, VM: v.Name, Phase: next})
				}
			}
		}
		sort.SliceStable(e.shifts, func(i, j int) bool {
			if e.shifts[i].At != e.shifts[j].At {
				return e.shifts[i].At < e.shifts[j].At
			}
			return e.shifts[i].VM < e.shifts[j].VM
		})
	}
	return e, nil
}

// phaseLabel names a phase for the shift record.
func phaseLabel(p workload.Phase, i int) string {
	if p.Name != "" {
		return p.Name
	}
	return fmt.Sprintf("%s%d", p.Kind, i)
}

// run drives the discrete-event loop: find the next instant anything
// happens, advance the shared-link transfers to it, then fire what is
// due — completions first, then phase shifts, then new dispatches.
func (e *engine) run() (*Report, error) {
	for {
		t, ok := e.nextEventTime()
		if !ok {
			break
		}
		e.advance(t)
		if err := e.fire(t); err != nil {
			return nil, err
		}
	}
	e.finish()
	return e.rep, nil
}

// occupancy counts the transfers currently sharing a switch.
func (e *engine) occupancy(sw string) int64 {
	n := int64(0)
	for _, f := range e.flights {
		if f.state == fTransfer && f.sw == sw {
			n++
		}
	}
	return n
}

// flightEventTime projects a flight's next transition instant under the
// current link occupancy.
func (e *engine) flightEventTime(f *flight) time.Duration {
	switch f.state {
	case fHead:
		return f.headEnd
	case fTransfer:
		return e.now + f.work*time.Duration(e.occupancy(f.sw))
	default:
		return f.end
	}
}

// nextEventTime returns the earliest instant with something due.
func (e *engine) nextEventTime() (time.Duration, bool) {
	t, ok := time.Duration(math.MaxInt64), false
	consider := func(c time.Duration) {
		if c < t {
			t = c
		}
		ok = true
	}
	if e.cfg.Policy != nil && e.tick < e.cfg.Horizon {
		consider(e.tick)
	}
	if len(e.pending) > 0 {
		consider(e.pending[0].At)
	}
	if e.si < len(e.shifts) {
		consider(e.shifts[e.si].At)
	}
	for _, f := range e.flights {
		consider(e.flightEventTime(f))
	}
	return t, ok
}

// advance moves the clock to t, draining every in-flight transfer by
// its equal share of the elapsed span. Occupancy is constant between
// events, so the sharing arithmetic is exact integer division; a due
// flight's remaining work reaches exactly zero.
func (e *engine) advance(t time.Duration) {
	dt := t - e.now
	if dt > 0 {
		for _, f := range e.flights {
			if f.state != fTransfer {
				continue
			}
			f.work -= dt / time.Duration(e.occupancy(f.sw))
			if f.work < 0 {
				f.work = 0
			}
		}
	}
	e.now = t
}

// transition advances one flight through every lifecycle phase due at
// instant t (a flight may cascade through zero-span phases within one
// instant) and reports whether it landed.
func (e *engine) transition(f *flight, t time.Duration) (landed bool) {
	for {
		switch f.state {
		case fHead:
			if f.headEnd > t {
				return false
			}
			f.state = fTransfer
		case fTransfer:
			if f.work > 0 {
				return false
			}
			f.transferEnd = t
			f.state = fTail
			f.end = t + f.tailSpan
		default:
			if f.end > t {
				return false
			}
			e.land(f, t)
			return true
		}
	}
}

// fire processes everything due at instant t.
func (e *engine) fire(t time.Duration) error {
	// 1. Flight transitions, in dispatch order.
	kept := e.flights[:0]
	for _, f := range e.flights {
		if !e.transition(f, t) {
			kept = append(kept, f)
		}
	}
	e.flights = kept

	// 2. Workload phase transitions.
	for e.si < len(e.shifts) && e.shifts[e.si].At <= t {
		e.rep.Shifts = append(e.rep.Shifts, e.shifts[e.si])
		e.si++
	}

	// 3. New dispatches: the policy tick's plan, then explicit moves.
	var batch []TimedMove
	if e.cfg.Policy != nil && e.tick <= t && e.tick < e.cfg.Horizon {
		snap, pinned := e.snapshot(t)
		pc := e.cfg.PolicyConfig
		pc.Pinned = pinned
		plan, err := e.cfg.Policy.Plan(snap, pc)
		if err != nil {
			return fmt.Errorf("cluster: policy %s at t=%v: %w", e.cfg.Policy.Name(), t, err)
		}
		for _, m := range plan.Moves {
			batch = append(batch, TimedMove{VM: m.VM, From: m.From, To: m.To, At: t})
		}
		e.rep.Ticks = append(e.rep.Ticks, TickRecord{At: t, Moves: len(plan.Moves), Pinned: len(e.flights)})
		e.tick += e.cfg.Tick
	}
	for len(e.pending) > 0 && e.pending[0].At <= t {
		batch = append(batch, e.pending[0])
		e.pending = e.pending[1:]
	}
	if len(batch) > 0 {
		return e.dispatch(t, batch)
	}
	return nil
}

// snapshot renders the cluster as the consolidation layer sees it at
// time t: every resident guest with its phase-evaluated demand, with
// in-flight guests pinned on their source and their destination
// capacity held by a pinned reservation entry.
func (e *engine) snapshot(t time.Duration) ([]consolidation.HostState, []string) {
	incoming := make(map[string][]*flight)
	for _, f := range e.flights {
		incoming[f.to.Name] = append(incoming[f.to.Name], f)
	}
	var pinned []string
	out := make([]consolidation.HostState, 0, len(e.hosts))
	for _, h := range e.hosts {
		hs := consolidation.HostState{
			Name:      h.Name,
			Threads:   h.Threads,
			MemBytes:  h.MemBytes,
			IdlePower: h.IdlePower,
		}
		for _, v := range h.vms {
			hs.VMs = append(hs.VMs, consolidation.VMState{
				Name:       v.Name,
				MemBytes:   v.MemBytes,
				BusyVCPUs:  v.busyAt(t),
				DirtyRatio: v.dirtyAt(t),
			})
			if v.migrating {
				pinned = append(pinned, v.Name)
			}
		}
		for _, f := range incoming[h.Name] {
			res := f.vm.Name + "+incoming"
			hs.VMs = append(hs.VMs, consolidation.VMState{
				Name:       res,
				MemBytes:   f.vm.MemBytes,
				BusyVCPUs:  f.vm.busyAt(t),
				DirtyRatio: f.vm.dirtyAt(t),
			})
			pinned = append(pinned, res)
		}
		out = append(out, hs)
	}
	sort.Strings(pinned)
	return out, pinned
}

// lower translates one move into a two-host testbed scenario, exactly
// as the two-host executor does: residual busy threads approximate the
// co-located load in 4-vCPU load-VM units, and the guest's dirty ratio
// selects the migrating workload. The pair — the topology — is part of
// the scenario and therefore of the run-cache key.
func (e *engine) lower(v *vmRT, src, dst *hostRT, t time.Duration, idx int) sim.Scenario {
	srcBusy := src.busyAtExcluding(t, v)
	dstBusy := dst.busyAtExcluding(t, nil)
	pair := e.cfg.Pair
	if pair == "" {
		pair = src.Machine + "/" + dst.Machine
	}
	sc := sim.Scenario{
		Name:          fmt.Sprintf("cluster/%s->%s/%s", src.Name, dst.Name, v.Name),
		Pair:          pair,
		Kind:          e.cfg.Kind,
		SourceLoadVMs: int(math.Round(srcBusy / 4)),
		TargetLoadVMs: int(math.Round(dstBusy / 4)),
		Seed:          e.cfg.Seed + int64(idx)*seedStride,
	}
	if dirty := v.dirtyAt(t); dirty > 0.2 {
		sc.MigratingType = vm.TypeMigratingMem
		sc.MigratingProfile = workload.PagedirtierProfile(dirty)
	} else {
		sc.MigratingType = vm.TypeMigratingCPU
		sc.MigratingProfile = workload.MatrixMultProfile()
	}
	return sc
}

// checkMove resolves and sanity-checks one dispatching move.
func (e *engine) checkMove(m TimedMove) (*vmRT, *hostRT, error) {
	v, ok := e.vms[m.VM]
	if !ok {
		return nil, nil, fmt.Errorf("cluster: move references unknown VM %q", m.VM)
	}
	if v.migrating {
		return nil, nil, fmt.Errorf("cluster: VM %q is already migrating", m.VM)
	}
	if v.host.Name != m.From {
		return nil, nil, fmt.Errorf("cluster: VM %q is on host %q, not %q", m.VM, v.host.Name, m.From)
	}
	dst, ok := e.byName[m.To]
	if !ok {
		return nil, nil, fmt.Errorf("cluster: move references unknown host %q", m.To)
	}
	if dst == v.host {
		return nil, nil, fmt.Errorf("cluster: move of %q does not change hosts", m.VM)
	}
	if v.host.sw != dst.sw {
		return nil, nil, fmt.Errorf("cluster: no migration path from %s (%s) to %s (%s): different switches",
			v.host.Name, v.host.sw, dst.Name, dst.sw)
	}
	return v, dst, nil
}

// dispatch starts a batch of concurrent migrations at instant t: every
// move is lowered against the pre-batch state, the kernel runs fan out
// in parallel (each seeded by its dispatch index), and the resulting
// flights join the timeline.
func (e *engine) dispatch(t time.Duration, batch []TimedMove) error {
	flights := make([]*flight, 0, len(batch))
	scs := make([]sim.Scenario, 0, len(batch))
	for _, m := range batch {
		v, dst, err := e.checkMove(m)
		if err != nil {
			return err
		}
		sc := e.lower(v, v.host, dst, t, e.nextIdx)
		flights = append(flights, &flight{
			idx: e.nextIdx, vm: v, from: v.host, to: dst,
			sw: dst.sw, pair: sc.Pair, start: t,
		})
		scs = append(scs, sc)
		e.nextIdx++
		// Mark the mover immediately so a duplicate move of the same VM
		// later in this batch trips checkMove's already-migrating guard.
		// Lowering is unaffected: it reads demands, not the flag, so
		// every scenario in the batch still sees the dispatch-instant
		// state.
		v.migrating = true
	}
	runs, err := e.simulate(scs, func(i int) int { return flights[i].idx })
	if err != nil {
		return err
	}
	for i, run := range runs {
		f := flights[i]
		f.run = run
		f.headEnd = t + (run.Bounds.TS - run.Bounds.MS)
		f.work = run.Bounds.TE - run.Bounds.TS
		f.intrinsic = f.work
		f.tailSpan = run.Bounds.ME - run.Bounds.TE
	}
	e.flights = append(e.flights, flights...)
	return nil
}

// simulate answers a batch of lowered scenarios through the cache in
// parallel, wrapping any failure with the identity of its move (idx
// maps a batch position to the move's dispatch index).
func (e *engine) simulate(scs []sim.Scenario, idx func(i int) int) ([]*sim.RunResult, error) {
	return parallel.Map(e.cfg.Workers, len(scs), func(i int) (*sim.RunResult, error) {
		run, err := e.cfg.Cache.Run(scs[i])
		if err != nil {
			return nil, fmt.Errorf("cluster: executing move %d (%s): %w", idx(i), scs[i].Name, err)
		}
		return run, nil
	})
}

// apply lands a guest on its destination host.
func (e *engine) apply(v *vmRT, dst *hostRT) {
	src := v.host
	for i, g := range src.vms {
		if g == v {
			src.vms = append(src.vms[:i], src.vms[i+1:]...)
			break
		}
	}
	at := sort.Search(len(dst.vms), func(i int) bool { return dst.vms[i].Name >= v.Name })
	dst.vms = append(dst.vms, nil)
	copy(dst.vms[at+1:], dst.vms[at:])
	dst.vms[at] = v
	v.host = dst
}

// land completes a flight at instant t and records its outcome.
func (e *engine) land(f *flight, t time.Duration) {
	e.apply(f.vm, f.to)
	f.vm.migrating = false
	e.recs = append(e.recs, indexedRec{idx: f.idx, rec: e.record(f, t)})
}

// record builds the migration record of a finished flight: the
// intrinsic kernel measurements, with the transfer-phase energy scaled
// by the contention stretch.
func (e *engine) record(f *flight, end time.Duration) MigrationRecord {
	intrinsicE := f.run.SourceEnergy.Total() + f.run.TargetEnergy.Total()
	stretch := 1.0
	adjusted := intrinsicE
	if f.intrinsic > 0 {
		stretch = float64(f.transferEnd-f.headEnd) / float64(f.intrinsic)
		transferE := f.run.SourceEnergy.Transfer + f.run.TargetEnergy.Transfer
		adjusted += units.Joules((stretch - 1) * float64(transferE))
	}
	return MigrationRecord{
		VM: f.vm.Name, From: f.from.Name, To: f.to.Name, Pair: f.pair,
		Start: f.start, End: end, Duration: end - f.start,
		Stretch: stretch, Energy: adjusted, IntrinsicEnergy: intrinsicE,
		BytesSent: f.run.BytesSent, Rounds: f.run.Rounds, Downtime: f.run.Downtime,
	}
}

// finish assembles the report once the timeline has drained.
func (e *engine) finish() {
	sort.Slice(e.recs, func(i, j int) bool { return e.recs[i].idx < e.recs[j].idx })
	for _, ir := range e.recs {
		e.rep.Timeline = append(e.rep.Timeline, ir.rec)
		e.rep.TotalEnergy += ir.rec.Energy
		if ir.rec.End > e.rep.Makespan {
			e.rep.Makespan = ir.rec.End
		}
	}
	for _, h := range e.hosts {
		if len(h.vms) == 0 {
			e.rep.FreedHosts = append(e.rep.FreedHosts, h.Name)
			e.rep.IdleSavings += h.IdlePower
		}
	}
	e.rep.Final, _ = e.snapshot(e.rep.Makespan)
}

// runSerial executes the explicit moves one at a time in spec order —
// the two-host executor's semantics. The state evolves between moves
// (each scenario sees all earlier moves landed), there is never link
// contention, and the whole batch of kernel runs fans out in parallel
// because every scenario is derivable up front.
func (e *engine) runSerial() (*Report, error) {
	scs := make([]sim.Scenario, 0, len(e.cfg.Moves))
	type planned struct {
		vm       string
		from, to string
		pair     string
	}
	moves := make([]planned, 0, len(e.cfg.Moves))
	for i, m := range e.cfg.Moves {
		v, dst, err := e.checkMove(m)
		if err != nil {
			return nil, fmt.Errorf("cluster: move %d: %w", i, err)
		}
		sc := e.lower(v, v.host, dst, 0, i)
		scs = append(scs, sc)
		moves = append(moves, planned{vm: v.Name, from: v.host.Name, to: dst.Name, pair: sc.Pair})
		e.apply(v, dst)
	}
	runs, err := e.simulate(scs, func(i int) int { return i })
	if err != nil {
		return nil, err
	}
	at := time.Duration(0)
	for i, run := range runs {
		d := run.Bounds.ME - run.Bounds.MS
		energy := run.SourceEnergy.Total() + run.TargetEnergy.Total()
		e.recs = append(e.recs, indexedRec{idx: i, rec: MigrationRecord{
			VM: moves[i].vm, From: moves[i].from, To: moves[i].to, Pair: moves[i].pair,
			Start: at, End: at + d, Duration: d,
			Stretch: 1, Energy: energy, IntrinsicEnergy: energy,
			BytesSent: run.BytesSent, Rounds: run.Rounds, Downtime: run.Downtime,
		}})
		at += d
	}
	e.finish()
	return e.rep, nil
}
