package cluster

import (
	"math"
	"time"
)

// This file retains the original linear-scan scheduler — O(F) per-event
// sweeps with O(F) occupancy counts, O(F²) per event — selected by the
// unexported Config.referenceScan knob. It is the executable
// specification the heap scheduler is property-tested against (see
// TestSchedulerEquivalence): both must produce bit-identical reports on
// any fleet. It shares dispatch, lowering, snapshotting, landing and
// reporting with the fast path; only event finding and clock advancing
// differ.

// occupancy counts the transfers currently sharing a switch.
func (e *engine) occupancy(sw string) int64 {
	n := int64(0)
	for _, f := range e.flights {
		if f.state == fTransfer && f.sw == sw {
			n++
		}
	}
	return n
}

// flightEventTime projects a flight's next transition instant under the
// current link occupancy.
func (e *engine) flightEventTime(f *flight) time.Duration {
	switch f.state {
	case fHead:
		return f.headEnd
	case fTransfer:
		return e.now + f.work*time.Duration(e.occupancy(f.sw))
	default:
		return f.end
	}
}

// nextEventTimeScan returns the earliest instant with something due, by
// scanning every flight.
func (e *engine) nextEventTimeScan() (time.Duration, bool) {
	t, ok := time.Duration(math.MaxInt64), false
	consider := func(c time.Duration) {
		if c < t {
			t = c
		}
		ok = true
	}
	if e.cfg.Policy != nil && e.tick < e.cfg.Horizon {
		consider(e.tick)
	}
	if len(e.pending) > 0 {
		consider(e.pending[0].At)
	}
	if e.si < len(e.shifts) {
		consider(e.shifts[e.si].At)
	}
	if e.fail.fi < len(e.fail.events) {
		consider(e.fail.events[e.fail.fi].At)
	}
	for _, f := range e.flights {
		if f.state == fTransfer && e.switchDown(f.sw) {
			continue // stalled: the outage froze this link's clock
		}
		consider(e.flightEventTime(f))
	}
	return t, ok
}

// advanceScan moves the clock to t, draining every in-flight transfer
// by its equal share of the elapsed span. Occupancy is constant between
// events, so the sharing arithmetic is exact integer division; a due
// flight's remaining work reaches exactly zero.
func (e *engine) advanceScan(t time.Duration) {
	dt := t - e.now
	if dt > 0 {
		for _, f := range e.flights {
			if f.state != fTransfer {
				continue
			}
			if e.switchDown(f.sw) {
				continue // outage: the clock freezes, work is preserved
			}
			f.work -= dt / time.Duration(e.occupancy(f.sw))
			if f.work < 0 {
				f.work = 0
			}
		}
	}
	e.now = t
}

// transitionScan advances one flight through every lifecycle phase due
// at instant t (a flight may cascade through zero-span phases within
// one instant) and reports whether it landed.
func (e *engine) transitionScan(f *flight, t time.Duration) (landed bool) {
	for {
		switch f.state {
		case fHead:
			if f.headEnd > t {
				return false
			}
			f.state = fTransfer
		case fTransfer:
			if f.work > 0 {
				return false
			}
			f.transferEnd = t
			f.state = fTail
			f.end = t + f.tailSpan
		default:
			if f.end > t {
				return false
			}
			e.land(f, t)
			return true
		}
	}
}

// fireScan processes everything due at instant t.
func (e *engine) fireScan(t time.Duration) error {
	// 1. Flight transitions, in dispatch order.
	kept := e.flights[:0]
	for _, f := range e.flights {
		if !e.transitionScan(f, t) {
			kept = append(kept, f)
		}
	}
	e.flights = kept

	// 2. Failure events: same-instant completions above beat the
	// failure; shifts and dispatches below observe the post-failure
	// state.
	e.applyFailures(t)

	// 3. Workload phase transitions.
	for e.si < len(e.shifts) && e.shifts[e.si].At <= t {
		e.rep.Shifts = append(e.rep.Shifts, e.shifts[e.si])
		e.si++
	}

	// 4. New dispatches: the policy tick's plan, then explicit moves.
	return e.dispatchDue(t)
}
