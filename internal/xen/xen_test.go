package xen

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
)

func newHost(t *testing.T, machine string) *Host {
	t.Helper()
	spec, ok := hw.Catalog()[machine]
	if !ok {
		t.Fatalf("no machine %s", machine)
	}
	h, err := NewHost(spec)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func addVM(t *testing.T, h *Host, name, typeID string, demand units.Utilisation) *vm.VM {
	t.Helper()
	typ, err := vm.Lookup(typeID)
	if err != nil {
		t.Fatal(err)
	}
	g, err := vm.New(name, typ)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Attach(g); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	g.SetDemand(demand)
	return g
}

func TestNewHostValidates(t *testing.T) {
	if _, err := NewHost(hw.MachineSpec{}); err == nil {
		t.Error("invalid spec must fail")
	}
}

func TestAttachDetach(t *testing.T) {
	h := newHost(t, "m01")
	g := addVM(t, h, "a", vm.TypeLoadCPU, 4)
	if err := h.Attach(g); err == nil {
		t.Error("duplicate attach must fail")
	}
	if err := h.Attach(nil); err == nil {
		t.Error("nil attach must fail")
	}
	if got, ok := h.Guest("a"); !ok || got != g {
		t.Error("Guest lookup failed")
	}
	if err := h.Detach("a"); err != nil {
		t.Fatal(err)
	}
	if err := h.Detach("a"); err == nil {
		t.Error("double detach must fail")
	}
}

func TestAttachMemoryLimit(t *testing.T) {
	h := newHost(t, "m01") // 32 GiB
	// Seven 4 GiB guests fit (28 GiB + dom-0); the eighth does not.
	for i := 0; i < 7; i++ {
		addVM(t, h, string(rune('a'+i)), vm.TypeMigratingCPU, 4)
	}
	typ, _ := vm.Lookup(vm.TypeMigratingCPU)
	extra, _ := vm.New("z", typ)
	if err := h.Attach(extra); err == nil {
		t.Error("over-RAM attach must succeed... actually must fail")
	}
}

func TestGuestsSorted(t *testing.T) {
	h := newHost(t, "m01")
	addVM(t, h, "c", vm.TypeLoadCPU, 1)
	addVM(t, h, "a", vm.TypeLoadCPU, 1)
	addVM(t, h, "b", vm.TypeLoadCPU, 1)
	gs := h.Guests()
	if len(gs) != 3 || gs[0].Name != "a" || gs[1].Name != "b" || gs[2].Name != "c" {
		t.Errorf("Guests not sorted: %v", []string{gs[0].Name, gs[1].Name, gs[2].Name})
	}
}

func TestVMMDemandGrowsWithGuests(t *testing.T) {
	h := newHost(t, "m01")
	base := h.VMMDemand()
	if base != Dom0BaseCPU {
		t.Errorf("empty host VMM = %v, want %v", base, Dom0BaseCPU)
	}
	addVM(t, h, "a", vm.TypeLoadCPU, 4)
	addVM(t, h, "b", vm.TypeLoadCPU, 4)
	if got := h.VMMDemand(); got != Dom0BaseCPU+2*VMMPerVM {
		t.Errorf("VMM with 2 guests = %v", got)
	}
	// Suspended guests do not add arbitration load.
	g, _ := h.Guest("a")
	_ = g.Suspend()
	if got := h.VMMDemand(); got != Dom0BaseCPU+VMMPerVM {
		t.Errorf("VMM with 1 active guest = %v", got)
	}
}

func TestScheduleUndersubscribed(t *testing.T) {
	h := newHost(t, "m01") // 32 threads
	addVM(t, h, "a", vm.TypeLoadCPU, 4)
	addVM(t, h, "b", vm.TypeLoadCPU, 2)
	alloc := h.Schedule()
	if alloc.Saturated {
		t.Error("6 demanded of 32 must not saturate")
	}
	if alloc.GuestCPU("a") != 4 || alloc.GuestCPU("b") != 2 {
		t.Errorf("full grants expected, got %v", alloc.Guests)
	}
	wantHost := float64(h.VMMDemand()) + 6
	if math.Abs(float64(alloc.HostCPU())-wantHost) > 1e-9 {
		t.Errorf("HostCPU = %v, want %v (Eq. 2)", alloc.HostCPU(), wantHost)
	}
	if alloc.MigrationShare() != 1 {
		t.Error("no-migration share must be 1")
	}
}

func TestScheduleSaturatedMultiplexing(t *testing.T) {
	// The paper's 8-VM case: 8×4 vCPU load VMs + 4 vCPU migrating VM = 36
	// demanded on 32 threads → proportional scaling, flat total.
	h := newHost(t, "m01")
	for i := 0; i < 8; i++ {
		addVM(t, h, string(rune('a'+i)), vm.TypeLoadCPU, 4)
	}
	addVM(t, h, "mig", vm.TypeMigratingCPU, 4)
	h.SetMigrationActive(true)

	alloc := h.Schedule()
	if !alloc.Saturated {
		t.Fatal("36+ demanded of 32 must saturate")
	}
	// Everything the machine has is allocated: HostCPU == capacity.
	if math.Abs(float64(alloc.HostCPU()-h.Spec.Capacity())) > 1e-9 {
		t.Errorf("saturated HostCPU = %v, want capacity %v", alloc.HostCPU(), h.Spec.Capacity())
	}
	// Guests all get the same scaled share (equal weights).
	a, b := alloc.GuestCPU("a"), alloc.GuestCPU("b")
	if math.Abs(float64(a-b)) > 1e-9 {
		t.Errorf("equal demands got unequal grants: %v vs %v", a, b)
	}
	if a >= 4 {
		t.Errorf("saturated grant %v must be below demand 4", a)
	}
	// The migration helper is squeezed too — the bandwidth-reduction
	// mechanism of Figures 3 and 4.
	if share := alloc.MigrationShare(); share >= 1 || share <= 0 {
		t.Errorf("migration share under saturation = %v, want within (0,1)", share)
	}
}

func TestScheduleIdleHost(t *testing.T) {
	h := newHost(t, "m01")
	alloc := h.Schedule()
	if alloc.HostCPU() != Dom0BaseCPU {
		t.Errorf("idle host CPU = %v, want dom-0 only", alloc.HostCPU())
	}
	if alloc.Saturated {
		t.Error("idle host cannot saturate")
	}
}

func TestMigrationAddsDemand(t *testing.T) {
	h := newHost(t, "m01")
	addVM(t, h, "mig", vm.TypeMigratingCPU, 4)
	before := h.Schedule().HostCPU()
	h.SetMigrationActive(true)
	after := h.Schedule().HostCPU()
	if math.Abs(float64(after-before-MigrationCPUDemand)) > 1e-9 {
		t.Errorf("migration added %v CPU, want %v", after-before, MigrationCPUDemand)
	}
	if !h.MigrationActive() {
		t.Error("MigrationActive not set")
	}
}

func TestStepDrivesDirtying(t *testing.T) {
	h := newHost(t, "m01")
	g := addVM(t, h, "mem", vm.TypeMigratingMem, 1)
	g.SetDirtier(workload.PagedirtierProfile(0.95).Dirtier(1))
	alloc := h.Schedule()
	events := h.Step(alloc, 1.0)
	if events <= 0 {
		t.Error("step must issue page writes for an active pagedirtier guest")
	}
	if g.DirtyRatio() <= 0 {
		t.Error("dirty ratio must rise")
	}
	// Suspended guests stop dirtying.
	_ = g.Suspend()
	if ev := h.Step(h.Schedule(), 1.0); ev != 0 {
		t.Errorf("suspended guest issued %d events", ev)
	}
}

func TestHostLoadAssembly(t *testing.T) {
	h := newHost(t, "m01")
	addVM(t, h, "a", vm.TypeLoadCPU, 4)
	h.SetMigrationActive(true)
	alloc := h.Schedule()
	pagesPerSec := 1e9 / float64(units.PageSize) // → 1 GB/s
	l := h.Load(alloc, pagesPerSec, 0.5)
	if l.CPU != alloc.HostCPU() {
		t.Errorf("load CPU = %v, want %v", l.CPU, alloc.HostCPU())
	}
	if math.Abs(l.MemGBs-1.0) > 1e-9 {
		t.Errorf("load mem = %v GB/s, want 1", l.MemGBs)
	}
	if l.NetFrac != 0.5 || !l.MigActive {
		t.Errorf("load net/mig = %v/%v", l.NetFrac, l.MigActive)
	}
}

func TestToolstack(t *testing.T) {
	h := newHost(t, "m01")
	ts, err := NewToolstack("xl", h)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ts.Create(vm.TypeLoadCPU, workload.MatrixMultProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.State() != vm.StateRunning {
		t.Errorf("created guest state = %v", g.State())
	}
	if g.Demand() != 4 {
		t.Errorf("matrixmult on 4 vCPUs demands %v, want 4", g.Demand())
	}
	if _, ok := h.Guest(g.Name); !ok {
		t.Error("guest not attached to host")
	}
	if err := ts.Destroy(g.Name); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Guest(g.Name); ok {
		t.Error("guest still attached after destroy")
	}
	if err := ts.Destroy("ghost"); err == nil {
		t.Error("destroying unknown guest must fail")
	}
}

func TestToolstackValidation(t *testing.T) {
	h := newHost(t, "m01")
	if _, err := NewToolstack("virsh", h); err == nil {
		t.Error("unknown flavour must fail")
	}
	if _, err := NewToolstack("xm", nil); err == nil {
		t.Error("nil host must fail")
	}
	ts, _ := NewToolstack("xm", h)
	if _, err := ts.Create("bogus-type", workload.IdleProfile(), 1); err != nil {
		// expected
	} else {
		t.Error("unknown type must fail")
	}
	if _, err := ts.Create(vm.TypeLoadCPU, workload.Profile{Name: "x", CPUPerVCPU: 2}, 1); err == nil {
		t.Error("invalid profile must fail")
	}
}

func TestToolstackNamesUnique(t *testing.T) {
	h := newHost(t, "o1") // plenty of RAM
	ts, _ := NewToolstack("xl", h)
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		g, err := ts.Create(vm.TypeLoadCPU, workload.MatrixMultProfile(), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if seen[g.Name] {
			t.Fatalf("duplicate name %q", g.Name)
		}
		seen[g.Name] = true
	}
}
