package xen

import (
	"fmt"

	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Toolstack is the xm/xl-style management facade used by the experiment
// runner: create, start and load guests by instance type, mirroring how
// the paper's scripts drove the testbed. Both toolstack flavours of Xen
// 4.2.5 expose the same operations; the flavour is recorded for the
// experiment metadata only.
type Toolstack struct {
	// Flavour is "xm" or "xl".
	Flavour string
	host    *Host
	counter int
}

// NewToolstack attaches a toolstack to a host.
func NewToolstack(flavour string, h *Host) (*Toolstack, error) {
	if flavour != "xm" && flavour != "xl" {
		return nil, fmt.Errorf("xen: unknown toolstack flavour %q (want xm or xl)", flavour)
	}
	if h == nil {
		return nil, fmt.Errorf("xen: toolstack needs a host")
	}
	return &Toolstack{Flavour: flavour, host: h}, nil
}

// Create builds, attaches and starts a guest of the named instance type,
// wiring in the workload profile's CPU demand and dirtier. The seed makes
// the guest's memory behaviour reproducible.
func (ts *Toolstack) Create(typeID string, profile workload.Profile, seed int64) (*vm.VM, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	t, err := vm.Lookup(typeID)
	if err != nil {
		return nil, err
	}
	ts.counter++
	name := fmt.Sprintf("%s-%s-%d", ts.host.Spec.Name, typeID, ts.counter)
	g, err := vm.New(name, t)
	if err != nil {
		return nil, err
	}
	if err := ts.host.Attach(g); err != nil {
		return nil, err
	}
	if err := g.Start(); err != nil {
		_ = ts.host.Detach(name)
		return nil, err
	}
	g.SetDemand(units.Utilisation(float64(t.VCPUs) * float64(profile.CPUPerVCPU)))
	g.SetDirtier(profile.Dirtier(seed))
	return g, nil
}

// Destroy tears a guest down and releases its host slot.
func (ts *Toolstack) Destroy(name string) error {
	g, ok := ts.host.Guest(name)
	if !ok {
		return fmt.Errorf("xen: no guest %q", name)
	}
	g.Destroy()
	return ts.host.Detach(name)
}
