// Package xen models the hypervisor side of the testbed: a host running
// Xen 4.2.5 with a dom-0, a set of paravirtualised guests, and a
// credit-scheduler-like CPU arbiter. It implements the paper's Eq. 2,
//
//	CPU(h,t) = CPUVMM(V(h,t)) + Σ_{v∈V(h,t)} CPU(v,t) + CPUmigr(h,t),
//
// including the saturation behaviour the paper leans on: once aggregate
// demand exceeds the machine's thread count, allocations are scaled down
// proportionally ("multiplexing") and total host CPU — hence power — goes
// flat, while the migration helper's share shrinks and with it the
// achievable transfer bandwidth.
package xen

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/vm"
)

// Scheduler constants, calibrated against the testbed's dom-0 behaviour.
const (
	// Dom0BaseCPU is the steady CPU use of dom-0 (device backends, xenstore).
	Dom0BaseCPU units.Utilisation = 0.25
	// VMMPerVM is the arbitration overhead per active guest (event
	// channels, grant tables, scheduling).
	VMMPerVM units.Utilisation = 0.08
	// MigrationCPUDemand is what the migration helper process (xc_save /
	// xc_restore running in dom-0) asks for on an endpoint while a
	// migration is in flight. When it receives less than this, the
	// transfer slows proportionally.
	MigrationCPUDemand units.Utilisation = 1.35
)

// Host is one physical machine under Xen.
type Host struct {
	Spec hw.MachineSpec

	guests map[string]*vm.VM
	// migActive marks an in-flight migration with this host as an endpoint.
	migActive bool
}

// NewHost boots a hypervisor on the given machine.
func NewHost(spec hw.MachineSpec) (*Host, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Host{Spec: spec, guests: make(map[string]*vm.VM)}, nil
}

// Attach places a guest on this host. It enforces the memory constraint:
// the sum of guest allocations plus dom-0's reservation must fit in RAM.
func (h *Host) Attach(v *vm.VM) error {
	if v == nil {
		return fmt.Errorf("xen: nil VM")
	}
	if _, dup := h.guests[v.Name]; dup {
		return fmt.Errorf("xen: %s already has a guest named %q", h.Spec.Name, v.Name)
	}
	dom0 := vm.Types()[vm.TypeDom0].RAM
	used := dom0 + v.Type.RAM
	for _, g := range h.guests {
		used += g.Type.RAM
	}
	if used > h.Spec.RAM {
		return fmt.Errorf("xen: attaching %q would need %v of %v RAM on %s", v.Name, used, h.Spec.RAM, h.Spec.Name)
	}
	h.guests[v.Name] = v
	return nil
}

// Detach removes a guest (after migration or destruction).
func (h *Host) Detach(name string) error {
	if _, ok := h.guests[name]; !ok {
		return fmt.Errorf("xen: no guest %q on %s", name, h.Spec.Name)
	}
	delete(h.guests, name)
	return nil
}

// Guest returns the named guest.
func (h *Host) Guest(name string) (*vm.VM, bool) {
	g, ok := h.guests[name]
	return g, ok
}

// Guests returns all guests sorted by name (deterministic iteration).
func (h *Host) Guests() []*vm.VM {
	out := make([]*vm.VM, 0, len(h.guests))
	for _, g := range h.guests {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetMigrationActive marks/unmarks this host as a migration endpoint,
// adding CPUmigr demand and the orchestration power overhead.
func (h *Host) SetMigrationActive(active bool) { h.migActive = active }

// MigrationActive reports endpoint status.
func (h *Host) MigrationActive() bool { return h.migActive }

// activeGuests counts guests currently consuming CPU.
func (h *Host) activeGuests() int {
	n := 0
	for _, g := range h.guests {
		if g.Active() {
			n++
		}
	}
	return n
}

// VMMDemand is CPUVMM(V(h,t)): dom-0 plus per-active-guest arbitration.
func (h *Host) VMMDemand() units.Utilisation {
	return Dom0BaseCPU + VMMPerVM*units.Utilisation(h.activeGuests())
}

// Allocation is the outcome of one scheduling decision: how much CPU each
// consumer actually received this instant.
type Allocation struct {
	// VMM is the CPU granted to the hypervisor/dom-0.
	VMM units.Utilisation
	// Guests maps guest name to granted CPU.
	Guests map[string]units.Utilisation
	// Migration is the CPU granted to the migration helper.
	Migration units.Utilisation
	// Saturated reports whether demand exceeded capacity (multiplexing).
	Saturated bool
}

// HostCPU returns CPU(h,t) per Eq. 2: everything the host's threads are
// actually doing.
func (a Allocation) HostCPU() units.Utilisation {
	total := a.VMM + a.Migration
	for _, u := range a.Guests {
		total += u
	}
	return total
}

// GuestShare returns granted/demanded for a guest, the factor by which its
// progress (and page dirtying) is slowed under multiplexing.
func (a Allocation) GuestShare(name string, demanded units.Utilisation) float64 {
	if demanded <= 0 {
		return 1
	}
	return float64(a.Guests[name]) / float64(demanded)
}

// MigrationShare returns granted/demanded for the migration helper; the
// achievable transfer bandwidth scales with it.
func (a Allocation) MigrationShare() float64 {
	if !a.Saturated {
		return 1
	}
	return float64(a.Migration) / float64(MigrationCPUDemand)
}

// Schedule arbitrates the machine's threads among dom-0, guests and the
// migration helper. dom-0 is served first (Xen keeps it responsive);
// guests and the migration helper share the remainder proportionally to
// demand when it does not fit — the proportional-share behaviour of the
// credit scheduler with equal weights.
func (h *Host) Schedule() Allocation {
	cap := h.Spec.Capacity()
	alloc := Allocation{Guests: make(map[string]units.Utilisation, len(h.guests))}

	vmm := h.VMMDemand().Clamp(cap)
	alloc.VMM = vmm
	remaining := cap - vmm

	var migDemand units.Utilisation
	if h.migActive {
		migDemand = MigrationCPUDemand
	}
	totalDemand := migDemand
	for _, g := range h.guests {
		totalDemand += g.Demand()
	}
	if totalDemand <= 0 {
		return alloc
	}
	if totalDemand <= remaining {
		for name, g := range h.guests {
			alloc.Guests[name] = g.Demand()
		}
		alloc.Migration = migDemand
		return alloc
	}
	// Oversubscribed: proportional scaling.
	alloc.Saturated = true
	scale := float64(remaining) / float64(totalDemand)
	for name, g := range h.guests {
		alloc.Guests[name] = units.Utilisation(float64(g.Demand()) * scale)
	}
	alloc.Migration = units.Utilisation(float64(migDemand) * scale)
	return alloc
}

// Step advances all guest dirtying processes by dt seconds using the given
// allocation, and returns the aggregate page-write events issued (guest
// memory traffic for the power model).
func (h *Host) Step(alloc Allocation, dtSeconds float64) int64 {
	var events int64
	for name, g := range h.guests {
		if !g.Active() {
			continue
		}
		events += g.StepMemory(dtSeconds, alloc.GuestShare(name, g.Demand()))
	}
	return events
}

// Load assembles the hw.Load of this host for the ground-truth power
// model: scheduled CPU, guest memory traffic (pages/s), network fraction
// supplied by the migration engine, and the endpoint flag.
func (h *Host) Load(alloc Allocation, guestPagesPerSecond float64, netFrac units.Fraction) hw.Load {
	return hw.Load{
		CPU:       alloc.HostCPU(),
		MemGBs:    guestPagesPerSecond * float64(units.PageSize) / 1e9,
		NetFrac:   netFrac,
		MigActive: h.migActive,
	}
}
