package xen

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/vm"
)

// Scheduler constants, calibrated against the testbed's dom-0 behaviour.
const (
	// Dom0BaseCPU is the steady CPU use of dom-0 (device backends, xenstore).
	Dom0BaseCPU units.Utilisation = 0.25
	// VMMPerVM is the arbitration overhead per active guest (event
	// channels, grant tables, scheduling).
	VMMPerVM units.Utilisation = 0.08
	// MigrationCPUDemand is what the migration helper process (xc_save /
	// xc_restore running in dom-0) asks for on an endpoint while a
	// migration is in flight. When it receives less than this, the
	// transfer slows proportionally.
	MigrationCPUDemand units.Utilisation = 1.35
)

// Host is one physical machine under Xen.
type Host struct {
	Spec hw.MachineSpec

	// guests holds the resident guests in dense, stable slots: a guest
	// keeps its slot index from Attach until Detach, and freed slots are
	// reused. Slot indices address Allocation.Guests directly, which is
	// what keeps the scheduler's hot path free of map allocations.
	guests []*vm.VM
	// index resolves a guest name to its slot.
	index map[string]int
	// scratch is Schedule's reusable grant buffer (see Schedule).
	scratch []units.Utilisation
	// migActive marks an in-flight migration with this host as an endpoint.
	migActive bool
}

// NewHost boots a hypervisor on the given machine.
func NewHost(spec hw.MachineSpec) (*Host, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Host{Spec: spec, index: make(map[string]int)}, nil
}

// Attach places a guest on this host and assigns it a stable slot index.
// It enforces the memory constraint: the sum of guest allocations plus
// dom-0's reservation must fit in RAM.
func (h *Host) Attach(v *vm.VM) error {
	if v == nil {
		return fmt.Errorf("xen: nil VM")
	}
	if _, dup := h.index[v.Name]; dup {
		return fmt.Errorf("xen: %s already has a guest named %q", h.Spec.Name, v.Name)
	}
	dom0 := vm.Types()[vm.TypeDom0].RAM
	used := dom0 + v.Type.RAM
	for _, g := range h.guests {
		if g != nil {
			used += g.Type.RAM
		}
	}
	if used > h.Spec.RAM {
		return fmt.Errorf("xen: attaching %q would need %v of %v RAM on %s", v.Name, used, h.Spec.RAM, h.Spec.Name)
	}
	slot := -1
	for i, g := range h.guests {
		if g == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = len(h.guests)
		h.guests = append(h.guests, nil)
	}
	h.guests[slot] = v
	h.index[v.Name] = slot
	return nil
}

// Detach removes a guest (after migration or destruction). Its slot is
// recycled for the next Attach.
func (h *Host) Detach(name string) error {
	slot, ok := h.index[name]
	if !ok {
		return fmt.Errorf("xen: no guest %q on %s", name, h.Spec.Name)
	}
	h.guests[slot] = nil
	delete(h.index, name)
	return nil
}

// Guest returns the named guest.
func (h *Host) Guest(name string) (*vm.VM, bool) {
	slot, ok := h.index[name]
	if !ok {
		return nil, false
	}
	return h.guests[slot], true
}

// GuestIndex returns the slot index of the named guest, the key into
// Allocation.Guests. Indices are stable between Attach and Detach.
func (h *Host) GuestIndex(name string) (int, bool) {
	slot, ok := h.index[name]
	return slot, ok
}

// Guests returns all guests sorted by name (deterministic iteration).
func (h *Host) Guests() []*vm.VM {
	out := make([]*vm.VM, 0, len(h.index))
	for _, g := range h.guests {
		if g != nil {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetMigrationActive marks/unmarks this host as a migration endpoint,
// adding CPUmigr demand and the orchestration power overhead.
func (h *Host) SetMigrationActive(active bool) { h.migActive = active }

// MigrationActive reports endpoint status.
func (h *Host) MigrationActive() bool { return h.migActive }

// activeGuests counts guests currently consuming CPU.
func (h *Host) activeGuests() int {
	n := 0
	for _, g := range h.guests {
		if g != nil && g.Active() {
			n++
		}
	}
	return n
}

// VMMDemand is CPUVMM(V(h,t)): dom-0 plus per-active-guest arbitration.
func (h *Host) VMMDemand() units.Utilisation {
	return Dom0BaseCPU + VMMPerVM*units.Utilisation(h.activeGuests())
}

// Allocation is the outcome of one scheduling decision: how much CPU each
// consumer actually received this instant.
//
// Guests is indexed by the host's guest slot (Host.GuestIndex), not by
// name, and it aliases a scratch buffer owned by the host: the slice is
// valid until the host's next Schedule call. Callers that need to retain
// grants across scheduling decisions must copy them out.
type Allocation struct {
	// VMM is the CPU granted to the hypervisor/dom-0.
	VMM units.Utilisation
	// Guests holds the CPU granted per guest slot.
	Guests []units.Utilisation
	// Migration is the CPU granted to the migration helper.
	Migration units.Utilisation
	// Saturated reports whether demand exceeded capacity (multiplexing).
	Saturated bool

	host *Host
}

// HostCPU returns CPU(h,t) per Eq. 2: everything the host's threads are
// actually doing.
func (a Allocation) HostCPU() units.Utilisation {
	total := a.VMM + a.Migration
	for _, u := range a.Guests {
		total += u
	}
	return total
}

// Guest returns the CPU granted to the guest in the given slot; out-of-
// range slots (detached guests) read as zero.
func (a Allocation) Guest(slot int) units.Utilisation {
	if slot < 0 || slot >= len(a.Guests) {
		return 0
	}
	return a.Guests[slot]
}

// GuestCPU returns the CPU granted to the named guest — the name-keyed
// compatibility accessor over the slot-indexed grants.
func (a Allocation) GuestCPU(name string) units.Utilisation {
	if a.host == nil {
		return 0
	}
	slot, ok := a.host.index[name]
	if !ok {
		return 0
	}
	return a.Guest(slot)
}

// GuestShare returns granted/demanded for a guest, the factor by which its
// progress (and page dirtying) is slowed under multiplexing.
func (a Allocation) GuestShare(name string, demanded units.Utilisation) float64 {
	if demanded <= 0 {
		return 1
	}
	return float64(a.GuestCPU(name)) / float64(demanded)
}

// MigrationShare returns granted/demanded for the migration helper; the
// achievable transfer bandwidth scales with it.
func (a Allocation) MigrationShare() float64 {
	if !a.Saturated {
		return 1
	}
	return float64(a.Migration) / float64(MigrationCPUDemand)
}

// Schedule arbitrates the machine's threads among dom-0, guests and the
// migration helper. dom-0 is served first (Xen keeps it responsive);
// guests and the migration helper share the remainder proportionally to
// demand when it does not fit — the proportional-share behaviour of the
// credit scheduler with equal weights.
//
// The returned Allocation's Guests slice reuses a buffer owned by the
// host, so the simulation step loop schedules without allocating; it is
// valid until the next Schedule call on the same host.
func (h *Host) Schedule() Allocation {
	cap := h.Spec.Capacity()
	if len(h.scratch) < len(h.guests) {
		h.scratch = make([]units.Utilisation, len(h.guests))
	}
	grants := h.scratch[:len(h.guests)]
	for i := range grants {
		grants[i] = 0
	}
	alloc := Allocation{Guests: grants, host: h}

	vmm := h.VMMDemand().Clamp(cap)
	alloc.VMM = vmm
	remaining := cap - vmm

	var migDemand units.Utilisation
	if h.migActive {
		migDemand = MigrationCPUDemand
	}
	totalDemand := migDemand
	for _, g := range h.guests {
		if g != nil {
			totalDemand += g.Demand()
		}
	}
	if totalDemand <= 0 {
		return alloc
	}
	if totalDemand <= remaining {
		for i, g := range h.guests {
			if g != nil {
				grants[i] = g.Demand()
			}
		}
		alloc.Migration = migDemand
		return alloc
	}
	// Oversubscribed: proportional scaling.
	alloc.Saturated = true
	scale := float64(remaining) / float64(totalDemand)
	for i, g := range h.guests {
		if g != nil {
			grants[i] = units.Utilisation(float64(g.Demand()) * scale)
		}
	}
	alloc.Migration = units.Utilisation(float64(migDemand) * scale)
	return alloc
}

// Step advances all guest dirtying processes by dt seconds using the given
// allocation, and returns the aggregate page-write events issued (guest
// memory traffic for the power model).
func (h *Host) Step(alloc Allocation, dtSeconds float64) int64 {
	var events int64
	for i, g := range h.guests {
		if g == nil || !g.Active() {
			continue
		}
		share := 1.0
		if d := g.Demand(); d > 0 {
			share = float64(alloc.Guest(i)) / float64(d)
		}
		events += g.StepMemory(dtSeconds, share)
	}
	return events
}

// Load assembles the hw.Load of this host for the ground-truth power
// model: scheduled CPU, guest memory traffic (pages/s), network fraction
// supplied by the migration engine, and the endpoint flag.
func (h *Host) Load(alloc Allocation, guestPagesPerSecond float64, netFrac units.Fraction) hw.Load {
	return hw.Load{
		CPU:       alloc.HostCPU(),
		MemGBs:    guestPagesPerSecond * float64(units.PageSize) / 1e9,
		NetFrac:   netFrac,
		MigActive: h.migActive,
	}
}
