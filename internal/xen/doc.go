// Package xen models the hypervisor side of the testbed: a host running
// Xen 4.2.5 with a dom-0, a set of paravirtualised guests, and a
// credit-scheduler-like CPU arbiter. It implements the paper's Eq. 2,
//
//	CPU(h,t) = CPUVMM(V(h,t)) + Σ_{v∈V(h,t)} CPU(v,t) + CPUmigr(h,t),
//
// including the saturation behaviour the paper leans on: once aggregate
// demand exceeds the machine's thread count, allocations are scaled down
// proportionally ("multiplexing") and total host CPU — hence power — goes
// flat, while the migration helper's share shrinks and with it the
// achievable transfer bandwidth.
//
// Position in the data flow (see ARCHITECTURE.md): the simulation kernel
// (internal/sim) calls Host.Schedule once per 100 ms step to arbitrate
// CPU, then Host.Step to advance guest memory dirtying, then Host.Load to
// assemble the component load the hardware power model (internal/hw)
// evaluates. Scheduling fills a dense, slot-indexed Allocation reused
// across steps — Host.GuestIndex resolves a guest name to its slot once,
// and Allocation.Guest reads by slot thereafter — keeping the kernel's
// hot loop allocation-free. Toolstack mirrors the xl command surface used
// to create and migrate guests.
package xen
