package scenario

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/migration"
	"repro/internal/vm"
)

// minimal returns the smallest valid migration spec.
func minimal() *Spec {
	return &Spec{
		Version:   CurrentVersion,
		Name:      "test-minimal",
		Migrating: Guest{Workload: Workload{Profile: ProfileMatrixMult}},
	}
}

// write drops a scenario JSON file into dir and returns its path.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// mustJSON serialises a spec for the file-based tests.
func mustJSON(t *testing.T, s *Spec) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// wantPathError asserts err is a *Error whose Path contains want.
func wantPathError(t *testing.T, err error, want string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected an error with path %q, got nil", want)
	}
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("expected *scenario.Error with path %q, got %T: %v", want, err, err)
	}
	if !strings.Contains(se.Path, want) {
		t.Fatalf("error path %q does not contain %q (full error: %v)", se.Path, want, se)
	}
}

func TestMinimalSpecValidatesAndCompiles(t *testing.T) {
	s := minimal()
	if err := s.Validate(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Runs) != 1 || c.Plan != nil {
		t.Fatalf("minimal spec compiled to %d runs, plan=%v", len(c.Runs), c.Plan)
	}
	r := c.Runs[0]
	if r.Scenario.Name != "scen/test-minimal" {
		t.Errorf("scenario name = %q", r.Scenario.Name)
	}
	if r.Scenario.MigratingType != vm.TypeMigratingCPU {
		t.Errorf("inferred type = %q, want migrating-cpu", r.Scenario.MigratingType)
	}
	if r.MinRuns != DefaultMinRuns || r.VarianceTol != DefaultVarianceTol {
		t.Errorf("default repeat = (%d, %v)", r.MinRuns, r.VarianceTol)
	}
	if err := r.Scenario.Validate(); err != nil {
		t.Errorf("compiled scenario rejected by sim: %v", err)
	}
}

func TestGuestTypeInference(t *testing.T) {
	s := minimal()
	s.Migrating.Workload = Workload{Profile: ProfilePagedirtier, DirtyTarget: 0.9}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Runs[0].Scenario.MigratingType; got != vm.TypeMigratingMem {
		t.Errorf("dirtying workload inferred type %q, want migrating-mem", got)
	}
}

func TestEffectiveSeedStableAndPositive(t *testing.T) {
	a := &Spec{Name: "alpha"}
	if a.EffectiveSeed() != a.EffectiveSeed() {
		t.Fatal("derived seed is not stable")
	}
	if a.EffectiveSeed() <= 0 {
		t.Fatalf("derived seed %d not positive", a.EffectiveSeed())
	}
	b := &Spec{Name: "beta"}
	if a.EffectiveSeed() == b.EffectiveSeed() {
		t.Fatal("distinct names derived the same seed")
	}
	pinned := &Spec{Name: "alpha", Seed: 42}
	if pinned.EffectiveSeed() != 42 {
		t.Fatalf("explicit seed not honoured: %d", pinned.EffectiveSeed())
	}
}

// TestValidationFailurePaths is the satellite-task matrix: every way a
// spec can be malformed yields a distinct, pathed error.
func TestValidationFailurePaths(t *testing.T) {
	at := func(v float64) *float64 { return &v }
	cases := []struct {
		name     string
		mutate   func(*Spec)
		wantPath string
	}{
		{"bad version", func(s *Spec) { s.Version = 99 }, "version"},
		{"empty name", func(s *Spec) { s.Name = "" }, "name"},
		{"uppercase name", func(s *Spec) { s.Name = "Bad Name" }, "name"},
		{"unknown pair", func(s *Spec) { s.Pair = "warehouse-42" }, "pair"},
		{"unknown machine in custom pair", func(s *Spec) { s.Pair = "m01/warehouse" }, "pair"},
		{"cross-switch custom pair", func(s *Spec) { s.Pair = "m01/o1" }, "pair"},
		{"pre window below stabilisation", func(s *Spec) {
			s.Meter = &Meter{PeriodMS: 1000}
			s.Timing = &Timing{PreS: 16}
		}, "timing.pre_s"},
		{"default pre window with slow meter", func(s *Spec) {
			s.Meter = &Meter{PeriodMS: 1000} // 20 samples need 20 s > default 11 s
		}, "timing.pre_s"},
		{"unknown kind", func(s *Spec) { s.Kind = "teleport" }, "kind"},
		{"negative seed", func(s *Spec) { s.Seed = -5 }, "seed"},
		{"unknown workload", func(s *Spec) { s.Migrating.Workload.Profile = "cryptomine" }, "migrating.workload.profile"},
		{"dirty target out of range", func(s *Spec) {
			s.Migrating.Workload = Workload{Profile: ProfilePagedirtier, DirtyTarget: 1.5}
		}, "migrating.workload.dirty_target"},
		{"dirty target on non-dirtying profile", func(s *Spec) {
			s.Migrating.Workload = Workload{Profile: ProfileMatrixMult, DirtyTarget: 0.5}
		}, "migrating.workload.dirty_target"},
		{"unknown guest type", func(s *Spec) { s.Migrating.Type = "mainframe" }, "migrating.type"},
		{"negative source load", func(s *Spec) { s.SourceLoadVMs = -1 }, "source_load_vms"},
		{"negative target load", func(s *Spec) { s.TargetLoadVMs = -2 }, "target_load_vms"},
		{"bad load workload", func(s *Spec) { s.LoadWorkload = &Workload{Profile: "nope"} }, "load_workload.profile"},
		{"zero-length phase", func(s *Spec) {
			s.Phases = []PhaseSpec{{Kind: "steady", DurationS: 0}}
		}, "phases[0].duration_s"},
		{"unknown phase kind", func(s *Spec) {
			s.Phases = []PhaseSpec{{Kind: "spiky", DurationS: 10}}
		}, "phases[0].kind"},
		{"phase at out of range", func(s *Spec) {
			s.Phases = []PhaseSpec{{Kind: "steady", DurationS: 10, At: at(1.5)}}
		}, "phases[0].at"},
		{"second phase bad", func(s *Spec) {
			s.Phases = []PhaseSpec{
				{Kind: "steady", DurationS: 10},
				{Kind: "burst", DurationS: -3},
			}
		}, "phases[1].duration_s"},
		{"negative pre window", func(s *Spec) { s.Timing = &Timing{PreS: -1} }, "timing.pre_s"},
		{"negative post window", func(s *Spec) { s.Timing = &Timing{PostS: -1} }, "timing.post_s"},
		{"negative initiation", func(s *Spec) { s.Migration = &MigrationTuning{InitiationS: -1} }, "migration.initiation_s"},
		{"negative data factor", func(s *Spec) { s.Migration = &MigrationTuning{MaxDataFactor: -2} }, "migration.max_data_factor"},
		{"bad meter period", func(s *Spec) { s.Meter = &Meter{PeriodMS: 250} }, "meter"},
		{"one repeat run", func(s *Spec) { s.Repeat = &Repeat{MinRuns: 1} }, "repeat.min_runs"},
		{"negative variance tol", func(s *Spec) { s.Repeat = &Repeat{VarianceTol: -0.1} }, "repeat.variance_tol"},
		{"duplicate phase names", func(s *Spec) {
			s.Phases = []PhaseSpec{
				{Name: "peak", Kind: "steady", DurationS: 10},
				{Name: "peak", Kind: "burst", DurationS: 10},
			}
		}, "phases[1].name"},
		{"phase name collides with generated label", func(s *Spec) {
			s.Phases = []PhaseSpec{
				{Name: "burst1", Kind: "steady", DurationS: 10},
				{Kind: "burst", DurationS: 10},
			}
		}, "phases[1].name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := minimal()
			tc.mutate(s)
			wantPathError(t, s.Validate(), tc.wantPath)
		})
	}
}

func TestDatacenterValidationPaths(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Version: CurrentVersion,
			Name:    "dc-test",
			Datacenter: &Datacenter{
				Hosts: []HostSpec{
					{Name: "a", Threads: 32, MemGiB: 32, IdlePowerW: 440, VMs: []VMSpec{
						{Name: "v1", MemGiB: 4, BusyVCPUs: 2, DirtyRatio: 0.1},
					}},
					{Name: "b", Threads: 32, MemGiB: 32, IdlePowerW: 440},
				},
				Moves: []MoveSpec{{VM: "v1", From: "a", To: "b"}},
			},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid datacenter spec rejected: %v", err)
	}

	cases := []struct {
		name     string
		mutate   func(*Spec)
		wantPath string
	}{
		{"migrating set", func(s *Spec) { s.Migrating.Workload.Profile = ProfileIdle }, "migrating"},
		{"phases set", func(s *Spec) { s.Phases = []PhaseSpec{{Kind: "steady", DurationS: 1}} }, "phases"},
		{"post-copy plan", func(s *Spec) { s.Kind = "post-copy" }, "kind"},
		{"one host", func(s *Spec) { s.Datacenter.Hosts = s.Datacenter.Hosts[:1] }, "datacenter.hosts"},
		{"invalid host", func(s *Spec) { s.Datacenter.Hosts[1].Threads = 0 }, "datacenter.hosts[1]"},
		{"duplicate host", func(s *Spec) { s.Datacenter.Hosts[1].Name = "a" }, "datacenter.hosts[1].name"},
		{"duplicate vm", func(s *Spec) {
			s.Datacenter.Hosts[1].VMs = []VMSpec{{Name: "v1", MemGiB: 4}}
		}, "datacenter.hosts[1].vms"},
		{"unknown move vm", func(s *Spec) { s.Datacenter.Moves[0].VM = "ghost" }, "datacenter.moves[0].vm"},
		{"unknown from host", func(s *Spec) { s.Datacenter.Moves[0].From = "ghost" }, "datacenter.moves[0].from"},
		{"unknown to host", func(s *Spec) { s.Datacenter.Moves[0].To = "ghost" }, "datacenter.moves[0].to"},
		{"self move", func(s *Spec) { s.Datacenter.Moves[0].To = "a" }, "datacenter.moves[0].to"},
		{"stale placement", func(s *Spec) {
			s.Datacenter.Moves = append(s.Datacenter.Moves, MoveSpec{VM: "v1", From: "a", To: "b"})
		}, "datacenter.moves[1].from"},
		{"repeat set", func(s *Spec) { s.Repeat = &Repeat{MinRuns: 3} }, "repeat"},
		{"meter set", func(s *Spec) { s.Meter = &Meter{PeriodMS: 1000} }, "meter"},
		{"load vms set", func(s *Spec) { s.SourceLoadVMs = 2 }, "source_load_vms"},
		{"load workload set", func(s *Spec) { s.LoadWorkload = &Workload{Profile: ProfileMatrixMult} }, "load_workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(s)
			wantPathError(t, s.Validate(), tc.wantPath)
		})
	}
}

func TestDatacenterCompile(t *testing.T) {
	s := &Spec{
		Version: CurrentVersion,
		Name:    "dc-compile",
		Kind:    "non-live",
		Datacenter: &Datacenter{
			Hosts: []HostSpec{
				{Name: "a", Threads: 32, MemGiB: 32, IdlePowerW: 440, VMs: []VMSpec{
					{Name: "v1", MemGiB: 4, BusyVCPUs: 2, DirtyRatio: 0.3},
				}},
				{Name: "b", Threads: 32, MemGiB: 32, IdlePowerW: 440},
			},
			Moves: []MoveSpec{{VM: "v1", From: "a", To: "b"}},
		},
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Plan == nil || len(c.Runs) != 0 {
		t.Fatalf("datacenter spec compiled to runs=%d plan=%v", len(c.Runs), c.Plan)
	}
	if c.Plan.Executor.Kind != migration.NonLive {
		t.Errorf("executor kind = %v", c.Plan.Executor.Kind)
	}
	if len(c.Plan.Plan.Moves) != 1 || c.Plan.Plan.Moves[0].VM != "v1" {
		t.Errorf("plan moves = %+v", c.Plan.Plan.Moves)
	}
	if c.Plan.Executor.Seed != s.EffectiveSeed() {
		t.Errorf("executor seed = %d, want %d", c.Plan.Executor.Seed, s.EffectiveSeed())
	}
}

func TestDatacenterImplicitFFDPlan(t *testing.T) {
	s := &Spec{
		Version: CurrentVersion,
		Name:    "dc-ffd",
		Datacenter: &Datacenter{
			Hosts: []HostSpec{
				{Name: "a", Threads: 32, MemGiB: 32, IdlePowerW: 440, VMs: []VMSpec{
					{Name: "v1", MemGiB: 4, BusyVCPUs: 2},
				}},
				{Name: "b", Threads: 32, MemGiB: 32, IdlePowerW: 440, VMs: []VMSpec{
					{Name: "v2", MemGiB: 4, BusyVCPUs: 4},
				}},
			},
		},
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Plan.Plan == nil {
		t.Fatal("no implicit plan")
	}
	if c.Plan.Policy != "first-fit-decreasing" {
		t.Errorf("policy = %q", c.Plan.Policy)
	}
}

func TestPhaseCompilation(t *testing.T) {
	s := minimal()
	s.Name = "phased"
	s.SourceLoadVMs = 4
	s.Migrating.Workload = Workload{Profile: ProfilePagedirtier, DirtyTarget: 0.5}
	s.Phases = []PhaseSpec{
		{Name: "night", Kind: "steady", DurationS: 3600, Level: 0.25},
		{Kind: "burst", DurationS: 600, Level: 1, Peak: 2},
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Runs) != 2 {
		t.Fatalf("compiled %d runs, want 2", len(c.Runs))
	}
	night, burst := c.Runs[0], c.Runs[1]
	if night.Label != "phased/night" || burst.Label != "phased/burst1" {
		t.Errorf("labels = %q, %q", night.Label, burst.Label)
	}
	// Night runs at quarter intensity: quarter dirty rate, one load VM.
	base, _ := s.baseScenario()
	if night.Scenario.MigratingProfile.DirtyPagesPerSecond != base.MigratingProfile.DirtyPagesPerSecond*0.25 {
		t.Errorf("night dirty rate not scaled: %v", night.Scenario.MigratingProfile.DirtyPagesPerSecond)
	}
	if night.Scenario.SourceLoadVMs != 1 {
		t.Errorf("night load VMs = %d, want 1", night.Scenario.SourceLoadVMs)
	}
	// Burst peaks at 2x: double dirty rate, double load VMs.
	if burst.Scenario.MigratingProfile.DirtyPagesPerSecond != base.MigratingProfile.DirtyPagesPerSecond*2 {
		t.Errorf("burst dirty rate not scaled: %v", burst.Scenario.MigratingProfile.DirtyPagesPerSecond)
	}
	if burst.Scenario.SourceLoadVMs != 8 {
		t.Errorf("burst load VMs = %d, want 8", burst.Scenario.SourceLoadVMs)
	}
	// Distinct seeds and names per phase (distinct cache identities).
	if night.Scenario.Seed == burst.Scenario.Seed {
		t.Error("phases share a seed")
	}
	if night.Scenario.Name == burst.Scenario.Name {
		t.Error("phases share a scenario name")
	}
	for _, r := range c.Runs {
		if err := r.Scenario.Validate(); err != nil {
			t.Errorf("compiled phase scenario %q invalid: %v", r.Label, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := minimal()
	s.Description = "round-trip probe"
	s.Pair = "o1-o2"
	s.Kind = "post-copy"
	s.SourceLoadVMs = 3
	s.Phases = []PhaseSpec{{Kind: "diurnal", DurationS: 86400, Level: 0.2, Peak: 1}}
	s.Timing = &Timing{PreS: 22, PostS: 8}
	s.Migration = &MigrationTuning{MaxRounds: 10, MaxDataFactor: 2}
	s.Meter = &Meter{PeriodMS: 1000, Accuracy: 0.01}
	s.Repeat = &Repeat{MinRuns: 3, VarianceTol: 0.2}

	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	ca, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := back.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Runs) != len(cb.Runs) {
		t.Fatalf("round trip changed run count: %d vs %d", len(ca.Runs), len(cb.Runs))
	}
	for i := range ca.Runs {
		if ca.Runs[i].Scenario != cb.Runs[i].Scenario {
			t.Errorf("round trip changed compiled scenario %d:\n%+v\nvs\n%+v", i, ca.Runs[i].Scenario, cb.Runs[i].Scenario)
		}
	}
}

func TestLoadRejectsMalformedJSON(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "broken.json", `{"version": 1, "name": "broken",`)
	_, err := Load(path)
	wantPathError(t, err, "(json)")
	if !strings.Contains(err.Error(), "byte") {
		t.Errorf("syntax error lacks an offset: %v", err)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "typo.json", `{"version": 1, "name": "typo", "migratng": {}}`)
	if _, err := Load(path); err == nil {
		t.Fatal("typoed field accepted")
	}
}

func TestLoadRejectsTrailingData(t *testing.T) {
	dir := t.TempDir()
	s := mustJSON(t, minimal())
	path := write(t, dir, "trail.json", s+`{"another": 1}`)
	_, err := Load(path)
	wantPathError(t, err, "(json)")
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.json"))
	wantPathError(t, err, "(file)")
}

func TestLoadDirDetectsNameCollision(t *testing.T) {
	dir := t.TempDir()
	a := minimal()
	a.Name = "twin"
	b := minimal()
	b.Name = "twin"
	b.Seed = 999 // distinct seed so only the name collides
	write(t, dir, "a.json", mustJSON(t, a))
	write(t, dir, "b.json", mustJSON(t, b))
	_, err := LoadDir(dir)
	wantPathError(t, err, "name")
}

func TestLoadDirDetectsSeedCollision(t *testing.T) {
	dir := t.TempDir()
	a := minimal()
	a.Name = "first"
	a.Seed = 1234
	b := minimal()
	b.Name = "second"
	b.Seed = 1234
	write(t, dir, "a.json", mustJSON(t, a))
	write(t, dir, "b.json", mustJSON(t, b))
	_, err := LoadDir(dir)
	wantPathError(t, err, "seed")
	if !strings.Contains(err.Error(), "first") {
		t.Errorf("seed collision error does not name the other scenario: %v", err)
	}
}

func TestLoadDirEmpty(t *testing.T) {
	_, err := LoadDir(t.TempDir())
	wantPathError(t, err, "(glob)")
}

func TestCheckUniqueAcrossSources(t *testing.T) {
	// Runners combine -dir and positional files; the combined set is held
	// to the same uniqueness invariant a single directory is.
	a := minimal()
	a.Name = "same"
	b := minimal()
	b.Name = "same"
	wantPathError(t, CheckUnique([]*Spec{a, b}), "name")

	c := minimal()
	c.Name = "other"
	c.Seed = a.EffectiveSeed() // explicit seed colliding with a derived one
	wantPathError(t, CheckUnique([]*Spec{a, c}), "seed")

	d := minimal()
	d.Name = "distinct"
	if err := CheckUnique([]*Spec{a, d}); err != nil {
		t.Fatalf("disjoint specs rejected: %v", err)
	}
}

func TestList(t *testing.T) {
	dir := t.TempDir()
	a := minimal()
	a.Name = "zeta"
	a.Description = "last alphabetically"
	b := minimal()
	b.Name = "alpha"
	b.Phases = []PhaseSpec{{Kind: "steady", DurationS: 10}}
	write(t, dir, "01-zeta.json", mustJSON(t, a))
	write(t, dir, "02-alpha.json", mustJSON(t, b))
	infos, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "zeta" {
		t.Fatalf("list = %+v", infos)
	}
	if infos[0].Phases != 1 || infos[1].Description != "last alphabetically" {
		t.Errorf("list metadata wrong: %+v", infos)
	}
}
