package scenario

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// BlockSummary is the per-block aggregate of one compiled run's repeats:
// mean energies, data moved, rounds, downtime and migration duration.
// It is what wavm3scen prints and what the library's golden-output
// regression test pins, computed in exactly one place so the two can
// never drift apart.
type BlockSummary struct {
	// Runs is the repeat count the variance rule settled on.
	Runs int `json:"runs"`
	// SourceJ / TargetJ are the mean per-host migration energies in J.
	SourceJ float64 `json:"source_j"`
	TargetJ float64 `json:"target_j"`
	// MovedBytes is the mean state data moved.
	MovedBytes float64 `json:"moved_bytes"`
	// Rounds is the mean pre-copy round count.
	Rounds float64 `json:"rounds"`
	// DowntimeS is the mean guest suspension span in seconds.
	DowntimeS float64 `json:"downtime_s"`
	// DurationS is the mean migration span (ms → me) in seconds.
	DurationS float64 `json:"duration_s"`
}

// TotalJ returns the mean data-centre-level energy of the block.
func (b BlockSummary) TotalJ() float64 { return b.SourceJ + b.TargetJ }

// MovedGiB returns the mean data moved in GiB.
func (b BlockSummary) MovedGiB() float64 { return b.MovedBytes / float64(units.GiB) }

// Summarize aggregates the repeats of one block. Empty input returns the
// zero summary.
func Summarize(runs []*sim.RunResult) BlockSummary {
	var b BlockSummary
	if len(runs) == 0 {
		return b
	}
	b.Runs = len(runs)
	for _, r := range runs {
		b.SourceJ += float64(r.SourceEnergy.Total())
		b.TargetJ += float64(r.TargetEnergy.Total())
		b.MovedBytes += float64(r.BytesSent)
		b.Rounds += float64(r.Rounds)
		b.DowntimeS += r.Downtime.Seconds()
		b.DurationS += (r.Bounds.ME - r.Bounds.MS).Seconds()
	}
	n := float64(len(runs))
	b.SourceJ /= n
	b.TargetJ /= n
	b.MovedBytes /= n
	b.Rounds /= n
	b.DowntimeS /= n
	b.DurationS /= n
	return b
}
