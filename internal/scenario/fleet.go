package scenario

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"repro/internal/hw"
	"repro/internal/workload"
)

// This file expands cluster fleet templates (ClusterSpec.Fleet) into
// concrete host lists. Expansion is pure data → data and fully
// deterministic: the same spec (name, seed, groups) expands to the same
// hosts — and therefore the same lowered migration scenarios and
// run-cache keys — in every session.

// hostCount is the cluster's total population: explicit hosts plus
// every fleet replica.
func (c *ClusterSpec) hostCount() int {
	n := len(c.Hosts)
	for _, g := range c.Fleet {
		if g.Count > 0 {
			n += g.Count
		}
	}
	return n
}

// replicaSuffix formats the deterministic replica name suffix.
func replicaSuffix(i int) string {
	return fmt.Sprintf("-%04d", i)
}

// fleetJitter derives replica i's phase lead-in, in whole seconds of
// [0, maxS): a splitmix64 finalizer over the scenario seed, the group
// name and the replica index. Stable across sessions and machines by
// construction — it feeds compiled timelines and so cache identities.
func fleetJitter(seed int64, group string, i int, maxS int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(group))
	x := uint64(seed) + h.Sum64() + uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x % uint64(maxS))
}

// validateFleetGroups checks the group templates under
// cluster.fleet[g] paths. Per-replica properties (duplicate names
// against explicit hosts, VM field ranges) are checked by the expanded
// host validation afterwards.
func (s *Spec) validateFleetGroups() error {
	name := s.Name
	cat := hw.Catalog()
	seen := make(map[string]int, len(s.Cluster.Fleet))
	// Total-population bound, summed in int64 so absurd per-group counts
	// cannot wrap the check they are being checked against.
	total := int64(len(s.Cluster.Hosts))
	for gi, g := range s.Cluster.Fleet {
		path := fmt.Sprintf("cluster.fleet[%d]", gi)
		if !validName(g.Name) {
			return errf(name, path+".name", "must be non-empty lowercase [a-z0-9._-], got %q", g.Name)
		}
		if prev, dup := seen[g.Name]; dup {
			return errf(name, path+".name", "group %q already declared at cluster.fleet[%d]", g.Name, prev)
		}
		seen[g.Name] = gi
		if g.Count < 1 || g.Count > MaxFleetReplicas {
			return errf(name, path+".count", "must be 1..%d, got %d", MaxFleetReplicas, g.Count)
		}
		total += int64(g.Count)
		if total > MaxFleetHosts {
			return errf(name, path+".count", "cluster exceeds %d hosts in total (group %q brings it to %d)", MaxFleetHosts, g.Name, total)
		}
		if _, ok := cat[g.Machine]; !ok {
			models := make([]string, 0, len(cat))
			for m := range cat {
				models = append(models, m)
			}
			sort.Strings(models)
			return errf(name, path+".machine", "unknown machine model %q (catalog: %s)", g.Machine, strings.Join(models, ", "))
		}
		if g.PhaseJitterS < 0 {
			return errf(name, path+".phase_jitter_s", "must be non-negative, got %v", g.PhaseJitterS)
		}
		if g.PhaseJitterS > 0 {
			if g.PhaseJitterS < 1 || g.PhaseJitterS != math.Trunc(g.PhaseJitterS) {
				return errf(name, path+".phase_jitter_s", "lead-ins are whole seconds; must be 0 or a whole number of seconds >= 1, got %v", g.PhaseJitterS)
			}
			phased := false
			for vi, v := range g.VMs {
				if len(v.Phases) == 0 {
					continue
				}
				phased = true
				// The lead-in holds the timeline's entry intensity as a
				// steady phase; Level 0 means "factor 1" in the phase
				// grammar, so an entry factor of exactly 0 cannot be
				// expressed and is refused.
				if entry := v.Phases[0].phase().Factor(0); entry <= 0 {
					return errf(name, fmt.Sprintf("%s.vms[%d].phases[0]", path, vi),
						"entry intensity factor is %v; a jittered lead-in cannot hold it (factors must be positive)", entry)
				}
			}
			if !phased {
				return errf(name, path+".phase_jitter_s", "no template VM has phases; there is no timeline to offset")
			}
		}
	}
	return nil
}

// expandedClusterHosts returns the cluster's concrete host population —
// explicit hosts followed by every fleet replica — plus a parallel
// field-path label per host for error reporting.
func (s *Spec) expandedClusterHosts() ([]ClusterHostSpec, []string) {
	c := s.Cluster
	hosts := make([]ClusterHostSpec, 0, c.hostCount())
	paths := make([]string, 0, c.hostCount())
	for hi, h := range c.Hosts {
		hosts = append(hosts, h)
		paths = append(paths, fmt.Sprintf("cluster.hosts[%d]", hi))
	}
	seed := s.EffectiveSeed()
	for gi, g := range c.Fleet {
		for i := 0; i < g.Count; i++ {
			suffix := replicaSuffix(i)
			host := ClusterHostSpec{
				Name:    g.Name + suffix,
				Machine: g.Machine,
				VMs:     make([]ClusterVMSpec, 0, len(g.VMs)),
			}
			for _, v := range g.VMs {
				rv := v
				rv.Name = v.Name + suffix
				rv.Phases = append([]PhaseSpec(nil), v.Phases...)
				if g.PhaseJitterS >= 1 && len(rv.Phases) > 0 {
					if lead := fleetJitter(seed, g.Name, i, int64(g.PhaseJitterS)); lead > 0 {
						// Hold the timeline's entry intensity: a steady span
						// at the first phase's position-0 factor.
						rv.Phases = append([]PhaseSpec{{
							Name:      "lead-in",
							Kind:      string(workload.PhaseSteady),
							DurationS: float64(lead),
							Level:     rv.Phases[0].phase().Factor(0),
						}}, rv.Phases...)
					}
				}
				host.VMs = append(host.VMs, rv)
			}
			hosts = append(hosts, host)
			paths = append(paths, fmt.Sprintf("cluster.fleet[%d].replica[%d]", gi, i))
		}
	}
	return hosts, paths
}
