// Package scenario is the declarative scenario subsystem: a versioned,
// struct-tagged JSON specification that compiles into the simulation
// types the rest of the codebase executes, so that adding a new
// experimental scenario is a data change (one file under scenarios/)
// rather than a Go-code change.
//
// A Spec describes one scenario end to end — the machine pair (including
// heterogeneous "src/dst" mixes from the hw catalog), the migration
// mechanism, the migrating guest and its workload, co-located load VMs,
// an optional workload-phase timeline (steady/burst/diurnal/ramp from
// internal/workload), migration-engine and power-meter overrides, repeat
// policy, and, for data-centre scenarios, a host population with an
// optional explicit move plan. Compile lowers a Spec into sim.Scenario
// values (one per phase) or a dcsim execution, and Validate rejects bad
// specs with pathed errors ("phases[2].duration_s: …") that point at the
// offending JSON field.
//
// Determinism and caching: a Spec pins every random choice. Its seed is
// either given explicitly or derived from the scenario name with a stable
// FNV-1a hash, and per-phase seeds derive from that by index, so the
// sim.Scenario values a spec compiles to — which are also the run-cache
// keys — are identical across sessions. Loading and running the same
// scenario file twice, with or without the cache, yields bit-identical
// results.
//
// The registry half of the package (Load, LoadDir, LoadGlob, List) reads
// scenario files from disk with strict JSON decoding (unknown fields are
// errors, catching typos in committed scenarios) and cross-file checks:
// within one directory, scenario names and effective seeds must be
// unique, keeping library entries independent samples and their cache
// identities distinct.
//
// The committed library lives in scenarios/ at the repository root and is
// executed by cmd/wavm3scen; see ARCHITECTURE.md for where this package
// sits in the data flow.
package scenario
