package scenario

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/consolidation"
	"repro/internal/migration"
	"repro/internal/sim"
)

// clusterBase is a minimal valid cluster spec used by the validation
// matrix: two hosts, one phased VM, one explicit move.
func clusterBase() *Spec {
	return &Spec{
		Version: CurrentVersion,
		Name:    "cl-test",
		Cluster: &ClusterSpec{
			HorizonS: 3600,
			Hosts: []ClusterHostSpec{
				{Name: "a", Machine: "m01", VMs: []ClusterVMSpec{
					{Name: "v1", MemGiB: 4, BusyVCPUs: 2, DirtyRatio: 0.1,
						Phases: []PhaseSpec{{Kind: "diurnal", DurationS: 3600, Level: 0.5, Peak: 1.5}}},
				}},
				{Name: "b", Machine: "m01"},
			},
			Moves: []TimedMoveSpec{{VM: "v1", From: "a", To: "b", AtS: 60}},
		},
	}
}

// clusterPolicyBase swaps the explicit move for an energy-aware tick.
func clusterPolicyBase() *Spec {
	s := clusterBase()
	s.Cluster.Moves = nil
	s.Cluster.Policy = PolicyEnergyAware
	s.Cluster.TickS = 600
	s.Cluster.PaybackS = 86400
	return s
}

func TestClusterValidationPaths(t *testing.T) {
	at := func(v float64) *float64 { return &v }
	if err := clusterBase().Validate(); err != nil {
		t.Fatalf("valid cluster spec rejected: %v", err)
	}
	if err := clusterPolicyBase().Validate(); err != nil {
		t.Fatalf("valid policy cluster spec rejected: %v", err)
	}
	cases := []struct {
		name     string
		mutate   func(*Spec)
		wantPath string
	}{
		{"both forms", func(s *Spec) { s.Datacenter = &Datacenter{} }, "cluster"},
		{"pair set", func(s *Spec) { s.Pair = "m01-m02" }, "pair"},
		{"migrating set", func(s *Spec) { s.Migrating.Workload.Profile = ProfileIdle }, "migrating"},
		{"spec phases set", func(s *Spec) { s.Phases = []PhaseSpec{{Kind: "steady", DurationS: 1}} }, "phases"},
		{"load vms set", func(s *Spec) { s.SourceLoadVMs = 1 }, "source_load_vms"},
		{"load workload set", func(s *Spec) { s.LoadWorkload = &Workload{Profile: ProfileMatrixMult} }, "load_workload"},
		{"repeat set", func(s *Spec) { s.Repeat = &Repeat{MinRuns: 3} }, "repeat"},
		{"meter set", func(s *Spec) { s.Meter = &Meter{PeriodMS: 1000} }, "meter"},
		{"post-copy", func(s *Spec) { s.Kind = "post-copy" }, "kind"},
		{"no hosts", func(s *Spec) { s.Cluster.Hosts = nil }, "cluster.hosts"},
		{"bad policy", func(s *Spec) { s.Cluster.Policy = "round-robin" }, "cluster.policy"},
		{"no moves no policy", func(s *Spec) { s.Cluster.Moves = nil }, "cluster.moves"},
		{"tick without policy", func(s *Spec) { s.Cluster.TickS = 60 }, "cluster.tick_s"},
		{"cap without policy", func(s *Spec) { s.Cluster.CPUCap = 0.8 }, "cluster.cpu_cap"},
		{"unnamed host", func(s *Spec) { s.Cluster.Hosts[1].Name = "" }, "cluster.hosts[1].name"},
		{"duplicate host", func(s *Spec) { s.Cluster.Hosts[1].Name = "a" }, "cluster.hosts[1].name"},
		{"unknown machine", func(s *Spec) { s.Cluster.Hosts[1].Machine = "vax" }, "cluster.hosts[1].machine"},
		{"unnamed vm", func(s *Spec) { s.Cluster.Hosts[0].VMs[0].Name = "" }, "cluster.hosts[0].vms[0].name"},
		{"duplicate vm", func(s *Spec) {
			s.Cluster.Hosts[1].VMs = []ClusterVMSpec{{Name: "v1", MemGiB: 4}}
		}, "cluster.hosts[1].vms[0].name"},
		{"no memory", func(s *Spec) { s.Cluster.Hosts[0].VMs[0].MemGiB = 0 }, "cluster.hosts[0].vms[0].mem_gib"},
		{"negative busy", func(s *Spec) { s.Cluster.Hosts[0].VMs[0].BusyVCPUs = -1 }, "cluster.hosts[0].vms[0].busy_vcpus"},
		{"dirty out of range", func(s *Spec) { s.Cluster.Hosts[0].VMs[0].DirtyRatio = 1.5 }, "cluster.hosts[0].vms[0].dirty_ratio"},
		{"vm phase bad kind", func(s *Spec) {
			s.Cluster.Hosts[0].VMs[0].Phases[0].Kind = "spiky"
		}, "cluster.hosts[0].vms[0].phases[0].kind"},
		{"vm phase with at", func(s *Spec) {
			s.Cluster.Hosts[0].VMs[0].Phases[0].At = at(0.5)
		}, "cluster.hosts[0].vms[0].phases[0].at"},
		{"unknown move vm", func(s *Spec) { s.Cluster.Moves[0].VM = "ghost" }, "cluster.moves[0].vm"},
		{"unknown from", func(s *Spec) { s.Cluster.Moves[0].From = "ghost" }, "cluster.moves[0].from"},
		{"unknown to", func(s *Spec) { s.Cluster.Moves[0].To = "ghost" }, "cluster.moves[0].to"},
		{"self move", func(s *Spec) { s.Cluster.Moves[0].To = "a" }, "cluster.moves[0].to"},
		{"negative at", func(s *Spec) { s.Cluster.Moves[0].AtS = -1 }, "cluster.moves[0].at_s"},
		{"cross-switch move", func(s *Spec) { s.Cluster.Hosts[1].Machine = "o1" }, "(compiled)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := clusterBase()
			tc.mutate(s)
			wantPathError(t, s.Validate(), tc.wantPath)
		})
	}
	policyCases := []struct {
		name     string
		mutate   func(*Spec)
		wantPath string
	}{
		{"policy with moves", func(s *Spec) {
			s.Cluster.Moves = []TimedMoveSpec{{VM: "v1", From: "a", To: "b"}}
		}, "cluster.moves"},
		{"policy no tick", func(s *Spec) { s.Cluster.TickS = 0 }, "cluster.tick_s"},
		{"policy no horizon", func(s *Spec) { s.Cluster.HorizonS = 0 }, "cluster.horizon_s"},
		{"policy one host", func(s *Spec) { s.Cluster.Hosts = s.Cluster.Hosts[:1] }, "cluster.hosts"},
		{"cap out of range", func(s *Spec) { s.Cluster.CPUCap = 1.5 }, "cluster.cpu_cap"},
		{"negative payback", func(s *Spec) { s.Cluster.PaybackS = -1 }, "cluster.payback_s"},
	}
	for _, tc := range policyCases {
		t.Run(tc.name, func(t *testing.T) {
			s := clusterPolicyBase()
			tc.mutate(s)
			wantPathError(t, s.Validate(), tc.wantPath)
		})
	}
}

// clusterFailureBase extends clusterBase with a legal failure schedule:
// an outage window after the move's flight and a crash of the move's
// target well after dispatch.
func clusterFailureBase() *Spec {
	s := clusterBase()
	s.Cluster.Failures = []FailureSpec{
		{AtS: 30, Kind: "flight-abort", VM: "v1"},
		{AtS: 600, Kind: "switch-outage", Switch: "Cisco Catalyst 3750"},
		{AtS: 700, Kind: "switch-restore", Switch: "Cisco Catalyst 3750"},
		{AtS: 900, Kind: "host-crash", Host: "b"},
	}
	s.Cluster.EvacuationDeadlineS = 600
	return s
}

func TestClusterFailureValidationPaths(t *testing.T) {
	if err := clusterFailureBase().Validate(); err != nil {
		t.Fatalf("valid failure schedule rejected: %v", err)
	}
	cases := []struct {
		name     string
		mutate   func(*Spec)
		wantPath string
	}{
		{"negative at", func(s *Spec) { s.Cluster.Failures[0].AtS = -1 }, "cluster.failures[0].at_s"},
		{"unknown kind", func(s *Spec) { s.Cluster.Failures[0].Kind = "meteor" }, "cluster.failures[0].kind"},
		{"crash without host", func(s *Spec) { s.Cluster.Failures[3].Host = "" }, "cluster.failures[3].host"},
		{"crash unknown host", func(s *Spec) { s.Cluster.Failures[3].Host = "ghost" }, "cluster.failures[3].host"},
		{"crash targets vm too", func(s *Spec) { s.Cluster.Failures[3].VM = "v1" }, "cluster.failures[3]"},
		{"abort without vm", func(s *Spec) { s.Cluster.Failures[0].VM = "" }, "cluster.failures[0].vm"},
		{"abort unknown vm", func(s *Spec) { s.Cluster.Failures[0].VM = "ghost" }, "cluster.failures[0].vm"},
		{"abort targets host too", func(s *Spec) { s.Cluster.Failures[0].Host = "a" }, "cluster.failures[0]"},
		{"outage without switch", func(s *Spec) { s.Cluster.Failures[1].Switch = "" }, "cluster.failures[1].switch"},
		{"outage targets host too", func(s *Spec) { s.Cluster.Failures[1].Host = "a" }, "cluster.failures[1]"},
		{"negative deadline", func(s *Spec) { s.Cluster.EvacuationDeadlineS = -1 }, "cluster.evacuation_deadline_s"},
		{"deadline without failures", func(s *Spec) {
			s.Cluster.Failures = nil
		}, "cluster.evacuation_deadline_s"},
		// The engine's own validation backstops the semantic checks the
		// schema layer cannot see.
		{"unknown switch domain", func(s *Spec) {
			s.Cluster.Failures[1].Switch = "HP 1810-8G"
		}, "(compiled)"},
		{"restore without outage", func(s *Spec) {
			s.Cluster.Failures = s.Cluster.Failures[2:]
		}, "(compiled)"},
		{"move into crashed host", func(s *Spec) { s.Cluster.Failures[3].AtS = 10 }, "(compiled)"},
		{"move inside outage window", func(s *Spec) {
			s.Cluster.Failures[1].AtS = 50
			s.Cluster.Moves[0].AtS = 55
		}, "(compiled)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := clusterFailureBase()
			tc.mutate(s)
			wantPathError(t, s.Validate(), tc.wantPath)
		})
	}
}

func TestClusterFailureCompile(t *testing.T) {
	c, err := clusterFailureBase().Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Cluster.Config
	if len(cfg.Failures) != 4 {
		t.Fatalf("failures = %+v, want 4 lowered events", cfg.Failures)
	}
	f := cfg.Failures[0]
	if f.At != 30*time.Second || f.Kind != cluster.FailFlightAbort || f.VM != "v1" {
		t.Errorf("failure 0 lowered to %+v", f)
	}
	if cfg.Failures[3].Kind != cluster.FailHostCrash || cfg.Failures[3].Host != "b" {
		t.Errorf("failure 3 lowered to %+v", cfg.Failures[3])
	}
	if cfg.EvacuationDeadline != 600*time.Second {
		t.Errorf("evacuation deadline = %v, want 10m", cfg.EvacuationDeadline)
	}
}

// TestChaosScenariosDeterministic pins the chaos family's bit-identical
// determinism across run-cache instances and worker counts: the same
// spec must yield byte-for-byte the same report whether kernels run
// serially, on eight workers, or with no shared cache at all.
func TestChaosScenariosDeterministic(t *testing.T) {
	specs, err := LoadDir(libraryDir)
	if err != nil {
		t.Fatal(err)
	}
	chaos := map[string]bool{
		"chaos-crash-cascade-16":    true,
		"drain-under-crash-256":     true,
		"partitioned-switch-evac-8": true,
	}
	found := 0
	for _, s := range specs {
		if !chaos[s.Name] {
			continue
		}
		found++
		c, err := s.Compile()
		if err != nil {
			t.Fatalf("compiling %s: %v", s.Name, err)
		}
		variants := []*sim.Cache{sim.NewCache(1), sim.NewCache(8), nil}
		var first *cluster.Report
		for vi, cache := range variants {
			cfg := c.Cluster.Config
			cfg.Cache = cache
			rep, err := cluster.Run(cfg)
			if err != nil {
				t.Fatalf("%s variant %d: %v", s.Name, vi, err)
			}
			if first == nil {
				first = rep
				continue
			}
			if !reflect.DeepEqual(first, rep) {
				t.Errorf("%s: variant %d report differs from variant 0", s.Name, vi)
			}
		}
	}
	if found != len(chaos) {
		t.Fatalf("found %d of %d chaos scenarios in the library", found, len(chaos))
	}
}

func TestClusterCompile(t *testing.T) {
	s := clusterBase()
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Cluster == nil || c.Plan != nil || len(c.Runs) != 0 {
		t.Fatalf("cluster spec compiled to runs=%d plan=%v cluster=%v", len(c.Runs), c.Plan, c.Cluster)
	}
	cfg := c.Cluster.Config
	if c.Cluster.Policy != "timeline" {
		t.Errorf("policy label = %q, want timeline", c.Cluster.Policy)
	}
	if cfg.Kind != migration.Live {
		t.Errorf("kind = %v", cfg.Kind)
	}
	if cfg.Seed != s.EffectiveSeed() {
		t.Errorf("seed = %d, want %d", cfg.Seed, s.EffectiveSeed())
	}
	if len(cfg.Hosts) != 2 || cfg.Hosts[0].Machine != "m01" {
		t.Errorf("hosts = %+v", cfg.Hosts)
	}
	if len(cfg.Hosts[0].VMs[0].Phases) != 1 || cfg.Hosts[0].VMs[0].Phases[0].Duration != 3600*time.Second {
		t.Errorf("vm phases = %+v", cfg.Hosts[0].VMs[0].Phases)
	}
	if len(cfg.Moves) != 1 || cfg.Moves[0].At != time.Minute {
		t.Errorf("moves = %+v", cfg.Moves)
	}

	p, err := clusterPolicyBase().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Cluster.Policy != "energy-aware" {
		t.Errorf("policy label = %q", p.Cluster.Policy)
	}
	pc := p.Cluster.Config
	if _, ok := pc.Policy.(consolidation.EnergyAware); !ok {
		t.Errorf("policy = %T, want EnergyAware", pc.Policy)
	}
	if pc.Tick != 600*time.Second || pc.Horizon != 3600*time.Second {
		t.Errorf("tick/horizon = %v/%v", pc.Tick, pc.Horizon)
	}
	if pc.PolicyConfig.Horizon != 86400*time.Second {
		t.Errorf("payback horizon = %v", pc.PolicyConfig.Horizon)
	}
}
