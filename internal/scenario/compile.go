package scenario

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/consolidation"
	"repro/internal/dcsim"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vm"
)

// Default observation windows of compiled runs (simulated time). The
// pre-migration window must cover the meter stabilisation rule — 20
// samples at the default 2 Hz cadence — with a little slack.
const (
	DefaultPreMigration  = 11 * time.Second
	DefaultPostMigration = 6 * time.Second
)

// phaseSeedStride separates the derived seeds of a spec's phases. It is a
// large prime, coprime to the repeat stride (1009) used inside
// sim.RunRepeated and the point stride (7919) used by experiment
// campaigns, so the seed lattices of phases, repeats and campaign points
// never collide for realistic index ranges.
const phaseSeedStride = 15485863

// Run is one independently executable migration block compiled from a
// spec: a fully determined sim.Scenario plus the spec's repeat policy.
type Run struct {
	// Label identifies the run in reports: the spec name, plus the phase
	// label when the spec has a phase timeline.
	Label string
	// Scenario is the compiled simulation input (also its run-cache key).
	Scenario sim.Scenario
	// MinRuns / VarianceTol are the repeat policy (paper's variance rule).
	MinRuns     int
	VarianceTol float64
}

// PlanRun is the compiled form of a data-centre scenario: a host
// population and an explicit move plan for the dcsim executor. Workers
// and Cache on the Executor are left to the caller.
type PlanRun struct {
	// Policy labels the execution report ("scenario/<name>" or the
	// planning policy that produced implicit moves).
	Policy string
	// Hosts is the pre-plan data-centre state.
	Hosts []consolidation.HostState
	// Plan holds the moves in execution order.
	Plan *consolidation.Plan
	// Executor is pre-configured with the spec's pair, kind and seed.
	Executor dcsim.Executor
}

// ClusterRun is the compiled form of a cluster scenario: a ready
// cluster.Config with Workers and Cache left to the caller.
type ClusterRun struct {
	// Policy labels the timeline in reports: the planning policy, or
	// "timeline" for explicit move lists.
	Policy string
	// Config is the lowered engine input.
	Config cluster.Config
}

// Compiled is everything a spec lowers to. Exactly one of Runs (migration
// scenarios, one entry per phase), Plan (data-centre scenarios) or
// Cluster (N-host timelines) is populated.
type Compiled struct {
	Spec    *Spec
	Runs    []Run
	Plan    *PlanRun
	Cluster *ClusterRun
}

// Compile validates the spec and lowers it into executable form. The
// result is deterministic: the same spec compiles to the same scenarios
// — and therefore the same run-cache keys — in every session.
func (s *Spec) Compile() (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Datacenter != nil {
		return s.compileDatacenter()
	}
	if s.Cluster != nil {
		return s.compileCluster()
	}
	base, err := s.baseScenario()
	if err != nil {
		return nil, err
	}
	out := &Compiled{Spec: s}
	if len(s.Phases) == 0 {
		out.Runs = []Run{{
			Label:       s.Name,
			Scenario:    base,
			MinRuns:     s.Repeat.minRuns(),
			VarianceTol: s.Repeat.varianceTol(),
		}}
		return out, nil
	}
	for i, p := range s.Phases {
		factor := p.phase().Factor(p.at())
		sc := base
		sc.Name = fmt.Sprintf("%s/%s", base.Name, p.label(i))
		sc.MigratingProfile = base.MigratingProfile.Modulate(factor)
		// Co-located load tracks the phase intensity: a burst doubles both
		// the guest's appetite and its neighbours'.
		sc.SourceLoadVMs = scaleVMs(s.SourceLoadVMs, factor)
		sc.TargetLoadVMs = scaleVMs(s.TargetLoadVMs, factor)
		sc.Seed = base.Seed + int64(i)*phaseSeedStride
		out.Runs = append(out.Runs, Run{
			Label:       fmt.Sprintf("%s/%s", s.Name, p.label(i)),
			Scenario:    sc,
			MinRuns:     s.Repeat.minRuns(),
			VarianceTol: s.Repeat.varianceTol(),
		})
	}
	return out, nil
}

// scaleVMs scales a load-VM count by a phase factor, rounding to nearest.
func scaleVMs(n int, factor float64) int {
	if n <= 0 || factor <= 0 {
		return 0
	}
	return int(math.Round(float64(n) * factor))
}

// baseScenario lowers the spec's common fields into a sim.Scenario
// (before any phase modulation).
func (s *Spec) baseScenario() (sim.Scenario, error) {
	kind, err := s.kind()
	if err != nil {
		return sim.Scenario{}, errf(s.Name, "kind", "%v", err)
	}
	prof, err := s.Migrating.Workload.profile()
	if err != nil {
		return sim.Scenario{}, errf(s.Name, "migrating.workload.profile", "%v", err)
	}
	typ := s.Migrating.Type
	if typ == "" {
		if prof.DirtyPagesPerSecond > 0 && s.Migrating.Workload.dirties() {
			typ = vm.TypeMigratingMem
		} else {
			typ = vm.TypeMigratingCPU
		}
	}
	sc := sim.Scenario{
		Name:             "scen/" + s.Name,
		Pair:             s.pair(),
		Kind:             kind,
		MigratingType:    typ,
		MigratingProfile: prof,
		SourceLoadVMs:    s.SourceLoadVMs,
		TargetLoadVMs:    s.TargetLoadVMs,
		PreMigration:     DefaultPreMigration,
		PostMigration:    DefaultPostMigration,
		Migration:        s.Migration.config(kind),
		Meter:            s.Meter.config(),
		Seed:             s.EffectiveSeed(),
	}
	if s.LoadWorkload != nil {
		lp, err := s.LoadWorkload.profile()
		if err != nil {
			return sim.Scenario{}, errf(s.Name, "load_workload.profile", "%v", err)
		}
		sc.LoadProfile = lp
	}
	if s.Timing != nil {
		if s.Timing.PreS > 0 {
			sc.PreMigration = time.Duration(s.Timing.PreS * float64(time.Second))
		}
		if s.Timing.PostS > 0 {
			sc.PostMigration = time.Duration(s.Timing.PostS * float64(time.Second))
		}
	}
	return sc, nil
}

// hostStates lowers the datacenter host specs.
func (s *Spec) hostStates() ([]consolidation.HostState, error) {
	dc := s.Datacenter
	hosts := make([]consolidation.HostState, 0, len(dc.Hosts))
	for _, h := range dc.Hosts {
		hs := consolidation.HostState{
			Name:      h.Name,
			Threads:   h.Threads,
			MemBytes:  gib(h.MemGiB),
			IdlePower: units.Watts(h.IdlePowerW),
		}
		for _, v := range h.VMs {
			hs.VMs = append(hs.VMs, consolidation.VMState{
				Name:       v.Name,
				MemBytes:   gib(v.MemGiB),
				BusyVCPUs:  v.BusyVCPUs,
				DirtyRatio: units.Fraction(v.DirtyRatio),
			})
		}
		hosts = append(hosts, hs)
	}
	return hosts, nil
}

// gib converts a fractional GiB count to bytes.
func gib(n float64) units.Bytes {
	return units.Bytes(n * float64(units.GiB))
}

// compileDatacenter lowers the data-centre form of the spec.
func (s *Spec) compileDatacenter() (*Compiled, error) {
	kind, err := s.kind()
	if err != nil {
		return nil, errf(s.Name, "kind", "%v", err)
	}
	hosts, err := s.hostStates()
	if err != nil {
		return nil, err
	}
	pr := &PlanRun{
		Policy: "scenario/" + s.Name,
		Hosts:  hosts,
		Executor: dcsim.Executor{
			Pair: s.pair(),
			Kind: kind,
			Seed: s.EffectiveSeed(),
		},
	}
	if len(s.Datacenter.Moves) > 0 {
		plan := &consolidation.Plan{}
		for _, mv := range s.Datacenter.Moves {
			plan.Moves = append(plan.Moves, consolidation.Move{VM: mv.VM, From: mv.From, To: mv.To})
		}
		pr.Plan = plan
	} else {
		// No explicit moves: plan with the energy-blind first-fit-
		// decreasing policy, the only built-in planner that needs no
		// trained estimator — keeping compilation deterministic data.
		ffd := consolidation.FirstFitDecreasing{}
		plan, err := ffd.Plan(hosts, consolidation.Config{})
		if err != nil {
			return nil, errf(s.Name, "datacenter", "planning moves with %s: %v", ffd.Name(), err)
		}
		pr.Policy = ffd.Name()
		pr.Plan = plan
	}
	return &Compiled{Spec: s, Plan: pr}, nil
}

// clusterConfig lowers the cluster form into the engine's Config. The
// result is deterministic: the same spec lowers to the same timeline —
// and the same lowered migration scenarios, the run-cache keys — in
// every session.
func (s *Spec) clusterConfig() (cluster.Config, error) {
	kind, err := s.kind()
	if err != nil {
		return cluster.Config{}, errf(s.Name, "kind", "%v", err)
	}
	c := s.Cluster
	cfg := cluster.Config{
		Kind:    kind,
		Horizon: time.Duration(c.HorizonS * float64(time.Second)),
		Tick:    time.Duration(c.TickS * float64(time.Second)),
		Seed:    s.EffectiveSeed(),
	}
	switch c.Policy {
	case PolicyEnergyAware:
		cfg.Policy = consolidation.EnergyAware{Model: consolidation.HeuristicCost{}}
	case PolicyFirstFit:
		cfg.Policy = consolidation.FirstFitDecreasing{Model: consolidation.HeuristicCost{}}
	case "":
	default:
		return cluster.Config{}, errf(s.Name, "cluster.policy", "unknown policy %q", c.Policy)
	}
	cfg.PolicyConfig = consolidation.Config{
		CPUCap:   c.CPUCap,
		MaxMoves: c.MaxMoves,
		Horizon:  time.Duration(c.PaybackS * float64(time.Second)),
	}
	hosts, _ := s.expandedClusterHosts()
	cfg.Hosts = make([]cluster.Host, 0, len(hosts))
	for _, h := range hosts {
		ch := cluster.Host{Name: h.Name, Machine: h.Machine}
		for _, v := range h.VMs {
			cv := cluster.VM{
				Name:       v.Name,
				MemBytes:   gib(v.MemGiB),
				BusyVCPUs:  v.BusyVCPUs,
				DirtyRatio: units.Fraction(v.DirtyRatio),
			}
			for _, p := range v.Phases {
				cv.Phases = append(cv.Phases, p.phase())
			}
			ch.VMs = append(ch.VMs, cv)
		}
		cfg.Hosts = append(cfg.Hosts, ch)
	}
	for _, m := range c.Moves {
		cfg.Moves = append(cfg.Moves, cluster.TimedMove{
			VM: m.VM, From: m.From, To: m.To,
			At: time.Duration(m.AtS * float64(time.Second)),
		})
	}
	for _, f := range c.Failures {
		cfg.Failures = append(cfg.Failures, cluster.FailureEvent{
			At:     time.Duration(f.AtS * float64(time.Second)),
			Kind:   cluster.FailureKind(f.Kind),
			Host:   f.Host,
			VM:     f.VM,
			Switch: f.Switch,
		})
	}
	cfg.EvacuationDeadline = time.Duration(c.EvacuationDeadlineS * float64(time.Second))
	return cfg, nil
}

// compileCluster lowers the cluster form of the spec.
func (s *Spec) compileCluster() (*Compiled, error) {
	cfg, err := s.clusterConfig()
	if err != nil {
		return nil, err
	}
	policy := "timeline"
	if cfg.Policy != nil {
		policy = cfg.Policy.Name()
	}
	return &Compiled{Spec: s, Cluster: &ClusterRun{Policy: policy, Config: cfg}}, nil
}
