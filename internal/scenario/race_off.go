//go:build !race

package scenario

// raceEnabled reports whether the race detector instruments this build;
// the golden library run skips the 100k-host fleet scenarios under
// instrumentation because the detector multiplies their wall-clock far
// past the suite's budget.
const raceEnabled = false
