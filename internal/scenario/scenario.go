package scenario

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/meter"
	"repro/internal/migration"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
)

// CurrentVersion is the spec format version this package reads and
// writes. Committed scenarios carry their version explicitly so a future
// format change can migrate or reject old files deliberately instead of
// misreading them.
const CurrentVersion = 1

// Error is a scenario load or validation failure tied to the scenario it
// occurred in and the JSON field path that caused it, so a failing file
// in a library of dozens points straight at the offending line.
type Error struct {
	// Scenario names the spec ("diurnal-day") or, before the name is
	// known, the file being loaded.
	Scenario string
	// Path is the dotted JSON field path ("migrating.workload.profile",
	// "phases[2].duration_s"). Syntax errors use "(json)".
	Path string
	// Msg describes the failure.
	Msg string
}

// Error renders "scenario <name>: <path>: <msg>".
func (e *Error) Error() string {
	return fmt.Sprintf("scenario %q: %s: %s", e.Scenario, e.Path, e.Msg)
}

// errf builds a pathed Error.
func errf(scenario, path, format string, args ...any) *Error {
	return &Error{Scenario: scenario, Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Spec is one declarative scenario. The zero value of every optional
// field selects the documented default, so minimal specs stay minimal.
type Spec struct {
	// Version is the spec format version; must equal CurrentVersion.
	Version int `json:"version"`
	// Name identifies the scenario in the registry, in run labels and in
	// cache keys. Lowercase letters, digits, '.', '_' and '-' only.
	Name string `json:"name"`
	// Description says what the scenario probes (shown by List and the
	// runner's -list flag).
	Description string `json:"description,omitempty"`
	// Pair selects the machine pair: "m01-m02" (default), "o1-o2", or a
	// custom "src/dst" mix of hw catalog machines such as "m01/h1".
	Pair string `json:"pair,omitempty"`
	// Kind is the migration mechanism: "live" (default), "non-live" or
	// "post-copy".
	Kind string `json:"kind,omitempty"`
	// Seed pins the scenario's randomness; 0 derives a stable seed from
	// the name (see EffectiveSeed).
	Seed int64 `json:"seed,omitempty"`
	// Migrating describes the migrating guest (migration scenarios only).
	Migrating Guest `json:"migrating,omitempty"`
	// SourceLoadVMs / TargetLoadVMs are the co-located load-VM counts.
	SourceLoadVMs int `json:"source_load_vms,omitempty"`
	TargetLoadVMs int `json:"target_load_vms,omitempty"`
	// LoadWorkload overrides the load VMs' workload (matrixmult default).
	LoadWorkload *Workload `json:"load_workload,omitempty"`
	// Phases is the optional workload-phase timeline. Each phase compiles
	// to one independently runnable migration block: the migration happens
	// at the phase's sampling point with the workload and co-located load
	// scaled by the phase's intensity factor.
	Phases []PhaseSpec `json:"phases,omitempty"`
	// Timing overrides the pre/post-migration observation windows.
	Timing *Timing `json:"timing,omitempty"`
	// Migration overrides the migration engine's tuning.
	Migration *MigrationTuning `json:"migration,omitempty"`
	// Meter overrides the simulated power analysers.
	Meter *Meter `json:"meter,omitempty"`
	// Repeat overrides the repeat policy (2 runs, 50% variance tolerance
	// by default).
	Repeat *Repeat `json:"repeat,omitempty"`
	// Datacenter turns the spec into a data-centre scenario: a host
	// population whose consolidation plan is executed move by move as
	// measured migrations (dcsim). Mutually exclusive with Migrating.
	Datacenter *Datacenter `json:"datacenter,omitempty"`
	// Cluster turns the spec into an N-host discrete-event timeline: a
	// host population built from hw catalog machine models, evolved
	// through policy ticks, timed migrations and workload phase
	// transitions, with concurrent migrations contending on shared
	// links (internal/cluster). Mutually exclusive with Migrating and
	// Datacenter.
	Cluster *ClusterSpec `json:"cluster,omitempty"`
}

// Guest describes the migrating VM.
type Guest struct {
	// Type is the vm instance type; empty infers migrating-mem for
	// memory-dirtying workloads and migrating-cpu otherwise.
	Type string `json:"type,omitempty"`
	// Workload is what runs inside the guest.
	Workload Workload `json:"workload,omitempty"`
}

// Workload names a workload profile plus its parameters.
type Workload struct {
	// Profile is one of "matrixmult", "pagedirtier", "hotcold",
	// "netintensive", "idle".
	Profile string `json:"profile"`
	// DirtyTarget is the target dirty ratio of the pagedirtier/hotcold
	// profiles (ignored — and rejected if set — for the others).
	DirtyTarget float64 `json:"dirty_target,omitempty"`
}

// Workload profile names.
const (
	ProfileMatrixMult   = "matrixmult"
	ProfilePagedirtier  = "pagedirtier"
	ProfileHotCold      = "hotcold"
	ProfileNetIntensive = "netintensive"
	ProfileIdle         = "idle"
)

// profileNames lists the accepted workload profiles for error messages.
var profileNames = []string{ProfileMatrixMult, ProfilePagedirtier, ProfileHotCold, ProfileNetIntensive, ProfileIdle}

// profile resolves the named workload profile.
func (w Workload) profile() (workload.Profile, error) {
	switch w.Profile {
	case ProfileMatrixMult:
		return workload.MatrixMultProfile(), nil
	case ProfilePagedirtier:
		return workload.PagedirtierProfile(units.Fraction(w.DirtyTarget)), nil
	case ProfileHotCold:
		return workload.HotColdMemProfile(units.Fraction(w.DirtyTarget)), nil
	case ProfileNetIntensive:
		return workload.NetIntensiveProfile(), nil
	case ProfileIdle:
		return workload.IdleProfile(), nil
	default:
		return workload.Profile{}, fmt.Errorf("unknown workload profile %q (want one of %v)", w.Profile, profileNames)
	}
}

// dirties reports whether the profile is parameterised by a dirty target.
func (w Workload) dirties() bool {
	return w.Profile == ProfilePagedirtier || w.Profile == ProfileHotCold
}

// validate checks one workload reference under the given path.
func (w Workload) validate(name, path string) error {
	if _, err := w.profile(); err != nil {
		return errf(name, path+".profile", "%v", err)
	}
	if w.DirtyTarget < 0 || w.DirtyTarget > 1 {
		return errf(name, path+".dirty_target", "%v outside [0, 1]", w.DirtyTarget)
	}
	if w.DirtyTarget != 0 && !w.dirties() {
		return errf(name, path+".dirty_target", "profile %q takes no dirty target", w.Profile)
	}
	return nil
}

// PhaseSpec is the JSON form of one workload phase.
type PhaseSpec struct {
	// Name labels the phase in run labels; "<kind><index>" when empty.
	Name string `json:"name,omitempty"`
	// Kind is "steady", "burst", "diurnal" or "ramp".
	Kind string `json:"kind"`
	// DurationS is the phase length in seconds; must be positive.
	DurationS float64 `json:"duration_s"`
	// Level is the baseline intensity factor (0 selects 1).
	Level float64 `json:"level,omitempty"`
	// Peak is the maximum intensity factor of burst/diurnal/ramp shapes
	// (0 selects Level).
	Peak float64 `json:"peak,omitempty"`
	// At is the fractional position within the phase at which the
	// migration is sampled, in [0, 1]; nil selects 0.5 (the midpoint — the
	// burst peak, midday of a diurnal phase, halfway up a ramp).
	At *float64 `json:"at,omitempty"`
}

// validate checks the phase's fields under the given path, naming the
// field that is actually wrong. sampled marks contexts where the phase
// is sampled at one position (migration timelines); cluster VM phases
// play out continuously, so "at" is rejected there.
func (p PhaseSpec) validate(name, path string, sampled bool) error {
	ph := p.phase()
	switch ph.Kind {
	case workload.PhaseSteady, workload.PhaseBurst, workload.PhaseDiurnal, workload.PhaseRamp:
	default:
		return errf(name, path+".kind", "unknown phase kind %q (want one of %v)", p.Kind, workload.PhaseKinds())
	}
	if p.DurationS <= 0 {
		return errf(name, path+".duration_s", "must be positive, got %v", p.DurationS)
	}
	if p.Level < 0 {
		return errf(name, path+".level", "must be non-negative, got %v", p.Level)
	}
	if p.Peak < 0 {
		return errf(name, path+".peak", "must be non-negative, got %v", p.Peak)
	}
	// Belt and braces: the lowered phase must agree.
	if err := ph.Validate(); err != nil {
		return errf(name, path, "%v", err)
	}
	if !sampled {
		if p.At != nil {
			return errf(name, path+".at", "meaningless for a cluster VM phase (the timeline plays out continuously)")
		}
		return nil
	}
	if at := p.at(); at < 0 || at > 1 {
		return errf(name, path+".at", "%v outside [0, 1]", at)
	}
	return nil
}

// phase lowers the JSON form into the workload package's Phase.
func (p PhaseSpec) phase() workload.Phase {
	return workload.Phase{
		Name:     p.Name,
		Kind:     workload.PhaseKind(p.Kind),
		Duration: time.Duration(p.DurationS * float64(time.Second)),
		Level:    p.Level,
		Peak:     p.Peak,
	}
}

// at returns the sampling position.
func (p PhaseSpec) at() float64 {
	if p.At == nil {
		return 0.5
	}
	return *p.At
}

// label names the phase for run labels.
func (p PhaseSpec) label(i int) string {
	if p.Name != "" {
		return p.Name
	}
	return fmt.Sprintf("%s%d", p.Kind, i)
}

// Timing is the pre/post-migration observation window override, in
// seconds of simulated time.
type Timing struct {
	// PreS is the normal-execution span before the migration starts. It
	// must cover the meter stabilisation rule (20 samples at the meter
	// cadence); 0 selects 11 s.
	PreS float64 `json:"pre_s,omitempty"`
	// PostS is the observed tail after the migration ends; 0 selects 6 s.
	PostS float64 `json:"post_s,omitempty"`
}

// MigrationTuning overrides the migration engine's defaults. Zero fields
// keep the engine defaults.
type MigrationTuning struct {
	// InitiationS / ActivationS override the handshake and resume spans.
	InitiationS float64 `json:"initiation_s,omitempty"`
	ActivationS float64 `json:"activation_s,omitempty"`
	// MaxRounds bounds pre-copy iterations.
	MaxRounds int `json:"max_rounds,omitempty"`
	// StopThresholdPages ends pre-copy once the dirty set is this small.
	StopThresholdPages int64 `json:"stop_threshold_pages,omitempty"`
	// MaxDataFactor is Xen's data valve (total sent ≤ factor × VM memory).
	MaxDataFactor float64 `json:"max_data_factor,omitempty"`
}

// config lowers the tuning into the migration package's Config.
func (m *MigrationTuning) config(kind migration.Kind) migration.Config {
	cfg := migration.Config{Kind: kind}
	if m == nil {
		return cfg
	}
	cfg.InitiationTime = time.Duration(m.InitiationS * float64(time.Second))
	cfg.ActivationTime = time.Duration(m.ActivationS * float64(time.Second))
	cfg.MaxRounds = m.MaxRounds
	cfg.StopThreshold = units.Pages(m.StopThresholdPages)
	cfg.MaxDataFactor = m.MaxDataFactor
	return cfg
}

// Meter is the power-analyser override: sampling period in milliseconds
// plus the instrument's accuracy band and reading jitter.
type Meter struct {
	// PeriodMS is the sampling interval in milliseconds; it must be a
	// positive multiple of 100 (the simulation step). 0 keeps 500 ms.
	PeriodMS int `json:"period_ms,omitempty"`
	// Accuracy / NoiseSigma override the instrument bands when > 0.
	Accuracy   float64 `json:"accuracy,omitempty"`
	NoiseSigma float64 `json:"noise_sigma,omitempty"`
}

// config lowers the override into the sim package's MeterConfig.
func (m *Meter) config() sim.MeterConfig {
	if m == nil {
		return sim.MeterConfig{}
	}
	return sim.MeterConfig{
		Period:     time.Duration(m.PeriodMS) * time.Millisecond,
		Accuracy:   m.Accuracy,
		NoiseSigma: m.NoiseSigma,
	}
}

// Repeat is the repeat policy: how many times each compiled run executes
// and when the paper's variance-convergence rule stops it.
type Repeat struct {
	// MinRuns is the repeat floor; at least 2 (the default).
	MinRuns int `json:"min_runs,omitempty"`
	// VarianceTol is the convergence tolerance; 0 selects 0.5.
	VarianceTol float64 `json:"variance_tol,omitempty"`
}

// Default repeat policy of compiled runs.
const (
	DefaultMinRuns     = 2
	DefaultVarianceTol = 0.5
)

// minRuns returns the effective repeat floor.
func (r *Repeat) minRuns() int {
	if r == nil || r.MinRuns == 0 {
		return DefaultMinRuns
	}
	return r.MinRuns
}

// varianceTol returns the effective convergence tolerance.
func (r *Repeat) varianceTol() float64 {
	if r == nil || r.VarianceTol == 0 {
		return DefaultVarianceTol
	}
	return r.VarianceTol
}

// Datacenter is the host population of a data-centre scenario.
type Datacenter struct {
	// Hosts are the physical hosts and their resident VMs.
	Hosts []HostSpec `json:"hosts"`
	// Moves is the explicit migration plan, executed in order. When
	// empty, the energy-blind first-fit-decreasing policy plans the moves
	// (the only built-in policy that needs no trained estimator, so the
	// plan stays deterministic data).
	Moves []MoveSpec `json:"moves,omitempty"`
}

// HostSpec describes one data-centre host.
type HostSpec struct {
	Name string `json:"name"`
	// Threads is the CPU capacity in hardware threads.
	Threads int `json:"threads"`
	// MemGiB is the RAM capacity in GiB.
	MemGiB float64 `json:"mem_gib"`
	// IdlePowerW is the host's idle draw in watts (the saving made by
	// emptying and switching it off).
	IdlePowerW float64 `json:"idle_power_w"`
	// VMs are the resident guests.
	VMs []VMSpec `json:"vms,omitempty"`
}

// VMSpec describes one resident VM of a data-centre host.
type VMSpec struct {
	Name string `json:"name"`
	// MemGiB is the VM memory size in GiB.
	MemGiB float64 `json:"mem_gib"`
	// BusyVCPUs is the VM's CPU demand in busy-vCPU units.
	BusyVCPUs float64 `json:"busy_vcpus,omitempty"`
	// DirtyRatio is the VM's steady-state memory dirtying ratio.
	DirtyRatio float64 `json:"dirty_ratio,omitempty"`
}

// MoveSpec is one explicit migration of a data-centre plan.
type MoveSpec struct {
	VM   string `json:"vm"`
	From string `json:"from"`
	To   string `json:"to"`
}

// ClusterSpec is the host population and timeline of a cluster
// scenario.
type ClusterSpec struct {
	// HorizonS bounds the observed timeline in simulated seconds: policy
	// ticks fire strictly below it and phase transitions are recorded up
	// to it. Required with a policy; optional for explicit timelines.
	HorizonS float64 `json:"horizon_s,omitempty"`
	// TickS is the re-planning period in seconds (required with a
	// policy).
	TickS float64 `json:"tick_s,omitempty"`
	// Policy re-plans the cluster every tick: "energy-aware" (priced
	// with the deterministic heuristic cost model) or
	// "first-fit-decreasing". Empty runs the explicit Moves instead.
	Policy string `json:"policy,omitempty"`
	// CPUCap, MaxMoves and PaybackS bound each planning round (see
	// consolidation.Config; PaybackS is its amortisation horizon).
	CPUCap   float64 `json:"cpu_cap,omitempty"`
	MaxMoves int     `json:"max_moves,omitempty"`
	PaybackS float64 `json:"payback_s,omitempty"`
	// Hosts is the cluster population.
	Hosts []ClusterHostSpec `json:"hosts,omitempty"`
	// Fleet replicates named host-group templates into a large
	// population: each group's template is stamped Count times with
	// deterministic name suffixes (and, optionally, seed-jittered phase
	// offsets), and the replicas are appended after the explicit Hosts,
	// group by group. A 1,024-host scenario stays a ~40-line file.
	Fleet []FleetGroupSpec `json:"fleet,omitempty"`
	// Moves is the explicit migration timeline (mutually exclusive with
	// Policy). Moves sharing an instant start concurrently and contend
	// on shared links.
	Moves []TimedMoveSpec `json:"moves,omitempty"`
	// Failures injects timed failure events — host crashes, in-flight
	// aborts, switch outage windows — into the timeline (see
	// cluster.FailureEvent for the semantics).
	Failures []FailureSpec `json:"failures,omitempty"`
	// EvacuationDeadlineS scores the crash-recovery SLO: every VM
	// orphaned by a host crash must land on a live host within this
	// many simulated seconds of the crash. Zero means "eventually".
	EvacuationDeadlineS float64 `json:"evacuation_deadline_s,omitempty"`
}

// FailureSpec is one injected failure of a cluster timeline.
type FailureSpec struct {
	// AtS is the injection instant in simulated seconds.
	AtS float64 `json:"at_s"`
	// Kind selects the event: "host-crash", "flight-abort",
	// "switch-outage" or "switch-restore".
	Kind string `json:"kind"`
	// Host names the crashing host (host-crash only).
	Host string `json:"host,omitempty"`
	// VM names the in-flight transfer to kill (flight-abort only).
	VM string `json:"vm,omitempty"`
	// Switch names the link domain (switch-outage / switch-restore
	// only), e.g. "Cisco Catalyst 3750".
	Switch string `json:"switch,omitempty"`
}

// MaxFleetReplicas bounds one fleet group's Count: a typoed count must
// not quietly ask for a million-host timeline. Sized for 100k-host
// fleet scenarios (the engine's struct-of-arrays planner handles them
// in seconds); MaxFleetHosts bounds the expanded total.
const MaxFleetReplicas = 131072

// MaxFleetHosts bounds the expanded cluster population — explicit
// hosts plus every fleet replica across all groups. Group counts are
// individually capped, but many groups must not compound into a
// timeline no machine can hold.
const MaxFleetHosts = 131072

// FleetGroupSpec is one host-group template of a cluster fleet. Every
// replica i (0-based) gets host name "<name>-NNNN" and VM names
// "<vm>-NNNN" (4-digit zero-padded index), so expansion is
// deterministic and replicas are addressable from explicit moves.
type FleetGroupSpec struct {
	// Name prefixes the replica host names. Same charset as scenario
	// names.
	Name string `json:"name"`
	// Count is how many replicas to stamp (1 to MaxFleetReplicas).
	Count int `json:"count"`
	// Machine names the hw catalog model every replica is an instance
	// of.
	Machine string `json:"machine"`
	// PhaseJitterS, when positive, desynchronises the replicas: each
	// replica's VM phase timelines start after a deterministic lead-in
	// of [0, PhaseJitterS) whole seconds — a steady phase at the
	// timeline's entry intensity — derived from the scenario's effective
	// seed, the group name and the replica index. Without it every
	// replica of a diurnal group would shift phase at the same instant.
	// Requires template VMs with phases; must be 0 or a whole number of
	// seconds >= 1.
	PhaseJitterS float64 `json:"phase_jitter_s,omitempty"`
	// VMs are the template guests stamped onto every replica.
	VMs []ClusterVMSpec `json:"vms,omitempty"`
}

// ClusterHostSpec is one host of a cluster scenario.
type ClusterHostSpec struct {
	Name string `json:"name"`
	// Machine names the hw catalog model the host is an instance of; it
	// supplies capacity, idle power and the switch (the link-contention
	// domain).
	Machine string `json:"machine"`
	// VMs are the initially resident guests.
	VMs []ClusterVMSpec `json:"vms,omitempty"`
}

// ClusterVMSpec is one guest of a cluster scenario.
type ClusterVMSpec struct {
	Name string `json:"name"`
	// MemGiB is the VM memory size in GiB.
	MemGiB float64 `json:"mem_gib"`
	// BusyVCPUs is the baseline CPU demand in busy-vCPU units.
	BusyVCPUs float64 `json:"busy_vcpus,omitempty"`
	// DirtyRatio is the baseline memory dirtying ratio.
	DirtyRatio float64 `json:"dirty_ratio,omitempty"`
	// Phases optionally modulates the baseline over cluster time (same
	// shapes as migration-scenario phases; the "at" sampling field is
	// meaningless here and rejected).
	Phases []PhaseSpec `json:"phases,omitempty"`
}

// TimedMoveSpec is one explicit migration of a cluster timeline.
type TimedMoveSpec struct {
	VM   string `json:"vm"`
	From string `json:"from"`
	To   string `json:"to"`
	// AtS is the dispatch instant in seconds.
	AtS float64 `json:"at_s,omitempty"`
}

// EffectiveSeed returns the seed the scenario runs under: the explicit
// Seed when set, otherwise a stable FNV-1a hash of the name (masked to a
// positive value so seed arithmetic downstream never wraps surprisingly).
// Deriving from the name keeps the compiled sim.Scenario values — the
// run-cache keys — identical across sessions and machines.
func (s *Spec) EffectiveSeed() int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	h := fnv.New64a()
	h.Write([]byte(s.Name))
	seed := int64(h.Sum64() & (1<<62 - 1))
	if seed == 0 {
		seed = 1
	}
	return seed
}

// kind parses the spec's migration mechanism.
func (s *Spec) kind() (migration.Kind, error) {
	return migration.ParseKind(s.Kind)
}

// pair returns the effective machine pair name.
func (s *Spec) pair() string {
	if s.Pair == "" {
		return hw.PairM
	}
	return s.Pair
}

// validName reports whether a scenario name is usable in labels, file
// names and cache keys.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks the spec exhaustively and returns the first failure as
// a pathed *Error. A valid spec is guaranteed to Compile.
func (s *Spec) Validate() error {
	name := s.Name
	if s.Version != CurrentVersion {
		return errf(name, "version", "unsupported version %d (this build reads version %d)", s.Version, CurrentVersion)
	}
	if !validName(s.Name) {
		return errf(name, "name", "must be non-empty lowercase [a-z0-9._-], got %q", s.Name)
	}
	src, dst, err := hw.Pair(s.pair())
	if err != nil {
		return errf(name, "pair", "%v", err)
	}
	// netsim will refuse a cross-switch link at run time; catch it here so
	// the -check gate cannot green-light a scenario that can never run.
	if src.Switch != dst.Switch {
		return errf(name, "pair", "%s (%s) and %s (%s) are on different switches and cannot migrate", src.Name, src.Switch, dst.Name, dst.Switch)
	}
	kind, err := s.kind()
	if err != nil {
		return errf(name, "kind", "%v", err)
	}
	if s.Seed < 0 {
		return errf(name, "seed", "must be non-negative, got %d", s.Seed)
	}
	if s.Datacenter != nil && s.Cluster != nil {
		return errf(name, "cluster", "mutually exclusive with \"datacenter\"; pick one form")
	}
	if s.Datacenter != nil {
		return s.validateDatacenter(kind)
	}
	if s.Cluster != nil {
		return s.validateCluster(kind)
	}
	return s.validateMigrationRun(name)
}

// validateMigrationRun checks the single-migration form of the spec.
func (s *Spec) validateMigrationRun(name string) error {
	if s.Migrating.Workload.Profile == "" {
		return errf(name, "migrating.workload.profile", "required (or set \"datacenter\" for a data-centre scenario)")
	}
	if err := s.Migrating.Workload.validate(name, "migrating.workload"); err != nil {
		return err
	}
	if s.Migrating.Type != "" {
		if _, err := vm.Lookup(s.Migrating.Type); err != nil {
			return errf(name, "migrating.type", "%v", err)
		}
	}
	if s.SourceLoadVMs < 0 {
		return errf(name, "source_load_vms", "must be non-negative, got %d", s.SourceLoadVMs)
	}
	if s.TargetLoadVMs < 0 {
		return errf(name, "target_load_vms", "must be non-negative, got %d", s.TargetLoadVMs)
	}
	if s.LoadWorkload != nil {
		if err := s.LoadWorkload.validate(name, "load_workload"); err != nil {
			return err
		}
	}
	labels := make(map[string]int, len(s.Phases))
	for i, p := range s.Phases {
		if err := p.validate(name, fmt.Sprintf("phases[%d]", i), true); err != nil {
			return err
		}
		// Phase labels become run labels and scenario names; collisions
		// would make two blocks indistinguishable in every report.
		if prev, dup := labels[p.label(i)]; dup {
			return errf(name, fmt.Sprintf("phases[%d].name", i), "label %q collides with phase %d", p.label(i), prev)
		}
		labels[p.label(i)] = i
	}
	if s.Timing != nil {
		if s.Timing.PreS < 0 {
			return errf(name, "timing.pre_s", "must be non-negative, got %v", s.Timing.PreS)
		}
		if s.Timing.PostS < 0 {
			return errf(name, "timing.post_s", "must be non-negative, got %v", s.Timing.PostS)
		}
	}
	if m := s.Migration; m != nil {
		switch {
		case m.InitiationS < 0:
			return errf(name, "migration.initiation_s", "must be non-negative, got %v", m.InitiationS)
		case m.ActivationS < 0:
			return errf(name, "migration.activation_s", "must be non-negative, got %v", m.ActivationS)
		case m.MaxRounds < 0:
			return errf(name, "migration.max_rounds", "must be non-negative, got %d", m.MaxRounds)
		case m.StopThresholdPages < 0:
			return errf(name, "migration.stop_threshold_pages", "must be non-negative, got %d", m.StopThresholdPages)
		case m.MaxDataFactor < 0:
			return errf(name, "migration.max_data_factor", "must be non-negative, got %v", m.MaxDataFactor)
		}
	}
	if s.Meter != nil {
		if err := s.Meter.config().Validate(); err != nil {
			return errf(name, "meter", "%v", err)
		}
	}
	// The pre-migration window must cover the paper's stabilisation rule:
	// 20 consecutive samples at the effective meter cadence.
	pre := DefaultPreMigration
	if s.Timing != nil && s.Timing.PreS > 0 {
		pre = time.Duration(s.Timing.PreS * float64(time.Second))
	}
	period := meter.DefaultPeriod
	if s.Meter != nil && s.Meter.PeriodMS > 0 {
		period = time.Duration(s.Meter.PeriodMS) * time.Millisecond
	}
	if need := time.Duration(meter.StabilisationWindow) * period; pre < need {
		return errf(name, "timing.pre_s", "pre-migration window %v cannot cover the stabilisation rule (%d samples at %v = %v)", pre, meter.StabilisationWindow, period, need)
	}
	if r := s.Repeat; r != nil {
		if r.MinRuns == 1 || r.MinRuns < 0 {
			return errf(name, "repeat.min_runs", "need at least 2 runs for the variance rule, got %d", r.MinRuns)
		}
		if r.VarianceTol < 0 {
			return errf(name, "repeat.variance_tol", "must be non-negative, got %v", r.VarianceTol)
		}
	}
	// Belt and braces: the compiled base scenario must satisfy the
	// simulator's own validation too.
	base, err := s.baseScenario()
	if err != nil {
		return err
	}
	if err := base.Validate(); err != nil {
		return errf(name, "(compiled)", "%v", err)
	}
	return nil
}

// validateDatacenter checks the data-centre form of the spec.
func (s *Spec) validateDatacenter(kind migration.Kind) error {
	name := s.Name
	if s.Migrating.Workload.Profile != "" || s.Migrating.Type != "" {
		return errf(name, "migrating", "unused in data-centre scenarios (the plan's moves select the workloads)")
	}
	if len(s.Phases) > 0 {
		return errf(name, "phases", "unused in data-centre scenarios")
	}
	if s.SourceLoadVMs != 0 || s.TargetLoadVMs != 0 {
		return errf(name, "source_load_vms/target_load_vms", "unused in data-centre scenarios (host load comes from the hosts' resident VMs)")
	}
	if s.LoadWorkload != nil {
		return errf(name, "load_workload", "unused in data-centre scenarios")
	}
	if kind == migration.PostCopy {
		return errf(name, "kind", "post-copy is not supported for data-centre plans")
	}
	dc := s.Datacenter
	if len(dc.Hosts) < 2 {
		return errf(name, "datacenter.hosts", "need at least 2 hosts, got %d", len(dc.Hosts))
	}
	hosts, err := s.hostStates()
	if err != nil {
		return err
	}
	// Replay the explicit moves against the evolving placement so a move
	// referencing a VM after it has left its host fails here, not at run
	// time.
	placement := make(map[string]string) // VM -> current host
	hostSet := make(map[string]bool, len(hosts))
	for hi, h := range hosts {
		if err := h.Validate(); err != nil {
			return errf(name, fmt.Sprintf("datacenter.hosts[%d]", hi), "%v", err)
		}
		if hostSet[h.Name] {
			return errf(name, fmt.Sprintf("datacenter.hosts[%d].name", hi), "duplicate host %q", h.Name)
		}
		hostSet[h.Name] = true
		for _, v := range h.VMs {
			if prev, dup := placement[v.Name]; dup {
				return errf(name, fmt.Sprintf("datacenter.hosts[%d].vms", hi), "VM %q already on host %q", v.Name, prev)
			}
			placement[v.Name] = h.Name
		}
	}
	for mi, mv := range dc.Moves {
		path := fmt.Sprintf("datacenter.moves[%d]", mi)
		switch {
		case mv.VM == "":
			return errf(name, path+".vm", "required")
		case !hostSet[mv.From]:
			return errf(name, path+".from", "unknown host %q", mv.From)
		case !hostSet[mv.To]:
			return errf(name, path+".to", "unknown host %q", mv.To)
		case mv.From == mv.To:
			return errf(name, path+".to", "move must change hosts, both are %q", mv.To)
		}
		at, ok := placement[mv.VM]
		if !ok {
			return errf(name, path+".vm", "unknown VM %q", mv.VM)
		}
		if at != mv.From {
			return errf(name, path+".from", "VM %q is on host %q at this point in the plan, not %q", mv.VM, at, mv.From)
		}
		placement[mv.VM] = mv.To
	}
	if r := s.Repeat; r != nil {
		return errf(name, "repeat", "unused in data-centre scenarios (each move runs once)")
	}
	if s.Meter != nil || s.Migration != nil || s.Timing != nil {
		// The dcsim executor derives per-move scenarios itself; overrides
		// that would silently not apply are rejected.
		return errf(name, "meter/migration/timing", "unused in data-centre scenarios")
	}
	return nil
}

// Cluster policy names.
const (
	PolicyEnergyAware = "energy-aware"
	PolicyFirstFit    = "first-fit-decreasing"
)

// validateCluster checks the cluster form of the spec.
func (s *Spec) validateCluster(kind migration.Kind) error {
	name := s.Name
	if s.Pair != "" {
		return errf(name, "pair", "unused in cluster scenarios (host machine models define the topology)")
	}
	if s.Migrating.Workload.Profile != "" || s.Migrating.Type != "" {
		return errf(name, "migrating", "unused in cluster scenarios (the timeline's moves select the workloads)")
	}
	if len(s.Phases) > 0 {
		return errf(name, "phases", "unused in cluster scenarios (phase timelines live on the cluster's VMs)")
	}
	if s.SourceLoadVMs != 0 || s.TargetLoadVMs != 0 {
		return errf(name, "source_load_vms/target_load_vms", "unused in cluster scenarios (host load comes from the resident VMs)")
	}
	if s.LoadWorkload != nil {
		return errf(name, "load_workload", "unused in cluster scenarios")
	}
	if s.Repeat != nil {
		return errf(name, "repeat", "unused in cluster scenarios (each migration runs once)")
	}
	if s.Meter != nil || s.Migration != nil || s.Timing != nil {
		return errf(name, "meter/migration/timing", "unused in cluster scenarios")
	}
	if kind == migration.PostCopy {
		return errf(name, "kind", "post-copy is not supported for cluster timelines")
	}
	c := s.Cluster
	if err := s.validateFleetGroups(); err != nil {
		return err
	}
	if c.hostCount() == 0 {
		return errf(name, "cluster.hosts", "required (directly or via \"fleet\" groups)")
	}
	switch c.Policy {
	case "", PolicyEnergyAware, PolicyFirstFit:
	default:
		return errf(name, "cluster.policy", "unknown policy %q (want %q or %q)", c.Policy, PolicyEnergyAware, PolicyFirstFit)
	}
	if c.HorizonS < 0 {
		return errf(name, "cluster.horizon_s", "must be non-negative, got %v", c.HorizonS)
	}
	if c.Policy == "" {
		switch {
		case len(c.Moves) == 0:
			return errf(name, "cluster.moves", "required without a policy (an empty timeline measures nothing)")
		case c.TickS != 0:
			return errf(name, "cluster.tick_s", "needs a policy to tick")
		case c.CPUCap != 0 || c.MaxMoves != 0 || c.PaybackS != 0:
			return errf(name, "cluster.cpu_cap/max_moves/payback_s", "bound planning rounds and need a policy")
		}
	} else {
		switch {
		case len(c.Moves) > 0:
			return errf(name, "cluster.moves", "mutually exclusive with a policy")
		case c.TickS <= 0:
			return errf(name, "cluster.tick_s", "must be positive with a policy, got %v", c.TickS)
		case c.HorizonS <= 0:
			return errf(name, "cluster.horizon_s", "must be positive with a policy, got %v", c.HorizonS)
		case c.hostCount() < 2:
			return errf(name, "cluster.hosts", "planning needs at least 2 hosts, got %d", c.hostCount())
		case c.CPUCap < 0 || c.CPUCap > 1:
			return errf(name, "cluster.cpu_cap", "%v outside [0, 1]", c.CPUCap)
		case c.MaxMoves < 0:
			return errf(name, "cluster.max_moves", "must be non-negative, got %d", c.MaxMoves)
		case c.PaybackS < 0:
			return errf(name, "cluster.payback_s", "must be non-negative, got %v", c.PaybackS)
		}
	}
	cat := hw.Catalog()
	hosts, hostPaths := s.expandedClusterHosts()
	hostSet := make(map[string]bool, len(hosts))
	vmSet := make(map[string]bool)
	for hi, h := range hosts {
		path := hostPaths[hi]
		if h.Name == "" {
			return errf(name, path+".name", "required")
		}
		if hostSet[h.Name] {
			return errf(name, path+".name", "duplicate host %q", h.Name)
		}
		hostSet[h.Name] = true
		if _, ok := cat[h.Machine]; !ok {
			models := make([]string, 0, len(cat))
			for m := range cat {
				models = append(models, m)
			}
			sort.Strings(models)
			return errf(name, path+".machine", "unknown machine model %q (catalog: %s)", h.Machine, strings.Join(models, ", "))
		}
		for vi, v := range h.VMs {
			vpath := fmt.Sprintf("%s.vms[%d]", path, vi)
			switch {
			case v.Name == "":
				return errf(name, vpath+".name", "required")
			case vmSet[v.Name]:
				return errf(name, vpath+".name", "VM %q already exists in the cluster", v.Name)
			case v.MemGiB <= 0:
				return errf(name, vpath+".mem_gib", "must be positive, got %v", v.MemGiB)
			case v.BusyVCPUs < 0:
				return errf(name, vpath+".busy_vcpus", "must be non-negative, got %v", v.BusyVCPUs)
			case v.DirtyRatio < 0 || v.DirtyRatio > 1:
				return errf(name, vpath+".dirty_ratio", "%v outside [0, 1]", v.DirtyRatio)
			}
			vmSet[v.Name] = true
			for pi, p := range v.Phases {
				if err := p.validate(name, fmt.Sprintf("%s.phases[%d]", vpath, pi), false); err != nil {
					return err
				}
			}
		}
	}
	for mi, m := range c.Moves {
		path := fmt.Sprintf("cluster.moves[%d]", mi)
		switch {
		case m.VM == "":
			return errf(name, path+".vm", "required")
		case !vmSet[m.VM]:
			return errf(name, path+".vm", "unknown VM %q", m.VM)
		case !hostSet[m.From]:
			return errf(name, path+".from", "unknown host %q", m.From)
		case !hostSet[m.To]:
			return errf(name, path+".to", "unknown host %q", m.To)
		case m.From == m.To:
			return errf(name, path+".to", "move must change hosts, both are %q", m.To)
		case m.AtS < 0:
			return errf(name, path+".at_s", "must be non-negative, got %v", m.AtS)
		}
	}
	for fi, f := range c.Failures {
		path := fmt.Sprintf("cluster.failures[%d]", fi)
		if f.AtS < 0 {
			return errf(name, path+".at_s", "must be non-negative, got %v", f.AtS)
		}
		switch cluster.FailureKind(f.Kind) {
		case cluster.FailHostCrash:
			switch {
			case f.Host == "":
				return errf(name, path+".host", "required for kind %q", f.Kind)
			case f.VM != "" || f.Switch != "":
				return errf(name, path, "%q targets a host only", f.Kind)
			case !hostSet[f.Host]:
				return errf(name, path+".host", "unknown host %q", f.Host)
			}
		case cluster.FailFlightAbort:
			switch {
			case f.VM == "":
				return errf(name, path+".vm", "required for kind %q", f.Kind)
			case f.Host != "" || f.Switch != "":
				return errf(name, path, "%q targets a VM only", f.Kind)
			case !vmSet[f.VM]:
				return errf(name, path+".vm", "unknown VM %q", f.VM)
			}
		case cluster.FailSwitchOutage, cluster.FailSwitchRestore:
			switch {
			case f.Switch == "":
				return errf(name, path+".switch", "required for kind %q", f.Kind)
			case f.Host != "" || f.VM != "":
				return errf(name, path, "%q targets a switch only", f.Kind)
			}
			// Switch-domain existence (and window pairing) is checked by
			// the compiled config below.
		default:
			return errf(name, path+".kind", "unknown failure kind %q", f.Kind)
		}
	}
	if c.EvacuationDeadlineS < 0 {
		return errf(name, "cluster.evacuation_deadline_s", "must be non-negative, got %v", c.EvacuationDeadlineS)
	}
	if c.EvacuationDeadlineS > 0 && len(c.Failures) == 0 {
		return errf(name, "cluster.evacuation_deadline_s", "needs failures to score against")
	}
	// Belt and braces: the lowered cluster config must satisfy the
	// engine's own validation too (switch topology, move targets, …).
	cfg, err := s.clusterConfig()
	if err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return errf(name, "(compiled)", "%v", err)
	}
	return nil
}
