//go:build race

package scenario

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
