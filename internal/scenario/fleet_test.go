package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// fleetSpec builds a minimal valid fleet-template cluster spec.
func fleetSpec() *Spec {
	return &Spec{
		Version: CurrentVersion,
		Name:    "fleet-under-test",
		Kind:    "live",
		Cluster: &ClusterSpec{
			HorizonS: 3600,
			TickS:    900,
			Policy:   PolicyEnergyAware,
			Fleet: []FleetGroupSpec{
				{Name: "web", Count: 6, Machine: "m01", PhaseJitterS: 600,
					VMs: []ClusterVMSpec{{Name: "fe", MemGiB: 4, BusyVCPUs: 4, DirtyRatio: 0.1,
						Phases: []PhaseSpec{{Kind: "diurnal", DurationS: 3600, Level: 0.3, Peak: 1}}}}},
				{Name: "idle", Count: 4, Machine: "m02",
					VMs: []ClusterVMSpec{{Name: "low", MemGiB: 4, BusyVCPUs: 1, DirtyRatio: 0.05}}},
			},
		},
	}
}

func TestFleetExpansion(t *testing.T) {
	s := fleetSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid fleet spec rejected: %v", err)
	}
	hosts, paths := s.expandedClusterHosts()
	if len(hosts) != 10 || s.Cluster.hostCount() != 10 {
		t.Fatalf("expanded to %d hosts (hostCount %d), want 10", len(hosts), s.Cluster.hostCount())
	}
	if hosts[0].Name != "web-0000" || hosts[5].Name != "web-0005" || hosts[6].Name != "idle-0000" {
		t.Errorf("replica names drifted: %s, %s, %s", hosts[0].Name, hosts[5].Name, hosts[6].Name)
	}
	if hosts[0].VMs[0].Name != "fe-0000" || hosts[9].VMs[0].Name != "low-0003" {
		t.Errorf("VM names drifted: %s, %s", hosts[0].VMs[0].Name, hosts[9].VMs[0].Name)
	}
	if !strings.HasPrefix(paths[0], "cluster.fleet[0].replica[0]") {
		t.Errorf("replica path label = %q", paths[0])
	}
	// Jittered groups prepend a whole-second steady lead-in below the cap,
	// holding the diurnal timeline's entry intensity.
	jittered := 0
	seenLead := map[float64]bool{}
	for _, h := range hosts[:6] {
		ph := h.VMs[0].Phases
		switch len(ph) {
		case 1: // zero jitter drawn — no lead-in
		case 2:
			lead := ph[0]
			if lead.Kind != "steady" || lead.Name != "lead-in" {
				t.Fatalf("lead-in shape drifted: %+v", lead)
			}
			if lead.DurationS <= 0 || lead.DurationS >= 600 || lead.DurationS != float64(int64(lead.DurationS)) {
				t.Errorf("lead-in duration %v outside (0, 600) whole seconds", lead.DurationS)
			}
			if lead.Level != ph[1].phase().Factor(0) {
				t.Errorf("lead-in level %v does not hold the entry factor %v", lead.Level, ph[1].phase().Factor(0))
			}
			jittered++
			seenLead[lead.DurationS] = true
		default:
			t.Fatalf("replica %s has %d phases", h.Name, len(ph))
		}
	}
	if jittered < 4 || len(seenLead) < 3 {
		t.Errorf("jitter is not spreading: %d jittered replicas, %d distinct lead-ins", jittered, len(seenLead))
	}
	// Unjittered group: template phases unchanged (none here — no phases).
	if len(hosts[6].VMs[0].Phases) != 0 {
		t.Errorf("unphased template grew phases: %+v", hosts[6].VMs[0].Phases)
	}

	// Deterministic: expansion is a pure function of the spec.
	again, _ := fleetSpec().expandedClusterHosts()
	if !reflect.DeepEqual(hosts, again) {
		t.Error("two expansions of one spec differ")
	}

	// Seed-dependent: a different seed moves the lead-ins but not the
	// names.
	reseeded := fleetSpec()
	reseeded.Seed = 99991
	rh, _ := reseeded.expandedClusterHosts()
	if rh[0].Name != hosts[0].Name {
		t.Error("seed changed replica names")
	}
	moved := false
	for i := range rh[:6] {
		a, b := hosts[i].VMs[0].Phases, rh[i].VMs[0].Phases
		if len(a) != len(b) || (len(a) == 2 && a[0].DurationS != b[0].DurationS) {
			moved = true
		}
	}
	if !moved {
		t.Error("reseeding did not move any lead-in")
	}

	// The expanded spec compiles into a runnable cluster config.
	comp, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Cluster.Config.Hosts) != 10 {
		t.Errorf("compiled config has %d hosts, want 10", len(comp.Cluster.Config.Hosts))
	}
}

// TestFleetMovesAddressReplicas: explicit timed moves can reference
// stamped replica hosts and VMs.
func TestFleetMovesAddressReplicas(t *testing.T) {
	s := fleetSpec()
	s.Cluster.Policy = ""
	s.Cluster.TickS = 0
	s.Cluster.Moves = []TimedMoveSpec{
		{VM: "low-0001", From: "idle-0001", To: "idle-0000", AtS: 5},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("move addressing a replica rejected: %v", err)
	}
	s.Cluster.Moves[0].VM = "low-9999"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unknown VM") {
		t.Fatalf("move to a non-existent replica: err = %v", err)
	}
}

func TestFleetValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"bad group name", func(s *Spec) { s.Cluster.Fleet[0].Name = "Web!" }, "cluster.fleet[0].name"},
		{"dup group name", func(s *Spec) { s.Cluster.Fleet[1].Name = "web" }, "cluster.fleet[1].name"},
		{"zero count", func(s *Spec) { s.Cluster.Fleet[0].Count = 0 }, "cluster.fleet[0].count"},
		{"count over cap", func(s *Spec) { s.Cluster.Fleet[0].Count = MaxFleetReplicas + 1 }, "cluster.fleet[0].count"},
		{"unknown machine", func(s *Spec) { s.Cluster.Fleet[0].Machine = "z9" }, "cluster.fleet[0].machine"},
		{"negative jitter", func(s *Spec) { s.Cluster.Fleet[0].PhaseJitterS = -1 }, "phase_jitter_s"},
		{"sub-second jitter", func(s *Spec) { s.Cluster.Fleet[0].PhaseJitterS = 0.5 }, "phase_jitter_s"},
		{"fractional jitter", func(s *Spec) { s.Cluster.Fleet[0].PhaseJitterS = 600.9 }, "whole number of seconds"},
		{"jitter without phases", func(s *Spec) { s.Cluster.Fleet[1].PhaseJitterS = 60 }, "no template VM has phases"},
		{"replica collides with explicit host", func(s *Spec) {
			s.Cluster.Hosts = []ClusterHostSpec{{Name: "web-0002", Machine: "m01",
				VMs: []ClusterVMSpec{{Name: "x", MemGiB: 4, BusyVCPUs: 1}}}}
		}, "duplicate host"},
		{"replica VM collides across groups", func(s *Spec) { s.Cluster.Fleet[1].VMs[0].Name = "fe" }, "already exists"},
		{"bad template VM", func(s *Spec) { s.Cluster.Fleet[0].VMs[0].MemGiB = 0 }, "mem_gib"},
	}
	for _, tc := range cases {
		s := fleetSpec()
		tc.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestFleetJitterStability pins the jitter derivation: committed fleet
// scenarios bake these offsets into their golden timelines, so the
// function must never drift.
func TestFleetJitterStability(t *testing.T) {
	// Distribution sanity on a committed-scenario-sized draw.
	seen := map[int64]bool{}
	for i := 0; i < 96; i++ {
		j := fleetJitter(12345, "web", i, 14400)
		if j < 0 || j >= 14400 {
			t.Fatalf("jitter %d outside [0, 14400)", j)
		}
		seen[j] = true
	}
	if len(seen) < 80 {
		t.Errorf("only %d distinct jitters across 96 replicas", len(seen))
	}
	// Anchor a few values: a change here silently rewrites every
	// committed fleet scenario's timeline.
	anchors := []struct {
		group string
		i     int
		want  int64
	}{
		{"web", 0, 10516},
		{"web", 1, 4451},
		{"web", 95, 4527},
		{"db", 0, 2275},
		{"db", 95, 3163},
	}
	for _, a := range anchors {
		if got := fleetJitter(12345, a.group, a.i, 14400); got != a.want {
			t.Errorf("fleetJitter(12345, %q, %d, 14400) = %d, want %d", a.group, a.i, got, a.want)
		}
	}
}
