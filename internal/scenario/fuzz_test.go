package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSpecDecode hammers the strict decoder with arbitrary bytes. The
// contract under test is Parse's: every input either yields a validated
// spec or a *Error carrying a field path — never a panic, never a bare
// error a client could not route to the offending field. Seeds are the
// committed scenario library (the valid corpus) plus crafted
// near-misses for each rejection class.
func FuzzSpecDecode(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(files) == 0 {
		f.Fatalf("seeding from scenarios/: %v (%d files)", err, len(files))
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, near := range []string{
		``,                                 // empty input
		`{`,                                // truncated JSON
		`null`,                             // decodes to the zero Spec
		`[]`,                               // wrong top-level type
		`{"name":"x","no_such_field":1}`,   // unknown field
		`{"name":"x"} trailing`,            // trailing garbage
		`{"version":999,"name":"x"}`,       // future version
		`{"name":"x","seed":-1}`,           // invalid value
		`{"name":"x","phases":[{"at":2}]}`, // nested path error
		"{\"name\":\"\xff\xfe\"}",          // invalid UTF-8 in a string
	} {
		f.Add([]byte(near))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse("fuzz", data)
		if err == nil {
			if s == nil {
				t.Fatal("nil spec with nil error")
			}
			return
		}
		var serr *Error
		if !errors.As(err, &serr) {
			t.Fatalf("error is not a *scenario.Error: %T: %v", err, err)
		}
		if serr.Path == "" {
			t.Fatalf("error without a field path: %v", err)
		}
	})
}
