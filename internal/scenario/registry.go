package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Load reads, strictly decodes and validates one scenario file. Unknown
// JSON fields are errors — a typoed field in a committed scenario must
// fail loudly, not silently select a default. JSON syntax errors carry
// the byte offset; all failures are *Error values with a field path.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &Error{Scenario: path, Path: "(file)", Msg: err.Error()}
	}
	return Parse(path, data)
}

// Parse strictly decodes and validates one scenario from raw bytes —
// the decode path Load shares with callers that hold scenario JSON but
// no file (the wavm3d request body, the fuzz target). The name labels
// errors; it is usually a path but any request identifier works. Every
// failure, for any input, is a *Error value with a field path — Parse
// never panics on malformed bytes.
func Parse(name string, data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		// Syntax errors carry their own offset; for everything else
		// (truncated files, type mismatches, unknown fields) the decoder's
		// input offset localises the failure.
		offset := dec.InputOffset()
		if syn, ok := err.(*json.SyntaxError); ok {
			offset = syn.Offset
		}
		return nil, &Error{Scenario: name, Path: "(json)",
			Msg: fmt.Sprintf("malformed JSON near byte %d: %v", offset, err)}
	}
	// Reject trailing garbage after the top-level value.
	if dec.More() {
		return nil, &Error{Scenario: name, Path: "(json)", Msg: "trailing data after the scenario object"}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadDir loads every *.json file in dir in name order and cross-checks
// the set: scenario names and effective seeds must be unique, so library
// entries stay independent samples with distinct run-cache identities.
func LoadDir(dir string) ([]*Spec, error) {
	return LoadGlob(filepath.Join(dir, "*.json"))
}

// LoadGlob is LoadDir for an arbitrary glob pattern.
func LoadGlob(pattern string) ([]*Spec, error) {
	specs, _, err := loadFiles(pattern)
	return specs, err
}

// loadFiles resolves a glob, loads every match in name order and
// cross-checks uniqueness, returning the specs alongside the file each
// one came from (same index).
func loadFiles(pattern string) ([]*Spec, []string, error) {
	files, err := filepath.Glob(pattern)
	if err != nil {
		return nil, nil, &Error{Scenario: pattern, Path: "(glob)", Msg: err.Error()}
	}
	if len(files) == 0 {
		return nil, nil, &Error{Scenario: pattern, Path: "(glob)", Msg: "no scenario files match"}
	}
	sort.Strings(files)
	specs := make([]*Spec, 0, len(files))
	for _, f := range files {
		s, err := Load(f)
		if err != nil {
			return nil, nil, err
		}
		specs = append(specs, s)
	}
	if err := CheckUnique(specs); err != nil {
		return nil, nil, err
	}
	return specs, files, nil
}

// CheckUnique enforces the library invariant on an arbitrary spec set:
// scenario names and effective seeds must be unique, so entries stay
// independent samples with distinct run-cache identities. Runners that
// combine sources (a directory plus explicit files) apply it to the
// combined set.
func CheckUnique(specs []*Spec) error {
	byName := make(map[string]bool, len(specs))
	bySeed := make(map[int64]string, len(specs)) // effective seed -> name
	for _, s := range specs {
		if byName[s.Name] {
			return errf(s.Name, "name", "duplicate scenario name in the loaded set")
		}
		byName[s.Name] = true
		seed := s.EffectiveSeed()
		if prev, dup := bySeed[seed]; dup {
			return errf(s.Name, "seed", "effective seed %d collides with scenario %q; scenarios must be independent samples — pick a distinct name or an explicit seed", seed, prev)
		}
		bySeed[seed] = s.Name
	}
	return nil
}

// Info is one registry listing entry.
type Info struct {
	// Name and Description come from the spec.
	Name, Description string
	// File is the path the spec was loaded from.
	File string
	// Datacenter reports the data-centre plan form.
	Datacenter bool
	// Cluster is the host count of an N-host cluster timeline (0 for
	// the other forms).
	Cluster int
	// Phases is the phase count (0 for single-block scenarios).
	Phases int
}

// List loads a scenario directory and returns its catalog in name order.
func List(dir string) ([]Info, error) {
	specs, files, err := loadFiles(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	out := make([]Info, 0, len(specs))
	for i, s := range specs {
		in := Info{
			Name:        s.Name,
			Description: s.Description,
			File:        files[i],
			Datacenter:  s.Datacenter != nil,
			Phases:      len(s.Phases),
		}
		if s.Cluster != nil {
			in.Cluster = s.Cluster.hostCount()
		}
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
