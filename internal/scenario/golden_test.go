package scenario

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current library results")

// libraryDir locates the committed scenario library relative to this
// package.
const libraryDir = "../../scenarios"

// goldenBlock is the pinned outcome of one compiled migration block: the
// same BlockSummary wavm3scen prints, so the golden file pins exactly
// what the runner reports. Values are exact float64s — the simulator is
// deterministic, so equality is bitwise.
type goldenBlock = BlockSummary

// goldenMove is the pinned outcome of one executed plan move.
type goldenMove struct {
	VM        string  `json:"vm"`
	EnergyJ   float64 `json:"energy_j"`
	DurationS float64 `json:"duration_s"`
	Bytes     int64   `json:"bytes"`
}

// goldenClusterMove is the pinned outcome of one cluster-timeline
// migration: placement, timing, contention stretch and adjusted energy.
type goldenClusterMove struct {
	VM      string  `json:"vm"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	Pair    string  `json:"pair"`
	StartS  float64 `json:"start_s"`
	EndS    float64 `json:"end_s"`
	Stretch float64 `json:"stretch"`
	EnergyJ float64 `json:"energy_j"`
	Bytes   int64   `json:"bytes"`
}

// goldenTick pins one policy round: when it fired, how many moves it
// planned, and how many placement entries its snapshot pinned — the
// regression anchor for the Pinned-reconciliation fix.
type goldenTick struct {
	AtS    float64 `json:"at_s"`
	Moves  int     `json:"moves"`
	Pinned int     `json:"pinned"`
}

// goldenAbort pins one failure-killed migration.
type goldenAbort struct {
	VM      string  `json:"vm"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	Phase   string  `json:"phase"`
	Reason  string  `json:"reason"`
	StartS  float64 `json:"start_s"`
	EndS    float64 `json:"end_s"`
	EnergyJ float64 `json:"energy_j"`
}

// goldenCluster pins one cluster timeline: its migrations in dispatch
// order, the end state, and the fleet summary (peak concurrent
// flights, worst contention stretch, re-plan rounds). Policy scenarios
// also pin their tick records; chaos scenarios — the ones whose specs
// declare failures — additionally pin aborts and the SLO scores. All
// the extra fields are omitempty so failure-free entries keep their
// exact historical serialisation.
type goldenCluster struct {
	Timeline              []goldenClusterMove `json:"timeline"`
	TotalJ                float64             `json:"total_j"`
	MakespanS             float64             `json:"makespan_s"`
	Freed                 []string            `json:"freed,omitempty"`
	PeakFlights           int                 `json:"peak_flights,omitempty"`
	MaxStretch            float64             `json:"max_stretch,omitempty"`
	ReplanRounds          int                 `json:"replan_rounds,omitempty"`
	Ticks                 []goldenTick        `json:"ticks,omitempty"`
	Aborted               []goldenAbort       `json:"aborted,omitempty"`
	Orphaned              int                 `json:"orphaned,omitempty"`
	Evacuated             int                 `json:"evacuated,omitempty"`
	EvacuationDeadlineMet *bool               `json:"evacuation_deadline_met,omitempty"`
	FleetEnergyJ          float64             `json:"fleet_energy_j,omitempty"`
}

// Fleet-scale golden thresholds: clusters at or above summaryOnlyHosts
// pin summary aggregates only (per-move records at 8k–100k hosts would
// balloon golden.json without adding regression power beyond what the
// scheduler-equivalence and determinism properties already give); at or
// above raceSkipHosts the scenario is skipped under the race detector,
// whose instrumentation multiplies the wall-clock far past the suite's
// budget.
const (
	summaryOnlyHosts = 4096
	raceSkipHosts    = 32768
)

// goldenFleetSummary pins one fleet-scale cluster timeline by its
// summary aggregates: final energy, makespan, move and freed-host
// counts, peak concurrent flights and re-plan rounds.
type goldenFleetSummary struct {
	TotalJ       float64 `json:"total_j"`
	MakespanS    float64 `json:"makespan_s"`
	Moves        int     `json:"moves"`
	Freed        int     `json:"freed"`
	PeakFlights  int     `json:"peak_flights"`
	ReplanRounds int     `json:"replan_rounds"`
}

// golden pins the whole library: block label -> outcome, scenario name ->
// executed moves, scenario name -> cluster timeline (summary-only for
// fleet-scale clusters).
type golden struct {
	Blocks   map[string]goldenBlock        `json:"blocks"`
	Moves    map[string][]goldenMove       `json:"moves"`
	Clusters map[string]goldenCluster      `json:"clusters,omitempty"`
	Fleets   map[string]goldenFleetSummary `json:"fleets,omitempty"`

	// raceSkipped names the fleet scenarios this run skipped under the
	// race detector; comparison must not flag them as missing.
	raceSkipped map[string]bool
}

// runLibrary executes every committed scenario with a shared cache and
// returns the summarised outcomes.
func runLibrary(t *testing.T) *golden {
	t.Helper()
	specs, err := LoadDir(libraryDir)
	if err != nil {
		t.Fatalf("loading the committed library: %v", err)
	}
	if len(specs) < 10 {
		t.Fatalf("library has %d scenarios, the tentpole demands >= 10", len(specs))
	}
	cache := sim.NewCache(0)
	out := &golden{
		Blocks:      map[string]goldenBlock{},
		Moves:       map[string][]goldenMove{},
		Clusters:    map[string]goldenCluster{},
		Fleets:      map[string]goldenFleetSummary{},
		raceSkipped: map[string]bool{},
	}
	for _, s := range specs {
		c, err := s.Compile()
		if err != nil {
			t.Fatalf("compiling %s: %v", s.Name, err)
		}
		if c.Cluster != nil {
			n := s.Cluster.hostCount()
			if raceEnabled && n >= raceSkipHosts {
				out.raceSkipped[s.Name] = true
				continue
			}
			cfg := c.Cluster.Config
			cfg.Cache = cache
			rep, err := cluster.Run(cfg)
			if err != nil {
				t.Fatalf("running cluster %s: %v", s.Name, err)
			}
			if n >= summaryOnlyHosts {
				out.Fleets[s.Name] = goldenFleetSummary{
					TotalJ:       float64(rep.TotalEnergy),
					MakespanS:    rep.Makespan.Seconds(),
					Moves:        len(rep.Timeline),
					Freed:        len(rep.FreedHosts),
					PeakFlights:  rep.PeakFlights,
					ReplanRounds: rep.ReplanRounds,
				}
				continue
			}
			gc := goldenCluster{
				TotalJ:       float64(rep.TotalEnergy),
				MakespanS:    rep.Makespan.Seconds(),
				Freed:        rep.FreedHosts,
				PeakFlights:  rep.PeakFlights,
				MaxStretch:   rep.MaxStretch,
				ReplanRounds: rep.ReplanRounds,
			}
			for _, mv := range rep.Timeline {
				gc.Timeline = append(gc.Timeline, goldenClusterMove{
					VM: mv.VM, From: mv.From, To: mv.To, Pair: mv.Pair,
					StartS: mv.Start.Seconds(), EndS: mv.End.Seconds(),
					Stretch: mv.Stretch, EnergyJ: float64(mv.Energy),
					Bytes: int64(mv.BytesSent),
				})
			}
			for _, tk := range rep.Ticks {
				gc.Ticks = append(gc.Ticks, goldenTick{
					AtS: tk.At.Seconds(), Moves: tk.Moves, Pinned: tk.Pinned,
				})
			}
			if len(s.Cluster.Failures) > 0 {
				for _, a := range rep.Aborted {
					gc.Aborted = append(gc.Aborted, goldenAbort{
						VM: a.VM, From: a.From, To: a.To,
						Phase: a.Phase, Reason: a.Reason,
						StartS: a.Start.Seconds(), EndS: a.End.Seconds(),
						EnergyJ: float64(a.Energy),
					})
				}
				gc.Orphaned = rep.OrphanedVMs
				gc.Evacuated = rep.EvacuatedVMs
				met := rep.EvacuationDeadlineMet
				gc.EvacuationDeadlineMet = &met
				gc.FleetEnergyJ = float64(rep.FleetEnergy)
			}
			out.Clusters[s.Name] = gc
			continue
		}
		if c.Plan != nil {
			ex := c.Plan.Executor
			ex.Cache = cache
			rep, err := ex.ExecutePlan(c.Plan.Policy, c.Plan.Plan, c.Plan.Hosts)
			if err != nil {
				t.Fatalf("executing %s: %v", s.Name, err)
			}
			for _, mv := range rep.Moves {
				out.Moves[s.Name] = append(out.Moves[s.Name], goldenMove{
					VM:        mv.Move.VM,
					EnergyJ:   float64(mv.MeasuredEnergy),
					DurationS: mv.Duration.Seconds(),
					Bytes:     int64(mv.BytesSent),
				})
			}
			continue
		}
		for _, r := range c.Runs {
			runs, err := cache.RunRepeatedWorkers(r.Scenario, r.MinRuns, r.VarianceTol, 0)
			if err != nil {
				t.Fatalf("running %s: %v", r.Label, err)
			}
			out.Blocks[r.Label] = Summarize(runs)
		}
	}
	return out
}

// TestLibraryGolden pins every committed scenario's measured outcome.
// The simulator is deterministic, so any drift here is a real behaviour
// change: inspect it, and if intended, regenerate with
//
//	go test ./internal/scenario/ -run TestLibraryGolden -update
func TestLibraryGolden(t *testing.T) {
	got := runLibrary(t)
	path := filepath.Join("testdata", "golden.json")

	if *updateGolden {
		if raceEnabled {
			t.Fatal("-update under -race would drop the race-skipped fleet scenarios; regenerate without -race")
		}
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d blocks and %d plans", path, len(got.Blocks), len(got.Moves))
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file (%v); run with -update to create it", err)
	}
	var want golden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}

	var labels []string
	for l := range want.Blocks {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		g, ok := got.Blocks[l]
		if !ok {
			t.Errorf("block %q in golden file but not produced by the library", l)
			continue
		}
		if g != want.Blocks[l] {
			t.Errorf("block %q drifted:\n  got  %+v\n  want %+v", l, g, want.Blocks[l])
		}
	}
	for l := range got.Blocks {
		if _, ok := want.Blocks[l]; !ok {
			t.Errorf("new block %q not in golden file; run -update", l)
		}
	}
	for name, moves := range want.Moves {
		g, ok := got.Moves[name]
		if !ok {
			t.Errorf("plan %q in golden file but not produced", name)
			continue
		}
		if len(g) != len(moves) {
			t.Errorf("plan %q has %d moves, want %d", name, len(g), len(moves))
			continue
		}
		for i := range moves {
			if g[i] != moves[i] {
				t.Errorf("plan %q move %d drifted:\n  got  %+v\n  want %+v", name, i, g[i], moves[i])
			}
		}
	}
	for name := range got.Moves {
		if _, ok := want.Moves[name]; !ok {
			t.Errorf("new plan %q not in golden file; run -update", name)
		}
	}
	for name, gc := range want.Clusters {
		g, ok := got.Clusters[name]
		if !ok {
			t.Errorf("cluster %q in golden file but not produced", name)
			continue
		}
		if !reflect.DeepEqual(g, gc) {
			t.Errorf("cluster %q drifted:\n  got  %+v\n  want %+v", name, g, gc)
		}
	}
	for name := range got.Clusters {
		if _, ok := want.Clusters[name]; !ok {
			t.Errorf("new cluster %q not in golden file; run -update", name)
		}
	}
	for name, fs := range want.Fleets {
		if got.raceSkipped[name] {
			continue
		}
		g, ok := got.Fleets[name]
		if !ok {
			t.Errorf("fleet %q in golden file but not produced", name)
			continue
		}
		if g != fs {
			t.Errorf("fleet %q drifted:\n  got  %+v\n  want %+v", name, g, fs)
		}
	}
	for name := range got.Fleets {
		if _, ok := want.Fleets[name]; !ok {
			t.Errorf("new fleet %q not in golden file; run -update", name)
		}
	}
}

// TestLibraryRoundTrips is the CI gate behind `wavm3scen -check`: every
// committed scenario file must load strictly, validate and compile.
func TestLibraryRoundTrips(t *testing.T) {
	specs, err := LoadDir(libraryDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		c, err := s.Compile()
		if err != nil {
			t.Errorf("%s does not compile: %v", s.Name, err)
			continue
		}
		if len(c.Runs) == 0 && c.Plan == nil && c.Cluster == nil {
			t.Errorf("%s compiled to nothing", s.Name)
		}
		// Re-marshalling and re-loading must compile to identical runs —
		// the spec carries everything, nothing hides in Go state.
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Spec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s does not round-trip: %v", s.Name, err)
		}
		cb, err := back.Compile()
		if err != nil {
			t.Errorf("%s round-tripped spec does not compile: %v", s.Name, err)
			continue
		}
		for i := range c.Runs {
			if c.Runs[i].Scenario != cb.Runs[i].Scenario {
				t.Errorf("%s run %d changed across a JSON round-trip", s.Name, i)
			}
		}
		if c.Cluster != nil && !reflect.DeepEqual(c.Cluster, cb.Cluster) {
			t.Errorf("%s cluster timeline changed across a JSON round-trip", s.Name)
		}
	}
}
