package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/units"
)

// WriteCSV writes the trace as "seconds,watts" rows with a header, the
// format the figure data files use (one file per load level, as in the
// paper's gnuplot inputs).
func (p *PowerTrace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "power_w"}); err != nil {
		return err
	}
	for _, s := range p.Samples {
		rec := []string{
			strconv.FormatFloat(s.At.Seconds(), 'f', 3, 64),
			strconv.FormatFloat(float64(s.Power), 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace previously written by WriteCSV.
func ReadCSV(r io.Reader, host string) (*PowerTrace, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	out := &PowerTrace{Host: host}
	for i, rec := range recs {
		if i == 0 && len(rec) >= 1 && rec[0] == "time_s" {
			continue // header
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("trace: CSV row %d has %d fields, want 2", i, len(rec))
		}
		secs, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV row %d time: %w", i, err)
		}
		w, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV row %d power: %w", i, err)
		}
		at := time.Duration(secs * float64(time.Second))
		if err := out.Append(at, units.Watts(w)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
