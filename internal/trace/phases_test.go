package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func validB() Boundaries {
	return Boundaries{
		MS: 10 * time.Second,
		TS: 15 * time.Second,
		TE: 45 * time.Second,
		ME: 50 * time.Second,
	}
}

func TestBoundariesValidate(t *testing.T) {
	if err := validB().Validate(); err != nil {
		t.Errorf("valid boundaries rejected: %v", err)
	}
	bad := []Boundaries{
		{MS: -1},
		{MS: 10, TS: 5, TE: 20, ME: 30},
		{MS: 10, TS: 15, TE: 12, ME: 30},
		{MS: 10, TS: 15, TE: 20, ME: 18},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad boundaries %d accepted", i)
		}
	}
}

func TestPhaseAt(t *testing.T) {
	b := validB()
	cases := []struct {
		at   time.Duration
		want Phase
	}{
		{0, PhaseNormal},
		{10 * time.Second, PhaseInitiation},
		{14 * time.Second, PhaseInitiation},
		{15 * time.Second, PhaseTransfer},
		{44 * time.Second, PhaseTransfer},
		{45 * time.Second, PhaseActivation},
		{49 * time.Second, PhaseActivation},
		{50 * time.Second, PhaseNormal},
		{time.Hour, PhaseNormal},
	}
	for _, tc := range cases {
		if got := b.PhaseAt(tc.at); got != tc.want {
			t.Errorf("PhaseAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestSpan(t *testing.T) {
	b := validB()
	from, to, err := b.Span(PhaseTransfer)
	if err != nil {
		t.Fatal(err)
	}
	if from != b.TS || to != b.TE {
		t.Errorf("transfer span = [%v, %v], want [%v, %v]", from, to, b.TS, b.TE)
	}
	if _, _, err := b.Span(PhaseNormal); err == nil {
		t.Error("normal phase has no span and must error")
	}
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseNormal:     "normal",
		PhaseInitiation: "initiation",
		PhaseTransfer:   "transfer",
		PhaseActivation: "activation",
		Phase(9):        "Phase(9)",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("Phase %d String = %q, want %q", int(p), p.String(), w)
		}
	}
}

func TestEnergyByPhaseSumsToMigrationEnergy(t *testing.T) {
	// 60 s constant 600 W trace; phase split must conserve energy.
	tr := &PowerTrace{}
	for i := 0; i <= 120; i++ {
		_ = tr.Append(time.Duration(i)*500*time.Millisecond, 600)
	}
	b := validB()
	pe, err := EnergyByPhase(tr, b)
	if err != nil {
		t.Fatal(err)
	}
	whole := tr.EnergyBetween(b.MS, b.ME)
	if math.Abs(float64(pe.Total()-whole)) > 1e-6 {
		t.Errorf("phase sum %v != migration window energy %v", pe.Total(), whole)
	}
	// 40s migration at 600 W = 24 kJ.
	if math.Abs(pe.Total().KiloJoules()-24) > 1e-6 {
		t.Errorf("total = %v kJ, want 24", pe.Total().KiloJoules())
	}
	// Individual phases: 5 s, 30 s, 5 s at 600 W.
	if math.Abs(float64(pe.Initiation)-3000) > 1e-6 {
		t.Errorf("initiation = %v, want 3000 J", pe.Initiation)
	}
	if math.Abs(float64(pe.Transfer)-18000) > 1e-6 {
		t.Errorf("transfer = %v, want 18000 J", pe.Transfer)
	}
	if math.Abs(float64(pe.Activation)-3000) > 1e-6 {
		t.Errorf("activation = %v, want 3000 J", pe.Activation)
	}
}

func TestEnergyByPhaseConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := &PowerTrace{}
		r := seed
		next := func() float64 {
			r = r*6364136223846793005 + 1442695040888963407
			return float64(uint64(r)>>40%500) + 400
		}
		for i := 0; i <= 200; i++ {
			_ = tr.Append(time.Duration(i)*500*time.Millisecond, units.Watts(next()))
		}
		b := Boundaries{MS: 5 * time.Second, TS: 20 * time.Second, TE: 80 * time.Second, ME: 95 * time.Second}
		pe, err := EnergyByPhase(tr, b)
		if err != nil {
			return false
		}
		whole := tr.EnergyBetween(b.MS, b.ME)
		return math.Abs(float64(pe.Total()-whole)) < 1e-6*math.Max(1, float64(whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEnergyByPhaseValidation(t *testing.T) {
	tr := mkTrace(t, 1, 2, 3)
	if _, err := EnergyByPhase(tr, Boundaries{MS: 5, TS: 1}); err == nil {
		t.Error("invalid boundaries must fail")
	}
	short := mkTrace(t, 1)
	if _, err := EnergyByPhase(short, validB()); err == nil {
		t.Error("too-short trace must fail")
	}
}

func TestBaselineAndExcess(t *testing.T) {
	// 10 s at 500 W (normal), then 40 s at 700 W (migration), then back.
	tr := &PowerTrace{}
	for i := 0; i <= 120; i++ {
		at := time.Duration(i) * 500 * time.Millisecond
		w := units.Watts(500)
		if at >= 10*time.Second && at < 50*time.Second {
			w = 700
		}
		_ = tr.Append(at, w)
	}
	b := validB()
	base, err := BaselinePower(tr, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(base)-500) > 1e-9 {
		t.Errorf("baseline = %v, want 500 W", base)
	}
	ex, err := ExcessEnergy(tr, b, base)
	if err != nil {
		t.Fatal(err)
	}
	// 40 s × 200 W = 8000 J, minus two 0.25 s transition trapezoids' softening.
	if float64(ex) < 7800 || float64(ex) > 8000 {
		t.Errorf("excess = %v, want ≈7900-8000 J", ex)
	}
}

func TestBaselineErrors(t *testing.T) {
	tr := mkTrace(t, 1, 2)
	if _, err := BaselinePower(tr, Boundaries{}); err == nil {
		t.Error("MS=0 leaves no baseline window, must fail")
	}
	if _, err := BaselinePower(tr, Boundaries{MS: time.Nanosecond, TS: time.Nanosecond, TE: time.Nanosecond, ME: time.Nanosecond}); err == nil {
		t.Error("sub-sample baseline window must fail")
	}
}
