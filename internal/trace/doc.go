// Package trace represents the time-series data the paper's methodology is
// built on: instantaneous power samples from the AC-side meters and the
// aligned resource-utilisation features recorded dstat-style. It provides
// the numerical operations the evaluation needs — trapezoidal energy
// integration, migration-phase segmentation, resampling, averaging across
// repeated runs — plus CSV encoding for the figure data.
//
// Position in the data flow (see ARCHITECTURE.md): every simulated run
// (internal/sim) produces a PowerTrace per host and a FeatureTrace per
// host; the migration engine contributes the phase Boundaries (ms, ts,
// te, me). EnergyByPhase turns a power trace plus boundaries into the
// paper's four per-phase energy metrics, and Align zips power and
// features into the Observation rows that regression datasets
// (internal/core) are built from. Time lookups use sort.Search over the
// monotone sample times; traces are treated as immutable once a run
// completes, which is what lets the run cache share them between hits.
package trace
