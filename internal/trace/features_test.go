package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/units"
)

func TestFeatureTraceAppendAndAt(t *testing.T) {
	ft := &FeatureTrace{Host: "m01"}
	for i := 0; i < 5; i++ {
		err := ft.Append(FeatureSample{
			At:      time.Duration(i) * time.Second,
			HostCPU: units.Utilisation(i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := ft.Append(FeatureSample{At: time.Second}); err == nil {
		t.Error("out-of-order feature append must fail")
	}
	// Nearest-sample lookup.
	cases := []struct {
		at   time.Duration
		want units.Utilisation
	}{
		{-time.Second, 0},
		{400 * time.Millisecond, 0},
		{600 * time.Millisecond, 1},
		{2 * time.Second, 2},
		{10 * time.Second, 4},
	}
	for _, tc := range cases {
		got, err := ft.At(tc.at)
		if err != nil {
			t.Fatal(err)
		}
		if got.HostCPU != tc.want {
			t.Errorf("At(%v).HostCPU = %v, want %v", tc.at, got.HostCPU, tc.want)
		}
	}
	empty := &FeatureTrace{}
	if _, err := empty.At(0); err == nil {
		t.Error("At on empty feature trace must fail")
	}
}

func TestAlign(t *testing.T) {
	pt := &PowerTrace{Host: "m01"}
	ft := &FeatureTrace{Host: "m01"}
	for i := 0; i <= 60; i++ {
		at := time.Duration(i) * time.Second
		_ = pt.Append(at, units.Watts(500+i))
		_ = ft.Append(FeatureSample{At: at, HostCPU: units.Utilisation(i), DirtyRatio: 0.5})
	}
	b := Boundaries{MS: 10 * time.Second, TS: 15 * time.Second, TE: 45 * time.Second, ME: 50 * time.Second}
	obs, err := Align(pt, ft, b)
	if err != nil {
		t.Fatal(err)
	}
	// Samples at 10..49 s inclusive are inside the migration: 40 samples.
	if len(obs) != 40 {
		t.Fatalf("aligned %d observations, want 40", len(obs))
	}
	for _, o := range obs {
		if o.Phase == PhaseNormal {
			t.Fatalf("normal-phase observation leaked: %+v", o)
		}
		if o.DirtyRatio != 0.5 {
			t.Fatalf("feature not joined: %+v", o)
		}
	}
	byPhase := SplitByPhase(obs)
	if len(byPhase[PhaseInitiation]) != 5 {
		t.Errorf("initiation samples = %d, want 5", len(byPhase[PhaseInitiation]))
	}
	if len(byPhase[PhaseTransfer]) != 30 {
		t.Errorf("transfer samples = %d, want 30", len(byPhase[PhaseTransfer]))
	}
	if len(byPhase[PhaseActivation]) != 5 {
		t.Errorf("activation samples = %d, want 5", len(byPhase[PhaseActivation]))
	}
}

func TestAlignErrors(t *testing.T) {
	pt := mkTrace(t, 1, 2, 3)
	ft := &FeatureTrace{}
	_ = ft.Append(FeatureSample{At: 0})
	if _, err := Align(pt, ft, Boundaries{MS: 10, TS: 5}); err == nil {
		t.Error("bad boundaries must fail")
	}
	if _, err := Align(&PowerTrace{}, ft, validB()); err == nil {
		t.Error("empty power trace must fail")
	}
	if _, err := Align(pt, &FeatureTrace{}, validB()); err == nil {
		t.Error("empty feature trace must fail")
	}
	// No power samples inside the window.
	far := Boundaries{MS: time.Hour, TS: time.Hour + time.Second, TE: time.Hour + 2*time.Second, ME: time.Hour + 3*time.Second}
	if _, err := Align(pt, ft, far); err == nil {
		t.Error("window beyond trace must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := mkTrace(t, 400.25, 512.5, 630.75)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_s,power_w\n") {
		t.Errorf("missing header: %q", out)
	}
	back, err := ReadCSV(strings.NewReader(out), "test")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round-trip len = %d, want %d", back.Len(), tr.Len())
	}
	for i := range tr.Samples {
		if back.Samples[i].At != tr.Samples[i].At {
			t.Errorf("sample %d time %v != %v", i, back.Samples[i].At, tr.Samples[i].At)
		}
		if back.Samples[i].Power != tr.Samples[i].Power {
			t.Errorf("sample %d power %v != %v", i, back.Samples[i].Power, tr.Samples[i].Power)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"time_s,power_w\nnot_a_number,5\n",
		"time_s,power_w\n1.0,not_a_number\n",
		"time_s,power_w\n2.0,5\n1.0,5\n", // out of order
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), "x"); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}
