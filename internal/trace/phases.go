package trace

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/units"
)

// Phase identifies one of the migration energy phases of Section III-D.
type Phase int

// Phases in chronological order. Normal bounds the migration on both sides.
const (
	PhaseNormal Phase = iota
	PhaseInitiation
	PhaseTransfer
	PhaseActivation
)

// String returns the paper's name for the phase.
func (p Phase) String() string {
	switch p {
	case PhaseNormal:
		return "normal"
	case PhaseInitiation:
		return "initiation"
	case PhaseTransfer:
		return "transfer"
	case PhaseActivation:
		return "activation"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Boundaries are the four instants the model of Section IV-A is defined by:
// MS (migration start), TS/TE (transfer start/end) and ME (migration end).
// Initiation = [MS, TS), Transfer = [TS, TE), Activation = [TE, ME).
type Boundaries struct {
	MS, TS, TE, ME time.Duration
}

// Validate checks the chronological ordering MS ≤ TS ≤ TE ≤ ME.
func (b Boundaries) Validate() error {
	if b.MS < 0 || b.TS < b.MS || b.TE < b.TS || b.ME < b.TE {
		return fmt.Errorf("trace: phase boundaries out of order: ms=%v ts=%v te=%v me=%v", b.MS, b.TS, b.TE, b.ME)
	}
	return nil
}

// PhaseAt returns the phase t falls into.
func (b Boundaries) PhaseAt(t time.Duration) Phase {
	switch {
	case t < b.MS:
		return PhaseNormal
	case t < b.TS:
		return PhaseInitiation
	case t < b.TE:
		return PhaseTransfer
	case t < b.ME:
		return PhaseActivation
	default:
		return PhaseNormal
	}
}

// Span returns the [from, to) interval of the given migration phase.
func (b Boundaries) Span(p Phase) (from, to time.Duration, err error) {
	switch p {
	case PhaseInitiation:
		return b.MS, b.TS, nil
	case PhaseTransfer:
		return b.TS, b.TE, nil
	case PhaseActivation:
		return b.TE, b.ME, nil
	default:
		return 0, 0, fmt.Errorf("trace: phase %v has no single span", p)
	}
}

// MigrationDuration returns ME − MS.
func (b Boundaries) MigrationDuration() time.Duration { return b.ME - b.MS }

// PhaseEnergy bundles the paper's four energy metrics for one host: the
// energy of each phase, and their sum (Eq. 4).
type PhaseEnergy struct {
	Initiation units.Joules
	Transfer   units.Joules
	Activation units.Joules
}

// Total returns Emigr = E(i) + E(t) + E(a).
func (e PhaseEnergy) Total() units.Joules {
	return e.Initiation + e.Transfer + e.Activation
}

// EnergyByPhase splits a power trace at the migration boundaries and
// integrates each phase separately (Section V-B's "four energy metrics").
func EnergyByPhase(p *PowerTrace, b Boundaries) (PhaseEnergy, error) {
	var out PhaseEnergy
	if err := b.Validate(); err != nil {
		return out, err
	}
	if p.Len() < 2 {
		return out, errors.New("trace: trace too short to integrate")
	}
	out.Initiation = p.EnergyBetween(b.MS, b.TS)
	out.Transfer = p.EnergyBetween(b.TS, b.TE)
	out.Activation = p.EnergyBetween(b.TE, b.ME)
	return out, nil
}

// ExcessEnergy returns the migration energy above the pre-migration
// baseline power: ∫(P − baseline) over [MS, ME]. The paper isolates the
// migration's own cost by ensuring constant consumption during normal
// execution; subtracting that baseline makes runs with different idle
// powers comparable.
func ExcessEnergy(p *PowerTrace, b Boundaries, baseline units.Watts) (units.Joules, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	gross := p.EnergyBetween(b.MS, b.ME)
	base := units.EnergyOver(baseline, b.ME-b.MS)
	return gross - base, nil
}

// BaselinePower estimates the normal-execution power before the migration
// begins: the time-weighted mean power over [0, MS). Returns an error when
// the trace has no pre-migration samples.
func BaselinePower(p *PowerTrace, b Boundaries) (units.Watts, error) {
	if b.MS <= 0 {
		return 0, errors.New("trace: no pre-migration window")
	}
	pre := p.Slice(0, b.MS-time.Nanosecond) // [0, MS): exclude the first migration sample
	if pre.Len() < 2 {
		return 0, errors.New("trace: too few pre-migration samples")
	}
	return pre.MeanPower(), nil
}
