package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/units"
)

func TestJSONRoundTrip(t *testing.T) {
	tr := mkTrace(t, 400, 500, 600)
	b := validB()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, &b); err != nil {
		t.Fatal(err)
	}
	back, bounds, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Host != tr.Host || back.Len() != tr.Len() {
		t.Fatalf("round trip lost shape: %s/%d", back.Host, back.Len())
	}
	for i := range tr.Samples {
		if back.Samples[i].Power != tr.Samples[i].Power {
			t.Errorf("sample %d power %v != %v", i, back.Samples[i].Power, tr.Samples[i].Power)
		}
	}
	if bounds == nil || bounds.TS != b.TS || bounds.ME != b.ME {
		t.Errorf("bounds lost: %+v", bounds)
	}
}

func TestJSONWithoutBounds(t *testing.T) {
	tr := mkTrace(t, 400, 500)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "phases") {
		t.Error("nil bounds should be omitted")
	}
	_, bounds, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if bounds != nil {
		t.Error("bounds materialised from nothing")
	}
}

func TestJSONErrors(t *testing.T) {
	tr := mkTrace(t, 1, 2)
	bad := Boundaries{MS: 5, TS: 1}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, &bad); err == nil {
		t.Error("invalid bounds must fail on write")
	}
	if _, _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON must fail")
	}
	if _, _, err := ReadJSON(strings.NewReader(`{"time_s":[1],"power_w":[1,2]}`)); err == nil {
		t.Error("mismatched arrays must fail")
	}
	if _, _, err := ReadJSON(strings.NewReader(`{"time_s":[2,1],"power_w":[5,5]}`)); err == nil {
		t.Error("out-of-order timestamps must fail")
	}
}

func TestSmooth(t *testing.T) {
	// Alternating 400/600: a window of 3 pulls interior points to ≈466/533,
	// exactly (400+600+400)/3 and (600+400+600)/3.
	tr := &PowerTrace{}
	for i := 0; i < 6; i++ {
		w := units.Watts(400)
		if i%2 == 1 {
			w = 600
		}
		_ = tr.Append(time.Duration(i)*time.Second, w)
	}
	sm := tr.Smooth(3)
	if sm.Len() != tr.Len() {
		t.Fatalf("smoothing changed length: %d", sm.Len())
	}
	// Sample 2 is a 400 flanked by two 600s: (600+400+600)/3.
	if math.Abs(float64(sm.Samples[2].Power)-1600.0/3) > 1e-9 {
		t.Errorf("interior smoothed = %v, want %v", sm.Samples[2].Power, 1600.0/3)
	}
	// Timestamps preserved.
	for i := range tr.Samples {
		if sm.Samples[i].At != tr.Samples[i].At {
			t.Error("smoothing moved timestamps")
		}
	}
	// Degenerate windows behave.
	if tr.Smooth(0).Samples[1].Power != tr.Samples[1].Power {
		t.Error("window 0 must be identity")
	}
	if tr.Smooth(2).Len() != tr.Len() {
		t.Error("even window must round up, not break")
	}
}

func TestSmoothConstantIsIdentity(t *testing.T) {
	tr := mkTrace(t, 500, 500, 500, 500, 500)
	sm := tr.Smooth(5)
	for i := range sm.Samples {
		if math.Abs(float64(sm.Samples[i].Power)-500) > 1e-9 {
			t.Fatalf("constant trace changed at %d: %v", i, sm.Samples[i].Power)
		}
	}
}
