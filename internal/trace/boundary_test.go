package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

// boundaryTrace is a 2 Hz trace over [1s, 5s] with distinct powers so a
// mis-clipped segment is visible in the integral.
func boundaryTrace(t *testing.T) *PowerTrace {
	t.Helper()
	p := &PowerTrace{Host: "m01"}
	for i := 0; i <= 8; i++ {
		at := 1*time.Second + time.Duration(i)*500*time.Millisecond
		if err := p.Append(at, units.Watts(100+10*i)); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// sliceNaive is the pre-binary-search reference implementation of Slice.
func sliceNaive(p *PowerTrace, from, to time.Duration) *PowerTrace {
	out := &PowerTrace{Host: p.Host}
	for _, s := range p.Samples {
		if s.At >= from && s.At <= to {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// energyNaive is the pre-binary-search reference implementation of
// EnergyBetween: a full linear scan with identical clipping arithmetic.
func energyNaive(p *PowerTrace, from, to time.Duration) units.Joules {
	n := len(p.Samples)
	if n < 2 || to <= from {
		return 0
	}
	total := 0.0
	for i := 0; i < n-1; i++ {
		a, b := p.Samples[i], p.Samples[i+1]
		lo, hi := a.At, b.At
		if hi <= from || lo >= to || hi == lo {
			continue
		}
		clipLo, clipHi := lo, hi
		pLo, pHi := float64(a.Power), float64(b.Power)
		if clipLo < from {
			frac := float64(from-lo) / float64(hi-lo)
			pLo = float64(a.Power) + frac*(float64(b.Power)-float64(a.Power))
			clipLo = from
		}
		if clipHi > to {
			frac := float64(to-lo) / float64(hi-lo)
			pHi = float64(a.Power) + frac*(float64(b.Power)-float64(a.Power))
			clipHi = to
		}
		dt := clipHi - clipLo
		total += (pLo + pHi) / 2 * dt.Seconds()
	}
	return units.Joules(total)
}

// boundaryWindows are the clipping cases the binary-search rewrite must
// preserve: boundaries exactly on samples, between samples, and partly or
// fully outside the trace span.
func boundaryWindows() [][2]time.Duration {
	s := func(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }
	return [][2]time.Duration{
		{s(1), s(5)},        // whole span, boundaries on first/last sample
		{s(2), s(3.5)},      // both boundaries exactly on interior samples
		{s(2.25), s(3.75)},  // both boundaries between samples
		{s(1), s(1.5)},      // first segment only
		{s(4.5), s(5)},      // last segment only
		{s(0), s(10)},       // window straddles the whole trace
		{s(0), s(0.5)},      // entirely before the trace
		{s(6), s(9)},        // entirely after the trace
		{s(0.5), s(1.25)},   // clips into the first segment
		{s(4.75), s(7)},     // clips out of the last segment
		{s(3), s(3)},        // empty window on a sample
		{s(3.25), s(3.25)},  // empty window between samples
		{s(4), s(2)},        // inverted window
		{s(2.5), s(2.5001)}, // sliver inside one segment
	}
}

// TestSliceBoundaryClipping checks Slice against the linear reference on
// every boundary case.
func TestSliceBoundaryClipping(t *testing.T) {
	p := boundaryTrace(t)
	for _, w := range boundaryWindows() {
		got := p.Slice(w[0], w[1])
		want := sliceNaive(p, w[0], w[1])
		if got.Host != want.Host || got.Len() != want.Len() {
			t.Errorf("Slice(%v, %v) has %d samples, want %d", w[0], w[1], got.Len(), want.Len())
			continue
		}
		for i := range want.Samples {
			if got.Samples[i] != want.Samples[i] {
				t.Errorf("Slice(%v, %v)[%d] = %+v, want %+v", w[0], w[1], i, got.Samples[i], want.Samples[i])
			}
		}
	}
}

// TestSliceSharesNoStorage guards Slice's no-aliasing contract.
func TestSliceSharesNoStorage(t *testing.T) {
	p := boundaryTrace(t)
	s := p.Slice(1*time.Second, 5*time.Second)
	if s.Len() == 0 {
		t.Fatal("empty slice")
	}
	s.Samples[0].Power = 9999
	if p.Samples[0].Power == 9999 {
		t.Error("Slice aliases the parent trace's storage")
	}
}

// TestEnergyBetweenBoundaryClipping checks the binary-search integration
// against the full-scan reference, bit for bit: the rewrite only skips
// segments that contribute exactly zero, so even float rounding must
// agree.
func TestEnergyBetweenBoundaryClipping(t *testing.T) {
	p := boundaryTrace(t)
	for _, w := range boundaryWindows() {
		got := p.EnergyBetween(w[0], w[1])
		want := energyNaive(p, w[0], w[1])
		if got != want {
			t.Errorf("EnergyBetween(%v, %v) = %v, want %v (diff %g)",
				w[0], w[1], got, want, math.Abs(float64(got-want)))
		}
	}
}

// TestEnergyBetweenDuplicateTimestamps covers zero-length segments (a
// power step recorded as two samples at one instant), which the segment
// scan must skip without dividing by zero.
func TestEnergyBetweenDuplicateTimestamps(t *testing.T) {
	p := &PowerTrace{Host: "m01"}
	for _, s := range []struct {
		at time.Duration
		w  units.Watts
	}{{0, 100}, {time.Second, 100}, {time.Second, 200}, {2 * time.Second, 200}} {
		if err := p.Append(s.at, s.w); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range [][2]time.Duration{
		{0, 2 * time.Second},
		{500 * time.Millisecond, 1500 * time.Millisecond},
		{time.Second, 2 * time.Second},
		{0, time.Second},
	} {
		got, want := p.EnergyBetween(w[0], w[1]), energyNaive(p, w[0], w[1])
		if got != want {
			t.Errorf("EnergyBetween(%v, %v) = %v, want %v", w[0], w[1], got, want)
		}
	}
}
