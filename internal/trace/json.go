package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/units"
)

// jsonTrace is the wire form of a power trace: timestamps in seconds,
// power in watts, both as plain numbers for toolchain friendliness.
type jsonTrace struct {
	Host    string      `json:"host"`
	TimeS   []float64   `json:"time_s"`
	PowerW  []float64   `json:"power_w"`
	Bounds  *jsonBounds `json:"phases,omitempty"`
	Comment string      `json:"comment,omitempty"`
}

type jsonBounds struct {
	MS float64 `json:"ms_s"`
	TS float64 `json:"ts_s"`
	TE float64 `json:"te_s"`
	ME float64 `json:"me_s"`
}

// WriteJSON encodes the trace (and optional phase boundaries) as JSON.
func (p *PowerTrace) WriteJSON(w io.Writer, bounds *Boundaries) error {
	out := jsonTrace{Host: p.Host}
	for _, s := range p.Samples {
		out.TimeS = append(out.TimeS, s.At.Seconds())
		out.PowerW = append(out.PowerW, float64(s.Power))
	}
	if bounds != nil {
		if err := bounds.Validate(); err != nil {
			return err
		}
		out.Bounds = &jsonBounds{
			MS: bounds.MS.Seconds(), TS: bounds.TS.Seconds(),
			TE: bounds.TE.Seconds(), ME: bounds.ME.Seconds(),
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON decodes a trace written by WriteJSON, returning the trace and
// the phase boundaries when present.
func ReadJSON(r io.Reader) (*PowerTrace, *Boundaries, error) {
	var in jsonTrace
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	if len(in.TimeS) != len(in.PowerW) {
		return nil, nil, fmt.Errorf("trace: JSON has %d timestamps but %d powers", len(in.TimeS), len(in.PowerW))
	}
	tr := &PowerTrace{Host: in.Host}
	for i := range in.TimeS {
		at := time.Duration(in.TimeS[i] * float64(time.Second))
		if err := tr.Append(at, units.Watts(in.PowerW[i])); err != nil {
			return nil, nil, err
		}
	}
	var b *Boundaries
	if in.Bounds != nil {
		b = &Boundaries{
			MS: time.Duration(in.Bounds.MS * float64(time.Second)),
			TS: time.Duration(in.Bounds.TS * float64(time.Second)),
			TE: time.Duration(in.Bounds.TE * float64(time.Second)),
			ME: time.Duration(in.Bounds.ME * float64(time.Second)),
		}
		if err := b.Validate(); err != nil {
			return nil, nil, err
		}
	}
	return tr, b, nil
}

// Smooth returns a centred moving-average copy of the trace with the given
// window (an odd sample count; even values are rounded up). Used to tame
// meter noise when plotting single runs.
func (p *PowerTrace) Smooth(window int) *PowerTrace {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := &PowerTrace{Host: p.Host}
	n := len(p.Samples)
	for i := 0; i < n; i++ {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += float64(p.Samples[j].Power)
		}
		out.Samples = append(out.Samples, Sample{
			At:    p.Samples[i].At,
			Power: units.Watts(sum / float64(hi-lo+1)),
		})
	}
	return out
}
