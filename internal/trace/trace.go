package trace

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/units"
)

// Sample is one meter reading: the power drawn at a time offset from the
// start of the recording.
type Sample struct {
	At    time.Duration
	Power units.Watts
}

// PowerTrace is a time-ordered series of power samples for one host.
type PowerTrace struct {
	// Host labels the machine the meter was attached to (e.g. "m01").
	Host string
	// Samples are in non-decreasing time order.
	Samples []Sample
}

// Append adds a sample, enforcing time monotonicity.
func (p *PowerTrace) Append(at time.Duration, w units.Watts) error {
	if n := len(p.Samples); n > 0 && at < p.Samples[n-1].At {
		return fmt.Errorf("trace: sample at %v is earlier than previous sample at %v", at, p.Samples[n-1].At)
	}
	p.Samples = append(p.Samples, Sample{At: at, Power: w})
	return nil
}

// Len returns the number of samples.
func (p *PowerTrace) Len() int { return len(p.Samples) }

// Reserve grows the sample capacity to at least n so subsequent Appends
// do not regrow the backing array. Callers that know the recording span
// up front (the simulation kernel) use it to keep the step loop
// allocation-free.
func (p *PowerTrace) Reserve(n int) {
	if cap(p.Samples) >= n {
		return
	}
	s := make([]Sample, len(p.Samples), n)
	copy(s, p.Samples)
	p.Samples = s
}

// searchAt returns the index of the first sample with At >= t, relying on
// the non-decreasing time order Append enforces.
func (p *PowerTrace) searchAt(t time.Duration) int {
	return sort.Search(len(p.Samples), func(i int) bool { return p.Samples[i].At >= t })
}

// Duration returns the time span covered by the trace.
func (p *PowerTrace) Duration() time.Duration {
	if len(p.Samples) == 0 {
		return 0
	}
	return p.Samples[len(p.Samples)-1].At - p.Samples[0].At
}

// Slice returns the sub-trace with from ≤ t ≤ to. The boundary samples are
// included when present; the result shares no storage with p. The window
// is located by binary search on the sorted-time invariant.
func (p *PowerTrace) Slice(from, to time.Duration) *PowerTrace {
	out := &PowerTrace{Host: p.Host}
	if to < from {
		return out
	}
	lo := p.searchAt(from) // first sample with At >= from
	hi := lo + sort.Search(len(p.Samples)-lo, func(i int) bool { return p.Samples[lo+i].At > to })
	if hi > lo {
		out.Samples = append(out.Samples, p.Samples[lo:hi]...)
	}
	return out
}

// Energy integrates the trace with the trapezoidal rule, returning the
// energy consumed over its whole span. This is how the paper converts power
// traces into per-phase energy (Section V-B).
func (p *PowerTrace) Energy() units.Joules {
	return p.EnergyBetween(0, time.Duration(1<<62-1))
}

// EnergyBetween integrates power over [from, to] ∩ [trace span], linearly
// interpolating at the interval boundaries so that phase boundaries falling
// between samples are handled exactly. Only the segments overlapping the
// window are visited: the first candidate is located by binary search and
// the scan stops at the first segment starting at or past to, which turns
// the per-phase integrations of EnergyByPhase from full-trace scans into
// O(log n + window) work.
func (p *PowerTrace) EnergyBetween(from, to time.Duration) units.Joules {
	n := len(p.Samples)
	if n < 2 || to <= from {
		return 0
	}
	// First segment [i, i+1] that can overlap: the last one starting at or
	// before from, i.e. one before the first sample with At > from.
	start := sort.Search(n, func(i int) bool { return p.Samples[i].At > from }) - 1
	if start < 0 {
		start = 0
	}
	total := 0.0
	for i := start; i < n-1; i++ {
		a, b := p.Samples[i], p.Samples[i+1]
		lo, hi := a.At, b.At
		if lo >= to {
			break
		}
		if hi <= from || hi == lo {
			continue
		}
		// Clip the segment to [from, to], interpolating power at the cuts.
		clipLo, clipHi := lo, hi
		pLo, pHi := float64(a.Power), float64(b.Power)
		if clipLo < from {
			frac := float64(from-lo) / float64(hi-lo)
			pLo = float64(a.Power) + frac*(float64(b.Power)-float64(a.Power))
			clipLo = from
		}
		if clipHi > to {
			frac := float64(to-lo) / float64(hi-lo)
			pHi = float64(a.Power) + frac*(float64(b.Power)-float64(a.Power))
			clipHi = to
		}
		dt := clipHi - clipLo
		total += (pLo + pHi) / 2 * dt.Seconds()
	}
	return units.Joules(total)
}

// MeanPower returns the time-weighted average power of the trace.
func (p *PowerTrace) MeanPower() units.Watts {
	d := p.Duration()
	if d <= 0 {
		return 0
	}
	return units.Watts(float64(p.Energy()) / d.Seconds())
}

// PowerAt returns the linearly interpolated power at time t. Outside the
// trace span it clamps to the nearest sample.
func (p *PowerTrace) PowerAt(t time.Duration) (units.Watts, error) {
	n := len(p.Samples)
	if n == 0 {
		return 0, errors.New("trace: empty trace")
	}
	if t <= p.Samples[0].At {
		return p.Samples[0].Power, nil
	}
	if t >= p.Samples[n-1].At {
		return p.Samples[n-1].Power, nil
	}
	i := sort.Search(n, func(i int) bool { return p.Samples[i].At >= t })
	a, b := p.Samples[i-1], p.Samples[i]
	if b.At == a.At {
		return b.Power, nil
	}
	frac := float64(t-a.At) / float64(b.At-a.At)
	return units.Watts(float64(a.Power) + frac*(float64(b.Power)-float64(a.Power))), nil
}

// Resample returns a copy of the trace sampled at fixed dt intervals over
// its span, using linear interpolation. Used to align repeated runs before
// averaging them for the figures.
func (p *PowerTrace) Resample(dt time.Duration) (*PowerTrace, error) {
	if dt <= 0 {
		return nil, errors.New("trace: resample interval must be positive")
	}
	if len(p.Samples) == 0 {
		return &PowerTrace{Host: p.Host}, nil
	}
	out := &PowerTrace{Host: p.Host}
	end := p.Samples[len(p.Samples)-1].At
	for t := p.Samples[0].At; t <= end; t += dt {
		w, err := p.PowerAt(t)
		if err != nil {
			return nil, err
		}
		out.Samples = append(out.Samples, Sample{At: t, Power: w})
	}
	return out, nil
}

// AverageTraces averages several runs of the same experiment point-wise
// after resampling each to dt. Runs may have different lengths; each output
// sample averages the runs that are still in progress at that instant,
// which matches how the paper overlays ten runs of unequal migration times.
func AverageTraces(runs []*PowerTrace, dt time.Duration) (*PowerTrace, error) {
	if len(runs) == 0 {
		return nil, errors.New("trace: no runs to average")
	}
	resampled := make([]*PowerTrace, 0, len(runs))
	var longest time.Duration
	for _, r := range runs {
		rs, err := r.Resample(dt)
		if err != nil {
			return nil, err
		}
		if len(rs.Samples) == 0 {
			continue
		}
		if d := rs.Samples[len(rs.Samples)-1].At; d > longest {
			longest = d
		}
		resampled = append(resampled, rs)
	}
	if len(resampled) == 0 {
		return nil, errors.New("trace: all runs empty")
	}
	out := &PowerTrace{Host: runs[0].Host}
	for t := time.Duration(0); t <= longest; t += dt {
		sum, cnt := 0.0, 0
		for _, r := range resampled {
			if len(r.Samples) == 0 || t > r.Samples[len(r.Samples)-1].At {
				continue
			}
			w, err := r.PowerAt(t)
			if err != nil {
				return nil, err
			}
			sum += float64(w)
			cnt++
		}
		if cnt == 0 {
			break
		}
		out.Samples = append(out.Samples, Sample{At: t, Power: units.Watts(sum / float64(cnt))})
	}
	return out, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the trace's power samples
// using linear interpolation between order statistics. Used for summary
// bands over repeated runs.
func (p *PowerTrace) Quantile(q float64) (units.Watts, error) {
	if len(p.Samples) == 0 {
		return 0, errors.New("trace: quantile of empty trace")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("trace: quantile %v outside [0,1]", q)
	}
	vals := make([]float64, len(p.Samples))
	for i, s := range p.Samples {
		vals[i] = float64(s.Power)
	}
	sort.Float64s(vals)
	if len(vals) == 1 {
		return units.Watts(vals[0]), nil
	}
	pos := q * float64(len(vals)-1)
	lo := int(pos)
	if lo == len(vals)-1 {
		return units.Watts(vals[lo]), nil
	}
	frac := pos - float64(lo)
	return units.Watts(vals[lo] + frac*(vals[lo+1]-vals[lo])), nil
}
