package trace

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/units"
)

// FeatureSample captures the resource-utilisation features of Section IV-B
// at one instant, for one host, aligned with the power meter samples. These
// are the regressors of Eqs. 5–7.
type FeatureSample struct {
	At time.Duration
	// HostCPU is CPU(h,t): VMM + all resident VMs + migration share, in
	// busy-vCPU units.
	HostCPU units.Utilisation
	// VMCPU is CPU(v,t) of the migrating VM (0 when suspended or absent).
	VMCPU units.Utilisation
	// Bandwidth is BW(S,T,t), the state-transfer bandwidth in use.
	Bandwidth units.BitsPerSecond
	// DirtyRatio is DR(v,t) of Eq. 1.
	DirtyRatio units.Fraction
}

// FeatureTrace is a time-ordered series of feature samples for one host.
type FeatureTrace struct {
	Host    string
	Samples []FeatureSample
}

// Append adds a feature sample, enforcing time monotonicity.
func (f *FeatureTrace) Append(s FeatureSample) error {
	if n := len(f.Samples); n > 0 && s.At < f.Samples[n-1].At {
		return fmt.Errorf("trace: feature sample at %v is earlier than previous at %v", s.At, f.Samples[n-1].At)
	}
	f.Samples = append(f.Samples, s)
	return nil
}

// Len returns the number of samples.
func (f *FeatureTrace) Len() int { return len(f.Samples) }

// Reserve grows the sample capacity to at least n so subsequent Appends
// do not regrow the backing array.
func (f *FeatureTrace) Reserve(n int) {
	if cap(f.Samples) >= n {
		return
	}
	s := make([]FeatureSample, len(f.Samples), n)
	copy(s, f.Samples)
	f.Samples = s
}

// At returns the feature sample nearest to t (ties resolve to the earlier
// sample). It errors on an empty trace.
func (f *FeatureTrace) At(t time.Duration) (FeatureSample, error) {
	n := len(f.Samples)
	if n == 0 {
		return FeatureSample{}, errors.New("trace: empty feature trace")
	}
	i := sort.Search(n, func(i int) bool { return f.Samples[i].At >= t })
	if i == 0 {
		return f.Samples[0], nil
	}
	if i == n {
		return f.Samples[n-1], nil
	}
	if f.Samples[i].At-t < t-f.Samples[i-1].At {
		return f.Samples[i], nil
	}
	return f.Samples[i-1], nil
}

// Observation pairs one power reading with the features that explain it and
// the phase it fell into. The regression datasets of Section VI-F are
// slices of these.
type Observation struct {
	At    time.Duration
	Phase Phase
	Power units.Watts
	FeatureSample
}

// Align joins a power trace with its feature trace and phase boundaries
// into regression observations: one per power sample within [MS, ME],
// labelled with the phase it belongs to and the nearest feature sample.
func Align(p *PowerTrace, f *FeatureTrace, b Boundaries) ([]Observation, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if p.Len() == 0 {
		return nil, errors.New("trace: no power samples to align")
	}
	if f.Len() == 0 {
		return nil, errors.New("trace: no feature samples to align")
	}
	var out []Observation
	for _, s := range p.Samples {
		ph := b.PhaseAt(s.At)
		if ph == PhaseNormal {
			continue
		}
		fs, err := f.At(s.At)
		if err != nil {
			return nil, err
		}
		out = append(out, Observation{At: s.At, Phase: ph, Power: s.Power, FeatureSample: fs})
	}
	if len(out) == 0 {
		return nil, errors.New("trace: no power samples fall inside the migration window")
	}
	return out, nil
}

// SplitByPhase groups observations by migration phase.
func SplitByPhase(obs []Observation) map[Phase][]Observation {
	out := make(map[Phase][]Observation)
	for _, o := range obs {
		out[o.Phase] = append(out[o.Phase], o)
	}
	return out
}
