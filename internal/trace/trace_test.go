package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func mkTrace(t *testing.T, pts ...float64) *PowerTrace {
	t.Helper()
	// pts are watts, one per second starting at 0.
	tr := &PowerTrace{Host: "test"}
	for i, w := range pts {
		if err := tr.Append(time.Duration(i)*time.Second, units.Watts(w)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestAppendMonotonic(t *testing.T) {
	tr := &PowerTrace{}
	if err := tr.Append(time.Second, 500); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(2*time.Second, 510); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(time.Second, 490); err == nil {
		t.Error("out-of-order append must fail")
	}
	// Equal timestamps are allowed (meter re-read).
	if err := tr.Append(2*time.Second, 505); err != nil {
		t.Errorf("equal-timestamp append should be allowed: %v", err)
	}
}

func TestEnergyConstantPower(t *testing.T) {
	tr := mkTrace(t, 500, 500, 500, 500, 500) // 4 seconds at 500 W
	if e := tr.Energy(); math.Abs(float64(e)-2000) > 1e-9 {
		t.Errorf("Energy = %v, want 2000 J", e)
	}
	if m := tr.MeanPower(); math.Abs(float64(m)-500) > 1e-9 {
		t.Errorf("MeanPower = %v, want 500 W", m)
	}
}

func TestEnergyTrapezoid(t *testing.T) {
	// Ramp 0 → 100 W over 1 s: energy = 50 J.
	tr := mkTrace(t, 0, 100)
	if e := tr.Energy(); math.Abs(float64(e)-50) > 1e-9 {
		t.Errorf("ramp energy = %v, want 50 J", e)
	}
}

func TestEnergyBetweenClipsExactly(t *testing.T) {
	tr := mkTrace(t, 100, 100, 100, 100, 100) // 4 s at 100 W
	e := tr.EnergyBetween(1500*time.Millisecond, 2500*time.Millisecond)
	if math.Abs(float64(e)-100) > 1e-9 {
		t.Errorf("clipped energy = %v, want 100 J", e)
	}
	// Interpolation inside a ramp segment: power at 0.5 s is 50 W,
	// integral over [0.5s, 1s] of the 0→100 ramp is 37.5 J.
	ramp := mkTrace(t, 0, 100)
	e = ramp.EnergyBetween(500*time.Millisecond, time.Second)
	if math.Abs(float64(e)-37.5) > 1e-9 {
		t.Errorf("partial ramp energy = %v, want 37.5 J", e)
	}
}

func TestEnergyBetweenDegenerate(t *testing.T) {
	tr := mkTrace(t, 100, 100)
	if e := tr.EnergyBetween(2*time.Second, time.Second); e != 0 {
		t.Errorf("inverted interval energy = %v, want 0", e)
	}
	short := mkTrace(t, 100)
	if e := short.Energy(); e != 0 {
		t.Errorf("single-sample energy = %v, want 0", e)
	}
}

func TestEnergyAdditivity(t *testing.T) {
	// Property: splitting the integration interval at any interior point
	// conserves total energy.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &PowerTrace{}
		n := 5 + rng.Intn(30)
		for i := 0; i < n; i++ {
			_ = tr.Append(time.Duration(i)*500*time.Millisecond, units.Watts(400+rng.Float64()*500))
		}
		span := tr.Duration()
		cut := time.Duration(rng.Int63n(int64(span)))
		whole := tr.EnergyBetween(0, span)
		parts := tr.EnergyBetween(0, cut) + tr.EnergyBetween(cut, span)
		return math.Abs(float64(whole-parts)) < 1e-6*math.Max(1, float64(whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPowerAt(t *testing.T) {
	tr := mkTrace(t, 400, 600)
	for _, tc := range []struct {
		at   time.Duration
		want float64
	}{
		{-time.Second, 400}, // clamp before
		{0, 400},
		{500 * time.Millisecond, 500},
		{time.Second, 600},
		{5 * time.Second, 600}, // clamp after
	} {
		got, err := tr.PowerAt(tc.at)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(got)-tc.want) > 1e-9 {
			t.Errorf("PowerAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	empty := &PowerTrace{}
	if _, err := empty.PowerAt(0); err == nil {
		t.Error("PowerAt on empty trace must fail")
	}
}

func TestSlice(t *testing.T) {
	tr := mkTrace(t, 1, 2, 3, 4, 5)
	s := tr.Slice(time.Second, 3*time.Second)
	if s.Len() != 3 {
		t.Fatalf("Slice len = %d, want 3", s.Len())
	}
	if s.Samples[0].Power != 2 || s.Samples[2].Power != 4 {
		t.Errorf("Slice contents wrong: %+v", s.Samples)
	}
	// Mutating the slice must not affect the original.
	s.Samples[0].Power = 99
	if tr.Samples[1].Power != 2 {
		t.Error("Slice shares storage with original")
	}
}

func TestResample(t *testing.T) {
	tr := mkTrace(t, 0, 100) // 1 s ramp
	rs, err := tr.Resample(250 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 5 {
		t.Fatalf("resampled len = %d, want 5", rs.Len())
	}
	if math.Abs(float64(rs.Samples[2].Power)-50) > 1e-9 {
		t.Errorf("midpoint = %v, want 50", rs.Samples[2].Power)
	}
	if _, err := tr.Resample(0); err == nil {
		t.Error("zero interval must fail")
	}
	empty := &PowerTrace{}
	rs, err = empty.Resample(time.Second)
	if err != nil || rs.Len() != 0 {
		t.Errorf("empty resample = (%v, %v), want empty, nil", rs.Len(), err)
	}
}

func TestResamplePreservesEnergy(t *testing.T) {
	// Property: resampling a piecewise-linear trace at a divisor of its
	// sampling period preserves the trapezoidal integral exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &PowerTrace{}
		n := 3 + rng.Intn(20)
		for i := 0; i < n; i++ {
			_ = tr.Append(time.Duration(i)*time.Second, units.Watts(400+rng.Float64()*100))
		}
		rs, err := tr.Resample(250 * time.Millisecond)
		if err != nil {
			return false
		}
		return math.Abs(float64(rs.Energy()-tr.Energy())) < 1e-6*float64(tr.Energy())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAverageTraces(t *testing.T) {
	a := mkTrace(t, 100, 100, 100)
	b := mkTrace(t, 300, 300, 300)
	avg, err := AverageTraces([]*PowerTrace{a, b}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range avg.Samples {
		if math.Abs(float64(s.Power)-200) > 1e-9 {
			t.Errorf("average at %v = %v, want 200", s.At, s.Power)
		}
	}
}

func TestAverageTracesUnequalLengths(t *testing.T) {
	short := mkTrace(t, 100, 100)          // 1 s
	long := mkTrace(t, 300, 300, 300, 300) // 3 s
	avg, err := AverageTraces([]*PowerTrace{short, long}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Len() != 4 {
		t.Fatalf("average len = %d, want 4", avg.Len())
	}
	if math.Abs(float64(avg.Samples[0].Power)-200) > 1e-9 {
		t.Errorf("early average = %v, want 200 (both runs active)", avg.Samples[0].Power)
	}
	if math.Abs(float64(avg.Samples[3].Power)-300) > 1e-9 {
		t.Errorf("late average = %v, want 300 (only the long run)", avg.Samples[3].Power)
	}
}

func TestAverageTracesErrors(t *testing.T) {
	if _, err := AverageTraces(nil, time.Second); err == nil {
		t.Error("no runs must fail")
	}
	if _, err := AverageTraces([]*PowerTrace{{}}, time.Second); err == nil {
		t.Error("all-empty runs must fail")
	}
}

func TestQuantile(t *testing.T) {
	tr := mkTrace(t, 400, 500, 600, 700, 800)
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 400},
		{0.25, 500},
		{0.5, 600},
		{0.75, 700},
		{1, 800},
		{0.125, 450}, // interpolated
	}
	for _, tc := range cases {
		got, err := tr.Quantile(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(got)-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := tr.Quantile(-0.1); err == nil {
		t.Error("negative quantile must fail")
	}
	if _, err := tr.Quantile(1.1); err == nil {
		t.Error("quantile > 1 must fail")
	}
	empty := &PowerTrace{}
	if _, err := empty.Quantile(0.5); err == nil {
		t.Error("empty trace must fail")
	}
	single := mkTrace(t, 500)
	if got, _ := single.Quantile(0.5); got != 500 {
		t.Errorf("single-sample quantile = %v", got)
	}
}
