package experiments

import (
	"fmt"
	"time"

	"repro/internal/migration"
	"repro/internal/trace"
)

// Series is one curve of a figure: the run-averaged power trace of one
// experimental point on one host, labelled as in the paper's legends.
type Series struct {
	Label string
	Trace *trace.PowerTrace
	// Bounds are the phase boundaries of the first run, for annotating the
	// phase spans the way Figure 2 does.
	Bounds trace.Boundaries
}

// Panel is one sub-figure: a host role under one migration kind.
type Panel struct {
	// Name matches the paper's caption, e.g. "Non-live source".
	Name   string
	Series []Series
}

// Figure is a complete reproduction of one paper figure.
type Figure struct {
	ID     string // "Fig. 3"
	Title  string
	Panels []Panel
}

// avgSeries averages the runs of one point for one host.
func avgSeries(pr *PointResult, source bool) (Series, error) {
	var runs []*trace.PowerTrace
	for _, r := range pr.Runs {
		if source {
			runs = append(runs, r.Source)
		} else {
			runs = append(runs, r.Target)
		}
	}
	avg, err := trace.AverageTraces(runs, 500*time.Millisecond)
	if err != nil {
		return Series{}, err
	}
	return Series{Label: pr.Point.Label(), Trace: avg, Bounds: pr.Runs[0].Bounds}, nil
}

// panelFor collects the series of one (kind, host) combination from a
// family's point results.
func panelFor(prs []*PointResult, kind migration.Kind, source bool) (Panel, error) {
	host := "target"
	if source {
		host = "source"
	}
	p := Panel{Name: fmt.Sprintf("%s %s", kindTitle(kind), host)}
	for _, pr := range prs {
		if pr.Point.Kind != kind {
			continue
		}
		s, err := avgSeries(pr, source)
		if err != nil {
			return Panel{}, err
		}
		p.Series = append(p.Series, s)
	}
	if len(p.Series) == 0 {
		return Panel{}, fmt.Errorf("experiments: no %v series for panel %q", kind, p.Name)
	}
	return p, nil
}

func kindTitle(k migration.Kind) string {
	if k == migration.Live {
		return "Live"
	}
	return "Non-live"
}

// Figure2 reproduces the phase-anatomy figure: the power traces of one
// idle-host migration of each kind, with the phase boundaries attached.
func Figure2(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	fig := &Figure{ID: "Fig. 2", Title: "Energy consumption phases of non-live and live migration"}
	for _, kind := range []migration.Kind{migration.NonLive, migration.Live} {
		p := Point{Family: CPULoadSource, Kind: kind, LoadVMs: 0}
		sc, err := p.Scenario(cfg.Pair, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sc = shrinkTimings(sc)
		run, err := cfg.Cache.Run(sc)
		if err != nil {
			return nil, err
		}
		fig.Panels = append(fig.Panels, Panel{
			Name: fmt.Sprintf("%s migration", kindTitle(kind)),
			Series: []Series{
				{Label: "source", Trace: run.Source, Bounds: run.Bounds},
				{Label: "target", Trace: run.Target, Bounds: run.Bounds},
			},
		})
	}
	return fig, nil
}

// FamilyFigure reproduces Figures 3–7 from a family's point results:
// CPULOAD families yield four panels (non-live/live × source/target),
// MEMLOAD families two (live source/target).
func FamilyFigure(f Family, prs []*PointResult) (*Figure, error) {
	fig := &Figure{Title: string(f)}
	var kinds []migration.Kind
	switch f {
	case CPULoadSource:
		fig.ID = "Fig. 3"
		kinds = []migration.Kind{migration.NonLive, migration.Live}
	case CPULoadTarget:
		fig.ID = "Fig. 4"
		kinds = []migration.Kind{migration.NonLive, migration.Live}
	case MemLoadVM:
		fig.ID = "Fig. 5"
		kinds = []migration.Kind{migration.Live}
	case MemLoadSource:
		fig.ID = "Fig. 6"
		kinds = []migration.Kind{migration.Live}
	case MemLoadTarget:
		fig.ID = "Fig. 7"
		kinds = []migration.Kind{migration.Live}
	case MemLoadHotCold:
		fig.ID = "Fig. E1"
		kinds = []migration.Kind{migration.Live}
	default:
		return nil, fmt.Errorf("experiments: unknown family %q", f)
	}
	for _, kind := range kinds {
		for _, source := range []bool{true, false} {
			panel, err := panelFor(prs, kind, source)
			if err != nil {
				return nil, err
			}
			fig.Panels = append(fig.Panels, panel)
		}
	}
	return fig, nil
}
