package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/migration"
	"repro/internal/trace"
)

// Ablation quantifies what each workload feature of WAVM3 is worth: it
// retrains the live-migration model with one regressor removed (zeroed in
// both training and test observations) and reports the NRMSE on the test
// split. This is the design-choice justification DESIGN.md calls for:
// DR(v,t), BW(S,T,t) and CPU(v,t) each exist in Eq. 6 because removing
// them costs measurable accuracy.
type Ablation struct {
	// Variant names the removed feature ("full", "no-DR", "no-BW",
	// "no-VMCPU", "no-HostCPU").
	Variant string
	// NRMSE per host role on the test split.
	NRMSE map[core.Role]float64
}

// ablationVariants maps variant names to feature-zeroing mutators.
func ablationVariants() []struct {
	name string
	zero func(*core.RunRecord)
} {
	return []struct {
		name string
		zero func(*core.RunRecord)
	}{
		{"full", func(*core.RunRecord) {}},
		{"no-DR", func(r *core.RunRecord) {
			for i := range r.Obs {
				r.Obs[i].DirtyRatio = 0
			}
		}},
		{"no-BW", func(r *core.RunRecord) {
			for i := range r.Obs {
				r.Obs[i].Bandwidth = 0
			}
		}},
		{"no-VMCPU", func(r *core.RunRecord) {
			for i := range r.Obs {
				r.Obs[i].VMCPU = 0
			}
		}},
		{"no-HostCPU", func(r *core.RunRecord) {
			for i := range r.Obs {
				r.Obs[i].HostCPU = 0
			}
		}},
	}
}

// cloneDataset deep-copies records and observations so mutators cannot
// leak across variants.
func cloneDataset(ds *core.Dataset) *core.Dataset {
	out := &core.Dataset{}
	for _, r := range ds.Runs {
		c := *r
		c.Obs = append([]trace.Observation(nil), r.Obs...)
		out.Runs = append(out.Runs, &c)
	}
	return out
}

// AblateLive runs the feature-ablation study on a suite's live-migration
// data: for each variant, zero the feature in copies of the train and test
// sets, retrain, and evaluate per role.
func AblateLive(s *Suite) ([]Ablation, error) {
	if s == nil || s.TrainM == nil || s.TestM == nil {
		return nil, errors.New("experiments: ablation needs a built suite")
	}
	var out []Ablation
	for _, v := range ablationVariants() {
		train := cloneDataset(s.TrainM)
		test := cloneDataset(s.TestM)
		for _, r := range train.Runs {
			v.zero(r)
		}
		for _, r := range test.Runs {
			v.zero(r)
		}
		model, err := core.Train(train, migration.Live)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
		}
		ab := Ablation{Variant: v.name, NRMSE: make(map[core.Role]float64)}
		for _, role := range core.Roles() {
			recs := test.Filter(migration.Live, role)
			if len(recs) == 0 {
				return nil, fmt.Errorf("experiments: ablation %s has no %v test records", v.name, role)
			}
			rep, err := core.EvaluateEnergy(model, recs)
			if err != nil {
				return nil, err
			}
			ab.NRMSE[role] = rep.NRMSE
		}
		out = append(out, ab)
	}
	return out, nil
}
