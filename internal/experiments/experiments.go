// Package experiments encodes the paper's experimental design (Table IIa):
// the CPULOAD and MEMLOAD scenario families, the campaign runner that
// executes them on the simulated testbed and converts runs into regression
// datasets, and the generators that reproduce every table (III–VII) and
// figure (2–7) of the evaluation.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Family identifies one of the paper's experiment families.
type Family string

// The five families of Table IIa, plus the hot/cold extension.
const (
	CPULoadSource Family = "CPULOAD-SOURCE"
	CPULoadTarget Family = "CPULOAD-TARGET"
	MemLoadVM     Family = "MEMLOAD-VM"
	MemLoadSource Family = "MEMLOAD-SOURCE"
	MemLoadTarget Family = "MEMLOAD-TARGET"
	// MemLoadHotCold is an extension beyond the paper: the MEMLOAD-VM
	// sweep with a skewed (hot/cold) dirtier instead of the uniform
	// pagedirtier, probing how working-set locality changes migration
	// energy.
	MemLoadHotCold Family = "MEMLOAD-HOTCOLD"
)

// Families returns the paper's five families in presentation order
// (extension families are run explicitly, not as part of "all").
func Families() []Family {
	return []Family{CPULoadSource, CPULoadTarget, MemLoadVM, MemLoadSource, MemLoadTarget}
}

// Point is one experimental point within a family: a load level (CPULOAD
// families and the host-load MEMLOAD families) or a dirty ratio
// (MEMLOAD-VM), for one migration kind.
type Point struct {
	Family Family
	Kind   migration.Kind
	// LoadVMs is the co-located load-cpu VM count (CPULOAD staircases and
	// MEMLOAD-SOURCE/TARGET).
	LoadVMs int
	// DirtyRatio is the pagedirtier target (MEMLOAD families).
	DirtyRatio units.Fraction
}

// Label renders the point the way the figure legends do ("3 VM", "55%").
func (p Point) Label() string {
	if p.Family == MemLoadVM {
		return p.DirtyRatio.Percent()
	}
	return fmt.Sprintf("%d VM", p.LoadVMs)
}

// Points enumerates the experimental points of a family. The CPULOAD
// families run both live and non-live; the MEMLOAD families are live-only
// ("since non-live migrations have DR(v,t) = 0").
func Points(f Family) ([]Point, error) {
	var out []Point
	switch f {
	case CPULoadSource, CPULoadTarget:
		for _, kind := range []migration.Kind{migration.NonLive, migration.Live} {
			for _, n := range workload.LoadLevels() {
				out = append(out, Point{Family: f, Kind: kind, LoadVMs: n})
			}
		}
	case MemLoadVM, MemLoadHotCold:
		for _, dr := range workload.DirtyLevels() {
			out = append(out, Point{Family: f, Kind: migration.Live, DirtyRatio: dr})
		}
	case MemLoadSource, MemLoadTarget:
		for _, n := range workload.LoadLevels() {
			out = append(out, Point{Family: f, Kind: migration.Live, LoadVMs: n, DirtyRatio: 0.95})
		}
	default:
		return nil, fmt.Errorf("experiments: unknown family %q", f)
	}
	return out, nil
}

// Scenario converts an experimental point into a runnable sim.Scenario on
// the given machine pair, per the configuration matrix of Table IIa.
func (p Point) Scenario(pair string, seed int64) (sim.Scenario, error) {
	sc := sim.Scenario{
		Name: fmt.Sprintf("%s/%s/%s", p.Family, p.Kind, p.Label()),
		Pair: pair,
		Kind: p.Kind,
		Seed: seed,
	}
	switch p.Family {
	case CPULoadSource:
		// Source swept 0–100%+, idle target, migrating-cpu at 100%.
		sc.MigratingType = vm.TypeMigratingCPU
		sc.MigratingProfile = workload.MatrixMultProfile()
		sc.SourceLoadVMs = p.LoadVMs
	case CPULoadTarget:
		// Source runs the migrating VM only; target swept.
		sc.MigratingType = vm.TypeMigratingCPU
		sc.MigratingProfile = workload.MatrixMultProfile()
		sc.TargetLoadVMs = p.LoadVMs
	case MemLoadVM:
		// Idle hosts; migrating-mem with swept dirty ratio.
		sc.MigratingType = vm.TypeMigratingMem
		sc.MigratingProfile = workload.PagedirtierProfile(p.DirtyRatio)
	case MemLoadHotCold:
		// Extension: same sweep, skewed dirtier.
		sc.MigratingType = vm.TypeMigratingMem
		sc.MigratingProfile = workload.HotColdMemProfile(p.DirtyRatio)
	case MemLoadSource:
		// Memory-intensive VM at 95%, source CPU swept, idle target.
		sc.MigratingType = vm.TypeMigratingMem
		sc.MigratingProfile = workload.PagedirtierProfile(p.DirtyRatio)
		sc.SourceLoadVMs = p.LoadVMs
	case MemLoadTarget:
		// Memory-intensive VM at 95%, target CPU swept.
		sc.MigratingType = vm.TypeMigratingMem
		sc.MigratingProfile = workload.PagedirtierProfile(p.DirtyRatio)
		sc.TargetLoadVMs = p.LoadVMs
	default:
		return sim.Scenario{}, fmt.Errorf("experiments: unknown family %q", p.Family)
	}
	return sc, nil
}

// Config tunes a campaign's cost/fidelity trade-off.
type Config struct {
	// Pair is the machine pair to run on.
	Pair string
	// MinRuns is the repeat floor per point (the paper used ≥ 10).
	MinRuns int
	// VarianceTol is the convergence tolerance (the paper's 10%).
	VarianceTol float64
	// Seed derives all run seeds.
	Seed int64
	// LoadLevels optionally overrides the 0,1,3,5,7,8 staircase (tests use
	// shorter sweeps).
	LoadLevels []int
	// DirtyLevels optionally overrides the MEMLOAD-VM sweep.
	DirtyLevels []units.Fraction
	// Workers bounds the campaign's concurrency: how many experimental
	// points (and, when points are fewer than workers, repeated runs within
	// a point) execute at once. 0 means runtime.NumCPU(); 1 recovers the
	// strictly sequential runner. Results are bit-identical for every
	// value — per-point seeds derive from the point index alone.
	Workers int
	// Cache optionally memoizes runs across families and campaigns (see
	// sim.NewCache). Families share points — every family revisits the
	// zero-load baseline, and suite campaigns overlap figure campaigns —
	// and a shared cache simulates each distinct (scenario, seed) block
	// once. nil runs uncached; cached results are bit-identical.
	Cache *sim.Cache
	// Scenarios optionally carries externally loaded scenarios (e.g.
	// compiled from the internal/scenario library) for RunScenarios to
	// execute under this config's repeat/worker/cache policy.
	Scenarios []sim.Scenario
	// Ctx optionally bounds every campaign run under this config: a done
	// context stops dispatching new points/runs and abandons in-flight
	// kernel steps, surfacing the context's error. nil means
	// context.Background(). Cancellation never changes results — any
	// campaign that completes is bit-identical.
	Ctx context.Context
}

// context returns the effective execution context.
func (c Config) context() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// DefaultConfig is the paper-faithful campaign configuration.
func DefaultConfig(pair string) Config {
	return Config{Pair: pair, MinRuns: 10, VarianceTol: 0.10, Seed: 1}
}

// withDefaults normalises a config.
func (c Config) withDefaults() Config {
	if c.Pair == "" {
		c.Pair = hw.PairM
	}
	if c.MinRuns <= 0 {
		c.MinRuns = 10
	}
	if c.VarianceTol <= 0 {
		c.VarianceTol = 0.10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Workers = parallel.Workers(c.Workers)
	return c
}

// points enumerates a family under the config's level overrides.
func (c Config) points(f Family) ([]Point, error) {
	pts, err := Points(f)
	if err != nil {
		return nil, err
	}
	if c.LoadLevels == nil && c.DirtyLevels == nil {
		return pts, nil
	}
	keepLoad := func(n int) bool {
		if c.LoadLevels == nil {
			return true
		}
		for _, l := range c.LoadLevels {
			if l == n {
				return true
			}
		}
		return false
	}
	keepDirty := func(d units.Fraction) bool {
		if c.DirtyLevels == nil {
			return true
		}
		for _, l := range c.DirtyLevels {
			if l == d {
				return true
			}
		}
		return false
	}
	var out []Point
	for _, p := range pts {
		switch p.Family {
		case MemLoadVM, MemLoadHotCold:
			if keepDirty(p.DirtyRatio) {
				out = append(out, p)
			}
		default:
			if keepLoad(p.LoadVMs) {
				out = append(out, p)
			}
		}
	}
	return out, nil
}

// shrinkTimings tightens warm-up and tail; small campaigns (tests) use it
// to cut wall-clock without touching migration physics.
func shrinkTimings(sc sim.Scenario) sim.Scenario {
	sc.PreMigration = 11 * time.Second // just enough for stabilisation
	sc.PostMigration = 6 * time.Second
	return sc
}
