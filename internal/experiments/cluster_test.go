package experiments

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/migration"
	"repro/internal/sim"
	"repro/internal/units"
)

// clusterFixture is a 2-move explicit timeline on one switch.
func clusterFixture() cluster.Config {
	return cluster.Config{
		Kind: migration.Live,
		Hosts: []cluster.Host{
			{Name: "a", Machine: "m01", VMs: []cluster.VM{
				{Name: "v1", MemBytes: 4 * units.GiB, BusyVCPUs: 4, DirtyRatio: 0.3},
			}},
			{Name: "b", Machine: "m01"},
			{Name: "c", Machine: "m01", VMs: []cluster.VM{
				{Name: "v2", MemBytes: 4 * units.GiB, BusyVCPUs: 2, DirtyRatio: 0.1},
			}},
		},
		Moves: []cluster.TimedMove{
			{VM: "v1", From: "a", To: "b"},
			{VM: "v2", From: "c", To: "b", At: 10 * time.Second},
		},
		Seed: 11,
	}
}

// TestRunClusterInheritsConfigPolicy: the experiments entry point hands
// the session's worker and cache budget to the engine and stays
// bit-identical to a direct sequential uncached run.
func TestRunClusterInheritsConfigPolicy(t *testing.T) {
	direct, err := cluster.Run(clusterFixture())
	if err != nil {
		t.Fatal(err)
	}
	cache := sim.NewCache(0)
	viaCfg, err := RunCluster(Config{Workers: 4, Cache: cache}, clusterFixture())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, viaCfg) {
		t.Error("RunCluster under workers+cache differs from the direct sequential run")
	}
	if _, misses := cache.Stats(); misses == 0 {
		t.Error("the config's cache was not used")
	}
}
