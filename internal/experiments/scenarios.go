package experiments

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/sim"
)

// ScenarioResult bundles the repeated runs of one externally supplied
// scenario (typically compiled from the internal/scenario library).
type ScenarioResult struct {
	Scenario sim.Scenario
	Runs     []*sim.RunResult
}

// RunScenarios executes loaded scenarios under the config's repeat,
// worker and cache policy — the campaign machinery of RunFamily applied
// to a caller-supplied scenario list instead of a Table IIa family. The
// explicit argument wins; with none, cfg.Scenarios is run. Scenarios fan
// out across cfg.Workers with the spare budget parallelising the repeats
// inside each scenario, and every scenario keeps its own seed (deriving
// one from the list position only when it has none), so results are
// bit-identical for every worker count and cache setting.
func RunScenarios(cfg Config, scs ...sim.Scenario) ([]*ScenarioResult, error) {
	cfg = cfg.withDefaults()
	if len(scs) == 0 {
		scs = cfg.Scenarios
	}
	if len(scs) == 0 {
		return nil, fmt.Errorf("experiments: no scenarios to run")
	}
	outer, inner := parallel.Split(cfg.Workers, len(scs))
	return parallel.MapCtx(cfg.context(), outer, len(scs), func(i int) (*ScenarioResult, error) {
		sc := scs[i]
		if sc.Seed == 0 {
			sc.Seed = cfg.Seed + int64(i)*7919
		}
		runs, err := cfg.Cache.RunRepeatedCtx(cfg.context(), sc, cfg.MinRuns, cfg.VarianceTol, inner)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %s: %w", sc.Name, err)
		}
		return &ScenarioResult{Scenario: sc, Runs: runs}, nil
	})
}
