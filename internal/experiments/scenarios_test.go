package experiments

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// scenListForTest builds two cheap, distinct scenarios.
func scenListForTest() []sim.Scenario {
	mk := func(name string, seed int64, loads int) sim.Scenario {
		return sim.Scenario{
			Name: name, Seed: seed, SourceLoadVMs: loads,
			MigratingProfile: workload.MatrixMultProfile(),
			PreMigration:     11 * time.Second, PostMigration: 6 * time.Second,
		}
	}
	return []sim.Scenario{mk("scen/a", 101, 0), mk("scen/b", 202, 1)}
}

func TestRunScenariosDeterministicAcrossWorkersAndCache(t *testing.T) {
	cfg := Config{MinRuns: 2, VarianceTol: 0.9, Seed: 1, Workers: 1}
	seq, err := RunScenarios(cfg, scenListForTest()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 {
		t.Fatalf("got %d results", len(seq))
	}

	cfg.Workers = 8
	cfg.Cache = sim.NewCache(0)
	par, err := RunScenarios(cfg, scenListForTest()...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if len(seq[i].Runs) != len(par[i].Runs) {
			t.Fatalf("scenario %d: %d vs %d runs", i, len(seq[i].Runs), len(par[i].Runs))
		}
		for j := range seq[i].Runs {
			a, b := seq[i].Runs[j], par[i].Runs[j]
			if a.SourceEnergy != b.SourceEnergy || a.TargetEnergy != b.TargetEnergy ||
				a.BytesSent != b.BytesSent || a.Bounds != b.Bounds {
				t.Errorf("scenario %d run %d differs between sequential-uncached and parallel-cached", i, j)
			}
		}
	}
}

func TestRunScenariosFromConfigField(t *testing.T) {
	cfg := Config{MinRuns: 2, VarianceTol: 0.9, Seed: 1, Workers: 2, Scenarios: scenListForTest()}
	res, err := RunScenarios(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("config-carried scenarios: got %d results", len(res))
	}
	if res[0].Scenario.Name != "scen/a" || res[1].Scenario.Name != "scen/b" {
		t.Errorf("result order broken: %s, %s", res[0].Scenario.Name, res[1].Scenario.Name)
	}
}

func TestRunScenariosEmpty(t *testing.T) {
	if _, err := RunScenarios(Config{}); err == nil {
		t.Fatal("no scenarios must be an error")
	}
}

func TestRunScenariosDerivesMissingSeeds(t *testing.T) {
	scs := scenListForTest()
	scs[1].Seed = 0 // forgotten seed: derived from the list position
	cfg := Config{MinRuns: 2, VarianceTol: 0.9, Seed: 7, Workers: 1}
	a, err := RunScenarios(cfg, scs...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenarios(cfg, scs...)
	if err != nil {
		t.Fatal(err)
	}
	if a[1].Runs[0].Scenario.Seed != b[1].Runs[0].Scenario.Seed {
		t.Error("derived seed not stable")
	}
	if a[1].Runs[0].Scenario.Seed == 0 {
		t.Error("seed not derived")
	}
}
