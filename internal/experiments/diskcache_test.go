package experiments

import (
	"reflect"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestCampaignDeterministicWithDiskCache extends the cache-on/off
// bit-identity guarantee to the persistent tier at the campaign layer:
// a cold disk-cached campaign matches the uncached reference row for
// row, and a fresh cache over the populated directory replays the whole
// campaign from artefacts — zero kernel runs — still row-identical.
func TestCampaignDeterministicWithDiskCache(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign integration test")
	}
	cfg := Config{
		Pair:        hw.PairM,
		MinRuns:     2,
		VarianceTol: 0.9,
		Seed:        43,
		LoadLevels:  []int{0, 8},
		DirtyLevels: []units.Fraction{0.05},
	}
	families := []Family{CPULoadSource}

	uncached := cfg
	uncached.Workers = 1
	ref, err := RunCampaign(uncached, families...)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	newCache := func() *sim.Cache {
		store, err := sim.NewDirStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return sim.NewCacheWithStore(0, store)
	}
	sameRows := func(label string, camp *Campaign) {
		t.Helper()
		if got, want := camp.Dataset.Len(), ref.Dataset.Len(); got != want {
			t.Fatalf("%s: %d rows, reference has %d", label, got, want)
		}
		for i := range ref.Dataset.Runs {
			if !reflect.DeepEqual(ref.Dataset.Runs[i], camp.Dataset.Runs[i]) {
				t.Fatalf("%s: row %d differs from the uncached reference", label, i)
			}
		}
	}

	cold := cfg
	cold.Workers = 8
	cold.Cache = newCache()
	campCold, err := RunCampaign(cold, families...)
	if err != nil {
		t.Fatal(err)
	}
	sameRows("cold", campCold)
	if st := cold.Cache.Snapshot(); st.KernelRuns == 0 || st.DiskHits != 0 {
		t.Errorf("cold stats implausible: %+v", st)
	}

	warm := cfg
	warm.Workers = 8
	warm.Cache = newCache()
	campWarm, err := RunCampaign(warm, families...)
	if err != nil {
		t.Fatal(err)
	}
	sameRows("warm", campWarm)
	if st := warm.Cache.Snapshot(); st.KernelRuns != 0 || st.DiskHits == 0 {
		t.Errorf("warm stats = %+v, want pure disk hits and zero kernel runs", st)
	}
}
