package experiments

import (
	"errors"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// Suite holds everything the evaluation tables need: campaigns on both
// machine pairs, the trained WAVM3 and baseline models, and the train/test
// split on the m-pair data.
type Suite struct {
	// M and O are the campaigns on the two machine pairs; O may be nil
	// when only the m-pair tables are wanted.
	M, O *Campaign
	// TrainM and TestM partition the m-pair runs (the paper trains on 20%).
	TrainM, TestM *core.Dataset
	// WAVM3 per migration kind (Tables III and IV).
	WAVM3NonLive, WAVM3Live *core.Model
	// The three baselines, trained once on the same training runs.
	Huang  *baseline.Huang
	Liu    *baseline.Liu
	Strunk *baseline.Strunk
	// IdleDelta is o-pair idle − m-pair idle, the C1→C2 shift.
	IdleDelta units.Watts
}

// TrainFraction is the paper's training share of the campaign data.
const TrainFraction = 0.20

// BuildSuite trains all four models from an m-pair campaign and keeps an
// optional o-pair campaign for cross-hardware validation.
func BuildSuite(m, o *Campaign) (*Suite, error) {
	if m == nil || m.Dataset == nil || m.Dataset.Len() == 0 {
		return nil, errors.New("experiments: suite needs an m-pair campaign")
	}
	train, test, err := m.Dataset.SplitRuns(TrainFraction, m.Config.Seed+17)
	if err != nil {
		return nil, err
	}
	s := &Suite{M: m, O: o, TrainM: train, TestM: test}

	if s.WAVM3NonLive, err = core.Train(train, migration.NonLive); err != nil {
		return nil, fmt.Errorf("experiments: training WAVM3 non-live: %w", err)
	}
	if s.WAVM3Live, err = core.Train(train, migration.Live); err != nil {
		return nil, fmt.Errorf("experiments: training WAVM3 live: %w", err)
	}
	if s.Huang, err = baseline.TrainHuang(train); err != nil {
		return nil, err
	}
	if s.Liu, err = baseline.TrainLiu(train); err != nil {
		return nil, err
	}
	if s.Strunk, err = baseline.TrainStrunk(train); err != nil {
		return nil, err
	}

	mSrc, _, err := hw.Pair(hw.PairM)
	if err != nil {
		return nil, err
	}
	oSrc, _, err := hw.Pair(hw.PairO)
	if err != nil {
		return nil, err
	}
	s.IdleDelta = oSrc.IdlePower() - mSrc.IdlePower()
	return s, nil
}

// wavm3For returns the kind-matched WAVM3 model.
func (s *Suite) wavm3For(kind migration.Kind) *core.Model {
	if kind == migration.Live {
		return s.WAVM3Live
	}
	return s.WAVM3NonLive
}

// CoeffRow is one row of Tables III/IV: a host's coefficients across the
// three phases.
type CoeffRow struct {
	Host       string
	Initiation core.PhaseCoeffs
	Transfer   core.PhaseCoeffs
	Activation core.PhaseCoeffs
}

// CoeffTable reproduces Table III (non-live) or IV (live).
type CoeffTable struct {
	ID   string
	Kind migration.Kind
	Rows []CoeffRow
}

// CoefficientTable extracts the fitted WAVM3 coefficients for one kind.
func (s *Suite) CoefficientTable(kind migration.Kind) (*CoeffTable, error) {
	m := s.wavm3For(kind)
	if m == nil {
		return nil, errors.New("experiments: model not trained")
	}
	id := "Table III"
	if kind == migration.Live {
		id = "Table IV"
	}
	t := &CoeffTable{ID: id, Kind: kind}
	for _, role := range core.Roles() {
		phases := m.Coeffs[role]
		t.Rows = append(t.Rows, CoeffRow{
			Host:       role.String(),
			Initiation: phases[trace.PhaseInitiation],
			Transfer:   phases[trace.PhaseTransfer],
			Activation: phases[trace.PhaseActivation],
		})
	}
	return t, nil
}

// NRMSECell is one entry of Table V.
type NRMSECell struct {
	Pair  string
	Kind  migration.Kind
	Role  core.Role
	NRMSE float64
}

// NRMSETable reproduces Table V: WAVM3's NRMSE per host on both pairs and
// both kinds. The o-pair prediction uses the bias-shifted model (C2).
type NRMSETable struct {
	ID    string
	Cells []NRMSECell
}

// Table5 evaluates WAVM3 everywhere it is evaluated in the paper.
func (s *Suite) Table5() (*NRMSETable, error) {
	out := &NRMSETable{ID: "Table V"}
	pairs := []struct {
		name string
		ds   *core.Dataset
		bias units.Watts
	}{
		{hw.PairM, s.TestM, 0},
	}
	if s.O != nil {
		pairs = append(pairs, struct {
			name string
			ds   *core.Dataset
			bias units.Watts
		}{hw.PairO, s.O.Dataset, s.IdleDelta})
	}
	for _, p := range pairs {
		for _, kind := range []migration.Kind{migration.NonLive, migration.Live} {
			model := s.wavm3For(kind).WithBiasShift(p.bias)
			for _, role := range core.Roles() {
				recs := p.ds.FilterPair(p.name, kind, role)
				if len(recs) == 0 {
					continue
				}
				rep, err := core.EvaluateEnergy(model, recs)
				if err != nil {
					return nil, err
				}
				out.Cells = append(out.Cells, NRMSECell{Pair: p.name, Kind: kind, Role: role, NRMSE: rep.NRMSE})
			}
		}
	}
	if len(out.Cells) == 0 {
		return nil, errors.New("experiments: Table V has no cells (empty test sets)")
	}
	return out, nil
}

// BaselineCoeffRow is one row of Table VI.
type BaselineCoeffRow struct {
	Model string
	Host  string
	Alpha float64
	Beta  float64 // only STRUNK uses it
	C     float64
}

// Table6 extracts the baseline training coefficients.
func (s *Suite) Table6() ([]BaselineCoeffRow, error) {
	if s.Huang == nil || s.Liu == nil || s.Strunk == nil {
		return nil, errors.New("experiments: baselines not trained")
	}
	var rows []BaselineCoeffRow
	for _, role := range core.Roles() {
		rows = append(rows, BaselineCoeffRow{Model: "HUANG", Host: role.String(),
			Alpha: s.Huang.Alpha[role], C: s.Huang.C[role]})
	}
	for _, role := range core.Roles() {
		rows = append(rows, BaselineCoeffRow{Model: "LIU", Host: role.String(),
			Alpha: s.Liu.Alpha[role], C: s.Liu.C[role]})
	}
	for _, role := range core.Roles() {
		rows = append(rows, BaselineCoeffRow{Model: "STRUNK", Host: role.String(),
			Alpha: s.Strunk.Alpha[role], Beta: s.Strunk.Beta[role], C: s.Strunk.C[role]})
	}
	return rows, nil
}

// ComparisonRow is one row of Table VII: one model on one host, with the
// three error metrics for both migration kinds.
type ComparisonRow struct {
	Model   string
	Host    string
	NonLive stats.ErrorReport
	Live    stats.ErrorReport
}

// Table7 runs the model comparison on the m-pair test runs.
func (s *Suite) Table7() ([]ComparisonRow, error) {
	if s.TestM == nil || s.TestM.Len() == 0 {
		return nil, errors.New("experiments: no test data for Table VII")
	}
	models := []core.EnergyModel{nil, s.Huang, s.Liu, s.Strunk} // nil slot = WAVM3 per kind
	names := []string{core.ModelName, "HUANG", "LIU", "STRUNK"}
	var rows []ComparisonRow
	for i, m := range models {
		for _, role := range core.Roles() {
			row := ComparisonRow{Model: names[i], Host: role.String()}
			for _, kind := range []migration.Kind{migration.NonLive, migration.Live} {
				recs := s.TestM.Filter(kind, role)
				if len(recs) == 0 {
					return nil, fmt.Errorf("experiments: no %v/%v test records", kind, role)
				}
				model := m
				if model == nil {
					model = s.wavm3For(kind)
				}
				rep, err := core.EvaluateEnergy(model, recs)
				if err != nil {
					return nil, err
				}
				if kind == migration.Live {
					row.Live = rep
				} else {
					row.NonLive = rep
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// CrossValidateLive runs k-fold cross-validation of the live WAVM3 model
// over the whole m-pair campaign — an extension over the paper's single
// 20/80 split that checks the reported accuracy is not split luck.
func (s *Suite) CrossValidateLive(k int) (*core.CVResult, error) {
	if s.M == nil || s.M.Dataset == nil {
		return nil, errors.New("experiments: no m-pair campaign for cross-validation")
	}
	return core.CrossValidate(s.M.Dataset, migration.Live, k, s.M.Config.Seed+29)
}
