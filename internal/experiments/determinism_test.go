package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestCampaignDeterministicAcrossWorkers is the parallel engine's
// regression guarantee: the same campaign run strictly sequentially
// (Workers=1) and with a wide worker pool (Workers=8) must produce
// bit-identical datasets — same records, same order, same observation
// values — and therefore bit-identical fitted coefficients.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign integration test")
	}
	cfg := Config{
		Pair:        hw.PairM,
		MinRuns:     2,
		VarianceTol: 0.9,
		Seed:        41,
		LoadLevels:  []int{0, 8},
		DirtyLevels: []units.Fraction{0.05, 0.95},
	}
	families := []Family{CPULoadSource, MemLoadVM}

	seq := cfg
	seq.Workers = 1
	par := cfg
	par.Workers = 8

	campSeq, err := RunCampaign(seq, families...)
	if err != nil {
		t.Fatal(err)
	}
	campPar, err := RunCampaign(par, families...)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := campPar.Dataset.Len(), campSeq.Dataset.Len(); got != want {
		t.Fatalf("parallel dataset has %d rows, sequential %d", got, want)
	}
	for i := range campSeq.Dataset.Runs {
		s, p := campSeq.Dataset.Runs[i], campPar.Dataset.Runs[i]
		if s.RunID != p.RunID {
			t.Fatalf("row %d: RunID %q (seq) vs %q (par) — row order depends on workers", i, s.RunID, p.RunID)
		}
		if !reflect.DeepEqual(s, p) {
			t.Fatalf("row %d (%s): records differ between Workers=1 and Workers=8", i, s.RunID)
		}
	}

	// Same point structure and same per-point run counts (the convergence
	// rule must truncate speculative runs identically).
	if len(campSeq.Results) != len(campPar.Results) {
		t.Fatalf("point counts differ: %d vs %d", len(campSeq.Results), len(campPar.Results))
	}
	for i := range campSeq.Results {
		if len(campSeq.Results[i].Runs) != len(campPar.Results[i].Runs) {
			t.Errorf("point %d: %d runs (seq) vs %d (par)",
				i, len(campSeq.Results[i].Runs), len(campPar.Results[i].Runs))
		}
	}

	// The fitted models must come out identical in every coefficient.
	for _, kind := range []migration.Kind{migration.NonLive, migration.Live} {
		mSeq, err := core.Train(campSeq.Dataset, kind)
		if err != nil {
			t.Fatal(err)
		}
		mPar, err := core.Train(campPar.Dataset, kind)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mSeq.Coeffs, mPar.Coeffs) {
			t.Errorf("%v PhaseCoeffs differ between Workers=1 and Workers=8:\nseq: %+v\npar: %+v",
				kind, mSeq.Coeffs, mPar.Coeffs)
		}
	}
}

// TestCampaignDeterministicCacheOnOff is the run cache's regression
// guarantee, the cache-flavoured sibling of the workers test above: the
// same campaign with the cache off and with a shared cache (sequentially
// and with a wide pool, so singleflight paths are exercised) must produce
// bit-identical datasets row for row.
func TestCampaignDeterministicCacheOnOff(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign integration test")
	}
	cfg := Config{
		Pair:        hw.PairM,
		MinRuns:     2,
		VarianceTol: 0.9,
		Seed:        43,
		LoadLevels:  []int{0, 8},
		DirtyLevels: []units.Fraction{0.05, 0.95},
	}
	// Both CPULOAD families: their zero-load points are physically
	// identical across families, so the cached run must actually hit.
	families := []Family{CPULoadSource, CPULoadTarget}

	uncached := cfg
	uncached.Workers = 1
	campOff, err := RunCampaign(uncached, families...)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		cached := cfg
		cached.Workers = workers
		cached.Cache = sim.NewCache(0)
		campOn, err := RunCampaign(cached, families...)
		if err != nil {
			t.Fatal(err)
		}
		hits, misses := cached.Cache.Stats()
		if hits == 0 {
			t.Errorf("workers=%d: overlapping families produced no cache hits (%d misses)", workers, misses)
		}
		if got, want := campOn.Dataset.Len(), campOff.Dataset.Len(); got != want {
			t.Fatalf("workers=%d: cached dataset has %d rows, uncached %d", workers, got, want)
		}
		for i := range campOff.Dataset.Runs {
			off, on := campOff.Dataset.Runs[i], campOn.Dataset.Runs[i]
			if !reflect.DeepEqual(off, on) {
				t.Fatalf("workers=%d row %d (%s): records differ between cache off and on", workers, i, off.RunID)
			}
		}
	}
}
