package experiments

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

func TestAblationVariantCatalogue(t *testing.T) {
	vs := ablationVariants()
	if len(vs) != 5 {
		t.Fatalf("%d variants, want 5", len(vs))
	}
	want := []string{"full", "no-DR", "no-BW", "no-VMCPU", "no-HostCPU"}
	for i, v := range vs {
		if v.name != want[i] {
			t.Errorf("variant %d = %q, want %q", i, v.name, want[i])
		}
	}
}

// ablationRecord is a record with every feature non-zero, so each
// variant's zeroing is observable.
func ablationRecord() *core.RunRecord {
	return &core.RunRecord{
		RunID: "ab#0", Obs: []trace.Observation{
			{FeatureSample: trace.FeatureSample{HostCPU: 3, VMCPU: 1, DirtyRatio: 0.5, Bandwidth: 1e9}, Power: 500, Phase: trace.PhaseTransfer},
			{At: time.Second, FeatureSample: trace.FeatureSample{At: time.Second, HostCPU: 2, VMCPU: 1, DirtyRatio: 0.4, Bandwidth: 2e9}, Power: 480, Phase: trace.PhaseTransfer},
		},
		MeasuredEnergy: 100,
	}
}

func TestAblationVariantsZeroExactlyTheirFeature(t *testing.T) {
	for _, v := range ablationVariants() {
		r := ablationRecord()
		v.zero(r)
		for i, o := range r.Obs {
			zeroed := map[string]bool{
				"DR":      o.DirtyRatio == 0,
				"BW":      o.Bandwidth == 0,
				"VMCPU":   o.VMCPU == 0,
				"HostCPU": o.HostCPU == 0,
			}
			for feat, isZero := range zeroed {
				wantZero := v.name == "no-"+feat
				if isZero != wantZero {
					t.Errorf("variant %s obs %d: %s zeroed=%v, want %v", v.name, i, feat, isZero, wantZero)
				}
			}
		}
	}
}

func TestCloneDatasetIsDeep(t *testing.T) {
	ds := &core.Dataset{}
	if err := ds.Add(ablationRecord()); err != nil {
		t.Fatal(err)
	}
	c := cloneDataset(ds)
	if c.Len() != ds.Len() {
		t.Fatalf("clone has %d records, want %d", c.Len(), ds.Len())
	}
	// Mutating the clone must not leak into the original.
	c.Runs[0].Obs[0].DirtyRatio = 0
	c.Runs[0].RunID = "mutated"
	if ds.Runs[0].Obs[0].DirtyRatio != 0.5 {
		t.Error("observation mutation leaked into the source dataset")
	}
	if ds.Runs[0].RunID != "ab#0" {
		t.Error("record mutation leaked into the source dataset")
	}
}

func TestAblateLiveValidation(t *testing.T) {
	if _, err := AblateLive(nil); err == nil {
		t.Error("nil suite must fail")
	}
	if _, err := AblateLive(&Suite{}); err == nil {
		t.Error("suite without datasets must fail")
	}
}
