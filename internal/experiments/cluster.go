package experiments

import (
	"repro/internal/cluster"
)

// RunCluster executes an N-host cluster timeline under this config's
// worker and cache policy — the uniform entry point runners use so
// cluster scenarios, like campaigns and scenario lists, inherit the
// session's concurrency budget and run cache. The timeline's own
// fields (hosts, policy, moves, seed) come from the cluster config;
// results are bit-identical for every worker count and cache setting.
func RunCluster(cfg Config, cc cluster.Config) (*cluster.Report, error) {
	cfg = cfg.withDefaults()
	cc.Workers = cfg.Workers
	cc.Cache = cfg.Cache
	cc.Ctx = cfg.context()
	return cluster.Run(cc)
}
