package experiments

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/units"
)

// Shared test campaigns: the m- and o-pair campaigns behind the suite
// tests are by far their dominant cost, and every test reads the suite
// without mutating it (AblateLive clones before zeroing features), so they
// are run once per test binary and shared. The campaigns themselves use
// the default parallel runner; determinism of the result is covered by
// TestCampaignDeterministicAcrossWorkers.
var (
	smallSuiteMu sync.Mutex
	smallCampM   *Campaign
	smallCampO   *Campaign
	smallSuites  = map[bool]*Suite{}
)

// buildSmallSuite returns the cached suite for a reduced two-family
// campaign (CPU staircase for both kinds, dirty sweep for live) with all
// four models trained.
func buildSmallSuite(t *testing.T, withO bool) *Suite {
	t.Helper()
	smallSuiteMu.Lock()
	defer smallSuiteMu.Unlock()
	if s := smallSuites[withO]; s != nil {
		return s
	}
	cfg := Config{
		Pair:        hw.PairM,
		MinRuns:     3,
		VarianceTol: 0.9,
		Seed:        11,
		LoadLevels:  []int{0, 5, 8},
		DirtyLevels: []units.Fraction{0.05, 0.55, 0.95},
	}
	if smallCampM == nil {
		m, err := RunCampaign(cfg, CPULoadSource, CPULoadTarget, MemLoadVM)
		if err != nil {
			t.Fatal(err)
		}
		smallCampM = m
	}
	var o *Campaign
	if withO {
		if smallCampO == nil {
			ocfg := cfg
			ocfg.Pair = hw.PairO
			ocfg.Seed = 23
			ocfg.MinRuns = 2
			ocfg.LoadLevels = []int{0, 8}
			ocfg.DirtyLevels = []units.Fraction{0.55}
			oc, err := RunCampaign(ocfg, CPULoadSource, CPULoadTarget, MemLoadVM)
			if err != nil {
				t.Fatal(err)
			}
			smallCampO = oc
		}
		o = smallCampO
	}
	s, err := BuildSuite(smallCampM, o)
	if err != nil {
		t.Fatal(err)
	}
	smallSuites[withO] = s
	return s
}

func TestSuiteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign integration test")
	}
	s := buildSmallSuite(t, true)

	// Tables III / IV: coefficients exist for both hosts and all phases,
	// with physically sensible signs.
	for _, kind := range []migration.Kind{migration.NonLive, migration.Live} {
		ct, err := s.CoefficientTable(kind)
		if err != nil {
			t.Fatal(err)
		}
		if len(ct.Rows) != 2 {
			t.Fatalf("%s has %d rows, want 2", ct.ID, len(ct.Rows))
		}
		for _, row := range ct.Rows {
			for name, pc := range map[string]core.PhaseCoeffs{
				"initiation": row.Initiation, "transfer": row.Transfer, "activation": row.Activation,
			} {
				if pc.C <= 0 {
					t.Errorf("%s %s/%s C = %v, want > 0 (idle power is in the bias)", ct.ID, row.Host, name, pc.C)
				}
				if pc.Alpha < 0 || pc.Beta < 0 || pc.Gamma < 0 || pc.Delta < 0 {
					t.Errorf("%s %s/%s has a negative slope: %+v", ct.ID, row.Host, name, pc)
				}
			}
		}
	}

	// Table V: NRMSE on both pairs, both kinds. The o-pair (trained on m,
	// bias-shifted) should be in a sane range, and every cell finite.
	t5, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Cells) != 8 { // 2 pairs × 2 kinds × 2 roles
		t.Fatalf("Table V has %d cells, want 8", len(t5.Cells))
	}
	for _, c := range t5.Cells {
		if c.NRMSE <= 0 || c.NRMSE > 1.5 {
			t.Errorf("Table V %s/%v/%v NRMSE = %v, implausible", c.Pair, c.Kind, c.Role, c.NRMSE)
		}
	}

	// Table VI: coefficients for all three baselines and both hosts.
	t6, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(t6) != 6 {
		t.Fatalf("Table VI has %d rows, want 6", len(t6))
	}

	// Table VII: the paper's headline orderings.
	t7, err := s.Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(t7) != 8 { // 4 models × 2 hosts
		t.Fatalf("Table VII has %d rows, want 8", len(t7))
	}
	get := func(model, host string) ComparisonRow {
		for _, r := range t7 {
			if r.Model == model && r.Host == host {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", model, host)
		return ComparisonRow{}
	}
	for _, host := range []string{"Source", "Target"} {
		w := get(core.ModelName, host)
		h := get("HUANG", host)
		l := get("LIU", host)
		st := get("STRUNK", host)
		// Live migration: WAVM3 must beat HUANG (the paper's 24% headline)
		// and both workload-blind models.
		if w.Live.NRMSE >= h.Live.NRMSE {
			t.Errorf("%s live: WAVM3 NRMSE %.3f !< HUANG %.3f", host, w.Live.NRMSE, h.Live.NRMSE)
		}
		if w.Live.NRMSE >= l.Live.NRMSE {
			t.Errorf("%s live: WAVM3 NRMSE %.3f !< LIU %.3f", host, w.Live.NRMSE, l.Live.NRMSE)
		}
		if w.Live.NRMSE >= st.Live.NRMSE {
			t.Errorf("%s live: WAVM3 NRMSE %.3f !< STRUNK %.3f", host, w.Live.NRMSE, st.Live.NRMSE)
		}
		// Non-live: WAVM3 and HUANG are close (both CPU-aware); WAVM3 must
		// not lose to the workload-blind models.
		if w.NonLive.NRMSE >= l.NonLive.NRMSE {
			t.Errorf("%s non-live: WAVM3 NRMSE %.3f !< LIU %.3f", host, w.NonLive.NRMSE, l.NonLive.NRMSE)
		}
		// RMSE ≥ MAE sanity on every cell.
		for _, rep := range []struct{ mae, rmse float64 }{
			{w.Live.MAE, w.Live.RMSE}, {w.NonLive.MAE, w.NonLive.RMSE},
			{h.Live.MAE, h.Live.RMSE}, {l.Live.MAE, l.Live.RMSE}, {st.Live.MAE, st.Live.RMSE},
		} {
			if rep.rmse < rep.mae {
				t.Errorf("%s: RMSE %v < MAE %v", host, rep.rmse, rep.mae)
			}
		}
	}

	// The paper's secondary observation — HUANG degrades more from
	// non-live to live than WAVM3 — holds on the full campaign (asserted
	// against the bench output in EXPERIMENTS.md); on this reduced sweep
	// the NRMSE denominators per kind are too narrow to compare reliably,
	// so here we only require WAVM3's live advantage over HUANG to be
	// decisive on both hosts (checked above).
}

func TestBuildSuiteValidation(t *testing.T) {
	if _, err := BuildSuite(nil, nil); err == nil {
		t.Error("nil campaign must fail")
	}
	if _, err := BuildSuite(&Campaign{Dataset: &core.Dataset{}}, nil); err == nil {
		t.Error("empty campaign must fail")
	}
}

func TestSuiteIdleDeltaNegative(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign integration test")
	}
	s := buildSmallSuite(t, false)
	// Moving from Opterons to Xeons lowers idle power: delta < 0, so the
	// C2 constants sit below C1 as in the paper.
	if s.IdleDelta >= 0 {
		t.Errorf("idle delta = %v, want negative (o-pair idles lower)", s.IdleDelta)
	}
	// Without an o-campaign Table V still produces the m-pair cells.
	t5, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Cells) != 4 {
		t.Errorf("m-only Table V has %d cells, want 4", len(t5.Cells))
	}
}

func TestAblateLive(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign integration test")
	}
	s := buildSmallSuite(t, false)
	abs, err := AblateLive(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(abs) != 5 {
		t.Fatalf("ablations = %d, want 5", len(abs))
	}
	byName := map[string]Ablation{}
	for _, a := range abs {
		byName[a.Variant] = a
	}
	full := byName["full"]
	// Removing the host-CPU regressor must hurt the most: it carries the
	// CPULOAD staircase.
	if byName["no-HostCPU"].NRMSE[core.Source] <= full.NRMSE[core.Source] {
		t.Errorf("no-HostCPU NRMSE %.4f should exceed full %.4f",
			byName["no-HostCPU"].NRMSE[core.Source], full.NRMSE[core.Source])
	}
	// Removing DR must hurt on the source (the dirtying happens there).
	if byName["no-DR"].NRMSE[core.Source] < full.NRMSE[core.Source] {
		t.Errorf("no-DR NRMSE %.4f should not beat full %.4f",
			byName["no-DR"].NRMSE[core.Source], full.NRMSE[core.Source])
	}
	// Every variant stays finite and positive.
	for _, a := range abs {
		for role, v := range a.NRMSE {
			if v <= 0 || v > 2 {
				t.Errorf("%s/%v NRMSE = %v, implausible", a.Variant, role, v)
			}
		}
	}
	if _, err := AblateLive(nil); err == nil {
		t.Error("nil suite must fail")
	}
}

func TestCrossValidateLive(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign integration test")
	}
	s := buildSmallSuite(t, false)
	cv, err := s.CrossValidateLive(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, role := range core.Roles() {
		m := cv.MeanNRMSE(role)
		if m <= 0 || m > 0.5 {
			t.Errorf("%v CV mean NRMSE = %v, implausible", role, m)
		}
	}
	if _, err := (&Suite{}).CrossValidateLive(3); err == nil {
		t.Error("suite without campaign must fail")
	}
}
