package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vm"
)

// PointResult bundles the repeated runs of one experimental point.
type PointResult struct {
	Point Point
	Runs  []*sim.RunResult
}

// Campaign is the outcome of running one or more families on a pair:
// the raw per-point runs plus the flattened regression dataset.
type Campaign struct {
	Config  Config
	Results []*PointResult
	Dataset *core.Dataset
}

// RunFamily executes every point of one family under the config and
// returns its point results (no dataset assembly). Points fan out across
// cfg.Workers; when the family has fewer points than workers, the spare
// budget parallelises the repeated runs inside each point. Point i always
// derives its seed as cfg.Seed + i*7919, so every worker count produces
// the bit-identical result sequence.
func RunFamily(cfg Config, f Family) ([]*PointResult, error) {
	cfg = cfg.withDefaults()
	pts, err := cfg.points(f)
	if err != nil {
		return nil, err
	}
	pointWorkers, runWorkers := parallel.Split(cfg.Workers, len(pts))
	return parallel.MapCtx(cfg.context(), pointWorkers, len(pts), func(i int) (*PointResult, error) {
		p := pts[i]
		sc, err := p.Scenario(cfg.Pair, cfg.Seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		sc = shrinkTimings(sc)
		runs, err := cfg.Cache.RunRepeatedCtx(cfg.context(), sc, cfg.MinRuns, cfg.VarianceTol, runWorkers)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s point %s: %w", f, p.Label(), err)
		}
		return &PointResult{Point: p, Runs: runs}, nil
	})
}

// RunCampaign executes the given families (all five when nil) and builds
// the regression dataset from every run. Families execute in order — each
// one already fans its points out across the full cfg.Workers budget — and
// dataset assembly walks the results in family/point/run order, so the
// dataset row order is independent of the worker count.
func RunCampaign(cfg Config, families ...Family) (*Campaign, error) {
	cfg = cfg.withDefaults()
	if len(families) == 0 {
		families = Families()
	}
	camp := &Campaign{Config: cfg, Dataset: &core.Dataset{}}
	for _, f := range families {
		prs, err := RunFamily(cfg, f)
		if err != nil {
			return nil, err
		}
		camp.Results = append(camp.Results, prs...)
	}
	for _, pr := range camp.Results {
		for i, run := range pr.Runs {
			id := fmt.Sprintf("%s#%d", run.Scenario.Name, i)
			for _, role := range core.Roles() {
				rec, err := RecordFromRun(run, role, id)
				if err != nil {
					return nil, err
				}
				if err := camp.Dataset.Add(rec); err != nil {
					return nil, err
				}
			}
		}
	}
	return camp, nil
}

// RecordFromRun converts one simulated run into a regression record for
// one host role: aligned observations inside [ms, me], the measured
// migration energy, and the per-run aggregates the baselines use.
func RecordFromRun(run *sim.RunResult, role core.Role, id string) (*core.RunRecord, error) {
	pt, ft := run.Source, run.SourceFeatures
	energy := run.SourceEnergy
	if role == core.Target {
		pt, ft = run.Target, run.TargetFeatures
		energy = run.TargetEnergy
	}
	obs, err := trace.Align(pt, ft, run.Bounds)
	if err != nil {
		return nil, fmt.Errorf("experiments: aligning %s/%v: %w", id, role, err)
	}
	typ, err := vm.Lookup(run.Scenario.MigratingType)
	if err != nil {
		return nil, err
	}
	rec := &core.RunRecord{
		Pair:           run.Scenario.Pair,
		Kind:           run.Scenario.Kind,
		Role:           role,
		RunID:          fmt.Sprintf("%s/%v", id, role),
		Scenario:       run.Scenario.Name,
		Obs:            obs,
		MeasuredEnergy: energy.Total(),
		BytesSent:      run.BytesSent,
		VMMem:          typ.RAM,
		MeanBandwidth:  meanTransferBandwidth(obs),
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}

// meanTransferBandwidth averages BW(S,T,t) over the transfer-phase
// observations (STRUNK's BW(S,T) input).
func meanTransferBandwidth(obs []trace.Observation) units.BitsPerSecond {
	var vals []float64
	for _, o := range obs {
		if o.Phase == trace.PhaseTransfer && o.Bandwidth > 0 {
			vals = append(vals, float64(o.Bandwidth))
		}
	}
	if len(vals) == 0 {
		return 0
	}
	return units.BitsPerSecond(stats.Mean(vals))
}
