package experiments

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/units"
)

func TestPointsEnumeration(t *testing.T) {
	cases := []struct {
		f    Family
		want int
	}{
		{CPULoadSource, 12}, // 6 levels × 2 kinds
		{CPULoadTarget, 12},
		{MemLoadVM, 6},     // 6 dirty levels, live only
		{MemLoadSource, 6}, // 6 load levels, live only
		{MemLoadTarget, 6},
	}
	for _, c := range cases {
		pts, err := Points(c.f)
		if err != nil {
			t.Fatalf("%s: %v", c.f, err)
		}
		if len(pts) != c.want {
			t.Errorf("%s has %d points, want %d", c.f, len(pts), c.want)
		}
	}
	if _, err := Points(Family("bogus")); err == nil {
		t.Error("unknown family must fail")
	}
	if len(Families()) != 5 {
		t.Error("five families expected")
	}
}

func TestMemLoadFamiliesAreLiveOnly(t *testing.T) {
	for _, f := range []Family{MemLoadVM, MemLoadSource, MemLoadTarget} {
		pts, _ := Points(f)
		for _, p := range pts {
			if p.Kind != migration.Live {
				t.Errorf("%s has a %v point; MEMLOAD is live-only", f, p.Kind)
			}
		}
	}
}

func TestMemLoadHostSweepsPinDirtyRatio(t *testing.T) {
	for _, f := range []Family{MemLoadSource, MemLoadTarget} {
		pts, _ := Points(f)
		for _, p := range pts {
			if p.DirtyRatio != 0.95 {
				t.Errorf("%s point %s has DR %v, want 0.95", f, p.Label(), p.DirtyRatio)
			}
		}
	}
}

func TestPointLabels(t *testing.T) {
	p := Point{Family: CPULoadSource, LoadVMs: 3}
	if p.Label() != "3 VM" {
		t.Errorf("label = %q", p.Label())
	}
	p = Point{Family: MemLoadVM, DirtyRatio: 0.55}
	if p.Label() != "55%" {
		t.Errorf("label = %q", p.Label())
	}
}

func TestPointScenarioMapping(t *testing.T) {
	// CPULOAD-SOURCE loads the source; CPULOAD-TARGET the target.
	p := Point{Family: CPULoadSource, Kind: migration.Live, LoadVMs: 5}
	sc, err := p.Scenario(hw.PairM, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sc.SourceLoadVMs != 5 || sc.TargetLoadVMs != 0 {
		t.Errorf("CPULOAD-SOURCE loads = %d/%d, want 5/0", sc.SourceLoadVMs, sc.TargetLoadVMs)
	}
	if sc.MigratingType != "migrating-cpu" {
		t.Errorf("migrating type = %s", sc.MigratingType)
	}
	p = Point{Family: CPULoadTarget, Kind: migration.NonLive, LoadVMs: 7}
	sc, _ = p.Scenario(hw.PairM, 1)
	if sc.SourceLoadVMs != 0 || sc.TargetLoadVMs != 7 {
		t.Errorf("CPULOAD-TARGET loads = %d/%d, want 0/7", sc.SourceLoadVMs, sc.TargetLoadVMs)
	}
	p = Point{Family: MemLoadVM, Kind: migration.Live, DirtyRatio: 0.35}
	sc, _ = p.Scenario(hw.PairM, 1)
	if sc.MigratingType != "migrating-mem" {
		t.Errorf("MEMLOAD migrating type = %s", sc.MigratingType)
	}
	if sc.MigratingProfile.WorkingSet != 0.35 {
		t.Errorf("working set = %v, want 0.35", sc.MigratingProfile.WorkingSet)
	}
	if _, err := (Point{Family: "bogus"}).Scenario(hw.PairM, 1); err == nil {
		t.Error("unknown family must fail")
	}
}

func TestConfigPointFiltering(t *testing.T) {
	cfg := Config{LoadLevels: []int{0, 8}, DirtyLevels: []units.Fraction{0.95}}
	pts, err := cfg.withDefaults().points(CPULoadSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 { // 2 kinds × 2 levels
		t.Errorf("filtered CPULOAD-SOURCE = %d points, want 4", len(pts))
	}
	pts, err = cfg.withDefaults().points(MemLoadVM)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Errorf("filtered MEMLOAD-VM = %d points, want 1", len(pts))
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(hw.PairM)
	if cfg.MinRuns != 10 || cfg.VarianceTol != 0.10 {
		t.Errorf("default config = %+v, want the paper's ≥10 runs / 10%% rule", cfg)
	}
}

// tinyConfig keeps integration runs fast: two repeats, the extreme load
// levels only.
func tinyConfig(seed int64) Config {
	return Config{
		Pair:        hw.PairM,
		MinRuns:     2,
		VarianceTol: 0.95,
		Seed:        seed,
		LoadLevels:  []int{0, 8},
		DirtyLevels: []units.Fraction{0.05, 0.95},
	}
}

func TestRunFamilyAndDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign integration test")
	}
	camp, err := RunCampaign(tinyConfig(3), CPULoadSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Results) != 4 { // 2 kinds × 2 levels
		t.Fatalf("campaign points = %d, want 4", len(camp.Results))
	}
	// Each point ran at least MinRuns times; dataset has source+target
	// records per run.
	var runs int
	for _, pr := range camp.Results {
		if len(pr.Runs) < 2 {
			t.Errorf("point %s has %d runs", pr.Point.Label(), len(pr.Runs))
		}
		runs += len(pr.Runs)
	}
	if camp.Dataset.Len() != 2*runs {
		t.Errorf("dataset has %d records for %d runs, want %d", camp.Dataset.Len(), runs, 2*runs)
	}
	// Records carry the aggregates the baselines need.
	for _, r := range camp.Dataset.Runs {
		if r.VMMem != 4*units.GiB {
			t.Fatalf("record %s VMMem = %v", r.RunID, r.VMMem)
		}
		if r.BytesSent <= 0 {
			t.Fatalf("record %s has no transfer size", r.RunID)
		}
		if r.MeanBandwidth <= 0 {
			t.Fatalf("record %s has no mean bandwidth", r.RunID)
		}
	}
}

func TestFamilyFigureShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign integration test")
	}
	cfg := tinyConfig(5)
	prs, err := RunFamily(cfg, CPULoadSource)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := FamilyFigure(CPULoadSource, prs)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "Fig. 3" {
		t.Errorf("figure ID = %s", fig.ID)
	}
	if len(fig.Panels) != 4 {
		t.Fatalf("CPULOAD figure has %d panels, want 4", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.Series) != 2 { // two load levels in tinyConfig
			t.Errorf("panel %q has %d series, want 2", p.Name, len(p.Series))
		}
		for _, s := range p.Series {
			if s.Trace.Len() < 10 {
				t.Errorf("panel %q series %q suspiciously short", p.Name, s.Label)
			}
		}
	}
	if _, err := FamilyFigure(Family("bogus"), prs); err == nil {
		t.Error("unknown family must fail")
	}
}

func TestFigure2(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign integration test")
	}
	fig, err := Figure2(Config{Pair: hw.PairM, Seed: 2, MinRuns: 2, VarianceTol: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 2 {
		t.Fatalf("Fig. 2 has %d panels, want 2", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.Series) != 2 {
			t.Errorf("panel %q must show source and target", p.Name)
		}
		for _, s := range p.Series {
			if err := s.Bounds.Validate(); err != nil {
				t.Errorf("panel %q series %q bounds: %v", p.Name, s.Label, err)
			}
		}
	}
}

func TestHotColdExtensionFamily(t *testing.T) {
	pts, err := Points(MemLoadHotCold)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("extension family has %d points, want 6", len(pts))
	}
	sc, err := pts[0].Scenario(hw.PairM, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sc.MigratingProfile.Name != "hotcold" || sc.MigratingProfile.HotProb == 0 {
		t.Errorf("extension scenario profile = %+v", sc.MigratingProfile)
	}
	// Not part of the paper's canonical five.
	for _, f := range Families() {
		if f == MemLoadHotCold {
			t.Error("extension family must not be in Families()")
		}
	}
}
