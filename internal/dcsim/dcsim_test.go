package dcsim

import (
	"testing"
	"time"

	"repro/internal/consolidation"
	"repro/internal/migration"
	"repro/internal/units"
)

func gib(n int) units.Bytes { return units.Bytes(n) * units.GiB }

// stubCost prices moves the way WAVM3 qualitatively does, for planning.
type stubCost struct{}

func (stubCost) Cost(vm consolidation.VMState, srcBusy, dstBusy float64) (consolidation.MigrationCost, error) {
	gb := float64(vm.MemBytes) / float64(units.GiB)
	expansion := 1 + 2*float64(vm.DirtyRatio)
	slowdown := 1 + dstBusy/32 + srcBusy/64
	return consolidation.MigrationCost{
		Energy:   units.Joules(15_000 * gb * expansion * slowdown),
		Duration: time.Duration(40 * expansion * slowdown * float64(time.Second)),
	}, nil
}

// testDC is a data centre where the two policies make different choices:
// a dirty-memory VM that FFD routes to the busy first-fit host.
func testDC() []consolidation.HostState {
	return []consolidation.HostState{
		{Name: "busy", Threads: 32, MemBytes: gib(64), IdlePower: 440, VMs: []consolidation.VMState{
			{Name: "y", MemBytes: gib(4), BusyVCPUs: 20, DirtyRatio: 0.1},
		}},
		{Name: "calm", Threads: 32, MemBytes: gib(64), IdlePower: 440, VMs: []consolidation.VMState{
			{Name: "x", MemBytes: gib(4), BusyVCPUs: 4, DirtyRatio: 0.1},
		}},
		{Name: "drainme", Threads: 32, MemBytes: gib(64), IdlePower: 440, VMs: []consolidation.VMState{
			{Name: "dirty", MemBytes: gib(4), BusyVCPUs: 2, DirtyRatio: 0.9},
		}},
	}
}

func TestExecutePlanMeasuresMoves(t *testing.T) {
	hosts := testDC()
	plan, err := consolidation.EnergyAware{Model: stubCost{}}.Plan(hosts, consolidation.Config{Horizon: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) == 0 {
		t.Fatal("planning produced no moves")
	}
	ex := Executor{Kind: migration.Live, Seed: 71}
	rep, err := ex.ExecutePlan("energy-aware", plan, hosts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Moves) != len(plan.Moves) {
		t.Fatalf("executed %d of %d moves", len(rep.Moves), len(plan.Moves))
	}
	var sum units.Joules
	for _, m := range rep.Moves {
		if m.MeasuredEnergy <= 0 || m.Duration <= 0 || m.BytesSent <= 0 {
			t.Errorf("move %v has degenerate measurements: %+v", m.Move.VM, m)
		}
		sum += m.MeasuredEnergy
	}
	if sum != rep.Total {
		t.Errorf("total %v != sum of moves %v", rep.Total, sum)
	}
}

// TestEnergyAwareBeatsFFDMeasured is the reproduction's end-to-end claim:
// when both policies' plans are *executed* on the simulated testbed, the
// energy-aware plan's measured migration energy undercuts the
// first-fit-decreasing plan's, provided both free the same hosts.
func TestEnergyAwareBeatsFFDMeasured(t *testing.T) {
	hosts := testDC()
	ea, err := consolidation.EnergyAware{Model: stubCost{}}.Plan(hosts, consolidation.Config{Horizon: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ffd, err := consolidation.FirstFitDecreasing{Model: stubCost{}}.Plan(hosts, consolidation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Precondition for a fair comparison: the dirty VM moves in both plans
	// but to different hosts.
	target := func(p *consolidation.Plan) string {
		for _, m := range p.Moves {
			if m.VM == "dirty" {
				return m.To
			}
		}
		return ""
	}
	if target(ea) == "" || target(ffd) == "" || target(ea) == target(ffd) {
		t.Fatalf("topology no longer separates the policies: ea->%q ffd->%q", target(ea), target(ffd))
	}

	ex := Executor{Kind: migration.Live, Seed: 72}
	eaRep, err := ex.ExecutePlan("energy-aware", ea, hosts)
	if err != nil {
		t.Fatal(err)
	}
	ffdRep, err := ex.ExecutePlan("ffd", ffd, hosts)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the measured cost of moving the dirty VM specifically: the
	// policies chose different targets for it.
	dirtyCost := func(r *ExecutionReport) units.Joules {
		for _, m := range r.Moves {
			if m.Move.VM == "dirty" {
				return m.MeasuredEnergy
			}
		}
		return 0
	}
	eaDirty, ffdDirty := dirtyCost(eaRep), dirtyCost(ffdRep)
	if eaDirty <= 0 || ffdDirty <= 0 {
		t.Fatal("dirty VM move missing from a report")
	}
	if eaDirty >= ffdDirty {
		t.Errorf("measured: energy-aware dirty move %v !< FFD's %v", eaDirty, ffdDirty)
	}
}

func TestExecutePlanValidation(t *testing.T) {
	ex := Executor{}
	if _, err := ex.ExecutePlan("x", nil, testDC()); err == nil {
		t.Error("nil plan must fail")
	}
	plan := &consolidation.Plan{Moves: []consolidation.Move{{VM: "ghost", From: "busy", To: "calm"}}}
	if _, err := ex.ExecutePlan("x", plan, testDC()); err == nil {
		t.Error("move of unknown VM must fail")
	}
	plan = &consolidation.Plan{Moves: []consolidation.Move{{VM: "y", From: "nowhere", To: "calm"}}}
	if _, err := ex.ExecutePlan("x", plan, testDC()); err == nil {
		t.Error("unknown source host must fail")
	}
	plan = &consolidation.Plan{Moves: []consolidation.Move{{VM: "y", From: "busy", To: "nowhere"}}}
	if _, err := ex.ExecutePlan("x", plan, testDC()); err == nil {
		t.Error("unknown target host must fail")
	}
	// Empty plan executes trivially.
	rep, err := ex.ExecutePlan("x", &consolidation.Plan{}, testDC())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 0 || len(rep.Moves) != 0 {
		t.Error("empty plan must measure nothing")
	}
}

// TestExecutePlanIgnoresHostCapacities pins the wrapper's compatibility
// contract: the historical executor only read host names and VM
// demands, so hosts without Threads/MemBytes/IdlePower must still
// execute — and measure identically to fully specified hosts.
func TestExecutePlanIgnoresHostCapacities(t *testing.T) {
	bare := []consolidation.HostState{
		{Name: "a", VMs: []consolidation.VMState{
			{Name: "v", MemBytes: gib(4), BusyVCPUs: 4, DirtyRatio: 0.3},
			// A memory-less bystander: the executor only ever read
			// BusyVCPUs and DirtyRatio, so this must not fail the plan.
			{Name: "zeromem", BusyVCPUs: 2},
		}},
		{Name: "b"},
	}
	full := testDC()[:0]
	for _, h := range bare {
		h.Threads, h.MemBytes, h.IdlePower = 32, gib(64), 440
		full = append(full, h)
	}
	plan := &consolidation.Plan{Moves: []consolidation.Move{{VM: "v", From: "a", To: "b"}}}
	ex := Executor{Kind: migration.Live, Seed: 5}
	bareRep, err := ex.ExecutePlan("x", plan, bare)
	if err != nil {
		t.Fatalf("capacity-less hosts rejected: %v", err)
	}
	fullRep, err := ex.ExecutePlan("x", plan, full)
	if err != nil {
		t.Fatal(err)
	}
	if bareRep.Total != fullRep.Total || bareRep.Elapsed != fullRep.Elapsed {
		t.Errorf("capacities leaked into the measurement: %v/%v vs %v/%v",
			bareRep.Total, bareRep.Elapsed, fullRep.Total, fullRep.Elapsed)
	}
}
