package dcsim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/consolidation"
)

// TestExecutePlanDeterministicAcrossWorkers pins the two-pass executor's
// guarantee: residual-load bookkeeping is derived in plan order before any
// simulation starts, so a parallel execution measures exactly what the
// sequential one did, move for move.
func TestExecutePlanDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	hosts := testDC()
	plan, err := consolidation.EnergyAware{Model: stubCost{}}.Plan(hosts, consolidation.Config{Horizon: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) < 2 {
		t.Fatalf("plan has %d moves; need ≥ 2 for an ordering test", len(plan.Moves))
	}

	seq := Executor{Seed: 9, Workers: 1}
	par := Executor{Seed: 9, Workers: 4}
	repSeq, err := seq.ExecutePlan("energy-aware", plan, hosts)
	if err != nil {
		t.Fatal(err)
	}
	repPar, err := par.ExecutePlan("energy-aware", plan, hosts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repSeq, repPar) {
		t.Fatalf("reports differ between Workers=1 and Workers=4:\nseq: %+v\npar: %+v", repSeq, repPar)
	}
}
