// Package dcsim closes the loop between planning and physics: it takes a
// consolidation plan (a list of VM moves chosen by some policy) and
// executes every move as a full migration simulation on the two-host
// testbed, returning *measured* energies rather than model predictions.
// This is how the reproduction demonstrates the paper's end claim — that
// energy-aware consolidation decisions, made with WAVM3 predictions,
// actually save energy when the migrations are carried out.
//
// Since the N-host generalisation, dcsim is a thin compatibility wrapper
// over internal/cluster: the plan becomes a serial cluster timeline
// (moves chained one after another, exactly the executor's historical
// semantics), every host keeps its abstract capacity, and every move is
// lowered onto the configured testbed pair. Reports are bit-identical
// to the pre-cluster executor's.
package dcsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/consolidation"
	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/sim"
	"repro/internal/units"
)

// MoveResult is the measured outcome of executing one planned move.
type MoveResult struct {
	Move consolidation.Move
	// MeasuredEnergy is the metered source+target migration energy.
	MeasuredEnergy units.Joules
	// Duration is the measured migration span.
	Duration time.Duration
	// BytesSent is the state data actually moved.
	BytesSent units.Bytes
}

// ExecutionReport aggregates a plan's measured cost.
type ExecutionReport struct {
	Policy  string
	Moves   []MoveResult
	Total   units.Joules
	Elapsed time.Duration
}

// Executor maps abstract consolidation moves onto testbed simulations.
type Executor struct {
	// Pair selects the simulated machine pair (hw.PairM by default).
	Pair string
	// Kind is the migration mechanism used for every move (Live default).
	Kind migration.Kind
	// Seed pins the simulations.
	Seed int64
	// Workers bounds how many move simulations run concurrently
	// (0 = runtime.NumCPU(), 1 = sequential). Every move's scenario —
	// including the residual host loads, which depend on the moves before
	// it — is derived in plan order before any simulation starts, and each
	// move's seed derives from its plan index, so the report is
	// bit-identical for every worker count.
	Workers int
	// Cache optionally memoizes move simulations (see sim.NewCache):
	// consolidation loops re-evaluate many identical moves across
	// candidate plans. nil runs uncached; cached results are
	// bit-identical.
	Cache *sim.Cache
}

// ExecutePlan simulates every move of a plan in order against the evolving
// data-centre state and returns the measured report. The hosts slice is
// the *pre-plan* state. Execution is a serial timeline on a cluster whose
// hosts carry the abstract capacities and whose moves all lower onto the
// executor's testbed pair.
func (e Executor) ExecutePlan(policy string, plan *consolidation.Plan, hosts []consolidation.HostState) (*ExecutionReport, error) {
	if plan == nil {
		return nil, errors.New("dcsim: nil plan")
	}
	pair := e.Pair
	if pair == "" {
		pair = hw.PairM
	}
	cfg := cluster.Config{
		Kind:    e.Kind,
		Pair:    pair,
		Seed:    e.Seed,
		Workers: e.Workers,
		Cache:   e.Cache,
		Serial:  true,
	}
	for _, h := range hosts {
		ch := cluster.Host{
			Name:      h.Name,
			Threads:   h.Threads,
			MemBytes:  h.MemBytes,
			IdlePower: h.IdlePower,
		}
		// The historical executor never read host capacities — only names
		// and VM demands — so hosts that skipped them stay accepted here:
		// placeholders satisfy the cluster's host validation, and the
		// serial path never consults capacity or idle power.
		if ch.Threads <= 0 {
			ch.Threads = 1
		}
		if ch.MemBytes <= 0 {
			ch.MemBytes = 1
		}
		if ch.IdlePower <= 0 {
			ch.IdlePower = 1
		}
		for _, v := range h.VMs {
			cv := cluster.VM{
				Name:       v.Name,
				MemBytes:   v.MemBytes,
				BusyVCPUs:  v.BusyVCPUs,
				DirtyRatio: v.DirtyRatio.Clamp(),
			}
			// Same compatibility rule as the host capacities: the old
			// executor read only BusyVCPUs and DirtyRatio (clamped by the
			// workload profile), so a memory-less bystander VM must not
			// start failing plans here.
			if cv.MemBytes <= 0 {
				cv.MemBytes = 1
			}
			ch.VMs = append(ch.VMs, cv)
		}
		cfg.Hosts = append(cfg.Hosts, ch)
	}
	for _, m := range plan.Moves {
		cfg.Moves = append(cfg.Moves, cluster.TimedMove{VM: m.VM, From: m.From, To: m.To})
	}
	clusterRep, err := cluster.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("dcsim: %w", err)
	}
	rep := &ExecutionReport{Policy: policy}
	for i, rec := range clusterRep.Timeline {
		res := MoveResult{
			Move:           plan.Moves[i],
			MeasuredEnergy: rec.Energy,
			Duration:       rec.Duration,
			BytesSent:      rec.BytesSent,
		}
		rep.Moves = append(rep.Moves, res)
		rep.Total += res.MeasuredEnergy
		rep.Elapsed += res.Duration
	}
	return rep, nil
}
