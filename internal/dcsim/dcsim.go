// Package dcsim closes the loop between planning and physics: it takes a
// consolidation plan (a list of VM moves chosen by some policy) and
// executes every move as a full migration simulation on the two-host
// testbed, returning *measured* energies rather than model predictions.
// This is how the reproduction demonstrates the paper's end claim — that
// energy-aware consolidation decisions, made with WAVM3 predictions,
// actually save energy when the migrations are carried out.
package dcsim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/consolidation"
	"repro/internal/hw"
	"repro/internal/migration"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
)

// MoveResult is the measured outcome of executing one planned move.
type MoveResult struct {
	Move consolidation.Move
	// MeasuredEnergy is the metered source+target migration energy.
	MeasuredEnergy units.Joules
	// Duration is the measured migration span.
	Duration time.Duration
	// BytesSent is the state data actually moved.
	BytesSent units.Bytes
}

// ExecutionReport aggregates a plan's measured cost.
type ExecutionReport struct {
	Policy  string
	Moves   []MoveResult
	Total   units.Joules
	Elapsed time.Duration
}

// Executor maps abstract consolidation moves onto testbed simulations.
type Executor struct {
	// Pair selects the simulated machine pair (hw.PairM by default).
	Pair string
	// Kind is the migration mechanism used for every move (Live default).
	Kind migration.Kind
	// Seed pins the simulations.
	Seed int64
	// Workers bounds how many move simulations run concurrently
	// (0 = runtime.NumCPU(), 1 = sequential). Every move's scenario —
	// including the residual host loads, which depend on the moves before
	// it — is derived in plan order before any simulation starts, and each
	// move's seed derives from its plan index, so the report is
	// bit-identical for every worker count.
	Workers int
	// Cache optionally memoizes move simulations (see sim.NewCache):
	// consolidation loops re-evaluate many identical moves across
	// candidate plans. nil runs uncached; cached results are
	// bit-identical.
	Cache *sim.Cache
}

// scenarioFor translates one move into a testbed scenario: the moved VM's
// dirty ratio selects the migrating workload, and the residual busy
// threads of both hosts are approximated with load-cpu VMs (4 vCPUs each,
// matching the paper's load staircase granularity).
func (e Executor) scenarioFor(m consolidation.Move, vmState consolidation.VMState, srcBusy, dstBusy float64, idx int) (sim.Scenario, error) {
	if srcBusy < 0 || dstBusy < 0 {
		return sim.Scenario{}, fmt.Errorf("dcsim: negative residual load for move %v", m)
	}
	pair := e.Pair
	if pair == "" {
		pair = hw.PairM
	}
	sc := sim.Scenario{
		Name:          fmt.Sprintf("dcsim/%s->%s/%s", m.From, m.To, m.VM),
		Pair:          pair,
		Kind:          e.Kind,
		SourceLoadVMs: int(math.Round(srcBusy / 4)),
		TargetLoadVMs: int(math.Round(dstBusy / 4)),
		Seed:          e.Seed + int64(idx)*607,
	}
	if vmState.DirtyRatio > 0.2 {
		sc.MigratingType = vm.TypeMigratingMem
		sc.MigratingProfile = workload.PagedirtierProfile(vmState.DirtyRatio)
	} else {
		sc.MigratingType = vm.TypeMigratingCPU
		sc.MigratingProfile = workload.MatrixMultProfile()
	}
	return sc, nil
}

// ExecutePlan simulates every move of a plan in order against the evolving
// data-centre state and returns the measured report. The hosts slice is
// the *pre-plan* state; residual loads are tracked as moves execute.
func (e Executor) ExecutePlan(policy string, plan *consolidation.Plan, hosts []consolidation.HostState) (*ExecutionReport, error) {
	if plan == nil {
		return nil, errors.New("dcsim: nil plan")
	}
	// Work on a copy of the state, indexed by name.
	state := make(map[string]*consolidation.HostState, len(hosts))
	for i := range hosts {
		h := hosts[i]
		h.VMs = append([]consolidation.VMState(nil), hosts[i].VMs...)
		if _, dup := state[h.Name]; dup {
			return nil, fmt.Errorf("dcsim: duplicate host %q", h.Name)
		}
		state[h.Name] = &h
	}
	// Pass 1 (sequential, cheap): evolve the data-centre state move by
	// move and derive every scenario, exactly as the one-at-a-time
	// executor did — residual loads see all earlier moves applied.
	scenarios := make([]sim.Scenario, 0, len(plan.Moves))
	for i, mv := range plan.Moves {
		src, ok := state[mv.From]
		if !ok {
			return nil, fmt.Errorf("dcsim: move %d references unknown host %q", i, mv.From)
		}
		dst, ok := state[mv.To]
		if !ok {
			return nil, fmt.Errorf("dcsim: move %d references unknown host %q", i, mv.To)
		}
		var vmState consolidation.VMState
		found := false
		for j, v := range src.VMs {
			if v.Name == mv.VM {
				vmState = v
				src.VMs = append(src.VMs[:j], src.VMs[j+1:]...)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("dcsim: move %d: VM %q not on %q", i, mv.VM, mv.From)
		}

		srcBusy := busyOf(src) // residual, the VM already removed
		dstBusy := busyOf(dst)
		sc, err := e.scenarioFor(mv, vmState, srcBusy, dstBusy, i)
		if err != nil {
			return nil, err
		}
		scenarios = append(scenarios, sc)
		dst.VMs = append(dst.VMs, vmState)
	}

	// Pass 2 (parallel, expensive): simulate every move. Each scenario is
	// self-contained and seeded from its plan index, so fan-out order
	// cannot affect the measurements.
	runs, err := parallel.Map(e.Workers, len(scenarios), func(i int) (*sim.RunResult, error) {
		run, err := e.Cache.Run(scenarios[i])
		if err != nil {
			return nil, fmt.Errorf("dcsim: executing move %d (%s): %w", i, scenarios[i].Name, err)
		}
		return run, nil
	})
	if err != nil {
		return nil, err
	}

	rep := &ExecutionReport{Policy: policy}
	for i, run := range runs {
		res := MoveResult{
			Move:           plan.Moves[i],
			MeasuredEnergy: run.SourceEnergy.Total() + run.TargetEnergy.Total(),
			Duration:       run.Bounds.ME - run.Bounds.MS,
			BytesSent:      run.BytesSent,
		}
		rep.Moves = append(rep.Moves, res)
		rep.Total += res.MeasuredEnergy
		rep.Elapsed += res.Duration
	}
	return rep, nil
}

func busyOf(h *consolidation.HostState) float64 {
	s := 0.0
	for _, v := range h.VMs {
		s += v.BusyVCPUs
	}
	return s
}
