// Package units defines the physical quantities used throughout the WAVM3
// reproduction: power, energy, data sizes, page counts, bandwidth and
// utilisation. Quantities are small named float/int types so that function
// signatures document themselves and unit mistakes (e.g. passing megabytes
// where pages are expected) become type errors.
package units

import (
	"fmt"
	"time"
)

// Watts is instantaneous power drawn at the AC side of a host.
type Watts float64

// Joules is energy, the integral of power over time.
type Joules float64

// KiloJoules converts to kJ, the unit used by the paper's Table VII.
func (j Joules) KiloJoules() float64 { return float64(j) / 1e3 }

// Bytes is a data size.
type Bytes int64

// Common data sizes.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// PageSize is the guest page size used by the paravirtualised VMs in the
// paper's testbed (x86, 4 KiB pages).
const PageSize Bytes = 4 * KiB

// Pages is a count of guest memory pages.
type Pages int64

// PagesOf returns the number of whole pages needed to hold n bytes.
func PagesOf(n Bytes) Pages {
	if n <= 0 {
		return 0
	}
	return Pages((n + PageSize - 1) / PageSize)
}

// Bytes returns the size of p pages.
func (p Pages) Bytes() Bytes { return Bytes(p) * PageSize }

// BitsPerSecond is network bandwidth.
type BitsPerSecond float64

// Common bandwidths.
const (
	Mbps BitsPerSecond = 1e6
	Gbps BitsPerSecond = 1e9
)

// BytesPerSecond converts a bandwidth to a byte rate.
func (b BitsPerSecond) BytesPerSecond() float64 { return float64(b) / 8 }

// BytesIn returns how many whole bytes can be moved at bandwidth b in d.
func (b BitsPerSecond) BytesIn(d time.Duration) Bytes {
	return Bytes(b.BytesPerSecond() * d.Seconds())
}

// TimeToSend returns how long moving n bytes takes at bandwidth b.
// It returns a very large duration for non-positive bandwidths so callers
// can treat a dead link as "never finishes" without dividing by zero.
func (b BitsPerSecond) TimeToSend(n Bytes) time.Duration {
	if b <= 0 {
		return time.Duration(1<<62 - 1)
	}
	secs := float64(n) / b.BytesPerSecond()
	return time.Duration(secs * float64(time.Second))
}

// Utilisation is a CPU utilisation expressed in units of one virtual CPU:
// 1.0 means one fully busy vCPU, 4.0 means four. The paper's CPU(h,t) and
// CPU(v,t) terms use this convention (a host with 32 threads saturates at
// 32.0).
type Utilisation float64

// Clamp bounds u into [0, max].
func (u Utilisation) Clamp(max Utilisation) Utilisation {
	if u < 0 {
		return 0
	}
	if u > max {
		return max
	}
	return u
}

// Fraction is a dimensionless value in [0,1], e.g. the dirtying ratio
// DR(v,t) of Eq. 1.
type Fraction float64

// Clamp bounds f into [0,1].
func (f Fraction) Clamp() Fraction {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Percent renders f as a percentage string, e.g. "95%".
func (f Fraction) Percent() string { return fmt.Sprintf("%.0f%%", float64(f)*100) }

// EnergyOver returns the energy of constant power p held for d.
func EnergyOver(p Watts, d time.Duration) Joules {
	return Joules(float64(p) * d.Seconds())
}

// String implementations so traces and reports print naturally.

func (w Watts) String() string  { return fmt.Sprintf("%.1f W", float64(w)) }
func (j Joules) String() string { return fmt.Sprintf("%.1f J", float64(j)) }

func (b Bytes) String() string {
	switch {
	case b >= GiB:
		return fmt.Sprintf("%.2f GiB", float64(b)/float64(GiB))
	case b >= MiB:
		return fmt.Sprintf("%.2f MiB", float64(b)/float64(MiB))
	case b >= KiB:
		return fmt.Sprintf("%.2f KiB", float64(b)/float64(KiB))
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

func (b BitsPerSecond) String() string {
	switch {
	case b >= Gbps:
		return fmt.Sprintf("%.2f Gbit/s", float64(b)/float64(Gbps))
	case b >= Mbps:
		return fmt.Sprintf("%.2f Mbit/s", float64(b)/float64(Mbps))
	default:
		return fmt.Sprintf("%.0f bit/s", float64(b))
	}
}
