package units_test

import (
	"fmt"
	"time"

	"repro/internal/units"
)

func ExamplePagesOf() {
	fmt.Println(units.PagesOf(4 * units.GiB))
	// Output: 1048576
}

func ExampleEnergyOver() {
	e := units.EnergyOver(500, 90*time.Second)
	fmt.Printf("%.0f kJ\n", e.KiloJoules())
	// Output: 45 kJ
}

func ExampleBitsPerSecond_TimeToSend() {
	bw := 760 * units.Mbps
	fmt.Println(bw.TimeToSend(4 * units.GiB).Round(time.Second))
	// Output: 45s
}

func ExampleFraction_Percent() {
	fmt.Println(units.Fraction(0.95).Percent())
	// Output: 95%
}
