package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPagesOf(t *testing.T) {
	tests := []struct {
		name string
		in   Bytes
		want Pages
	}{
		{"zero", 0, 0},
		{"negative", -5, 0},
		{"one byte rounds up", 1, 1},
		{"exact page", PageSize, 1},
		{"page plus one", PageSize + 1, 2},
		{"4GiB VM", 4 * GiB, 1 << 20},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := PagesOf(tt.in); got != tt.want {
				t.Errorf("PagesOf(%d) = %d, want %d", tt.in, got, tt.want)
			}
		})
	}
}

func TestPagesRoundTrip(t *testing.T) {
	// For any non-negative byte count, PagesOf(n).Bytes() >= n and the
	// overshoot is less than one page.
	f := func(n int64) bool {
		if n < 0 {
			n = -n
		}
		b := Bytes(n % (1 << 40))
		back := PagesOf(b).Bytes()
		return back >= b && back-b < PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthBytesIn(t *testing.T) {
	if got := Gbps.BytesIn(time.Second); got != 125_000_000 {
		t.Errorf("1 Gbit/s over 1 s = %d bytes, want 125000000", got)
	}
	if got := (100 * Mbps).BytesIn(2 * time.Second); got != 25_000_000 {
		t.Errorf("100 Mbit/s over 2 s = %d bytes, want 25000000", got)
	}
}

func TestTimeToSend(t *testing.T) {
	d := Gbps.TimeToSend(125_000_000)
	if math.Abs(d.Seconds()-1.0) > 1e-9 {
		t.Errorf("TimeToSend(125 MB @ 1Gbps) = %v, want 1s", d)
	}
	if d := BitsPerSecond(0).TimeToSend(1); d < time.Hour*24*365 {
		t.Errorf("zero bandwidth should effectively never finish, got %v", d)
	}
	if d := BitsPerSecond(-5).TimeToSend(1); d < time.Hour {
		t.Errorf("negative bandwidth should effectively never finish, got %v", d)
	}
}

func TestTimeToSendInvertsBytesIn(t *testing.T) {
	// Sending the bytes that fit in d should take roughly d again.
	f := func(ms uint16, mbps uint8) bool {
		d := time.Duration(int(ms)+1) * time.Millisecond
		bw := BitsPerSecond(int(mbps)+1) * Mbps
		n := bw.BytesIn(d)
		back := bw.TimeToSend(n)
		// Quantisation to whole bytes loses at most one byte of time.
		return back <= d && d-back <= bw.TimeToSend(1)+time.Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUtilisationClamp(t *testing.T) {
	if got := Utilisation(-1).Clamp(32); got != 0 {
		t.Errorf("Clamp(-1) = %v, want 0", got)
	}
	if got := Utilisation(40).Clamp(32); got != 32 {
		t.Errorf("Clamp(40) = %v, want 32", got)
	}
	if got := Utilisation(7).Clamp(32); got != 7 {
		t.Errorf("Clamp(7) = %v, want 7", got)
	}
}

func TestFractionClamp(t *testing.T) {
	f := func(x float64) bool {
		c := Fraction(x).Clamp()
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyOver(t *testing.T) {
	e := EnergyOver(500, 2*time.Second)
	if math.Abs(float64(e)-1000) > 1e-9 {
		t.Errorf("500 W over 2 s = %v, want 1000 J", e)
	}
	if e.KiloJoules() != 1.0 {
		t.Errorf("KiloJoules = %v, want 1", e.KiloJoules())
	}
}

func TestStrings(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{Watts(712.5).String(), "712.5 W"},
		{Joules(42).String(), "42.0 J"},
		{(4 * GiB).String(), "4.00 GiB"},
		{(512 * MiB).String(), "512.00 MiB"},
		{(3 * KiB).String(), "3.00 KiB"},
		{Bytes(100).String(), "100 B"},
		{Gbps.String(), "1.00 Gbit/s"},
		{(250 * Mbps).String(), "250.00 Mbit/s"},
		{BitsPerSecond(100).String(), "100 bit/s"},
		{Fraction(0.95).Percent(), "95%"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("got %q, want %q", tt.got, tt.want)
		}
	}
}
