package migration

import (
	"testing"
	"time"

	"repro/internal/vm"
	"repro/internal/workload"
)

func TestPostCopyBasics(t *testing.T) {
	r := newRig(t, vm.TypeMigratingMem, workload.PagedirtierProfile(0.95), 21)
	e, err := New(Config{Kind: PostCopy}, r.src, r.dst, r.guest.Name, r.link)
	if err != nil {
		t.Fatal(err)
	}
	r.drive(t, e)

	// Exactly one image crosses the wire, independent of the dirty rate —
	// the defining property of post-copy.
	want := r.guest.Memory.TotalPages().Bytes()
	if e.BytesSent() != want {
		t.Errorf("post-copy sent %v, want exactly %v", e.BytesSent(), want)
	}
	// Downtime is the context switch only.
	if e.Downtime() != postCopySwitchLatency {
		t.Errorf("downtime = %v, want %v", e.Downtime(), postCopySwitchLatency)
	}
	// The guest ends on the target, running.
	if _, onDst := r.dst.Guest(r.guest.Name); !onDst {
		t.Error("guest not on target")
	}
	if r.guest.State() != vm.StateRunning {
		t.Errorf("guest state = %v", r.guest.State())
	}
	if err := e.Boundaries().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPostCopyGuestRunsOnTargetDuringTransfer(t *testing.T) {
	r := newRig(t, vm.TypeMigratingCPU, workload.MatrixMultProfile(), 22)
	e, err := New(Config{Kind: PostCopy}, r.src, r.dst, r.guest.Name, r.link)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 100 * time.Millisecond
	now := time.Duration(0)
	if err := e.Start(now); err != nil {
		t.Fatal(err)
	}
	sawOnTargetMidTransfer := false
	for !e.Done() {
		now += dt
		sa, da := r.src.Schedule(), r.dst.Schedule()
		if _, err := e.Step(now, dt, sa.MigrationShare(), da.MigrationShare()); err != nil {
			t.Fatal(err)
		}
		r.src.Step(sa, dt.Seconds())
		r.dst.Step(da, dt.Seconds())
		if e.Phase().String() == "transfer" {
			if _, onDst := r.dst.Guest(r.guest.Name); onDst && r.guest.Active() {
				sawOnTargetMidTransfer = true
			}
		}
		if now > 30*time.Minute {
			t.Fatal("stuck")
		}
	}
	if !sawOnTargetMidTransfer {
		t.Error("post-copy guest must run on the target during the transfer phase")
	}
}

func TestPostCopyBeatsPreCopyOnHighDirtyRatio(t *testing.T) {
	// The regime where the paper shows pre-copy degenerating: post-copy
	// must move far less data and suspend far shorter.
	pre := newRig(t, vm.TypeMigratingMem, workload.PagedirtierProfile(0.95), 23)
	ep, err := New(Config{Kind: Live}, pre.src, pre.dst, pre.guest.Name, pre.link)
	if err != nil {
		t.Fatal(err)
	}
	pre.drive(t, ep)

	post := newRig(t, vm.TypeMigratingMem, workload.PagedirtierProfile(0.95), 23)
	eo, err := New(Config{Kind: PostCopy}, post.src, post.dst, post.guest.Name, post.link)
	if err != nil {
		t.Fatal(err)
	}
	post.drive(t, eo)

	if eo.BytesSent() >= ep.BytesSent() {
		t.Errorf("post-copy sent %v, pre-copy %v — post-copy must send less", eo.BytesSent(), ep.BytesSent())
	}
	if eo.Downtime() >= ep.Downtime() {
		t.Errorf("post-copy downtime %v, pre-copy %v — post-copy must be shorter", eo.Downtime(), ep.Downtime())
	}
}

func TestPostCopyKindString(t *testing.T) {
	if PostCopy.String() != "post-copy" {
		t.Errorf("PostCopy.String() = %q", PostCopy.String())
	}
}
