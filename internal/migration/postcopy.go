package migration

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/vm"
)

// PostCopy is an extension beyond the paper (its future-work section):
// the third migration mechanism implemented by modern hypervisors. The
// guest is suspended briefly at the start of the transfer, its execution
// context switches to the target immediately, and the memory image is
// then pulled over the network while the guest already runs on the
// target. Downtime is the context switch alone; exactly one copy of the
// image crosses the wire regardless of the dirtying rate — the property
// that makes post-copy attractive precisely where the paper shows
// pre-copy degenerating (high dirty ratios).
const PostCopy Kind = 2

// postCopyString extends Kind.String; see String in migration.go.
func postCopyString(k Kind) (string, bool) {
	if k == PostCopy {
		return "post-copy", true
	}
	return "", false
}

// startPostCopy handles Engine.Start for the post-copy mechanism: the
// guest enters migrating mode (its page faults will be served remotely)
// but keeps running through initiation.
func (e *Engine) startPostCopy() error {
	return e.guest.BeginMigration()
}

// beginPostCopyTransfer switches execution to the target and opens the
// single image pull. The brief suspension models the context switch; the
// guest resumes on the target within the same step.
func (e *Engine) beginPostCopyTransfer(now time.Duration) error {
	e.bounds.TS = now
	e.phaseStart = now

	// Context switch: suspend, move placement, resume on the target.
	if err := e.guest.Suspend(); err != nil {
		return err
	}
	e.suspended = true
	e.suspendedAt = now
	name := e.guest.Name
	if err := e.src.Detach(name); err != nil {
		return err
	}
	if err := e.dst.Attach(e.guest); err != nil {
		return err
	}
	if err := e.guest.Resume(); err != nil {
		return err
	}
	// Downtime is one simulation step's worth of switch latency.
	e.downtime = postCopySwitchLatency
	e.moved = true

	full := e.guest.Memory.TotalPages().Bytes()
	s, err := netsim.NewStream(full)
	if err != nil {
		return err
	}
	e.stream = s
	e.st = stateTransfer
	return nil
}

// postCopySwitchLatency is the execution-context switch downtime.
const postCopySwitchLatency = 300 * time.Millisecond

// finishPostCopy completes a post-copy migration: the guest already runs
// on the target, so only the source-side cleanup remains.
func (e *Engine) finishPostCopy(now time.Duration) error {
	e.bounds.ME = now
	if e.guest.State() == vm.StateMigrating {
		if err := e.guest.EndMigration(); err != nil {
			return err
		}
	}
	e.src.SetMigrationActive(false)
	e.dst.SetMigrationActive(false)
	e.st = stateDone
	return nil
}
