package migration

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workload"
	"repro/internal/xen"
)

// rig is a minimal two-host testbed with one migratable guest.
type rig struct {
	src, dst *xen.Host
	link     *netsim.Link
	guest    *vm.VM
}

func newRig(t *testing.T, guestType string, profile workload.Profile, seed int64) *rig {
	t.Helper()
	s, d, err := hw.Pair(hw.PairM)
	if err != nil {
		t.Fatal(err)
	}
	src, err := xen.NewHost(s)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := xen.NewHost(d)
	if err != nil {
		t.Fatal(err)
	}
	link, err := netsim.NewLink(s, d)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := xen.NewToolstack("xl", src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ts.Create(guestType, profile, seed)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{src: src, dst: dst, link: link, guest: g}
}

// drive steps the rig until the migration completes, returning the final
// simulation time. It fails the test if the migration runs absurdly long.
func (r *rig) drive(t *testing.T, e *Engine) time.Duration {
	t.Helper()
	const dt = 100 * time.Millisecond
	now := time.Duration(0)
	if err := e.Start(now); err != nil {
		t.Fatal(err)
	}
	for !e.Done() {
		now += dt
		sa := r.src.Schedule()
		da := r.dst.Schedule()
		if _, err := e.Step(now, dt, sa.MigrationShare(), da.MigrationShare()); err != nil {
			t.Fatal(err)
		}
		r.src.Step(sa, dt.Seconds())
		r.dst.Step(da, dt.Seconds())
		if now > 30*time.Minute {
			t.Fatal("migration never finished")
		}
	}
	return now
}

func TestNonLiveMigration(t *testing.T) {
	r := newRig(t, vm.TypeMigratingCPU, workload.MatrixMultProfile(), 1)
	e, err := New(Config{Kind: NonLive}, r.src, r.dst, r.guest.Name, r.link)
	if err != nil {
		t.Fatal(err)
	}
	end := r.drive(t, e)

	// Exactly the memory image crosses the wire, once.
	want := r.guest.Memory.TotalPages().Bytes()
	if e.BytesSent() != want {
		t.Errorf("sent %v, want exactly %v", e.BytesSent(), want)
	}
	if e.Rounds() != 0 {
		t.Errorf("non-live has no pre-copy rounds, got %d", e.Rounds())
	}
	// Guest ended up running on the target only.
	if _, onSrc := r.src.Guest(r.guest.Name); onSrc {
		t.Error("guest still on source")
	}
	if _, onDst := r.dst.Guest(r.guest.Name); !onDst {
		t.Error("guest not on target")
	}
	if r.guest.State() != vm.StateRunning {
		t.Errorf("guest state = %v, want running", r.guest.State())
	}
	// Downtime spans the whole migration for suspend-resume.
	b := e.Boundaries()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.ME != end {
		t.Errorf("ME = %v, want %v", b.ME, end)
	}
	if e.Downtime() != b.ME-b.MS {
		t.Errorf("downtime %v != migration span %v", e.Downtime(), b.ME-b.MS)
	}
	// Hosts released their endpoint roles.
	if r.src.MigrationActive() || r.dst.MigrationActive() {
		t.Error("endpoints still marked active")
	}
	// Transfer of 4 GiB at ~760 Mbit/s ≈ 45 s.
	transfer := (b.TE - b.TS).Seconds()
	if transfer < 30 || transfer > 90 {
		t.Errorf("transfer took %.1f s, want ≈45 s", transfer)
	}
}

func TestLiveMigrationQuietGuest(t *testing.T) {
	// A guest that barely dirties converges in one round plus a small
	// stop-and-copy.
	r := newRig(t, vm.TypeMigratingCPU, workload.MatrixMultProfile(), 1)
	e, err := New(Config{Kind: Live}, r.src, r.dst, r.guest.Name, r.link)
	if err != nil {
		t.Fatal(err)
	}
	r.drive(t, e)

	mem := r.guest.Memory.TotalPages().Bytes()
	if e.BytesSent() < mem {
		t.Errorf("live migration sent %v, must send at least the image %v", e.BytesSent(), mem)
	}
	if e.BytesSent() > mem+mem/4 {
		t.Errorf("quiet guest resent too much: %v of %v", e.BytesSent(), mem)
	}
	if e.Rounds() < 1 || e.Rounds() > 4 {
		t.Errorf("quiet guest rounds = %d, want a small number ≥ 1", e.Rounds())
	}
	// Downtime far shorter than the migration: that is the point of live.
	b := e.Boundaries()
	if e.Downtime() >= (b.ME-b.MS)/2 {
		t.Errorf("downtime %v too close to total %v", e.Downtime(), b.ME-b.MS)
	}
	if r.guest.State() != vm.StateRunning {
		t.Errorf("guest state = %v", r.guest.State())
	}
}

func TestLiveMigrationHeavyDirtierDegeneratesToStopAndCopy(t *testing.T) {
	// pagedirtier at 95%: re-dirties faster than the link drains, so the
	// engine must give up iterating and suspend — the paper's live→non-live
	// degeneration.
	r := newRig(t, vm.TypeMigratingMem, workload.PagedirtierProfile(0.95), 2)
	e, err := New(Config{Kind: Live}, r.src, r.dst, r.guest.Name, r.link)
	if err != nil {
		t.Fatal(err)
	}
	r.drive(t, e)

	mem := r.guest.Memory.TotalPages().Bytes()
	if e.BytesSent() <= mem {
		t.Errorf("heavy dirtier must resend pages: sent %v of %v", e.BytesSent(), mem)
	}
	// The data safety valve bounds retransmission.
	if e.BytesSent() > units.Bytes(float64(mem)*(DefaultMaxDataFactor+1)) {
		t.Errorf("sent %v, beyond the %vx data cap", e.BytesSent(), DefaultMaxDataFactor)
	}
	// A large final suspension is unavoidable here.
	if e.Downtime() < 5*time.Second {
		t.Errorf("downtime = %v, expected a long stop-and-copy", e.Downtime())
	}
}

func TestLiveDirtierRoundsScaleWithRate(t *testing.T) {
	// A moderate dirtier should need more rounds than a quiet one but
	// still converge without a giant stop-and-copy.
	quiet := newRig(t, vm.TypeMigratingMem, workload.PagedirtierProfile(0.05), 3)
	eq, err := New(Config{Kind: Live}, quiet.src, quiet.dst, quiet.guest.Name, quiet.link)
	if err != nil {
		t.Fatal(err)
	}
	quiet.drive(t, eq)

	busy := newRig(t, vm.TypeMigratingMem, workload.PagedirtierProfile(0.55), 3)
	eb, err := New(Config{Kind: Live}, busy.src, busy.dst, busy.guest.Name, busy.link)
	if err != nil {
		t.Fatal(err)
	}
	busy.drive(t, eb)

	if eb.BytesSent() <= eq.BytesSent() {
		t.Errorf("busier dirtier sent %v, quiet sent %v; want busier > quiet",
			eb.BytesSent(), eq.BytesSent())
	}
}

func TestSaturatedSourceSlowsTransfer(t *testing.T) {
	// CPULOAD-SOURCE at 8 VMs: CPU multiplexing throttles the helper and
	// the transfer phase stretches.
	free := newRig(t, vm.TypeMigratingCPU, workload.MatrixMultProfile(), 4)
	ef, err := New(Config{Kind: NonLive}, free.src, free.dst, free.guest.Name, free.link)
	if err != nil {
		t.Fatal(err)
	}
	free.drive(t, ef)
	freeTransfer := ef.Boundaries().TE - ef.Boundaries().TS

	loaded := newRig(t, vm.TypeMigratingCPU, workload.MatrixMultProfile(), 4)
	ts, _ := xen.NewToolstack("xl", loaded.src)
	for i := 0; i < 8; i++ {
		if _, err := ts.Create(vm.TypeLoadCPU, workload.MatrixMultProfile(), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	el, err := New(Config{Kind: NonLive}, loaded.src, loaded.dst, loaded.guest.Name, loaded.link)
	if err != nil {
		t.Fatal(err)
	}
	loaded.drive(t, el)
	loadedTransfer := el.Boundaries().TE - el.Boundaries().TS

	if loadedTransfer <= freeTransfer {
		t.Errorf("saturated source transfer %v must exceed idle-source transfer %v",
			loadedTransfer, freeTransfer)
	}
}

func TestPhaseReporting(t *testing.T) {
	r := newRig(t, vm.TypeMigratingCPU, workload.MatrixMultProfile(), 5)
	e, err := New(Config{Kind: Live}, r.src, r.dst, r.guest.Name, r.link)
	if err != nil {
		t.Fatal(err)
	}
	if e.Phase() != trace.PhaseNormal {
		t.Errorf("pre-start phase = %v", e.Phase())
	}
	if err := e.Start(0); err != nil {
		t.Fatal(err)
	}
	if e.Phase() != trace.PhaseInitiation {
		t.Errorf("post-start phase = %v", e.Phase())
	}
	if err := e.Start(0); err == nil {
		t.Error("double start must fail")
	}
	seen := map[trace.Phase]bool{}
	const dt = 100 * time.Millisecond
	now := time.Duration(0)
	for !e.Done() {
		now += dt
		sa, da := r.src.Schedule(), r.dst.Schedule()
		if _, err := e.Step(now, dt, sa.MigrationShare(), da.MigrationShare()); err != nil {
			t.Fatal(err)
		}
		r.src.Step(sa, dt.Seconds())
		seen[e.Phase()] = true
		if now > 30*time.Minute {
			t.Fatal("stuck")
		}
	}
	for _, ph := range []trace.Phase{trace.PhaseInitiation, trace.PhaseTransfer, trace.PhaseActivation} {
		if !seen[ph] {
			t.Errorf("phase %v never reported", ph)
		}
	}
	// Bandwidth reads zero outside transfer.
	if e.CurrentBandwidth() != 0 {
		t.Errorf("done engine reports bandwidth %v", e.CurrentBandwidth())
	}
}

func TestNewValidation(t *testing.T) {
	r := newRig(t, vm.TypeMigratingCPU, workload.MatrixMultProfile(), 6)
	if _, err := New(Config{}, nil, r.dst, r.guest.Name, r.link); err == nil {
		t.Error("nil source must fail")
	}
	if _, err := New(Config{}, r.src, r.dst, "ghost", r.link); err == nil {
		t.Error("unknown guest must fail")
	}
	// Non-running guest.
	_ = r.guest.Suspend()
	if _, err := New(Config{}, r.src, r.dst, r.guest.Name, r.link); err == nil {
		t.Error("suspended guest must fail")
	}
	_ = r.guest.Resume()

	// Heterogeneous same-version pair: allowed (CPUID-levelled migration,
	// an extension beyond the paper's homogeneous testbed).
	o2host, _ := xen.NewHost(hw.Catalog()["o2"])
	if _, err := New(Config{}, r.src, o2host, r.guest.Name, r.link); err != nil {
		t.Errorf("heterogeneous same-Xen endpoints must be accepted: %v", err)
	}

	// A hypervisor version mismatch is a hard refusal: the toolstacks
	// would not speak the same migration protocol.
	oldSpec := hw.Catalog()["o2"]
	oldSpec.XenVersion = "3.4.0"
	oldHost, _ := xen.NewHost(oldSpec)
	if _, err := New(Config{}, r.src, oldHost, r.guest.Name, r.link); err == nil {
		t.Error("mismatched Xen versions must fail")
	}
}

func TestStepValidation(t *testing.T) {
	r := newRig(t, vm.TypeMigratingCPU, workload.MatrixMultProfile(), 7)
	e, err := New(Config{}, r.src, r.dst, r.guest.Name, r.link)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(0, 100*time.Millisecond, 1, 1); err == nil {
		t.Error("stepping before start must fail")
	}
	_ = e.Start(0)
	if _, err := e.Step(0, 0, 1, 1); err == nil {
		t.Error("zero dt must fail")
	}
	if _, err := e.Step(0, -time.Second, 1, 1); err == nil {
		t.Error("negative dt must fail")
	}
}

func TestStepAfterDoneIsNoop(t *testing.T) {
	r := newRig(t, vm.TypeMigratingCPU, workload.MatrixMultProfile(), 8)
	e, _ := New(Config{Kind: NonLive}, r.src, r.dst, r.guest.Name, r.link)
	end := r.drive(t, e)
	rep, err := e.Step(end+time.Second, 100*time.Millisecond, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesMoved != 0 || rep.PhaseChanged {
		t.Error("done engine must not move data")
	}
}

func TestKindString(t *testing.T) {
	if Live.String() != "live" || NonLive.String() != "non-live" {
		t.Error("kind names wrong")
	}
}

func TestBoundariesChronological(t *testing.T) {
	for _, kind := range []Kind{NonLive, Live} {
		r := newRig(t, vm.TypeMigratingCPU, workload.MatrixMultProfile(), 9)
		e, err := New(Config{Kind: kind}, r.src, r.dst, r.guest.Name, r.link)
		if err != nil {
			t.Fatal(err)
		}
		r.drive(t, e)
		b := e.Boundaries()
		if err := b.Validate(); err != nil {
			t.Errorf("%v boundaries invalid: %v", kind, err)
		}
		if b.TS-b.MS < DefaultInitiationTime {
			t.Errorf("%v initiation %v shorter than configured %v", kind, b.TS-b.MS, DefaultInitiationTime)
		}
		if b.ME-b.TE < DefaultActivationTime {
			t.Errorf("%v activation %v shorter than configured %v", kind, b.ME-b.TE, DefaultActivationTime)
		}
	}
}

// TestMigrationConservationProperty checks the data-conservation invariants
// across random workloads on a small custom guest: live migration always
// sends at least the image and at most the safety-valve cap; boundaries
// stay chronological; downtime never exceeds the migration span.
func TestMigrationConservationProperty(t *testing.T) {
	small := vm.InstanceType{
		ID: "tiny", VCPUs: 1, Kernel: "2.6.32",
		RAM: 64 * units.MiB, Workload: "pagedirtier", Storage: units.GiB,
	}
	for seed := int64(1); seed <= 12; seed++ {
		s, d, err := hw.Pair(hw.PairM)
		if err != nil {
			t.Fatal(err)
		}
		src, _ := xen.NewHost(s)
		dst, _ := xen.NewHost(d)
		link, _ := netsim.NewLink(s, d)
		g, err := vm.New("tiny", small)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Attach(g); err != nil {
			t.Fatal(err)
		}
		if err := g.Start(); err != nil {
			t.Fatal(err)
		}
		g.SetDemand(1)
		// Random dirtying behaviour per seed.
		rate := float64(200 + seed*997%12000)
		ws := units.Fraction(0.1 + float64(seed%9)/10)
		g.SetDirtier(mem.NewUniformDirtier(rate, ws, seed))

		e, err := New(Config{Kind: Live}, src, dst, "tiny", link)
		if err != nil {
			t.Fatal(err)
		}
		const dt = 100 * time.Millisecond
		now := time.Duration(0)
		if err := e.Start(now); err != nil {
			t.Fatal(err)
		}
		for !e.Done() {
			now += dt
			sa, da := src.Schedule(), dst.Schedule()
			if _, err := e.Step(now, dt, sa.MigrationShare(), da.MigrationShare()); err != nil {
				t.Fatal(err)
			}
			src.Step(sa, dt.Seconds())
			dst.Step(da, dt.Seconds())
			if now > 10*time.Minute {
				t.Fatalf("seed %d: stuck", seed)
			}
		}
		img := units.PagesOf(small.RAM).Bytes()
		capBytes := units.Bytes(float64(img)*DefaultMaxDataFactor) + img/4
		if e.BytesSent() < img {
			t.Errorf("seed %d: sent %v < image %v", seed, e.BytesSent(), img)
		}
		if e.BytesSent() > capBytes {
			t.Errorf("seed %d: sent %v beyond cap %v", seed, e.BytesSent(), capBytes)
		}
		b := e.Boundaries()
		if err := b.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if e.Downtime() > b.ME-b.MS {
			t.Errorf("seed %d: downtime %v exceeds migration %v", seed, e.Downtime(), b.ME-b.MS)
		}
	}
}
