// Package migration implements the two Xen migration mechanisms the paper
// models (Section III-A): non-live (suspend-resume) migration and
// iterative pre-copy live migration, as steppable state machines driven by
// the simulation clock. The engines produce the phase boundaries (ms, ts,
// te, me) of Section IV-A, and they reproduce the emergent behaviours the
// paper's figures hinge on — dirty-rate-dependent round counts, the forced
// stop-and-copy that "transforms the live migration in a non-live one",
// and CPU-starvation-dependent transfer bandwidth.
package migration

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/xen"
)

// Kind selects the migration mechanism.
type Kind int

// Migration kinds.
const (
	NonLive Kind = iota
	Live
)

// String names the kind the way the paper's tables do.
func (k Kind) String() string {
	if name, ok := postCopyString(k); ok {
		return name
	}
	if k == Live {
		return "live"
	}
	return "non-live"
}

// ParseKind parses the external (scenario-file) spelling of a migration
// mechanism. The empty string selects Live, the testbed default, so
// declarative specs can omit the field.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "live":
		return Live, nil
	case "non-live":
		return NonLive, nil
	case "post-copy":
		return PostCopy, nil
	default:
		return 0, fmt.Errorf("unknown migration kind %q (want live, non-live or post-copy)", s)
	}
}

// Config tunes an engine. Zero values select the defaults below.
type Config struct {
	// Kind selects live or non-live migration.
	Kind Kind
	// InitiationTime is the handshake/preparation span (connection setup,
	// target resource checks, shadow-mode enablement for live).
	InitiationTime time.Duration
	// ActivationTime is the resume-on-target / cleanup-on-source span.
	ActivationTime time.Duration
	// MaxRounds bounds the pre-copy iterations (Xen's xc_save caps its
	// iterative phase similarly).
	MaxRounds int
	// StopThreshold ends pre-copy early once the remaining dirty set is at
	// most this many pages.
	StopThreshold units.Pages
	// MaxDataFactor aborts pre-copy once total data sent exceeds this
	// multiple of the VM memory size (Xen's 3× safety valve).
	MaxDataFactor float64
}

// Defaults matching the testbed's observed phase lengths.
const (
	DefaultInitiationTime = 3 * time.Second
	DefaultActivationTime = 4 * time.Second
	DefaultMaxRounds      = 30
	DefaultStopThreshold  = units.Pages(256) // 1 MiB of 4 KiB pages
	DefaultMaxDataFactor  = 3.0
)

func (c Config) withDefaults() Config {
	if c.InitiationTime <= 0 {
		c.InitiationTime = DefaultInitiationTime
	}
	if c.ActivationTime <= 0 {
		c.ActivationTime = DefaultActivationTime
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = DefaultMaxRounds
	}
	if c.StopThreshold <= 0 {
		c.StopThreshold = DefaultStopThreshold
	}
	if c.MaxDataFactor <= 0 {
		c.MaxDataFactor = DefaultMaxDataFactor
	}
	return c
}

// state is the engine's internal lifecycle.
type state int

const (
	stateIdle state = iota
	stateInitiation
	stateTransfer
	stateStopAndCopy // live only: final round with the guest suspended
	stateActivation
	stateDone
)

// Engine drives one migration of one guest between two hosts.
type Engine struct {
	cfg   Config
	src   *xen.Host
	dst   *xen.Host
	guest *vm.VM
	link  *netsim.Link

	st             state
	startedAt      time.Duration
	phaseStart     time.Duration
	bounds         trace.Boundaries
	stream         *netsim.Stream
	round          int
	bytesSent      units.Bytes
	downtime       time.Duration
	suspended      bool
	suspendedAt    time.Duration
	moved          bool // guest already placed on the target (post-copy)
	lastBW         units.BitsPerSecond
	roundStartDirt units.Pages
}

// New prepares (but does not start) a migration of the named guest from
// src to dst over link.
func New(cfg Config, src, dst *xen.Host, guestName string, link *netsim.Link) (*Engine, error) {
	if src == nil || dst == nil || link == nil {
		return nil, errors.New("migration: nil host or link")
	}
	g, ok := src.Guest(guestName)
	if !ok {
		return nil, fmt.Errorf("migration: guest %q not on source %s", guestName, src.Spec.Name)
	}
	if g.State() != vm.StateRunning {
		return nil, fmt.Errorf("migration: guest %q is %v, want running", guestName, g.State())
	}
	if g.Memory == nil {
		return nil, fmt.Errorf("migration: guest %q has no memory image", guestName)
	}
	// Xen refuses migration between incompatible machines. The paper's
	// testbed used homogeneous pairs; heterogeneous same-architecture
	// pairs (CPUID-levelled, as production Xen supports) are allowed as an
	// extension, but the toolstacks must speak the same migration
	// protocol — a hypervisor version mismatch is a hard refusal.
	if src.Spec.XenVersion != dst.Spec.XenVersion {
		return nil, fmt.Errorf("migration: %s (Xen %s) and %s (Xen %s) are not migration-compatible",
			src.Spec.Name, src.Spec.XenVersion, dst.Spec.Name, dst.Spec.XenVersion)
	}
	return &Engine{cfg: cfg.withDefaults(), src: src, dst: dst, guest: g, link: link}, nil
}

// Start begins the migration at simulation time now (the consolidation
// manager's request instant, ms).
func (e *Engine) Start(now time.Duration) error {
	if e.st != stateIdle {
		return errors.New("migration: already started")
	}
	e.st = stateInitiation
	e.startedAt = now
	e.phaseStart = now
	e.bounds.MS = now
	e.src.SetMigrationActive(true)
	e.dst.SetMigrationActive(true)

	switch e.cfg.Kind {
	case NonLive:
		// Suspend-resume: the guest stops right away — the paper's "strong
		// decrease in power consumption" at non-live initiation.
		if err := e.guest.Suspend(); err != nil {
			return err
		}
		e.suspended = true
		e.suspendedAt = now
	case PostCopy:
		if err := e.startPostCopy(); err != nil {
			return err
		}
	default:
		// Live: enable log-dirty mode; the guest keeps running.
		if err := e.guest.BeginMigration(); err != nil {
			return err
		}
	}
	return nil
}

// Phase returns the current energy phase for feature labelling.
func (e *Engine) Phase() trace.Phase {
	switch e.st {
	case stateInitiation:
		return trace.PhaseInitiation
	case stateTransfer, stateStopAndCopy:
		return trace.PhaseTransfer
	case stateActivation:
		return trace.PhaseActivation
	default:
		return trace.PhaseNormal
	}
}

// Done reports completion.
func (e *Engine) Done() bool { return e.st == stateDone }

// Boundaries returns the recorded phase boundaries; only meaningful once
// Done.
func (e *Engine) Boundaries() trace.Boundaries { return e.bounds }

// BytesSent returns the total state data moved so far.
func (e *Engine) BytesSent() units.Bytes { return e.bytesSent }

// Rounds returns the number of completed pre-copy rounds (live only).
func (e *Engine) Rounds() int { return e.round }

// Downtime returns how long the guest was suspended.
func (e *Engine) Downtime() time.Duration { return e.downtime }

// CurrentBandwidth returns the bandwidth used in the last step (BW(S,T,t)).
func (e *Engine) CurrentBandwidth() units.BitsPerSecond {
	if e.st == stateTransfer || e.st == stateStopAndCopy {
		return e.lastBW
	}
	return 0
}

// StepReport summarises one engine step for the simulation's bookkeeping.
type StepReport struct {
	// BytesMoved is the state data moved during the step.
	BytesMoved units.Bytes
	// Bandwidth is the transfer bandwidth in use during the step.
	Bandwidth units.BitsPerSecond
	// PhaseChanged reports a phase-boundary crossing within this step.
	PhaseChanged bool
}

// Step advances the migration by dt at simulation time now. srcShare and
// dstShare are the CPU shares the migration helper received on each
// endpoint this step (from xen.Allocation.MigrationShare); they throttle
// the achievable bandwidth.
func (e *Engine) Step(now time.Duration, dt time.Duration, srcShare, dstShare float64) (StepReport, error) {
	var rep StepReport
	if dt <= 0 {
		return rep, errors.New("migration: non-positive dt")
	}
	switch e.st {
	case stateIdle:
		return rep, errors.New("migration: not started")
	case stateDone:
		return rep, nil

	case stateInitiation:
		if now-e.phaseStart >= e.cfg.InitiationTime {
			if err := e.beginTransfer(now); err != nil {
				return rep, err
			}
			rep.PhaseChanged = true
		}
		return rep, nil

	case stateTransfer, stateStopAndCopy:
		bw := e.link.Achievable(srcShare, dstShare)
		e.lastBW = bw
		moved := e.stream.Advance(bw, dt)
		e.bytesSent += moved
		rep.BytesMoved = moved
		rep.Bandwidth = bw
		if e.stream.Done() {
			changed, err := e.endRound(now)
			if err != nil {
				return rep, err
			}
			rep.PhaseChanged = changed
		}
		return rep, nil

	case stateActivation:
		if now-e.phaseStart >= e.cfg.ActivationTime {
			if err := e.finish(now); err != nil {
				return rep, err
			}
			rep.PhaseChanged = true
		}
		return rep, nil
	}
	return rep, fmt.Errorf("migration: unknown state %d", e.st)
}

// beginTransfer opens the first (or only) copy stream.
func (e *Engine) beginTransfer(now time.Duration) error {
	if e.cfg.Kind == PostCopy {
		return e.beginPostCopyTransfer(now)
	}
	e.bounds.TS = now
	e.phaseStart = now
	full := e.guest.Memory.TotalPages().Bytes()
	s, err := netsim.NewStream(full)
	if err != nil {
		return err
	}
	e.stream = s
	e.st = stateTransfer
	if e.cfg.Kind == Live {
		// Round 0 copies every page; the log-dirty bitmap starts clean and
		// records writes that happen during the copy.
		e.guest.Memory.CleanAll()
		e.roundStartDirt = e.guest.Memory.TotalPages()
	}
	return nil
}

// endRound closes the current copy round and decides what happens next.
func (e *Engine) endRound(now time.Duration) (phaseChanged bool, err error) {
	if e.cfg.Kind == NonLive || e.cfg.Kind == PostCopy || e.st == stateStopAndCopy {
		// The single copy (or the final stop-and-copy) finished.
		return true, e.beginActivation(now)
	}

	// Live pre-copy round completed; decide on another round, per the
	// termination criteria of Section III-A step (3).
	e.round++
	dirt := e.guest.Memory.DirtyPages()
	memBytes := e.guest.Memory.TotalPages().Bytes()
	budget := units.Bytes(float64(memBytes) * e.cfg.MaxDataFactor)

	converged := dirt <= e.cfg.StopThreshold
	// The data valve is checked pre-flight: another pre-copy round would
	// resend the current dirty set, so give up as soon as that would push
	// the total past the budget. This bounds what gets sent (≤ budget plus
	// one stop-and-copy) instead of only noticing the overshoot afterwards.
	exhausted := e.round >= e.cfg.MaxRounds || e.bytesSent >= budget ||
		e.bytesSent+dirt.Bytes() > budget
	// No-progress check: if a round ends with at least as many dirty pages
	// as it started with, the workload dirties faster than the link drains
	// and iterating further is pointless (the high-DR regime of Figures 6
	// and 7 where "live migration becomes a non-live one").
	stalled := dirt >= e.roundStartDirt

	if converged || exhausted || stalled {
		// Stop-and-copy: suspend the guest and push the remainder.
		if err := e.guest.Suspend(); err != nil {
			return false, err
		}
		e.suspended = true
		e.suspendedAt = now
		if dirt <= 0 {
			return true, e.beginActivation(now)
		}
		s, err := netsim.NewStream(dirt.Bytes())
		if err != nil {
			return false, err
		}
		e.guest.Memory.CleanAll()
		e.stream = s
		e.st = stateStopAndCopy
		return false, nil // still inside the transfer phase
	}

	// Another pre-copy round: send the pages dirtied during the last one.
	s, err := netsim.NewStream(dirt.Bytes())
	if err != nil {
		return false, err
	}
	e.roundStartDirt = dirt
	e.guest.Memory.CleanAll()
	e.stream = s
	return false, nil
}

// beginActivation records te and starts the resume/cleanup span.
func (e *Engine) beginActivation(now time.Duration) error {
	e.bounds.TE = now
	e.phaseStart = now
	e.st = stateActivation
	return nil
}

// finish moves the guest to the target, resumes it and releases the source.
func (e *Engine) finish(now time.Duration) error {
	if e.moved {
		// Post-copy already switched execution; only cleanup remains.
		return e.finishPostCopy(now)
	}
	e.bounds.ME = now
	if e.suspended {
		e.downtime = now - e.suspendedAt
	}
	// Source side: destroy the stale copy and free resources.
	name := e.guest.Name
	if err := e.src.Detach(name); err != nil {
		return err
	}
	// Target side: adopt the guest and resume it.
	if err := e.dst.Attach(e.guest); err != nil {
		return err
	}
	if e.guest.State() == vm.StateSuspended {
		if err := e.guest.Resume(); err != nil {
			return err
		}
	} else if e.guest.State() == vm.StateMigrating {
		if err := e.guest.EndMigration(); err != nil {
			return err
		}
	}
	e.src.SetMigrationActive(false)
	e.dst.SetMigrationActive(false)
	e.st = stateDone
	return nil
}
