// Package baseline implements the three state-of-the-art models the paper
// compares WAVM3 against in Section VII:
//
//   - HUANG (Eq. 8): instantaneous power linear in the migrating VM's CPU
//     utilisation, integrated over the migration.
//   - LIU (Eq. 9): migration energy linear in the amount of data exchanged.
//   - STRUNK (Eq. 11): migration energy linear in VM memory size and
//     network bandwidth.
//
// Each model is trained on the same campaign data as WAVM3 (per host role)
// and satisfies core.EnergyModel, so the comparison harness treats all
// four uniformly.
//
// Position in the data flow (see ARCHITECTURE.md): downstream of the
// campaign datasets built by internal/experiments, alongside
// internal/core; the trained baselines feed Table VI/VII generation and
// wavm3.Estimator.CompareBaselines. Entry points: TrainHuang, TrainLiu,
// TrainStrunk.
package baseline
