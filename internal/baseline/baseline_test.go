package baseline

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/migration"
	"repro/internal/trace"
	"repro/internal/units"
)

// mkRecord builds a run whose power follows P = alpha·CPU(v) + c exactly
// and whose aggregates (bytes, mem, bandwidth) follow the given values.
func mkRecord(role core.Role, id string, seed int64, alpha, c float64,
	bytes units.Bytes, mem units.Bytes, bw units.BitsPerSecond, n int) *core.RunRecord {
	rng := rand.New(rand.NewSource(seed))
	rec := &core.RunRecord{
		Pair: "m01-m02", Kind: migration.Live, Role: role, RunID: id,
		BytesSent: bytes, VMMem: mem, MeanBandwidth: bw,
	}
	pt := &trace.PowerTrace{}
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 500 * time.Millisecond
		cpu := units.Utilisation(rng.Float64() * 32)
		p := units.Watts(alpha*float64(cpu) + c)
		rec.Obs = append(rec.Obs, trace.Observation{
			At: at, Phase: trace.PhaseTransfer, Power: p,
			FeatureSample: trace.FeatureSample{At: at, HostCPU: cpu, VMCPU: cpu / 8},
		})
		_ = pt.Append(at, p)
	}
	rec.MeasuredEnergy = pt.Energy()
	return rec
}

// liuDataset builds runs whose measured energy is exactly eAlpha·bytes +
// eC, with varying transfer sizes.
func liuDataset(eAlpha, eC float64, runs int) *core.Dataset {
	ds := &core.Dataset{}
	for i := 0; i < runs; i++ {
		for _, role := range core.Roles() {
			bytes := units.Bytes(int64(i+1) * 500_000_000)
			rec := mkRecord(role, "liu", int64(i*2+int(role)+1), 2, 500,
				bytes, 4*units.GiB, 600e6, 20+i)
			rec.MeasuredEnergy = units.Joules(eAlpha*float64(bytes) + eC)
			_ = ds.Add(rec)
		}
	}
	return ds
}

func TestHuangRecoversCoefficients(t *testing.T) {
	ds := &core.Dataset{}
	for i := 0; i < 5; i++ {
		_ = ds.Add(mkRecord(core.Source, "h", int64(i+1), 2.27, 671.9, 1e9, 4*units.GiB, 600e6, 60))
		_ = ds.Add(mkRecord(core.Target, "h", int64(i+10), 2.56, 645.8, 1e9, 4*units.GiB, 600e6, 60))
	}
	h, err := TrainHuang(ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Alpha[core.Source]-2.27) > 1e-6 || math.Abs(h.C[core.Source]-671.9) > 1e-6 {
		t.Errorf("source fit = (%v, %v), want (2.27, 671.9)", h.Alpha[core.Source], h.C[core.Source])
	}
	if math.Abs(h.Alpha[core.Target]-2.56) > 1e-6 || math.Abs(h.C[core.Target]-645.8) > 1e-6 {
		t.Errorf("target fit = (%v, %v), want (2.56, 645.8)", h.Alpha[core.Target], h.C[core.Target])
	}
	if h.Name() != "HUANG" {
		t.Error("name wrong")
	}
}

func TestHuangPredictMatchesGeneratedEnergy(t *testing.T) {
	ds := &core.Dataset{}
	for i := 0; i < 4; i++ {
		_ = ds.Add(mkRecord(core.Source, "h", int64(i+1), 2.0, 650, 1e9, 4*units.GiB, 600e6, 60))
		_ = ds.Add(mkRecord(core.Target, "h", int64(i+20), 2.0, 650, 1e9, 4*units.GiB, 600e6, 60))
	}
	h, err := TrainHuang(ds)
	if err != nil {
		t.Fatal(err)
	}
	rec := ds.Runs[0]
	got, err := h.PredictEnergy(rec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got-rec.MeasuredEnergy)) > 1e-6*float64(rec.MeasuredEnergy) {
		t.Errorf("predicted %v, measured %v", got, rec.MeasuredEnergy)
	}
}

func TestHuangConstantVMCPUFallsBack(t *testing.T) {
	// Constant host CPU everywhere → rank-deficient design → constant
	// model at the mean power.
	ds := &core.Dataset{}
	for i := 0; i < 3; i++ {
		rec := mkRecord(core.Source, "h", int64(i+1), 2.0, 650, 1e9, 4*units.GiB, 600e6, 40)
		_ = ds.Add(rec)
		trec := mkRecord(core.Target, "h", int64(i+30), 0, 600, 1e9, 4*units.GiB, 600e6, 40)
		for j := range trec.Obs {
			trec.Obs[j].HostCPU = 2.5
			trec.Obs[j].Power = 600
		}
		_ = ds.Add(trec)
	}
	h, err := TrainHuang(ds)
	if err != nil {
		t.Fatal(err)
	}
	if h.Alpha[core.Target] != 0 {
		t.Errorf("degenerate target alpha = %v, want 0", h.Alpha[core.Target])
	}
	if math.Abs(h.C[core.Target]-600) > 1e-9 {
		t.Errorf("degenerate target C = %v, want 600 (mean power)", h.C[core.Target])
	}
}

func TestHuangValidation(t *testing.T) {
	if _, err := TrainHuang(nil); err == nil {
		t.Error("nil dataset must fail")
	}
	if _, err := TrainHuang(&core.Dataset{}); err == nil {
		t.Error("empty dataset must fail")
	}
	h := &Huang{Alpha: map[core.Role]float64{}, C: map[core.Role]float64{}}
	rec := mkRecord(core.Source, "x", 1, 2, 650, 1e9, 4*units.GiB, 600e6, 10)
	if _, err := h.PredictEnergy(rec); err == nil {
		t.Error("missing role coefficients must fail")
	}
}

func TestLiuRecoversCoefficients(t *testing.T) {
	ds := liuDataset(2.4e-6, 494.2, 6)
	l, err := TrainLiu(ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Alpha[core.Source]-2.4e-6) > 1e-12 {
		t.Errorf("alpha = %v, want 2.4e-6", l.Alpha[core.Source])
	}
	if math.Abs(l.C[core.Source]-494.2) > 1e-4 {
		t.Errorf("C = %v, want 494.2", l.C[core.Source])
	}
	if l.Name() != "LIU" {
		t.Error("name wrong")
	}
	// Prediction is exact on the generating line.
	rec := ds.Runs[0]
	got, err := l.PredictEnergy(rec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got-rec.MeasuredEnergy)) > 1e-6*float64(rec.MeasuredEnergy) {
		t.Errorf("predicted %v, measured %v", got, rec.MeasuredEnergy)
	}
}

func TestLiuValidation(t *testing.T) {
	if _, err := TrainLiu(&core.Dataset{}); err == nil {
		t.Error("empty dataset must fail")
	}
	l := &Liu{Alpha: map[core.Role]float64{core.Source: 1}, C: map[core.Role]float64{core.Source: 0}}
	rec := mkRecord(core.Source, "x", 1, 2, 650, 0, 4*units.GiB, 600e6, 10)
	if _, err := l.PredictEnergy(rec); err == nil {
		t.Error("record without DATA measurement must fail")
	}
	rec2 := mkRecord(core.Target, "x", 1, 2, 650, 1e9, 4*units.GiB, 600e6, 10)
	if _, err := l.PredictEnergy(rec2); err == nil {
		t.Error("missing role must fail")
	}
}

func TestStrunkRecoversPlane(t *testing.T) {
	// Energy = a·MEM + b·BW + c with both regressors varying.
	a, b, c := 3.35e-9, -3.47e-7, 201.1
	ds := &core.Dataset{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		for _, role := range core.Roles() {
			mem := units.Bytes(int64(1+rng.Intn(8)) * int64(units.GiB))
			bw := units.BitsPerSecond(3e8 + rng.Float64()*5e8)
			rec := mkRecord(role, "s", int64(i*2+int(role)+1), 2, 500, 1e9, mem, bw, 20)
			rec.MeasuredEnergy = units.Joules(a*float64(mem) + b*float64(bw) + c)
			_ = ds.Add(rec)
		}
	}
	s, err := TrainStrunk(ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Alpha[core.Source]-a) > 1e-13 {
		t.Errorf("alpha = %v, want %v", s.Alpha[core.Source], a)
	}
	if math.Abs(s.Beta[core.Source]-b) > 1e-11 {
		t.Errorf("beta = %v, want %v", s.Beta[core.Source], b)
	}
	if math.Abs(s.C[core.Source]-c) > 1e-4 {
		t.Errorf("C = %v, want %v", s.C[core.Source], c)
	}
	if s.Name() != "STRUNK" {
		t.Error("name wrong")
	}
}

func TestStrunkConstantMemFallsBack(t *testing.T) {
	// All runs migrate the same 4 GiB VM: the MEM column is collinear with
	// the intercept; the model must drop it rather than fail.
	ds := &core.Dataset{}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 8; i++ {
		for _, role := range core.Roles() {
			bw := units.BitsPerSecond(3e8 + rng.Float64()*5e8)
			rec := mkRecord(role, "s", int64(i*2+int(role)+1), 2, 500, 1e9, 4*units.GiB, bw, 20)
			rec.MeasuredEnergy = units.Joules(1e-7*float64(bw) + 300)
			_ = ds.Add(rec)
		}
	}
	s, err := TrainStrunk(ds)
	if err != nil {
		t.Fatal(err)
	}
	if s.Alpha[core.Source] != 0 {
		t.Errorf("constant-MEM alpha = %v, want 0", s.Alpha[core.Source])
	}
	if math.Abs(s.Beta[core.Source]-1e-7) > 1e-12 {
		t.Errorf("beta = %v, want 1e-7", s.Beta[core.Source])
	}
	// Prediction works after the fallback.
	if _, err := s.PredictEnergy(ds.Runs[0]); err != nil {
		t.Fatal(err)
	}
}

func TestStrunkValidation(t *testing.T) {
	if _, err := TrainStrunk(&core.Dataset{}); err == nil {
		t.Error("empty dataset must fail")
	}
	s := &Strunk{Alpha: map[core.Role]float64{core.Source: 1},
		Beta: map[core.Role]float64{core.Source: 0}, C: map[core.Role]float64{core.Source: 0}}
	rec := mkRecord(core.Source, "x", 1, 2, 650, 1e9, 0, 600e6, 10)
	if _, err := s.PredictEnergy(rec); err == nil {
		t.Error("record without VM memory must fail")
	}
}

func TestPredictionsClampAtZero(t *testing.T) {
	l := &Liu{Alpha: map[core.Role]float64{core.Source: -1}, C: map[core.Role]float64{core.Source: 0}}
	rec := mkRecord(core.Source, "x", 1, 2, 650, 1e9, 4*units.GiB, 600e6, 10)
	e, err := l.PredictEnergy(rec)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("negative energy prediction %v must clamp to 0", e)
	}
}

func TestStrunkConstantEverythingFallsBackToMean(t *testing.T) {
	// Same VM size and same (unloaded) link in every training run: STRUNK
	// degenerates to the constant model at the mean energy.
	ds := &core.Dataset{}
	for i := 0; i < 6; i++ {
		for _, role := range core.Roles() {
			rec := mkRecord(role, "s", int64(i*2+int(role)+1), 2, 500, 1e9, 4*units.GiB, 760e6, 20)
			rec.MeasuredEnergy = units.Joules(30000 + float64(i)*1000)
			_ = ds.Add(rec)
		}
	}
	s, err := TrainStrunk(ds)
	if err != nil {
		t.Fatal(err)
	}
	if s.Alpha[core.Source] != 0 || s.Beta[core.Source] != 0 {
		t.Errorf("degenerate STRUNK slopes = %v/%v, want 0/0", s.Alpha[core.Source], s.Beta[core.Source])
	}
	if s.C[core.Source] != 32500 {
		t.Errorf("degenerate STRUNK C = %v, want mean 32500", s.C[core.Source])
	}
}
