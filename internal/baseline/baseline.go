package baseline

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// Huang is the model of Huang et al. [3]: instantaneous power linear in
// CPU utilisation, per host role, integrated over the migration. The
// paper's Eq. 8 writes the regressor as CPU(v,t), but its comparison
// discussion (Section VII) states the model "considers the CPU of source
// and target hosts" — which is what makes it competitive on non-live
// migration where the suspended guest's own CPU is identically zero. We
// therefore regress on the host CPU utilisation, the interpretation under
// which the paper's reported behaviour is reproducible.
type Huang struct {
	// Alpha and C per role.
	Alpha, C map[core.Role]float64
}

// Name implements core.EnergyModel.
func (h *Huang) Name() string { return "HUANG" }

// TrainHuang fits the per-role coefficients from power readings.
func TrainHuang(ds *core.Dataset) (*Huang, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("baseline: empty training dataset for HUANG")
	}
	out := &Huang{Alpha: make(map[core.Role]float64), C: make(map[core.Role]float64)}
	for _, role := range core.Roles() {
		var rows [][]float64
		var y []float64
		for _, r := range ds.Runs {
			if r.Role != role {
				continue
			}
			for _, o := range r.Obs {
				rows = append(rows, []float64{float64(o.HostCPU)})
				y = append(y, float64(o.Power))
			}
		}
		if len(rows) < 2 {
			return nil, fmt.Errorf("baseline: no %v readings for HUANG", role)
		}
		x, err := stats.DesignMatrix(rows, true)
		if err != nil {
			return nil, err
		}
		fit, err := stats.OLS(x, y)
		if err != nil {
			// A degenerate campaign can hold host CPU constant (idle-only
			// runs); fall back to the mean-power constant model.
			if errors.Is(err, stats.ErrRankDeficient) {
				out.Alpha[role] = 0
				out.C[role] = stats.Mean(y)
				continue
			}
			return nil, err
		}
		out.C[role] = fit.Coeffs[0]
		out.Alpha[role] = fit.Coeffs[1]
	}
	return out, nil
}

// PredictEnergy implements core.EnergyModel by integrating Eq. 8 over the
// record's observation timestamps.
func (h *Huang) PredictEnergy(r *core.RunRecord) (units.Joules, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	alpha, ok := h.Alpha[r.Role]
	if !ok {
		return 0, fmt.Errorf("baseline: HUANG has no coefficients for %v", r.Role)
	}
	c := h.C[r.Role]
	pred := &trace.PowerTrace{Host: r.RunID}
	for _, o := range r.Obs {
		p := alpha*float64(o.HostCPU) + c
		if p < 0 {
			p = 0
		}
		if err := pred.Append(o.At, units.Watts(p)); err != nil {
			return 0, err
		}
	}
	return pred.Energy(), nil
}

// Liu is the model of Liu et al. [4]: Emigr = α·DATA + C, per host role,
// where DATA is the measured amount of state data exchanged (the paper
// substitutes its own network instrumentation for Liu's analytic Eq. 10).
type Liu struct {
	Alpha, C map[core.Role]float64
}

// Name implements core.EnergyModel.
func (l *Liu) Name() string { return "LIU" }

// TrainLiu fits per-role energy-vs-data lines on whole runs.
func TrainLiu(ds *core.Dataset) (*Liu, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("baseline: empty training dataset for LIU")
	}
	out := &Liu{Alpha: make(map[core.Role]float64), C: make(map[core.Role]float64)}
	for _, role := range core.Roles() {
		var rows [][]float64
		var y []float64
		for _, r := range ds.Runs {
			if r.Role != role {
				continue
			}
			rows = append(rows, []float64{float64(r.BytesSent)})
			y = append(y, float64(r.MeasuredEnergy))
		}
		if len(rows) < 2 {
			return nil, fmt.Errorf("baseline: %d %v runs for LIU, need ≥ 2", len(rows), role)
		}
		x, err := stats.DesignMatrix(rows, true)
		if err != nil {
			return nil, err
		}
		fit, err := stats.OLS(x, y)
		if err != nil {
			return nil, fmt.Errorf("baseline: fitting LIU/%v: %w", role, err)
		}
		out.C[role] = fit.Coeffs[0]
		out.Alpha[role] = fit.Coeffs[1]
	}
	return out, nil
}

// PredictEnergy implements core.EnergyModel (Eq. 9).
func (l *Liu) PredictEnergy(r *core.RunRecord) (units.Joules, error) {
	alpha, ok := l.Alpha[r.Role]
	if !ok {
		return 0, fmt.Errorf("baseline: LIU has no coefficients for %v", r.Role)
	}
	if r.BytesSent <= 0 {
		return 0, fmt.Errorf("baseline: run %s has no transfer-size measurement", r.RunID)
	}
	e := alpha*float64(r.BytesSent) + l.C[r.Role]
	if e < 0 {
		e = 0
	}
	return units.Joules(e), nil
}

// Strunk is the model of Strunk [17]: Emigr = α·MEM(v) + β·BW(S,T) + C,
// per host role, on whole runs.
type Strunk struct {
	Alpha, Beta, C map[core.Role]float64
}

// Name implements core.EnergyModel.
func (s *Strunk) Name() string { return "STRUNK" }

// TrainStrunk fits the per-role plane on whole runs. When every training
// run migrates the same VM size (as in the paper's campaign), the MEM
// column is collinear with the intercept; the fit then drops the MEM term
// and attributes its effect to the constant, mirroring how a degenerate
// design degrades this model in practice.
func TrainStrunk(ds *core.Dataset) (*Strunk, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("baseline: empty training dataset for STRUNK")
	}
	out := &Strunk{
		Alpha: make(map[core.Role]float64),
		Beta:  make(map[core.Role]float64),
		C:     make(map[core.Role]float64),
	}
	for _, role := range core.Roles() {
		var rows [][]float64
		var y []float64
		for _, r := range ds.Runs {
			if r.Role != role {
				continue
			}
			rows = append(rows, []float64{float64(r.VMMem), float64(r.MeanBandwidth)})
			y = append(y, float64(r.MeasuredEnergy))
		}
		if len(rows) < 3 {
			return nil, fmt.Errorf("baseline: %d %v runs for STRUNK, need ≥ 3", len(rows), role)
		}
		x, err := stats.DesignMatrix(rows, true)
		if err != nil {
			return nil, err
		}
		fit, err := stats.OLS(x, y)
		if errors.Is(err, stats.ErrRankDeficient) {
			// Constant MEM across runs: refit bandwidth-only.
			bwRows := make([][]float64, len(rows))
			for i, row := range rows {
				bwRows[i] = []float64{row[1]}
			}
			x2, err2 := stats.DesignMatrix(bwRows, true)
			if err2 != nil {
				return nil, err2
			}
			fit2, err2 := stats.OLS(x2, y)
			if errors.Is(err2, stats.ErrRankDeficient) {
				// Bandwidth constant too (every training run saw the same
				// unloaded link): all that is left is the constant model.
				out.C[role] = stats.Mean(y)
				out.Alpha[role] = 0
				out.Beta[role] = 0
				continue
			}
			if err2 != nil {
				return nil, fmt.Errorf("baseline: fitting STRUNK/%v: %w", role, err2)
			}
			out.C[role] = fit2.Coeffs[0]
			out.Alpha[role] = 0
			out.Beta[role] = fit2.Coeffs[1]
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("baseline: fitting STRUNK/%v: %w", role, err)
		}
		out.C[role] = fit.Coeffs[0]
		out.Alpha[role] = fit.Coeffs[1]
		out.Beta[role] = fit.Coeffs[2]
	}
	return out, nil
}

// PredictEnergy implements core.EnergyModel (Eq. 11).
func (s *Strunk) PredictEnergy(r *core.RunRecord) (units.Joules, error) {
	alpha, ok := s.Alpha[r.Role]
	if !ok {
		return 0, fmt.Errorf("baseline: STRUNK has no coefficients for %v", r.Role)
	}
	if r.VMMem <= 0 {
		return 0, fmt.Errorf("baseline: run %s has no VM memory size", r.RunID)
	}
	e := alpha*float64(r.VMMem) + s.Beta[r.Role]*float64(r.MeanBandwidth) + s.C[r.Role]
	if e < 0 {
		e = 0
	}
	return units.Joules(e), nil
}

// Compile-time interface checks.
var (
	_ core.EnergyModel = (*Huang)(nil)
	_ core.EnergyModel = (*Liu)(nil)
	_ core.EnergyModel = (*Strunk)(nil)
)
