package baseline

import (
	"errors"

	"repro/internal/units"
)

// LiuRound is one pre-copy round's inputs to Liu's analytic data model
// (the paper's Eq. 10): the bandwidth available during the round and the
// dirtying ratio observed over it.
type LiuRound struct {
	Bandwidth  units.BitsPerSecond
	DirtyRatio units.Fraction
}

// LiuAnalyticData computes the amount of data exchanged during a live
// migration per Liu et al.'s round model as the paper presents it:
//
//	DATA = Σ_{r=0..n} (MEM(v) · PAGESIZE) / BW(S,T,r) · DR(v,t,r)
//
// with the memory size in pages. The paper itself substitutes measured
// network counters for this formula ("we use instead the amount of data
// transferred measured with our network instrumentation"); this analytic
// form is provided for completeness and for studies without
// instrumentation. The first round (r=0) always moves the full image, so
// an effective DR of 1 is used for it regardless of the supplied value.
func LiuAnalyticData(memPages units.Pages, rounds []LiuRound) (units.Bytes, error) {
	if memPages <= 0 {
		return 0, errors.New("baseline: LIU analytic model needs a positive memory size")
	}
	if len(rounds) == 0 {
		return 0, errors.New("baseline: LIU analytic model needs at least one round")
	}
	imageBytes := float64(memPages.Bytes())
	total := 0.0
	for i, r := range rounds {
		if r.Bandwidth <= 0 {
			return 0, errors.New("baseline: LIU analytic model needs positive round bandwidth")
		}
		dr := float64(r.DirtyRatio.Clamp())
		if i == 0 {
			dr = 1 // the first iteration pushes the whole image
		}
		// The Eq. 10 fraction (MEM·PAGESIZE)/BW is the round's duration;
		// multiplied by the dirtying ratio it yields the share of the image
		// re-sent in the next round. Interpreted as data, each term is the
		// image bytes scaled by the round's dirty share.
		total += imageBytes * dr
		_ = r.Bandwidth // bandwidth fixes the round duration, not its volume
	}
	return units.Bytes(total), nil
}

// LiuRoundsFromWorkload derives the per-round dirty ratios of a steady
// workload: given the image size, a constant dirty page rate and a
// constant bandwidth, each round lasts as long as the previous round's
// data takes to transfer, and dirties rate·duration pages (capped at the
// working set). It returns the rounds until the dirty set stops shrinking
// or maxRounds is reached — the analytic counterpart of the migration
// engine's behaviour, usable for sanity-checking it.
func LiuRoundsFromWorkload(memPages units.Pages, pagesPerSecond float64, bw units.BitsPerSecond, maxRounds int) []LiuRound {
	if maxRounds <= 0 {
		maxRounds = 30
	}
	var rounds []LiuRound
	pending := float64(memPages) // pages to send this round
	for r := 0; r < maxRounds && pending > 0; r++ {
		duration := bw.TimeToSend(units.Pages(pending).Bytes()).Seconds()
		dirtied := pagesPerSecond * duration
		if dirtied > float64(memPages) {
			dirtied = float64(memPages)
		}
		dr := units.Fraction(pending / float64(memPages))
		rounds = append(rounds, LiuRound{Bandwidth: bw, DirtyRatio: dr})
		if dirtied >= pending {
			// No progress: the next round would be at least as big; a real
			// engine suspends and pushes the accumulated dirt in one final
			// stop-and-copy, which still counts as exchanged data.
			rounds = append(rounds, LiuRound{
				Bandwidth:  bw,
				DirtyRatio: units.Fraction(dirtied / float64(memPages)),
			})
			break
		}
		pending = dirtied
	}
	return rounds
}
