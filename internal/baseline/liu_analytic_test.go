package baseline

import (
	"testing"

	"repro/internal/units"
)

func TestLiuAnalyticDataSingleRound(t *testing.T) {
	// One round = the whole image, regardless of the nominal DR.
	mem := units.PagesOf(4 * units.GiB)
	data, err := LiuAnalyticData(mem, []LiuRound{{Bandwidth: 600e6, DirtyRatio: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if data != mem.Bytes() {
		t.Errorf("single round data = %v, want image %v", data, mem.Bytes())
	}
}

func TestLiuAnalyticDataAccumulates(t *testing.T) {
	mem := units.PagesOf(4 * units.GiB)
	rounds := []LiuRound{
		{Bandwidth: 600e6, DirtyRatio: 1},   // full image
		{Bandwidth: 600e6, DirtyRatio: 0.5}, // half re-sent
		{Bandwidth: 600e6, DirtyRatio: 0.25},
	}
	data, err := LiuAnalyticData(mem, rounds)
	if err != nil {
		t.Fatal(err)
	}
	want := units.Bytes(float64(mem.Bytes()) * 1.75)
	if data != want {
		t.Errorf("data = %v, want %v", data, want)
	}
}

func TestLiuAnalyticDataValidation(t *testing.T) {
	if _, err := LiuAnalyticData(0, []LiuRound{{Bandwidth: 1}}); err == nil {
		t.Error("zero memory must fail")
	}
	if _, err := LiuAnalyticData(100, nil); err == nil {
		t.Error("no rounds must fail")
	}
	if _, err := LiuAnalyticData(100, []LiuRound{{Bandwidth: 0}}); err == nil {
		t.Error("zero bandwidth must fail")
	}
}

func TestLiuRoundsFromWorkloadConverges(t *testing.T) {
	mem := units.PagesOf(4 * units.GiB) // ~1M pages
	// Slow dirtier: rounds shrink geometrically and terminate quickly.
	rounds := LiuRoundsFromWorkload(mem, 5_000, 600e6, 30)
	if len(rounds) < 2 {
		t.Fatalf("quiet workload produced %d rounds, want several", len(rounds))
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i].DirtyRatio >= rounds[i-1].DirtyRatio {
			t.Errorf("round %d DR %v did not shrink from %v", i, rounds[i].DirtyRatio, rounds[i-1].DirtyRatio)
		}
	}
}

func TestLiuRoundsFromWorkloadStallsOnHeavyDirtier(t *testing.T) {
	mem := units.PagesOf(4 * units.GiB)
	// Dirtier faster than the link drains: the round list must terminate
	// early (the engine's stop-and-copy condition) rather than iterate to
	// the cap.
	heavy := LiuRoundsFromWorkload(mem, 500_000, 600e6, 30)
	if len(heavy) >= 30 {
		t.Errorf("non-converging workload ran %d rounds, want early stall", len(heavy))
	}
	// Analytic data for the heavy case exceeds one image.
	data, err := LiuAnalyticData(mem, heavy)
	if err != nil {
		t.Fatal(err)
	}
	if data <= mem.Bytes() {
		t.Errorf("heavy dirtier analytic data %v must exceed one image %v", data, mem.Bytes())
	}
}

func TestLiuAnalyticAgreesWithEngineOrder(t *testing.T) {
	// The analytic round model and the real engine agree on the ordering:
	// more dirtying → more data.
	mem := units.PagesOf(4 * units.GiB)
	quiet, err := LiuAnalyticData(mem, LiuRoundsFromWorkload(mem, 5_000, 600e6, 30))
	if err != nil {
		t.Fatal(err)
	}
	busy, err := LiuAnalyticData(mem, LiuRoundsFromWorkload(mem, 60_000, 600e6, 30))
	if err != nil {
		t.Fatal(err)
	}
	if busy <= quiet {
		t.Errorf("busy analytic data %v must exceed quiet %v", busy, quiet)
	}
}
