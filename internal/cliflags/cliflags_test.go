package cliflags

import (
	"bytes"
	"encoding/json"
	"flag"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/report"
)

func TestRegisterParses(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse([]string{"-workers", "3", "-nocache", "-benchjson", "p.json"}); err != nil {
		t.Fatal(err)
	}
	if c.Workers != 3 || !c.NoCache || c.BenchJSON != "p.json" {
		t.Errorf("parsed %+v", c)
	}
	if c.Cache() != nil {
		t.Error("-nocache must yield a nil cache")
	}
	c.NoCache = false
	if c.Cache() == nil {
		t.Error("default must yield a cache")
	}
}

func TestFinishWritesBenchJSON(t *testing.T) {
	c := &Common{Workers: 2, BenchJSON: filepath.Join(t.TempDir(), "perf.json")}
	perf := c.NewBenchReport("tool-x")
	if perf.Workers != 2 {
		t.Errorf("workers not recorded: %+v", perf)
	}
	perf.Add("stage", time.Second)
	cache := c.Cache()
	var log bytes.Buffer
	if err := c.Finish(&log, perf, cache, time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	if perf.TotalSeconds <= 0 {
		t.Error("total not sealed")
	}
	if !strings.Contains(log.String(), "tool-x: run cache:") {
		t.Errorf("cache stats not logged: %q", log.String())
	}
	got, err := report.ReadBenchReport(c.BenchJSON)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "tool-x" || len(got.Artefacts) != 1 {
		b, _ := json.Marshal(got)
		t.Errorf("round-tripped report: %s", b)
	}
}

func TestFinishNilCacheSilent(t *testing.T) {
	c := &Common{NoCache: true}
	perf := c.NewBenchReport("t")
	var log bytes.Buffer
	if err := c.Finish(&log, perf, c.Cache(), time.Now()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(log.String(), "run cache") {
		t.Errorf("nil cache logged stats: %q", log.String())
	}
}
