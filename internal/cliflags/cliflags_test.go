package cliflags

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/migration"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRegisterParses(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse([]string{"-workers", "3", "-nocache", "-benchjson", "p.json"}); err != nil {
		t.Fatal(err)
	}
	if c.Workers != 3 || !c.NoCache || c.BenchJSON != "p.json" {
		t.Errorf("parsed %+v", c)
	}
	if cache, err := c.Cache(); err != nil || cache != nil {
		t.Errorf("-nocache must yield a nil cache (got %v, %v)", cache, err)
	}
	c.NoCache = false
	if cache, err := c.Cache(); err != nil || cache == nil {
		t.Errorf("default must yield a cache (got %v, %v)", cache, err)
	}
}

func TestCacheDirBuildsPersistentCache(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := Register(fs)
	dir := filepath.Join(t.TempDir(), "runcache")
	if err := fs.Parse([]string{"-cache-dir", dir}); err != nil {
		t.Fatal(err)
	}
	cache, err := c.Cache()
	if err != nil {
		t.Fatal(err)
	}
	if !cache.Persistent() {
		t.Error("-cache-dir must yield a persistent cache")
	}
	if _, err := os.Stat(dir); err != nil {
		t.Errorf("cache dir not created: %v", err)
	}
	// -nocache overrides -cache-dir: no caching of any kind.
	c.NoCache = true
	if cache, err := c.Cache(); err != nil || cache != nil {
		t.Errorf("-nocache with -cache-dir must yield a nil cache (got %v, %v)", cache, err)
	}
	// An unusable directory is a startup error, not a silent downgrade.
	c.NoCache = false
	file := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c.CacheDir = file
	if _, err := c.Cache(); err == nil {
		t.Error("a file as -cache-dir must error")
	}
}

func TestFinishWritesBenchJSON(t *testing.T) {
	c := &Common{Workers: 2, BenchJSON: filepath.Join(t.TempDir(), "perf.json")}
	perf := c.NewBenchReport("tool-x")
	if perf.Workers != 2 {
		t.Errorf("workers not recorded: %+v", perf)
	}
	perf.Add("stage", time.Second)
	cache, err := c.Cache()
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	if err := c.Finish(&log, perf, cache, time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	if perf.TotalSeconds <= 0 {
		t.Error("total not sealed")
	}
	if !strings.Contains(log.String(), "tool-x: run cache:") {
		t.Errorf("cache stats not logged: %q", log.String())
	}
	got, err := report.ReadBenchReport(c.BenchJSON)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "tool-x" || len(got.Artefacts) != 1 {
		b, _ := json.Marshal(got)
		t.Errorf("round-tripped report: %s", b)
	}
}

func TestFinishNilCacheSilent(t *testing.T) {
	c := &Common{NoCache: true}
	perf := c.NewBenchReport("t")
	cache, err := c.Cache()
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	if err := c.Finish(&log, perf, cache, time.Now()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(log.String(), "run cache") {
		t.Errorf("nil cache logged stats: %q", log.String())
	}
}

func TestResilienceFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := Register(fs)
	err := fs.Parse([]string{
		"-cache-backend", "obj",
		"-cache-op-timeout", "500ms",
		"-cache-retries", "1",
		"-cache-breaker", "3",
		"-cache-breaker-cooldown", "200ms",
		"-cache-chaos", "seed=7,err=0.3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.CacheBackend != "obj" || c.CacheOpTimeout != 500*time.Millisecond ||
		c.CacheRetries != 1 || c.CacheBreaker != 3 ||
		c.CacheBreakerCooldown != 200*time.Millisecond || c.CacheChaos != "seed=7,err=0.3" {
		t.Errorf("parsed %+v", c)
	}
}

func TestCacheBackendObj(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := Register(fs)
	dir := filepath.Join(t.TempDir(), "objcache")
	if err := fs.Parse([]string{"-cache-dir", dir, "-cache-backend", "obj"}); err != nil {
		t.Fatal(err)
	}
	cache, err := c.Cache()
	if err != nil {
		t.Fatal(err)
	}
	if !cache.Persistent() {
		t.Error("-cache-backend obj must still yield a persistent cache")
	}
	if err := cache.Close(); err != nil {
		t.Errorf("closing the obj-backed cache: %v", err)
	}

	c.CacheBackend = "bogus"
	if _, err := c.Cache(); err == nil {
		t.Error("an unknown -cache-backend must error")
	}
}

func TestCacheChaosSpecValidated(t *testing.T) {
	c := &Common{CacheDir: filepath.Join(t.TempDir(), "cc"), CacheChaos: "err=2"}
	if _, err := c.Cache(); err == nil {
		t.Error("an out-of-range -cache-chaos rate must error")
	}
	c.CacheChaos = "nonsense"
	if _, err := c.Cache(); err == nil {
		t.Error("a malformed -cache-chaos spec must error")
	}
}

// TestFinishFlushesAsyncPublishes is the reason Finish closes the cache:
// artefacts published asynchronously during the session must be on disk
// by the time Finish returns (the CI cold→warm gate depends on it), and
// the resilience counters must appear in the benchjson.
func TestFinishFlushesAsyncPublishes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "runcache")
	c := &Common{CacheDir: dir, CacheRetries: 2, CacheBreaker: 5,
		CacheOpTimeout: 2 * time.Second, CacheBreakerCooldown: time.Second,
		BenchJSON: filepath.Join(t.TempDir(), "perf.json")}
	cache, err := c.Cache()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Run(sim.Scenario{Kind: migration.NonLive, MigratingProfile: workload.IdleProfile(), Seed: 77}); err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	if err := c.Finish(&log, c.NewBenchReport("t"), cache, time.Now()); err != nil {
		t.Fatal(err)
	}
	arts, err := filepath.Glob(filepath.Join(dir, "*.run"))
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 {
		t.Fatalf("%d artefacts on disk after Finish, want 1 (async publish not drained)", len(arts))
	}
	if !strings.Contains(log.String(), "store policy:") {
		t.Errorf("store policy line not logged: %q", log.String())
	}
	got, err := report.ReadBenchReport(c.BenchJSON)
	if err != nil {
		t.Fatal(err)
	}
	if got.BreakerState != "closed" || got.KernelRuns != 1 {
		t.Errorf("benchjson resilience fields: %+v", got)
	}
}
