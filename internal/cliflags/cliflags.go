// Package cliflags wires the simulation-driving flags every command
// shares — -workers, -nocache, -cache-dir, -benchjson, -timeout,
// -cpuprofile and -memprofile — so the binaries stay in flag parity by
// construction instead of by copy-paste. A command registers the common
// set next to its own flags, builds the session cache and execution
// context from it, starts the profilers around its compute, and
// finishes its benchmark report through it.
package cliflags

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/report"
	"repro/internal/sim"
)

// ExitDeadline is the documented exit code a command returns when its
// -timeout expires before the session finishes: distinct from 1 (any
// other failure) and 2 (usage errors), so scripts and CI gates can tell
// "too slow" from "wrong".
const ExitDeadline = 3

// Common is the shared flag set of the simulation commands.
type Common struct {
	// Workers bounds the session's concurrency (0 = all CPUs,
	// 1 = sequential; results identical for every value).
	Workers int
	// NoCache disables the cross-campaign run cache (results identical,
	// only slower). It overrides CacheDir: -nocache means no caching of
	// any kind.
	NoCache bool
	// CacheDir, when non-empty, backs the run cache with a persistent
	// content-addressed artefact directory shared across processes and
	// sessions: a warm dir answers every cacheable kernel run from disk
	// with bit-identical results.
	CacheDir string
	// BenchJSON, when non-empty, is where the machine-readable timing
	// and cache metrics go.
	BenchJSON string
	// Timeout bounds the session's wall clock; 0 means unbounded. On
	// expiry the compute core abandons in-flight work at its next
	// cancellation boundary and the command exits with ExitDeadline.
	Timeout time.Duration
	// CPUProfile, when non-empty, writes a pprof CPU profile of the
	// session there (started by StartProfiles, stopped by its closer).
	CPUProfile string
	// MemProfile, when non-empty, writes a pprof allocation profile of
	// the session's end state there (a GC runs first so the heap numbers
	// are live objects, not garbage awaiting collection).
	MemProfile string
}

// Register binds the common flags on the given FlagSet (the default
// command line via flag.CommandLine).
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.IntVar(&c.Workers, "workers", 0, "concurrent simulations (0 = all CPUs, 1 = sequential; results identical)")
	fs.BoolVar(&c.NoCache, "nocache", false, "disable the run cache (results identical, only slower)")
	fs.StringVar(&c.CacheDir, "cache-dir", "", "persist run artefacts in this directory (created if missing; shareable across processes; results identical)")
	fs.StringVar(&c.BenchJSON, "benchjson", "", "write machine-readable timing and cache metrics to this path")
	fs.DurationVar(&c.Timeout, "timeout", 0, "abort the session after this wall-clock span (e.g. 90s, 5m; 0 = unbounded; exit code 3 on expiry)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile of the session to this path")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile of the session's end state to this path")
	return c
}

// StartProfiles starts the profilers the session asked for and returns
// a closer that must run before the command exits (it stops the CPU
// profile and snapshots the heap). With neither flag set it is a no-op
// returning a nil-error closer, so callers can wire it unconditionally:
//
//	stop, err := common.StartProfiles()
//	if err != nil { ... }
//	defer stop()
//
// Callers that exit through os.Exit must invoke the closer explicitly
// on those paths — deferred calls do not run.
func (c *Common) StartProfiles() (stop func() error, err error) {
	var cpu *os.File
	if c.CPUProfile != "" {
		cpu, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cliflags: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("cliflags: -cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("cliflags: -cpuprofile: %w", err)
			}
			cpu = nil
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				return fmt.Errorf("cliflags: -memprofile: %w", err)
			}
			defer f.Close()
			// Up-to-date live-object numbers: collect garbage before the
			// snapshot, as `go test -memprofile` does.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("cliflags: -memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

// Context builds the session's execution context from -timeout: the
// background context when unbounded, a deadline-bearing one otherwise.
// The caller owns the cancel function.
func (c *Common) Context() (context.Context, context.CancelFunc) {
	if c.Timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), c.Timeout)
}

// IsDeadline reports whether err is (or wraps) the -timeout expiry, and
// therefore whether the command should exit with ExitDeadline.
func IsDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}

// Cache builds the session run cache: nil when -nocache was given
// (uncached execution), a memory-only cache by default, and a cache
// backed by the persistent artefact directory when -cache-dir was
// given. The error is an unusable -cache-dir.
func (c *Common) Cache() (*sim.Cache, error) {
	if c.NoCache {
		return nil, nil
	}
	if c.CacheDir == "" {
		return sim.NewCache(0), nil
	}
	store, err := sim.NewDirStore(c.CacheDir)
	if err != nil {
		return nil, err
	}
	return sim.NewCacheWithStore(0, store), nil
}

// NewBenchReport starts a benchmark report for the named tool with the
// session's worker setting recorded.
func (c *Common) NewBenchReport(tool string) *report.BenchReport {
	perf := report.NewBenchReport(tool)
	perf.Workers = c.Workers
	return perf
}

// Finish seals a benchmark report — total wall clock since started,
// the cache's hit/miss/entry counters — then logs the cache statistics
// to w (when a cache was in use) and writes the report to -benchjson
// (when requested). The returned error is a benchjson write failure.
func (c *Common) Finish(w io.Writer, perf *report.BenchReport, cache *sim.Cache, started time.Time) error {
	perf.TotalSeconds = time.Since(started).Seconds()
	stats := cache.Snapshot()
	perf.CacheHits, perf.CacheMisses = stats.Hits, stats.Misses
	perf.CacheEntries = stats.Entries
	perf.KernelRuns = stats.KernelRuns
	if cache.Persistent() {
		perf.DiskHits, perf.DiskMisses = stats.DiskHits, stats.DiskMisses
		perf.Quarantined = stats.Quarantined
	}
	if cache != nil {
		fmt.Fprintf(w, "%s: run cache: %d hits, %d misses, %d entries, %d kernel runs\n",
			perf.Tool, perf.CacheHits, perf.CacheMisses, perf.CacheEntries, perf.KernelRuns)
		if cache.Persistent() {
			fmt.Fprintf(w, "%s: cache dir: %d disk hits, %d disk misses, %d quarantined\n",
				perf.Tool, stats.DiskHits, stats.DiskMisses, stats.Quarantined)
		}
	}
	if c.BenchJSON == "" {
		return nil
	}
	if err := perf.WriteJSONFile(c.BenchJSON); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: wrote timing metrics to %s\n", perf.Tool, c.BenchJSON)
	return nil
}
