// Package cliflags wires the simulation-driving flags every command
// shares — -workers, -nocache and -benchjson — so the binaries stay in
// flag parity by construction instead of by copy-paste. A command
// registers the common set next to its own flags, builds the session
// cache from it, and finishes its benchmark report through it.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"time"

	"repro/internal/report"
	"repro/internal/sim"
)

// Common is the shared flag set of the simulation commands.
type Common struct {
	// Workers bounds the session's concurrency (0 = all CPUs,
	// 1 = sequential; results identical for every value).
	Workers int
	// NoCache disables the cross-campaign run cache (results identical,
	// only slower).
	NoCache bool
	// BenchJSON, when non-empty, is where the machine-readable timing
	// and cache metrics go.
	BenchJSON string
}

// Register binds the common flags on the given FlagSet (the default
// command line via flag.CommandLine).
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.IntVar(&c.Workers, "workers", 0, "concurrent simulations (0 = all CPUs, 1 = sequential; results identical)")
	fs.BoolVar(&c.NoCache, "nocache", false, "disable the run cache (results identical, only slower)")
	fs.StringVar(&c.BenchJSON, "benchjson", "", "write machine-readable timing and cache metrics to this path")
	return c
}

// Cache builds the session run cache: nil when -nocache was given,
// which every consumer treats as uncached execution.
func (c *Common) Cache() *sim.Cache {
	if c.NoCache {
		return nil
	}
	return sim.NewCache(0)
}

// NewBenchReport starts a benchmark report for the named tool with the
// session's worker setting recorded.
func (c *Common) NewBenchReport(tool string) *report.BenchReport {
	perf := report.NewBenchReport(tool)
	perf.Workers = c.Workers
	return perf
}

// Finish seals a benchmark report — total wall clock since started,
// the cache's hit/miss/entry counters — then logs the cache statistics
// to w (when a cache was in use) and writes the report to -benchjson
// (when requested). The returned error is a benchjson write failure.
func (c *Common) Finish(w io.Writer, perf *report.BenchReport, cache *sim.Cache, started time.Time) error {
	perf.TotalSeconds = time.Since(started).Seconds()
	perf.CacheHits, perf.CacheMisses = cache.Stats()
	perf.CacheEntries = cache.Len()
	if cache != nil {
		fmt.Fprintf(w, "%s: run cache: %d hits, %d misses, %d entries\n",
			perf.Tool, perf.CacheHits, perf.CacheMisses, perf.CacheEntries)
	}
	if c.BenchJSON == "" {
		return nil
	}
	if err := perf.WriteJSONFile(c.BenchJSON); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: wrote timing metrics to %s\n", perf.Tool, c.BenchJSON)
	return nil
}
