// Package cliflags wires the simulation-driving flags every command
// shares — -workers, -nocache, -cache-dir, -cache-backend, the store
// resilience knobs (-cache-op-timeout, -cache-retries, -cache-breaker,
// -cache-breaker-cooldown, -cache-chaos), -benchjson, -timeout,
// -cpuprofile and -memprofile — so the binaries stay in flag parity by
// construction instead of by copy-paste. A command registers the common
// set next to its own flags, builds the session cache and execution
// context from it, starts the profilers around its compute, and
// finishes its benchmark report through it.
package cliflags

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/report"
	"repro/internal/sim"
)

// ExitDeadline is the documented exit code a command returns when its
// -timeout expires before the session finishes: distinct from 1 (any
// other failure) and 2 (usage errors), so scripts and CI gates can tell
// "too slow" from "wrong".
const ExitDeadline = 3

// Common is the shared flag set of the simulation commands.
type Common struct {
	// Workers bounds the session's concurrency (0 = all CPUs,
	// 1 = sequential; results identical for every value).
	Workers int
	// NoCache disables the cross-campaign run cache (results identical,
	// only slower). It overrides CacheDir: -nocache means no caching of
	// any kind.
	NoCache bool
	// CacheDir, when non-empty, backs the run cache with a persistent
	// content-addressed artefact directory shared across processes and
	// sessions: a warm dir answers every cacheable kernel run from disk
	// with bit-identical results.
	CacheDir string
	// CacheBackend selects the persistent store layout under -cache-dir:
	// "dir" (flock-locked directory tree, cross-process singleflight) or
	// "obj" (lockless object-store semantics — owner-wins conditional
	// puts, no locking, the S3 shape).
	CacheBackend string
	// CacheOpTimeout bounds one persistent-store Get/Put/Quarantine so a
	// hung store cannot stall a kernel run past it. 0 disables the bound.
	CacheOpTimeout time.Duration
	// CacheRetries is how many times a failed store op is re-attempted
	// with decorrelated-jitter backoff before being survived as a miss.
	CacheRetries int
	// CacheBreaker opens the store circuit breaker after this many
	// consecutive failures, running the cache memory-only until a
	// half-open probe finds the store healed. 0 disables the breaker.
	CacheBreaker int
	// CacheBreakerCooldown is how long the breaker stays open before
	// probing.
	CacheBreakerCooldown time.Duration
	// CacheChaos, when non-empty, wraps the store in a deterministic
	// fault injector (sim.ParseFaultSpec syntax) — the hostile-store
	// test harness, not a production knob.
	CacheChaos string
	// BenchJSON, when non-empty, is where the machine-readable timing
	// and cache metrics go.
	BenchJSON string
	// Timeout bounds the session's wall clock; 0 means unbounded. On
	// expiry the compute core abandons in-flight work at its next
	// cancellation boundary and the command exits with ExitDeadline.
	Timeout time.Duration
	// CPUProfile, when non-empty, writes a pprof CPU profile of the
	// session there (started by StartProfiles, stopped by its closer).
	CPUProfile string
	// MemProfile, when non-empty, writes a pprof allocation profile of
	// the session's end state there (a GC runs first so the heap numbers
	// are live objects, not garbage awaiting collection).
	MemProfile string
}

// Register binds the common flags on the given FlagSet (the default
// command line via flag.CommandLine).
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.IntVar(&c.Workers, "workers", 0, "concurrent simulations (0 = all CPUs, 1 = sequential; results identical)")
	fs.BoolVar(&c.NoCache, "nocache", false, "disable the run cache (results identical, only slower)")
	fs.StringVar(&c.CacheDir, "cache-dir", "", "persist run artefacts in this directory (created if missing; shareable across processes; results identical)")
	fs.StringVar(&c.CacheBackend, "cache-backend", "dir", "persistent store layout under -cache-dir: dir (flock singleflight) or obj (lockless object-store semantics)")
	fs.DurationVar(&c.CacheOpTimeout, "cache-op-timeout", 2*time.Second, "bound one persistent-store operation (0 = unbounded); a slower store degrades to misses, never stalls")
	fs.IntVar(&c.CacheRetries, "cache-retries", 2, "re-attempts per failed store operation, with jittered backoff (0 = no retries)")
	fs.IntVar(&c.CacheBreaker, "cache-breaker", 5, "consecutive store failures that open the circuit breaker and degrade the cache to memory-only (0 = no breaker)")
	fs.DurationVar(&c.CacheBreakerCooldown, "cache-breaker-cooldown", time.Second, "how long the open breaker waits before half-open probing the store")
	fs.StringVar(&c.CacheChaos, "cache-chaos", "", "inject deterministic store faults, e.g. 'seed=7,err=0.3,torn=0.1,latency=1ms,for=2s' (test harness; results stay identical)")
	fs.StringVar(&c.BenchJSON, "benchjson", "", "write machine-readable timing and cache metrics to this path")
	fs.DurationVar(&c.Timeout, "timeout", 0, "abort the session after this wall-clock span (e.g. 90s, 5m; 0 = unbounded; exit code 3 on expiry)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile of the session to this path")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile of the session's end state to this path")
	return c
}

// StartProfiles starts the profilers the session asked for and returns
// a closer that must run before the command exits (it stops the CPU
// profile and snapshots the heap). With neither flag set it is a no-op
// returning a nil-error closer, so callers can wire it unconditionally:
//
//	stop, err := common.StartProfiles()
//	if err != nil { ... }
//	defer stop()
//
// Callers that exit through os.Exit must invoke the closer explicitly
// on those paths — deferred calls do not run.
func (c *Common) StartProfiles() (stop func() error, err error) {
	var cpu *os.File
	if c.CPUProfile != "" {
		cpu, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cliflags: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("cliflags: -cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("cliflags: -cpuprofile: %w", err)
			}
			cpu = nil
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				return fmt.Errorf("cliflags: -memprofile: %w", err)
			}
			defer f.Close()
			// Up-to-date live-object numbers: collect garbage before the
			// snapshot, as `go test -memprofile` does.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("cliflags: -memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

// Context builds the session's execution context from -timeout: the
// background context when unbounded, a deadline-bearing one otherwise.
// The caller owns the cancel function.
func (c *Common) Context() (context.Context, context.CancelFunc) {
	if c.Timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), c.Timeout)
}

// IsDeadline reports whether err is (or wraps) the -timeout expiry, and
// therefore whether the command should exit with ExitDeadline.
func IsDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}

// Cache builds the session run cache: nil when -nocache was given
// (uncached execution), a memory-only cache by default, and a cache
// backed by the persistent artefact directory when -cache-dir was
// given. Persistent stores are always wrapped in the resilience policy
// (timeouts, retries, breaker, async publishes) configured by the
// cache-* flags, and optionally in the -cache-chaos fault injector
// beneath it. The error is an unusable -cache-dir or a malformed flag.
//
// Callers with a persistent cache must sim.Cache.Close it before
// trusting the store's contents — Finish does this; wavm3d closes
// through service.Shutdown.
func (c *Common) Cache() (*sim.Cache, error) {
	if c.NoCache {
		return nil, nil
	}
	if c.CacheDir == "" {
		return sim.NewCache(0), nil
	}
	var store sim.CacheStore
	var err error
	switch c.CacheBackend {
	case "", "dir":
		store, err = sim.NewDirStore(c.CacheDir)
	case "obj":
		store, err = sim.NewObjStore(c.CacheDir)
	default:
		return nil, fmt.Errorf("cliflags: -cache-backend %q: want dir or obj", c.CacheBackend)
	}
	if err != nil {
		return nil, err
	}
	if c.CacheChaos != "" {
		cfg, err := sim.ParseFaultSpec(c.CacheChaos)
		if err != nil {
			return nil, fmt.Errorf("cliflags: -cache-chaos: %w", err)
		}
		store = sim.NewFaultStore(store, cfg)
	}
	// Flag zero means "mechanism off", which the config spells as a
	// negative (its own zero selects the defaults).
	disabled := func(d time.Duration) time.Duration {
		if d <= 0 {
			return -1
		}
		return d
	}
	rc := sim.ResilienceConfig{
		OpTimeout:        disabled(c.CacheOpTimeout),
		Retries:          c.CacheRetries,
		BreakerThreshold: c.CacheBreaker,
		BreakerCooldown:  c.CacheBreakerCooldown,
		AsyncPublish:     true,
	}
	if rc.Retries <= 0 {
		rc.Retries = -1
	}
	if rc.BreakerThreshold <= 0 {
		rc.BreakerThreshold = -1
	}
	return sim.NewCacheWithStore(0, sim.NewResilientStore(store, rc)), nil
}

// NewBenchReport starts a benchmark report for the named tool with the
// session's worker setting recorded.
func (c *Common) NewBenchReport(tool string) *report.BenchReport {
	perf := report.NewBenchReport(tool)
	perf.Workers = c.Workers
	return perf
}

// Finish seals a benchmark report — it first closes the cache's
// persistent tier (draining async artefact publishes so the store is
// complete before anything reads it), then records total wall clock
// since started and the cache's counters, logs the cache statistics to
// w (when a cache was in use) and writes the report to -benchjson
// (when requested). The returned error is a benchjson write failure; a
// publish-drain failure is logged and survived, consistent with the
// store tier's degrade-never-fail contract.
func (c *Common) Finish(w io.Writer, perf *report.BenchReport, cache *sim.Cache, started time.Time) error {
	if err := cache.Close(); err != nil {
		fmt.Fprintf(w, "%s: cache store close: %v\n", perf.Tool, err)
	}
	perf.TotalSeconds = time.Since(started).Seconds()
	stats := cache.Snapshot()
	perf.CacheHits, perf.CacheMisses = stats.Hits, stats.Misses
	perf.CacheEntries = stats.Entries
	perf.KernelRuns = stats.KernelRuns
	if cache.Persistent() {
		perf.DiskHits, perf.DiskMisses = stats.DiskHits, stats.DiskMisses
		perf.Quarantined = stats.Quarantined
		perf.StoreErrors = stats.StoreErrors
		perf.StoreRetries = stats.Retries
		perf.StoreTimeouts = stats.Timeouts
		perf.BreakerOpens = stats.BreakerOpens
		perf.BreakerState = stats.BreakerState
		perf.PublishDrops = stats.PublishDrops
	}
	if cache != nil {
		fmt.Fprintf(w, "%s: run cache: %d hits, %d misses, %d entries, %d kernel runs\n",
			perf.Tool, perf.CacheHits, perf.CacheMisses, perf.CacheEntries, perf.KernelRuns)
		if cache.Persistent() {
			fmt.Fprintf(w, "%s: cache dir: %d disk hits, %d disk misses, %d quarantined\n",
				perf.Tool, stats.DiskHits, stats.DiskMisses, stats.Quarantined)
			fmt.Fprintf(w, "%s: store policy: %d errors, %d retries, %d timeouts, %d breaker opens (%s), %d publish drops\n",
				perf.Tool, stats.StoreErrors, stats.Retries, stats.Timeouts, stats.BreakerOpens, stats.BreakerState, stats.PublishDrops)
		}
	}
	if c.BenchJSON == "" {
		return nil
	}
	if err := perf.WriteJSONFile(c.BenchJSON); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: wrote timing metrics to %s\n", perf.Tool, c.BenchJSON)
	return nil
}
