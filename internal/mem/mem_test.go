package mem

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func newImg(t *testing.T, size units.Bytes) *Image {
	t.Helper()
	im, err := NewImage(size)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestNewImage(t *testing.T) {
	im := newImg(t, 4*units.GiB)
	if im.TotalPages() != 1<<20 {
		t.Errorf("4 GiB image = %d pages, want %d", im.TotalPages(), 1<<20)
	}
	if im.DirtyPages() != 0 || im.DirtyRatio() != 0 {
		t.Error("new image must be clean")
	}
	if _, err := NewImage(0); err == nil {
		t.Error("zero-size image must fail")
	}
	if _, err := NewImage(-5); err == nil {
		t.Error("negative-size image must fail")
	}
}

func TestDirtyCleanCycle(t *testing.T) {
	im := newImg(t, 64*units.KiB) // 16 pages
	if err := im.Dirty(3); err != nil {
		t.Fatal(err)
	}
	if !im.IsDirty(3) || im.DirtyPages() != 1 {
		t.Error("page 3 should be dirty")
	}
	// Idempotent re-dirty.
	if err := im.Dirty(3); err != nil {
		t.Fatal(err)
	}
	if im.DirtyPages() != 1 {
		t.Errorf("re-dirty changed count to %d", im.DirtyPages())
	}
	im.Clean(3)
	if im.IsDirty(3) || im.DirtyPages() != 0 {
		t.Error("page 3 should be clean again")
	}
	// Cleaning a clean page is a no-op.
	im.Clean(3)
	if im.DirtyPages() != 0 {
		t.Error("double clean corrupted the count")
	}
}

func TestDirtyBounds(t *testing.T) {
	im := newImg(t, 64*units.KiB)
	if err := im.Dirty(-1); err == nil {
		t.Error("negative page must fail")
	}
	if err := im.Dirty(16); err == nil {
		t.Error("out-of-range page must fail")
	}
	if im.IsDirty(-1) || im.IsDirty(99) {
		t.Error("out-of-range IsDirty must be false")
	}
	im.Clean(-1) // must not panic
	im.Clean(99)
}

func TestSnapshotAndCleanAll(t *testing.T) {
	im := newImg(t, 64*units.KiB)
	for _, p := range []units.Pages{0, 5, 15} {
		if err := im.Dirty(p); err != nil {
			t.Fatal(err)
		}
	}
	snap := im.Snapshot()
	if len(snap) != 3 || snap[0] != 0 || snap[1] != 5 || snap[2] != 15 {
		t.Errorf("Snapshot = %v, want [0 5 15]", snap)
	}
	im.CleanAll()
	if im.DirtyPages() != 0 || len(im.Snapshot()) != 0 {
		t.Error("CleanAll left dirty pages")
	}
}

func TestDirtyRatioInvariant(t *testing.T) {
	// Property: after arbitrary dirty/clean operations, 0 ≤ DR ≤ 1 and
	// DirtyPages matches the snapshot length.
	f := func(ops []uint16) bool {
		im, err := NewImage(256 * units.KiB) // 64 pages
		if err != nil {
			return false
		}
		for _, op := range ops {
			page := units.Pages(op % 64)
			if op&0x8000 != 0 {
				im.Clean(page)
			} else if err := im.Dirty(page); err != nil {
				return false
			}
			dr := im.DirtyRatio()
			if dr < 0 || dr > 1 {
				return false
			}
		}
		return int(im.DirtyPages()) == len(im.Snapshot())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformDirtierReachesTargetRatio(t *testing.T) {
	// pagedirtier at 95% working set: given enough writes, DR converges to
	// ≈ the working-set fraction and never exceeds it.
	im := newImg(t, 16*units.MiB) // 4096 pages
	d := NewUniformDirtier(100_000, 0.95, 1)
	for i := 0; i < 100; i++ {
		d.Step(im, 0.1)
	}
	dr := float64(im.DirtyRatio())
	if dr < 0.90 || dr > 0.951 {
		t.Errorf("DR after saturation = %v, want ≈0.95", dr)
	}
}

func TestUniformDirtierRateAccounting(t *testing.T) {
	im := newImg(t, 16*units.MiB)
	d := NewUniformDirtier(1000, 0.5, 2)
	var total int64
	for i := 0; i < 10; i++ {
		total += d.Step(im, 0.1)
	}
	// 1000 pages/s for 1 s total: the carry accumulator must not lose
	// events across fractional steps.
	if total != 1000 {
		t.Errorf("issued %d write events, want 1000", total)
	}
	if d.Rate() != 1000 {
		t.Errorf("Rate = %v, want 1000", d.Rate())
	}
}

func TestUniformDirtierEdgeCases(t *testing.T) {
	im := newImg(t, 16*units.MiB)
	d := NewUniformDirtier(1000, 0.5, 3)
	if n := d.Step(im, 0); n != 0 {
		t.Error("zero dt must issue nothing")
	}
	if n := d.Step(im, -1); n != 0 {
		t.Error("negative dt must issue nothing")
	}
	zero := NewUniformDirtier(0, 0.5, 3)
	if n := zero.Step(im, 1); n != 0 {
		t.Error("zero rate must issue nothing")
	}
	tiny := NewUniformDirtier(1000, 0, 3)
	if n := tiny.Step(im, 1); n != 0 {
		t.Error("zero working set must issue nothing")
	}
}

func TestUniformDirtierDeterminism(t *testing.T) {
	run := func() []units.Pages {
		im, _ := NewImage(1 * units.MiB)
		d := NewUniformDirtier(500, 0.9, 42)
		d.Step(im, 1)
		return im.Snapshot()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic dirty count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic dirty set at %d", i)
		}
	}
}

func TestHotColdDirtierConcentration(t *testing.T) {
	im := newImg(t, 16*units.MiB) // 4096 pages
	d := NewHotColdDirtier(50_000, 0.1, 0.9, 7)
	d.Step(im, 1)
	hot := units.Pages(float64(im.TotalPages()) * 0.1)
	hotDirty := 0
	for _, p := range im.Snapshot() {
		if p < hot {
			hotDirty++
		}
	}
	// With 90% of 50k writes in a 410-page hot set, the hot set saturates.
	if units.Pages(hotDirty) < hot*95/100 {
		t.Errorf("hot set only %d/%d dirty, want nearly full", hotDirty, hot)
	}
	// Cold pages must also see some writes.
	if int64(im.DirtyPages())-int64(hotDirty) == 0 {
		t.Error("cold set received no writes")
	}
	if d.Rate() != 50_000 {
		t.Errorf("Rate = %v", d.Rate())
	}
}

func TestHotColdClampsProb(t *testing.T) {
	d := NewHotColdDirtier(10, 0.5, 7.5, 1)
	if d.HotProb != 1 {
		t.Errorf("HotProb = %v, want clamped to 1", d.HotProb)
	}
	d = NewHotColdDirtier(10, 0.5, -2, 1)
	if d.HotProb != 0 {
		t.Errorf("HotProb = %v, want clamped to 0", d.HotProb)
	}
}

func TestNoDirtier(t *testing.T) {
	im := newImg(t, 1*units.MiB)
	var d NoDirtier
	if d.Step(im, 100) != 0 || d.Rate() != 0 {
		t.Error("NoDirtier must do nothing")
	}
	if im.DirtyPages() != 0 {
		t.Error("NoDirtier dirtied pages")
	}
}

func TestTrafficGBs(t *testing.T) {
	// 1e9/4096 pages/s × 4096 B/page = 1 GB/s.
	got := TrafficGBs(1e9 / 4096)
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("TrafficGBs = %v, want 1", got)
	}
}
