package mem

import (
	"fmt"
	"math/bits"

	"repro/internal/units"
)

// Image is the page-granular memory image of one VM.
type Image struct {
	total units.Pages
	dirty []uint64 // bitmap, one bit per page
	ndirt units.Pages
}

// NewImage allocates a clean memory image of the given size. It errors on
// non-positive sizes.
func NewImage(size units.Bytes) (*Image, error) {
	p := units.PagesOf(size)
	if p <= 0 {
		return nil, fmt.Errorf("mem: image size %v yields no pages", size)
	}
	return &Image{total: p, dirty: make([]uint64, (p+63)/64)}, nil
}

// TotalPages returns MEM(v), the VM memory size in pages.
func (im *Image) TotalPages() units.Pages { return im.total }

// DirtyPages returns DIRTYPAGES(v,t), the current dirty page count.
func (im *Image) DirtyPages() units.Pages { return im.ndirt }

// DirtyRatio returns DR(v,t) = DIRTYPAGES(v,t) / MEM(v) (Eq. 1).
func (im *Image) DirtyRatio() units.Fraction {
	return units.Fraction(float64(im.ndirt) / float64(im.total))
}

// Dirty marks page i dirty; re-dirtying an already dirty page is a no-op
// (the bitmap is idempotent, exactly like Xen's log-dirty mode).
func (im *Image) Dirty(i units.Pages) error {
	if i < 0 || i >= im.total {
		return fmt.Errorf("mem: page %d out of range [0, %d)", i, im.total)
	}
	im.dirtyFast(i)
	return nil
}

// dirtyFast is Dirty without the range check: the inlinable twin the
// dirtier hot loops use for indices they guarantee in range.
func (im *Image) dirtyFast(i units.Pages) {
	w, m := i>>6, uint64(1)<<uint(i&63)
	if im.dirty[w]&m == 0 {
		im.dirty[w] |= m
		im.ndirt++
	}
}

// IsDirty reports whether page i is dirty.
func (im *Image) IsDirty(i units.Pages) bool {
	if i < 0 || i >= im.total {
		return false
	}
	return im.dirty[i/64]&(1<<uint(i%64)) != 0
}

// Clean clears page i's dirty bit (it has been copied to the target).
func (im *Image) Clean(i units.Pages) {
	if i < 0 || i >= im.total {
		return
	}
	w, b := i/64, uint(i%64)
	if im.dirty[w]&(1<<b) != 0 {
		im.dirty[w] &^= 1 << b
		im.ndirt--
	}
}

// CleanAll clears the whole bitmap, as Xen does at the start of each
// pre-copy round after snapshotting the set to send.
func (im *Image) CleanAll() {
	for i := range im.dirty {
		im.dirty[i] = 0
	}
	im.ndirt = 0
}

// Snapshot returns the indices of all dirty pages in ascending order.
func (im *Image) Snapshot() []units.Pages {
	out := make([]units.Pages, 0, im.ndirt)
	for w, word := range im.dirty {
		if word == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if word&(1<<uint(b)) != 0 {
				p := units.Pages(w*64 + b)
				if p < im.total {
					out = append(out, p)
				}
			}
		}
	}
	return out
}

// Dirtier is a workload's page-dirtying behaviour: given elapsed wall time
// dt (seconds) it returns how many page-write events to issue and where.
type Dirtier interface {
	// Step issues page writes for a dt-second interval against the image.
	// It returns the number of page-write events issued (counting repeats
	// on already-dirty pages, i.e. memory traffic, not unique pages).
	Step(im *Image, dtSeconds float64) int64
	// Rate returns the nominal page-write rate in pages/second, used to
	// size memory-traffic power.
	Rate() float64
}

// UniformDirtier writes pages uniformly at random over a working set that
// occupies the first WorkingSetFrac of the image — the behaviour of the
// paper's pagedirtier tool, which "continuously writes in memory pages in
// random order" over its 3.8 GB allocation inside the 4 GB VM.
type UniformDirtier struct {
	// PagesPerSecond is the write-event rate.
	PagesPerSecond float64
	// WorkingSetFrac is the fraction of the image the writes span
	// (pagedirtier's 3.8/4.0 ≈ 0.95).
	WorkingSetFrac units.Fraction
	rng            prng
	carry          float64
}

// NewUniformDirtier builds a seeded uniform dirtier.
func NewUniformDirtier(pagesPerSecond float64, workingSet units.Fraction, seed int64) *UniformDirtier {
	return &UniformDirtier{
		PagesPerSecond: pagesPerSecond,
		WorkingSetFrac: workingSet.Clamp(),
		rng:            newPRNG(seed),
	}
}

// prng is the dirtiers' random source: splitmix64, chosen over math/rand
// because the dirtiers draw tens of thousands of page indices per 100 ms
// simulation step — the hottest loop of the whole kernel — and splitmix64
// needs no interface dispatch, no rejection loop and no division while
// passing BigCrush. Same seed, same sequence: the determinism guarantees
// of the campaign layers are unaffected.
type prng struct{ s uint64 }

func newPRNG(seed int64) prng {
	r := prng{s: uint64(seed)}
	r.next() // decorrelate small adjacent seeds before first use
	return r
}

// next returns the next 64 uniformly random bits.
func (r *prng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uint64n returns a uniform value in [0, n) by multiply-shift reduction
// (Lemire); the bias of skipping the rejection step is below 2^-40 for
// any page span a VM image can have.
func (r *prng) uint64n(n uint64) uint64 {
	hi, _ := bits.Mul64(r.next(), n)
	return hi
}

// float64v returns a uniform value in [0, 1) with 53 random bits.
func (r *prng) float64v() float64 {
	return float64(r.next()>>11) * 0x1.0p-53
}

// Step implements Dirtier.
func (u *UniformDirtier) Step(im *Image, dtSeconds float64) int64 {
	if dtSeconds <= 0 || u.PagesPerSecond <= 0 {
		return 0
	}
	span := units.Pages(float64(im.TotalPages()) * float64(u.WorkingSetFrac))
	if span <= 0 {
		return 0
	}
	u.carry += u.PagesPerSecond * dtSeconds
	n := int64(u.carry)
	u.carry -= float64(n)
	span64 := uint64(span)
	for i := int64(0); i < n; i++ {
		// The index is bounded by span ≤ total.
		im.dirtyFast(units.Pages(u.rng.uint64n(span64)))
	}
	return n
}

// Rate implements Dirtier.
func (u *UniformDirtier) Rate() float64 { return u.PagesPerSecond }

// HotColdDirtier concentrates writes on a small hot set with a given
// probability, a closer match for real applications (databases, JVM heaps)
// than uniform writes. Used by the extension experiments.
type HotColdDirtier struct {
	PagesPerSecond float64
	// HotFrac is the fraction of the image forming the hot set.
	HotFrac units.Fraction
	// HotProb is the probability a write lands in the hot set.
	HotProb float64
	rng     prng
	carry   float64
}

// NewHotColdDirtier builds a seeded hot/cold dirtier.
func NewHotColdDirtier(pagesPerSecond float64, hotFrac units.Fraction, hotProb float64, seed int64) *HotColdDirtier {
	if hotProb < 0 {
		hotProb = 0
	}
	if hotProb > 1 {
		hotProb = 1
	}
	return &HotColdDirtier{
		PagesPerSecond: pagesPerSecond,
		HotFrac:        hotFrac.Clamp(),
		HotProb:        hotProb,
		rng:            newPRNG(seed),
	}
}

// Step implements Dirtier.
func (h *HotColdDirtier) Step(im *Image, dtSeconds float64) int64 {
	if dtSeconds <= 0 || h.PagesPerSecond <= 0 {
		return 0
	}
	total := im.TotalPages()
	hot := units.Pages(float64(total) * float64(h.HotFrac))
	if hot <= 0 {
		hot = 1
	}
	h.carry += h.PagesPerSecond * dtSeconds
	n := int64(h.carry)
	h.carry -= float64(n)
	hot64, total64 := uint64(hot), uint64(total)
	for i := int64(0); i < n; i++ {
		var p units.Pages
		if h.rng.float64v() < h.HotProb {
			p = units.Pages(h.rng.uint64n(hot64))
		} else {
			p = units.Pages(h.rng.uint64n(total64))
		}
		im.dirtyFast(p)
	}
	return n
}

// Rate implements Dirtier.
func (h *HotColdDirtier) Rate() float64 { return h.PagesPerSecond }

// NoDirtier is the dirtying behaviour of an idle or CPU-only workload:
// nothing gets written.
type NoDirtier struct{}

// Step implements Dirtier.
func (NoDirtier) Step(*Image, float64) int64 { return 0 }

// Rate implements Dirtier.
func (NoDirtier) Rate() float64 { return 0 }

// TrafficGBs converts a page-write rate into memory traffic in GB/s for
// the ground-truth power model.
func TrafficGBs(pagesPerSecond float64) float64 {
	return pagesPerSecond * float64(units.PageSize) / 1e9
}
