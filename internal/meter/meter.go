// Package meter emulates the Voltech PM1000+ power analysers of the
// paper's measurement methodology (Section V-B): AC-side sampling at 2 Hz,
// a 0.3% accuracy band, and the stabilisation rule — "twenty consecutive
// power measurements with a difference lower than 0.3%" — that gates the
// start and end of every experimental run.
package meter

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"repro/internal/trace"
	"repro/internal/units"
)

// Defaults from the paper's methodology.
const (
	// DefaultPeriod is the 2 Hz sampling interval ("traced every 500
	// milliseconds according to the resolution of our power measurement
	// devices").
	DefaultPeriod = 500 * time.Millisecond
	// DefaultAccuracy is the device's 0.3% accuracy band, used by the
	// stabilisation rule.
	DefaultAccuracy = 0.003
	// DefaultNoiseSigma is the sample-to-sample reading jitter (1σ). The
	// instrument's accuracy bound is a calibration envelope; successive
	// readings of a steady load scatter far less, which is what makes the
	// paper's 20-consecutive-readings stabilisation rule satisfiable.
	DefaultNoiseSigma = 0.0005
	// StabilisationWindow is the consecutive-reading count of the
	// stabilisation rule.
	StabilisationWindow = 20
)

// Meter samples a host's true power with instrument noise at a fixed
// cadence, accumulating a power trace.
type Meter struct {
	// Period is the sampling interval.
	Period time.Duration
	// Accuracy is the instrument's relative accuracy band — the 0.3%
	// calibration envelope the stabilisation rule is phrased in. It does
	// not drive the sample jitter; that is NoiseSigma.
	Accuracy float64
	// NoiseSigma is the relative 1σ sample-to-sample reading jitter.
	NoiseSigma float64

	rng  *rand.Rand
	tr   *trace.PowerTrace
	next time.Duration
}

// New builds a meter for a host with the paper's default period, accuracy
// band and reading jitter. The seed pins the noise sequence for
// reproducible runs.
func New(host string, seed int64) *Meter {
	return &Meter{
		Period:     DefaultPeriod,
		Accuracy:   DefaultAccuracy,
		NoiseSigma: DefaultNoiseSigma,
		rng:        rand.New(rand.NewSource(seed)),
		tr:         &trace.PowerTrace{Host: host},
	}
}

// Reserve pre-sizes the meter's trace for about n samples so the
// simulation step loop appends without regrowing.
func (m *Meter) Reserve(n int) { m.tr.Reserve(n) }

// NextDue returns the simulation time at which the meter will record its
// next sample. Observe calls before that instant are discarded, so the
// simulation kernel consults NextDue to skip both the call and the
// ground-truth power evaluation feeding it between due times.
func (m *Meter) NextDue() time.Duration { return m.next }

// Observe offers the meter the true instantaneous power at simulation time
// now. The meter records a noisy sample whenever its sampling period has
// elapsed; between due times the observation is discarded, exactly like a
// real instrument that integrates internally but reports at 2 Hz. It
// returns the recorded sample and true when one was taken.
func (m *Meter) Observe(now time.Duration, truth units.Watts) (units.Watts, bool) {
	if now < m.next {
		return 0, false
	}
	noisy := float64(truth) * (1 + m.rng.NormFloat64()*m.NoiseSigma)
	if noisy < 0 {
		noisy = 0
	}
	w := units.Watts(noisy)
	// Appending at a monotone 'now' cannot fail; keep the trace append
	// errorless by construction.
	if err := m.tr.Append(now, w); err != nil {
		// A non-monotone Observe sequence is a programming error in the
		// simulation loop.
		panic(err)
	}
	m.next = now + m.Period
	return w, true
}

// Trace returns the accumulated power trace (live view, not a copy).
func (m *Meter) Trace() *trace.PowerTrace { return m.tr }

// Reset clears the trace and sampling phase for a fresh run.
func (m *Meter) Reset() {
	m.tr = &trace.PowerTrace{Host: m.tr.Host}
	m.next = 0
}

// StabilisationDetector implements the run-gating rule: power has
// stabilised when StabilisationWindow consecutive readings differ from
// their predecessor by less than the tolerance.
type StabilisationDetector struct {
	// Tolerance is the relative difference bound (defaults to 0.3%).
	Tolerance float64
	// Window is the required consecutive-reading count.
	Window int

	last    units.Watts
	haveOne bool
	streak  int
}

// NewStabilisationDetector builds a detector with the paper's parameters.
func NewStabilisationDetector() *StabilisationDetector {
	return &StabilisationDetector{Tolerance: DefaultAccuracy, Window: StabilisationWindow}
}

// Add feeds a reading and reports whether the series is now stable.
func (d *StabilisationDetector) Add(w units.Watts) bool {
	if d.haveOne {
		ref := math.Abs(float64(d.last))
		diff := math.Abs(float64(w - d.last))
		if ref > 0 && diff/ref < d.Tolerance {
			d.streak++
		} else if ref == 0 && diff == 0 {
			d.streak++
		} else {
			d.streak = 0
		}
	}
	d.last = w
	d.haveOne = true
	return d.Stable()
}

// Stable reports whether the last Window readings were within tolerance.
func (d *StabilisationDetector) Stable() bool { return d.streak >= d.Window }

// Reset clears the detector for reuse.
func (d *StabilisationDetector) Reset() {
	d.haveOne = false
	d.streak = 0
	d.last = 0
}

// ErrNeverStabilised reports that a series ended without stabilising.
var ErrNeverStabilised = errors.New("meter: power never stabilised")

// StabilisationPoint scans a power trace and returns the time of the first
// sample at which the stabilisation rule holds. Used by the experiment
// runner to trim pre-migration warm-up.
func StabilisationPoint(tr *trace.PowerTrace) (time.Duration, error) {
	d := NewStabilisationDetector()
	for _, s := range tr.Samples {
		if d.Add(s.Power) {
			return s.At, nil
		}
	}
	return 0, ErrNeverStabilised
}
