package meter

import (
	"math"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/units"
)

func TestObserveCadence(t *testing.T) {
	m := New("m01", 1)
	// Offer observations every 100 ms for 5 s; only every 5th lands.
	taken := 0
	for i := 0; i <= 50; i++ {
		if _, ok := m.Observe(time.Duration(i)*100*time.Millisecond, 500); ok {
			taken++
		}
	}
	if taken != 11 { // t = 0, 0.5, 1.0, ..., 5.0
		t.Errorf("took %d samples over 5 s at 2 Hz, want 11", taken)
	}
	if m.Trace().Len() != taken {
		t.Errorf("trace has %d samples, want %d", m.Trace().Len(), taken)
	}
}

func TestObserveNoiseBounded(t *testing.T) {
	m := New("m01", 42)
	var worst float64
	for i := 0; i < 2000; i++ {
		w, ok := m.Observe(time.Duration(i)*DefaultPeriod, 600)
		if !ok {
			t.Fatal("sample skipped unexpectedly")
		}
		rel := math.Abs(float64(w)-600) / 600
		if rel > worst {
			worst = rel
		}
	}
	// 1σ = 0.05%; 2000 samples should stay within ~6σ.
	if worst > 0.003 {
		t.Errorf("worst relative noise = %v, want < 0.3%%", worst)
	}
	if worst == 0 {
		t.Error("meter produced no noise at all")
	}
}

func TestObserveNeverNegative(t *testing.T) {
	m := New("m01", 7)
	for i := 0; i < 100; i++ {
		w, ok := m.Observe(time.Duration(i)*DefaultPeriod, 0.001)
		if ok && w < 0 {
			t.Fatalf("negative power sample %v", w)
		}
	}
}

func TestMeterDeterminism(t *testing.T) {
	run := func() []units.Watts {
		m := New("m01", 99)
		var out []units.Watts
		for i := 0; i < 20; i++ {
			if w, ok := m.Observe(time.Duration(i)*DefaultPeriod, 500); ok {
				out = append(out, w)
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic meter at sample %d", i)
		}
	}
}

func TestMeterReset(t *testing.T) {
	m := New("m01", 1)
	m.Observe(0, 500)
	m.Observe(DefaultPeriod, 500)
	m.Reset()
	if m.Trace().Len() != 0 {
		t.Error("reset did not clear trace")
	}
	if m.Trace().Host != "m01" {
		t.Error("reset lost the host label")
	}
	if _, ok := m.Observe(0, 500); !ok {
		t.Error("reset did not rewind the sampling clock")
	}
}

func TestStabilisationDetector(t *testing.T) {
	d := NewStabilisationDetector()
	// 19 stable readings are not enough...
	for i := 0; i < 19; i++ {
		if d.Add(500) {
			t.Fatalf("stable after %d readings, want %d", i+1, StabilisationWindow)
		}
	}
	// ...the 20th consecutive in-tolerance *difference* needs 21 readings.
	if !d.Add(500.5) { // within 0.3%
		if !d.Add(500) {
			t.Fatal("detector never stabilised on a flat series")
		}
	}
	if !d.Stable() {
		t.Error("Stable() disagrees with Add result")
	}
}

func TestStabilisationBreaksOnJump(t *testing.T) {
	d := NewStabilisationDetector()
	for i := 0; i < 15; i++ {
		d.Add(500)
	}
	d.Add(600) // 20% jump resets the streak
	for i := 0; i < 19; i++ {
		if d.Add(600) {
			t.Fatalf("stabilised only %d readings after the jump", i+1)
		}
	}
	if !d.Add(600) {
		t.Error("should stabilise 20 in-tolerance diffs after the jump")
	}
}

func TestStabilisationZeroSeries(t *testing.T) {
	d := NewStabilisationDetector()
	stable := false
	for i := 0; i < 25; i++ {
		stable = d.Add(0)
	}
	if !stable {
		t.Error("an all-zero series is trivially stable")
	}
}

func TestDetectorReset(t *testing.T) {
	d := NewStabilisationDetector()
	for i := 0; i < 25; i++ {
		d.Add(500)
	}
	if !d.Stable() {
		t.Fatal("precondition: stable")
	}
	d.Reset()
	if d.Stable() {
		t.Error("reset did not clear stability")
	}
}

func TestStabilisationPoint(t *testing.T) {
	tr := &trace.PowerTrace{Host: "x"}
	// 10 noisy warm-up samples, then flat.
	for i := 0; i < 10; i++ {
		_ = tr.Append(time.Duration(i)*DefaultPeriod, units.Watts(500+20*float64(i%2)))
	}
	for i := 10; i < 40; i++ {
		_ = tr.Append(time.Duration(i)*DefaultPeriod, 500)
	}
	at, err := StabilisationPoint(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Stability needs 20 consecutive small diffs starting at sample 11.
	want := time.Duration(30) * DefaultPeriod
	if at != want {
		t.Errorf("stabilisation at %v, want %v", at, want)
	}
}

func TestStabilisationPointNever(t *testing.T) {
	tr := &trace.PowerTrace{Host: "x"}
	for i := 0; i < 50; i++ {
		_ = tr.Append(time.Duration(i)*DefaultPeriod, units.Watts(500+30*float64(i%2)))
	}
	if _, err := StabilisationPoint(tr); err != ErrNeverStabilised {
		t.Errorf("err = %v, want ErrNeverStabilised", err)
	}
}

func TestObserveToleratesGaps(t *testing.T) {
	// Failure injection: the simulation loop stalls for several periods
	// (e.g. a dropped instrument connection). The meter must resume
	// sampling without panicking and keep its trace time-ordered.
	m := New("m01", 5)
	m.Observe(0, 500)
	m.Observe(10*time.Second, 510) // 9.5 s of missing observations
	m.Observe(10*time.Second+DefaultPeriod, 505)
	tr := m.Trace()
	if tr.Len() != 3 {
		t.Fatalf("trace has %d samples, want 3", tr.Len())
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Samples[i].At <= tr.Samples[i-1].At {
			t.Fatal("trace not strictly ordered across the gap")
		}
	}
	// Energy across the gap interpolates linearly instead of failing.
	if e := tr.Energy(); e <= 0 {
		t.Errorf("energy across gap = %v", e)
	}
}
