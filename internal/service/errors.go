package service

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
)

// apiError is the JSON error envelope every non-2xx wavm3d response
// carries: a stable machine-readable code, a human message, and — for
// scenario validation failures — the scenario name and field path from
// the *scenario.Error, so clients can point at the offending field
// without parsing prose.
type apiError struct {
	Code     string `json:"code"`
	Message  string `json:"message"`
	Scenario string `json:"scenario,omitempty"`
	Path     string `json:"path,omitempty"`
}

// Stable error codes (the JSON contract; messages may change, codes
// must not).
const (
	codeInvalidRequest  = "invalid_request"  // 400: unreadable body, bad route parameter
	codeInvalidScenario = "invalid_scenario" // 422: body decoded but failed scenario validation
	codeNotFound        = "not_found"        // 404: unknown route or library scenario
	codeMethod          = "method_not_allowed"
	codeOverloaded      = "overloaded" // 429: admission queue full
	codeDeadline        = "deadline_exceeded"
	codeDraining        = "draining" // 503: daemon is shutting down
	codeInternal        = "internal" // 500: handler panic or unexpected failure
)

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// writeError writes the structured error envelope.
func writeError(w http.ResponseWriter, status int, e apiError) {
	writeJSON(w, status, struct {
		Error apiError `json:"error"`
	}{e})
}

// recoverPanics is the outermost middleware: a panicking handler
// becomes a structured 500 plus a logged stack trace instead of a torn
// connection taking the daemon down. Recovery is per-request — other
// in-flight requests are untouched.
func recoverPanics(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			// http.ErrAbortHandler is the stdlib's own "drop this
			// connection" signal; re-raising keeps that contract.
			if v == http.ErrAbortHandler {
				panic(v)
			}
			logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			// Run output is buffered until success, so the header is
			// still writable unless the panic hit mid-copy; in that
			// case WriteHeader is a logged no-op and the client sees a
			// truncated body — the honest outcome.
			writeError(w, http.StatusInternalServerError, apiError{
				Code:    codeInternal,
				Message: fmt.Sprintf("internal error: %v", v),
			})
		}()
		next.ServeHTTP(w, r)
	})
}
