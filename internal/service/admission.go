package service

import (
	"context"
	"errors"
)

// errSaturated is the admission verdict behind every 429: both the
// execution slots and the waiting queue are full, so the only honest
// answer is "come back later" — queueing further would just convert
// overload into unbounded latency.
var errSaturated = errors.New("service: admission queue full")

// admission bounds the daemon's concurrent simulation work: at most
// `slots` runs execute at once and at most `queue` requests wait for a
// slot. Anything beyond that total is rejected immediately. Both bounds
// are channels used as counting semaphores, so waiting is cancellable
// by the request context (client disconnect, per-request deadline,
// drain) without leaking tickets.
type admission struct {
	slots   chan struct{} // execution permits
	tickets chan struct{} // execution + queue permits
}

func newAdmission(slots, queue int) *admission {
	return &admission{
		slots:   make(chan struct{}, slots),
		tickets: make(chan struct{}, slots+queue),
	}
}

// acquire claims an execution slot, waiting in the bounded queue when
// all slots are busy. It returns a release function on success,
// errSaturated when the queue itself is full, or the context error when
// ctx ends first. The release function must be called exactly once.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	// The ticket is the queue bound: grab it or reject, never wait.
	select {
	case a.tickets <- struct{}{}:
	default:
		return nil, errSaturated
	}
	// The slot is the concurrency bound: wait, but give the ticket back
	// if the request dies first so the queue spot frees immediately.
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots; <-a.tickets }, nil
	case <-ctx.Done():
		<-a.tickets
		return nil, ctx.Err()
	}
}
