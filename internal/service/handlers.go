package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/scenario"
)

// statusClientClosedRequest is nginx's 499: the client went away before
// the response. Nobody receives it, but access logs should not claim a
// disconnect was a server error.
const statusClientClosedRequest = 499

// Handler builds the daemon's route table wrapped in the panic-recovery
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("POST /v1/runs", s.handleRuns)
	return recoverPanics(s.cfg.Logger, mux)
}

// cacheStatus is the run-cache block of the health payload: the two
// memory-tier counters every session has, plus the persistent-tier
// counters when a cache dir is attached. KernelRuns is the operational
// headline — a warm replica fleet sharing one cache dir serves with
// this stuck at the simulations only it has seen first.
type cacheStatus struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Entries     int    `json:"entries"`
	KernelRuns  uint64 `json:"kernel_runs"`
	Persistent  bool   `json:"persistent"`
	DiskHits    uint64 `json:"disk_hits,omitempty"`
	DiskMisses  uint64 `json:"disk_misses,omitempty"`
	Quarantined uint64 `json:"quarantined,omitempty"`
	StoreErrors uint64 `json:"store_errors,omitempty"`
	// Store resilience counters: retries/timeouts of store ops, breaker
	// trips and current breaker state ("open" means the persistent tier
	// is sick and the daemon is serving memory-only — degraded, correct),
	// async publishes shed past the budget.
	StoreRetries  uint64 `json:"store_retries,omitempty"`
	StoreTimeouts uint64 `json:"store_timeouts,omitempty"`
	BreakerOpens  uint64 `json:"breaker_opens,omitempty"`
	BreakerState  string `json:"breaker_state,omitempty"`
	PublishDrops  uint64 `json:"publish_drops,omitempty"`
}

// healthStatus is the GET /healthz payload.
type healthStatus struct {
	Status string       `json:"status"`
	Cache  *cacheStatus `json:"cache,omitempty"`
}

// handleHealthz reports liveness: the process is up, even while
// draining (a draining daemon is healthy, just not ready). The payload
// doubles as the daemon's metrics surface for the run cache, so
// operators and CI can read hit rates and kernel-run counts without a
// separate metrics stack.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := healthStatus{Status: "ok"}
	if c := s.cfg.Cache; c != nil {
		st := c.Snapshot()
		out.Cache = &cacheStatus{
			Hits: st.Hits, Misses: st.Misses, Entries: st.Entries,
			KernelRuns: st.KernelRuns, Persistent: c.Persistent(),
			DiskHits: st.DiskHits, DiskMisses: st.DiskMisses,
			Quarantined: st.Quarantined, StoreErrors: st.StoreErrors,
			StoreRetries: st.Retries, StoreTimeouts: st.Timeouts,
			BreakerOpens: st.BreakerOpens, BreakerState: st.BreakerState,
			PublishDrops: st.PublishDrops,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleReadyz reports readiness: 200 while admitting, 503 once drain
// begins — the signal load balancers use to stop routing before the
// listener actually closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// scenarioEntry is one GET /v1/scenarios listing row.
type scenarioEntry struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Form        string `json:"form"`
	Hosts       int    `json:"hosts,omitempty"`
	Phases      int    `json:"phases,omitempty"`
}

// handleScenarios lists the loaded library in name order.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	out := make([]scenarioEntry, 0, len(s.library))
	for _, in := range s.library {
		e := scenarioEntry{Name: in.Name, Description: in.Description, Form: "migration",
			Hosts: in.Cluster, Phases: in.Phases}
		switch {
		case in.Datacenter:
			e.Form = "datacenter"
		case in.Cluster > 0:
			e.Form = "cluster"
		}
		out = append(out, e)
	}
	writeJSON(w, http.StatusOK, struct {
		Scenarios []scenarioEntry `json:"scenarios"`
	}{out})
}

// handleRuns executes one scenario — the request body as a strict spec,
// or a library entry via ?name= with an empty body — and answers with
// the exact bytes wavm3scen would print for it. The run is admitted
// through the bounded queue and executes under a context that ends on
// client disconnect, per-request deadline or daemon drain, whichever
// comes first.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, apiError{
			Code: codeDraining, Message: "daemon is draining; not admitting new runs",
		})
		return
	}
	spec, ok := s.decodeRunRequest(w, r)
	if !ok {
		return
	}
	compiled, err := spec.Compile()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, scenarioAPIError(err))
		return
	}

	// The run context: request (disconnect) + deadline + drain. The
	// deadline covers queue wait too — time spent waiting for a slot is
	// latency the client experiences.
	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stop := context.AfterFunc(s.runsCtx, func() { cancel(errDraining) })
	defer stop()
	runCtx, cancelT := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancelT()

	release, err := s.adm.acquire(runCtx)
	if err != nil {
		if errors.Is(err, errSaturated) {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RequestTimeout)))
			writeError(w, http.StatusTooManyRequests, apiError{
				Code: codeOverloaded,
				Message: fmt.Sprintf("admission queue full (%d running + %d queued); retry later",
					s.cfg.MaxConcurrent, s.cfg.QueueDepth),
			})
			return
		}
		s.writeRunFailure(w, runCtx, spec.Name, err)
		return
	}
	defer release()

	// Buffer the rendering so failures yield a clean JSON error, never
	// a half-written report.
	var buf bytes.Buffer
	if _, err := s.exec(runCtx, &buf, compiled); err != nil {
		s.writeRunFailure(w, runCtx, spec.Name, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}

// decodeRunRequest resolves the request to a validated spec: a strict
// JSON body, or a library lookup when ?name= is given with no body. On
// failure it writes the error response and returns ok=false.
func (s *Server) decodeRunRequest(w http.ResponseWriter, r *http.Request) (*scenario.Spec, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		status, code := http.StatusBadRequest, codeInvalidRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, apiError{Code: code, Message: fmt.Sprintf("reading request body: %v", err)})
		return nil, false
	}
	if name := r.URL.Query().Get("name"); name != "" {
		if len(body) > 0 {
			writeError(w, http.StatusBadRequest, apiError{
				Code: codeInvalidRequest, Message: "pass either ?name= or a spec body, not both",
			})
			return nil, false
		}
		spec, ok := s.byName[name]
		if !ok {
			writeError(w, http.StatusNotFound, apiError{
				Code: codeNotFound, Message: fmt.Sprintf("no library scenario named %q", name), Scenario: name,
			})
			return nil, false
		}
		return spec, true
	}
	if len(body) == 0 {
		writeError(w, http.StatusBadRequest, apiError{
			Code: codeInvalidRequest, Message: "empty body; POST a scenario spec or pass ?name=",
		})
		return nil, false
	}
	spec, err := scenario.Parse("(request)", body)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, scenarioAPIError(err))
		return nil, false
	}
	return spec, true
}

// scenarioAPIError maps a scenario load/validate failure onto the JSON
// envelope, carrying the field path when the error is a *scenario.Error.
func scenarioAPIError(err error) apiError {
	e := apiError{Code: codeInvalidScenario, Message: err.Error()}
	var serr *scenario.Error
	if errors.As(err, &serr) {
		e.Scenario, e.Path = serr.Scenario, serr.Path
	}
	return e
}

// writeRunFailure classifies a run error into the status the client can
// act on: its own deadline (504), its own disconnect (499, unseen),
// the daemon draining mid-run (503), or a genuine failure (500).
func (s *Server) writeRunFailure(w http.ResponseWriter, runCtx context.Context, name string, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, apiError{
			Code: codeDeadline, Message: fmt.Sprintf("run exceeded the request timeout (%v)", s.cfg.RequestTimeout), Scenario: name,
		})
	case errors.Is(context.Cause(runCtx), errDraining):
		writeError(w, http.StatusServiceUnavailable, apiError{
			Code: codeDraining, Message: "run cancelled: daemon drain deadline expired", Scenario: name,
		})
	case errors.Is(err, context.Canceled):
		writeError(w, statusClientClosedRequest, apiError{
			Code: codeInvalidRequest, Message: "client closed the request", Scenario: name,
		})
	default:
		s.cfg.Logger.Printf("service: run %s failed: %v", name, err)
		writeError(w, http.StatusInternalServerError, apiError{
			Code: codeInternal, Message: fmt.Sprintf("run failed: %v", err), Scenario: name,
		})
	}
}

// retryAfterSeconds estimates a polite retry interval from the request
// timeout: a quarter of it, at least one second — long enough for a
// slot to plausibly free, short enough to keep clients responsive.
func retryAfterSeconds(timeout time.Duration) int {
	sec := int(timeout.Seconds() / 4)
	if sec < 1 {
		sec = 1
	}
	return sec
}
