package service

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/units"
)

// ExecResult is what executing one compiled scenario yields beyond its
// rendered text: the cluster report when the scenario was a cluster
// timeline (callers use it for SLO annotations), nil otherwise.
type ExecResult struct {
	Cluster *cluster.Report
}

// Exec executes one compiled scenario under ctx and renders its
// deterministic report block to w. The bytes written are exactly what
// wavm3scen prints for the same scenario — the daemon's HTTP responses
// and the CLI's stdout stay byte-identical by construction, which is
// what the CI smoke test pins. Output is written progressively; callers
// that must not emit partial output on failure (HTTP handlers) pass a
// buffer.
func Exec(ctx context.Context, w io.Writer, c *scenario.Compiled, workers int, cache *sim.Cache) (*ExecResult, error) {
	switch {
	case c.Cluster != nil:
		rep, err := execCluster(ctx, w, c.Spec, c.Cluster, workers, cache)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Cluster: rep}, nil
	case c.Plan != nil:
		return &ExecResult{}, execPlan(w, c.Spec, c.Plan, workers, cache)
	default:
		return &ExecResult{}, execRuns(ctx, w, c.Spec, c.Runs, workers, cache)
	}
}

// execRuns executes the migration blocks of one spec and prints one
// result line per block.
func execRuns(ctx context.Context, w io.Writer, s *scenario.Spec, runs []scenario.Run, workers int, cache *sim.Cache) error {
	fmt.Fprintf(w, "== %s\n", s.Name)
	scs := make([]sim.Scenario, len(runs))
	for i, r := range runs {
		scs[i] = r.Scenario
	}
	cfg := experiments.Config{
		Pair:        runs[0].Scenario.Pair,
		MinRuns:     runs[0].MinRuns,
		VarianceTol: runs[0].VarianceTol,
		Workers:     workers,
		Cache:       cache,
		Ctx:         ctx,
		Seed:        1, // unused: every compiled scenario carries its own seed
	}
	results, err := experiments.RunScenarios(cfg, scs...)
	if err != nil {
		return err
	}
	for i, res := range results {
		printRunLine(w, runs[i].Label, res.Runs)
	}
	return nil
}

// printRunLine renders the mean measurements of one block's repeats —
// the same BlockSummary the golden-output regression test pins.
func printRunLine(w io.Writer, label string, runs []*sim.RunResult) {
	b := scenario.Summarize(runs)
	fmt.Fprintf(w, "   %-32s runs=%d  src %8.3f kJ  dst %8.3f kJ  total %8.3f kJ  moved %6.2f GiB  rounds %4.1f  down %6.2fs  dur %6.1fs\n",
		label, b.Runs, b.SourceJ/1e3, b.TargetJ/1e3, b.TotalJ()/1e3, b.MovedGiB(), b.Rounds, b.DowntimeS, b.DurationS)
}

// execPlan executes a data-centre scenario's move plan. The dcsim
// executor predates the context plumbing and plans are short; it runs
// uncancellable.
func execPlan(w io.Writer, s *scenario.Spec, pr *scenario.PlanRun, workers int, cache *sim.Cache) error {
	fmt.Fprintf(w, "== %s (plan: %s)\n", s.Name, pr.Policy)
	ex := pr.Executor
	ex.Workers = workers
	ex.Cache = cache
	rep, err := ex.ExecutePlan(pr.Policy, pr.Plan, pr.Hosts)
	if err != nil {
		return err
	}
	for _, mv := range rep.Moves {
		fmt.Fprintf(w, "   move %-14s %-12s -> %-12s  %8.3f kJ  %6.1fs  %6.2f GiB\n",
			mv.Move.VM, mv.Move.From, mv.Move.To,
			mv.MeasuredEnergy.KiloJoules(), mv.Duration.Seconds(), float64(mv.BytesSent)/float64(units.GiB))
	}
	fmt.Fprintf(w, "   total %d move(s)  %8.3f kJ  %6.1fs\n",
		len(rep.Moves), rep.Total.KiloJoules(), rep.Elapsed.Seconds())
	return nil
}

// execCluster executes an N-host cluster timeline: ticks, phase shifts,
// migrations — and, under failure injection, aborts and the SLO scores —
// are printed as deterministic sections, every energy
// contention-adjusted. The report is returned so callers can record the
// SLO outcome in benchmark artefacts.
func execCluster(ctx context.Context, w io.Writer, s *scenario.Spec, cr *scenario.ClusterRun, workers int, cache *sim.Cache) (*cluster.Report, error) {
	fmt.Fprintf(w, "== %s (cluster: %d hosts, %s)\n", s.Name, len(cr.Config.Hosts), cr.Policy)
	rep, err := experiments.RunCluster(experiments.Config{Workers: workers, Cache: cache, Ctx: ctx}, cr.Config)
	if err != nil {
		return nil, err
	}
	for _, tick := range rep.Ticks {
		fmt.Fprintf(w, "   tick  t=%9.1fs  planned %2d move(s)  %d pinned\n",
			tick.At.Seconds(), tick.Moves, tick.Pinned)
	}
	for _, sh := range rep.Shifts {
		next := sh.Phase
		if next == "" {
			next = "(hold)"
		}
		fmt.Fprintf(w, "   shift t=%9.1fs  %s enters %s\n", sh.At.Seconds(), sh.VM, next)
	}
	for _, mv := range rep.Timeline {
		fmt.Fprintf(w, "   move  %-12s %-10s -> %-10s [%-9s] t=%9.1fs ..%9.1fs  x%4.2f  %9.3f kJ  %6.2f GiB\n",
			mv.VM, mv.From, mv.To, mv.Pair,
			mv.Start.Seconds(), mv.End.Seconds(), mv.Stretch,
			mv.Energy.KiloJoules(), float64(mv.BytesSent)/float64(units.GiB))
	}
	for _, a := range rep.Aborted {
		fmt.Fprintf(w, "   abort %-12s %-10s -> %-10s [%-8s] t=%9.1fs ..%9.1fs  %9.3f kJ charged  (%s)\n",
			a.VM, a.From, a.To, a.Phase,
			a.Start.Seconds(), a.End.Seconds(), a.Energy.KiloJoules(), a.Reason)
	}
	if len(rep.FreedHosts) > 0 {
		fmt.Fprintf(w, "   freed %s  (%.0f W idle reclaimed)\n",
			strings.Join(rep.FreedHosts, ", "), float64(rep.IdleSavings))
	}
	if len(cr.Config.Failures) > 0 {
		deadline := "met"
		if !rep.EvacuationDeadlineMet {
			deadline = "MISSED"
		}
		fmt.Fprintf(w, "   slo   %d aborted  %d orphaned  %d evacuated  deadline %s  fleet %9.3f kJ\n",
			rep.AbortedFlights, rep.OrphanedVMs, rep.EvacuatedVMs, deadline, rep.FleetEnergy.KiloJoules())
	}
	fmt.Fprintf(w, "   total %d move(s)  %9.3f kJ  makespan %9.1fs\n",
		len(rep.Timeline), rep.TotalEnergy.KiloJoules(), rep.Makespan.Seconds())
	return rep, nil
}
