package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/scenario"
)

// runScenLibrary executes the real wavm3scen binary over the whole
// scenario library against cacheDir, returning its exact stdout and the
// parsed bench report.
func runScenLibrary(t *testing.T, bin, scenDir, cacheDir, benchPath string) ([]byte, *report.BenchReport) {
	t.Helper()
	cmd := exec.Command(bin, "-dir", scenDir, "-cache-dir", cacheDir, "-benchjson", benchPath)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("wavm3scen failed: %v\n%s", err, stderr.String())
	}
	perf, err := report.ReadBenchReport(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	return stdout.Bytes(), perf
}

// healthCache mirrors the /healthz cache block.
type healthCache struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	KernelRuns  uint64 `json:"kernel_runs"`
	Persistent  bool   `json:"persistent"`
	DiskHits    uint64 `json:"disk_hits"`
	DiskMisses  uint64 `json:"disk_misses"`
	Quarantined uint64 `json:"quarantined"`
}

func getHealthCache(t *testing.T, baseURL string) healthCache {
	t.Helper()
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Cache *healthCache `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Cache == nil {
		t.Fatal("healthz has no cache block")
	}
	return *h.Cache
}

// TestDiskCacheCrossProcessE2E is the persistent cache's end-to-end
// acceptance gate, run against the real binaries:
//
//  1. wavm3scen runs the whole scenario library cold against an empty
//     cache dir, then a second process runs it warm against the same
//     dir — stdout must be byte-identical and the warm session must
//     report zero kernel runs (every simulation answered from disk).
//  2. wavm3d starts over the CLI-populated dir and serves a library
//     scenario — the HTTP bytes must equal the shared-renderer
//     reference, and the daemon's health surface must show the run was
//     served without a single kernel execution.
func TestDiskCacheCrossProcessE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real processes over the full scenario library")
	}
	scenDir, err := filepath.Abs(scenarioDir)
	if err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()
	benchDir := t.TempDir()
	scen := buildTool(t, "wavm3scen")

	cold, coldPerf := runScenLibrary(t, scen, scenDir, cacheDir, filepath.Join(benchDir, "cold.json"))
	if coldPerf.KernelRuns == 0 || coldPerf.DiskHits != 0 {
		t.Fatalf("cold run stats implausible: kernel_runs=%d disk_hits=%d", coldPerf.KernelRuns, coldPerf.DiskHits)
	}

	warm, warmPerf := runScenLibrary(t, scen, scenDir, cacheDir, filepath.Join(benchDir, "warm.json"))
	if !bytes.Equal(cold, warm) {
		t.Error("warm stdout differs from cold stdout")
	}
	// The headline invariant: a warm library session runs no kernels.
	if warmPerf.KernelRuns != 0 {
		t.Errorf("warm run executed %d kernels, want 0", warmPerf.KernelRuns)
	}
	if warmPerf.DiskMisses != 0 || warmPerf.DiskHits == 0 {
		t.Errorf("warm run disk stats: hits=%d misses=%d, want all hits", warmPerf.DiskHits, warmPerf.DiskMisses)
	}
	if warmPerf.Quarantined != 0 {
		t.Errorf("warm run quarantined %d artefacts in an intact dir", warmPerf.Quarantined)
	}
	for _, a := range warmPerf.Artefacts {
		if a.DiskMisses != 0 {
			t.Errorf("artefact %s missed disk %d times on a warm dir", a.ID, a.DiskMisses)
		}
	}

	// Phase 2: a daemon over the CLI-populated dir serves warm.
	daemon := buildTool(t, "wavm3d")
	cmd := exec.Command(daemon, "-addr", "127.0.0.1:0", "-dir", scenDir, "-cache-dir", cacheDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var logbuf bytes.Buffer
	sc := bufio.NewScanner(stderr)
	var baseURL string
	for sc.Scan() {
		line := sc.Text()
		logbuf.WriteString(line + "\n")
		if m := listeningRE.FindStringSubmatch(line); m != nil {
			baseURL = "http://" + m[1]
			break
		}
	}
	if baseURL == "" {
		t.Fatalf("daemon never reported its address:\n%s", logbuf.String())
	}
	go func() {
		for sc.Scan() {
			logbuf.WriteString(sc.Text() + "\n")
		}
	}()

	if h := getHealthCache(t, baseURL); !h.Persistent || h.KernelRuns != 0 {
		t.Fatalf("fresh daemon health cache = %+v, want persistent with 0 kernel runs", h)
	}

	const name = "memstorm-live"
	resp, err := http.Post(baseURL+"/v1/runs?name="+name, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("run answered %d: %v\n%s", resp.StatusCode, err, body)
	}
	spec, err := scenario.Load(filepath.Join(scenDir, name+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if want := expectExec(t, spec); !bytes.Equal(body, want) {
		t.Error("daemon response differs from the shared-renderer reference")
	}

	h := getHealthCache(t, baseURL)
	if h.KernelRuns != 0 {
		t.Errorf("daemon ran %d kernels serving a warm dir, want 0", h.KernelRuns)
	}
	if h.DiskHits == 0 || h.DiskMisses != 0 || h.Quarantined != 0 {
		t.Errorf("daemon disk stats = %+v, want pure disk hits", h)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v\n%s", err, logbuf.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon never exited after SIGTERM:\n%s", logbuf.String())
	}
}
