package service

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cliflags"
	"repro/internal/scenario"
)

// slowSpecJSON is a migration scenario with a 20-virtual-hour
// post-migration tail (~1s wall per run, two runs): long enough that a
// signal sent right after dispatch reliably arrives mid-run, short
// enough to finish well inside a drain window.
const slowSpecJSON = `{"version":1,"name":"e2e-slow-tail","pair":"m01-m02","kind":"non-live","seed":7,
	"migrating":{"workload":{"profile":"idle"}},
	"timing":{"post_s":72000},
	"repeat":{"min_runs":2,"variance_tol":0.9}}`

// buildTool compiles one of the repo's commands into a temp dir.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

var listeningRE = regexp.MustCompile(`listening on (\S+)`)

// TestDaemonSIGTERMGracefulDrain is the process-level drain E2E: start
// the real wavm3d binary, put a 1024-host cluster run plus a
// deliberately slow migration run in flight, SIGTERM the daemon mid-run
// and require (a) both in-flight responses complete correctly, (b) the
// process exits 0 inside the drain window.
func TestDaemonSIGTERMGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real daemon process")
	}
	scenDir, err := filepath.Abs(scenarioDir)
	if err != nil {
		t.Fatal(err)
	}
	bin := buildTool(t, "wavm3d")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-dir", scenDir, "-drain", "60s", "-max-concurrent", "4")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() // no-op after a clean Wait

	// The daemon logs its resolved address; everything it says after
	// that is drained in the background for the failure report.
	var logbuf bytes.Buffer
	sc := bufio.NewScanner(stderr)
	var baseURL string
	for sc.Scan() {
		line := sc.Text()
		logbuf.WriteString(line + "\n")
		if m := listeningRE.FindStringSubmatch(line); m != nil {
			baseURL = "http://" + m[1]
			break
		}
	}
	if baseURL == "" {
		t.Fatalf("daemon never reported its address:\n%s", logbuf.String())
	}
	go func() {
		for sc.Scan() {
			logbuf.WriteString(sc.Text() + "\n")
		}
	}()

	type reply struct {
		which  string
		status int
		body   []byte
		err    error
	}
	replies := make(chan reply, 2)
	post := func(which, url, body string) {
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			replies <- reply{which: which, err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		replies <- reply{which, resp.StatusCode, b, err}
	}
	go post("cluster", baseURL+"/v1/runs?name=drain-1024-rolling", "")
	go post("slow", baseURL+"/v1/runs", slowSpecJSON)

	// Let both runs get admitted and into the compute core, then pull
	// the plug the way an orchestrator would.
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		select {
		case r := <-replies:
			if r.err != nil {
				t.Fatalf("%s request failed: %v\n%s", r.which, r.err, logbuf.String())
			}
			if r.status != http.StatusOK {
				t.Fatalf("%s run answered %d during drain:\n%s\n%s", r.which, r.status, r.body, logbuf.String())
			}
			want := expectedFor(t, r.which)
			if !bytes.Equal(r.body, want) {
				t.Errorf("%s response differs from the CLI rendering", r.which)
			}
		case <-time.After(90 * time.Second):
			t.Fatalf("in-flight responses never arrived:\n%s", logbuf.String())
		}
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly after SIGTERM: %v\n%s", err, logbuf.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatalf("daemon never exited after SIGTERM:\n%s", logbuf.String())
	}
}

// expectedFor renders the reference bytes for one of the drain E2E's
// two in-flight runs.
func expectedFor(t *testing.T, which string) []byte {
	t.Helper()
	switch which {
	case "cluster":
		spec, err := scenario.Load(filepath.Join(scenarioDir, "drain-1024-rolling.json"))
		if err != nil {
			t.Fatal(err)
		}
		return expectExec(t, spec)
	default:
		spec, err := scenario.Parse("slow", []byte(slowSpecJSON))
		if err != nil {
			t.Fatal(err)
		}
		return expectExec(t, spec)
	}
}

// TestTimeoutFlagExitCode: wavm3scen under an expiring -timeout aborts
// at a cancellation boundary and exits with the documented code 3.
func TestTimeoutFlagExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real CLI process")
	}
	bin := buildTool(t, "wavm3scen")
	specFile := filepath.Join(t.TempDir(), "slow.json")
	if err := os.WriteFile(specFile, []byte(slowSpecJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-timeout", "150ms", specFile)
	out, err := cmd.CombinedOutput()
	var exitErr *exec.ExitError
	if err == nil || !errors.As(err, &exitErr) {
		t.Fatalf("expected a non-zero exit, got err=%v\n%s", err, out)
	}
	if code := exitErr.ExitCode(); code != cliflags.ExitDeadline {
		t.Fatalf("exit code = %d, want %d\n%s", code, cliflags.ExitDeadline, out)
	}
	if !strings.Contains(string(out), "deadline") {
		t.Errorf("stderr does not mention the deadline:\n%s", out)
	}
}
