package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

const scenarioDir = "../../scenarios"

// minimalSpec is a valid spec body cheap enough that request-handling
// tests never wait on simulation physics (the blocking tests replace
// execution with an override anyway).
const minimalSpec = `{"version":1,"name":"svc-test","pair":"m01-m02","kind":"non-live",
	"migrating":{"workload":{"profile":"idle"}}}`

// newTestServer starts a Server on a loopback listener and returns its
// base URL. Shutdown and Serve-error checking happen in cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()
	t.Cleanup(func() {
		if err := s.Shutdown(10 * time.Second); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-served; err != nil && !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, "http://" + ln.Addr().String()
}

// postRun POSTs a run request and returns status, body and headers.
func postRun(t *testing.T, url, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

// errCode extracts the stable error code from a JSON error envelope.
func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var env struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("response is not the JSON error envelope: %v\n%s", err, body)
	}
	return env.Error.Code
}

// expectExec renders the scenario through the shared executor — the
// bytes a daemon response must match exactly.
func expectExec(t *testing.T, spec *scenario.Spec) []byte {
	t.Helper()
	c, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Exec(context.Background(), &buf, c, 0, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHealthAndReady(t *testing.T) {
	_, url := newTestServer(t, Config{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(url + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", ep, resp.StatusCode)
		}
	}
}

func TestScenarioListing(t *testing.T) {
	_, url := newTestServer(t, Config{ScenarioDir: scenarioDir})
	resp, err := http.Get(url + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Scenarios []scenarioEntry `json:"scenarios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Scenarios) == 0 {
		t.Fatal("empty scenario listing")
	}
	byName := map[string]scenarioEntry{}
	for _, e := range out.Scenarios {
		byName[e.Name] = e
	}
	if e, ok := byName["drain-1024-rolling"]; !ok || e.Form != "cluster" || e.Hosts != 1024 {
		t.Errorf("drain-1024-rolling listed as %+v", e)
	}
}

// TestRunSpecBodyMatchesCLI: a POSTed spec answers with exactly the
// bytes wavm3scen prints for the same scenario.
func TestRunSpecBodyMatchesCLI(t *testing.T) {
	_, url := newTestServer(t, Config{Cache: sim.NewCache(0)})
	body, err := os.ReadFile(filepath.Join(scenarioDir, "nonlive-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	status, got, hdr := postRun(t, url+"/v1/runs", string(body))
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, got)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	spec, err := scenario.Load(filepath.Join(scenarioDir, "nonlive-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if want := expectExec(t, spec); !bytes.Equal(got, want) {
		t.Errorf("response differs from the CLI rendering:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestRunByNameMatchesCLI: library runs via ?name= return the same
// bytes, and repeat requests (cache hits) stay bit-identical.
func TestRunByNameMatchesCLI(t *testing.T) {
	_, url := newTestServer(t, Config{ScenarioDir: scenarioDir, Cache: sim.NewCache(0)})
	spec, err := scenario.Load(filepath.Join(scenarioDir, "meter-1hz.json"))
	if err != nil {
		t.Fatal(err)
	}
	want := expectExec(t, spec)
	for i := 0; i < 2; i++ { // second round is served from the run cache
		status, got, _ := postRun(t, url+"/v1/runs?name=meter-1hz", "")
		if status != http.StatusOK {
			t.Fatalf("round %d: status = %d\n%s", i, status, got)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("round %d: response differs from the CLI rendering", i)
		}
	}
}

func TestRunRequestRejections(t *testing.T) {
	_, url := newTestServer(t, Config{ScenarioDir: scenarioDir})
	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"empty body", "/v1/runs", "", http.StatusBadRequest, codeInvalidRequest},
		{"malformed json", "/v1/runs", "{", http.StatusUnprocessableEntity, codeInvalidScenario},
		{"unknown field", "/v1/runs", `{"name":"x","bogus":1}`, http.StatusUnprocessableEntity, codeInvalidScenario},
		{"invalid spec", "/v1/runs", `{"version":1,"name":"x","seed":-4}`, http.StatusUnprocessableEntity, codeInvalidScenario},
		{"unknown library name", "/v1/runs?name=no-such", "", http.StatusNotFound, codeNotFound},
		{"name plus body", "/v1/runs?name=meter-1hz", minimalSpec, http.StatusBadRequest, codeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := postRun(t, url+tc.path, tc.body)
			if status != tc.status {
				t.Fatalf("status = %d, want %d\n%s", status, tc.status, body)
			}
			if code := errCode(t, body); code != tc.code {
				t.Errorf("code = %q, want %q", code, tc.code)
			}
		})
	}
}

// blockingExec is an exec override whose runs park until released (or
// until their context ends), so admission and drain states can be
// driven deterministically.
type blockingExec struct {
	started chan struct{} // one receive per run that began executing
	release chan struct{} // close to let parked runs finish
}

func newBlockingExec() *blockingExec {
	return &blockingExec{started: make(chan struct{}, 64), release: make(chan struct{})}
}

func (b *blockingExec) exec(ctx context.Context, w io.Writer, c *scenario.Compiled, workers int, cache *sim.Cache) (*ExecResult, error) {
	b.started <- struct{}{}
	select {
	case <-b.release:
		fmt.Fprintf(w, "== %s\nblocked-exec done\n", c.Spec.Name)
		return &ExecResult{}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// waitStarted waits for n runs to reach execution.
func (b *blockingExec) waitStarted(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-b.started:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d runs started", i, n)
		}
	}
}

// TestAdmissionOverflow is the N+K acceptance criterion: with admission
// bounded at 2 running + 1 queued, six concurrent requests yield exactly
// three successes and three clean 429s carrying Retry-After — and no
// goroutines leak once the dust settles.
func TestAdmissionOverflow(t *testing.T) {
	before := runtime.NumGoroutine()
	be := newBlockingExec()
	_, url := newTestServer(t, Config{
		MaxConcurrent: 2, QueueDepth: 1, execOverride: be.exec,
	})

	const total = 6
	type outcome struct {
		status     int
		retryAfter string
	}
	results := make(chan outcome, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, hdr := postRun(t, url+"/v1/runs", minimalSpec)
			results <- outcome{status, hdr.Get("Retry-After")}
		}()
	}
	// Two runs occupy the slots; rejections stream back while the third
	// ticket holder waits in the queue. Then open the gate.
	be.waitStarted(t, 2)
	deadline := time.After(10 * time.Second)
	got := map[int]int{}
	var outcomes []outcome
	for len(outcomes) < 3 {
		select {
		case o := <-results:
			outcomes = append(outcomes, o)
			got[o.status]++
		case <-deadline:
			t.Fatalf("only %d rejections arrived while slots were blocked", len(outcomes))
		}
	}
	if got[http.StatusTooManyRequests] != 3 {
		t.Fatalf("while saturated, outcomes = %v, want three 429s", got)
	}
	for _, o := range outcomes {
		if o.retryAfter == "" {
			t.Error("429 without a Retry-After header")
		}
	}
	close(be.release)
	wg.Wait()
	close(results)
	for o := range results {
		got[o.status]++
	}
	if got[http.StatusOK] != 3 || got[http.StatusTooManyRequests] != 3 {
		t.Fatalf("outcomes = %v, want exactly 3×200 and 3×429", got)
	}
	waitGoroutines(t, before)
}

// TestClientDisconnectFreesSlot: a client abandoning its request
// cancels the run and releases the admission slot for the next client.
func TestClientDisconnectFreesSlot(t *testing.T) {
	before := runtime.NumGoroutine()
	be := newBlockingExec()
	_, url := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 0, execOverride: be.exec})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/runs", strings.NewReader(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	abandoned := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		abandoned <- err
	}()
	be.waitStarted(t, 1)
	cancel() // client walks away mid-run
	if err := <-abandoned; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned request err = %v, want context.Canceled", err)
	}

	// The slot must free without the blocked run ever being released:
	// its context died with the client. The next run then gets the slot.
	done := make(chan struct{})
	go func() {
		defer close(done)
		status, body, _ := postRun(t, url+"/v1/runs", minimalSpec)
		if status != http.StatusOK {
			t.Errorf("follow-up status = %d\n%s", status, body)
		}
	}()
	be.waitStarted(t, 1)
	close(be.release)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("slot was never released after the client disconnect")
	}
	waitGoroutines(t, before)
}

// TestDrainRefusesNewWork: once Shutdown begins, readyz answers 503 and
// new runs are refused with the draining code.
func TestDrainRefusesNewWork(t *testing.T) {
	s, err := New(Config{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	// No listener is serving, so Shutdown completes immediately but
	// leaves the server in the draining state.
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for _, tc := range []struct {
		method, path string
		status       int
	}{
		{"GET", "/healthz", http.StatusOK}, // draining is still alive
		{"GET", "/readyz", http.StatusServiceUnavailable},
		{"POST", "/v1/runs", http.StatusServiceUnavailable},
	} {
		req, err := http.NewRequest(tc.method, "http://drain.test"+tc.path, strings.NewReader(minimalSpec))
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.status {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, rec.Code, tc.status)
		}
	}
}

// TestGracefulDrainCompletesInFlight: SIGTERM semantics — in-flight
// runs finish inside the drain window and their clients get full 200
// responses; Shutdown returns nil.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	be := newBlockingExec()
	cfg := Config{MaxConcurrent: 2, execOverride: be.exec, Logger: log.New(io.Discard, "", 0)}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	resps := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			status, _, _ := postRun(t, url+"/v1/runs", minimalSpec)
			resps <- status
		}()
	}
	be.waitStarted(t, 2)

	shut := make(chan error, 1)
	go func() { shut <- s.Shutdown(30 * time.Second) }()
	// Give the drain a moment to begin, then let the runs finish.
	time.Sleep(50 * time.Millisecond)
	close(be.release)
	if err := <-shut; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i := 0; i < 2; i++ {
		if status := <-resps; status != http.StatusOK {
			t.Errorf("in-flight run answered %d during graceful drain", status)
		}
	}
	if err := <-served; !errors.Is(err, http.ErrServerClosed) {
		t.Errorf("Serve: %v", err)
	}
}

// TestDrainDeadlineCancelsStragglers: a run that outlives the drain
// window is cancelled (not abandoned) and its client told the daemon
// was draining; Shutdown still returns nil — the clean-exit contract.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	be := newBlockingExec() // never released: the run is a straggler
	cfg := Config{MaxConcurrent: 1, execOverride: be.exec, Logger: log.New(io.Discard, "", 0)}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	type resp struct {
		status int
		body   []byte
	}
	rc := make(chan resp, 1)
	go func() {
		status, body, _ := postRun(t, url+"/v1/runs", minimalSpec)
		rc <- resp{status, body}
	}()
	be.waitStarted(t, 1)

	if err := s.Shutdown(100 * time.Millisecond); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	got := <-rc
	if got.status != http.StatusServiceUnavailable {
		t.Fatalf("straggler answered %d, want 503\n%s", got.status, got.body)
	}
	if code := errCode(t, got.body); code != codeDraining {
		t.Errorf("straggler code = %q, want %q", code, codeDraining)
	}
	if err := <-served; !errors.Is(err, http.ErrServerClosed) {
		t.Errorf("Serve: %v", err)
	}
}

// TestPanicRecovery: a panicking run becomes a structured 500 and the
// daemon keeps serving.
func TestPanicRecovery(t *testing.T) {
	var calls atomic.Int32
	_, url := newTestServer(t, Config{
		execOverride: func(ctx context.Context, w io.Writer, c *scenario.Compiled, workers int, cache *sim.Cache) (*ExecResult, error) {
			if calls.Add(1) == 1 {
				panic("kaboom")
			}
			fmt.Fprintln(w, "fine")
			return &ExecResult{}, nil
		},
	})
	status, body, _ := postRun(t, url+"/v1/runs", minimalSpec)
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500\n%s", status, body)
	}
	if code := errCode(t, body); code != codeInternal {
		t.Errorf("code = %q, want %q", code, codeInternal)
	}
	if !strings.Contains(string(body), "kaboom") {
		t.Errorf("panic message lost: %s", body)
	}
	status, body, _ = postRun(t, url+"/v1/runs", minimalSpec)
	if status != http.StatusOK {
		t.Errorf("daemon did not survive the panic: %d\n%s", status, body)
	}
}

// TestConcurrentChaosClients is the race-detector E2E: concurrent
// clients hammer the chaos scenario family through one daemon and every
// response must be byte-identical to the CLI rendering — cache hits,
// contention and admission queueing included.
func TestConcurrentChaosClients(t *testing.T) {
	family := []string{"chaos-crash-cascade-16", "partitioned-switch-evac-8", "drain-under-crash-256"}
	if testing.Short() {
		family = family[:2]
	}
	want := map[string][]byte{}
	for _, name := range family {
		spec, err := scenario.Load(filepath.Join(scenarioDir, name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		want[name] = expectExec(t, spec)
	}

	_, url := newTestServer(t, Config{
		ScenarioDir: scenarioDir, Cache: sim.NewCache(0),
		MaxConcurrent: 3, QueueDepth: 16,
	})
	const clients = 2
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		for _, name := range family {
			name := name
			wg.Add(1)
			go func() {
				defer wg.Done()
				status, got, _ := postRun(t, url+"/v1/runs?name="+name, "")
				if status != http.StatusOK {
					t.Errorf("%s: status = %d\n%s", name, status, got)
					return
				}
				if !bytes.Equal(got, want[name]) {
					t.Errorf("%s: response differs from the CLI rendering", name)
				}
			}()
		}
	}
	wg.Wait()
}

// waitGoroutines polls until the goroutine count settles back near the
// baseline — the leak assertion behind the admission criteria.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Idle HTTP keep-alive and timer goroutines linger briefly;
		// a small cushion keeps the check meaningful without flaking.
		if runtime.NumGoroutine() <= baseline+5 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines: %d, baseline %d — leak?", runtime.NumGoroutine(), baseline)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
