// Package service is the wavm3d daemon's core: an HTTP front end over
// the same compile→campaign→cluster pipeline the CLIs drive, hardened
// for long-lived operation. Three mechanisms carry the robustness
// story:
//
//   - Bounded admission: at most MaxConcurrent runs execute at once and
//     at most QueueDepth requests wait; anything beyond is rejected with
//     429 + Retry-After instead of queueing without bound.
//   - Cancellation: every run executes under a context merged from the
//     request (client disconnect), the per-request deadline and the
//     daemon's drain state, and the compute core observes it at every
//     event-loop iteration and worker dispatch. A cancelled run never
//     poisons the shared run cache for concurrent bystanders.
//   - Graceful drain: Shutdown stops admitting, lets in-flight runs
//     finish up to the drain deadline, then cancels the stragglers —
//     so SIGTERM always yields a clean exit.
//
// Responses for successful runs are byte-identical to wavm3scen's
// stdout for the same scenario (the rendering code is shared), which CI
// verifies against the golden outputs.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// errDraining is the cancellation cause attached to in-flight runs when
// the drain deadline expires; handlers translate it into a 503 so a
// straggler's client can tell "daemon went away" from its own mistakes.
var errDraining = errors.New("service: daemon draining")

// Config configures a Server. The zero value is usable for tests;
// withDefaults fills production defaults.
type Config struct {
	// Addr is the listen address (ListenAndServe only).
	Addr string
	// ScenarioDir, when non-empty, is the scenario library served by
	// GET /v1/scenarios and runnable by name via POST /v1/runs?name=.
	ScenarioDir string
	// MaxConcurrent bounds simultaneously executing runs (default 4).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for an execution slot
	// (default 8). Beyond MaxConcurrent+QueueDepth in flight, POST
	// /v1/runs answers 429.
	QueueDepth int
	// MaxBody caps the request body in bytes (default 1 MiB).
	MaxBody int64
	// RequestTimeout bounds one run's wall clock, queue wait included
	// (default 2m; expiry answers 504).
	RequestTimeout time.Duration
	// Workers bounds each run's internal concurrency (0 = all CPUs;
	// results identical for every value).
	Workers int
	// Cache is the shared run cache (nil = uncached execution). A cache
	// built over a persistent store (sim.NewCacheWithStore) lets a fleet
	// of replicas share one warm artefact directory: each replica's
	// memory tier stays private, the disk tier answers across processes.
	Cache *sim.Cache
	// Logger receives operational chatter (default: log.Default).
	Logger *log.Logger

	// execOverride replaces the scenario executor — test-only, for
	// blocking or panicking runs without real simulation work.
	execOverride func(ctx context.Context, w io.Writer, c *scenario.Compiled, workers int, cache *sim.Cache) (*ExecResult, error)
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	return c
}

// Server is the wavm3d daemon: library, admission bounds, drain state
// and the embedded http.Server.
type Server struct {
	cfg     Config
	library []scenario.Info           // catalog in name order (empty without ScenarioDir)
	byName  map[string]*scenario.Spec // library lookup for ?name= runs
	adm     *admission
	httpSrv *http.Server

	// runsCtx parents every run's context; cancelRuns(errDraining) is
	// the drain deadline's hammer for stragglers.
	runsCtx    context.Context
	cancelRuns context.CancelCauseFunc

	// draining flips once, before the listener closes: readyz answers
	// 503 and new runs are refused while in-flight ones finish.
	draining chan struct{}
}

// New builds a Server, loading the scenario library when ScenarioDir is
// set (a broken library is a startup error, not a per-request surprise).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		byName:   map[string]*scenario.Spec{},
		adm:      newAdmission(cfg.MaxConcurrent, cfg.QueueDepth),
		draining: make(chan struct{}),
	}
	s.runsCtx, s.cancelRuns = context.WithCancelCause(context.Background())
	if cfg.ScenarioDir != "" {
		specs, err := scenario.LoadDir(cfg.ScenarioDir)
		if err != nil {
			return nil, fmt.Errorf("service: loading scenario library: %w", err)
		}
		infos, err := scenario.List(cfg.ScenarioDir)
		if err != nil {
			return nil, fmt.Errorf("service: listing scenario library: %w", err)
		}
		s.library = infos
		for _, sp := range specs {
			s.byName[sp.Name] = sp
		}
	}
	s.httpSrv = &http.Server{
		Addr:    cfg.Addr,
		Handler: s.Handler(),
	}
	return s, nil
}

// ListenAndServe serves on cfg.Addr until Shutdown. Like
// http.Server.ListenAndServe it returns http.ErrServerClosed after a
// graceful shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	// The resolved address matters when Addr ends in :0 (tests, CI
	// smoke): this line is the contract they parse the port from.
	s.cfg.Logger.Printf("service: listening on %s", ln.Addr())
	return s.Serve(ln)
}

// Serve serves on an existing listener (tests bind :0 and read the
// real address back from the listener).
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Shutdown drains the daemon: stop admitting (readyz flips to 503 and
// new runs answer 503 immediately), let in-flight runs finish for up to
// drain, then cancel the stragglers and wait for them to unwind — a
// bounded wait, because the compute core observes cancellation at every
// event-loop iteration. The cache's persistent tier is closed last
// (after the HTTP wind-down), flushing any asynchronously queued
// artefact publishes so a SIGTERM never strands completed work in
// memory. The return is nil for both the clean and the
// cancelled-stragglers outcome; SIGTERM always exits 0.
func (s *Server) Shutdown(drain time.Duration) error {
	defer func() {
		if err := s.cfg.Cache.Close(); err != nil {
			s.cfg.Logger.Printf("service: cache store close: %v", err)
		}
	}()
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := s.httpSrv.Shutdown(drainCtx)
	if err == nil {
		s.cancelRuns(errDraining) // nothing left to cancel; releases the context
		return nil
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// Drain deadline expired with runs still in flight: cancel them and
	// wait again. This wait is bounded by the core's cancellation
	// boundaries (one context poll per simulated step / cluster event).
	s.cfg.Logger.Printf("service: drain deadline (%v) expired, cancelling in-flight runs", drain)
	s.cancelRuns(errDraining)
	return s.httpSrv.Shutdown(context.Background())
}

// exec runs one compiled scenario through the shared executor (or the
// test override).
func (s *Server) exec(ctx context.Context, w io.Writer, c *scenario.Compiled) (*ExecResult, error) {
	if s.cfg.execOverride != nil {
		return s.cfg.execOverride(ctx, w, c, s.cfg.Workers, s.cfg.Cache)
	}
	return Exec(ctx, w, c, s.cfg.Workers, s.cfg.Cache)
}
